// demi-kv runs the mini-Redis server on the real OS through Catnap. Any
// RESP client (including redis-cli) can talk to it.
//
// Usage:
//
//	demi-kv -port 6380 [-aof dir]
package main

import (
	"flag"
	"fmt"
	"os"

	demikernel "demikernel"
	"demikernel/internal/apps/kv"
)

func main() {
	port := flag.Int("port", 6380, "TCP port")
	aofDir := flag.String("aof", "", "directory for the append-only file (empty = in-memory only)")
	flag.Parse()

	los := demikernel.NewCatnap(*aofDir)
	cfg := kv.ServerConfig{Addr: demikernel.Addr{Port: uint16(*port)}}
	if *aofDir != "" {
		cfg.AOFName = "appendonly.aof"
	}
	var stats kv.ServerStats
	fmt.Printf("mini-redis on 127.0.0.1:%d (aof=%q)\n", *port, cfg.AOFName)
	if err := kv.Server(los, cfg, &stats); err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
}
