// demi-kv runs the mini-Redis server on the real OS through Catnap. Any
// RESP client (including redis-cli) can talk to it.
//
// Usage:
//
//	demi-kv -port 6380 [-aof dir] [-metrics :9090]
//
// With -metrics, GET /metrics (Prometheus), /metrics.json and /flight on
// that address expose the libOS counters and the qtoken flight recorder.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	demikernel "demikernel"
	"demikernel/internal/apps/kv"
	"demikernel/internal/telemetry"
)

func main() {
	port := flag.Int("port", 6380, "TCP port")
	aofDir := flag.String("aof", "", "directory for the append-only file (empty = in-memory only)")
	metrics := flag.String("metrics", "", "serve /metrics, /metrics.json and /flight on this address (empty = off)")
	flag.Parse()

	los := demikernel.NewCatnap(*aofDir)
	if *metrics != "" {
		fr := telemetry.NewFlightRecorder(4096, 8)
		los.Tokens().SetRecorder(fr)
		go func() {
			snap := func() []*telemetry.Snapshot {
				return []*telemetry.Snapshot{los.Telemetry().Snapshot()}
			}
			log.Printf("metrics: %v", telemetry.ListenAndServe(*metrics, snap, fr))
		}()
		fmt.Printf("metrics on %s (/metrics, /metrics.json, /flight)\n", *metrics)
	}
	cfg := kv.ServerConfig{Addr: demikernel.Addr{Port: uint16(*port)}}
	if *aofDir != "" {
		cfg.AOFName = "appendonly.aof"
	}
	var stats kv.ServerStats
	fmt.Printf("mini-redis on 127.0.0.1:%d (aof=%q)\n", *port, cfg.AOFName)
	if err := kv.Server(los, cfg, &stats); err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
}
