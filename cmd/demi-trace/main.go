// demi-trace records a packet trace from a simulated Catnip echo session
// and prints or verifies it — the paper's §6.3 deterministic-debugging
// workflow as a tool — and runs the distributed tracer over the service
// chain, printing critical-path waterfalls for the slowest requests.
//
// Usage:
//
//	demi-trace record  > session.trace    # capture a server-side trace
//	demi-trace verify  < session.trace    # replay it, check egress matches
//	demi-trace dump    < session.trace    # human-readable listing
//	demi-trace chain -slowest 10 -waterfall   # trace the service chain
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"demikernel/internal/apps/echo"
	"demikernel/internal/bench"
	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/dtrace"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/trace"
	"demikernel/internal/wire"
)

var (
	ipS = wire.IPAddr{10, 0, 0, 1}
	ipC = wire.IPAddr{10, 0, 0, 2}
)

// record runs an echo session and returns the server-side trace. With
// replayRx set, the live client is replaced by injected frames.
func record(replayRx []trace.Event) *trace.Log {
	log := &trace.Log{}
	eng := sim.NewEngine(7)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	ns, nc := eng.NewNode("server"), eng.NewNode("client")
	ps := dpdkdev.Attach(sw, ns, simnet.DefaultLink(), 8192, 0)
	pc := dpdkdev.Attach(sw, nc, simnet.DefaultLink(), 8192, 0)
	scfg := catnip.DefaultConfig(ipS)
	scfg.Tracer = log
	ls := catnip.New(ns, ps, scfg)
	lc := catnip.New(nc, pc, catnip.DefaultConfig(ipC))
	ls.SeedARP(ipC, pc.MAC())
	lc.SeedARP(ipS, ps.MAC())
	addr := core.Addr{IP: ipS, Port: 7000}
	eng.Spawn(ns, func() { echo.Server(ls, echo.ServerConfig{Addr: addr}) })
	if replayRx == nil {
		eng.Spawn(nc, func() {
			echo.Client(lc, addr, 64, 50, 0, nc)
			lc.WaitAny(nil, 100*time.Millisecond)
		})
	} else {
		for _, e := range replayRx {
			data := e.Data
			eng.At(e.At, ns, func() { ps.InjectRx(data) })
		}
		last := replayRx[len(replayRx)-1].At
		eng.At(last.Add(500*time.Millisecond), nil, func() { eng.Stop() })
	}
	eng.Run()
	return log
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: demi-trace record|verify|dump|chain")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "chain":
		chainCmd(os.Args[2:])
		return
	case "record":
		log := record(nil)
		os.Stdout.Write(log.Encode())
		fmt.Fprintf(os.Stderr, "recorded %d events\n", len(log.Events))
	case "dump":
		data, err := io.ReadAll(os.Stdin)
		must(err)
		log, err := trace.Decode(data)
		must(err)
		for i, e := range log.Events {
			fmt.Printf("%5d  %c  %-14v  %4dB\n", i, e.Dir, e.At, len(e.Data))
		}
	case "verify":
		data, err := io.ReadAll(os.Stdin)
		must(err)
		orig, err := trace.Decode(data)
		must(err)
		replayed := record(orig.Filter(trace.RX))
		if err := trace.EqualData(orig.Filter(trace.TX), replayed.Filter(trace.TX)); err != nil {
			fmt.Fprintf(os.Stderr, "DIVERGED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replay OK: %d egress frames reproduced byte-for-byte\n",
			len(orig.Filter(trace.TX)))
	default:
		fmt.Fprintln(os.Stderr, "usage: demi-trace record|verify|dump|chain")
		os.Exit(2)
	}
}

// chainCmd runs the distributed tracer over the three-stage service chain
// and reports the slowest sampled requests with their critical paths.
func chainCmd(argv []string) {
	fs := flag.NewFlagSet("chain", flag.ExitOnError)
	transport := fs.String("transport", "catmem", "transport: catmem or catloop")
	rounds := fs.Int("rounds", 2000, "closed-loop rounds to drive")
	sample := fs.Uint64("sample", 1, "sample every Nth request (0 disables tracing)")
	slowest := fs.Int("slowest", 10, "how many of the slowest requests to report")
	waterfall := fs.Bool("waterfall", false, "print a critical-path waterfall per reported request")
	chrome := fs.String("chrome", "", "write Chrome trace_event JSON (chrome://tracing, Perfetto) to this file")
	binOut := fs.String("bin", "", "write the deterministic binary trace to this file")
	fs.Parse(argv)

	cfg := dtrace.DefaultConfig()
	cfg.SampleEvery = *sample
	cfg.Events = 1 << 20
	cfg.Recent = 1 << 12
	cfg.Slowest = *slowest
	res, err := bench.RunChainTraced(*transport, *rounds, cfg)
	must(err)
	tr := res.Tracer
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintf(out, "chain over %s: %d rounds, RTT avg %v p99 %v\n",
		*transport, *rounds, res.Run.RTTAvg, res.Run.RTTP99)
	fmt.Fprintf(out, "sampled: %d started, %d finished, %d events evicted\n",
		tr.Started(), tr.Finished(), tr.Evicted())
	for _, v := range res.Violations {
		fmt.Fprintf(out, "CROSS-CHECK VIOLATION: %s\n", v)
	}
	views := tr.Assemble()
	for i, r := range tr.Slowest(*slowest) {
		v := views[r.Trace]
		if v == nil {
			fmt.Fprintf(out, "#%d trace %d: %v (events evicted; no waterfall)\n",
				i+1, r.Trace, time.Duration(r.Dur()))
			continue
		}
		hop, class, ns := v.GuiltyHop(tr)
		fmt.Fprintf(out, "#%d trace %d: %v end-to-end, %.0f%% stitched; guilty: %s %s (%v)\n",
			i+1, r.Trace, time.Duration(r.Dur()), 100*v.Coverage,
			hop, class, time.Duration(ns))
		if *waterfall {
			v.WriteWaterfall(out, tr)
		}
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		must(err)
		must(tr.WriteChromeJSON(f))
		must(f.Close())
	}
	if *binOut != "" {
		f, err := os.Create(*binOut)
		must(err)
		must(tr.EncodeBinary(f))
		must(f.Close())
	}
	if len(res.Violations) > 0 {
		out.Flush()
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
