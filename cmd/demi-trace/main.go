// demi-trace records a packet trace from a simulated Catnip echo session
// and prints or verifies it — the paper's §6.3 deterministic-debugging
// workflow as a tool.
//
// Usage:
//
//	demi-trace record  > session.trace    # capture a server-side trace
//	demi-trace verify  < session.trace    # replay it, check egress matches
//	demi-trace dump    < session.trace    # human-readable listing
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"demikernel/internal/apps/echo"
	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/trace"
	"demikernel/internal/wire"
)

var (
	ipS = wire.IPAddr{10, 0, 0, 1}
	ipC = wire.IPAddr{10, 0, 0, 2}
)

// record runs an echo session and returns the server-side trace. With
// replayRx set, the live client is replaced by injected frames.
func record(replayRx []trace.Event) *trace.Log {
	log := &trace.Log{}
	eng := sim.NewEngine(7)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	ns, nc := eng.NewNode("server"), eng.NewNode("client")
	ps := dpdkdev.Attach(sw, ns, simnet.DefaultLink(), 8192, 0)
	pc := dpdkdev.Attach(sw, nc, simnet.DefaultLink(), 8192, 0)
	scfg := catnip.DefaultConfig(ipS)
	scfg.Tracer = log
	ls := catnip.New(ns, ps, scfg)
	lc := catnip.New(nc, pc, catnip.DefaultConfig(ipC))
	ls.SeedARP(ipC, pc.MAC())
	lc.SeedARP(ipS, ps.MAC())
	addr := core.Addr{IP: ipS, Port: 7000}
	eng.Spawn(ns, func() { echo.Server(ls, echo.ServerConfig{Addr: addr}) })
	if replayRx == nil {
		eng.Spawn(nc, func() {
			echo.Client(lc, addr, 64, 50, 0, nc)
			lc.WaitAny(nil, 100*time.Millisecond)
		})
	} else {
		for _, e := range replayRx {
			data := e.Data
			eng.At(e.At, ns, func() { ps.InjectRx(data) })
		}
		last := replayRx[len(replayRx)-1].At
		eng.At(last.Add(500*time.Millisecond), nil, func() { eng.Stop() })
	}
	eng.Run()
	return log
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: demi-trace record|verify|dump")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "record":
		log := record(nil)
		os.Stdout.Write(log.Encode())
		fmt.Fprintf(os.Stderr, "recorded %d events\n", len(log.Events))
	case "dump":
		data, err := io.ReadAll(os.Stdin)
		must(err)
		log, err := trace.Decode(data)
		must(err)
		for i, e := range log.Events {
			fmt.Printf("%5d  %c  %-14v  %4dB\n", i, e.Dir, e.At, len(e.Data))
		}
	case "verify":
		data, err := io.ReadAll(os.Stdin)
		must(err)
		orig, err := trace.Decode(data)
		must(err)
		replayed := record(orig.Filter(trace.RX))
		if err := trace.EqualData(orig.Filter(trace.TX), replayed.Filter(trace.TX)); err != nil {
			fmt.Fprintf(os.Stderr, "DIVERGED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("replay OK: %d egress frames reproduced byte-for-byte\n",
			len(orig.Filter(trace.TX)))
	default:
		fmt.Fprintln(os.Stderr, "usage: demi-trace record|verify|dump")
		os.Exit(2)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
