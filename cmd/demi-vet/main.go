// Command demi-vet runs the repository's static analyzers over the module:
// qtoken discipline, buffer ownership, sim-world determinism, and
// //demi:nonalloc hot-path allocation checks. It is built exclusively on
// the standard library's go/parser, go/ast and go/types.
//
// Usage:
//
//	go run ./cmd/demi-vet ./...
//	go run ./cmd/demi-vet -time ./internal/apps/... ./examples/...
//
// Exit status: 0 no findings, 1 findings (or stale allowlist entries), 2
// usage or load errors. Audited exceptions live in analysis.allow at the
// module root (override with -allow).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"demikernel/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("demi-vet", flag.ContinueOnError)
	allowPath := fs.String("allow", "", "allowlist file (default <module-root>/analysis.allow)")
	timing := fs.Bool("time", false, "print per-analyzer wall time")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "demi-vet:", err)
		return 2
	}
	mod, err := analysis.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demi-vet:", err)
		return 2
	}

	pkgs, wholeModule, err := selectPackages(mod, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demi-vet:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "demi-vet: no packages matched", strings.Join(patterns, " "))
		return 2
	}

	if *allowPath == "" {
		*allowPath = filepath.Join(mod.Root, "analysis.allow")
	}
	allow, err := analysis.LoadAllowlist(*allowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demi-vet:", err)
		return 2
	}

	findings, elapsed := analysis.RunTimed(mod, pkgs, analysis.DefaultAnalyzers())
	findings = allow.Filter(findings)

	for _, f := range findings {
		fmt.Println(f)
	}
	status := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "demi-vet: %d finding(s)\n", len(findings))
		status = 1
	}
	// Stale allowlist entries only count against a whole-module run: a
	// partial run legitimately misses the findings other entries suppress.
	if wholeModule {
		for _, e := range allow.Unused() {
			fmt.Fprintf(os.Stderr, "demi-vet: %s:%d: stale allowlist entry (%s %s %q) suppresses nothing — delete it\n",
				*allowPath, e.Line, e.Analyzer, e.File, e.Contains)
			status = 1
		}
	}
	if *timing {
		names := make([]string, 0, len(elapsed))
		for n := range elapsed {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(os.Stderr, "demi-vet: %-12s %s\n", n, elapsed[n].Round(1e6))
		}
	}
	return status
}

// selectPackages resolves the command-line patterns against the loaded
// module. "./..." (or a bare directory with /... suffix) selects every
// package under that directory; a plain directory selects its package.
func selectPackages(mod *analysis.Module, cwd string, patterns []string) ([]*analysis.Package, bool, error) {
	whole := false
	var roots []string // absolute dir prefixes selecting package trees
	var exact []string // absolute dirs selecting single packages
	for _, pat := range patterns {
		dir, recursive := strings.CutSuffix(pat, "/...")
		if dir == "" || dir == "." {
			dir = cwd
		}
		abs, err := filepath.Abs(filepath.Join(cwd, dir))
		if filepath.IsAbs(dir) {
			abs, err = dir, nil
		}
		if err != nil {
			return nil, false, err
		}
		if recursive {
			if abs == mod.Root {
				whole = true
			}
			roots = append(roots, abs)
		} else {
			exact = append(exact, abs)
		}
	}
	if whole {
		return mod.Pkgs, true, nil
	}
	var out []*analysis.Package
	for _, p := range mod.Pkgs {
		dir := filepath.Join(mod.Root, strings.TrimPrefix(p.Path, mod.Path))
		keep := false
		for _, r := range roots {
			if dir == r || strings.HasPrefix(dir, r+string(filepath.Separator)) {
				keep = true
			}
		}
		for _, e := range exact {
			if dir == e {
				keep = true
			}
		}
		if keep {
			out = append(out, p)
		}
	}
	return out, false, nil
}
