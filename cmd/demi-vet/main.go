// Command demi-vet runs the repository's static analyzers over the module:
// qtoken discipline, buffer ownership, sim-world determinism,
// //demi:nonalloc hot-path allocation checks, //demi:stateguard
// complete-or-error mutation, poll-path blocking discipline, capability
// escape confinement, and //demi:budget static cost gates. It is built
// exclusively on the standard library's go/parser, go/ast and go/types.
//
// Usage:
//
//	go run ./cmd/demi-vet ./...
//	go run ./cmd/demi-vet -time ./internal/apps/... ./examples/...
//	go run ./cmd/demi-vet -json ./...           # machine-readable findings
//	go run ./cmd/demi-vet -github ./...         # GitHub workflow annotations
//	go run ./cmd/demi-vet -budget 25s ./...     # fail if the run exceeds 25s
//	go run ./cmd/demi-vet -costs ./...          # cost estimates, for budgets
//
// Exit status: 0 no findings, 1 findings (or stale allowlist entries, or
// -budget exceeded), 2 usage or load errors. Audited exceptions live in
// analysis.allow at the module root (override with -allow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"demikernel/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	start := time.Now()
	fs := flag.NewFlagSet("demi-vet", flag.ContinueOnError)
	allowPath := fs.String("allow", "", "allowlist file (default <module-root>/analysis.allow)")
	timing := fs.Bool("time", false, "print per-analyzer compute time")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	github := fs.Bool("github", false, "emit findings as GitHub workflow ::error annotations")
	budget := fs.Duration("budget", 0, "fail (exit 1) if the whole run exceeds this wall time")
	costs := fs.Bool("costs", false, "print per-function static cost estimates and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "demi-vet:", err)
		return 2
	}
	mod, err := analysis.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demi-vet:", err)
		return 2
	}

	pkgs, wholeModule, err := selectPackages(mod, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demi-vet:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "demi-vet: no packages matched", strings.Join(patterns, " "))
		return 2
	}

	if *allowPath == "" {
		*allowPath = filepath.Join(mod.Root, "analysis.allow")
	}
	allow, err := analysis.LoadAllowlist(*allowPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "demi-vet:", err)
		return 2
	}

	if *costs {
		printCosts(mod, pkgs)
		return 0
	}

	findings, elapsed := analysis.RunTimed(mod, pkgs, analysis.DefaultAnalyzers())
	findings = allow.Filter(findings)

	switch {
	case *jsonOut:
		if err := printJSON(findings); err != nil {
			fmt.Fprintln(os.Stderr, "demi-vet:", err)
			return 2
		}
	case *github:
		for _, f := range findings {
			printGitHub(f)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	status := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "demi-vet: %d finding(s)\n", len(findings))
		status = 1
	}
	// Stale allowlist entries only count against a whole-module run: a
	// partial run legitimately misses the findings other entries suppress.
	if wholeModule {
		for _, e := range allow.Unused() {
			fmt.Fprintf(os.Stderr, "demi-vet: %s:%d: stale allowlist entry (%s %s %q) suppresses nothing — delete it\n",
				*allowPath, e.Line, e.Analyzer, e.File, e.Contains)
			status = 1
		}
	}
	if *timing {
		names := make([]string, 0, len(elapsed))
		for n := range elapsed {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(os.Stderr, "demi-vet: %-16s %s\n", n, elapsed[n].Round(1e6))
		}
	}
	// The wall-clock regression gate: CI runs with -budget so that analysis
	// slowdowns (a summary blow-up, an accidental quadratic walk) fail the
	// lint job instead of silently eating the CI budget.
	if *budget > 0 {
		if wall := time.Since(start); wall > *budget {
			fmt.Fprintf(os.Stderr, "demi-vet: run took %s, over the -budget of %s\n",
				wall.Round(1e6), *budget)
			status = 1
		}
	}
	return status
}

// jsonFinding is the -json wire shape of one finding, stable for tooling.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

func printJSON(findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.File,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
			Hint:     f.Hint,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printGitHub emits one finding as a GitHub Actions workflow command, so
// CI findings annotate the diff view directly. Newlines and percents in
// the message must be escaped per the workflow-command grammar.
func printGitHub(f analysis.Finding) {
	msg := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
	if f.Hint != "" {
		msg += " (fix: " + f.Hint + ")"
	}
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(msg)
	fmt.Printf("::error file=%s,line=%d,col=%d,title=demi-vet %s::%s\n",
		f.File, f.Pos.Line, f.Pos.Column, f.Analyzer, esc)
}

// printCosts lists the static worst-case estimate of every function in the
// selected packages, most expensive first — the input for choosing
// //demi:budget values with real headroom.
func printCosts(mod *analysis.Module, pkgs []*analysis.Package) {
	selected := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		selected[p.Path] = true
	}
	for _, e := range mod.CostReport() {
		if !selected[e.Pkg] {
			continue
		}
		cost := "unbounded"
		if e.Cost != analysis.CostUnbounded {
			cost = e.Cost.Duration().String()
		}
		line := fmt.Sprintf("%-12s %s.%s", cost, strings.TrimPrefix(e.Pkg, mod.Path+"/"), e.Func)
		if e.Budget > 0 {
			line += fmt.Sprintf("  (budget %s)", e.Budget.Duration())
		}
		fmt.Println(line)
	}
}

// selectPackages resolves the command-line patterns against the loaded
// module. "./..." (or a bare directory with /... suffix) selects every
// package under that directory; a plain directory selects its package.
func selectPackages(mod *analysis.Module, cwd string, patterns []string) ([]*analysis.Package, bool, error) {
	whole := false
	var roots []string // absolute dir prefixes selecting package trees
	var exact []string // absolute dirs selecting single packages
	for _, pat := range patterns {
		dir, recursive := strings.CutSuffix(pat, "/...")
		if dir == "" || dir == "." {
			dir = cwd
		}
		abs, err := filepath.Abs(filepath.Join(cwd, dir))
		if filepath.IsAbs(dir) {
			abs, err = dir, nil
		}
		if err != nil {
			return nil, false, err
		}
		if recursive {
			if abs == mod.Root {
				whole = true
			}
			roots = append(roots, abs)
		} else {
			exact = append(exact, abs)
		}
	}
	if whole {
		return mod.Pkgs, true, nil
	}
	var out []*analysis.Package
	for _, p := range mod.Pkgs {
		dir := filepath.Join(mod.Root, strings.TrimPrefix(p.Path, mod.Path))
		keep := false
		for _, r := range roots {
			if dir == r || strings.HasPrefix(dir, r+string(filepath.Separator)) {
				keep = true
			}
		}
		for _, e := range exact {
			if dir == e {
				keep = true
			}
		}
		if keep {
			out = append(out, p)
		}
	}
	return out, false, nil
}
