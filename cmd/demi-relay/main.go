// demi-relay runs the TURN-style UDP relay server on the real OS through
// Catnap.
//
// Usage:
//
//	demi-relay -port 3478
package main

import (
	"flag"
	"fmt"
	"os"

	demikernel "demikernel"
	"demikernel/internal/apps/relay"
)

func main() {
	port := flag.Int("port", 3478, "UDP port")
	flag.Parse()

	los := demikernel.NewCatnap("")
	var stats relay.Stats
	fmt.Printf("UDP relay on 127.0.0.1:%d\n", *port)
	if err := relay.Server(los, demikernel.Addr{Port: uint16(*port)}, &stats); err != nil {
		fmt.Fprintf(os.Stderr, "relay: %v\n", err)
		os.Exit(1)
	}
}
