// demi-relay runs the TURN-style UDP relay server on the real OS through
// Catnap.
//
// Usage:
//
//	demi-relay -port 3478 [-metrics :9090]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	demikernel "demikernel"
	"demikernel/internal/apps/relay"
	"demikernel/internal/telemetry"
)

func main() {
	port := flag.Int("port", 3478, "UDP port")
	metrics := flag.String("metrics", "", "serve /metrics, /metrics.json and /flight on this address (empty = off)")
	flag.Parse()

	los := demikernel.NewCatnap("")
	if *metrics != "" {
		fr := telemetry.NewFlightRecorder(4096, 8)
		los.Tokens().SetRecorder(fr)
		go func() {
			snap := func() []*telemetry.Snapshot {
				return []*telemetry.Snapshot{los.Telemetry().Snapshot()}
			}
			log.Printf("metrics: %v", telemetry.ListenAndServe(*metrics, snap, fr))
		}()
		fmt.Printf("metrics on %s (/metrics, /metrics.json, /flight)\n", *metrics)
	}
	var stats relay.Stats
	fmt.Printf("UDP relay on 127.0.0.1:%d\n", *port)
	if err := relay.Server(los, demikernel.Addr{Port: uint16(*port)}, &stats); err != nil {
		fmt.Fprintf(os.Stderr, "relay: %v\n", err)
		os.Exit(1)
	}
}
