// demi-echo runs the PDPIX echo server (and optionally a measuring client)
// on the real OS through the Catnap library OS.
//
// Usage:
//
//	demi-echo -port 7000 [-log dir] [-metrics :9090]   # server
//	demi-echo -port 7000 -client -n 10000              # client
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	demikernel "demikernel"
	"demikernel/internal/apps/echo"
	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
)

func main() {
	port := flag.Int("port", 7000, "TCP port")
	client := flag.Bool("client", false, "run the closed-loop client instead of the server")
	n := flag.Int("n", 10000, "client rounds")
	size := flag.Int("size", 64, "message size (bytes)")
	logDir := flag.String("log", "", "directory for the echo log (server; empty = no logging)")
	metrics := flag.String("metrics", "", "serve /metrics, /metrics.json and /flight on this address (empty = off)")
	flag.Parse()

	los := demikernel.NewCatnap(*logDir)
	if *metrics != "" {
		fr := telemetry.NewFlightRecorder(4096, 8)
		los.Tokens().SetRecorder(fr)
		go func() {
			snap := func() []*telemetry.Snapshot {
				return []*telemetry.Snapshot{los.Telemetry().Snapshot()}
			}
			log.Printf("metrics: %v", telemetry.ListenAndServe(*metrics, snap, fr))
		}()
		fmt.Printf("metrics on %s (/metrics, /metrics.json, /flight)\n", *metrics)
	}
	addr := demikernel.Addr{Port: uint16(*port)}
	if *client {
		res, err := echo.Client(los, addr, *size, *n, *n/10, sim.NewWallClock())
		if err != nil {
			log.Fatalf("client: %v", err)
		}
		sort.Slice(res.RTTs, func(i, j int) bool { return res.RTTs[i] < res.RTTs[j] })
		var sum time.Duration
		for _, d := range res.RTTs {
			sum += d
		}
		fmt.Printf("rounds=%d avg=%v p99=%v goodput=%.1f MB/s\n",
			len(res.RTTs), sum/time.Duration(len(res.RTTs)),
			res.RTTs[len(res.RTTs)*99/100], res.BytesPerS/1e6)
		return
	}
	cfg := echo.ServerConfig{Addr: addr}
	if *logDir != "" {
		cfg.LogName = "echo.log"
	}
	fmt.Printf("echo server on 127.0.0.1:%d (log=%q)\n", *port, cfg.LogName)
	if err := echo.Server(los, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
}
