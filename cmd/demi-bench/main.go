// demi-bench regenerates the paper's tables and figures on the simulated
// testbed. Each subcommand reproduces one artifact; `all` runs everything.
//
// Usage:
//
//	demi-bench [-json] [-telemetry] table2|table3|fig5|fig6a|fig6b|fig7|fig8|fig9|fig10|fig11|fig12|chain|ablation|scaleout|rack|chaos|tenantchaos|all
//
// Flags may appear before or after the experiment name:
//
//	-json       also write every table to BENCH_results.json
//	-telemetry  dump each experiment's telemetry (registry snapshots +
//	            qtoken flight-recorder spans) to stdout after its tables
package main

import (
	"fmt"
	"os"

	"demikernel/internal/bench"
)

type runner struct {
	name string
	run  func() ([]*bench.Table, error)
}

func one(f func() (*bench.Table, error)) func() ([]*bench.Table, error) {
	return func() ([]*bench.Table, error) {
		t, err := f()
		if err != nil {
			return nil, err
		}
		return []*bench.Table{t}, nil
	}
}

func main() {
	runners := []runner{
		{"table1", func() ([]*bench.Table, error) { return []*bench.Table{bench.Table1()}, nil }},
		{"table2", func() ([]*bench.Table, error) { return []*bench.Table{bench.Table2()}, nil }},
		{"table3", func() ([]*bench.Table, error) { return []*bench.Table{bench.Table3()}, nil }},
		{"fig5", one(bench.Fig5)},
		{"fig6a", one(bench.Fig6a)},
		{"fig6b", one(bench.Fig6b)},
		{"fig7", one(bench.Fig7)},
		{"fig8", one(bench.Fig8)},
		{"fig9", one(bench.Fig9)},
		{"fig10", one(bench.Fig10)},
		{"fig11", one(bench.Fig11)},
		{"fig12", one(bench.Fig12)},
		{"chain", bench.Chain},
		{"ablation", bench.Ablations},
		{"scaleout", bench.ScaleOut},
		{"rack", bench.Rack},
		{"chaos", bench.Chaos},
	}
	// Soak-only runners are selectable by name but excluded from `all`:
	// their tables are isolation-gate evidence, not paper artifacts, so
	// keeping them out of `all` keeps the committed BENCH_results.json
	// stable.
	soak := []runner{
		{"tenantchaos", bench.TenantChaos},
	}
	known := append(append([]runner{}, runners...), soak...)
	var jsonOut, telemetryOut bool
	var want string
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-json", "--json":
			jsonOut = true
		case "-telemetry", "--telemetry":
			telemetryOut = true
		default:
			if want != "" {
				usage(known)
			}
			want = arg
		}
	}
	if want == "" {
		usage(known)
	}
	var selected []runner
	if want == "all" {
		selected = runners
	} else {
		for _, r := range known {
			if r.name == want {
				selected = []runner{r}
			}
		}
	}
	if len(selected) == 0 {
		usage(known)
	}
	if telemetryOut {
		bench.SetTelemetrySink(os.Stdout)
	}
	var all []*bench.Table
	for _, r := range selected {
		tables, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "demi-bench %s: %v\n", r.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Print(os.Stdout)
		}
		all = append(all, tables...)
	}
	if jsonOut {
		f, err := os.Create("BENCH_results.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "demi-bench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteTablesJSON(f, all); err != nil {
			fmt.Fprintf(os.Stderr, "demi-bench: write BENCH_results.json: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote BENCH_results.json (%d tables)\n", len(all))
	}
}

func usage(runners []runner) {
	fmt.Fprint(os.Stderr, "usage: demi-bench [-json] [-telemetry] <experiment>\nexperiments: all")
	for _, r := range runners {
		fmt.Fprintf(os.Stderr, " %s", r.name)
	}
	fmt.Fprintln(os.Stderr)
	os.Exit(2)
}
