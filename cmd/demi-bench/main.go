// demi-bench regenerates the paper's tables and figures on the simulated
// testbed. Each subcommand reproduces one artifact; `all` runs everything.
//
// Usage:
//
//	demi-bench table2|table3|fig5|fig6a|fig6b|fig7|fig8|fig9|fig10|fig11|fig12|ablation|scaleout|all
package main

import (
	"fmt"
	"os"

	"demikernel/internal/bench"
)

type runner struct {
	name string
	run  func() ([]*bench.Table, error)
}

func one(f func() (*bench.Table, error)) func() ([]*bench.Table, error) {
	return func() ([]*bench.Table, error) {
		t, err := f()
		if err != nil {
			return nil, err
		}
		return []*bench.Table{t}, nil
	}
}

func main() {
	runners := []runner{
		{"table1", func() ([]*bench.Table, error) { return []*bench.Table{bench.Table1()}, nil }},
		{"table2", func() ([]*bench.Table, error) { return []*bench.Table{bench.Table2()}, nil }},
		{"table3", func() ([]*bench.Table, error) { return []*bench.Table{bench.Table3()}, nil }},
		{"fig5", one(bench.Fig5)},
		{"fig6a", one(bench.Fig6a)},
		{"fig6b", one(bench.Fig6b)},
		{"fig7", one(bench.Fig7)},
		{"fig8", one(bench.Fig8)},
		{"fig9", one(bench.Fig9)},
		{"fig10", one(bench.Fig10)},
		{"fig11", one(bench.Fig11)},
		{"fig12", one(bench.Fig12)},
		{"ablation", bench.Ablations},
		{"scaleout", bench.ScaleOut},
	}
	if len(os.Args) != 2 {
		usage(runners)
	}
	want := os.Args[1]
	var selected []runner
	if want == "all" {
		selected = runners
	} else {
		for _, r := range runners {
			if r.name == want {
				selected = []runner{r}
			}
		}
	}
	if len(selected) == 0 {
		usage(runners)
	}
	for _, r := range selected {
		tables, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "demi-bench %s: %v\n", r.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Print(os.Stdout)
		}
	}
}

func usage(runners []runner) {
	fmt.Fprint(os.Stderr, "usage: demi-bench <experiment>\nexperiments: all")
	for _, r := range runners {
		fmt.Fprintf(os.Stderr, " %s", r.name)
	}
	fmt.Fprintln(os.Stderr)
	os.Exit(2)
}
