// Chain example: a three-stage microservice chain — client → relay →
// look-aside cache → KV store — run twice on the deterministic testbed,
// once over Catmem (shared-memory queues, zero-copy buffer handoff
// between co-located stages) and once over Catloop (full Catnip TCP
// stacks on an in-process loopback wire). Same application code both
// times; only the transport behind the PDPIX queues changes. The printed
// virtual-time RTTs show what the paper's intra-host datapath buys: the
// shared-memory hop skips the protocol stack and every copy.
//
//	go run ./examples/chain
package main

import (
	"fmt"
	"log"
	"time"

	"demikernel"
	"demikernel/internal/apps/chain"
	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
)

const (
	rounds  = 1000
	warmup  = 64
	nkeys   = 16
	valSize = 64
)

func main() {
	for _, transport := range []string{"catmem", "catloop"} {
		res, err := run(transport)
		if err != nil {
			log.Fatalf("%s: %v", transport, err)
		}
		var sum time.Duration
		for _, d := range res.RTTs {
			sum += d
		}
		fmt.Printf("%-8s %d rounds, avg RTT %v (virtual time)\n",
			transport, res.Rounds, sum/time.Duration(len(res.RTTs)))
	}
}

// run wires the four stages over one transport and drives the closed loop.
func run(transport string) (chain.Result, error) {
	eng := sim.NewEngine(7)
	var kv, cache, relay, cli demi.LibOS
	var nodes [4]*sim.Node
	var addrs [3]core.Addr // relay, cache, kv listen addresses
	handoff := transport == "catmem"
	for i, name := range []string{"kv", "cache", "relay", "client"} {
		nodes[i] = eng.NewNode(name)
	}
	if handoff {
		region := demikernel.NewMemRegion(eng)
		kv = demikernel.NewCatmem(region, nodes[0])
		cache = demikernel.NewCatmem(region, nodes[1])
		relay = demikernel.NewCatmem(region, nodes[2])
		cli = demikernel.NewCatmem(region, nodes[3])
		addrs = [3]core.Addr{{Port: 1}, {Port: 2}, {Port: 3}}
	} else {
		hub := demikernel.NewLoopHub(eng)
		ips := [4]wire.IPAddr{
			{127, 0, 0, 1}, {127, 0, 0, 2}, {127, 0, 0, 3}, {127, 0, 0, 4},
		}
		kv = demikernel.NewCatloop(hub, nodes[0], ips[0])
		cache = demikernel.NewCatloop(hub, nodes[1], ips[1])
		relay = demikernel.NewCatloop(hub, nodes[2], ips[2])
		cli = demikernel.NewCatloop(hub, nodes[3], ips[3])
		addrs = [3]core.Addr{
			{IP: ips[2], Port: 1}, {IP: ips[1], Port: 2}, {IP: ips[0], Port: 3},
		}
	}
	// Listeners must be up before dialers: spawn back-to-front.
	var kvSt, cacheSt, relaySt chain.Stats
	eng.Spawn(nodes[0], func() {
		if err := chain.KV(kv, addrs[2], handoff, nkeys, valSize, &kvSt, chain.Trace{}); err != nil {
			log.Fatalf("kv: %v", err)
		}
	})
	eng.Spawn(nodes[1], func() {
		if err := chain.Cache(cache, addrs[1], addrs[2], handoff, &cacheSt, chain.Trace{}); err != nil {
			log.Fatalf("cache: %v", err)
		}
	})
	eng.Spawn(nodes[2], func() {
		if err := chain.Relay(relay, addrs[0], addrs[1], handoff, &relaySt, chain.Trace{}); err != nil {
			log.Fatalf("relay: %v", err)
		}
	})
	var res chain.Result
	var cliErr error
	eng.Spawn(nodes[3], func() {
		res, cliErr = chain.Client(cli, addrs[0], handoff,
			rounds, warmup, nkeys, valSize, nodes[3], chain.Trace{})
	})
	eng.Run()
	return res, cliErr
}
