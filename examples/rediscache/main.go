// Redis cache example: the mini-Redis server with an fsync-per-write
// append-only file (the paper's §7.5 configuration) plus a client, on the
// real OS over Catnap. Run it twice: the second run recovers the keyspace
// from the AOF.
//
//	go run ./examples/rediscache
package main

import (
	"fmt"
	"log"
	"os"

	demikernel "demikernel"
	"demikernel/internal/apps/kv"
)

const port = 16379

func main() {
	dir, err := os.MkdirTemp("", "demi-redis-*")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AOF directory: %s\n", dir)

	startServer(dir)

	cli, err := kv.Dial(demikernel.NewCatnap(""), demikernel.Addr{Port: port})
	must(err)
	// Write some state; every SET is durable before the reply arrives.
	for i := 0; i < 10; i++ {
		must(cli.Set([]byte(fmt.Sprintf("user:%d", i)), []byte(fmt.Sprintf("balance=%d", i*100))))
	}
	if r, err := cli.Do([]byte("INCR"), []byte("visits")); err != nil || r.Int != 1 {
		log.Fatalf("INCR: %+v %v", r, err)
	}
	v, err := cli.Get([]byte("user:7"))
	must(err)
	fmt.Printf("user:7 -> %q\n", v)
	if r, _ := cli.Do([]byte("DBSIZE")); true {
		fmt.Printf("keys: %d (all durable in %s/appendonly.aof)\n", r.Int, dir)
	}
	cli.Close()

	// "Restart": a fresh server over the same AOF replays the log.
	startServerOnPort(dir, port+1)
	cli2, err := kv.Dial(demikernel.NewCatnap(""), demikernel.Addr{Port: port + 1})
	must(err)
	v, err = cli2.Get([]byte("user:7"))
	must(err)
	fmt.Printf("after restart, user:7 -> %q (recovered from AOF)\n", v)
	cli2.Close()
}

func startServer(dir string) { startServerOnPort(dir, port) }

func startServerOnPort(dir string, p int) {
	ready := make(chan struct{})
	go func() {
		los := demikernel.NewCatnap(dir)
		cfg := kv.ServerConfig{Addr: demikernel.Addr{Port: uint16(p)}, AOFName: "appendonly.aof"}
		var stats kv.ServerStats
		close(ready)
		if err := kv.Server(los, cfg, &stats); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	<-ready
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
