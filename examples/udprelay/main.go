// UDP relay example: a TURN-style relay server (the paper's §7.2/§7.4
// workload) plus a caller and a callee, all on the real OS over Catnap.
// The caller allocates a session routing to the callee, then streams
// packets through the relay and reports the relayed round-trip cost.
//
//	go run ./examples/udprelay
package main

import (
	"fmt"
	"log"
	"time"

	demikernel "demikernel"
	"demikernel/internal/apps/relay"
	"demikernel/internal/memory"
)

const (
	relayPort  = 13478
	calleePort = 14000
	packets    = 200
)

func main() {
	// Relay server.
	go func() {
		los := demikernel.NewCatnap("")
		var stats relay.Stats
		if err := relay.Server(los, demikernel.Addr{Port: relayPort}, &stats); err != nil {
			log.Printf("relay: %v", err)
		}
	}()

	los := demikernel.NewCatnap("")
	defer los.Shutdown()
	relayAddr := demikernel.Addr{IP: [4]byte{127, 0, 0, 1}, Port: relayPort}

	// Callee socket receiving the relayed packets.
	callee, err := los.Socket(demikernel.SockDgram)
	must(err)
	must(los.Bind(callee, demikernel.Addr{Port: calleePort}))

	// Caller allocates a relay session pointing at the callee.
	caller, err := los.Socket(demikernel.SockDgram)
	must(err)
	// ALLOCATE with retries: UDP gives no delivery guarantee and the
	// relay goroutine may still be binding.
	allocMsg := relay.BuildAllocate(42, demikernel.Addr{IP: [4]byte{127, 0, 0, 1}, Port: calleePort})
	// The first send binds the caller's ephemeral port; then arm a single
	// outstanding pop and resend the request until the reply arrives.
	sendAlloc := func() {
		alloc := memory.CopyFrom(los.Heap(), allocMsg)
		qt, err := los.PushTo(caller, demikernel.SGA(alloc), relayAddr)
		must(err)
		_, err = los.Wait(qt)
		must(err)
	}
	sendAlloc()
	pqt, err := los.Pop(caller)
	must(err)
	for attempt := 0; ; attempt++ {
		_, ev, err := los.WaitAny([]demikernel.QToken{pqt}, 200*time.Millisecond)
		if err == nil {
			if len(ev.SGA.Segs) > 0 && ev.SGA.Flatten()[0] == relay.OpAllocateOK {
				ev.SGA.Free()
				break
			}
			ev.SGA.Free()
			pqt, err = los.Pop(caller) // unexpected datagram: arm a new pop
			must(err)
			continue
		}
		if attempt > 20 {
			log.Fatal("allocation failed")
		}
		sendAlloc()
	}
	fmt.Println("session 42 allocated; relaying...")

	start := time.Now()
	for i := 0; i < packets; i++ {
		payload := []byte(fmt.Sprintf("voice-frame-%03d", i))
		data := memory.CopyFrom(los.Heap(), relay.BuildData(42, payload))
		qt, err := los.PushTo(caller, demikernel.SGA(data), relayAddr)
		must(err)
		los.Wait(qt)
		pqt, err := los.Pop(callee)
		must(err)
		ev, err := los.Wait(pqt)
		must(err)
		if _, pl, ok := relay.ParseData(ev.SGA.Flatten()); !ok || string(pl) != string(payload) {
			log.Fatalf("packet %d corrupted", i)
		}
		ev.SGA.Free()
	}
	elapsed := time.Since(start)
	fmt.Printf("relayed %d packets, %.1f µs/packet end-to-end\n",
		packets, float64(elapsed.Microseconds())/packets)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
