// TxnStore example: a replicated transactional key-value store on the
// deterministic simulated testbed — one client and three replicas over
// Catnip (DPDK libOS) on a simulated 100 GbE fabric. It runs the paper's
// read-modify-write transactions with quorum writes (§7.6) and prints
// virtual-time latencies, demonstrating the kernel-bypass datapath without
// any special hardware.
//
//	go run ./examples/txnstore
package main

import (
	"fmt"
	"log"
	"time"

	"demikernel/internal/apps/txnstore"
	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

func main() {
	eng := sim.NewEngine(42)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())

	clientIP := wire.IPAddr{10, 0, 0, 100}
	clientNode := eng.NewNode("client")
	clientPort := dpdkdev.Attach(sw, clientNode, simnet.DefaultLink(), 8192, 0)
	client := catnip.New(clientNode, clientPort, catnip.DefaultConfig(clientIP))

	// Three replicas.
	var addrs []core.Addr
	var stacks []*catnip.LibOS
	var ports []*dpdkdev.Port
	for i := 0; i < 3; i++ {
		ip := wire.IPAddr{10, 0, 0, byte(i + 1)}
		node := eng.NewNode(fmt.Sprintf("replica%d", i))
		port := dpdkdev.Attach(sw, node, simnet.DefaultLink(), 8192, 0)
		l := catnip.New(node, port, catnip.DefaultConfig(ip))
		stacks = append(stacks, l)
		ports = append(ports, port)
		addrs = append(addrs, core.Addr{IP: ip, Port: 7000})
	}
	// Warm ARP caches (control-plane setup).
	for i, l := range stacks {
		client.SeedARP(addrs[i].IP, ports[i].MAC())
		l.SeedARP(clientIP, clientPort.MAC())
	}
	for i, l := range stacks {
		r := txnstore.NewReplica()
		l, addr := l, addrs[i]
		eng.Spawn(l.Node(), func() { r.Serve(l, addr) })
	}

	eng.Spawn(clientNode, func() {
		defer eng.Stop()
		c, err := txnstore.Dial(client, addrs, sim.NewRand(7))
		if err != nil {
			log.Printf("dial: %v", err)
			return
		}
		// Seed an account, then transfer with OCC transactions.
		seed := c.Begin()
		seed.Put([]byte("alice"), []byte("1000"))
		seed.Put([]byte("bob"), []byte("0"))
		if ok, err := seed.Commit(); err != nil || !ok {
			log.Printf("seed: %v", err)
			return
		}
		var total time.Duration
		const txns = 100
		for i := 0; i < txns; i++ {
			start := clientNode.Now()
			txn := c.Begin()
			a, _ := txn.Get([]byte("alice"))
			b, _ := txn.Get([]byte("bob"))
			txn.Put([]byte("alice"), dec(a))
			txn.Put([]byte("bob"), inc(b))
			if ok, err := txn.Commit(); err != nil || !ok {
				log.Printf("txn %d failed: %v", i, err)
				return
			}
			total += clientNode.Now().Sub(start)
		}
		check := c.Begin()
		a, _ := check.Get([]byte("alice"))
		b, _ := check.Get([]byte("bob"))
		fmt.Printf("after %d transfers: alice=%s bob=%s\n", txns, a, b)
		fmt.Printf("avg transaction latency: %v (virtual time, 2 reads + 2 quorum writes each)\n",
			total/txns)
	})
	eng.Run()
}

func dec(v []byte) []byte { return delta(v, -10) }
func inc(v []byte) []byte { return delta(v, +10) }

func delta(v []byte, d int) []byte {
	var n int
	fmt.Sscanf(string(v), "%d", &n)
	return []byte(fmt.Sprintf("%d", n+d))
}
