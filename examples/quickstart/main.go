// Quickstart: the PDPIX echo flow on the real OS (Catnap libOS), server
// and client in one process. This is the paper's Figure 4 loop in Go:
// pop -> wait -> process -> push, with zero-copy buffer ownership.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	demikernel "demikernel"
	"demikernel/internal/memory"
)

const port = 7711

func main() {
	go server()

	cli := demikernel.NewCatnap("")
	defer cli.Shutdown()

	// Connect (asynchronous: redeem the qtoken with Wait). Retry briefly
	// while the server goroutine finishes binding.
	var qd demikernel.QDesc
	var ev demikernel.QEvent
	for attempt := 0; ; attempt++ {
		var err error
		qd, err = cli.Socket(demikernel.SockStream)
		must(err)
		cqt, err := cli.Connect(qd, demikernel.Addr{Port: port})
		must(err)
		ev, err = cli.Wait(cqt)
		must(err)
		if ev.Err == nil {
			break
		}
		cli.Close(qd)
		if attempt > 100 {
			log.Fatalf("connect: %v", ev.Err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Push a complete message from the DMA-capable heap. Ownership of the
	// buffer transfers to the libOS until the qtoken completes; freeing
	// right after push is safe (use-after-free protection).
	msg := memory.CopyFrom(cli.Heap(), []byte("hello, demikernel!"))
	pqt, err := cli.Push(qd, demikernel.SGA(msg))
	must(err)
	_, err = cli.Wait(pqt)
	must(err)
	msg.Free()

	// Pop the echo; wait returns the data directly (no epoll, no extra
	// syscall-equivalent to fetch it).
	rqt, err := cli.Pop(qd)
	must(err)
	ev, err = cli.Wait(rqt)
	must(err)
	must(ev.Err)
	fmt.Printf("echoed: %q\n", ev.SGA.Flatten())
	ev.SGA.Free()
	cli.Close(qd)
}

// server accepts one connection and echoes one message.
func server() {
	srv := demikernel.NewCatnap("")
	qd, err := srv.Socket(demikernel.SockStream)
	must(err)
	must(srv.Bind(qd, demikernel.Addr{Port: port}))
	must(srv.Listen(qd, 4))

	aqt, err := srv.Accept(qd)
	must(err)
	ev, err := srv.Wait(aqt)
	must(err)
	conn := ev.NewQD

	pqt, err := srv.Pop(conn)
	must(err)
	ev, err = srv.Wait(pqt)
	must(err)
	// Echo the received scatter-gather array back, zero-copy.
	wqt, err := srv.Push(conn, ev.SGA)
	must(err)
	_, err = srv.Wait(wqt)
	must(err)
	ev.SGA.Free()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
