// Event-loop example: the libevent-style callback API the paper hopes for
// (§4.2), over Catnap on the real OS. A handler receives each message
// directly — no epoll, no follow-up read — and replies through the loop.
//
//	go run ./examples/eventloop
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	demikernel "demikernel"
	"demikernel/internal/core"
	"demikernel/internal/evloop"
	"demikernel/internal/memory"
)

const port = 7733

// upcase replies with the upper-cased message.
type upcase struct {
	loop *evloop.Loop
	los  demikernel.LibOS
}

func (h *upcase) OnData(conn core.QDesc, sga core.SGArray) bool {
	msg := strings.ToUpper(string(sga.Flatten()))
	sga.Free()
	out := memory.CopyFrom(h.los.Heap(), []byte(msg))
	h.loop.Send(conn, demikernel.SGA(out))
	return true
}

func (h *upcase) OnClose(core.QDesc) {}

func main() {
	srv := demikernel.NewCatnap("")
	loop := evloop.New(srv)
	go func() {
		if err := loop.Listen(demikernel.Addr{Port: port}, 8, func(conn core.QDesc) evloop.ConnHandler {
			return &upcase{loop: loop, los: srv}
		}); err != nil {
			log.Fatal(err)
		}
		loop.Run()
	}()

	cli := demikernel.NewCatnap("")
	defer cli.Shutdown()
	var qd demikernel.QDesc
	for attempt := 0; ; attempt++ {
		var err error
		qd, err = cli.Socket(demikernel.SockStream)
		must(err)
		cqt, err := cli.Connect(qd, demikernel.Addr{Port: port})
		must(err)
		ev, err := cli.Wait(cqt)
		must(err)
		if ev.Err == nil {
			break
		}
		cli.Close(qd)
		if attempt > 100 {
			log.Fatal(ev.Err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, text := range []string{"hello", "event-driven", "demikernel"} {
		msg := memory.CopyFrom(cli.Heap(), []byte(text))
		qt, err := cli.Push(qd, demikernel.SGA(msg))
		must(err)
		cli.Wait(qt)
		msg.Free()
		pqt, err := cli.Pop(qd)
		must(err)
		ev, err := cli.Wait(pqt)
		must(err)
		fmt.Printf("%s -> %s\n", text, ev.SGA.Flatten())
		ev.SGA.Free()
	}
	cli.Close(qd)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
