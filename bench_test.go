package demikernel

// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per table/figure; see DESIGN.md §4 for the index). The measured numbers
// are virtual-time results from the deterministic simulated testbed and
// are reported as custom metrics (virtual microseconds, kops/s, Gbps);
// ns/op reflects only host simulation speed. Run with:
//
//	go test -bench=. -benchmem
//
// Microbenchmarks for §5.4 (scheduler switch) and §6.3 (TCP ingress) live
// in internal/sched and internal/catnip.

import (
	"testing"
	"time"

	"demikernel/internal/baseline"
	"demikernel/internal/bench"
)

// reportEcho runs one echo measurement per iteration and reports virtual
// RTT.
func reportEcho(b *testing.B, sys bench.System, opts bench.EchoOpts) {
	b.Helper()
	var last bench.EchoRow
	for i := 0; i < b.N; i++ {
		row, err := bench.RunEcho(sys, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = row
	}
	b.ReportMetric(float64(last.Avg)/float64(time.Microsecond), "virt-us/rtt")
	b.ReportMetric(float64(last.OSTimePerIO.Nanoseconds()), "virt-ns/io")
}

func quickEchoOpts() bench.EchoOpts {
	o := bench.DefaultEchoOpts()
	o.Rounds, o.Warmup = 300, 30
	return o
}

// BenchmarkFig5 regenerates Figure 5's bars (64 B echo RTT per system).
func BenchmarkFig5(b *testing.B) {
	systems := map[string]bench.System{
		"Linux":     bench.SysLinux(baseline.EnvNative),
		"Catnap":    bench.SysCatnap(baseline.EnvNative),
		"Catmint":   bench.SysCatmint(0),
		"CatnipUDP": bench.SysCatnipUDP(),
		"CatnipTCP": bench.SysCatnipTCP(),
		"eRPC":      bench.SysERPC(),
		"Shenango":  bench.SysShenango(),
		"Caladan":   bench.SysCaladan(),
	}
	for name, sys := range systems {
		b.Run(name, func(b *testing.B) { reportEcho(b, sys, quickEchoOpts()) })
	}
	b.Run("RawDPDK", func(b *testing.B) {
		var row bench.EchoRow
		for i := 0; i < b.N; i++ {
			row = bench.RunRawDPDKEcho(64, 300)
		}
		b.ReportMetric(float64(row.Avg)/float64(time.Microsecond), "virt-us/rtt")
	})
	b.Run("RawRDMA", func(b *testing.B) {
		var row bench.EchoRow
		for i := 0; i < b.N; i++ {
			row = bench.RunRawRDMAEcho(64, 300)
		}
		b.ReportMetric(float64(row.Avg)/float64(time.Microsecond), "virt-us/rtt")
	})
}

// BenchmarkFig6a regenerates Figure 6a (Windows/WSL environment).
func BenchmarkFig6a(b *testing.B) {
	opts := quickEchoOpts()
	opts.Switch = bench.SwitchIB()
	b.Run("WSL", func(b *testing.B) { reportEcho(b, bench.SysLinux(baseline.EnvWSL), opts) })
	b.Run("CatnapWSL", func(b *testing.B) { reportEcho(b, bench.SysCatnap(baseline.EnvWSL), opts) })
	b.Run("Catpaw", func(b *testing.B) { reportEcho(b, bench.SysCatpaw(), opts) })
}

// BenchmarkFig6b regenerates Figure 6b (Azure VM environment).
func BenchmarkFig6b(b *testing.B) {
	opts := quickEchoOpts()
	b.Run("LinuxVM", func(b *testing.B) { reportEcho(b, bench.SysLinux(baseline.EnvAzureVM), opts) })
	b.Run("CatnapVM", func(b *testing.B) { reportEcho(b, bench.SysCatnap(baseline.EnvAzureVM), opts) })
	b.Run("CatnipVM", func(b *testing.B) { reportEcho(b, bench.SysCatnipVM(), opts) })
	b.Run("CatmintIB", func(b *testing.B) { reportEcho(b, bench.SysCatmint(0), opts) })
}

// BenchmarkFig7 regenerates Figure 7 (echo with synchronous logging).
func BenchmarkFig7(b *testing.B) {
	opts := quickEchoOpts()
	opts.Log = true
	b.Run("Linux", func(b *testing.B) { reportEcho(b, bench.SysLinux(baseline.EnvNative), opts) })
	b.Run("Catnap", func(b *testing.B) { reportEcho(b, bench.SysCatnap(baseline.EnvNative), opts) })
	b.Run("CatmintXCattree", func(b *testing.B) {
		sys := bench.SysCatmint(0)
		sys.Storage = true
		reportEcho(b, sys, opts)
	})
	b.Run("CatnipXCattree", func(b *testing.B) {
		sys := bench.SysCatnipTCP()
		sys.Storage = true
		reportEcho(b, sys, opts)
	})
}

// BenchmarkFig8 regenerates Figure 8's bandwidth points (subset of sizes
// per series; `demi-bench fig8` prints the full sweep).
func BenchmarkFig8(b *testing.B) {
	for _, size := range []int{1024, 65536, 262144} {
		size := size
		b.Run("CatnipTCP/"+itoa(size), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				var err error
				bw, err = bench.RunNetPipe(bench.SysCatnipTCP(), size)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(bw, "virt-Gbps")
		})
		b.Run("Catmint/"+itoa(size), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				var err error
				bw, err = bench.RunNetPipe(bench.SysCatmint(1<<20), size)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(bw, "virt-Gbps")
		})
	}
}

// BenchmarkFig9 regenerates two Figure 9 load points per system.
func BenchmarkFig9(b *testing.B) {
	for _, sys := range []bench.System{bench.SysCatnipTCP(), bench.SysCatmint(0)} {
		for _, clients := range []int{1, 16} {
			sys, clients := sys, clients
			b.Run(sys.Name+"/"+itoa(clients)+"clients", func(b *testing.B) {
				var tput float64
				var h *bench.Hist
				for i := 0; i < b.N; i++ {
					var err error
					tput, h, err = bench.RunLoad(sys, clients, 200)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(tput/1e3, "virt-kops")
				b.ReportMetric(float64(h.Mean())/float64(time.Microsecond), "virt-us/avg")
			})
		}
	}
}

// BenchmarkFig10 regenerates Figure 10 (UDP relay latency).
func BenchmarkFig10(b *testing.B) {
	for _, sys := range []bench.System{
		bench.SysLinux(baseline.EnvNative),
		bench.SysIOUring(),
		bench.SysCatnipUDP(),
	} {
		sys := sys
		b.Run(sys.Name, func(b *testing.B) {
			var h *bench.Hist
			for i := 0; i < b.N; i++ {
				var err error
				h, err = bench.RunRelay(sys, 500)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(h.Mean())/float64(time.Microsecond), "virt-us/avg")
			b.ReportMetric(float64(h.P99())/float64(time.Microsecond), "virt-us/p99")
		})
	}
}

// BenchmarkFig11 regenerates Figure 11 (Redis throughput) for the
// in-memory and AOF modes on the Demikernel stacks.
func BenchmarkFig11(b *testing.B) {
	opts := bench.DefaultRedisOpts()
	opts.Keys, opts.Ops = 2000, 800
	run := func(b *testing.B, sys bench.System, aof bool) {
		o := opts
		o.AOF = aof
		var get, set float64
		for i := 0; i < b.N; i++ {
			var err error
			get, set, err = bench.RunRedis(sys, o)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(get/1e3, "virt-GET-kops")
		b.ReportMetric(set/1e3, "virt-SET-kops")
	}
	b.Run("Linux/mem", func(b *testing.B) { run(b, bench.SysLinux(baseline.EnvNative), false) })
	b.Run("CatnipTCP/mem", func(b *testing.B) { run(b, bench.SysCatnipTCP(), false) })
	b.Run("Linux/aof", func(b *testing.B) { run(b, bench.SysLinux(baseline.EnvNative), true) })
	b.Run("CatnipXCattree/aof", func(b *testing.B) { run(b, bench.SysCatnipTCP(), true) })
}

// BenchmarkFig12 regenerates Figure 12 (TxnStore YCSB-t latency).
func BenchmarkFig12(b *testing.B) {
	opts := bench.DefaultTxnOpts()
	opts.Keys, opts.Txns = 500, 400
	for _, sys := range []bench.System{
		bench.SysLinux(baseline.EnvNative),
		bench.SysTxnStoreRDMA(),
		bench.SysCatmint(0),
		bench.SysCatnipTCP(),
	} {
		sys := sys
		b.Run(sys.Name, func(b *testing.B) {
			var h *bench.Hist
			for i := 0; i < b.N; i++ {
				var err error
				h, err = bench.RunTxnStore(sys, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(h.Mean())/float64(time.Microsecond), "virt-us/avg")
			b.ReportMetric(float64(h.P99())/float64(time.Microsecond), "virt-us/p99")
		})
	}
}

// BenchmarkTable2LoC regenerates Table 2 (libOS lines of code).
func BenchmarkTable2LoC(b *testing.B) {
	var loc int
	for i := 0; i < b.N; i++ {
		loc = bench.ModuleLoC("internal/catnip")
	}
	b.ReportMetric(float64(loc), "catnip-loc")
}

// BenchmarkScaleOut measures multi-core scale-out: aggregate echo
// throughput over 1/2/4/8 shared-nothing cores behind one RSS multi-queue
// port (demi-bench scaleout prints the full sweep with KV and per-core
// utilization).
func BenchmarkScaleOut(b *testing.B) {
	opts := bench.DefaultScaleOutOpts()
	opts.Rounds, opts.Warmup = 400, 40
	for _, cores := range opts.CoreCounts {
		cores := cores
		b.Run(itoa(cores)+"cores", func(b *testing.B) {
			var row bench.ScaleOutRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = bench.RunScaleOutEcho(cores, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Aggregate/1e3, "virt-kops")
			b.ReportMetric(float64(row.P99)/float64(time.Microsecond), "virt-us/p99")
		})
	}
}

// BenchmarkChain regenerates the intra-host service-chain comparison:
// the same relay -> cache -> KV chain over Catmem shared-memory queues
// (zero-copy handoff) vs Catloop loopback TCP.
func BenchmarkChain(b *testing.B) {
	for _, transport := range []string{"catmem", "catloop"} {
		transport := transport
		b.Run(transport, func(b *testing.B) {
			var run bench.ChainRun
			for i := 0; i < b.N; i++ {
				var err error
				run, err = bench.RunChain(transport, 400)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(run.RTTAvg)/float64(time.Microsecond), "virt-us/rtt")
			b.ReportMetric(run.RelayNsPerReq, "virt-ns/relay-req")
		})
	}
}

// BenchmarkAblationZeroCopy regenerates the zero-copy ablation at 16 KiB.
func BenchmarkAblationZeroCopy(b *testing.B) {
	opts := quickEchoOpts()
	opts.MsgSize = 16384
	b.Run("zerocopy", func(b *testing.B) { reportEcho(b, bench.SysCatnipTCP(), opts) })
	b.Run("forcecopy", func(b *testing.B) { reportEcho(b, bench.SysCatnipForceCopy(), opts) })
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
