// Package demikernel is a from-scratch Go implementation of the Demikernel
// datapath OS architecture (Zhang et al., SOSP 2021): PDPIX — the portable
// datapath API — implemented by interchangeable library OSes over
// kernel-bypass devices.
//
// The package is a facade: it re-exports the PDPIX types and the library
// OS constructors so applications import one package.
//
//	los := demikernel.NewCatnap("/tmp/demi-logs") // runs on the real OS
//	qd, _ := los.Socket(demikernel.SockStream)
//	los.Bind(qd, demikernel.Addr{Port: 7000})
//	los.Listen(qd, 16)
//	qt, _ := los.Accept(qd)
//	ev, _ := los.Wait(qt)             // completes with the connected queue
//	pqt, _ := los.Pop(ev.NewQD)       // ask for data
//	ev, _ = los.Wait(pqt)             // ev.SGA holds the received buffers
//	los.Push(ev.NewQD, ev.SGA)        // zero-copy echo
//
// Three families of library OS are provided:
//
//   - Catnap (NewCatnap) runs over the legacy OS kernel — no special
//     hardware, used for development and the runnable examples.
//   - Catnip, Catmint and Cattree run over simulated kernel-bypass
//     devices (DPDK NIC, RDMA NIC, NVMe SSD) on a deterministic
//     discrete-event testbed; the benchmark harness reproduces the
//     paper's evaluation on them. See internal/bench and DESIGN.md.
//   - demi.Combined integrates a network and a storage libOS on one core
//     (Catnip×Cattree, Catmint×Cattree).
package demikernel

import (
	"demikernel/internal/catloop"
	"demikernel/internal/catmem"
	"demikernel/internal/catnap"
	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
	"demikernel/internal/sched"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
)

// PDPIX types, re-exported.
type (
	// QDesc names an I/O queue (PDPIX's replacement for file descriptors).
	QDesc = core.QDesc
	// QToken names an outstanding asynchronous operation.
	QToken = core.QToken
	// SGArray is a scatter-gather array of DMA-capable buffers.
	SGArray = core.SGArray
	// QEvent is an operation completion.
	QEvent = core.QEvent
	// Addr is a network endpoint.
	Addr = core.Addr
	// SockType selects stream or datagram transport.
	SockType = core.SockType
	// Buf is one zero-copy I/O buffer from the DMA-capable heap.
	Buf = memory.Buf
	// Heap is the DMA-capable application heap (PDPIX malloc/free).
	Heap = memory.Heap
	// LibOS is the full application-facing PDPIX interface.
	LibOS = demi.LibOS
	// StorageOS extends LibOS with log cursor control.
	StorageOS = demi.StorageOS
	// SchedStats is a libOS coroutine scheduler's activity counters
	// (coroutine spawns/completions, polls = context switches, empty
	// scans). Scale-out harnesses read one per core.
	SchedStats = sched.Stats
	// SchedStatser is implemented by library OSes that expose their
	// scheduler counters (Catnip, Catmint, Cattree, demi.Combined) —
	// the per-core utilization hook used by `demi-bench scaleout`.
	SchedStatser = demi.SchedStatser
)

// Socket types.
const (
	// SockStream is connection-oriented transport (TCP on Catnip).
	SockStream = core.SockStream
	// SockDgram is datagram transport (UDP on Catnip).
	SockDgram = core.SockDgram
)

// Errors, re-exported.
var (
	ErrBadQDesc     = core.ErrBadQDesc
	ErrBadQToken    = core.ErrBadQToken
	ErrTimeout      = core.ErrTimeout
	ErrStopped      = core.ErrStopped
	ErrNotSupported = core.ErrNotSupported
	ErrQueueClosed  = core.ErrQueueClosed
	ErrInUse        = core.ErrInUse
	ErrConnRefused  = core.ErrConnRefused
	ErrNotBound     = core.ErrNotBound
	ErrEmptySGA     = core.ErrEmptySGA
)

// SGA builds a scatter-gather array from buffers.
func SGA(bufs ...*Buf) SGArray { return core.SGA(bufs...) }

// NewCatnap builds the POSIX library OS on the real operating system.
// logDir hosts storage logs opened with Open ("" disables storage).
func NewCatnap(logDir string) *catnap.LibOS { return catnap.New(logDir) }

// NewMemRegion builds a shared-memory region on a simulation engine: the
// rendezvous namespace and shared heap that Catmem instances on one host
// attach to.
func NewMemRegion(eng *sim.Engine) *catmem.Region { return catmem.NewRegion(eng) }

// NewCatmem attaches a Catmem (shared-memory queue) libOS instance for
// node to the region. Push hands buffers to the peer by reference — true
// zero-copy between co-located processes.
func NewCatmem(region *catmem.Region, node *sim.Node) *catmem.LibOS { return region.New(node) }

// NewLoopHub builds the in-process wire that Catloop TCP stacks attach to.
func NewLoopHub(eng *sim.Engine) *catloop.Hub { return catloop.NewHub(eng) }

// NewCatloop attaches a Catloop (TCP loopback) libOS instance: a full
// Catnip TCP stack whose frames hop between co-located stacks through one
// address space instead of a NIC.
func NewCatloop(hub *catloop.Hub, node *sim.Node, ip wire.IPAddr) *catloop.LibOS {
	return catloop.New(hub, node, ip)
}
