package wire

import "encoding/binary"

// Wire trailers ride after the IPv4 packet, in the slack between TotalLen
// and the frame's end. A parser that trims to TotalLen never sees them, so
// instrumented stacks interoperate byte-for-byte with untraced ones. Two
// trailers exist, each starting with a 2-byte magic:
//
//   - the distributed-trace trailer (dtrace): [0xD7 0xCE][8-byte trace ID],
//     appended by catnip when a request is sampled, peeled by the receiving
//     stack before protocol dispatch;
//   - the load-tracking trailer (rack): [0xD7 0xAD][server id][outstanding
//     count], appended to every reply a rack server sends, read and
//     stripped by the ToR switch model — the RackSched-style piggyback
//     channel that keeps the switch's per-server load estimates fresh.
//
// When both are present the layout is [IPv4 packet][trace][load]: the trace
// trailer sits at the fixed TotalLen offset (receivers parse it in place)
// and the load trailer sits at the very end of the frame (the ToR strips it
// by truncation, without touching the trace bytes).

// Trace trailer: [0xD7 0xCE][8-byte big-endian trace ID].
const (
	traceMagic0     = 0xD7
	traceMagic1     = 0xCE
	TraceTrailerLen = 10
)

// PutTraceTrailer writes the distributed-trace trailer for ctx into b
// (len(b) >= TraceTrailerLen).
//
//demi:nonalloc
func PutTraceTrailer(b []byte, ctx uint64) {
	b[0] = traceMagic0
	b[1] = traceMagic1
	binary.BigEndian.PutUint64(b[2:], ctx)
}

// ParseTraceTrailer returns the trace context from b, or 0 when b does not
// start with a trace trailer.
//
//demi:nonalloc
func ParseTraceTrailer(b []byte) uint64 {
	if len(b) < TraceTrailerLen || b[0] != traceMagic0 || b[1] != traceMagic1 {
		return 0
	}
	return binary.BigEndian.Uint64(b[2:])
}

// Load trailer: [0xD7 0xAD][2-byte server id][4-byte outstanding count],
// all big-endian. Always the last LoadTrailerLen bytes of the frame.
const (
	loadMagic0     = 0xD7
	loadMagic1     = 0xAD
	LoadTrailerLen = 8
)

// PutLoadTrailer writes the load-tracking trailer into b
// (len(b) >= LoadTrailerLen).
//
//demi:nonalloc
func PutLoadTrailer(b []byte, server uint16, outstanding uint32) {
	b[0] = loadMagic0
	b[1] = loadMagic1
	binary.BigEndian.PutUint16(b[2:], server)
	binary.BigEndian.PutUint32(b[4:], outstanding)
}

// ParseLoadTrailer reads a load trailer from the last LoadTrailerLen bytes
// of frame, reporting ok=false when none is present.
//
//demi:nonalloc
func ParseLoadTrailer(frame []byte) (server uint16, outstanding uint32, ok bool) {
	if len(frame) < LoadTrailerLen {
		return 0, 0, false
	}
	b := frame[len(frame)-LoadTrailerLen:]
	if b[0] != loadMagic0 || b[1] != loadMagic1 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint16(b[2:]), binary.BigEndian.Uint32(b[4:]), true
}

// StripLoadTrailer returns frame with its trailing load trailer removed,
// reporting whether one was present.
//
//demi:nonalloc
func StripLoadTrailer(frame []byte) ([]byte, bool) {
	if _, _, ok := ParseLoadTrailer(frame); !ok {
		return frame, false
	}
	return frame[:len(frame)-LoadTrailerLen], true
}
