package wire

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
}

// Marshal writes the header into b (>= UDPHeaderLen), computing the
// checksum over the pseudo-header and payload, and returns the bytes
// consumed.
//
//demi:nonalloc wire codecs run per packet
func (h *UDPHeader) Marshal(b []byte, src, dst IPAddr, payload []byte) int {
	be.PutUint16(b[0:2], h.SrcPort)
	be.PutUint16(b[2:4], h.DstPort)
	be.PutUint16(b[4:6], h.Length)
	be.PutUint16(b[6:8], 0)
	ck := TransportChecksum(src, dst, ProtoUDP, b[:UDPHeaderLen], payload)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	be.PutUint16(b[6:8], ck)
	return UDPHeaderLen
}

// ParseUDP parses a UDP header, verifies the checksum (unless zero) and
// returns the header and payload trimmed to the UDP length.
//
//demi:nonalloc wire codecs run per packet
func ParseUDP(b []byte, src, dst IPAddr) (UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, nil, ErrTruncated
	}
	var h UDPHeader
	h.SrcPort = be.Uint16(b[0:2])
	h.DstPort = be.Uint16(b[2:4])
	h.Length = be.Uint16(b[4:6])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return UDPHeader{}, nil, ErrTruncated
	}
	payload := b[UDPHeaderLen:h.Length]
	if be.Uint16(b[6:8]) != 0 {
		if !VerifyTransportChecksum(src, dst, ProtoUDP, b[:UDPHeaderLen], payload) {
			return UDPHeader{}, nil, errBadChecksum
		}
	}
	return h, payload, nil
}
