package wire

import "demikernel/internal/simnet"

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPHeaderLen is the length of an IPv4-over-Ethernet ARP packet.
const ARPHeaderLen = 28

// ARPHeader is an IPv4-over-Ethernet ARP packet.
type ARPHeader struct {
	Op                 uint16
	SenderHW, TargetHW simnet.MAC
	SenderIP, TargetIP IPAddr
}

// Marshal writes the packet into b (>= ARPHeaderLen) and returns the bytes
// consumed.
//
//demi:nonalloc wire codecs run per packet
func (h *ARPHeader) Marshal(b []byte) int {
	be.PutUint16(b[0:2], 1)      // hardware type: Ethernet
	be.PutUint16(b[2:4], 0x0800) // protocol type: IPv4
	b[4] = 6                     // hardware address length
	b[5] = 4                     // protocol address length
	be.PutUint16(b[6:8], h.Op)
	copy(b[8:14], h.SenderHW[:])
	copy(b[14:18], h.SenderIP[:])
	copy(b[18:24], h.TargetHW[:])
	copy(b[24:28], h.TargetIP[:])
	return ARPHeaderLen
}

// ParseARP parses an ARP packet.
//
//demi:nonalloc wire codecs run per packet
func ParseARP(b []byte) (ARPHeader, error) {
	if len(b) < ARPHeaderLen {
		return ARPHeader{}, ErrTruncated
	}
	var h ARPHeader
	h.Op = be.Uint16(b[6:8])
	copy(h.SenderHW[:], b[8:14])
	copy(h.SenderIP[:], b[14:18])
	copy(h.TargetHW[:], b[18:24])
	copy(h.TargetIP[:], b[24:28])
	return h, nil
}
