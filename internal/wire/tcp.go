package wire

import "errors"

var (
	errBadChecksum   = errors.New("wire: bad transport checksum")
	errBadIPChecksum = errors.New("wire: bad IPv4 header checksum")
	errNotIPv4       = errors.New("wire: not an IPv4 packet")
)

// IsChecksumError reports whether err indicates a corrupted IPv4 header or
// transport checksum (as opposed to truncation), so RX paths can count
// corruption drops separately from malformed frames.
func IsChecksumError(err error) bool {
	return errors.Is(err, errBadChecksum) || errors.Is(err, errBadIPChecksum)
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCPHeaderLen is the length of an option-free TCP header.
const TCPHeaderLen = 20

// TCP option kinds the stack understands (RFC 793 + RFC 7323).
const (
	tcpOptEnd       = 0
	tcpOptNop       = 1
	tcpOptMSS       = 2
	tcpOptWScale    = 3
	tcpOptTimestamp = 8
)

// TCPOptions carries the parsed options Catnip uses. Zero values mean
// "absent" (flagged explicitly where zero is meaningful).
type TCPOptions struct {
	MSS          uint16 // maximum segment size (SYN only); 0 = absent
	WScale       uint8  // window scale shift (SYN only)
	HasWScale    bool
	TSVal, TSEcr uint32 // RFC 7323 timestamps
	HasTimestamp bool
}

// TCPHeader is a TCP header plus parsed options.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Urgent           uint16
	Opt              TCPOptions
}

// optLen returns the encoded, padded length of the options block.
//
//demi:nonalloc wire codecs run per packet
func (h *TCPHeader) optLen() int {
	n := 0
	if h.Opt.MSS != 0 {
		n += 4
	}
	if h.Opt.HasWScale {
		n += 3
	}
	if h.Opt.HasTimestamp {
		n += 10
	}
	return (n + 3) &^ 3 // pad to a 4-byte boundary
}

// MarshalLen returns the total header length including options.
//
//demi:nonalloc wire codecs run per packet
func (h *TCPHeader) MarshalLen() int { return TCPHeaderLen + h.optLen() }

// Marshal writes the header (with options and checksum) into b, which must
// be at least MarshalLen bytes, and returns the bytes consumed.
//
//demi:nonalloc wire codecs run per packet
//demi:budget=1200ns static estimate 767ns; header marshal is per-segment
func (h *TCPHeader) Marshal(b []byte, src, dst IPAddr, payload []byte) int {
	hlen := h.MarshalLen()
	be.PutUint16(b[0:2], h.SrcPort)
	be.PutUint16(b[2:4], h.DstPort)
	be.PutUint32(b[4:8], h.Seq)
	be.PutUint32(b[8:12], h.Ack)
	b[12] = uint8(hlen/4) << 4
	b[13] = h.Flags
	be.PutUint16(b[14:16], h.Window)
	be.PutUint16(b[16:18], 0) // checksum, filled below
	be.PutUint16(b[18:20], h.Urgent)
	o := b[TCPHeaderLen:hlen]
	for i := range o {
		o[i] = tcpOptNop
	}
	i := 0
	if h.Opt.MSS != 0 {
		o[i], o[i+1] = tcpOptMSS, 4
		be.PutUint16(o[i+2:i+4], h.Opt.MSS)
		i += 4
	}
	if h.Opt.HasWScale {
		o[i], o[i+1], o[i+2] = tcpOptWScale, 3, h.Opt.WScale
		i += 3
	}
	if h.Opt.HasTimestamp {
		o[i], o[i+1] = tcpOptTimestamp, 10
		be.PutUint32(o[i+2:i+6], h.Opt.TSVal)
		be.PutUint32(o[i+6:i+10], h.Opt.TSEcr)
	}
	ck := TransportChecksum(src, dst, ProtoTCP, b[:hlen], payload)
	be.PutUint16(b[16:18], ck)
	return hlen
}

// ParseTCP parses a TCP header with options, verifies the checksum, and
// returns the header and payload.
//
//demi:nonalloc wire codecs run per packet
//demi:budget=1700ns static estimate 1.131us; parse+checksum is per-segment
func ParseTCP(b []byte, src, dst IPAddr) (TCPHeader, []byte, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, nil, ErrTruncated
	}
	hlen := int(b[12]>>4) * 4
	if hlen < TCPHeaderLen || len(b) < hlen {
		return TCPHeader{}, nil, ErrTruncated
	}
	if !VerifyTransportChecksum(src, dst, ProtoTCP, b[:hlen], b[hlen:]) {
		return TCPHeader{}, nil, errBadChecksum
	}
	var h TCPHeader
	h.SrcPort = be.Uint16(b[0:2])
	h.DstPort = be.Uint16(b[2:4])
	h.Seq = be.Uint32(b[4:8])
	h.Ack = be.Uint32(b[8:12])
	h.Flags = b[13]
	h.Window = be.Uint16(b[14:16])
	h.Urgent = be.Uint16(b[18:20])
	if err := parseTCPOptions(b[TCPHeaderLen:hlen], &h.Opt); err != nil {
		return TCPHeader{}, nil, err
	}
	return h, b[hlen:], nil
}

//demi:nonalloc wire codecs run per packet
func parseTCPOptions(o []byte, opt *TCPOptions) error {
	for len(o) > 0 {
		switch o[0] {
		case tcpOptEnd:
			return nil
		case tcpOptNop:
			o = o[1:]
			continue
		}
		if len(o) < 2 || int(o[1]) < 2 || int(o[1]) > len(o) {
			return ErrTruncated
		}
		kind, l := o[0], int(o[1])
		body := o[2:l]
		switch kind {
		case tcpOptMSS:
			if len(body) == 2 {
				opt.MSS = be.Uint16(body)
			}
		case tcpOptWScale:
			if len(body) == 1 {
				opt.WScale = body[0]
				opt.HasWScale = true
			}
		case tcpOptTimestamp:
			if len(body) == 8 {
				opt.TSVal = be.Uint32(body[0:4])
				opt.TSEcr = be.Uint32(body[4:8])
				opt.HasTimestamp = true
			}
		}
		o = o[l:]
	}
	return nil
}
