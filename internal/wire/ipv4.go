package wire

import "fmt"

// IPAddr is an IPv4 address.
type IPAddr [4]byte

// String formats the address in dotted-quad form.
func (a IPAddr) String() string { return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3]) }

// Uint32 returns the address as a big-endian integer.
func (a IPAddr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// IPFromUint32 builds an address from a big-endian integer.
func IPFromUint32(v uint32) IPAddr {
	return IPAddr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IsZero reports whether the address is 0.0.0.0.
func (a IPAddr) IsZero() bool { return a == IPAddr{} }

// IP protocol numbers.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// IPv4HeaderLen is the length of an options-free IPv4 header, the only kind
// the stacks emit.
const IPv4HeaderLen = 20

// IPv4Header is an IPv4 header without options.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16 // header + payload
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word (DF = 0b010)
	FragOff  uint16
	TTL      uint8
	Proto    uint8
	Src, Dst IPAddr
}

// DontFragment is the DF bit in Flags.
const DontFragment = 0b010

// Marshal writes the header into b (>= IPv4HeaderLen bytes), computing the
// header checksum, and returns the bytes consumed.
//
//demi:nonalloc wire codecs run per packet
func (h *IPv4Header) Marshal(b []byte) int {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	be.PutUint16(b[2:4], h.TotalLen)
	be.PutUint16(b[4:6], h.ID)
	be.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Proto
	be.PutUint16(b[10:12], 0)
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	be.PutUint16(b[10:12], Checksum(b[:IPv4HeaderLen]))
	return IPv4HeaderLen
}

// ParseIPv4 parses an IPv4 header, validates version, length and checksum,
// and returns the header with its payload (trimmed to TotalLen).
//
//demi:nonalloc wire codecs run per packet
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, nil, errNotIPv4
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4Header{}, nil, ErrTruncated
	}
	if Checksum(b[:ihl]) != 0 {
		return IPv4Header{}, nil, errBadIPChecksum
	}
	var h IPv4Header
	h.TOS = b[1]
	h.TotalLen = be.Uint16(b[2:4])
	h.ID = be.Uint16(b[4:6])
	frag := be.Uint16(b[6:8])
	h.Flags = uint8(frag >> 13)
	h.FragOff = frag & 0x1fff
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(b) {
		return IPv4Header{}, nil, ErrTruncated
	}
	return h, b[ihl:h.TotalLen], nil
}
