// Package wire implements the wire formats Demikernel-Go's network stacks
// speak on the simulated fabric: Ethernet II, ARP, IPv4, UDP and TCP
// (including the RFC 7323 options Catnip uses). Headers marshal to and from
// byte slices with explicit offsets; there is no reflection or encoding
// framework on the datapath.
package wire

import (
	"encoding/binary"
	"errors"

	"demikernel/internal/simnet"
)

// be is the big-endian byte order used by every network header.
var be = binary.BigEndian

// EtherType values used on the fabric.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	// EtherTypeRDMA carries the simulated RDMA NIC's transport frames
	// (analogous to RoCEv1's 0x8915).
	EtherTypeRDMA uint16 = 0x8915
)

// EthHeaderLen is the length of an Ethernet II header.
const EthHeaderLen = 14

// ErrTruncated is returned when a buffer is too short for the header being
// parsed.
var ErrTruncated = errors.New("wire: truncated packet")

// EthHeader is an Ethernet II header.
type EthHeader struct {
	Dst, Src  simnet.MAC
	EtherType uint16
}

// Marshal writes the header into b, which must be at least EthHeaderLen
// bytes, and returns the bytes consumed.
//
//demi:nonalloc wire codecs run per packet
func (h *EthHeader) Marshal(b []byte) int {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	be.PutUint16(b[12:14], h.EtherType)
	return EthHeaderLen
}

// ParseEth parses an Ethernet header and returns it with the payload.
//
//demi:nonalloc wire codecs run per packet
func ParseEth(b []byte) (EthHeader, []byte, error) {
	if len(b) < EthHeaderLen {
		return EthHeader{}, nil, ErrTruncated
	}
	var h EthHeader
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = be.Uint16(b[12:14])
	return h, b[EthHeaderLen:], nil
}
