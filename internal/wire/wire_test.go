package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"demikernel/internal/simnet"
)

func TestEthRoundtrip(t *testing.T) {
	h := EthHeader{
		Dst:       simnet.MAC{1, 2, 3, 4, 5, 6},
		Src:       simnet.MAC{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
	}
	buf := make([]byte, EthHeaderLen+3)
	n := h.Marshal(buf)
	if n != EthHeaderLen {
		t.Fatalf("marshal consumed %d, want %d", n, EthHeaderLen)
	}
	got, payload, err := ParseEth(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v, want %+v", got, h)
	}
	if len(payload) != 3 {
		t.Errorf("payload length %d, want 3", len(payload))
	}
}

func TestEthTruncated(t *testing.T) {
	if _, _, err := ParseEth(make([]byte, 13)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestChecksumRFCExample(t *testing.T) {
	// Example from RFC 1071 §3: the checksum of these words is well known.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	ck := Checksum(data)
	// Verify the defining property instead of a magic constant: appending
	// the checksum makes the buffer sum to zero.
	withCk := append(append([]byte{}, data...), byte(ck>>8), byte(ck))
	if Checksum(withCk) != 0 {
		t.Error("checksum does not self-verify")
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Error("odd-length padding wrong")
	}
}

func TestIPv4Roundtrip(t *testing.T) {
	h := IPv4Header{
		TOS:      0,
		TotalLen: IPv4HeaderLen + 11,
		ID:       0x1234,
		Flags:    DontFragment,
		TTL:      64,
		Proto:    ProtoUDP,
		Src:      IPAddr{10, 0, 0, 1},
		Dst:      IPAddr{10, 0, 0, 2},
	}
	buf := make([]byte, 64)
	h.Marshal(buf)
	got, payload, err := ParseIPv4(buf[:h.TotalLen])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v, want %+v", got, h)
	}
	if len(payload) != 11 {
		t.Errorf("payload %d bytes, want 11", len(payload))
	}
}

func TestIPv4CorruptionDetected(t *testing.T) {
	h := IPv4Header{TotalLen: IPv4HeaderLen, TTL: 64, Proto: ProtoTCP,
		Src: IPAddr{1, 1, 1, 1}, Dst: IPAddr{2, 2, 2, 2}}
	buf := make([]byte, IPv4HeaderLen)
	h.Marshal(buf)
	buf[8] ^= 0xff // corrupt TTL
	if _, _, err := ParseIPv4(buf); err == nil {
		t.Error("corrupted header accepted")
	}
}

func TestIPAddrConversions(t *testing.T) {
	a := IPAddr{192, 168, 1, 42}
	if IPFromUint32(a.Uint32()) != a {
		t.Error("uint32 roundtrip failed")
	}
	if a.String() != "192.168.1.42" {
		t.Errorf("String = %q", a.String())
	}
	if a.IsZero() || !(IPAddr{}).IsZero() {
		t.Error("IsZero misclassifies")
	}
}

func TestARPRoundtrip(t *testing.T) {
	h := ARPHeader{
		Op:       ARPRequest,
		SenderHW: simnet.MAC{1, 2, 3, 4, 5, 6},
		SenderIP: IPAddr{10, 0, 0, 1},
		TargetIP: IPAddr{10, 0, 0, 2},
	}
	buf := make([]byte, ARPHeaderLen)
	h.Marshal(buf)
	got, err := ParseARP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v, want %+v", got, h)
	}
}

func TestUDPRoundtrip(t *testing.T) {
	src, dst := IPAddr{10, 0, 0, 1}, IPAddr{10, 0, 0, 2}
	payload := []byte("hello, demikernel")
	h := UDPHeader{SrcPort: 1234, DstPort: 80, Length: uint16(UDPHeaderLen + len(payload))}
	buf := make([]byte, UDPHeaderLen+len(payload))
	h.Marshal(buf, src, dst, payload)
	copy(buf[UDPHeaderLen:], payload)
	got, gotPayload, err := ParseUDP(buf, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v, want %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Error("payload corrupted")
	}
}

func TestUDPChecksumCatchesCorruption(t *testing.T) {
	src, dst := IPAddr{10, 0, 0, 1}, IPAddr{10, 0, 0, 2}
	payload := []byte("data")
	h := UDPHeader{SrcPort: 1, DstPort: 2, Length: uint16(UDPHeaderLen + len(payload))}
	buf := make([]byte, UDPHeaderLen+len(payload))
	h.Marshal(buf, src, dst, payload)
	copy(buf[UDPHeaderLen:], payload)
	buf[UDPHeaderLen] ^= 1
	if _, _, err := ParseUDP(buf, src, dst); !IsChecksumError(err) {
		t.Errorf("err = %v, want checksum error", err)
	}
}

func TestTCPRoundtripWithOptions(t *testing.T) {
	src, dst := IPAddr{10, 0, 0, 1}, IPAddr{10, 0, 0, 2}
	payload := []byte("GET / HTTP/1.1")
	h := TCPHeader{
		SrcPort: 33000, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: TCPSyn | TCPAck, Window: 0xffff,
		Opt: TCPOptions{
			MSS: 1460, WScale: 7, HasWScale: true,
			TSVal: 111, TSEcr: 222, HasTimestamp: true,
		},
	}
	buf := make([]byte, h.MarshalLen()+len(payload))
	n := h.Marshal(buf, src, dst, payload)
	copy(buf[n:], payload)
	got, gotPayload, err := ParseTCP(buf, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v, want %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Error("payload corrupted")
	}
}

func TestTCPNoOptions(t *testing.T) {
	src, dst := IPAddr{1, 1, 1, 1}, IPAddr{2, 2, 2, 2}
	h := TCPHeader{SrcPort: 5, DstPort: 6, Seq: 9, Ack: 10, Flags: TCPAck, Window: 100}
	if h.MarshalLen() != TCPHeaderLen {
		t.Fatalf("MarshalLen = %d, want %d", h.MarshalLen(), TCPHeaderLen)
	}
	buf := make([]byte, TCPHeaderLen)
	h.Marshal(buf, src, dst, nil)
	got, _, err := ParseTCP(buf, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip: got %+v, want %+v", got, h)
	}
}

func TestTCPChecksumCatchesCorruption(t *testing.T) {
	src, dst := IPAddr{1, 1, 1, 1}, IPAddr{2, 2, 2, 2}
	h := TCPHeader{SrcPort: 5, DstPort: 6, Flags: TCPAck}
	payload := []byte("payload")
	buf := make([]byte, h.MarshalLen()+len(payload))
	n := h.Marshal(buf, src, dst, payload)
	copy(buf[n:], payload)
	buf[4] ^= 0x80 // flip a seq bit
	if _, _, err := ParseTCP(buf, src, dst); !IsChecksumError(err) {
		t.Errorf("err = %v, want checksum error", err)
	}
}

// Property: any TCP header with arbitrary field values survives a
// marshal/parse roundtrip with a valid checksum.
func TestTCPRoundtripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, mss uint16, payload []byte) bool {
		src, dst := IPAddr{10, 1, 2, 3}, IPAddr{10, 4, 5, 6}
		h := TCPHeader{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: flags &^ 0xc0, Window: win,
			Opt: TCPOptions{MSS: mss},
		}
		buf := make([]byte, h.MarshalLen()+len(payload))
		n := h.Marshal(buf, src, dst, payload)
		copy(buf[n:], payload)
		got, gotPayload, err := ParseTCP(buf, src, dst)
		return err == nil && got == h && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: UDP roundtrip for arbitrary payloads.
func TestUDPRoundtripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		src, dst := IPAddr{172, 16, 0, 1}, IPAddr{172, 16, 0, 2}
		h := UDPHeader{SrcPort: sp, DstPort: dp, Length: uint16(UDPHeaderLen + len(payload))}
		if int(h.Length) != UDPHeaderLen+len(payload) {
			return true // length overflow: not representable, skip
		}
		buf := make([]byte, UDPHeaderLen+len(payload))
		h.Marshal(buf, src, dst, payload)
		copy(buf[UDPHeaderLen:], payload)
		got, gotPayload, err := ParseUDP(buf, src, dst)
		return err == nil && got == h && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
