package wire

import (
	"testing"
	"testing/quick"
)

// Parsers face attacker-controlled bytes from the wire: none may panic,
// whatever the input. quick.Check drives them with arbitrary buffers.

func TestParsersNeverPanicOnRandomBytes(t *testing.T) {
	src, dst := IPAddr{1, 2, 3, 4}, IPAddr{5, 6, 7, 8}
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ParseEth(b)
		ParseIPv4(b)
		ParseARP(b)
		ParseUDP(b, src, dst)
		ParseTCP(b, src, dst)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Truncating a valid packet at every length must return an error or a
// consistent result — never a panic or an out-of-range slice.
func TestTCPTruncationSweep(t *testing.T) {
	src, dst := IPAddr{1, 1, 1, 1}, IPAddr{2, 2, 2, 2}
	h := TCPHeader{
		SrcPort: 1, DstPort: 2, Seq: 3, Ack: 4, Flags: TCPAck | TCPPsh, Window: 5,
		Opt: TCPOptions{MSS: 1460, WScale: 7, HasWScale: true, TSVal: 9, TSEcr: 10, HasTimestamp: true},
	}
	payload := []byte("0123456789abcdef")
	buf := make([]byte, h.MarshalLen()+len(payload))
	n := h.Marshal(buf, src, dst, payload)
	copy(buf[n:], payload)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ParseTCP(buf[:cut], src, dst); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestIPv4TruncationSweep(t *testing.T) {
	h := IPv4Header{TotalLen: IPv4HeaderLen + 8, TTL: 4, Proto: ProtoUDP,
		Src: IPAddr{9, 9, 9, 9}, Dst: IPAddr{8, 8, 8, 8}}
	buf := make([]byte, int(h.TotalLen))
	h.Marshal(buf)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ParseIPv4(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Malformed TCP option lengths (zero or overlong) must not loop or panic.
func TestTCPOptionMalformedLengths(t *testing.T) {
	src, dst := IPAddr{1, 1, 1, 1}, IPAddr{2, 2, 2, 2}
	base := TCPHeader{SrcPort: 1, DstPort: 2, Flags: TCPAck}
	buf := make([]byte, TCPHeaderLen+8)
	base.Marshal(buf, src, dst, nil)
	buf[12] = byte((TCPHeaderLen + 8) / 4 << 4) // claim options present
	for _, optBytes := range [][]byte{
		{2, 0, 0, 0, 0, 0, 0, 0},   // MSS with length 0
		{3, 255, 0, 0, 0, 0, 0, 0}, // WScale overlong
		{8, 1, 0, 0, 0, 0, 0, 0},   // timestamp too short
		{99, 3, 1, 99, 3, 1, 0, 0}, // unknown kinds
	} {
		copy(buf[TCPHeaderLen:], optBytes)
		// Recompute the checksum so only the options are at fault.
		buf[16], buf[17] = 0, 0
		ck := TransportChecksum(src, dst, ProtoTCP, buf, nil)
		buf[16], buf[17] = byte(ck>>8), byte(ck)
		_, _, err := ParseTCP(buf, src, dst)
		_ = err // error or success both fine; no panic, no hang
	}
}
