package wire

// Checksum computes the RFC 1071 internet checksum over b: the one's
// complement of the one's-complement sum of 16-bit words. A buffer with a
// valid embedded checksum sums to zero.
//
//demi:nonalloc wire codecs run per packet
func Checksum(b []byte) uint16 {
	return finish(sum16(b, 0))
}

// sum16 accumulates the one's-complement sum of b into acc. Odd trailing
// bytes are padded with zero, per the RFC.
//
//demi:nonalloc wire codecs run per packet
func sum16(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(be.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

// finish folds carries and complements the accumulator.
//
//demi:nonalloc wire codecs run per packet
func finish(acc uint32) uint16 {
	for acc > 0xffff {
		acc = (acc >> 16) + (acc & 0xffff)
	}
	return ^uint16(acc)
}

// pseudoHeaderSum computes the partial sum of the TCP/UDP pseudo-header.
//
//demi:nonalloc wire codecs run per packet
func pseudoHeaderSum(src, dst IPAddr, proto uint8, length int) uint32 {
	var acc uint32
	acc = sum16(src[:], acc)
	acc = sum16(dst[:], acc)
	acc += uint32(proto)
	acc += uint32(length)
	return acc
}

// TransportChecksum computes the UDP/TCP checksum over the pseudo-header,
// transport header and payload. The checksum field inside hdr must be zero.
//
//demi:nonalloc wire codecs run per packet
func TransportChecksum(src, dst IPAddr, proto uint8, hdr, payload []byte) uint16 {
	acc := pseudoHeaderSum(src, dst, proto, len(hdr)+len(payload))
	acc = sum16(hdr, acc)
	// An odd-length header would misalign the payload sum; transport
	// headers are always even-length so this cannot happen.
	acc = sum16(payload, acc)
	return finish(acc)
}

// VerifyTransportChecksum reports whether the checksum embedded in hdr is
// consistent with the pseudo-header and payload.
//
//demi:nonalloc wire codecs run per packet
func VerifyTransportChecksum(src, dst IPAddr, proto uint8, hdr, payload []byte) bool {
	acc := pseudoHeaderSum(src, dst, proto, len(hdr)+len(payload))
	acc = sum16(hdr, acc)
	acc = sum16(payload, acc)
	return finish(acc) == 0
}
