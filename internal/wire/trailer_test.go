package wire

import "testing"

func TestTraceTrailerRoundTrip(t *testing.T) {
	b := make([]byte, TraceTrailerLen)
	PutTraceTrailer(b, 0xDEADBEEFCAFE)
	if got := ParseTraceTrailer(b); got != 0xDEADBEEFCAFE {
		t.Fatalf("ParseTraceTrailer = %#x", got)
	}
	if got := ParseTraceTrailer(b[:9]); got != 0 {
		t.Errorf("short buffer parsed as %#x", got)
	}
	b[0] ^= 0xFF
	if got := ParseTraceTrailer(b); got != 0 {
		t.Errorf("bad magic parsed as %#x", got)
	}
}

func TestLoadTrailerRoundTrip(t *testing.T) {
	frame := make([]byte, 64+LoadTrailerLen)
	for i := 0; i < 64; i++ {
		frame[i] = byte(i)
	}
	PutLoadTrailer(frame[64:], 7, 4096)
	srv, load, ok := ParseLoadTrailer(frame)
	if !ok || srv != 7 || load != 4096 {
		t.Fatalf("ParseLoadTrailer = (%d, %d, %v)", srv, load, ok)
	}
	stripped, had := StripLoadTrailer(frame)
	if !had || len(stripped) != 64 {
		t.Fatalf("StripLoadTrailer: had=%v len=%d", had, len(stripped))
	}
	if _, _, ok := ParseLoadTrailer(stripped); ok {
		t.Error("stripped frame still parses a load trailer")
	}
	// Stripping an untrailed frame is a no-op.
	again, had := StripLoadTrailer(stripped)
	if had || len(again) != 64 {
		t.Errorf("second strip: had=%v len=%d", had, len(again))
	}
}

// TestTrailerStacking pins the combined layout [packet][trace][load]: the
// trace trailer parses at the fixed past-TotalLen offset and the load
// trailer strips off the end without disturbing it.
func TestTrailerStacking(t *testing.T) {
	const pkt = 40 // stand-in for an IPv4 packet of TotalLen 40
	frame := make([]byte, pkt+TraceTrailerLen+LoadTrailerLen)
	PutTraceTrailer(frame[pkt:], 99)
	PutLoadTrailer(frame[pkt+TraceTrailerLen:], 3, 12)
	if srv, load, ok := ParseLoadTrailer(frame); !ok || srv != 3 || load != 12 {
		t.Fatalf("load = (%d,%d,%v)", srv, load, ok)
	}
	stripped, _ := StripLoadTrailer(frame)
	if got := ParseTraceTrailer(stripped[pkt:]); got != 99 {
		t.Fatalf("trace context after strip = %d", got)
	}
}
