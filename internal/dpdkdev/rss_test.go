package dpdkdev

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"demikernel/internal/sim"
	"demikernel/internal/simnet"
)

// TestToeplitzKnownVectors pins the hash to the published Microsoft RSS
// verification vectors (IPv4 with ports), so our NIC model agrees with
// real hardware programmed with the canonical key.
func TestToeplitzKnownVectors(t *testing.T) {
	cases := []struct {
		srcIP, dstIP     [4]byte
		srcPort, dstPort uint16
		want             uint32
	}{
		// From the Windows DDK RSS verification suite: input is
		// (dst, src, dstPort, srcPort) in their table's notation; our
		// FlowHash takes wire order (src first), so arguments are swapped
		// accordingly.
		{[4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}, 2794, 1766, 0x51ccc178},
		{[4]byte{199, 92, 111, 2}, [4]byte{65, 69, 140, 83}, 14230, 4739, 0xc626b0ea},
	}
	for _, c := range cases {
		got := FlowHash(c.srcIP, c.dstIP, c.srcPort, c.dstPort)
		if got != c.want {
			t.Errorf("FlowHash(%v:%d -> %v:%d) = %#x, want %#x",
				c.srcIP, c.srcPort, c.dstIP, c.dstPort, got, c.want)
		}
	}
}

// TestRSSDistribution hashes 10k random flows into 2/4/8 queues and checks
// every queue receives close to its fair share — the Toeplitz hash must
// not skew load across cores.
func TestRSSDistribution(t *testing.T) {
	const flows = 10000
	rng := rand.New(rand.NewSource(42))
	for _, nq := range []int{2, 4, 8} {
		counts := make([]int, nq)
		for i := 0; i < flows; i++ {
			var src, dst [4]byte
			binary.BigEndian.PutUint32(src[:], rng.Uint32())
			binary.BigEndian.PutUint32(dst[:], rng.Uint32())
			q := QueueForFlow(nq, src, dst, uint16(rng.Uint32()), uint16(rng.Uint32()))
			if q < 0 || q >= nq {
				t.Fatalf("queue %d out of range [0,%d)", q, nq)
			}
			counts[q]++
		}
		fair := flows / nq
		for q, c := range counts {
			if c < fair*7/10 || c > fair*13/10 {
				t.Errorf("%d queues: queue %d got %d flows, fair share %d (±30%%)",
					nq, q, c, fair)
			}
		}
	}
}

// tcpFrame builds a minimal Ethernet+IPv4+TCP frame as the RSS parser sees
// it.
func tcpFrame(dst, src simnet.MAC, srcIP, dstIP [4]byte, sport, dport uint16, tag byte) []byte {
	f := make([]byte, 64)
	copy(f[0:6], dst[:])
	copy(f[6:12], src[:])
	f[12], f[13] = 0x08, 0x00 // IPv4
	f[14] = 0x45              // version 4, ihl 5
	f[23] = 6                 // TCP
	copy(f[26:30], srcIP[:])
	copy(f[30:34], dstIP[:])
	binary.BigEndian.PutUint16(f[34:36], sport)
	binary.BigEndian.PutUint16(f[36:38], dport)
	f[63] = tag
	return f
}

// TestRSSAffinity sends interleaved frames of several flows through a
// 4-queue port and checks every flow's frames land on its predicted queue,
// in order — the property per-core TCP state depends on.
func TestRSSAffinity(t *testing.T) {
	eng := sim.NewEngine(7)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	tx := Attach(sw, eng.NewNode("tx"), simnet.DefaultLink(), 128, 0)
	host := eng.NewHost("rx", 4)
	rx := AttachQueues(sw, host.Core(0), simnet.DefaultLink(), Config{PoolSize: 128, Queues: 4})
	for i := 0; i < 4; i++ {
		rx.Queue(i).SetOwner(host.Core(i))
	}

	srcIP, dstIP := [4]byte{10, 0, 0, 2}, [4]byte{10, 0, 0, 1}
	const dport = 7000
	sports := []uint16{40000, 40001, 40002, 40003, 40004}
	eng.Spawn(tx.Node(), func() {
		for round := 0; round < 3; round++ {
			for _, sp := range sports {
				tx.TxBurst([][]byte{tcpFrame(rx.MAC(), tx.MAC(), srcIP, dstIP, sp, dport, byte(round))})
			}
		}
	})
	eng.Run()

	for _, sp := range sports {
		want := QueueForFlow(4, srcIP, dstIP, sp, dport)
		q := rx.Queue(want)
		ms := q.RxBurst(64)
		seen := 0
		for _, m := range ms {
			if binary.BigEndian.Uint16(m.Data[34:36]) != sp {
				continue
			}
			if m.Data[63] != byte(seen) {
				t.Fatalf("flow sport=%d frames reordered on queue %d", sp, want)
			}
			seen++
			m.Free()
		}
		// Frames for other flows sharing the queue go back for their pass.
		for _, m := range ms {
			if binary.BigEndian.Uint16(m.Data[34:36]) != sp {
				q.ring = append(q.ring, m.Data)
				m.Free()
			}
		}
		if seen != 3 {
			t.Fatalf("flow sport=%d: %d/3 frames on predicted queue %d", sp, seen, want)
		}
	}
	// Non-IP frames (e.g. ARP) land on queue 0.
	arp := make([]byte, 64)
	mac := rx.MAC()
	copy(arp[0:6], mac[:])
	arp[12], arp[13] = 0x08, 0x06
	if got := rx.rxQueue(arp); got != 0 {
		t.Errorf("non-IP frame classified to queue %d, want 0", got)
	}
}

// TestRxRingFullDrop bounds a queue's rx ring at 2 descriptors and checks
// overflow frames are counted (and only counted) as RxRingFull drops.
func TestRxRingFullDrop(t *testing.T) {
	eng := sim.NewEngine(13)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	tx := Attach(sw, eng.NewNode("tx"), simnet.DefaultLink(), 128, 0)
	rxNode := eng.NewNode("rx")
	rx := AttachQueues(sw, rxNode, simnet.DefaultLink(), Config{PoolSize: 128, RxRing: 2, Queues: 1})
	eng.Spawn(tx.Node(), func() {
		var frames [][]byte
		for i := 0; i < 5; i++ {
			frames = append(frames, tcpFrame(rx.MAC(), tx.MAC(), [4]byte{10, 0, 0, 2}, [4]byte{10, 0, 0, 1}, 40000, 7000, byte(i)))
		}
		tx.TxBurst(frames) // rx never polls: ring fills at 2
	})
	eng.Run()
	q := rx.Queue(0)
	if q.RxPending() != 2 {
		t.Errorf("ring holds %d frames, want 2", q.RxPending())
	}
	if q.Stats().RxRingFull != 3 {
		t.Errorf("RxRingFull = %d, want 3", q.Stats().RxRingFull)
	}
	if rx.Stats().RxRingFull != 3 {
		t.Errorf("port aggregate RxRingFull = %d, want 3", rx.Stats().RxRingFull)
	}
	if q.Stats().RxPackets != 0 {
		t.Errorf("RxPackets = %d before any poll", q.Stats().RxPackets)
	}
}
