package dpdkdev

import "encoding/binary"

// Receive-side scaling: the NIC hashes each arriving frame's IPv4 5-tuple
// with the Toeplitz function and steers it through a 128-entry indirection
// table to an rx queue. The hash is a pure function of the flow, so every
// frame of one flow lands on one queue — per-flow ordering and per-core
// connection affinity fall out of the hardware, not software locking.
// Frames the parser cannot classify (ARP, non-initial fragments, runts) go
// to queue 0, as real NICs default.

// retaSize is the indirection-table size (Intel/Mellanox default).
const retaSize = 128

// rssKey is the canonical Microsoft RSS key, the default programmed by
// every major NIC driver. Using the well-known constant keeps the mapping
// reproducible across runs and implementations.
var rssKey = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// keyWindow returns the 32 key bits starting at bit offset off, wrapping
// at the key's end (inputs are short enough that wrap never matters for
// the standard 12-byte IPv4 tuple, but the hash stays total).
func keyWindow(off int) uint32 {
	byteOff := off / 8
	shift := off % 8
	var v uint64
	for k := 0; k < 5; k++ {
		v = v<<8 | uint64(rssKey[(byteOff+k)%len(rssKey)])
	}
	return uint32(v >> (8 - shift))
}

// Toeplitz computes the RSS hash of input: for every set bit i, XOR in the
// 32-bit key window starting at bit i.
func Toeplitz(input []byte) uint32 {
	var hash uint32
	for i, b := range input {
		for bit := 0; bit < 8; bit++ {
			if b&(0x80>>bit) != 0 {
				hash ^= keyWindow(i*8 + bit)
			}
		}
	}
	return hash
}

// FlowHash returns the RSS hash of an IPv4 TCP/UDP flow as seen by the
// receiver: source address first, as on the wire.
func FlowHash(srcIP, dstIP [4]byte, srcPort, dstPort uint16) uint32 {
	var in [12]byte
	copy(in[0:4], srcIP[:])
	copy(in[4:8], dstIP[:])
	binary.BigEndian.PutUint16(in[8:10], srcPort)
	binary.BigEndian.PutUint16(in[10:12], dstPort)
	return Toeplitz(in[:])
}

// QueueForFlow returns the queue a flow maps to on a port with nQueues
// queues and the default indirection table. Load generators use it to
// steer a connection at a chosen server core by picking its source port.
func QueueForFlow(nQueues int, srcIP, dstIP [4]byte, srcPort, dstPort uint16) int {
	if nQueues <= 1 {
		return 0
	}
	return int(FlowHash(srcIP, dstIP, srcPort, dstPort)&(retaSize-1)) % nQueues
}

// rxQueue classifies one arriving frame — the NIC's RSS parser. Offsets
// are hand-decoded because hardware sees raw bytes, not parsed headers.
func (p *Port) rxQueue(frame []byte) int {
	if len(p.queues) == 1 {
		return 0
	}
	// Ethernet header (14) + minimal IPv4 header (20).
	if len(frame) < 34 {
		return 0
	}
	if frame[12] != 0x08 || frame[13] != 0x00 { // not IPv4 (ARP etc.)
		return 0
	}
	ihl := int(frame[14]&0x0f) * 4
	if ihl < 20 || len(frame) < 14+ihl+4 {
		return 0
	}
	proto := frame[23]
	if proto != 6 && proto != 17 { // not TCP/UDP
		return 0
	}
	if binary.BigEndian.Uint16(frame[20:22])&0x1fff != 0 {
		return 0 // non-initial fragment: no ports to hash
	}
	var src, dst [4]byte
	copy(src[:], frame[26:30])
	copy(dst[:], frame[30:34])
	sport := binary.BigEndian.Uint16(frame[14+ihl:])
	dport := binary.BigEndian.Uint16(frame[14+ihl+2:])
	return p.reta[FlowHash(src, dst, sport, dport)&(retaSize-1)]
}
