// Package dpdkdev simulates a DPDK-style kernel-bypass Ethernet device: a
// raw NIC port with polled burst receive/transmit rings and a pool-based
// mbuf allocator, attached to the simnet fabric. Like real DPDK, the device
// offers no protocol processing at all — Catnip implements ARP, IPv4, UDP
// and TCP entirely in software above this interface (paper §2.1: DPDK is
// the "low-level raw NIC interface" end of the offload spectrum).
//
// A port carries one or more rx/tx queue pairs. With more than one queue,
// receive-side scaling (RSS, rss.go) steers each arriving frame by a
// deterministic Toeplitz hash of its IPv4 5-tuple through a 128-entry
// indirection table, so one flow always lands on one queue — the hardware
// substrate for shared-nothing multi-core stacks (internal/multicore),
// where every core polls its own queue pair.
package dpdkdev

import (
	"fmt"

	"demikernel/internal/faults"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/telemetry"
)

// Faults bundles the port's injection sites. Any field may be nil (that
// fault class is disabled); SetFaults with the zero value disables all.
type Faults struct {
	// RxStall freezes RxBurst (polls return nothing while the window is
	// open; the rx ring keeps filling and overflows into rx_ring_full).
	RxStall *faults.Site
	// TxStall drops transmitted frames while the window is open (the
	// stack's retransmission machinery must recover).
	TxStall *faults.Site
	// LinkFlap drops frames in both directions while the window is open.
	LinkFlap *faults.Site
	// Corrupt flips one deterministic payload bit in an arriving frame —
	// past the Ethernet header, so an IPv4/TCP/UDP checksum must catch it.
	Corrupt *faults.Site
	// Reset models a full device reset: every rx ring is cleared and the
	// arriving frame that triggered it is lost.
	Reset *faults.Site
}

// Mbuf is a packet buffer handed between the device and the stack. Rx mbufs
// reference the frame delivered by the fabric; Tx mbufs are built by the
// stack. Pool accounting mirrors DPDK's rte_mempool: the stack must Free rx
// mbufs back or the pool runs dry.
type Mbuf struct {
	Data []byte
	pool *MbufPool
}

// Free returns the mbuf to its pool. Freeing a Tx mbuf (no pool) is a
// no-op.
func (m *Mbuf) Free() {
	if m.pool != nil {
		m.pool.free++
		m.pool = nil
	}
}

// MbufPool tracks rx buffer credit, modelling a finite DPDK mempool. All
// queues of a port draw from the one pool.
type MbufPool struct {
	size int
	free int
}

// NewMbufPool returns a pool with the given number of buffers.
func NewMbufPool(size int) *MbufPool { return &MbufPool{size: size, free: size} }

// Available returns the number of free mbufs.
func (p *MbufPool) Available() int { return p.free }

// QueueStats counts one rx/tx queue pair's activity. It is a snapshot view:
// the live counters are registry-backed (Port.Telemetry()), and Stats
// accessors rebuild this struct from them so pre-registry callers keep
// working.
type QueueStats struct {
	RxPackets, TxPackets uint64
	RxBytes, TxBytes     uint64
	// RxRingFull counts frames the NIC dropped because the queue's rx
	// descriptor ring was full — the overload signal for scale-out runs
	// (previously these drops were silent).
	RxRingFull uint64
	// RxNoMbuf counts frames dropped because the mempool was empty.
	RxNoMbuf uint64
}

// queueCounters are one queue's live registry-backed counters.
type queueCounters struct {
	rxPackets, txPackets *telemetry.Counter
	rxBytes, txBytes     *telemetry.Counter
	rxRingFull, rxNoMbuf *telemetry.Counter
}

func newQueueCounters(reg *telemetry.Registry, id int) queueCounters {
	p := fmt.Sprintf("dpdk.q%d.", id)
	return queueCounters{
		rxPackets:  reg.Counter(p + "rx_packets"),
		txPackets:  reg.Counter(p + "tx_packets"),
		rxBytes:    reg.Counter(p + "rx_bytes"),
		txBytes:    reg.Counter(p + "tx_bytes"),
		rxRingFull: reg.Counter(p + "rx_ring_full"),
		rxNoMbuf:   reg.Counter(p + "rx_no_mbuf"),
	}
}

// Stats is the port-level aggregate across all queues.
type Stats struct {
	RxPackets, TxPackets uint64
	RxBytes, TxBytes     uint64
	RxNoMbuf             uint64 // frames dropped because the pool was empty
	RxRingFull           uint64 // frames dropped because an rx ring was full
}

// Config sizes a port at attach time.
type Config struct {
	// PoolSize bounds the shared rx mbuf pool.
	PoolSize int
	// RxRing bounds each queue's rx descriptor ring (0 = unbounded).
	RxRing int
	// Queues is the number of rx/tx queue pairs (0 means 1). With several
	// queues, RSS steers arriving frames by 5-tuple hash.
	Queues int
}

// Port is a simulated DPDK ethdev port.
type Port struct {
	net    *simnet.Port
	pool   *MbufPool
	queues []*Queue
	reta   [retaSize]int // RSS indirection table: hash bits -> queue
	reg    *telemetry.Registry

	flt                    Faults
	fltRxDrops, fltTxDrops *telemetry.Counter
	fltCorrupt, fltResets  *telemetry.Counter
}

// Attach creates a single-queue port for node on the switch. poolSize
// bounds the rx mbuf pool; rxRing bounds the hardware descriptor ring.
func Attach(sw *simnet.Switch, node *sim.Node, link simnet.LinkParams, poolSize, rxRing int) *Port {
	return AttachQueues(sw, node, link, Config{PoolSize: poolSize, RxRing: rxRing, Queues: 1})
}

// AttachQueues creates a port with cfg.Queues rx/tx queue pairs. Every
// queue initially wakes node on arrival; multi-core owners re-bind queues
// to their polling cores with Queue.SetOwner.
func AttachQueues(sw *simnet.Switch, node *sim.Node, link simnet.LinkParams, cfg Config) *Port {
	nq := cfg.Queues
	if nq < 1 {
		nq = 1
	}
	p := &Port{
		net:  sw.Attach(node, link, 0),
		pool: NewMbufPool(cfg.PoolSize),
		reg:  telemetry.NewRegistry(node.Name() + "/dpdk"),
	}
	p.reg.Sample("dpdk.pool_free", func() int64 { return int64(p.pool.free) })
	p.fltRxDrops = p.reg.Counter("dpdk.fault_rx_drops")
	p.fltTxDrops = p.reg.Counter("dpdk.fault_tx_drops")
	p.fltCorrupt = p.reg.Counter("dpdk.fault_corrupt")
	p.fltResets = p.reg.Counter("dpdk.fault_resets")
	for i := 0; i < nq; i++ {
		p.queues = append(p.queues, &Queue{
			port: p, id: i, owner: node, rxLimit: cfg.RxRing,
			tel: newQueueCounters(p.reg, i),
		})
	}
	for i := range p.reta {
		p.reta[i] = i % nq
	}
	p.net.SetRxSink(p)
	return p
}

// MAC returns the port's Ethernet address.
func (p *Port) MAC() simnet.MAC { return p.net.MAC() }

// Node returns the simulated host the port is attached to.
func (p *Port) Node() *sim.Node { return p.net.Node() }

// NetPort returns the underlying fabric attachment — rack harnesses hand it
// to the ToR hook so placement can steer frames to this port directly.
func (p *Port) NetPort() *simnet.Port { return p.net }

// Pool returns the port's shared mbuf pool.
func (p *Port) Pool() *MbufPool { return p.pool }

// NumQueues returns the number of rx/tx queue pairs.
func (p *Port) NumQueues() int { return len(p.queues) }

// Queue returns the i-th rx/tx queue pair.
func (p *Port) Queue(i int) *Queue { return p.queues[i] }

// Stats returns port counters aggregated across every queue.
func (p *Port) Stats() Stats {
	var s Stats
	for _, q := range p.queues {
		qs := q.Stats()
		s.RxPackets += qs.RxPackets
		s.TxPackets += qs.TxPackets
		s.RxBytes += qs.RxBytes
		s.TxBytes += qs.TxBytes
		s.RxNoMbuf += qs.RxNoMbuf
		s.RxRingFull += qs.RxRingFull
	}
	return s
}

// Telemetry returns the port's metric registry (per-queue counters plus the
// sampled mempool level).
func (p *Port) Telemetry() *telemetry.Registry { return p.reg }

// RxBurst polls queue 0 — the single-queue fast path (rte_rx_burst).
func (p *Port) RxBurst(max int) []*Mbuf { return p.queues[0].RxBurst(max) }

// TxBurst submits frames on queue 0 — the single-queue fast path
// (rte_tx_burst).
func (p *Port) TxBurst(frames [][]byte) int { return p.queues[0].TxBurst(frames) }

// InjectRx delivers a frame straight into the port's receive path — the
// trace-replay hook (call from an engine event targeting the owning node).
// The frame passes through RSS classification like any fabric delivery.
func (p *Port) InjectRx(data []byte) { p.net.InjectRx(simnet.Frame{Data: data}) }

// SetFaults installs (or, with the zero value, clears) the port's fault
// injection sites.
func (p *Port) SetFaults(f Faults) { p.flt = f }

// DeliverRx implements simnet.RxSink: classify the arriving frame to a
// queue (RSS) and ring that queue's doorbell. Injected faults act here,
// where a real NIC's MAC/PHY would lose or damage the frame.
func (p *Port) DeliverRx(f simnet.Frame) {
	now := p.net.Node().Now()
	if p.flt.Reset.Fire(now) {
		// A device reset wipes every rx descriptor ring; the frame that
		// arrived during the reset is lost with them.
		p.fltResets.Inc()
		for _, q := range p.queues {
			p.fltRxDrops.Add(uint64(len(q.ring)))
			q.ring = nil
		}
		p.fltRxDrops.Inc()
		return
	}
	if p.flt.LinkFlap.Active(now) {
		p.fltRxDrops.Inc()
		return
	}
	data := f.Data
	if p.flt.Corrupt.Fire(now) && len(data) > wireHeaderLen {
		// Flip one bit past the Ethernet header (a flip inside it would
		// just misroute the frame, which checksums cannot witness). The
		// frame is copied first: the fabric may share the backing array.
		c := make([]byte, len(data))
		copy(c, data)
		off := wireHeaderLen + p.flt.Corrupt.Rand().Intn(len(c)-wireHeaderLen)
		c[off] ^= 1 << uint(p.flt.Corrupt.Rand().Intn(8))
		data = c
		p.fltCorrupt.Inc()
	}
	p.queues[p.rxQueue(data)].deliver(data)
}

// wireHeaderLen is the Ethernet header length — injected bit flips land
// beyond it so the IPv4/transport checksums are obliged to catch them.
const wireHeaderLen = 14

// A Queue is one rx/tx queue pair of a port. Each queue is polled by
// exactly one virtual CPU (its owner); RSS guarantees a flow's frames all
// arrive on one queue, so queues never share connection state.
type Queue struct {
	port    *Port
	id      int
	owner   *sim.Node
	ring    [][]byte
	rxLimit int
	tel     queueCounters
}

// ID returns the queue index.
func (q *Queue) ID() int { return q.id }

// Port returns the owning port.
func (q *Queue) Port() *Port { return q.port }

// MAC returns the port's Ethernet address (shared by all queues).
func (q *Queue) MAC() simnet.MAC { return q.port.MAC() }

// Stats returns a snapshot of this queue's counters.
func (q *Queue) Stats() QueueStats {
	return QueueStats{
		RxPackets:  q.tel.rxPackets.Value(),
		TxPackets:  q.tel.txPackets.Value(),
		RxBytes:    q.tel.rxBytes.Value(),
		TxBytes:    q.tel.txBytes.Value(),
		RxRingFull: q.tel.rxRingFull.Value(),
		RxNoMbuf:   q.tel.rxNoMbuf.Value(),
	}
}

// SetOwner binds the queue to the virtual CPU that polls it: arriving
// frames wake owner, and transmissions are timestamped with its clock.
func (q *Queue) SetOwner(n *sim.Node) { q.owner = n }

// deliver places an arriving frame in the rx ring and wakes the polling
// core, as the NIC's per-queue interrupt would. Runs inside the delivery
// event.
func (q *Queue) deliver(data []byte) {
	if q.rxLimit > 0 && len(q.ring) >= q.rxLimit {
		q.tel.rxRingFull.Inc()
		return
	}
	q.ring = append(q.ring, data)
	if q.owner != nil && q.owner != q.port.net.Node() {
		// The fabric's delivery event targets the attach node; queues
		// polled by other cores need their own wakeup.
		eng := q.port.net.Node().Engine()
		eng.At(eng.Now(), q.owner, nil)
	}
}

// RxBurst polls up to max frames from this queue's rx ring into fresh
// mbufs, DPDK's rte_rx_burst. It returns nil immediately when the ring is
// empty.
func (q *Queue) RxBurst(max int) []*Mbuf {
	now := q.port.net.Node().Now()
	if q.owner != nil {
		now = q.owner.Now()
	}
	if q.port.flt.RxStall.Active(now) {
		// A stalled queue returns nothing; arrivals keep queueing in the
		// ring and overflow into rx_ring_full like a real wedged NIC.
		return nil
	}
	var out []*Mbuf
	for len(out) < max && len(q.ring) > 0 {
		data := q.ring[0]
		q.ring[0] = nil
		q.ring = q.ring[1:]
		if q.port.pool.free == 0 {
			q.tel.rxNoMbuf.Inc()
			continue
		}
		q.port.pool.free--
		out = append(out, &Mbuf{Data: data, pool: q.port.pool})
		q.tel.rxPackets.Inc()
		q.tel.rxBytes.Add(uint64(len(data)))
	}
	return out
}

// RxPending returns the number of frames waiting in this queue's rx ring.
func (q *Queue) RxPending() int { return len(q.ring) }

// TxBurst submits frames to the wire on this queue, DPDK's rte_tx_burst.
// Frames must be complete Ethernet frames sourced from the port's MAC.
// Serialization starts at the owning core's clock. It returns the number
// accepted (always all, the fabric applies backpressure as serialization
// delay).
func (q *Queue) TxBurst(frames [][]byte) int {
	now := q.port.net.Node().Now()
	if q.owner != nil {
		now = q.owner.Now()
	}
	for _, f := range frames {
		if q.port.flt.TxStall.Active(now) || q.port.flt.LinkFlap.Active(now) {
			// The frame is accepted then lost on the wire; the stack's
			// retransmission machinery is responsible for recovery.
			q.port.fltTxDrops.Inc()
			continue
		}
		q.port.net.SendAt(simnet.Frame{Data: f}, now)
		q.tel.txPackets.Inc()
		q.tel.txBytes.Add(uint64(len(f)))
	}
	return len(frames)
}
