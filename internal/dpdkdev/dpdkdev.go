// Package dpdkdev simulates a DPDK-style kernel-bypass Ethernet device: a
// raw NIC port with polled burst receive/transmit rings and a pool-based
// mbuf allocator, attached to the simnet fabric. Like real DPDK, the device
// offers no protocol processing at all — Catnip implements ARP, IPv4, UDP
// and TCP entirely in software above this interface (paper §2.1: DPDK is
// the "low-level raw NIC interface" end of the offload spectrum).
package dpdkdev

import (
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
)

// Mbuf is a packet buffer handed between the device and the stack. Rx mbufs
// reference the frame delivered by the fabric; Tx mbufs are built by the
// stack. Pool accounting mirrors DPDK's rte_mempool: the stack must Free rx
// mbufs back or the pool runs dry.
type Mbuf struct {
	Data []byte
	pool *MbufPool
}

// Free returns the mbuf to its pool. Freeing a Tx mbuf (no pool) is a
// no-op.
func (m *Mbuf) Free() {
	if m.pool != nil {
		m.pool.free++
		m.pool = nil
	}
}

// MbufPool tracks rx buffer credit, modelling a finite DPDK mempool.
type MbufPool struct {
	size int
	free int
}

// NewMbufPool returns a pool with the given number of buffers.
func NewMbufPool(size int) *MbufPool { return &MbufPool{size: size, free: size} }

// Available returns the number of free mbufs.
func (p *MbufPool) Available() int { return p.free }

// Stats counts device activity.
type Stats struct {
	RxPackets, TxPackets uint64
	RxNoMbuf             uint64 // frames dropped because the pool was empty
}

// Port is a simulated DPDK ethdev port.
type Port struct {
	net   *simnet.Port
	pool  *MbufPool
	stats Stats
}

// Attach creates a port for node on the switch. poolSize bounds the rx mbuf
// pool; rxRing bounds the hardware descriptor ring.
func Attach(sw *simnet.Switch, node *sim.Node, link simnet.LinkParams, poolSize, rxRing int) *Port {
	return &Port{
		net:  sw.Attach(node, link, rxRing),
		pool: NewMbufPool(poolSize),
	}
}

// MAC returns the port's Ethernet address.
func (p *Port) MAC() simnet.MAC { return p.net.MAC() }

// Node returns the owning simulated host.
func (p *Port) Node() *sim.Node { return p.net.Node() }

// Pool returns the port's mbuf pool.
func (p *Port) Pool() *MbufPool { return p.pool }

// Stats returns a snapshot of port counters.
func (p *Port) Stats() Stats { return p.stats }

// RxBurst polls up to max frames from the rx ring into fresh mbufs,
// DPDK's rte_rx_burst. It returns nil immediately when the ring is empty.
func (p *Port) RxBurst(max int) []*Mbuf {
	if p.net.RxPending() == 0 {
		return nil
	}
	var out []*Mbuf
	for len(out) < max {
		f, ok := p.net.Recv()
		if !ok {
			break
		}
		if p.pool.free == 0 {
			p.stats.RxNoMbuf++
			continue
		}
		p.pool.free--
		out = append(out, &Mbuf{Data: f.Data, pool: p.pool})
		p.stats.RxPackets++
	}
	return out
}

// TxBurst submits frames to the wire, DPDK's rte_tx_burst. Frames must be
// complete Ethernet frames sourced from this port's MAC. It returns the
// number accepted (always all, the fabric applies backpressure as
// serialization delay).
func (p *Port) TxBurst(frames [][]byte) int {
	for _, f := range frames {
		p.net.Send(simnet.Frame{Data: f})
		p.stats.TxPackets++
	}
	return len(frames)
}

// InjectRx delivers a frame straight into the port's receive ring — the
// trace-replay hook (call from an engine event targeting the owning node).
func (p *Port) InjectRx(data []byte) { p.net.InjectRx(simnet.Frame{Data: data}) }
