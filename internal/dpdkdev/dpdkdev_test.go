package dpdkdev

import (
	"testing"

	"demikernel/internal/sim"
	"demikernel/internal/simnet"
)

func setup(t *testing.T, poolSize, rxRing int) (*sim.Engine, *Port, *Port) {
	t.Helper()
	eng := sim.NewEngine(11)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	a := Attach(sw, eng.NewNode("a"), simnet.DefaultLink(), poolSize, rxRing)
	b := Attach(sw, eng.NewNode("b"), simnet.DefaultLink(), poolSize, rxRing)
	return eng, a, b
}

func frameTo(dst, src simnet.MAC, tag byte) []byte {
	f := make([]byte, 64)
	copy(f[0:6], dst[:])
	copy(f[6:12], src[:])
	f[14] = tag
	return f
}

func TestTxRxBurst(t *testing.T) {
	eng, a, b := setup(t, 128, 0)
	var got []*Mbuf
	eng.Spawn(a.Node(), func() {
		a.TxBurst([][]byte{
			frameTo(b.MAC(), a.MAC(), 1),
			frameTo(b.MAC(), a.MAC(), 2),
		})
	})
	eng.Spawn(b.Node(), func() {
		for len(got) < 2 {
			if ms := b.RxBurst(32); ms != nil {
				got = append(got, ms...)
				continue
			}
			if !b.Node().Park(sim.Infinity) {
				return
			}
		}
	})
	eng.Run()
	if len(got) != 2 || got[0].Data[14] != 1 || got[1].Data[14] != 2 {
		t.Fatalf("burst rx got %d frames, want ordered [1 2]", len(got))
	}
	if b.Stats().RxPackets != 2 || a.Stats().TxPackets != 2 {
		t.Errorf("stats: %+v / %+v", a.Stats(), b.Stats())
	}
}

func TestMbufPoolExhaustionDrops(t *testing.T) {
	eng, a, b := setup(t, 2, 0)
	eng.Spawn(a.Node(), func() {
		for i := 0; i < 5; i++ {
			a.TxBurst([][]byte{frameTo(b.MAC(), a.MAC(), byte(i))})
		}
	})
	var held []*Mbuf
	eng.Spawn(b.Node(), func() {
		for b.Stats().RxPackets+b.Stats().RxNoMbuf < 5 {
			held = append(held, b.RxBurst(32)...) // never freed: pool drains
			if !b.Node().Park(b.Node().Now().Add(sim.Microsecond)) {
				return
			}
		}
	})
	eng.Run()
	if len(held) != 2 {
		t.Errorf("received %d, want 2 (pool size)", len(held))
	}
	if b.Stats().RxNoMbuf != 3 {
		t.Errorf("RxNoMbuf = %d, want 3", b.Stats().RxNoMbuf)
	}
	// Freeing returns credit.
	held[0].Free()
	if b.Pool().Available() != 1 {
		t.Errorf("pool available = %d, want 1", b.Pool().Available())
	}
	held[0].Free() // double free is a no-op
	if b.Pool().Available() != 1 {
		t.Error("double free changed pool credit")
	}
}

func TestRxBurstRespectsMax(t *testing.T) {
	eng, a, b := setup(t, 128, 0)
	eng.Spawn(a.Node(), func() {
		var frames [][]byte
		for i := 0; i < 10; i++ {
			frames = append(frames, frameTo(b.MAC(), a.MAC(), byte(i)))
		}
		a.TxBurst(frames)
	})
	eng.Run()
	ms := b.RxBurst(4)
	if len(ms) != 4 {
		t.Errorf("RxBurst(4) returned %d", len(ms))
	}
}
