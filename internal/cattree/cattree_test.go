package cattree

import (
	"bytes"
	"testing"

	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/spdkdev"
)

// run executes fn on a node with a Cattree libOS over a fresh device.
func run(t *testing.T, fn func(*sim.Engine, *LibOS, *spdkdev.Device)) {
	t.Helper()
	eng := sim.NewEngine(21)
	node := eng.NewNode("host")
	dev := spdkdev.New(node, spdkdev.OptaneParams(), 1<<16)
	l := New(node, dev)
	eng.Spawn(node, func() { fn(eng, l, dev) })
	eng.Run()
}

func pushWait(t *testing.T, l *LibOS, qd core.QDesc, p []byte) {
	t.Helper()
	qt, err := l.Push(qd, core.SGA(memory.CopyFrom(l.Heap(), p)))
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if ev, err := l.Wait(qt); err != nil || ev.Err != nil {
		t.Fatalf("push wait: %v %v", err, ev.Err)
	}
}

func popWait(t *testing.T, l *LibOS, qd core.QDesc) []byte {
	t.Helper()
	qt, err := l.Pop(qd)
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	ev, err := l.Wait(qt)
	if err != nil || ev.Err != nil {
		t.Fatalf("pop wait: %v %v", err, ev.Err)
	}
	if len(ev.SGA.Segs) == 0 {
		return nil // EOF
	}
	out := ev.SGA.Flatten()
	ev.SGA.Free()
	return out
}

func TestAppendThenReadBack(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		qd, err := l.Open("log")
		if err != nil {
			t.Fatal(err)
		}
		pushWait(t, l, qd, []byte("first record"))
		pushWait(t, l, qd, []byte("second record"))
		if got := popWait(t, l, qd); string(got) != "first record" {
			t.Fatalf("got %q", got)
		}
		if got := popWait(t, l, qd); string(got) != "second record" {
			t.Fatalf("got %q", got)
		}
		if got := popWait(t, l, qd); got != nil {
			t.Fatalf("expected EOF, got %q", got)
		}
	})
}

func TestLargeRecordSpansBlocks(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		qd, _ := l.Open("log")
		big := make([]byte, 5000) // ~10 blocks
		for i := range big {
			big[i] = byte(i * 3)
		}
		pushWait(t, l, qd, big)
		if got := popWait(t, l, qd); !bytes.Equal(got, big) {
			t.Fatal("multi-block record corrupted")
		}
	})
}

func TestIndependentCursors(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		q1, _ := l.Open("log")
		q2, _ := l.Open("log")
		pushWait(t, l, q1, []byte("shared"))
		if got := popWait(t, l, q1); string(got) != "shared" {
			t.Fatal("cursor 1 failed")
		}
		if got := popWait(t, l, q2); string(got) != "shared" {
			t.Fatal("cursor 2 must read from its own position")
		}
	})
}

func TestSeekRewinds(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		qd, _ := l.Open("log")
		pushWait(t, l, qd, []byte("replay me"))
		popWait(t, l, qd)
		if err := l.Seek(qd, 0); err != nil {
			t.Fatal(err)
		}
		if got := popWait(t, l, qd); string(got) != "replay me" {
			t.Fatalf("after seek got %q", got)
		}
	})
}

func TestTruncateResetsLog(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		qd, _ := l.Open("log")
		pushWait(t, l, qd, []byte("old"))
		if err := l.Truncate(qd); err != nil {
			t.Fatal(err)
		}
		if l.TailBlock("log") != 0 {
			t.Fatal("tail not reset")
		}
		pushWait(t, l, qd, []byte("new"))
		l.Seek(qd, 0)
		if got := popWait(t, l, qd); string(got) != "new" {
			t.Fatalf("got %q", got)
		}
	})
}

func TestDurabilityPushCompletesOnlyWhenDurable(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		qd, _ := l.Open("log")
		buf := memory.CopyFrom(l.Heap(), []byte("durable?"))
		qt, _ := l.Push(qd, core.SGA(buf))
		// Token must not be complete before the device write finishes.
		if _, done, _ := tokensPeek(l, qt); done {
			t.Fatal("push completed before device write")
		}
		if ev, err := l.Wait(qt); err != nil || ev.Err != nil {
			t.Fatal(err)
		}
		// Two device writes: the directory record for the new log name,
		// and the pushed record itself.
		if dev.Stats().Writes != 2 {
			t.Fatalf("device writes = %d", dev.Stats().Writes)
		}
	})
}

// tokensPeek inspects completion state without consuming (test helper).
func tokensPeek(l *LibOS, qt core.QToken) (core.QEvent, bool, error) {
	op, ok := l.tokens.Lookup(qt)
	if !ok {
		return core.QEvent{}, false, core.ErrBadQToken
	}
	return core.QEvent{}, op.Done(), nil
}

func TestMountRecoversAfterCrash(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		qd, _ := l.Open("log")
		pushWait(t, l, qd, []byte("rec-a"))
		pushWait(t, l, qd, []byte("rec-b"))
		// An in-flight record lost to power failure:
		l.Push(qd, core.SGA(memory.CopyFrom(l.Heap(), []byte("rec-lost"))))
		dev.Crash()

		// "Restart": fresh libOS over the same device.
		l2 := New(l.Node(), dev)
		if err := l2.Mount(); err != nil {
			t.Fatal(err)
		}
		// Three recovered records: the directory entry plus two data
		// records; the in-flight one is lost.
		if l2.Stats().RecoveredRecs != 3 {
			t.Fatalf("recovered %d records, want 3", l2.Stats().RecoveredRecs)
		}
		qd2, _ := l2.Open("log")
		if got := popWait(t, l2, qd2); string(got) != "rec-a" {
			t.Fatalf("got %q", got)
		}
		if got := popWait(t, l2, qd2); string(got) != "rec-b" {
			t.Fatalf("got %q", got)
		}
		if got := popWait(t, l2, qd2); got != nil {
			t.Fatalf("lost record resurrected: %q", got)
		}
	})
}

func TestUAFProtectionAcrossStorage(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		qd, _ := l.Open("log")
		buf := l.Heap().Alloc(2048)
		qt, _ := l.Push(qd, core.SGA(buf))
		buf.Free() // immediately after push: legal
		if l.Heap().LiveObjects() != 1 {
			t.Fatal("buffer recycled while write in flight")
		}
		if ev, err := l.Wait(qt); err != nil || ev.Err != nil {
			t.Fatal(err)
		}
		if l.Heap().LiveObjects() != 0 {
			t.Fatal("buffer leaked after durable write")
		}
	})
}

func TestNetworkOpsUnsupported(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		if _, err := l.Socket(core.SockStream); err != core.ErrNotSupported {
			t.Error("Socket should be unsupported")
		}
	})
}

func TestNamedLogsAreIsolated(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		a, _ := l.Open("alpha.log")
		b, _ := l.Open("beta.log")
		pushWait(t, l, a, []byte("for-alpha"))
		pushWait(t, l, b, []byte("for-beta"))
		if got := popWait(t, l, a); string(got) != "for-alpha" {
			t.Errorf("alpha read %q", got)
		}
		if got := popWait(t, l, b); string(got) != "for-beta" {
			t.Errorf("beta read %q", got)
		}
		// Truncating one log must not affect the other.
		if err := l.Truncate(a); err != nil {
			t.Fatal(err)
		}
		l.Seek(b, 0)
		if got := popWait(t, l, b); string(got) != "for-beta" {
			t.Errorf("beta lost data after alpha truncate: %q", got)
		}
		if l.Logs() != 2 {
			t.Errorf("Logs() = %d", l.Logs())
		}
	})
}

func TestMountRecoversMultipleNamedLogs(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		a, _ := l.Open("x.log")
		b, _ := l.Open("y.log")
		pushWait(t, l, a, []byte("xa"))
		pushWait(t, l, b, []byte("yb"))
		pushWait(t, l, a, []byte("xc"))

		l2 := New(l.Node(), dev)
		if err := l2.Mount(); err != nil {
			t.Fatal(err)
		}
		if l2.Logs() != 2 {
			t.Fatalf("recovered %d logs, want 2", l2.Logs())
		}
		qa, _ := l2.Open("x.log")
		if got := popWait(t, l2, qa); string(got) != "xa" {
			t.Errorf("x.log first = %q", got)
		}
		if got := popWait(t, l2, qa); string(got) != "xc" {
			t.Errorf("x.log second = %q", got)
		}
		qb, _ := l2.Open("y.log")
		if got := popWait(t, l2, qb); string(got) != "yb" {
			t.Errorf("y.log = %q", got)
		}
		// Appending after recovery lands at the recovered tail.
		pushWait(t, l2, qa, []byte("xd"))
		if got := popWait(t, l2, qa); string(got) != "xd" {
			t.Errorf("append after mount = %q", got)
		}
	})
}

func TestPartitionFullRejectsPush(t *testing.T) {
	run(t, func(eng *sim.Engine, l *LibOS, dev *spdkdev.Device) {
		qd, _ := l.Open("tiny")
		// Fill the partition to the brim.
		part := l.parts["tiny"]
		blockPayload := make([]byte, spdkdev.BlockSize*4)
		for part.tail+int64(blocksFor(len(blockPayload))) <= part.size {
			pushWait(t, l, qd, blockPayload)
		}
		// The remaining gap is smaller than one more full record.
		qt, err := l.Push(qd, core.SGA(memory.CopyFrom(l.Heap(), blockPayload)))
		if err != nil {
			t.Fatal(err)
		}
		ev, err := l.Wait(qt)
		if err != nil || ev.Err == nil {
			t.Fatalf("overflowing push accepted: %v %+v", err, ev)
		}
	})
}
