// Package cattree is Demikernel's SPDK storage library OS (paper §6.4): it
// maps the PDPIX queue abstraction onto an abstract log over a block
// device: push appends a record, pop reads sequentially from the queue's
// read cursor, seek moves the cursor, and truncate garbage-collects the
// log. Push qtokens complete only when the write is durable on the
// (simulated) NVMe device, giving the synchronous logging semantics the
// paper's echo and Redis experiments rely on.
//
// Going slightly beyond the paper's minimal single-log Cattree (§6.4
// anticipates "more complex storage stacks"), the device is divided into
// fixed-size partitions, each its own named log; a directory log in
// partition zero records name-to-partition assignments so Mount recovers
// everything after a crash.
//
// Records are self-describing — [magic, length, payload] padded to the
// block size — so Mount can recover each log tail by scanning forward,
// which the Redis AOF recovery path uses.
package cattree

import (
	"encoding/binary"
	"sort"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/costmodel"
	"demikernel/internal/memory"
	"demikernel/internal/sched"
	"demikernel/internal/sim"
	"demikernel/internal/spdkdev"
	"demikernel/internal/telemetry"
)

// recordMagic marks a valid log record header.
const recordMagic uint32 = 0xCA77EE00

// recordHeaderLen is magic(4) + generation(4) + length(4). The generation
// is the log's truncation epoch: records from before a truncate keep their
// old generation, so recovery scans stop at them even though their magic
// is intact.
const recordHeaderLen = 12

// Stats counts libOS activity. It is a snapshot view: the live counters are
// registry-backed (Telemetry()), and Stats() rebuilds this struct from them
// so pre-registry callers keep working.
type Stats struct {
	Appends, Reads uint64
	BytesAppended  uint64
	Truncates      uint64
	RecoveredRecs  uint64
}

// counters are the live registry-backed equivalents of Stats.
type counters struct {
	appends, reads *telemetry.Counter
	bytesAppended  *telemetry.Counter
	truncates      *telemetry.Counter
	recoveredRecs  *telemetry.Counter
}

func newCounters(reg *telemetry.Registry) counters {
	return counters{
		appends:       reg.Counter("cattree.appends"),
		reads:         reg.Counter("cattree.reads"),
		bytesAppended: reg.Counter("cattree.bytes_appended"),
		truncates:     reg.Counter("cattree.truncates"),
		recoveredRecs: reg.Counter("cattree.recovered_recs"),
	}
}

// Partitioning constants: partition 0 holds the directory; the rest of
// the device is split evenly among data partitions.
const (
	dirBlocks     = 256
	maxPartitions = 15
)

// partition is one named log's block range and state.
type partition struct {
	name string
	base int64  // first block
	size int64  // blocks
	tail int64  // first free block, relative to base
	gen  uint32 // truncation epoch; only matching records are live
}

// LibOS is a Cattree instance for one node + NVMe device.
type LibOS struct {
	node   *sim.Node
	dev    *spdkdev.Device
	heap   *memory.Heap
	sched  *sched.Scheduler
	tokens *core.TokenTable
	waiter core.Waiter
	qds    *core.QDescTable

	parts   map[string]*partition
	nParts  int
	dirTail int64
	reg     *telemetry.Registry
	stats   counters
}

// New builds a Cattree libOS on a device. The logs are assumed empty; call
// Mount from application context to recover existing logs.
func New(node *sim.Node, dev *spdkdev.Device) *LibOS {
	l := &LibOS{
		node:   node,
		dev:    dev,
		heap:   memory.NewHeap(nil),
		sched:  sched.New(),
		tokens: core.NewTokenTable(),
		qds:    core.NewQDescTable(),
		parts:  make(map[string]*partition),
	}
	l.reg = telemetry.NewRegistry(node.Name() + "/cattree")
	l.stats = newCounters(l.reg)
	l.heap.PublishTelemetry(l.reg, "mem")
	l.tokens.Instrument(node, 0)
	l.tokens.SetLatencyHist(l.reg.Histogram("core.qtoken_latency_ns"))
	sc := l.sched
	l.reg.Sample("sched.polls", func() int64 { return int64(sc.Stats().Polls) })
	l.reg.Sample("sched.empty_scans", func() int64 { return int64(sc.Stats().EmptyScans) })
	l.waiter = core.Waiter{Table: l.tokens, Runner: l}
	return l
}

// Telemetry returns the libOS's metric registry.
func (l *LibOS) Telemetry() *telemetry.Registry { return l.reg }

// partitionSize returns each data partition's size in blocks.
func (l *LibOS) partitionSize() int64 {
	return (l.dev.NumBlocks() - dirBlocks) / maxPartitions
}

// getPartition returns (allocating and durably recording if new) the
// partition for name.
func (l *LibOS) getPartition(name string) (*partition, error) {
	if p, ok := l.parts[name]; ok {
		return p, nil
	}
	if l.nParts >= maxPartitions {
		return nil, core.ErrInUse
	}
	idx := l.nParts
	l.nParts++
	p := &partition{
		name: name,
		base: dirBlocks + int64(idx)*l.partitionSize(),
		size: l.partitionSize(),
	}
	l.parts[name] = p
	l.appendDirRecord(idx, 0, name)
	return p, nil
}

// appendDirRecord durably records a (partition, generation, name) binding
// in the directory log (asynchronously durable: a crash before completion
// loses the binding and everything it guards, which is consistent).
func (l *LibOS) appendDirRecord(idx int, gen uint32, name string) {
	payload := make([]byte, 5+len(name))
	payload[0] = byte(idx)
	binary.BigEndian.PutUint32(payload[1:5], gen)
	copy(payload[5:], name)
	rec := l.frameRecord(payload, 0)
	lba := l.dirTail
	l.dirTail += int64(len(rec) / spdkdev.BlockSize)
	l.dev.SubmitWrite(lba, rec, func(spdkdev.Completion) {})
}

// frameRecord builds a block-aligned record around payload with the log's
// generation stamp.
func (l *LibOS) frameRecord(payload []byte, gen uint32) []byte {
	nBlocks := blocksFor(len(payload))
	staging := make([]byte, nBlocks*spdkdev.BlockSize)
	binary.BigEndian.PutUint32(staging[0:4], recordMagic)
	binary.BigEndian.PutUint32(staging[4:8], gen)
	binary.BigEndian.PutUint32(staging[8:12], uint32(len(payload)))
	copy(staging[recordHeaderLen:], payload)
	return staging
}

// Node returns the owning node.
func (l *LibOS) Node() *sim.Node { return l.node }

// Heap returns the DMA-capable heap.
func (l *LibOS) Heap() *memory.Heap { return l.heap }

// Stats returns a snapshot.
func (l *LibOS) Stats() Stats {
	return Stats{
		Appends:       l.stats.appends.Value(),
		Reads:         l.stats.reads.Value(),
		BytesAppended: l.stats.bytesAppended.Value(),
		Truncates:     l.stats.truncates.Value(),
		RecoveredRecs: l.stats.recoveredRecs.Value(),
	}
}

// SchedStats returns the per-core coroutine scheduler's counters
// (demikernel.SchedStatser) for utilization breakdowns.
func (l *LibOS) SchedStats() sched.Stats { return l.sched.Stats() }

// TailBlock returns the first free block of the named log (its end), or
// zero for an unknown name.
func (l *LibOS) TailBlock(name string) int64 {
	if p, ok := l.parts[name]; ok {
		return p.tail
	}
	return 0
}

// Logs returns the number of named logs.
func (l *LibOS) Logs() int { return l.nParts }

// --- Runner ---

// Step runs one scheduler quantum or polls device completions.
func (l *LibOS) Step() bool {
	if l.sched.Runnable() {
		l.node.Charge(costmodel.SchedQuantum)
		return l.sched.RunOne()
	}
	return l.pollDevice()
}

// Block parks the node.
func (l *LibOS) Block(deadline sim.Time) bool { return l.node.Park(deadline) }

// Now returns the node clock.
func (l *LibOS) Now() sim.Time { return l.node.Now() }

// pollDevice drains the completion queue, finishing qtokens.
func (l *LibOS) pollDevice() bool {
	comps := l.dev.PollCompletions(32)
	if len(comps) == 0 {
		l.node.Charge(costmodel.PollEmpty)
		return false
	}
	for _, c := range comps {
		l.node.Charge(costmodel.SPDKComplete)
		if fn, ok := c.Cookie.(func(spdkdev.Completion)); ok {
			fn(c)
		}
	}
	return true
}

// logQueue is one PDPIX open of the device log, with its own read cursor.
type logQueue struct {
	lib      *LibOS
	qd       core.QDesc
	part     *partition
	curBlock int64 // read cursor within the partition (records are padded)
	closed   bool
}

// Open opens the named log, allocating a partition on first use. Opens of
// the same name share the log but keep independent cursors.
func (l *LibOS) Open(name string) (core.QDesc, error) {
	l.node.Charge(costmodel.Libcall)
	p, err := l.getPartition(name)
	if err != nil {
		return core.InvalidQD, err
	}
	q := &logQueue{lib: l, part: p}
	q.qd = l.qds.Insert(q)
	return q.qd, nil
}

// Close releases a log queue.
func (l *LibOS) Close(qd core.QDesc) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Remove(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *logQueue:
		s.closed = true
	case *core.MemQueue:
		s.Destroy() // descriptor gone: free undrained data, never leak
	}
	return nil
}

// blocksFor returns the blocks needed for a record of n payload bytes.
func blocksFor(n int) int {
	total := recordHeaderLen + n
	return (total + spdkdev.BlockSize - 1) / spdkdev.BlockSize
}

// Push appends one record containing sga's bytes; the qtoken completes
// when the record is durable.
func (l *LibOS) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	lq, ok := q.(*logQueue)
	if !ok {
		return core.InvalidQToken, core.ErrNotSupported
	}
	if len(sga.Segs) == 0 {
		return core.InvalidQToken, core.ErrEmptySGA
	}
	op := l.tokens.New()
	payload := sga.Flatten() // staged into the block-aligned write buffer
	l.node.Charge(costmodel.SPDKSubmit)
	staging := l.frameRecord(payload, lq.part.gen)
	nBlocks := int64(len(staging) / spdkdev.BlockSize)
	if lq.part.tail+nBlocks > lq.part.size {
		op.Fail(qd, core.OpPush, core.ErrQueueClosed) // partition full
		return op.Token(), nil
	}
	lba := lq.part.base + lq.part.tail
	lq.part.tail += nBlocks
	// Hold libOS references until durable (UAF protection across storage).
	for _, b := range sga.Segs {
		b.IORef()
	}
	err := l.dev.SubmitWrite(lba, staging, func(c spdkdev.Completion) {
		for _, b := range sga.Segs {
			b.IOUnref()
		}
		if c.Err != nil {
			// Injected I/O error or torn write: the reserved blocks stay a
			// hole in the log (replay stops at the bad magic) and the
			// application learns the append failed through the qtoken.
			op.Fail(qd, core.OpPush, c.Err)
			return
		}
		l.stats.appends.Inc()
		l.stats.bytesAppended.Add(uint64(len(payload)))
		op.Complete(core.QEvent{QD: qd, Op: core.OpPush})
	})
	if err != nil {
		for _, b := range sga.Segs {
			b.IOUnref()
		}
		op.Fail(qd, core.OpPush, err)
	}
	return op.Token(), nil
}

// Pop reads the record at the queue's cursor. At the log end it completes
// immediately with an empty SGA (EOF), so replay loops terminate.
func (l *LibOS) Pop(qd core.QDesc) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	lq, ok := q.(*logQueue)
	if !ok {
		return core.InvalidQToken, core.ErrNotSupported
	}
	op := l.tokens.New()
	if lq.curBlock >= lq.part.tail {
		op.Complete(core.QEvent{QD: qd, Op: core.OpPop}) // EOF
		return op.Token(), nil
	}
	l.node.Charge(costmodel.SPDKSubmit)
	// Read one block to learn the record length, then the rest if needed.
	rel := lq.curBlock
	lba := lq.part.base + rel
	err := l.dev.SubmitRead(lba, 1, func(c spdkdev.Completion) {
		if c.Err != nil {
			op.Fail(qd, core.OpPop, c.Err)
			return
		}
		magic := binary.BigEndian.Uint32(c.Data[0:4])
		gen := binary.BigEndian.Uint32(c.Data[4:8])
		if magic != recordMagic || gen != lq.part.gen {
			op.Fail(qd, core.OpPop, core.ErrQueueClosed)
			return
		}
		length := int(binary.BigEndian.Uint32(c.Data[8:12]))
		nBlocks := blocksFor(length)
		lq.curBlock = rel + int64(nBlocks)
		if nBlocks == 1 {
			l.finishRead(op, qd, c.Data[recordHeaderLen:recordHeaderLen+length])
			return
		}
		// Multi-block record: read the remainder.
		rest := nBlocks - 1
		l.dev.SubmitRead(lba+1, rest, func(c2 spdkdev.Completion) {
			if c2.Err != nil {
				op.Fail(qd, core.OpPop, c2.Err)
				return
			}
			full := append(append([]byte{}, c.Data[recordHeaderLen:]...), c2.Data...)
			l.finishRead(op, qd, full[:length])
		})
	})
	if err != nil {
		op.Fail(qd, core.OpPop, err)
	}
	return op.Token(), nil
}

// finishRead completes a pop with the record payload.
func (l *LibOS) finishRead(op *core.Op, qd core.QDesc, payload []byte) {
	l.stats.reads.Inc()
	buf := memory.CopyFrom(l.heap, payload)
	op.Complete(core.QEvent{QD: qd, Op: core.OpPop, SGA: core.SGA(buf)})
}

// Seek moves the queue's read cursor to the given block offset within its
// log (0 rewinds to the head).
func (l *LibOS) Seek(qd core.QDesc, block int64) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	lq, ok := q.(*logQueue)
	if !ok {
		return core.ErrNotSupported
	}
	lq.curBlock = block
	return nil
}

// Truncate garbage-collects the queue's log: its tail resets to zero.
// (The paper's truncate moves the GC point; a full reset is the
// degenerate, sufficient case for its workloads.)
func (l *LibOS) Truncate(qd core.QDesc) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	lq, ok := q.(*logQueue)
	if !ok {
		return core.ErrNotSupported
	}
	lq.part.tail = 0
	lq.part.gen++
	// Persist the new generation so recovery ignores pre-truncate records.
	idx := int((lq.part.base - dirBlocks) / l.partitionSize())
	l.appendDirRecord(idx, lq.part.gen, lq.part.name)
	l.stats.truncates.Inc()
	return nil
}

// readRecordSync synchronously reads the record header at lba, returning
// its payload and total blocks (ok=false at a log end or generation
// mismatch). Control path only.
func (l *LibOS) readRecordSync(lba int64, wantGen uint32) (payload []byte, blocks int64, ok bool, err error) {
	done := false
	l.dev.SubmitRead(lba, 1, func(c spdkdev.Completion) {
		defer func() { done = true }()
		if c.Err != nil {
			return // recovery treats an unreadable block as log end
		}
		if binary.BigEndian.Uint32(c.Data[0:4]) != recordMagic {
			return
		}
		if binary.BigEndian.Uint32(c.Data[4:8]) != wantGen {
			return
		}
		length := int(binary.BigEndian.Uint32(c.Data[8:12]))
		blocks = int64(blocksFor(length))
		if length <= spdkdev.BlockSize-recordHeaderLen {
			payload = append([]byte(nil), c.Data[recordHeaderLen:recordHeaderLen+length]...)
			ok = true
			return
		}
		// Multi-block record: synchronous continuation.
		inner := false
		l.dev.SubmitRead(lba+1, int(blocks-1), func(c2 spdkdev.Completion) {
			inner = true
			if c2.Err != nil {
				return
			}
			full := append(append([]byte{}, c.Data[recordHeaderLen:]...), c2.Data...)
			payload = append([]byte(nil), full[:length]...)
			ok = true
		})
		for !inner {
			if !l.Step() && !l.node.Park(sim.Infinity) {
				return
			}
		}
	})
	for !done {
		if !l.Step() {
			if !l.node.Park(sim.Infinity) {
				return nil, 0, false, core.ErrStopped
			}
		}
	}
	return payload, blocks, ok, nil
}

// Mount recovers the directory and every named log's tail after a restart.
// It blocks the calling application (control path).
func (l *LibOS) Mount() error {
	// Replay the directory log.
	l.parts = make(map[string]*partition)
	l.nParts = 0
	l.dirTail = 0
	for l.dirTail < dirBlocks {
		payload, blocks, ok, err := l.readRecordSync(l.dirTail, 0)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		l.dirTail += blocks
		if len(payload) < 6 {
			continue
		}
		idx := int(payload[0])
		gen := binary.BigEndian.Uint32(payload[1:5])
		name := string(payload[5:])
		l.parts[name] = &partition{
			name: name,
			base: dirBlocks + int64(idx)*l.partitionSize(),
			size: l.partitionSize(),
			gen:  gen,
		}
		if idx+1 > l.nParts {
			l.nParts = idx + 1
		}
		l.stats.recoveredRecs.Inc()
	}
	// Scan each named log for its tail, in sorted name order so recovery
	// issues device reads in the same order on every run.
	names := make([]string, 0, len(l.parts))
	for name := range l.parts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := l.parts[name]
		p.tail = 0
		for p.tail < p.size {
			_, blocks, ok, err := l.readRecordSync(p.base+p.tail, p.gen)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			p.tail += blocks
			l.stats.recoveredRecs.Inc()
		}
	}
	return nil
}

// --- Unsupported network operations (storage-only libOS) ---

// Socket is unsupported; use an integration libOS for network+storage.
func (l *LibOS) Socket(t core.SockType) (core.QDesc, error) {
	return core.InvalidQD, core.ErrNotSupported
}

// Bind is unsupported.
func (l *LibOS) Bind(qd core.QDesc, addr core.Addr) error { return core.ErrNotSupported }

// Listen is unsupported.
func (l *LibOS) Listen(qd core.QDesc, backlog int) error { return core.ErrNotSupported }

// Accept is unsupported.
func (l *LibOS) Accept(qd core.QDesc) (core.QToken, error) {
	return core.InvalidQToken, core.ErrNotSupported
}

// Connect is unsupported.
func (l *LibOS) Connect(qd core.QDesc, addr core.Addr) (core.QToken, error) {
	return core.InvalidQToken, core.ErrNotSupported
}

// Queue creates an in-memory queue.
func (l *LibOS) Queue() (core.QDesc, error) {
	l.node.Charge(costmodel.Libcall)
	qd := l.qds.Insert(nil)
	l.qds.Restore(qd, core.NewMemQueue(qd))
	return qd, nil
}

// Wait blocks until qt completes.
func (l *LibOS) Wait(qt core.QToken) (core.QEvent, error) { return l.waiter.Wait(qt) }

// WaitAny blocks until one of qts completes.
func (l *LibOS) WaitAny(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	return l.waiter.WaitAny(qts, timeout)
}

// WaitAll blocks until all of qts complete.
func (l *LibOS) WaitAll(qts []core.QToken, timeout time.Duration) ([]core.QEvent, error) {
	return l.waiter.WaitAll(qts, timeout)
}

// Tokens exposes the qtoken table for libOS integration (demi.Combined).
func (l *LibOS) Tokens() *core.TokenTable { return l.tokens }

// PushTo is unsupported on the storage-only libOS.
func (l *LibOS) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	return core.InvalidQToken, core.ErrNotSupported
}

// TryTake redeems a completed qtoken (demi.Drivable).
func (l *LibOS) TryTake(qt core.QToken) (core.QEvent, bool, error) {
	return l.tokens.TryTake(qt)
}
