// Package dtrace is the end-to-end distributed tracer: it assigns each
// sampled request a trace ID at the client, propagates the context causally
// across every hop — riding memory.Buf tags through catmem's zero-copy
// handoff, and a tiny wire trailer appended past the IPv4 payload through
// catnip/catloop frames — and collects per-hop events (qtoken op spans,
// wire tx/rx, ring push/pop, app stages, fault firings) into one fixed-size
// arena. Export-time code stitches the events into per-request waterfalls
// with critical-path accounting (stitch.go) and serializes them as a
// deterministic binary or Chrome trace_event JSON (export.go).
//
// The record path is //demi:nonalloc and costs one nil check plus one
// compare when tracing is off: every Hop method returns immediately for a
// nil receiver or a zero context, so an unsampled request records nothing.
// All timestamps are virtual-time nanoseconds passed in by the caller —
// the package never consults a clock, keeping same-seed runs byte-identical.
package dtrace

// Event kinds.
const (
	KRoot     uint8 = iota + 1 // one sampled request: T0=start, T1=end
	KOp                        // qtoken lifecycle: T0=issued, T1=completed, T2=redeemed
	KWireTx                    // frame left the stack at T0
	KWireRx                    // frame entered the stack at T0
	KRingPush                  // SGArray entered a shared-memory ring at T0
	KRingPop                   // SGArray left a shared-memory ring at T0
	KApp                       // application stage: T0..T1, Op = stage label id
	KFault                     // fault fired at T0, Op = site label id; Trace may be 0
	KSwitch                    // frame traversed a switch at T0, QD = chosen egress server
)

// kindNames renders event kinds for exports.
var kindNames = [...]string{"", "root", "op", "wire_tx", "wire_rx", "ring_push", "ring_pop", "app", "fault", "switch"}

// KindName returns the mnemonic for an event kind byte.
func KindName(k uint8) string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// opNames mirrors core.OpCode ordinals (dtrace cannot import core: core
// imports dtrace), exactly as telemetry does.
var opNames = [...]string{"invalid", "push", "pop", "accept", "connect"}

// OpName returns the operation mnemonic for a KOp event's Op byte.
func OpName(op uint8) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "op?"
}

// An Event is one recorded trace observation. Fixed-size so the arena ring
// is allocation-free; meaning of T0/T1/T2 depends on Kind (see the kind
// constants). Label is a hop-registered name id for KApp stages and KFault
// sites, the core.OpCode ordinal for KOp, and unused otherwise.
type Event struct {
	Trace uint64
	Token uint64
	T0    int64
	T1    int64
	T2    int64
	QD    int32
	Kind  uint8
	Hop   uint8
	Label uint8
}

// A Root is one finished sampled request: identity plus its measured
// interval, retained for querying (recent ring + top-k slowest table).
type Root struct {
	Trace      uint64
	Start, End int64
}

// Dur returns the request's end-to-end duration in nanoseconds.
//
//demi:nonalloc
func (r Root) Dur() int64 { return r.End - r.Start }

// Config sizes a Tracer.
type Config struct {
	// SampleEvery samples every Nth request at the root (head-based).
	// 1 traces everything; 0 disables tracing entirely.
	SampleEvery uint64
	// Events is the event-arena capacity; the arena is a ring, so beyond
	// it the oldest events are overwritten (and counted as evicted).
	Events int
	// Recent is how many finished request roots the recent ring keeps.
	Recent int
	// Slowest is the k of the always-capture-slowest root table.
	Slowest int
}

// DefaultConfig traces every 64th request with room for a few thousand
// sampled requests' events.
func DefaultConfig() Config {
	return Config{SampleEvery: 64, Events: 1 << 16, Recent: 1024, Slowest: 16}
}

// A Tracer owns the sampling decision, the trace-ID sequence, the event
// arena, and the finished-request retention. It is single-threaded like the
// simulated datapaths that feed it (the engine's baton discipline runs one
// node at a time, so all hops of one world share a Tracer safely).
type Tracer struct {
	sampleEvery uint64
	reqSeq      uint64 // requests seen at the root (sampled or not)
	lastID      uint64 // last issued trace ID
	started     uint64 // sampled requests started
	finished    uint64 // sampled requests finished

	events  []Event
	next    int
	wrapped bool
	evicted uint64 // events overwritten after the arena wrapped

	names []string // hop/stage/site registry; index is the id

	recent   []Root // ring of finished roots
	rnext    int
	rwrapped bool
	slow     []Root // unordered top-k by Dur; ties keep the earlier root
}

// New returns a tracer for cfg. Zero-valued fields get usable minimums.
func New(cfg Config) *Tracer {
	if cfg.Events < 1 {
		cfg.Events = 1
	}
	if cfg.Recent < 1 {
		cfg.Recent = 1
	}
	if cfg.Slowest < 1 {
		cfg.Slowest = 1
	}
	return &Tracer{
		sampleEvery: cfg.SampleEvery,
		events:      make([]Event, cfg.Events),
		names:       make([]string, 1, 32), // id 0 = unnamed
		recent:      make([]Root, cfg.Recent),
		slow:        make([]Root, 0, cfg.Slowest),
	}
}

// Enabled reports whether the tracer can sample at all. Nil-safe.
//
//demi:nonalloc
func (t *Tracer) Enabled() bool { return t != nil && t.sampleEvery != 0 }

// Hop registers a named hop (one libOS instance or app stage location) and
// returns its recording handle. Setup-time only; allocation is fine here.
// A nil tracer returns a nil hop, whose record methods are all no-ops.
func (t *Tracer) Hop(name string) *Hop {
	if t == nil {
		return nil
	}
	return &Hop{t: t, id: t.intern(name)}
}

// intern registers a name and returns its id. Ids are bytes; the registry
// is tiny (hops, app stages, fault sites).
func (t *Tracer) intern(name string) uint8 {
	for i, n := range t.names {
		if n == name {
			return uint8(i)
		}
	}
	if len(t.names) >= 256 {
		return 0
	}
	t.names = append(t.names, name)
	return uint8(len(t.names) - 1)
}

// Name returns the registered name for a hop/stage/site id.
func (t *Tracer) Name(id uint8) string {
	if t == nil || int(id) >= len(t.names) || t.names[id] == "" {
		return "?"
	}
	return t.names[id]
}

// StartRequest makes the head-based sampling decision for one request and
// returns its trace context: a fresh nonzero trace ID when sampled, 0
// otherwise. Deterministic: every Nth request by arrival order is sampled
// and IDs are sequential.
//
//demi:nonalloc
func (t *Tracer) StartRequest() uint64 {
	if t == nil || t.sampleEvery == 0 {
		return 0
	}
	seq := t.reqSeq
	t.reqSeq++
	if seq%t.sampleEvery != 0 {
		return 0
	}
	t.lastID++
	t.started++
	return t.lastID
}

// Started and Finished report sampled-request counts; Evicted reports
// events lost to arena wraparound (exports surface it so a truncated
// waterfall is never silently read as complete).
func (t *Tracer) Started() uint64  { return t.started }
func (t *Tracer) Finished() uint64 { return t.finished }
func (t *Tracer) Evicted() uint64  { return t.evicted }

// record appends one event to the arena ring.
//
//demi:nonalloc every traced observation lands here
func (t *Tracer) record(trace, token uint64, kind, hop, label uint8, qd int32, t0, t1, t2 int64) {
	if t.wrapped {
		t.evicted++
	}
	e := &t.events[t.next]
	e.Trace = trace
	e.Token = token
	e.T0 = t0
	e.T1 = t1
	e.T2 = t2
	e.QD = qd
	e.Kind = kind
	e.Hop = hop
	e.Label = label
	t.next++
	if t.next == len(t.events) {
		t.next = 0
		t.wrapped = true
	}
}

// retain files a finished root into the recent ring and the top-k slowest
// table. Mirrors telemetry.FlightRecorder.Record: fixed capacity, linear
// min scan, and a strict > comparison so ties keep the earlier request.
//
//demi:nonalloc
func (t *Tracer) retain(r Root) {
	t.finished++
	t.recent[t.rnext] = r
	t.rnext++
	if t.rnext == len(t.recent) {
		t.rnext = 0
		t.rwrapped = true
	}
	if len(t.slow) < cap(t.slow) {
		t.slow = append(t.slow, r)
		return
	}
	mi := 0
	for i := 1; i < len(t.slow); i++ {
		if t.slow[i].Dur() < t.slow[mi].Dur() {
			mi = i
		}
	}
	if r.Dur() > t.slow[mi].Dur() {
		t.slow[mi] = r
	}
}

// FaultAt records an un-attributed fault firing (a device or transport
// site with no request context at hand). Stitching attaches it to every
// trace whose root interval contains the instant.
//
//demi:nonalloc
func (t *Tracer) FaultAt(site uint8, at int64) {
	if t == nil || t.sampleEvery == 0 {
		return
	}
	t.record(0, 0, KFault, 0, site, 0, at, at, 0)
}

// Events returns the retained events in recording order (export time).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	return append(out, t.events[:t.next]...)
}

// Recent returns the retained finished roots in finish order.
func (t *Tracer) Recent() []Root {
	if t == nil {
		return nil
	}
	if !t.rwrapped {
		out := make([]Root, t.rnext)
		copy(out, t.recent[:t.rnext])
		return out
	}
	out := make([]Root, 0, len(t.recent))
	out = append(out, t.recent[t.rnext:]...)
	return append(out, t.recent[:t.rnext]...)
}

// Slowest returns up to n of the slowest finished requests, slowest first
// (ties broken by trace ID for determinism).
func (t *Tracer) Slowest(n int) []Root {
	if t == nil {
		return nil
	}
	out := make([]Root, len(t.slow))
	copy(out, t.slow)
	// Insertion sort: the table is k-sized (k small by construction).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Dur() > b.Dur() || (a.Dur() == b.Dur() && a.Trace < b.Trace) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// A Hop is one recording location's handle: a libOS instance (op spans,
// wire and ring events) or an app stage site. All record methods are
// nil-receiver-safe and return immediately for a zero context, which is
// what makes tracing free when sampling is off.
type Hop struct {
	t  *Tracer
	id uint8
}

// Label registers a stage or fault-site name under this hop's tracer and
// returns its id (setup time; allocation is fine). Nil-safe.
func (h *Hop) Label(name string) uint8 {
	if h == nil {
		return 0
	}
	return h.t.intern(name)
}

// Tracer returns the owning tracer (nil for a nil hop).
func (h *Hop) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.t
}

// OpSpan records one redeemed qtoken's lifecycle against the trace:
// issued → completed (in-OS, the datapath + wire/ring time) → redeemed
// (the wait/sched handoff back to the application). Same stage semantics
// as the telemetry flight recorder.
//
//demi:nonalloc
func (h *Hop) OpSpan(ctx, token uint64, op uint8, qd int32, issued, completed, redeemed int64) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, token, KOp, h.id, op, qd, issued, completed, redeemed)
}

// WireTx records a traced frame leaving this hop's stack at the instant.
//
//demi:nonalloc
func (h *Hop) WireTx(ctx uint64, at int64) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, 0, KWireTx, h.id, 0, 0, at, at, 0)
}

// WireRx records a traced frame entering this hop's stack at the instant.
//
//demi:nonalloc
func (h *Hop) WireRx(ctx uint64, at int64) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, 0, KWireRx, h.id, 0, 0, at, at, 0)
}

// RingPush records a traced SGArray entering a shared-memory ring.
//
//demi:nonalloc
func (h *Hop) RingPush(ctx uint64, at int64) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, 0, KRingPush, h.id, 0, 0, at, at, 0)
}

// RingPop records a traced SGArray leaving a shared-memory ring.
//
//demi:nonalloc
func (h *Hop) RingPop(ctx uint64, at int64) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, 0, KRingPop, h.id, 0, 0, at, at, 0)
}

// Switch records a traced frame traversing a switch (the ToR hop) at the
// instant, with the egress server index the switch chose in QD — the
// placement decision lands in the waterfall, so a request's tail can be
// read back to "the ToR steered it to a loaded server".
//
//demi:nonalloc
func (h *Hop) Switch(ctx uint64, at int64, server int32) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, 0, KSwitch, h.id, 0, server, at, at, 0)
}

// AppSpan records one application stage interval (label from Label).
//
//demi:nonalloc
func (h *Hop) AppSpan(ctx uint64, stage uint8, from, to int64) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, 0, KApp, h.id, stage, 0, from, to, 0)
}

// Fault records a fault firing inside the traced request (site from Label).
//
//demi:nonalloc
func (h *Hop) Fault(ctx uint64, site uint8, at int64) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, 0, KFault, h.id, site, 0, at, at, 0)
}

// EndRequest finishes a sampled request: records its root event on this
// hop and files it into the retention tables.
//
//demi:nonalloc
func (h *Hop) EndRequest(ctx uint64, start, end int64) {
	if h == nil || ctx == 0 {
		return
	}
	h.t.record(ctx, 0, KRoot, h.id, 0, 0, start, end, 0)
	h.t.retain(Root{Trace: ctx, Start: start, End: end})
}
