package dtrace

import (
	"fmt"
	"sort"

	"demikernel/internal/telemetry"
)

// OpStats aggregates one hop's traced qtoken spans: how many ops dtrace saw
// and their summed issue→complete nanoseconds.
type OpStats struct {
	Count uint64
	SumNs int64
}

// OpStats returns per-hop aggregates over every KOp event in the arena,
// keyed by hop id. Export-time only.
func (t *Tracer) OpStats() map[uint8]OpStats {
	out := make(map[uint8]OpStats)
	if t == nil {
		return out
	}
	for _, e := range t.Events() {
		if e.Kind != KOp {
			continue
		}
		s := out[e.Hop]
		s.Count++
		s.SumNs += e.T1 - e.T0
		out[e.Hop] = s
	}
	return out
}

// CrossCheck validates the tracer's per-hop op spans against the telemetry
// latency histograms observing the same libOSes. The histogram sees every
// operation's issue→complete latency; dtrace sees only the sampled subset —
// so the traced count and summed nanoseconds must be subset bounds (<=) of
// the histogram's, and no traced span may run backwards. Returns one
// human-readable violation per inconsistency; empty means the trace's
// critical-path accounting is consistent with telemetry.
//
// hists maps hop name (as registered with Tracer.Hop) to that libOS's
// "core.qtoken_latency_ns" histogram; hops with no entry are skipped.
func CrossCheck(t *Tracer, hists map[string]*telemetry.Histogram) []string {
	var violations []string
	if t == nil {
		return violations
	}
	for _, e := range t.Events() {
		if e.Kind == KOp && (e.T1 < e.T0 || e.T2 < e.T1) {
			violations = append(violations,
				fmt.Sprintf("hop %s trace %d token %d: op span runs backwards (issued=%d completed=%d redeemed=%d)",
					t.Name(e.Hop), e.Trace, e.Token, e.T0, e.T1, e.T2))
		}
	}
	stats := t.OpStats()
	hops := make([]int, 0, len(stats))
	for hop := range stats {
		hops = append(hops, int(hop))
	}
	sort.Ints(hops)
	for _, hi := range hops {
		hop := uint8(hi)
		name := t.Name(hop)
		h, ok := hists[name]
		if !ok || h == nil {
			continue
		}
		s := stats[hop]
		if s.Count > h.Count() {
			violations = append(violations,
				fmt.Sprintf("hop %s: dtrace saw %d op spans but telemetry observed only %d ops",
					name, s.Count, h.Count()))
		}
		if s.SumNs > h.Sum() {
			violations = append(violations,
				fmt.Sprintf("hop %s: dtrace op-span sum %dns exceeds telemetry histogram sum %dns",
					name, s.SumNs, h.Sum()))
		}
	}
	return violations
}
