package dtrace

import (
	"fmt"
	"io"
	"sort"
)

// Row classes, in critical-path priority order: when intervals overlap,
// the most specific explanation of where the time went wins — a frame in
// flight or a buffer in a ring beats "inside the OS", which beats an app
// stage, which beats the wait/sched redeem tail.
const (
	RowWire = iota
	RowRing
	RowOpInOS
	RowApp
	RowRedeem
	rowClasses
)

var rowClassNames = [rowClasses]string{"wire", "ring", "in-os", "app", "redeem"}

// RowClassName returns the mnemonic for a row class.
func RowClassName(c int) string {
	if c >= 0 && c < rowClasses {
		return rowClassNames[c]
	}
	return "class?"
}

// A Row is one stitched waterfall interval of a request.
type Row struct {
	Hop   uint8 // recording hop
	ToHop uint8 // destination hop for wire/ring transits (else == Hop)
	Class int
	Label string
	From  int64
	To    int64
}

// Dur returns the row's length in nanoseconds.
func (r Row) Dur() int64 { return r.To - r.From }

// A Mark is one fault firing attached to a trace.
type Mark struct {
	Hop  uint8
	Site uint8
	At   int64
}

// A CritEntry attributes critical-path nanoseconds to one (hop, class,
// label) bucket.
type CritEntry struct {
	Hop   uint8
	Class int
	Label string
	Ns    int64
}

// A View is one request's stitched end-to-end trace.
type View struct {
	Trace    uint64
	Root     Root
	RootHop  uint8
	Rows     []Row // sorted by From, then class
	Faults   []Mark
	Coverage float64 // fraction of the root interval covered by rows
	Crit     []CritEntry
	GapNs    int64 // critical-path ns no recorded interval explains
}

// Assemble stitches every complete trace in the arena into a View, keyed
// by trace ID. Traces whose root event was evicted from the arena are
// skipped — query them via Recent/Slowest plus a bigger arena. Allocation
// is unrestricted here: assembly runs at export time, off the datapath.
func (t *Tracer) Assemble() map[uint64]*View {
	views := make(map[uint64]*View)
	if t == nil {
		return views
	}
	byTrace := make(map[uint64][]Event)
	var global []Event // un-attributed faults (Trace == 0)
	for _, e := range t.Events() {
		if e.Trace == 0 {
			if e.Kind == KFault {
				global = append(global, e)
			}
			continue
		}
		byTrace[e.Trace] = append(byTrace[e.Trace], e)
	}
	for id, evs := range byTrace {
		if v := t.buildView(id, evs); v != nil {
			views[id] = v
		}
	}
	// A fault with no request context hits whatever was in flight: attach
	// it to every trace whose root interval contains the instant.
	for _, f := range global {
		for _, v := range views {
			if f.T0 >= v.Root.Start && f.T0 <= v.Root.End {
				v.Faults = append(v.Faults, Mark{Hop: f.Hop, Site: f.Label, At: f.T0})
			}
		}
	}
	for _, v := range views {
		sort.Slice(v.Faults, func(i, j int) bool { return v.Faults[i].At < v.Faults[j].At })
	}
	return views
}

// buildView stitches one trace's events; nil when the root is missing.
func (t *Tracer) buildView(id uint64, evs []Event) *View {
	v := &View{Trace: id}
	haveRoot := false
	var wireTx, wireRx, ringPush, ringPop []Event
	for _, e := range evs {
		switch e.Kind {
		case KRoot:
			v.Root = Root{Trace: id, Start: e.T0, End: e.T1}
			v.RootHop = e.Hop
			haveRoot = true
		case KOp:
			v.Rows = append(v.Rows,
				Row{Hop: e.Hop, ToHop: e.Hop, Class: RowOpInOS, Label: OpName(e.Label), From: e.T0, To: e.T1},
				Row{Hop: e.Hop, ToHop: e.Hop, Class: RowRedeem, Label: OpName(e.Label), From: e.T1, To: e.T2})
		case KWireTx:
			wireTx = append(wireTx, e)
		case KWireRx:
			wireRx = append(wireRx, e)
		case KRingPush:
			ringPush = append(ringPush, e)
		case KRingPop:
			ringPop = append(ringPop, e)
		case KApp:
			v.Rows = append(v.Rows,
				Row{Hop: e.Hop, ToHop: e.Hop, Class: RowApp, Label: t.Name(e.Label), From: e.T0, To: e.T1})
		case KSwitch:
			// A switch traversal is an instant, not an interval: the frame's
			// in-flight time already belongs to the surrounding wire row, so
			// a zero-length row marks the hop (and the placement decision in
			// QD) without ever claiming critical path.
			v.Rows = append(v.Rows,
				Row{Hop: e.Hop, ToHop: e.Hop, Class: RowWire, Label: switchLabel(e.QD), From: e.T0, To: e.T0})
		case KFault:
			v.Faults = append(v.Faults, Mark{Hop: e.Hop, Site: e.Label, At: e.T0})
		}
	}
	if !haveRoot {
		return nil
	}
	v.Rows = append(v.Rows, pairTransits(wireTx, wireRx, RowWire, "wire")...)
	v.Rows = append(v.Rows, pairTransits(ringPush, ringPop, RowRing, "ring")...)
	sort.Slice(v.Rows, func(i, j int) bool {
		a, b := v.Rows[i], v.Rows[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.To < b.To
	})
	v.finish()
	return v
}

// switchLabel renders a KSwitch row's label with its placement decision.
func switchLabel(server int32) string {
	if server < 0 {
		return "switch"
	}
	return fmt.Sprintf("switch>s%d", server)
}

// pairTransits matches each departure with the earliest later (or
// simultaneous) unconsumed arrival, in time order — the closed-loop chain
// produces strictly alternating pairs, and leftovers (a retransmitted
// frame, an evicted arrival) are dropped rather than misattributed.
func pairTransits(dep, arr []Event, class int, label string) []Row {
	sort.Slice(dep, func(i, j int) bool { return dep[i].T0 < dep[j].T0 })
	sort.Slice(arr, func(i, j int) bool { return arr[i].T0 < arr[j].T0 })
	var rows []Row
	j := 0
	for _, d := range dep {
		for j < len(arr) && arr[j].T0 < d.T0 {
			j++
		}
		if j == len(arr) {
			break
		}
		rows = append(rows, Row{Hop: d.Hop, ToHop: arr[j].Hop, Class: class,
			Label: label, From: d.T0, To: arr[j].T0})
		j++
	}
	return rows
}

// finish computes coverage and the critical path from the sorted rows.
func (v *View) finish() {
	rootDur := v.Root.Dur()
	if rootDur <= 0 {
		return
	}
	// Elementary intervals: every row boundary clipped to the root.
	cuts := make([]int64, 0, 2*len(v.Rows)+2)
	cuts = append(cuts, v.Root.Start, v.Root.End)
	for _, r := range v.Rows {
		for _, c := range [2]int64{r.From, r.To} {
			if c > v.Root.Start && c < v.Root.End {
				cuts = append(cuts, c)
			}
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	type key struct {
		hop   uint8
		class int
		label string
	}
	crit := make(map[key]int64)
	var covered, gap int64
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if hi == lo {
			continue
		}
		best := -1
		for ri, r := range v.Rows {
			if r.From <= lo && r.To >= hi && r.To > r.From {
				if best < 0 || r.Class < v.Rows[best].Class {
					best = ri
				}
			}
		}
		if best < 0 {
			gap += hi - lo
			continue
		}
		covered += hi - lo
		r := v.Rows[best]
		crit[key{r.Hop, r.Class, r.Label}] += hi - lo
	}
	v.Coverage = float64(covered) / float64(rootDur)
	v.GapNs = gap
	for k, ns := range crit {
		v.Crit = append(v.Crit, CritEntry{Hop: k.hop, Class: k.class, Label: k.label, Ns: ns})
	}
	sort.Slice(v.Crit, func(i, j int) bool {
		a, b := v.Crit[i], v.Crit[j]
		if a.Ns != b.Ns {
			return a.Ns > b.Ns
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		return a.Label < b.Label
	})
}

// CritSum returns the summed critical-path attribution plus the gap —
// always exactly the root duration, by construction.
func (v *View) CritSum() int64 {
	s := v.GapNs
	for _, c := range v.Crit {
		s += c.Ns
	}
	return s
}

// GuiltyHop returns the hop name and class carrying the largest share of
// the critical path — the "which hop ate my microseconds" answer.
func (v *View) GuiltyHop(t *Tracer) (hop, class string, ns int64) {
	if len(v.Crit) == 0 {
		return "?", "untraced", v.GapNs
	}
	c := v.Crit[0]
	return t.Name(c.Hop), RowClassName(c.Class), c.Ns
}

// WriteWaterfall renders the view as an aligned ASCII waterfall: one bar
// per row, offset and scaled inside the root interval, followed by the
// critical-path attribution and any fault marks.
func (v *View) WriteWaterfall(w io.Writer, t *Tracer) {
	const width = 48
	rootDur := v.Root.Dur()
	fmt.Fprintf(w, "trace %d  root=%s  %s  coverage %.1f%%\n",
		v.Trace, t.Name(v.RootHop), fmtNs(rootDur), 100*v.Coverage)
	if rootDur <= 0 {
		return
	}
	scale := func(ts int64) int {
		p := int((ts - v.Root.Start) * width / rootDur)
		if p < 0 {
			p = 0
		}
		if p > width {
			p = width
		}
		return p
	}
	var bar [width]byte
	for _, r := range v.Rows {
		for i := range bar {
			bar[i] = ' '
		}
		lo, hi := scale(r.From), scale(r.To)
		if hi == lo && hi < width {
			hi = lo + 1
		}
		for i := lo; i < hi; i++ {
			bar[i] = '='
		}
		name := t.Name(r.Hop)
		if r.ToHop != r.Hop {
			name = name + ">" + t.Name(r.ToHop)
		}
		fmt.Fprintf(w, "  %-16s %-7s %-14s |%s| %10s @%+dns\n",
			name, RowClassName(r.Class), r.Label, bar[:], fmtNs(r.Dur()), r.From-v.Root.Start)
	}
	fmt.Fprintf(w, "  critical path:")
	for _, c := range v.Crit {
		fmt.Fprintf(w, " %s/%s(%s)=%s", t.Name(c.Hop), RowClassName(c.Class), c.Label, fmtNs(c.Ns))
	}
	if v.GapNs > 0 {
		fmt.Fprintf(w, " untraced=%s", fmtNs(v.GapNs))
	}
	fmt.Fprintln(w)
	for _, f := range v.Faults {
		fmt.Fprintf(w, "  !! fault %s at %s (%+dns)\n", t.Name(f.Site), t.Name(f.Hop), f.At-v.Root.Start)
	}
}

// fmtNs renders nanoseconds tersely (ns below 10µs, else µs).
func fmtNs(ns int64) string {
	if ns < 10_000 && ns > -10_000 {
		return fmt.Sprintf("%dns", ns)
	}
	return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
}
