package dtrace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary trace format: a fixed header, the name registry, the counters,
// then fixed-width event and root records, everything big-endian. The
// encoding is a pure function of tracer state, and tracer state is a pure
// function of the seed — so same-seed runs export byte-identical traces
// (asserted by the CI trace smoke job).
var binMagic = [5]byte{'D', 'T', 'R', 'C', 1}

const (
	binEventSize = 47 // 5*8 (Trace,Token,T0,T1,T2) + 4 (QD) + 3 (Kind,Hop,Label)
	binRootSize  = 24 // Trace + Start + End
)

// EncodeBinary writes the tracer's retained state: names, counters, the
// event arena in recording order, and the retention tables.
func (t *Tracer) EncodeBinary(w io.Writer) error {
	if _, err := w.Write(binMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	u32 := func(v uint32) error {
		binary.BigEndian.PutUint32(scratch[:4], v)
		_, err := w.Write(scratch[:4])
		return err
	}
	u64 := func(v uint64) error {
		binary.BigEndian.PutUint64(scratch[:8], v)
		_, err := w.Write(scratch[:8])
		return err
	}
	if err := u32(uint32(len(t.names))); err != nil {
		return err
	}
	for _, n := range t.names {
		if err := u32(uint32(len(n))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, n); err != nil {
			return err
		}
	}
	for _, v := range [5]uint64{t.sampleEvery, t.started, t.finished, t.evicted, t.lastID} {
		if err := u64(v); err != nil {
			return err
		}
	}
	events := t.Events()
	if err := u32(uint32(len(events))); err != nil {
		return err
	}
	var rec [binEventSize]byte
	for _, e := range events {
		binary.BigEndian.PutUint64(rec[0:], e.Trace)
		binary.BigEndian.PutUint64(rec[8:], e.Token)
		binary.BigEndian.PutUint64(rec[16:], uint64(e.T0))
		binary.BigEndian.PutUint64(rec[24:], uint64(e.T1))
		binary.BigEndian.PutUint64(rec[32:], uint64(e.T2))
		binary.BigEndian.PutUint32(rec[40:], uint32(e.QD))
		rec[44] = e.Kind
		rec[45] = e.Hop
		rec[46] = e.Label
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	writeRoots := func(roots []Root) error {
		if err := u32(uint32(len(roots))); err != nil {
			return err
		}
		var rr [binRootSize]byte
		for _, r := range roots {
			binary.BigEndian.PutUint64(rr[0:], r.Trace)
			binary.BigEndian.PutUint64(rr[8:], uint64(r.Start))
			binary.BigEndian.PutUint64(rr[16:], uint64(r.End))
			if _, err := w.Write(rr[:]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeRoots(t.Recent()); err != nil {
		return err
	}
	return writeRoots(t.Slowest(0))
}

// DecodeBinary reconstructs a tracer from EncodeBinary output, sufficient
// for querying: Assemble, Name, Recent, Slowest all work on the result.
func DecodeBinary(r io.Reader) (*Tracer, error) {
	var magic [5]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("dtrace: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("dtrace: bad magic %q (version mismatch?)", magic[:])
	}
	var scratch [8]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint32(scratch[:4]), nil
	}
	u64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint64(scratch[:8]), nil
	}
	nNames, err := u32()
	if err != nil {
		return nil, err
	}
	if nNames > 256 {
		return nil, fmt.Errorf("dtrace: corrupt name count %d", nNames)
	}
	names := make([]string, 0, nNames)
	for i := uint32(0); i < nNames; i++ {
		ln, err := u32()
		if err != nil {
			return nil, err
		}
		if ln > 4096 {
			return nil, fmt.Errorf("dtrace: corrupt name length %d", ln)
		}
		b := make([]byte, ln)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		names = append(names, string(b))
	}
	t := &Tracer{names: names}
	var ctrs [5]uint64
	for i := range ctrs {
		if ctrs[i], err = u64(); err != nil {
			return nil, err
		}
	}
	t.sampleEvery, t.started, t.finished, t.evicted, t.lastID = ctrs[0], ctrs[1], ctrs[2], ctrs[3], ctrs[4]
	nEvents, err := u32()
	if err != nil {
		return nil, err
	}
	t.events = make([]Event, nEvents)
	var rec [binEventSize]byte
	for i := uint32(0); i < nEvents; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, err
		}
		e := &t.events[i]
		e.Trace = binary.BigEndian.Uint64(rec[0:])
		e.Token = binary.BigEndian.Uint64(rec[8:])
		e.T0 = int64(binary.BigEndian.Uint64(rec[16:]))
		e.T1 = int64(binary.BigEndian.Uint64(rec[24:]))
		e.T2 = int64(binary.BigEndian.Uint64(rec[32:]))
		e.QD = int32(binary.BigEndian.Uint32(rec[40:]))
		e.Kind = rec[44]
		e.Hop = rec[45]
		e.Label = rec[46]
	}
	// Mark the arena as exactly full (next=0, wrapped) so Events() returns
	// every decoded record in order; decoded tracers are read-only.
	t.next = 0
	t.wrapped = nEvents > 0
	readRoots := func() ([]Root, error) {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		roots := make([]Root, n)
		var rr [binRootSize]byte
		for i := uint32(0); i < n; i++ {
			if _, err := io.ReadFull(r, rr[:]); err != nil {
				return nil, err
			}
			roots[i].Trace = binary.BigEndian.Uint64(rr[0:])
			roots[i].Start = int64(binary.BigEndian.Uint64(rr[8:]))
			roots[i].End = int64(binary.BigEndian.Uint64(rr[16:]))
		}
		return roots, nil
	}
	recent, err := readRoots()
	if err != nil {
		return nil, err
	}
	t.recent = recent
	t.rnext = 0
	t.rwrapped = len(recent) > 0
	slow, err := readRoots()
	if err != nil {
		return nil, err
	}
	t.slow = slow
	return t, nil
}

// WriteChromeJSON exports every assembled view as Chrome trace_event JSON
// (load in chrome://tracing or Perfetto): one process per trace, one
// thread per hop, complete ("X") events for rows, instant ("i") events for
// faults. Timestamps are microseconds relative to each trace's root start.
// Output is deterministic: traces ascending, rows in stitched order.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	views := t.Assemble()
	ids := make([]uint64, 0, len(views))
	for id := range views {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, id := range ids {
		v := views[id]
		if err := emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"trace %d (%s)"}}`,
			id, id, t.Name(v.RootHop)); err != nil {
			return err
		}
		named := make(map[uint8]bool)
		nameThread := func(hop uint8) error {
			if named[hop] {
				return nil
			}
			named[hop] = true
			return emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
				id, hop, t.Name(hop))
		}
		if err := nameThread(v.RootHop); err != nil {
			return err
		}
		if err := emit(`{"name":"request","cat":"root","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d}`,
			0.0, us(v.Root.Dur()), id, v.RootHop); err != nil {
			return err
		}
		for _, r := range v.Rows {
			if err := nameThread(r.Hop); err != nil {
				return err
			}
			label := r.Label
			if r.ToHop != r.Hop {
				label = label + " to " + t.Name(r.ToHop)
			}
			if err := emit(`{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d}`,
				label, RowClassName(r.Class), us(r.From-v.Root.Start), us(r.Dur()), id, r.Hop); err != nil {
				return err
			}
		}
		for _, f := range v.Faults {
			if err := nameThread(f.Hop); err != nil {
				return err
			}
			if err := emit(`{"name":%q,"cat":"fault","ph":"i","s":"p","ts":%.3f,"pid":%d,"tid":%d}`,
				t.Name(f.Site), us(f.At-v.Root.Start), id, f.Hop); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
