package dtrace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestSampling: head-based sampling traces every Nth request with
// sequential IDs, and 0 disables tracing entirely.
func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	var ids []uint64
	for i := 0; i < 10; i++ {
		if id := tr.StartRequest(); id != 0 {
			ids = append(ids, id)
		}
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("sampled ids = %v, want [1 2 3] (requests 0, 4, 8)", ids)
	}
	off := New(Config{SampleEvery: 0})
	if off.Enabled() {
		t.Fatal("SampleEvery 0 must disable the tracer")
	}
	if id := off.StartRequest(); id != 0 {
		t.Fatalf("disabled tracer sampled id %d", id)
	}
}

// TestNilSafety: a nil tracer and nil hop are inert on every path the
// datapath calls.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.StartRequest() != 0 || tr.Hop("x") != nil {
		t.Fatal("nil tracer must be inert")
	}
	var h *Hop
	h.OpSpan(1, 1, 1, 1, 0, 1, 2)
	h.WireTx(1, 0)
	h.AppSpan(1, 0, 0, 1)
	h.EndRequest(1, 0, 1)
	if h.Tracer() != nil || h.Label("x") != 0 {
		t.Fatal("nil hop must be inert")
	}
}

// TestArenaWraparound: the event ring keeps the newest events, counts
// evictions, and Events() returns recording order after the wrap.
func TestArenaWraparound(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Events: 4, Recent: 4, Slowest: 1})
	h := tr.Hop("h")
	for i := int64(1); i <= 6; i++ {
		h.WireTx(uint64(i), i*10)
	}
	if tr.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", tr.Evicted())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if evs[i].Trace != want {
			t.Errorf("events[%d].Trace = %d, want %d", i, evs[i].Trace, want)
		}
	}
}

// TestSlowestRetention: the top-k table keeps the slowest roots, ties keep
// the earlier request, and Slowest orders deterministically.
func TestSlowestRetention(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Events: 64, Recent: 2, Slowest: 2})
	h := tr.Hop("h")
	h.EndRequest(1, 0, 300)
	h.EndRequest(2, 0, 100)
	h.EndRequest(3, 0, 100) // ties the min: dropped
	h.EndRequest(4, 0, 101) // strictly slower: evicts trace 2
	slow := tr.Slowest(0)
	if len(slow) != 2 || slow[0].Trace != 1 || slow[1].Trace != 4 {
		t.Fatalf("slowest = %+v, want traces [1 4]", slow)
	}
	// Recent ring holds the last 2 finishes in order.
	rec := tr.Recent()
	if len(rec) != 2 || rec[0].Trace != 3 || rec[1].Trace != 4 {
		t.Fatalf("recent = %+v, want traces [3 4]", rec)
	}
	if tr.Finished() != 4 {
		t.Fatalf("finished = %d, want 4", tr.Finished())
	}
}

// synthTrace records one two-hop request: client push -> wire -> server
// app+push -> wire -> client pop, rooted 0..100ns.
func synthTrace(tr *Tracer) uint64 {
	cl, sv := tr.Hop("client"), tr.Hop("server")
	serve := sv.Label("serve")
	ctx := tr.StartRequest()
	cl.OpSpan(ctx, 1, 1 /*push*/, 1, 0, 5, 6)
	cl.WireTx(ctx, 5)
	sv.WireRx(ctx, 20)
	sv.OpSpan(ctx, 2, 2 /*pop*/, 1, 0, 20, 25)
	sv.AppSpan(ctx, serve, 25, 40)
	sv.OpSpan(ctx, 3, 1 /*push*/, 1, 40, 45, 46)
	sv.WireTx(ctx, 45)
	cl.WireRx(ctx, 60)
	cl.OpSpan(ctx, 4, 2 /*pop*/, 1, 5, 60, 100)
	cl.EndRequest(ctx, 0, 100)
	return ctx
}

// TestStitchSynthetic: a hand-built trace assembles into a view whose
// critical path exactly tiles the root interval.
func TestStitchSynthetic(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Events: 64, Recent: 8, Slowest: 4})
	ctx := synthTrace(tr)
	views := tr.Assemble()
	v := views[ctx]
	if v == nil {
		t.Fatalf("no view for trace %d (views: %d)", ctx, len(views))
	}
	if v.Root.Dur() != 100 {
		t.Fatalf("root dur = %d, want 100", v.Root.Dur())
	}
	if v.CritSum() != v.Root.Dur() {
		t.Fatalf("critical path sums to %d, root is %d", v.CritSum(), v.Root.Dur())
	}
	if v.Coverage != 1.0 {
		t.Fatalf("coverage = %v, want 1.0 (client pop spans the whole tail)", v.Coverage)
	}
	// Wire transits paired: client->server at 5..20 and server->client 45..60.
	wires := 0
	for _, r := range v.Rows {
		if r.Class == RowWire {
			wires++
			if r.Dur() != 15 {
				t.Errorf("wire transit %d..%d, want 15ns", r.From, r.To)
			}
		}
	}
	if wires != 2 {
		t.Fatalf("paired %d wire transits, want 2", wires)
	}
	hop, _, ns := v.GuiltyHop(tr)
	if ns <= 0 || hop == "" {
		t.Fatalf("GuiltyHop = %q %dns", hop, ns)
	}
}

// TestFaultAttachment: an unattributed fault (Trace 0) lands in every view
// whose root interval contains the instant; an attributed one lands only in
// its own trace.
func TestFaultAttachment(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Events: 128, Recent: 8, Slowest: 4})
	h := tr.Hop("dev")
	site := h.Label("fault:dev.stall")
	a := tr.StartRequest()
	b := tr.StartRequest()
	tr.FaultAt(site, 50)    // global: inside both roots
	h.Fault(a, site, 60)    // attributed to a only
	tr.FaultAt(site, 5000)  // outside both roots: attached to neither
	h.EndRequest(a, 0, 100) // a spans 0..100
	h.EndRequest(b, 40, 90) // b spans 40..90
	views := tr.Assemble()
	if n := len(views[a].Faults); n != 2 {
		t.Fatalf("trace a has %d faults, want 2 (global@50 + own@60)", n)
	}
	if n := len(views[b].Faults); n != 1 {
		t.Fatalf("trace b has %d faults, want 1 (global@50)", n)
	}
}

// TestBinaryRoundTrip: encode -> decode preserves events, roots, names, and
// counters, and re-encoding the decoded tracer is byte-identical.
func TestBinaryRoundTrip(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Events: 64, Recent: 8, Slowest: 4})
	synthTrace(tr)
	var a bytes.Buffer
	if err := tr.EncodeBinary(&a); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBinary(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Events()) != len(tr.Events()) {
		t.Fatalf("decoded %d events, want %d", len(dec.Events()), len(tr.Events()))
	}
	for i, e := range tr.Events() {
		if dec.Events()[i] != e {
			t.Fatalf("event %d differs: %+v vs %+v", i, dec.Events()[i], e)
		}
	}
	if dec.Started() != tr.Started() || dec.Finished() != tr.Finished() {
		t.Fatalf("counters differ: %d/%d vs %d/%d",
			dec.Started(), dec.Finished(), tr.Started(), tr.Finished())
	}
	if dec.Name(1) != tr.Name(1) {
		t.Fatalf("name table differs: %q vs %q", dec.Name(1), tr.Name(1))
	}
	var b bytes.Buffer
	if err := dec.EncodeBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-encoded decoded tracer differs from the original export")
	}
	// Decoded views stitch identically.
	if v := dec.Assemble(); len(v) != 1 {
		t.Fatalf("decoded tracer assembled %d views, want 1", len(v))
	}
}

// TestChromeJSON: the Chrome trace_event export is valid JSON with the
// expected event phases.
func TestChromeJSON(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Events: 128, Recent: 8, Slowest: 4})
	synthTrace(tr)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	phases := map[string]int{}
	for _, e := range evs {
		phases[e["ph"].(string)]++
	}
	if phases["X"] == 0 || phases["M"] == 0 {
		t.Fatalf("phases = %v, want complete (X) and metadata (M) events", phases)
	}
}

// TestRecordPathAllocs is the 0-alloc guard: the record path must not
// allocate — neither when tracing is live nor when it is off (nil hop or
// unsampled request).
func TestRecordPathAllocs(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Events: 1 << 12, Recent: 64, Slowest: 8})
	h := tr.Hop("h")
	live := testing.AllocsPerRun(200, func() {
		ctx := tr.StartRequest()
		h.OpSpan(ctx, 1, 1, 1, 0, 5, 6)
		h.WireTx(ctx, 5)
		h.WireRx(ctx, 20)
		h.RingPush(ctx, 21)
		h.RingPop(ctx, 22)
		h.AppSpan(ctx, 1, 25, 40)
		h.Fault(ctx, 1, 30)
		h.EndRequest(ctx, 0, 100)
		tr.FaultAt(1, 50)
	})
	if live != 0 {
		t.Errorf("live record path allocates %v per request, want 0", live)
	}
	var off *Hop // sampling disabled: every hop is nil
	disabled := testing.AllocsPerRun(200, func() {
		off.OpSpan(0, 1, 1, 1, 0, 5, 6)
		off.WireTx(0, 5)
		off.AppSpan(0, 1, 25, 40)
		off.EndRequest(0, 0, 100)
	})
	if disabled != 0 {
		t.Errorf("disabled record path allocates %v, want 0", disabled)
	}
}
