package dtrace

import (
	"strings"
	"testing"
)

// TestSwitchHop: a KSwitch event stitches into a zero-length wire-class row
// carrying the placement decision, never claims critical path, and renders
// in the waterfall.
func TestSwitchHop(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Events: 64, Recent: 8, Slowest: 4})
	cl := tr.Hop("client")
	tor := tr.Hop("tor")
	sv := tr.Hop("server")

	ctx := tr.StartRequest()
	cl.WireTx(ctx, 5)
	tor.Switch(ctx, 12, 3) // ToR steers the request to server 3 mid-flight
	sv.WireRx(ctx, 20)
	sv.OpSpan(ctx, 2, 2, 1, 0, 20, 25)
	sv.WireTx(ctx, 25)
	tor.Switch(ctx, 32, -1) // reply path: no placement decision
	cl.WireRx(ctx, 40)
	cl.OpSpan(ctx, 4, 2, 1, 5, 40, 100)
	cl.EndRequest(ctx, 0, 100)

	v := tr.Assemble()[ctx]
	if v == nil {
		t.Fatal("no view assembled")
	}
	var steered, bare bool
	for _, r := range v.Rows {
		if r.Class != RowWire || r.Dur() != 0 {
			continue
		}
		switch r.Label {
		case "switch>s3":
			steered = true
			if r.From != 12 || r.Hop != 2 {
				t.Errorf("steered switch row at %d on hop %d, want 12 on tor", r.From, r.Hop)
			}
		case "switch":
			bare = true
		}
	}
	if !steered || !bare {
		t.Fatalf("switch rows: steered=%v bare=%v, want both", steered, bare)
	}
	// Zero-length rows must never appear in critical-path attribution.
	for _, c := range v.Crit {
		if strings.HasPrefix(c.Label, "switch") {
			t.Errorf("switch row claimed %dns of critical path", c.Ns)
		}
	}
	if v.CritSum() != v.Root.Dur() {
		t.Fatalf("critical path sums to %d, root is %d", v.CritSum(), v.Root.Dur())
	}

	var w strings.Builder
	v.WriteWaterfall(&w, tr)
	if !strings.Contains(w.String(), "switch>s3") {
		t.Error("waterfall does not render the ToR placement row")
	}
	if KindName(KSwitch) != "switch" {
		t.Errorf("KindName(KSwitch) = %q", KindName(KSwitch))
	}
}

// TestSwitchNilSafety: nil hops and zero contexts record nothing.
func TestSwitchNilSafety(t *testing.T) {
	var h *Hop
	h.Switch(1, 10, 0) // must not panic
	tr := New(Config{SampleEvery: 1, Events: 8, Recent: 1, Slowest: 1})
	tr.Hop("tor").Switch(0, 10, 0) // unsampled: no event
	if n := len(tr.Events()); n != 0 {
		t.Errorf("recorded %d events for zero context", n)
	}
}
