// Package spdkdev simulates an SPDK-style NVMe device: asynchronous block
// reads/writes/flushes submitted to a queue and completed through a polled
// completion queue, with a latency model calibrated to the paper's Intel
// Optane 800P (3D XPoint) SSDs. Cattree builds its log abstraction on this
// interface exactly as the real Cattree builds on SPDK.
//
// Fault injection: Crash discards all in-flight (submitted but incomplete)
// operations, modelling power failure; completed writes remain durable.
// Cattree's recovery tests use this to validate log replay.
package spdkdev

import (
	"errors"
	"fmt"
	"time"

	"demikernel/internal/faults"
	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
)

// Errors surfaced in Completion.Err by injected faults. Callers distinguish
// torn writes (partial durable mutation) from clean I/O errors.
var (
	ErrInjected  = errors.New("spdkdev: injected I/O error")
	ErrTornWrite = errors.New("spdkdev: torn write (partial blocks durable)")
)

// Faults bundles the device's injection sites. Any field may be nil.
type Faults struct {
	// IOErr fails a command with ErrInjected and no durable mutation.
	IOErr *faults.Site
	// Latency stretches a command's service time by its Spec.Duration.
	Latency *faults.Site
	// TornWrite makes a write persist only a prefix of its blocks and
	// complete with ErrTornWrite — the classic partial-sector power bug.
	TornWrite *faults.Site
}

// BlockSize is the device's logical block size in bytes.
const BlockSize = 512

// Params is the device latency model.
type Params struct {
	// ReadLatency and WriteLatency are fixed per-command costs.
	ReadLatency, WriteLatency time.Duration
	// FlushLatency is the cost of a flush barrier.
	FlushLatency time.Duration
	// BytesPerSec is the transfer rate; zero means infinite.
	BytesPerSec float64
}

// transferCost returns the transfer time for n bytes.
func (p Params) transferCost(n int) time.Duration {
	if p.BytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.BytesPerSec * 1e9)
}

// OptaneParams models the paper's Intel Optane 800P: ~10 µs access latency
// and ~2 GB/s transfer.
func OptaneParams() Params {
	return Params{
		ReadLatency:  10 * time.Microsecond,
		WriteLatency: 10 * time.Microsecond,
		FlushLatency: 2 * time.Microsecond,
		BytesPerSec:  2e9,
	}
}

// Op identifies a completed command.
type Op int

const (
	// OpRead completes a SubmitRead.
	OpRead Op = iota
	// OpWrite completes a SubmitWrite.
	OpWrite
	// OpFlush completes a SubmitFlush.
	OpFlush
)

// Completion is one completion queue entry.
type Completion struct {
	Op     Op
	Cookie any
	Data   []byte // OpRead: the data read
	Err    error
}

// Stats counts device activity.
type Stats struct {
	Reads, Writes, Flushes uint64
	BytesRead, BytesWrit   uint64
	Crashes                uint64
}

// Device is one simulated NVMe namespace bound to a node.
type Device struct {
	node      *sim.Node
	params    Params
	numBlocks int64
	blocks    map[int64][]byte // durable contents, sparse
	cq        []Completion
	busyUntil sim.Time
	inflight  int
	epoch     uint64 // bumped by Crash to invalidate in-flight completions
	stats     Stats
	tel       *telemetry.Registry
	flt       Faults
}

// SetFaults installs (or, with the zero value, clears) the device's fault
// injection sites.
func (d *Device) SetFaults(f Faults) { d.flt = f }

// faultCost returns the latency penalty for this command, consuming one
// Latency trigger if it fires.
func (d *Device) faultCost() time.Duration {
	if d.flt.Latency.Fire(d.node.Now()) {
		return d.flt.Latency.Spec().Duration
	}
	return 0
}

// New creates a device with the given capacity in blocks.
func New(node *sim.Node, params Params, numBlocks int64) *Device {
	d := &Device{
		node:      node,
		params:    params,
		numBlocks: numBlocks,
		blocks:    make(map[int64][]byte),
	}
	d.tel = telemetry.NewRegistry(node.Name() + "/spdk")
	s := &d.stats
	d.tel.Sample("spdk.reads", func() int64 { return int64(s.Reads) })
	d.tel.Sample("spdk.writes", func() int64 { return int64(s.Writes) })
	d.tel.Sample("spdk.flushes", func() int64 { return int64(s.Flushes) })
	d.tel.Sample("spdk.bytes_read", func() int64 { return int64(s.BytesRead) })
	d.tel.Sample("spdk.bytes_written", func() int64 { return int64(s.BytesWrit) })
	d.tel.Sample("spdk.crashes", func() int64 { return int64(s.Crashes) })
	d.tel.Sample("spdk.inflight", func() int64 { return int64(d.inflight) })
	return d
}

// Telemetry returns the device's metric registry (sampled views of Stats).
func (d *Device) Telemetry() *telemetry.Registry { return d.tel }

// Node returns the owning node.
func (d *Device) Node() *sim.Node { return d.node }

// NumBlocks returns the device capacity in blocks.
func (d *Device) NumBlocks() int64 { return d.numBlocks }

// Stats returns a snapshot of device counters.
func (d *Device) Stats() Stats { return d.stats }

// Inflight returns the number of submitted, incomplete commands.
func (d *Device) Inflight() int { return d.inflight }

// schedule serializes a command through the device pipeline and arranges
// its completion. apply mutates durable state and runs at completion time
// (so a crash before completion leaves no trace).
func (d *Device) schedule(cost time.Duration, apply func() Completion) {
	start := d.node.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start.Add(cost)
	d.busyUntil = done
	d.inflight++
	epoch := d.epoch
	d.node.Engine().At(done, d.node, func() {
		if d.epoch != epoch {
			return // lost to a crash
		}
		d.inflight--
		d.cq = append(d.cq, apply())
	})
}

// checkRange validates a block range.
func (d *Device) checkRange(lba int64, nBlocks int) error {
	if lba < 0 || nBlocks <= 0 || lba+int64(nBlocks) > d.numBlocks {
		return fmt.Errorf("spdkdev: range [%d, +%d) outside device of %d blocks", lba, nBlocks, d.numBlocks)
	}
	return nil
}

// SubmitWrite submits an asynchronous write of data (whose length must be a
// multiple of BlockSize) at block lba. Data is captured by reference; the
// caller must not modify it until completion, the same DMA contract as real
// SPDK.
func (d *Device) SubmitWrite(lba int64, data []byte, cookie any) error {
	if len(data)%BlockSize != 0 {
		return fmt.Errorf("spdkdev: write of %d bytes not block-aligned", len(data))
	}
	n := len(data) / BlockSize
	if err := d.checkRange(lba, n); err != nil {
		return err
	}
	cost := d.params.WriteLatency + d.params.transferCost(len(data)) + d.faultCost()
	now := d.node.Now()
	if d.flt.IOErr.Fire(now) {
		d.schedule(cost, func() Completion {
			return Completion{Op: OpWrite, Cookie: cookie, Err: ErrInjected}
		})
		return nil
	}
	torn := n // blocks actually persisted; < n for a torn write
	var tornErr error
	if d.flt.TornWrite.Fire(now) {
		torn = d.flt.TornWrite.Rand().Intn(n)
		tornErr = ErrTornWrite
	}
	d.schedule(cost, func() Completion {
		for i := 0; i < torn; i++ {
			blk := make([]byte, BlockSize)
			copy(blk, data[i*BlockSize:(i+1)*BlockSize])
			d.blocks[lba+int64(i)] = blk
		}
		d.stats.Writes++
		d.stats.BytesWrit += uint64(torn * BlockSize)
		return Completion{Op: OpWrite, Cookie: cookie, Err: tornErr}
	})
	return nil
}

// SubmitRead submits an asynchronous read of nBlocks blocks at lba.
func (d *Device) SubmitRead(lba int64, nBlocks int, cookie any) error {
	if err := d.checkRange(lba, nBlocks); err != nil {
		return err
	}
	cost := d.params.ReadLatency + d.params.transferCost(nBlocks*BlockSize) + d.faultCost()
	if d.flt.IOErr.Fire(d.node.Now()) {
		d.schedule(cost, func() Completion {
			return Completion{Op: OpRead, Cookie: cookie, Err: ErrInjected}
		})
		return nil
	}
	d.schedule(cost, func() Completion {
		out := make([]byte, nBlocks*BlockSize)
		for i := 0; i < nBlocks; i++ {
			if blk, ok := d.blocks[lba+int64(i)]; ok {
				copy(out[i*BlockSize:], blk)
			}
		}
		d.stats.Reads++
		d.stats.BytesRead += uint64(len(out))
		return Completion{Op: OpRead, Cookie: cookie, Data: out}
	})
	return nil
}

// SubmitFlush submits a flush barrier: it completes only after every
// previously submitted command has completed (the pipeline is serial, so
// scheduling position suffices).
func (d *Device) SubmitFlush(cookie any) {
	d.schedule(d.params.FlushLatency+d.faultCost(), func() Completion {
		d.stats.Flushes++
		return Completion{Op: OpFlush, Cookie: cookie}
	})
}

// PollCompletions returns up to max completions. It never blocks.
func (d *Device) PollCompletions(max int) []Completion {
	if len(d.cq) == 0 {
		return nil
	}
	k := len(d.cq)
	if k > max {
		k = max
	}
	out := make([]Completion, k)
	copy(out, d.cq[:k])
	d.cq = d.cq[k:]
	return out
}

// CQPending reports whether completions are waiting.
func (d *Device) CQPending() bool { return len(d.cq) > 0 }

// CloneBlocksInto copies this device's durable contents into another
// device, modelling the same physical disk attached after a host restart
// (the destination usually belongs to a fresh simulation).
func (d *Device) CloneBlocksInto(to *Device) {
	for lba, blk := range d.blocks {
		to.blocks[lba] = append([]byte(nil), blk...)
	}
}

// Crash models a power failure: every in-flight command is lost, the
// completion queue is cleared, and durable contents remain. The device is
// immediately usable again (restart).
func (d *Device) Crash() {
	d.epoch++
	d.inflight = 0
	d.cq = nil
	d.busyUntil = d.node.Now()
	d.stats.Crashes++
}
