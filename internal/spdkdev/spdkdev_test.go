package spdkdev

import (
	"bytes"
	"testing"
	"time"

	"demikernel/internal/sim"
)

// runDev drives fn on a node with a fresh device and runs the simulation.
func runDev(t *testing.T, fn func(*sim.Engine, *Device)) {
	t.Helper()
	eng := sim.NewEngine(5)
	node := eng.NewNode("host")
	dev := New(node, OptaneParams(), 1<<20)
	eng.Spawn(node, func() { fn(eng, dev) })
	eng.Run()
}

// await polls until a completion arrives.
func await(dev *Device) (Completion, bool) {
	for {
		if cs := dev.PollCompletions(1); len(cs) > 0 {
			return cs[0], true
		}
		if !dev.Node().Park(sim.Infinity) {
			return Completion{}, false
		}
	}
}

func TestWriteThenReadBack(t *testing.T) {
	runDev(t, func(eng *sim.Engine, dev *Device) {
		data := make([]byte, 2*BlockSize)
		for i := range data {
			data[i] = byte(i)
		}
		if err := dev.SubmitWrite(10, data, "w"); err != nil {
			t.Fatal(err)
		}
		if c, ok := await(dev); !ok || c.Op != OpWrite || c.Cookie != "w" {
			t.Fatalf("write completion = %+v", c)
		}
		if err := dev.SubmitRead(10, 2, "r"); err != nil {
			t.Fatal(err)
		}
		c, ok := await(dev)
		if !ok || c.Op != OpRead {
			t.Fatalf("read completion = %+v", c)
		}
		if !bytes.Equal(c.Data, data) {
			t.Error("read data differs from written data")
		}
	})
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	runDev(t, func(eng *sim.Engine, dev *Device) {
		dev.SubmitRead(500, 1, nil)
		c, _ := await(dev)
		for _, b := range c.Data {
			if b != 0 {
				t.Fatal("unwritten block not zero")
			}
		}
	})
}

func TestWriteLatencyModel(t *testing.T) {
	runDev(t, func(eng *sim.Engine, dev *Device) {
		start := dev.Node().Now()
		dev.SubmitWrite(0, make([]byte, BlockSize), nil)
		await(dev)
		elapsed := dev.Node().Now().Sub(start)
		want := OptaneParams().WriteLatency + OptaneParams().transferCost(BlockSize)
		if elapsed < want || elapsed > want+time.Microsecond {
			t.Errorf("write took %v, want ≈%v", elapsed, want)
		}
	})
}

func TestSerialPipelineQueueing(t *testing.T) {
	runDev(t, func(eng *sim.Engine, dev *Device) {
		start := dev.Node().Now()
		for i := 0; i < 4; i++ {
			dev.SubmitWrite(int64(i), make([]byte, BlockSize), i)
		}
		for i := 0; i < 4; i++ {
			await(dev)
		}
		elapsed := dev.Node().Now().Sub(start)
		per := OptaneParams().WriteLatency + OptaneParams().transferCost(BlockSize)
		if elapsed < 4*per {
			t.Errorf("4 writes took %v, want >= %v (serial pipeline)", elapsed, 4*per)
		}
	})
}

func TestFlushOrdersAfterWrites(t *testing.T) {
	runDev(t, func(eng *sim.Engine, dev *Device) {
		dev.SubmitWrite(0, make([]byte, BlockSize), "w1")
		dev.SubmitWrite(1, make([]byte, BlockSize), "w2")
		dev.SubmitFlush("f")
		var order []any
		for len(order) < 3 {
			c, ok := await(dev)
			if !ok {
				return
			}
			order = append(order, c.Cookie)
		}
		if order[2] != "f" {
			t.Errorf("flush completed before writes: %v", order)
		}
	})
}

func TestRangeValidation(t *testing.T) {
	runDev(t, func(eng *sim.Engine, dev *Device) {
		if err := dev.SubmitWrite(-1, make([]byte, BlockSize), nil); err == nil {
			t.Error("negative LBA accepted")
		}
		if err := dev.SubmitWrite(dev.NumBlocks(), make([]byte, BlockSize), nil); err == nil {
			t.Error("out-of-range write accepted")
		}
		if err := dev.SubmitWrite(0, make([]byte, 100), nil); err == nil {
			t.Error("unaligned write accepted")
		}
		if err := dev.SubmitRead(0, 0, nil); err == nil {
			t.Error("zero-block read accepted")
		}
	})
}

func TestCrashLosesInflightKeepsDurable(t *testing.T) {
	runDev(t, func(eng *sim.Engine, dev *Device) {
		durable := bytes.Repeat([]byte{1}, BlockSize)
		dev.SubmitWrite(0, durable, "durable")
		await(dev) // completed: durable
		dev.SubmitWrite(1, bytes.Repeat([]byte{2}, BlockSize), "lost")
		dev.Crash() // before completion: lost
		dev.SubmitRead(0, 2, nil)
		c, _ := await(dev)
		if !bytes.Equal(c.Data[:BlockSize], durable) {
			t.Error("durable block lost by crash")
		}
		for _, b := range c.Data[BlockSize:] {
			if b != 0 {
				t.Fatal("in-flight write survived crash")
			}
		}
		if dev.Inflight() != 0 {
			t.Error("inflight not reset by crash")
		}
	})
}

func TestPollNeverReturnsStaleCompletionsAfterCrash(t *testing.T) {
	runDev(t, func(eng *sim.Engine, dev *Device) {
		dev.SubmitWrite(0, make([]byte, BlockSize), "pre-crash")
		dev.Crash()
		dev.SubmitWrite(1, make([]byte, BlockSize), "post-crash")
		c, _ := await(dev)
		if c.Cookie != "post-crash" {
			t.Errorf("got completion %v, want post-crash only", c.Cookie)
		}
	})
}
