// Package memory implements Demikernel's kernel-bypass-aware memory
// allocator (paper §5.3): a Hoard-style pool allocator whose superblocks
// carry the metadata zero-copy I/O needs. Each superblock holds fixed-size
// objects backed by one contiguous DMA-capable arena; its header records
// the device registration (rkey) obtained lazily on first I/O and a
// reference-count bitmap granting use-after-free (UAF) protection: an
// object is recycled only after both the application and the library OS
// have released it.
//
// The paper limits refcounting and DMA registration to objects of at least
// 1 KiB, since zero-copy only pays off above that size; ZeroCopyThreshold
// exposes the same policy to the library OSes.
package memory

import (
	"errors"
	"fmt"
	"math/bits"

	"demikernel/internal/telemetry"
)

// ErrNoMem is returned by TryAlloc when the heap cannot satisfy the request
// (an injected pool-exhaustion fault, or a tenant's byte quota; a real
// mempool returns it when the DMA arena is full).
var ErrNoMem = errors.New("memory: out of buffers")

// ErrDoubleFree is returned by TryFree when the application reference is
// already gone. It is the non-panicking sibling of Free's invariant panic,
// for paths where the "application" is an untrusted tenant whose bugs (or
// attacks) must be errors, not crashes.
var ErrDoubleFree = errors.New("memory: double free")

// ErrForeignBuf is returned by TenantHeap.TryFree when the buffer belongs
// to a different tenant's region: buffers are capabilities scoped to the
// region that allocated them.
var ErrForeignBuf = errors.New("memory: buffer belongs to another tenant")

// ZeroCopyThreshold is the smallest buffer size worth transmitting
// zero-copy (paper §5.3); smaller buffers are copied by the I/O stacks.
const ZeroCopyThreshold = 1024

// objectsPerSuperblock is the number of fixed-size slots per superblock.
// 64 keeps the refcount bitmaps to one word per holder class.
const objectsPerSuperblock = 64

// RegisterFunc registers a superblock arena with a kernel-bypass device and
// returns the device's access key (an RDMA rkey, a DPDK mempool cookie...).
// It is called at most once per superblock, on first I/O touch, mirroring
// Catmint's get_rkey.
type RegisterFunc func(arena []byte) uint32

// sizeClasses are the superblock object sizes, ascending. Requests above
// the largest class get a dedicated single-object superblock.
var sizeClasses = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144, 1 << 20}

// classFor returns the index of the smallest class that fits size, or -1
// for huge allocations.
func classFor(size int) int {
	for i, c := range sizeClasses {
		if size <= c {
			return i
		}
	}
	return -1
}

// Stats counts allocator activity.
type Stats struct {
	Allocs, Frees  uint64
	Live           int
	Superblocks    int
	Registrations  uint64
	UAFDeferred    uint64 // frees deferred because the libOS still held a reference
	HugeAllocs     uint64
	BytesRequested uint64
	AllocFailures  uint64 // TryAlloc calls denied by the exhaustion hook
}

// A superblock is one pool of fixed-size objects in a contiguous arena.
type superblock struct {
	heap     *Heap
	class    int // object size in bytes
	arena    []byte
	bufs     []Buf
	freeHead int // LIFO free list threaded through nextFree
	nextFree []int

	// tenant scopes the whole superblock to one tenant's region (0 = the
	// host tenant): tenants never share an arena, so one tenant's
	// allocation pattern cannot fragment or exhaust another's slots.
	// charged records the bytes billed to the tenant per live slot, so
	// recycling credits exactly what TryAlloc debited.
	tenant  uint32
	charged []int64

	// appRef and ioRef are the per-object reference bitmaps (paper §5.3):
	// one bit for the application's reference, one for the library OS's.
	// Additional concurrent libOS references (e.g. a buffer in flight on
	// two queues) spill into ioExtra, the paper's "reference table".
	appRef  uint64
	ioRef   uint64
	ioExtra map[int]int

	registered bool
	rkey       uint32
}

// Heap is a DMA-capable application heap. It is not safe for concurrent
// use: Demikernel datapaths are single-threaded per core by design.
type Heap struct {
	// register is the device hook for DMA registration; nil means the
	// device needs none (e.g. Catnap's kernel path).
	register RegisterFunc
	partial  [][]*superblock // per class: host-tenant superblocks with free slots
	stats    Stats
	rkeySeq  uint32

	// tpartial holds nonzero tenants' partial lists, keyed tenant<<8|class
	// (maps are keyed-access only, never ranged — determinism). tenants
	// holds the per-tenant byte accounts; tenant 0 (the host) is never
	// accounted and keeps the original fast path above.
	tpartial map[uint64][]*superblock
	tenants  map[uint32]*tenantAcct

	// allocFault, when set, is consulted by TryAlloc; returning true makes
	// the allocation fail with ErrNoMem. It is a plain callback (not a
	// faults.Site) so this package stays importable from everywhere.
	allocFault func(size int) bool
}

// NewHeap returns an empty heap. register may be nil.
func NewHeap(register RegisterFunc) *Heap {
	return &Heap{
		register: register,
		partial:  make([][]*superblock, len(sizeClasses)),
	}
}

// SetRegisterFunc installs the device registration hook. Superblocks
// already registered keep their keys; new ones use the new hook. Installing
// a hook is how a libOS adopts an existing application heap.
func (h *Heap) SetRegisterFunc(f RegisterFunc) { h.register = f }

// Stats returns a snapshot of allocator counters.
func (h *Heap) Stats() Stats { return h.stats }

// PublishTelemetry registers the heap's counters with reg as sampled gauges
// under prefix (e.g. "mem"). Sampling is pull-model: the stats struct stays
// the hot-path truth and the registry reads it only at snapshot time, so
// the allocator's fast path is untouched.
func (h *Heap) PublishTelemetry(reg *telemetry.Registry, prefix string) {
	reg.Sample(prefix+".allocs", func() int64 { return int64(h.stats.Allocs) })
	reg.Sample(prefix+".frees", func() int64 { return int64(h.stats.Frees) })
	reg.Sample(prefix+".refcount_releases", func() int64 { return int64(h.stats.Frees + h.stats.UAFDeferred) })
	reg.Sample(prefix+".live", func() int64 { return int64(h.stats.Live) })
	reg.Sample(prefix+".superblocks", func() int64 { return int64(h.stats.Superblocks) })
	reg.Sample(prefix+".registrations", func() int64 { return int64(h.stats.Registrations) })
	reg.Sample(prefix+".uaf_deferred", func() int64 { return int64(h.stats.UAFDeferred) })
	reg.Sample(prefix+".huge_allocs", func() int64 { return int64(h.stats.HugeAllocs) })
	reg.Sample(prefix+".alloc_failures", func() int64 { return int64(h.stats.AllocFailures) })
	reg.Sample(prefix+".bytes_requested", func() int64 { return int64(h.stats.BytesRequested) })
	reg.Sample(prefix+".superblock_occupancy_pct", func() int64 {
		slots := int64(h.stats.Superblocks) * objectsPerSuperblock
		if slots == 0 {
			return 0
		}
		return int64(h.stats.Live) * 100 / slots
	})
}

// SetAllocFault installs (or clears, with nil) the pool-exhaustion hook
// consulted by TryAlloc. The chaos harness points it at a faults site.
func (h *Heap) SetAllocFault(f func(size int) bool) { h.allocFault = f }

// Alloc returns a buffer of exactly size bytes from the DMA-capable heap,
// with the application holding its reference. It panics if the heap is
// exhausted — callers that can degrade use TryAlloc instead; callers that
// cannot (fixed pre-sized pools, test fixtures) keep the invariant panic.
//
//demi:budget=2100ns static estimate 1.369us; slot carve-out is the per-I/O allocation
func (h *Heap) Alloc(size int) *Buf {
	b, err := h.TryAlloc(size)
	if err != nil {
		panic("memory: Alloc: " + err.Error())
	}
	return b
}

// TryAlloc is Alloc with pool exhaustion reported as ErrNoMem instead of a
// panic, so datapaths can drop-with-counter rather than die. The backing
// slot is from a size-class superblock (or a dedicated one for huge sizes).
func (h *Heap) TryAlloc(size int) (*Buf, error) {
	return h.TryAllocTenant(0, size)
}

// TryAllocTenant allocates from one tenant's region of the heap. Tenants
// never share superblocks, and a tenant with a byte quota is denied with
// ErrNoMem once its live bytes would exceed it — its alloc flood exhausts
// its own region, never a victim's. Tenant 0 is the host: unaccounted,
// unlimited, the original fast path.
func (h *Heap) TryAllocTenant(tid uint32, size int) (*Buf, error) {
	if size <= 0 {
		panic("memory: Alloc with non-positive size")
	}
	if h.allocFault != nil && h.allocFault(size) {
		h.stats.AllocFailures++
		return nil, ErrNoMem
	}
	var acct *tenantAcct
	if tid != 0 {
		acct = h.acct(tid)
		if acct.quota > 0 && acct.used+int64(size) > acct.quota {
			acct.rejects++
			h.stats.AllocFailures++
			return nil, ErrNoMem
		}
	}
	h.stats.Allocs++
	h.stats.BytesRequested += uint64(size)
	ci := classFor(size)
	var sb *superblock
	if ci < 0 {
		sb = h.newSuperblock(size, 1)
		sb.tenant = tid
		h.stats.HugeAllocs++
	} else if tid == 0 {
		list := h.partial[ci]
		if len(list) == 0 {
			h.partial[ci] = append(h.partial[ci], h.newSuperblock(sizeClasses[ci], objectsPerSuperblock))
			list = h.partial[ci]
		}
		sb = list[len(list)-1]
	} else {
		key := tkey(tid, ci)
		list := h.tpartial[key]
		if len(list) == 0 {
			nsb := h.newSuperblock(sizeClasses[ci], objectsPerSuperblock)
			nsb.tenant = tid
			h.tpartial[key] = append(list, nsb)
			list = h.tpartial[key]
		}
		sb = list[len(list)-1]
	}
	idx := sb.freeHead
	if idx < 0 {
		panic("memory: superblock on partial list has no free slot")
	}
	sb.freeHead = sb.nextFree[idx]
	sb.appRef |= 1 << uint(idx)
	b := &sb.bufs[idx]
	b.data = sb.arena[idx*sb.class : idx*sb.class+size]
	b.trace = 0 // slots are recycled; a stale trace tag must not leak across owners
	h.stats.Live++
	if acct != nil {
		acct.used += int64(size)
		acct.allocs++
		sb.charged[idx] = int64(size)
	}
	if sb.freeHead < 0 {
		h.dropPartial(sb)
	}
	return b, nil
}

// tkey packs a tenant id and size class into one tpartial map key.
func tkey(tid uint32, ci int) uint64 { return uint64(tid)<<8 | uint64(ci) }

// acct returns (creating on first use) the byte account for a nonzero
// tenant. A fresh account has no quota: accounting without limits.
func (h *Heap) acct(tid uint32) *tenantAcct {
	if h.tenants == nil {
		h.tenants = make(map[uint32]*tenantAcct)
		h.tpartial = make(map[uint64][]*superblock)
	}
	a := h.tenants[tid]
	if a == nil {
		a = &tenantAcct{}
		h.tenants[tid] = a
	}
	return a
}

// newSuperblock carves a fresh arena of count objects of the given size.
func (h *Heap) newSuperblock(objSize, count int) *superblock {
	sb := &superblock{
		heap:     h,
		class:    objSize,
		arena:    make([]byte, objSize*count),
		bufs:     make([]Buf, count),
		nextFree: make([]int, count),
		charged:  make([]int64, count),
		ioExtra:  make(map[int]int),
	}
	for i := range sb.bufs {
		sb.bufs[i] = Buf{sb: sb, idx: i}
		sb.nextFree[i] = i + 1
	}
	sb.nextFree[count-1] = -1
	sb.freeHead = 0
	h.stats.Superblocks++
	return sb
}

// dropPartial removes a now-full superblock from its class's partial list.
func (h *Heap) dropPartial(sb *superblock) {
	ci := classFor(sb.class)
	if ci < 0 || sizeClasses[ci] != sb.class {
		return // huge superblocks are never on partial lists
	}
	list := h.partial[ci]
	if sb.tenant != 0 {
		list = h.tpartial[tkey(sb.tenant, ci)]
	}
	for i, s := range list {
		if s == sb {
			list[i] = list[len(list)-1]
			if sb.tenant != 0 {
				h.tpartial[tkey(sb.tenant, ci)] = list[:len(list)-1]
			} else {
				h.partial[ci] = list[:len(list)-1]
			}
			return
		}
	}
}

// recycle returns a fully released slot to the free list, crediting the
// owning tenant's byte account. The credit goes to the superblock's tenant
// regardless of who dropped the last reference: under zero-copy handoff
// (catmem) the consumer's free shrinks the *producer's* footprint, which
// is whose quota the bytes were debited from.
func (sb *superblock) recycle(idx int) {
	wasFull := sb.freeHead < 0
	sb.nextFree[idx] = sb.freeHead
	sb.freeHead = idx
	sb.heap.stats.Live--
	sb.heap.stats.Frees++
	if sb.tenant != 0 {
		if a := sb.heap.tenants[sb.tenant]; a != nil {
			a.used -= sb.charged[idx]
			a.frees++
		}
		sb.charged[idx] = 0
	}
	if wasFull {
		if ci := classFor(sb.class); ci >= 0 && sizeClasses[ci] == sb.class {
			if sb.tenant != 0 {
				key := tkey(sb.tenant, ci)
				sb.heap.tpartial[key] = append(sb.heap.tpartial[key], sb)
			} else {
				sb.heap.partial[ci] = append(sb.heap.partial[ci], sb)
			}
		}
	}
}

// ensureRegistered lazily registers the arena with the device and caches
// the key in the superblock header (Catmint's get_rkey fast path).
func (sb *superblock) ensureRegistered() uint32 {
	if !sb.registered {
		sb.registered = true
		sb.heap.stats.Registrations++
		if sb.heap.register != nil {
			sb.rkey = sb.heap.register(sb.arena)
		} else {
			sb.heap.rkeySeq++
			sb.rkey = sb.heap.rkeySeq
		}
	}
	return sb.rkey
}

// LiveObjects returns the number of objects currently allocated (owned by
// the app, the libOS, or both). Exposed for tests and leak checks.
func (h *Heap) LiveObjects() int { return h.stats.Live }

// refCount is a test/debug helper describing a slot's reference state.
func (sb *superblock) refString(idx int) string {
	bit := uint64(1) << uint(idx)
	return fmt.Sprintf("app=%v io=%v extra=%d",
		sb.appRef&bit != 0, sb.ioRef&bit != 0, sb.ioExtra[idx])
}

// popcountLive is used by invariant checks: the number of set app bits.
func (sb *superblock) popcountLive() int { return bits.OnesCount64(sb.appRef | sb.ioRef) }
