// Package memory implements Demikernel's kernel-bypass-aware memory
// allocator (paper §5.3): a Hoard-style pool allocator whose superblocks
// carry the metadata zero-copy I/O needs. Each superblock holds fixed-size
// objects backed by one contiguous DMA-capable arena; its header records
// the device registration (rkey) obtained lazily on first I/O and a
// reference-count bitmap granting use-after-free (UAF) protection: an
// object is recycled only after both the application and the library OS
// have released it.
//
// The paper limits refcounting and DMA registration to objects of at least
// 1 KiB, since zero-copy only pays off above that size; ZeroCopyThreshold
// exposes the same policy to the library OSes.
package memory

import (
	"errors"
	"fmt"
	"math/bits"

	"demikernel/internal/telemetry"
)

// ErrNoMem is returned by TryAlloc when the heap cannot satisfy the request
// (today only via an injected pool-exhaustion fault; a real mempool returns
// it when the DMA arena is full).
var ErrNoMem = errors.New("memory: out of buffers")

// ZeroCopyThreshold is the smallest buffer size worth transmitting
// zero-copy (paper §5.3); smaller buffers are copied by the I/O stacks.
const ZeroCopyThreshold = 1024

// objectsPerSuperblock is the number of fixed-size slots per superblock.
// 64 keeps the refcount bitmaps to one word per holder class.
const objectsPerSuperblock = 64

// RegisterFunc registers a superblock arena with a kernel-bypass device and
// returns the device's access key (an RDMA rkey, a DPDK mempool cookie...).
// It is called at most once per superblock, on first I/O touch, mirroring
// Catmint's get_rkey.
type RegisterFunc func(arena []byte) uint32

// sizeClasses are the superblock object sizes, ascending. Requests above
// the largest class get a dedicated single-object superblock.
var sizeClasses = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144, 1 << 20}

// classFor returns the index of the smallest class that fits size, or -1
// for huge allocations.
func classFor(size int) int {
	for i, c := range sizeClasses {
		if size <= c {
			return i
		}
	}
	return -1
}

// Stats counts allocator activity.
type Stats struct {
	Allocs, Frees  uint64
	Live           int
	Superblocks    int
	Registrations  uint64
	UAFDeferred    uint64 // frees deferred because the libOS still held a reference
	HugeAllocs     uint64
	BytesRequested uint64
	AllocFailures  uint64 // TryAlloc calls denied by the exhaustion hook
}

// A superblock is one pool of fixed-size objects in a contiguous arena.
type superblock struct {
	heap     *Heap
	class    int // object size in bytes
	arena    []byte
	bufs     []Buf
	freeHead int // LIFO free list threaded through nextFree
	nextFree []int

	// appRef and ioRef are the per-object reference bitmaps (paper §5.3):
	// one bit for the application's reference, one for the library OS's.
	// Additional concurrent libOS references (e.g. a buffer in flight on
	// two queues) spill into ioExtra, the paper's "reference table".
	appRef  uint64
	ioRef   uint64
	ioExtra map[int]int

	registered bool
	rkey       uint32
}

// Heap is a DMA-capable application heap. It is not safe for concurrent
// use: Demikernel datapaths are single-threaded per core by design.
type Heap struct {
	// register is the device hook for DMA registration; nil means the
	// device needs none (e.g. Catnap's kernel path).
	register RegisterFunc
	partial  [][]*superblock // per class: superblocks with free slots
	stats    Stats
	rkeySeq  uint32

	// allocFault, when set, is consulted by TryAlloc; returning true makes
	// the allocation fail with ErrNoMem. It is a plain callback (not a
	// faults.Site) so this package stays importable from everywhere.
	allocFault func(size int) bool
}

// NewHeap returns an empty heap. register may be nil.
func NewHeap(register RegisterFunc) *Heap {
	return &Heap{
		register: register,
		partial:  make([][]*superblock, len(sizeClasses)),
	}
}

// SetRegisterFunc installs the device registration hook. Superblocks
// already registered keep their keys; new ones use the new hook. Installing
// a hook is how a libOS adopts an existing application heap.
func (h *Heap) SetRegisterFunc(f RegisterFunc) { h.register = f }

// Stats returns a snapshot of allocator counters.
func (h *Heap) Stats() Stats { return h.stats }

// PublishTelemetry registers the heap's counters with reg as sampled gauges
// under prefix (e.g. "mem"). Sampling is pull-model: the stats struct stays
// the hot-path truth and the registry reads it only at snapshot time, so
// the allocator's fast path is untouched.
func (h *Heap) PublishTelemetry(reg *telemetry.Registry, prefix string) {
	reg.Sample(prefix+".allocs", func() int64 { return int64(h.stats.Allocs) })
	reg.Sample(prefix+".frees", func() int64 { return int64(h.stats.Frees) })
	reg.Sample(prefix+".refcount_releases", func() int64 { return int64(h.stats.Frees + h.stats.UAFDeferred) })
	reg.Sample(prefix+".live", func() int64 { return int64(h.stats.Live) })
	reg.Sample(prefix+".superblocks", func() int64 { return int64(h.stats.Superblocks) })
	reg.Sample(prefix+".registrations", func() int64 { return int64(h.stats.Registrations) })
	reg.Sample(prefix+".uaf_deferred", func() int64 { return int64(h.stats.UAFDeferred) })
	reg.Sample(prefix+".huge_allocs", func() int64 { return int64(h.stats.HugeAllocs) })
	reg.Sample(prefix+".alloc_failures", func() int64 { return int64(h.stats.AllocFailures) })
	reg.Sample(prefix+".bytes_requested", func() int64 { return int64(h.stats.BytesRequested) })
	reg.Sample(prefix+".superblock_occupancy_pct", func() int64 {
		slots := int64(h.stats.Superblocks) * objectsPerSuperblock
		if slots == 0 {
			return 0
		}
		return int64(h.stats.Live) * 100 / slots
	})
}

// SetAllocFault installs (or clears, with nil) the pool-exhaustion hook
// consulted by TryAlloc. The chaos harness points it at a faults site.
func (h *Heap) SetAllocFault(f func(size int) bool) { h.allocFault = f }

// Alloc returns a buffer of exactly size bytes from the DMA-capable heap,
// with the application holding its reference. It panics if the heap is
// exhausted — callers that can degrade use TryAlloc instead; callers that
// cannot (fixed pre-sized pools, test fixtures) keep the invariant panic.
func (h *Heap) Alloc(size int) *Buf {
	b, err := h.TryAlloc(size)
	if err != nil {
		panic("memory: Alloc: " + err.Error())
	}
	return b
}

// TryAlloc is Alloc with pool exhaustion reported as ErrNoMem instead of a
// panic, so datapaths can drop-with-counter rather than die. The backing
// slot is from a size-class superblock (or a dedicated one for huge sizes).
func (h *Heap) TryAlloc(size int) (*Buf, error) {
	if size <= 0 {
		panic("memory: Alloc with non-positive size")
	}
	if h.allocFault != nil && h.allocFault(size) {
		h.stats.AllocFailures++
		return nil, ErrNoMem
	}
	h.stats.Allocs++
	h.stats.BytesRequested += uint64(size)
	ci := classFor(size)
	var sb *superblock
	if ci < 0 {
		sb = h.newSuperblock(size, 1)
		h.stats.HugeAllocs++
	} else {
		list := h.partial[ci]
		if len(list) == 0 {
			h.partial[ci] = append(h.partial[ci], h.newSuperblock(sizeClasses[ci], objectsPerSuperblock))
			list = h.partial[ci]
		}
		sb = list[len(list)-1]
	}
	idx := sb.freeHead
	if idx < 0 {
		panic("memory: superblock on partial list has no free slot")
	}
	sb.freeHead = sb.nextFree[idx]
	sb.appRef |= 1 << uint(idx)
	b := &sb.bufs[idx]
	b.data = sb.arena[idx*sb.class : idx*sb.class+size]
	b.trace = 0 // slots are recycled; a stale trace tag must not leak across owners
	h.stats.Live++
	if sb.freeHead < 0 {
		h.dropPartial(sb)
	}
	return b, nil
}

// newSuperblock carves a fresh arena of count objects of the given size.
func (h *Heap) newSuperblock(objSize, count int) *superblock {
	sb := &superblock{
		heap:     h,
		class:    objSize,
		arena:    make([]byte, objSize*count),
		bufs:     make([]Buf, count),
		nextFree: make([]int, count),
		ioExtra:  make(map[int]int),
	}
	for i := range sb.bufs {
		sb.bufs[i] = Buf{sb: sb, idx: i}
		sb.nextFree[i] = i + 1
	}
	sb.nextFree[count-1] = -1
	sb.freeHead = 0
	h.stats.Superblocks++
	return sb
}

// dropPartial removes a now-full superblock from its class's partial list.
func (h *Heap) dropPartial(sb *superblock) {
	ci := classFor(sb.class)
	if ci < 0 || sizeClasses[ci] != sb.class {
		return // huge superblocks are never on partial lists
	}
	list := h.partial[ci]
	for i, s := range list {
		if s == sb {
			list[i] = list[len(list)-1]
			h.partial[ci] = list[:len(list)-1]
			return
		}
	}
}

// recycle returns a fully released slot to the free list.
func (sb *superblock) recycle(idx int) {
	wasFull := sb.freeHead < 0
	sb.nextFree[idx] = sb.freeHead
	sb.freeHead = idx
	sb.heap.stats.Live--
	sb.heap.stats.Frees++
	if wasFull {
		if ci := classFor(sb.class); ci >= 0 && sizeClasses[ci] == sb.class {
			sb.heap.partial[ci] = append(sb.heap.partial[ci], sb)
		}
	}
}

// ensureRegistered lazily registers the arena with the device and caches
// the key in the superblock header (Catmint's get_rkey fast path).
func (sb *superblock) ensureRegistered() uint32 {
	if !sb.registered {
		sb.registered = true
		sb.heap.stats.Registrations++
		if sb.heap.register != nil {
			sb.rkey = sb.heap.register(sb.arena)
		} else {
			sb.heap.rkeySeq++
			sb.rkey = sb.heap.rkeySeq
		}
	}
	return sb.rkey
}

// LiveObjects returns the number of objects currently allocated (owned by
// the app, the libOS, or both). Exposed for tests and leak checks.
func (h *Heap) LiveObjects() int { return h.stats.Live }

// refCount is a test/debug helper describing a slot's reference state.
func (sb *superblock) refString(idx int) string {
	bit := uint64(1) << uint(idx)
	return fmt.Sprintf("app=%v io=%v extra=%d",
		sb.appRef&bit != 0, sb.ioRef&bit != 0, sb.ioExtra[idx])
}

// popcountLive is used by invariant checks: the number of set app bits.
func (sb *superblock) popcountLive() int { return bits.OnesCount64(sb.appRef | sb.ioRef) }
