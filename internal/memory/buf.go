package memory

// A Buf is one zero-copy I/O buffer: a fixed slot in a DMA-capable
// superblock. Ownership follows PDPIX semantics: the application owns a Buf
// it allocated or received from pop/wait; push transfers it to the library
// OS until the operation's qtoken completes. Free drops the application's
// reference; IORef/IOUnref manage the library OS's references. The slot is
// recycled only when every reference is gone — that is the allocator's
// use-after-free protection.
type Buf struct {
	sb   *superblock
	idx  int
	data []byte
	// trace is the distributed-trace context riding with the buffer: catmem
	// hands it to the popper with the zero-copy ownership transfer, the
	// network stacks echo it through a wire trailer. Zero means untraced.
	// It is a plain uint64 (not a dtrace type) so memory stays importable
	// from everywhere.
	trace uint64
}

// SetTraceCtx tags the buffer with a distributed-trace context (0 clears).
//
//demi:nonalloc
func (b *Buf) SetTraceCtx(ctx uint64) { b.trace = ctx }

// TraceCtx returns the buffer's distributed-trace context, 0 if untraced.
//
//demi:nonalloc
func (b *Buf) TraceCtx() uint64 { return b.trace }

// Bytes returns the buffer's contents. The application must not modify a
// buffer while it is pushed (UAF protection does not include
// write-protection; paper §4.2).
func (b *Buf) Bytes() []byte { return b.data }

// Len returns the buffer's length in bytes.
func (b *Buf) Len() int { return len(b.data) }

// ZeroCopyEligible reports whether the buffer is large enough that the I/O
// stacks transmit it without copying (paper §5.3: >= 1 KiB).
func (b *Buf) ZeroCopyEligible() bool { return len(b.data) >= ZeroCopyThreshold }

// Rkey returns the device access key for the buffer's superblock,
// registering the arena on first use.
func (b *Buf) Rkey() uint32 { return b.sb.ensureRegistered() }

// bit returns this slot's bitmap mask.
func (b *Buf) bit() uint64 { return 1 << uint(b.idx) }

// AppOwned reports whether the application currently holds its reference.
func (b *Buf) AppOwned() bool { return b.sb.appRef&b.bit() != 0 }

// IOOwned reports whether the library OS holds at least one reference.
func (b *Buf) IOOwned() bool { return b.sb.ioRef&b.bit() != 0 }

// Free drops the application's reference. If the library OS still holds a
// reference (e.g. a TCP segment awaiting acknowledgment), the slot stays
// allocated until IOUnref releases it — freeing is safe at any time after
// push, which is the paper's headline simplification for zero-copy apps.
// Free panics on a double free, since that is a program bug UAF protection
// is designed to surface.
func (b *Buf) Free() {
	if !b.AppOwned() {
		panic("memory: double free of application reference (slot " + b.sb.refString(b.idx) + ")")
	}
	b.sb.appRef &^= b.bit()
	if b.IOOwned() {
		b.sb.heap.stats.UAFDeferred++
		return
	}
	b.sb.recycle(b.idx)
}

// TryFree is Free with the double-free invariant reported as ErrDoubleFree
// instead of a panic. Trusted datapaths keep Free — a double free there is
// a bug worth crashing on; tenant-facing paths use TryFree so a hostile
// application's abuse is contained to an error it receives itself.
func (b *Buf) TryFree() error {
	if !b.AppOwned() {
		return ErrDoubleFree
	}
	b.Free()
	return nil
}

// Tenant returns the id of the tenant region the buffer was allocated
// from (0 = the host tenant).
func (b *Buf) Tenant() uint32 { return b.sb.tenant }

// IORef takes a library-OS reference on the buffer. The first reference
// sets the bitmap bit; further concurrent references spill to the
// superblock's reference table.
func (b *Buf) IORef() {
	if b.IOOwned() {
		b.sb.ioExtra[b.idx]++
		return
	}
	b.sb.ioRef |= b.bit()
}

// IOUnref drops one library-OS reference, recycling the slot if the
// application has also freed it.
func (b *Buf) IOUnref() {
	if !b.IOOwned() {
		panic("memory: IOUnref without reference (slot " + b.sb.refString(b.idx) + ")")
	}
	if n := b.sb.ioExtra[b.idx]; n > 0 {
		if n == 1 {
			delete(b.sb.ioExtra, b.idx)
		} else {
			b.sb.ioExtra[b.idx] = n - 1
		}
		return
	}
	b.sb.ioRef &^= b.bit()
	if !b.AppOwned() {
		b.sb.recycle(b.idx)
	}
}

// CopyFrom allocates a buffer on h holding a copy of p. It is the bridge
// from non-DMA memory (PDPIX requires all I/O be from the DMA heap).
//
//demi:budget=2100ns static estimate 1.41us; the zero-copy bridge is on every app send
func CopyFrom(h *Heap, p []byte) *Buf {
	b, err := TryCopyFrom(h, p)
	if err != nil {
		panic("memory: CopyFrom: " + err.Error())
	}
	return b
}

// TryCopyFrom is CopyFrom with pool exhaustion reported as ErrNoMem, so RX
// paths can drop a frame (TCP retransmit or the application retry recovers
// it) instead of dying with the heap.
func TryCopyFrom(h *Heap, p []byte) (*Buf, error) {
	size := len(p)
	if size == 0 {
		size = 1
	}
	b, err := h.TryAlloc(size)
	if err != nil {
		return nil, err
	}
	b.data = b.data[:len(p)]
	copy(b.data, p)
	return b, nil
}
