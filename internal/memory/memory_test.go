package memory

import (
	"testing"
	"testing/quick"

	"demikernel/internal/sim"
)

func TestAllocReturnsDistinctWritableBuffers(t *testing.T) {
	h := NewHeap(nil)
	var bufs []*Buf
	for i := 0; i < 100; i++ {
		b := h.Alloc(64)
		b.Bytes()[0] = byte(i)
		bufs = append(bufs, b)
	}
	for i, b := range bufs {
		if b.Bytes()[0] != byte(i) {
			t.Fatalf("buffer %d stomped: got %d", i, b.Bytes()[0])
		}
	}
	if h.LiveObjects() != 100 {
		t.Errorf("live = %d, want 100", h.LiveObjects())
	}
}

func TestFreeRecyclesSlot(t *testing.T) {
	h := NewHeap(nil)
	a := h.Alloc(128)
	a.Free()
	b := h.Alloc(128)
	if &a.Bytes()[0] != &b.Bytes()[0] {
		t.Error("freed slot not recycled LIFO")
	}
	if h.LiveObjects() != 1 {
		t.Errorf("live = %d, want 1", h.LiveObjects())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	h := NewHeap(nil)
	b := h.Alloc(64)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	b.Free()
}

func TestUAFProtectionDefersRecycle(t *testing.T) {
	h := NewHeap(nil)
	b := h.Alloc(2048)
	b.IORef() // libOS takes the buffer for I/O (e.g. TCP retransmit queue)
	b.Free()  // app frees immediately after push: legal under PDPIX
	if h.LiveObjects() != 1 {
		t.Fatal("slot recycled while libOS reference held")
	}
	// The slot must not be handed out again yet.
	c := h.Alloc(2048)
	if &c.Bytes()[0] == &b.Bytes()[0] {
		t.Fatal("UAF: in-flight buffer reallocated")
	}
	b.IOUnref() // ack arrived
	if h.LiveObjects() != 1 {
		t.Errorf("live = %d, want 1 after full release", h.LiveObjects())
	}
	if h.Stats().UAFDeferred != 1 {
		t.Errorf("UAFDeferred = %d, want 1", h.Stats().UAFDeferred)
	}
}

func TestMultipleIORefsUseReferenceTable(t *testing.T) {
	h := NewHeap(nil)
	b := h.Alloc(4096)
	b.IORef()
	b.IORef() // e.g. pushed to two queues
	b.IORef()
	b.Free()
	b.IOUnref()
	b.IOUnref()
	if h.LiveObjects() != 1 {
		t.Fatal("slot recycled with outstanding extra reference")
	}
	b.IOUnref()
	if h.LiveObjects() != 0 {
		t.Errorf("live = %d, want 0", h.LiveObjects())
	}
}

func TestIOUnrefWithoutRefPanics(t *testing.T) {
	h := NewHeap(nil)
	b := h.Alloc(64)
	defer func() {
		if recover() == nil {
			t.Error("IOUnref without IORef did not panic")
		}
	}()
	b.IOUnref()
}

func TestLazyRegistration(t *testing.T) {
	var registered [][]byte
	h := NewHeap(func(arena []byte) uint32 {
		registered = append(registered, arena)
		return uint32(100 + len(registered))
	})
	a := h.Alloc(2048)
	b := h.Alloc(2048) // same superblock
	if len(registered) != 0 {
		t.Fatal("registration before first I/O touch")
	}
	k1 := a.Rkey()
	k2 := b.Rkey()
	if len(registered) != 1 {
		t.Fatalf("registered %d arenas, want 1 (shared superblock)", len(registered))
	}
	if k1 != 101 || k2 != 101 {
		t.Errorf("rkeys = %d, %d, want both 101", k1, k2)
	}
	c := h.Alloc(64) // different class: new superblock
	if c.Rkey() != 102 {
		t.Errorf("second superblock rkey = %d, want 102", c.Rkey())
	}
}

func TestHugeAllocation(t *testing.T) {
	h := NewHeap(nil)
	b := h.Alloc(1 << 20)
	if b.Len() != 1<<20 {
		t.Fatalf("len = %d", b.Len())
	}
	if !b.ZeroCopyEligible() {
		t.Error("1 MiB buffer not zero-copy eligible")
	}
	b.Free()
	if h.LiveObjects() != 0 {
		t.Error("huge object leaked a live count")
	}
}

func TestZeroCopyThreshold(t *testing.T) {
	h := NewHeap(nil)
	small := h.Alloc(512)
	big := h.Alloc(1024)
	if small.ZeroCopyEligible() {
		t.Error("512 B buffer should be copied, not zero-copy")
	}
	if !big.ZeroCopyEligible() {
		t.Error("1 KiB buffer should be zero-copy")
	}
}

func TestCopyFrom(t *testing.T) {
	h := NewHeap(nil)
	b := CopyFrom(h, []byte("hello"))
	if string(b.Bytes()) != "hello" {
		t.Errorf("contents = %q", b.Bytes())
	}
	empty := CopyFrom(h, nil)
	if empty.Len() != 0 {
		t.Errorf("empty copy has len %d", empty.Len())
	}
}

func TestSuperblockExhaustionGrowsHeap(t *testing.T) {
	h := NewHeap(nil)
	var bufs []*Buf
	for i := 0; i < objectsPerSuperblock*3+1; i++ {
		bufs = append(bufs, h.Alloc(256))
	}
	if got := h.Stats().Superblocks; got != 4 {
		t.Errorf("superblocks = %d, want 4", got)
	}
	for _, b := range bufs {
		b.Free()
	}
	if h.LiveObjects() != 0 {
		t.Errorf("live = %d after freeing all", h.LiveObjects())
	}
	// Everything must be allocatable again without new superblocks.
	before := h.Stats().Superblocks
	for i := 0; i < objectsPerSuperblock*3; i++ {
		h.Alloc(256)
	}
	if h.Stats().Superblocks != before {
		t.Error("recycled slots not reused")
	}
}

// Property: under any interleaving of alloc, app-free, io-ref and io-unref,
// no slot is ever handed out while still referenced, and live counts stay
// consistent.
func TestAllocatorInvariantProperty(t *testing.T) {
	f := func(seed uint64, steps uint16) bool {
		rng := sim.NewRand(seed)
		h := NewHeap(nil)
		type tracked struct {
			b      *Buf
			first  byte
			appRef bool
			ioRefs int
		}
		var live []*tracked
		for i := 0; i < int(steps)%400+50; i++ {
			switch rng.Intn(4) {
			case 0: // alloc
				size := []int{64, 512, 1024, 4096}[rng.Intn(4)]
				b := h.Alloc(size)
				tag := byte(rng.Intn(256))
				b.Bytes()[0] = tag
				live = append(live, &tracked{b: b, first: tag, appRef: true})
			case 1: // app free
				if len(live) == 0 {
					continue
				}
				tr := live[rng.Intn(len(live))]
				if tr.appRef {
					tr.appRef = false
					tr.b.Free()
				}
			case 2: // io ref
				if len(live) == 0 {
					continue
				}
				tr := live[rng.Intn(len(live))]
				if tr.appRef || tr.ioRefs > 0 { // can only ref while owned
					tr.ioRefs++
					tr.b.IORef()
				}
			case 3: // io unref
				if len(live) == 0 {
					continue
				}
				tr := live[rng.Intn(len(live))]
				if tr.ioRefs > 0 {
					tr.ioRefs--
					tr.b.IOUnref()
				}
			}
			// Check no referenced buffer was stomped by a later alloc.
			want := 0
			for j := 0; j < len(live); j++ {
				tr := live[j]
				if !tr.appRef && tr.ioRefs == 0 {
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					j--
					continue
				}
				want++
				if tr.b.Bytes()[0] != tr.first {
					return false // slot reused while referenced
				}
			}
			if h.LiveObjects() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// BenchmarkAllocator measures alloc/free throughput with the refcount
// discipline the datapath uses (µ3 in DESIGN.md's experiment index).
func BenchmarkAllocator(b *testing.B) {
	h := NewHeap(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := h.Alloc(2048)
		buf.IORef()
		buf.Free()
		buf.IOUnref()
	}
}

// BenchmarkAllocatorSmall measures the sub-threshold (copied) class.
func BenchmarkAllocatorSmall(b *testing.B) {
	h := NewHeap(nil)
	for i := 0; i < b.N; i++ {
		h.Alloc(64).Free()
	}
}
