package memory

// Per-tenant heap regions (ROADMAP "per-tenant DMA heaps"): the heap is
// partitioned into tenant-scoped superblocks with byte quotas, and tenants
// reach their region only through a TenantHeap capability. The host tenant
// (id 0) is the trusted infrastructure principal — unaccounted, unlimited —
// so single-tenant datapaths pay nothing for the machinery.

// tenantAcct is one tenant's byte account.
type tenantAcct struct {
	quota   int64 // bytes; <= 0 means unlimited
	used    int64 // live bytes charged to the tenant
	allocs  uint64
	frees   uint64
	rejects uint64 // allocations denied by the quota
}

// TenantStats is a snapshot of one tenant's heap account.
type TenantStats struct {
	Quota   int64
	Used    int64
	Allocs  uint64
	Frees   uint64
	Rejects uint64
}

// SetTenantQuota caps tenant tid's live bytes (<= 0 removes the cap).
// Lowering the quota below current usage denies new allocations until
// frees bring usage back under it — live buffers are never revoked.
func (h *Heap) SetTenantQuota(tid uint32, bytes int64) {
	if tid == 0 {
		panic("memory: host tenant 0 cannot be quota-limited")
	}
	h.acct(tid).quota = bytes
}

// TenantStats returns a snapshot of tenant tid's account.
func (h *Heap) TenantStats(tid uint32) TenantStats {
	if h.tenants == nil {
		return TenantStats{}
	}
	a := h.tenants[tid]
	if a == nil {
		return TenantStats{}
	}
	return TenantStats{Quota: a.quota, Used: a.used, Allocs: a.allocs, Frees: a.frees, Rejects: a.rejects}
}

// Tenant returns the capability handle for tenant tid's region of the
// heap. Handles are cheap and interchangeable: all handles for one id
// reach the same account.
func (h *Heap) Tenant(tid uint32) *TenantHeap {
	if tid == 0 {
		panic("memory: the host tenant needs no TenantHeap — use the Heap directly")
	}
	h.acct(tid) // ensure the account exists
	return &TenantHeap{h: h, id: tid}
}

// TenantHeap is one tenant's view of a shared heap. Allocations are
// charged to (and placed in) the tenant's region; frees go through TryFree
// so a hostile tenant's double free or foreign free is an error, never a
// panic, and never touches another tenant's buffers.
type TenantHeap struct {
	h  *Heap
	id uint32
}

// ID returns the owning tenant's id.
func (th *TenantHeap) ID() uint32 { return th.id }

// TryAlloc allocates size bytes from the tenant's region, or ErrNoMem if
// the byte quota is exhausted.
func (th *TenantHeap) TryAlloc(size int) (*Buf, error) {
	return th.h.TryAllocTenant(th.id, size)
}

// Alloc is TryAlloc with exhaustion as a panic, for trusted fixtures.
func (th *TenantHeap) Alloc(size int) *Buf {
	b, err := th.TryAlloc(size)
	if err != nil {
		panic("memory: TenantHeap.Alloc: " + err.Error())
	}
	return b
}

// TryCopyFrom allocates a tenant-charged buffer holding a copy of p.
func (th *TenantHeap) TryCopyFrom(p []byte) (*Buf, error) {
	size := len(p)
	if size == 0 {
		size = 1
	}
	b, err := th.TryAlloc(size)
	if err != nil {
		return nil, err
	}
	b.data = b.data[:len(p)]
	copy(b.data, p)
	return b, nil
}

// CopyFrom is TryCopyFrom with exhaustion as a panic.
func (th *TenantHeap) CopyFrom(p []byte) *Buf {
	b, err := th.TryCopyFrom(p)
	if err != nil {
		panic("memory: TenantHeap.CopyFrom: " + err.Error())
	}
	return b
}

// Owns reports whether b was allocated from this tenant's region.
func (th *TenantHeap) Owns(b *Buf) bool { return b != nil && b.sb.tenant == th.id }

// TryFree drops the application reference through the tenant capability:
// ErrForeignBuf if the buffer belongs to another tenant's region (the
// buffer is untouched — freeing is a right that comes with the region),
// ErrDoubleFree if the reference is already gone.
func (th *TenantHeap) TryFree(b *Buf) error {
	if !th.Owns(b) {
		return ErrForeignBuf
	}
	return b.TryFree()
}

// Used returns the tenant's live charged bytes.
func (th *TenantHeap) Used() int64 { return th.h.TenantStats(th.id).Used }

// Quota returns the tenant's byte cap (<= 0 means unlimited).
func (th *TenantHeap) Quota() int64 { return th.h.TenantStats(th.id).Quota }

// Stats returns a snapshot of the tenant's account.
func (th *TenantHeap) Stats() TenantStats { return th.h.TenantStats(th.id) }
