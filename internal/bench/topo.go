package bench

import (
	"time"

	"demikernel/internal/baseline"
	"demikernel/internal/catmint"
	"demikernel/internal/catnip"
	"demikernel/internal/cattree"
	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/rdmadev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/spdkdev"
	"demikernel/internal/wire"
)

// Link profiles calibrated from the paper's own "native" floors (Figure 5):
// raw RDMA perftest RTT ≈ 3.4 µs and raw DPDK testpmd RTT ≈ 4.8 µs imply
// per-hop (NIC + PCIe + cable) latencies of ≈0.62 µs and ≈1.0 µs around a
// 450 ns switch. See EXPERIMENTS.md for the derivation.

// LinkDPDK is the CX-5 Ethernet path as seen by DPDK.
func LinkDPDK() simnet.LinkParams {
	return simnet.LinkParams{Latency: 1000 * time.Nanosecond, BandwidthBps: 100e9}
}

// LinkRDMA is the CX-5 path as seen by the RDMA engine (shallower on-NIC
// processing).
func LinkRDMA() simnet.LinkParams {
	return simnet.LinkParams{Latency: 620 * time.Nanosecond, BandwidthBps: 100e9}
}

// LinkIB56 is the Windows cluster's CX-4 56 Gbps InfiniBand (Figure 6a).
func LinkIB56() simnet.LinkParams {
	return simnet.LinkParams{Latency: 700 * time.Nanosecond, BandwidthBps: 56e9}
}

// SwitchEth is the Arista 7060CX (450 ns); SwitchIB the Mellanox SX6036
// (200 ns).
func SwitchEth() simnet.SwitchParams { return simnet.SwitchParams{Latency: 450 * time.Nanosecond} }
func SwitchIB() simnet.SwitchParams  { return simnet.SwitchParams{Latency: 200 * time.Nanosecond} }

// Testbed is one simulated cluster.
type Testbed struct {
	Eng  *sim.Engine
	Sw   *simnet.Switch
	Reg  *rdmadev.Registry
	Book *catmint.AddrBook

	// Ports and NICs collect every attached device in creation order so
	// experiments (chaos in particular) can reach under the stacks to
	// inject faults.
	Ports []*dpdkdev.Port
	NICs  []*rdmadev.NIC

	endpoints []endpoint
	catnips   []*catnip.LibOS
}

type endpoint struct {
	ip  wire.IPAddr
	mac simnet.MAC
}

// NewTestbed builds a cluster with the given switch profile.
func NewTestbed(seed uint64, sw simnet.SwitchParams) *Testbed {
	eng := sim.NewEngine(seed)
	s := simnet.NewSwitch(eng, sw)
	return &Testbed{
		Eng:  eng,
		Sw:   s,
		Reg:  rdmadev.NewRegistry(s),
		Book: catmint.NewAddrBook(),
	}
}

// Stack is one host's libOS under test. Port, NIC and Disk expose the
// stack's devices when it has them (nil otherwise) — fault-injection
// handles for the chaos experiments.
type Stack struct {
	OS   demi.LibOS
	Node *sim.Node
	IP   wire.IPAddr
	Port *dpdkdev.Port
	NIC  *rdmadev.NIC
	Disk *spdkdev.Device
}

// System describes one comparand: how to build its stack on a node.
type System struct {
	Name  string
	Dgram bool // echo over UDP instead of TCP
	// Storage requests a storage log device on every stack.
	Storage bool
	Build   func(tb *Testbed, node *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS
}

// NewStack builds a host running sys.
func (tb *Testbed) NewStack(sys System, name string, ip wire.IPAddr) *Stack {
	node := tb.Eng.NewNode(name)
	var stor demi.StorOS
	var disk *spdkdev.Device
	if sys.Storage {
		disk = spdkdev.New(node, spdkdev.OptaneParams(), 1<<20)
		stor = cattree.New(node, disk)
	}
	nPorts, nNICs := len(tb.Ports), len(tb.NICs)
	os := sys.Build(tb, node, ip, stor)
	st := &Stack{OS: os, Node: node, IP: ip, Disk: disk}
	if len(tb.Ports) > nPorts {
		st.Port = tb.Ports[len(tb.Ports)-1]
	}
	if len(tb.NICs) > nNICs {
		st.NIC = tb.NICs[len(tb.NICs)-1]
	}
	return st
}

// trackCatnip registers a Catnip instance (possibly nested) for ARP
// seeding and remembers the endpoint.
func (tb *Testbed) trackCatnip(l *catnip.LibOS, ip wire.IPAddr, mac simnet.MAC) {
	tb.catnips = append(tb.catnips, l)
	tb.endpoints = append(tb.endpoints, endpoint{ip: ip, mac: mac})
}

// SeedARP warms every Catnip ARP cache with every endpoint, the benchmark
// steady state (the paper measures warm fast paths).
func (tb *Testbed) SeedARP() {
	for _, l := range tb.catnips {
		for _, ep := range tb.endpoints {
			l.SeedARP(ep.ip, ep.mac)
		}
	}
}

// newDPDK attaches a DPDK port.
func (tb *Testbed) newDPDK(node *sim.Node, link simnet.LinkParams) *dpdkdev.Port {
	p := dpdkdev.Attach(tb.Sw, node, link, 1<<16, 0)
	tb.Ports = append(tb.Ports, p)
	return p
}

// newRDMA attaches an RDMA NIC.
func (tb *Testbed) newRDMA(node *sim.Node, link simnet.LinkParams) *rdmadev.NIC {
	n := tb.Reg.NewNIC(node, link, 0)
	tb.NICs = append(tb.NICs, n)
	return n
}

// combine wraps net (+ optional storage) into one LibOS.
func combine(net demi.NetOS, stor demi.StorOS) demi.LibOS {
	if stor == nil {
		return net
	}
	return demi.NewCombined(net, stor)
}

// --- System catalogue (Figure 5's bars and friends) ---

// SysLinux is the POSIX/epoll kernel path.
func SysLinux(env baseline.Env) System {
	return System{Name: "Linux", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		port := tb.newDPDK(n, LinkDPDK())
		if stor != nil {
			k := baseline.NewLinuxWithStorage(n, port, ip, env, stor)
			tb.trackCatnip(k.Inner().(*demi.Combined).Net.(*catnip.LibOS), ip, port.MAC())
			return k
		}
		k := baseline.NewLinux(n, port, ip, env)
		tb.trackCatnip(k.Inner().(*catnip.LibOS), ip, port.MAC())
		return k
	}}
}

// SysIOUring is the io_uring kernel path.
func SysIOUring() System {
	return System{Name: "io_uring", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		port := tb.newDPDK(n, LinkDPDK())
		k := baseline.NewIOUring(n, port, ip)
		tb.trackCatnip(k.Inner().(*catnip.LibOS), ip, port.MAC())
		return combineKernel(k, stor, n)
	}}
}

// combineKernel keeps non-storage io_uring simple (storage unused there).
func combineKernel(k demi.LibOS, stor demi.StorOS, n *sim.Node) demi.LibOS {
	if stor != nil {
		panic("bench: storage not wired for this baseline")
	}
	return k
}

// SysCatnap is the polled kernel path (simulated Catnap).
func SysCatnap(env baseline.Env) System {
	return System{Name: "Catnap", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		port := tb.newDPDK(n, LinkDPDK())
		if stor != nil {
			k := baseline.NewCatnapSimWithStorage(n, port, ip, env, stor)
			tb.trackCatnip(k.Inner().(*demi.Combined).Net.(*catnip.LibOS), ip, port.MAC())
			return k
		}
		k := baseline.NewCatnapSim(n, port, ip, env)
		tb.trackCatnip(k.Inner().(*catnip.LibOS), ip, port.MAC())
		return k
	}}
}

// SysCatnipTCP and SysCatnipUDP are Demikernel's DPDK libOS.
func SysCatnipTCP() System {
	return System{Name: "Catnip (TCP)", Build: buildCatnip(catnip.DefaultConfig)}
}

// SysCatnipUDP echoes over the UDP stack.
func SysCatnipUDP() System {
	s := System{Name: "Catnip (UDP)", Dgram: true, Build: buildCatnip(catnip.DefaultConfig)}
	return s
}

// SysCatnipVM is Catnip inside an Azure VM: each packet crosses the
// SmartNIC virtualization layer (Figure 6b).
func SysCatnipVM() System {
	return System{Name: "Catnip (TCP)", Build: buildCatnip(func(ip wire.IPAddr) catnip.Config {
		cfg := catnip.DefaultConfig(ip)
		cfg.TCPIngressCost += 1500 * time.Nanosecond // vnet translation
		cfg.TCPEgressCost += 1500 * time.Nanosecond
		cfg.UDPIngressCost += 1500 * time.Nanosecond
		cfg.UDPEgressCost += 1500 * time.Nanosecond
		return cfg
	})}
}

// SysCatnipForceCopy is the zero-copy ablation: all sends copied.
func SysCatnipForceCopy() System {
	return System{Name: "Catnip (copy)", Build: buildCatnip(func(ip wire.IPAddr) catnip.Config {
		cfg := catnip.DefaultConfig(ip)
		cfg.ForceCopy = true
		return cfg
	})}
}

func buildCatnip(mkcfg func(wire.IPAddr) catnip.Config) func(*Testbed, *sim.Node, wire.IPAddr, demi.StorOS) demi.LibOS {
	return func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		port := tb.newDPDK(n, LinkDPDK())
		l := catnip.New(n, port, mkcfg(ip))
		tb.trackCatnip(l, ip, port.MAC())
		return combine(l, stor)
	}
}

// SysCatmint is Demikernel's RDMA libOS; maxMsg 0 keeps the default.
func SysCatmint(maxMsg int) System {
	return System{Name: "Catmint", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		cfg := catmint.DefaultConfig(tb.Book)
		if maxMsg > 0 {
			cfg.MaxMsgSize = maxMsg
			cfg.RecvDepth = 16
			cfg.RefillThreshold = 8
		}
		l := catmint.New(n, tb.newRDMA(n, LinkRDMA()), cfg)
		l.RegisterAddr(wireAddr(ip))
		return combine(l, stor)
	}}
}

// SysCatpaw is the Windows RDMA libOS over the CX-4 InfiniBand cluster
// (Figure 6a): the same Catmint design on NDSPI.
func SysCatpaw() System {
	return System{Name: "Catpaw", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		l := catmint.New(n, tb.newRDMA(n, LinkIB56()), catmint.DefaultConfig(tb.Book))
		l.RegisterAddr(wireAddr(ip))
		return l
	}}
}

// SysERPC is the eRPC comparator over RDMA.
func SysERPC() System {
	return System{Name: "eRPC", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		l := baseline.NewERPC(n, tb.newRDMA(n, LinkRDMA()), tb.Book).(*catmint.LibOS)
		l.RegisterAddr(wireAddr(ip))
		return l
	}}
}

// SysTxnStoreRDMA models TxnStore's hand-rolled RDMA messaging: one queue
// pair per connection and a copy on each send (paper §7.6 credits Catmint's
// win to avoiding exactly these).
func SysTxnStoreRDMA() System {
	return System{Name: "RDMA (custom)", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		cfg := catmint.DefaultConfig(tb.Book)
		cfg.PostSendCost = 900 * time.Nanosecond // per-conn QP cache misses
		cfg.PollCQECost = 500 * time.Nanosecond
		l := catmint.New(n, tb.newRDMA(n, LinkRDMA()), cfg)
		l.RegisterAddr(wireAddr(ip))
		return l
	}}
}

// SysShenango and SysCaladan are the kernel-bypass scheduler comparators.
func SysShenango() System {
	return System{Name: "Shenango", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		port := tb.newDPDK(n, LinkDPDK())
		l := baseline.NewShenango(n, port, ip).(*catnip.LibOS)
		tb.trackCatnip(l, ip, port.MAC())
		return l
	}}
}

// SysCaladan is the run-to-completion OFED comparator.
func SysCaladan() System {
	return System{Name: "Caladan", Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
		// Caladan's OFED path has the RDMA engine's shallower NIC latency.
		port := tb.newDPDK(n, LinkRDMA())
		l := baseline.NewCaladan(n, port, ip).(*catnip.LibOS)
		tb.trackCatnip(l, ip, port.MAC())
		return l
	}}
}

// SysSplitCore is the run-to-completion ablation: Catnip's own stack with
// packets crossing to a second core, isolating the architectural choice
// from stack quality.
func SysSplitCore() System {
	return System{Name: "Catnip (2-core)", Build: buildCatnip(func(ip wire.IPAddr) catnip.Config {
		cfg := catnip.DefaultConfig(ip)
		cfg.TCPIngressCost += 2 * 600 * time.Nanosecond
		cfg.TCPEgressCost += 2 * 600 * time.Nanosecond
		return cfg
	})}
}

func wireAddr(ip wire.IPAddr) core.Addr { return core.Addr{IP: ip} }

// simInfinity avoids importing sim at every call site.
func simInfinity() sim.Time { return sim.Infinity }
