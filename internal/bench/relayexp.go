package bench

import (
	"fmt"
	"time"

	"demikernel/internal/apps/relay"
	"demikernel/internal/baseline"
	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/wire"
)

// RunRelay measures end-to-end relayed-packet latency for one relay-server
// stack. The traffic generator is always the Linux kernel path (the paper
// uses a non-kernel-bypass Linux traffic generator), so latency deltas are
// attributable to the relay server alone.
func RunRelay(serverSys System, packets int) (*Hist, error) {
	tb := NewTestbed(9, SwitchEth())
	relayIP := wire.IPAddr{10, 10, 0, 1}
	genIP := wire.IPAddr{10, 10, 0, 2}
	srv := tb.NewStack(serverSys, "relay", relayIP)
	gen := tb.NewStack(SysLinux(baseline.EnvNative), "generator", genIP)
	tb.SeedARP()
	relayAddr := core.Addr{IP: relayIP, Port: 3478}
	var stats relay.Stats
	tb.Eng.Spawn(srv.Node, func() { relay.Server(srv.OS, relayAddr, &stats) })

	h := &Hist{}
	var genErr error
	tb.Eng.Spawn(gen.Node, func() {
		defer tb.Eng.Stop()
		l := gen.OS
		caller, _ := l.Socket(core.SockDgram)
		callee, _ := l.Socket(core.SockDgram)
		calleePort := uint16(41000)
		if err := l.Bind(callee, core.Addr{IP: genIP, Port: calleePort}); err != nil {
			genErr = err
			return
		}
		alloc := memory.CopyFrom(l.Heap(), relay.BuildAllocate(1, core.Addr{IP: genIP, Port: calleePort}))
		qt, err := l.PushTo(caller, core.SGA(alloc), relayAddr)
		if err != nil {
			alloc.Free() // failed push leaves ownership with us
			genErr = err
			return
		}
		alloc.Free()
		l.Wait(qt)
		pqt, _ := l.Pop(caller)
		if ev, err := l.Wait(pqt); err != nil || ev.Err != nil {
			genErr = fmt.Errorf("allocate: %v %v", err, ev.Err)
			return
		}
		payload := make([]byte, 160) // typical RTP audio packet
		for i := 0; i < packets; i++ {
			start := gen.Node.Now()
			data := memory.CopyFrom(l.Heap(), relay.BuildData(1, payload))
			qt, err := l.PushTo(caller, core.SGA(data), relayAddr)
			if err != nil {
				data.Free() // failed push leaves ownership with us
				genErr = err
				return
			}
			data.Free()
			l.Wait(qt)
			pqt, _ := l.Pop(callee)
			ev, err := l.Wait(pqt)
			if err != nil || ev.Err != nil {
				genErr = fmt.Errorf("relay recv: %v", err)
				return
			}
			ev.SGA.Free()
			h.Add(gen.Node.Now().Sub(start))
		}
	})
	tb.Eng.Run()
	if genErr != nil {
		return nil, fmt.Errorf("%s: %w", serverSys.Name, genErr)
	}
	if stats.Relayed < uint64(packets) {
		return nil, fmt.Errorf("%s: relayed only %d of %d", serverSys.Name, stats.Relayed, packets)
	}
	return h, nil
}

// Fig10 regenerates Figure 10: UDP relay average and p99 latency with the
// relay server on Linux, io_uring and Catnip.
func Fig10() (*Table, error) {
	t := &Table{
		Title:  "Figure 10: UDP relay latency (Linux traffic generator)",
		Note:   "paper (µs avg/p99): Linux 24.9/27.6, io_uring 24.4/25.8, Catnip 13.9/14.9 (−11µs avg, −13.7µs p99)",
		Header: []string{"relay server", "avg (µs)", "p99 (µs)"},
	}
	const packets = 3000
	for _, sys := range []System{
		SysLinux(baseline.EnvNative),
		SysIOUring(),
		SysCatnipUDP(),
	} {
		name := sys.Name
		if name == "Catnip (UDP)" {
			name = "Catnip"
		}
		h, err := RunRelay(sys, packets)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, Micros(h.Mean()), Micros(h.P99()))
	}
	return t, nil
}

// relayDropGuard documents the timing dependency: the generator is
// closed-loop so the relay can never be overrun.
var _ = time.Nanosecond
