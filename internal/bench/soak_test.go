package bench

import (
	"fmt"
	"testing"

	"demikernel/internal/apps/echo"
	"demikernel/internal/apps/kv"
	"demikernel/internal/apps/txnstore"
	"demikernel/internal/core"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
	"demikernel/internal/ycsb"
)

// TestSoakMixedWorkloads runs an echo pair, a Redis pair (with AOF) and a
// TxnStore cluster concurrently on one switch: eight hosts, three
// applications, two device classes, all interleaved through one
// deterministic engine. It shakes out cross-stack interference bugs no
// single-app test reaches.
func TestSoakMixedWorkloads(t *testing.T) {
	tb := NewTestbed(1234, SwitchEth())

	// --- echo pair (Catnip TCP) ---
	echoSrv := tb.NewStack(SysCatnipTCP(), "echo-srv", wire.IPAddr{10, 20, 0, 1})
	echoCli := tb.NewStack(SysCatnipTCP(), "echo-cli", wire.IPAddr{10, 20, 0, 2})

	// --- Redis pair with AOF (Catnip×Cattree) ---
	kvSys := catnipCattreeTCP()
	kvSrv := tb.NewStack(kvSys, "kv-srv", wire.IPAddr{10, 20, 0, 3})
	kvCli := tb.NewStack(SysCatnipTCP(), "kv-cli", wire.IPAddr{10, 20, 0, 4})

	// --- TxnStore cluster (client + 3 replicas, Catnip) ---
	txnCli := tb.NewStack(SysCatnipTCP(), "txn-cli", wire.IPAddr{10, 20, 0, 5})
	var txnAddrs []core.Addr
	var txnStacks []*Stack
	for i := 0; i < 3; i++ {
		ip := wire.IPAddr{10, 20, 0, byte(6 + i)}
		st := tb.NewStack(SysCatnipTCP(), fmt.Sprintf("txn-replica%d", i), ip)
		txnStacks = append(txnStacks, st)
		txnAddrs = append(txnAddrs, core.Addr{IP: ip, Port: 7000})
	}
	tb.SeedARP()

	// Servers.
	echoAddr := core.Addr{IP: echoSrv.IP, Port: 7100}
	tb.Eng.Spawn(echoSrv.Node, func() {
		echo.Server(echoSrv.OS, echo.ServerConfig{Addr: echoAddr})
	})
	kvAddr := core.Addr{IP: kvSrv.IP, Port: 6379}
	var kvStats kv.ServerStats
	tb.Eng.Spawn(kvSrv.Node, func() {
		kv.Server(kvSrv.OS, kv.ServerConfig{Addr: kvAddr, AOFName: "soak.aof"}, &kvStats)
	})
	for i, st := range txnStacks {
		r := txnstore.NewReplica()
		st, addr := st, txnAddrs[i]
		tb.Eng.Spawn(st.Node, func() { r.Serve(st.OS, addr) })
	}

	// Clients.
	const rounds = 300
	echoDone, kvDone, txnDone := false, false, false
	tb.Eng.Spawn(echoCli.Node, func() {
		res, err := echo.Client(echoCli.OS, echoAddr, 128, rounds, 10, echoCli.Node)
		if err != nil || len(res.RTTs) != rounds {
			t.Errorf("echo client: %v (%d rounds)", err, len(res.RTTs))
			return
		}
		echoDone = true
	})
	tb.Eng.Spawn(kvCli.Node, func() {
		c, err := kv.Dial(kvCli.OS, kvAddr)
		if err != nil {
			t.Errorf("kv dial: %v", err)
			return
		}
		rng := sim.NewRand(5)
		for i := 0; i < rounds; i++ {
			key := ycsb.Key(rng.Intn(64))
			if i%2 == 0 {
				if err := c.Set(key, []byte("soak-value")); err != nil {
					t.Errorf("kv set: %v", err)
					return
				}
			} else if _, err := c.Get(key); err != nil {
				t.Errorf("kv get: %v", err)
				return
			}
		}
		c.Close()
		kvDone = true
	})
	tb.Eng.Spawn(txnCli.Node, func() {
		c, err := txnstore.Dial(txnCli.OS, txnAddrs, sim.NewRand(6))
		if err != nil {
			t.Errorf("txn dial: %v", err)
			return
		}
		for i := 0; i < rounds/3; i++ {
			txn := c.Begin()
			key := ycsb.Key(i % 16)
			v, err := txn.Get(key)
			if err != nil {
				t.Errorf("txn get: %v", err)
				return
			}
			next := append([]byte(nil), v...)
			next = append(next, byte(i))
			txn.Put(key, next)
			if ok, err := txn.Commit(); err != nil || !ok {
				t.Errorf("txn commit %d: ok=%v err=%v", i, ok, err)
				return
			}
		}
		c.Close()
		txnDone = true
	})
	tb.Eng.Run()
	if !echoDone || !kvDone || !txnDone {
		t.Fatalf("clients finished: echo=%v kv=%v txn=%v", echoDone, kvDone, txnDone)
	}
	if kvStats.AOFRecords == 0 {
		t.Error("kv AOF never written during soak")
	}
	// Determinism across the whole mixed world.
	if tb.Eng.EventsRun() == 0 {
		t.Error("no events processed")
	}
}
