package bench

import (
	"testing"
	"time"

	"demikernel/internal/rack"
	"demikernel/internal/reqsched"
)

// smokeRackOpts is a topology small enough for -race CI.
func smokeRackOpts(seed uint64) RackOpts {
	return RackOpts{
		Servers:        4,
		CoresPerServer: 2,
		Clients:        8,
		Requests:       50,
		MeanThink:      2 * time.Microsecond,
		MaxSize:        32 << 10,
		Reserved:       1,
		Seed:           seed,
	}
}

// TestRackSmoke drives the two-layer rack at small scale across three
// seeds, and asserts replay byte-identity: the same seed reruns to the
// same telemetry text and the same latency stream.
func TestRackSmoke(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		opts := smokeRackOpts(seed)
		a, err := runRack(opts, rack.PowerOfK{K: 2}, reqsched.DARC{Reserved: opts.Reserved})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total := opts.Clients * opts.Requests
		if got := len(a.ShortLats) + len(a.LongLats); got != total {
			t.Fatalf("seed %d: completed %d of %d requests", seed, got, total)
		}
		if a.Resyncs == 0 {
			t.Fatalf("seed %d: ToR absorbed no load trailers", seed)
		}
		b, err := runRack(opts, rack.PowerOfK{K: 2}, reqsched.DARC{Reserved: opts.Reserved})
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if a.TelemetryText != b.TelemetryText {
			t.Errorf("seed %d: replay telemetry not byte-identical", seed)
		}
		if len(a.ShortLats) != len(b.ShortLats) {
			t.Fatalf("seed %d: replay diverged in request accounting", seed)
		}
		for i := range a.ShortLats {
			if a.ShortLats[i] != b.ShortLats[i] {
				t.Fatalf("seed %d: replay diverged at short latency %d", seed, i)
			}
		}
	}
}

// TestRackTablesRender: the full sweep produces both tables with a row per
// policy-matrix cell.
func TestRackTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full rack sweep in -short mode")
	}
	tables, err := Rack()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("Rack() returned %d tables, want 2", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 6 {
			t.Errorf("table %q has %d rows, want 6", tb.Title, len(tb.Rows))
		}
	}
}
