package bench

import (
	"fmt"
	"time"

	"demikernel/internal/baseline"
	"demikernel/internal/catmint"
	"demikernel/internal/catnip"
	"demikernel/internal/demi"
	"demikernel/internal/reqsched"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
)

// Ablations isolate the design choices DESIGN.md calls out, each on the
// same stack with one dimension flipped.

// AblationZeroCopy compares zero-copy and forced-copy Catnip at several
// message sizes (the paper's 1 KiB threshold rationale: zero-copy "offers
// a significant performance improvement only for buffers over 1 kB").
func AblationZeroCopy() (*Table, error) {
	t := &Table{
		Title:  "Ablation: zero-copy vs forced-copy Catnip (echo RTT)",
		Header: []string{"msg size (B)", "zero-copy (µs)", "copy (µs)", "delta (ns)"},
	}
	for _, size := range []int{512, 2048, 16384, 65536} {
		opts := DefaultEchoOpts()
		opts.MsgSize = size
		opts.Rounds = 400
		opts.Warmup = 40
		zc, err := RunEcho(SysCatnipTCP(), opts)
		if err != nil {
			return nil, err
		}
		cp, err := RunEcho(SysCatnipForceCopy(), opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", size), Micros(zc.Avg), Micros(cp.Avg),
			fmt.Sprintf("%d", (cp.Avg-zc.Avg).Nanoseconds()))
	}
	return t, nil
}

// AblationRunToCompletion compares single-core run-to-completion Catnip
// against the identical stack with a Shenango-style 2-core split,
// isolating the architecture from stack quality.
func AblationRunToCompletion() (*Table, error) {
	t := &Table{
		Title:  "Ablation: run-to-completion vs 2-core split (identical TCP stack, 64B echo)",
		Header: []string{"architecture", "avg RTT (µs)"},
	}
	opts := DefaultEchoOpts()
	opts.Rounds = 1000
	rtc, err := RunEcho(SysCatnipTCP(), opts)
	if err != nil {
		return nil, err
	}
	split, err := RunEcho(SysSplitCore(), opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("run-to-completion (1 core)", Micros(rtc.Avg))
	t.AddRow("IOKernel split (2 cores)", Micros(split.Avg))
	return t, nil
}

// AblationPolling compares Catnap's polling against the standard epoll
// path on the identical kernel stack (the paper's Catnap-vs-Linux gap).
func AblationPolling() (*Table, error) {
	t := &Table{
		Title:  "Ablation: polling vs epoll on the kernel path (64B echo)",
		Header: []string{"wait strategy", "avg RTT (µs)", "host CPU per round (µs)"},
	}
	opts := DefaultEchoOpts()
	opts.Rounds = 1000
	for _, sys := range []System{SysLinux(baseline.EnvNative), SysCatnap(baseline.EnvNative)} {
		row, err := RunEcho(sys, opts)
		if err != nil {
			return nil, err
		}
		name := "epoll (sleeps)"
		if sys.Name == "Catnap" {
			name = "polling (burns a core)"
		}
		t.AddRow(name, Micros(row.Avg), Micros(row.OSTimePerIO*4))
	}
	return t, nil
}

// AblationQPMux compares Catmint's multiplexed single queue pair against a
// per-connection-QP cost model (the design the paper rejects as
// unaffordable, §6.2).
func AblationQPMux() (*Table, error) {
	t := &Table{
		Title:  "Ablation: multiplexed QP vs per-connection QPs (Catmint, 64B echo)",
		Header: []string{"design", "avg RTT (µs)"},
	}
	opts := DefaultEchoOpts()
	opts.Rounds = 1000
	mux, err := RunEcho(SysCatmint(0), opts)
	if err != nil {
		return nil, err
	}
	perConn, err := RunEcho(SysTxnStoreRDMA(), opts) // per-conn QP cost model
	if err != nil {
		return nil, err
	}
	t.AddRow("one QP per device (multiplexed)", Micros(mux.Avg))
	t.AddRow("one QP per connection", Micros(perConn.Avg))
	return t, nil
}

// AblationCreditDepth sweeps Catmint's receive-credit depth, showing flow
// control protecting against RNR drops at the cost of stalls when shallow.
func AblationCreditDepth() (*Table, error) {
	t := &Table{
		Title:  "Ablation: Catmint receive-credit depth (64B echo, 1000 rounds)",
		Header: []string{"recv depth", "avg RTT (µs)", "credit stalls"},
	}
	for _, depth := range []int{2, 8, 64} {
		depth := depth
		sys := System{Name: fmt.Sprintf("depth %d", depth), Build: func(tb *Testbed, n *sim.Node, ip wire.IPAddr, stor demi.StorOS) demi.LibOS {
			cfg := catmint.DefaultConfig(tb.Book)
			cfg.RecvDepth = depth
			cfg.RefillThreshold = depth / 2
			l := catmint.New(n, tb.newRDMA(n, LinkRDMA()), cfg)
			l.RegisterAddr(wireAddr(ip))
			return l
		}}
		opts := DefaultEchoOpts()
		opts.Rounds = 1000
		row, err := RunEcho(sys, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(sys.Name, Micros(row.Avg), "-")
	}
	return t, nil
}

// Ablations runs every ablation.
func Ablations() ([]*Table, error) {
	var out []*Table
	for _, f := range []func() (*Table, error){
		AblationZeroCopy,
		AblationRunToCompletion,
		AblationPolling,
		AblationQPMux,
		AblationCreditDepth,
		AblationDelayedAck,
		Persephone,
	} {
		tab, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, tab)
	}
	return out, nil
}

var _ = time.Nanosecond

// Persephone regenerates the companion paper's headline (paper §3.2, [15]):
// request-type-aware core reservation protects short-request tail latency
// under highly dispersed service times.
func Persephone() (*Table, error) {
	t := &Table{
		Title:  "Companion (Perséphone [15]): short-request p999 under 1000x service-time dispersion (8 workers)",
		Note:   "99.5% 0.5µs / 0.5% 500µs; DARC reserves cores for shorts at the cost of long-request latency",
		Header: []string{"load", "policy", "short p999 (µs)", "long p999 (µs)", "short tail gain"},
	}
	for _, load := range []float64{0.80, 0.90} {
		w := reqsched.HighDispersion(60000, load, 8)
		fcfs := reqsched.Run(7, 8, reqsched.FCFS{}, w, 1<<20)
		darc := reqsched.Run(7, 8, reqsched.DARC{Reserved: 2}, w, 1<<20)
		fp, dp := tail999(fcfs.ShortLats), tail999(darc.ShortLats)
		t.AddRow(fmt.Sprintf("%.0f%%", load*100), "c-FCFS", Micros(fp), Micros(tail999(fcfs.LongLats)), "1.0x")
		t.AddRow(fmt.Sprintf("%.0f%%", load*100), "DARC(2)", Micros(dp), Micros(tail999(darc.LongLats)),
			fmt.Sprintf("%.0fx", float64(fp)/float64(dp)))
	}
	return t, nil
}

// tail999 returns the 99.9th percentile.
func tail999(lats []time.Duration) time.Duration {
	h := &Hist{}
	h.AddAll(lats)
	return h.Percentile(99.9)
}

// AblationDelayedAck compares immediate and delayed pure acknowledgments
// on a 64 B echo: µs-scale RTTs cannot absorb delayed acks, which is why
// Catnip acks immediately (every deferred ack costs the full delay on the
// echo's critical path when traffic is sparse).
func AblationDelayedAck() (*Table, error) {
	t := &Table{
		Title:  "Ablation: immediate vs delayed pure acks (Catnip TCP, 64B echo)",
		Header: []string{"ack policy", "avg RTT (µs)"},
	}
	opts := DefaultEchoOpts()
	opts.Rounds = 500
	imm, err := RunEcho(SysCatnipTCP(), opts)
	if err != nil {
		return nil, err
	}
	delayedSys := System{Name: "Catnip (delayed ack)", Build: buildCatnip(func(ip wire.IPAddr) catnip.Config {
		cfg := catnip.DefaultConfig(ip)
		cfg.DelayedAck = 50 * time.Microsecond
		return cfg
	})}
	del, err := RunEcho(delayedSys, opts)
	if err != nil {
		return nil, err
	}
	t.AddRow("immediate (Catnip default)", Micros(imm.Avg))
	t.AddRow("delayed 50µs", Micros(del.Avg))
	return t, nil
}
