package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// repoRoot locates the module root from this source file's position.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// ModuleLoC counts non-test Go lines under the given repo-relative path.
func ModuleLoC(rel string) int {
	total := 0
	root := filepath.Join(repoRoot(), rel)
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, ferr := os.Open(path)
		if ferr != nil {
			return nil
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			total++
		}
		return nil
	})
	return total
}

// Table2 regenerates Table 2: library OS lines of code, ours next to the
// paper's (different languages, comparable scale).
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: Demikernel library operating systems (LoC)",
		Header: []string{"libOS", "kernel-bypass", "paper LoC", "this repo (Go)"},
	}
	rows := []struct {
		name, dev, paper, dir string
	}{
		{"Catnap", "N/A (kernel)", "822 C++", "internal/catnap"},
		{"Catmint", "RDMA", "1904 Rust", "internal/catmint"},
		{"Catnip", "DPDK", "9201 Rust", "internal/catnip"},
		{"Cattree", "SPDK", "2320 Rust", "internal/cattree"},
		{"(shared PDPIX core)", "-", "-", "internal/core"},
		{"(coroutine scheduler)", "-", "-", "internal/sched"},
		{"(memory allocator)", "-", "(Hoard, external)", "internal/memory"},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.dev, r.paper, fmt.Sprintf("%d", ModuleLoC(r.dir)))
	}
	return t
}

// Table3 regenerates Table 3: application lines of code.
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: µs-scale applications (LoC)",
		Note:   "paper (POSIX -> Demikernel): echo 328->291, UDP relay 1731->2076, Redis 52954->54332, TxnStore 13430->12610",
		Header: []string{"application", "paper Demikernel LoC", "this repo (Go)"},
	}
	rows := []struct{ name, paper, dir string }{
		{"Echo server+client", "291", "internal/apps/echo"},
		{"UDP relay", "2076", "internal/apps/relay"},
		{"Redis (mini)", "54332 (full Redis)", "internal/apps/kv"},
		{"TxnStore", "12610 (full TxnStore)", "internal/apps/txnstore"},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.paper, fmt.Sprintf("%d", ModuleLoC(r.dir)))
	}
	return t
}

// Table1 regenerates Table 1: the datapath OS service matrix, annotated
// with where each service lives in this repository.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: Demikernel datapath OS services (paper) -> implementation here",
		Header: []string{"service", "paper", "this repo"},
	}
	rows := [][3]string{
		{"I1 Portable high-level API", "full", "internal/core (PDPIX), all libOSes"},
		{"I2 Microsecond net stack", "full", "internal/catnip (TCP/UDP/ARP/IP), internal/catmint"},
		{"I3 Microsecond storage stack", "full", "internal/cattree (partitioned logs, recovery)"},
		{"C1 Alloc CPU to app and I/O", "full", "internal/sched + Runner loops (app > background > fast path)"},
		{"C2 Alloc I/O req to app workers", "partial (Persephone)", "internal/reqsched (c-FCFS vs DARC)"},
		{"C3 App request scheduling API", "full", "wait/wait_any/wait_all (internal/core), internal/evloop"},
		{"M1 Mem ownership semantics", "full", "push/pop ownership transfer (internal/core, memory.Buf)"},
		{"M2 DMA-capable heap", "full", "internal/memory (lazy get_rkey registration)"},
		{"M3 Use-after-free protection", "full", "internal/memory refcount bitmap + reference table"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2])
	}
	return t
}
