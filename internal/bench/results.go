package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the same rows/series the paper's
// figure or table reports.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table in aligned text form.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Series is one row of a table in machine-readable form: the first column
// names the series, the remaining columns become header->value pairs (the
// experiment's value/p50/p99 readings).
type Series struct {
	Name   string            `json:"name"`
	Values map[string]string `json:"values"`
}

// TableJSON is a table's machine-readable form (demi-bench -json writes an
// array of these to BENCH_results.json so the bench trajectory can be
// tracked across PRs).
type TableJSON struct {
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Series []Series   `json:"series"`
}

// ToJSON converts the table to its machine-readable form.
func (t *Table) ToJSON() TableJSON {
	tj := TableJSON{Title: t.Title, Note: t.Note, Header: t.Header, Rows: t.Rows}
	for _, row := range t.Rows {
		if len(row) == 0 {
			continue
		}
		s := Series{Name: row[0], Values: make(map[string]string)}
		for i := 1; i < len(row) && i < len(t.Header); i++ {
			s.Values[t.Header[i]] = row[i]
		}
		tj.Series = append(tj.Series, s)
	}
	return tj
}

// JSON renders the table as indented JSON.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.ToJSON())
}

// WriteTablesJSON renders several tables as one JSON array (the
// BENCH_results.json document).
func WriteTablesJSON(w io.Writer, tables []*Table) error {
	arr := make([]TableJSON, 0, len(tables))
	for _, t := range tables {
		arr = append(arr, t.ToJSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}
