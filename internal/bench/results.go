package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the same rows/series the paper's
// figure or table reports.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table in aligned text form.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}
