package bench

import (
	"bytes"
	"strings"
	"testing"

	"demikernel/internal/apps/echo"
	"demikernel/internal/multicore"
	"demikernel/internal/telemetry"
)

// smallEchoOpts is a fig5-style run sized for test speed.
func smallEchoOpts() EchoOpts {
	o := DefaultEchoOpts()
	o.Rounds = 200
	o.Warmup = 20
	return o
}

// runEchoWithTelemetry runs one instrumented echo and returns the dump.
func runEchoWithTelemetry(t *testing.T, sys System, opts EchoOpts) string {
	t.Helper()
	var buf bytes.Buffer
	SetTelemetrySink(&buf)
	defer SetTelemetrySink(nil)
	if _, err := RunEcho(sys, opts); err != nil {
		t.Fatalf("RunEcho: %v", err)
	}
	return buf.String()
}

// TestTelemetryDeterministicDump checks the headline acceptance criterion:
// two same-seed fig5-style runs produce byte-identical telemetry dumps, and
// the flight-recorder dump orders stages the way Figure 5 decomposes in-OS
// time.
func TestTelemetryDeterministicDump(t *testing.T) {
	opts := smallEchoOpts()
	a := runEchoWithTelemetry(t, SysCatnipTCP(), opts)
	b := runEchoWithTelemetry(t, SysCatnipTCP(), opts)
	if a != b {
		t.Fatalf("same-seed telemetry dumps differ:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if !strings.Contains(a, "stage order (Fig 5 in-OS decomposition): issue(libcall) -> complete(I/O stack) -> redeem(wait/sched)") {
		t.Fatalf("dump missing Fig 5 stage-order line:\n%s", a)
	}
	for _, want := range []string{
		"core.qtoken_latency_ns",
		"catnip.rx_frames",
		"sched.polls",
		"mem.allocs",
		"flight recorder",
		"slowest spans",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

// TestTelemetryDumpAcrossSystems checks the flight recorder attaches through
// the baseline wrappers and combined (net x storage) stacks too.
func TestTelemetryDumpAcrossSystems(t *testing.T) {
	opts := smallEchoOpts()
	for _, sys := range []System{SysCatmint(0), catnipCattreeTCP()} {
		dump := runEchoWithTelemetry(t, sys, opts)
		if !strings.Contains(dump, "flight recorder") {
			t.Errorf("%s: dump has no flight-recorder section", sys.Name)
		}
		if !strings.Contains(dump, "-- telemetry: "+sys.Name+"/server --") {
			t.Errorf("%s: dump has no server section", sys.Name)
		}
	}
}

// TestScaleOutMergedTelemetry checks that a scale-out run's merged histogram
// equals the bucket-wise merge of the per-core histograms (satellite 3).
func TestScaleOutMergedTelemetry(t *testing.T) {
	opts := DefaultScaleOutOpts()
	opts.Rounds = 200
	opts.Warmup = 20
	const cores = 2
	c := newScaleOutCluster(cores, opts)
	if err := runScaleOutEchoOn(c, opts); err != nil {
		t.Fatalf("scale-out echo: %v", err)
	}
	perCore := c.grp.CoreTelemetry()
	if len(perCore) != cores {
		t.Fatalf("CoreTelemetry: got %d snapshots, want %d", len(perCore), cores)
	}
	merged := c.grp.MergedTelemetry()
	manual := telemetry.Merge(merged.Name, perCore...)

	var a, b bytes.Buffer
	merged.WriteText(&a)
	manual.WriteText(&b)
	if a.String() != b.String() {
		t.Fatalf("MergedTelemetry != Merge(per-core):\n--- merged ---\n%s\n--- manual ---\n%s", a.String(), b.String())
	}

	// The merged qtoken-latency histogram must be the exact bucket sum of
	// the shards, with count and sum preserved.
	mh := findHist(t, merged, "core.qtoken_latency_ns")
	var count, sum uint64
	buckets := make([]uint64, len(mh.Buckets))
	for _, snap := range perCore {
		h := findHist(t, snap, "core.qtoken_latency_ns")
		if h.Count == 0 {
			t.Fatalf("%s: core recorded no qtoken latencies", snap.Name)
		}
		count += h.Count
		sum += uint64(h.Sum)
		for i, v := range h.Buckets {
			buckets[i] += v
		}
	}
	if mh.Count != count || uint64(mh.Sum) != sum {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", mh.Count, mh.Sum, count, sum)
	}
	for i, v := range mh.Buckets {
		if v != buckets[i] {
			t.Fatalf("merged bucket %d = %d, want %d", i, v, buckets[i])
		}
	}
}

// runScaleOutEchoOn drives the echo workload on an already-built cluster so
// the test can inspect the group afterwards (RunScaleOutEcho builds and
// discards its own cluster).
func runScaleOutEchoOn(c *scaleOutCluster, opts ScaleOutOpts) error {
	c.grp.Spawn(func(sc *multicore.Core) {
		echo.Server(sc.OS, echo.ServerConfig{Addr: c.svc, MaxConns: 2 * opts.FlowsPerCore})
	})
	return c.run(func(j int) error {
		_, err := echo.ClientFrom(c.clients[j].OS, c.localAddr(j), c.svc,
			opts.MsgSize, opts.Rounds, opts.Warmup, c.clients[j].Node)
		return err
	})
}

func findHist(t *testing.T, s *telemetry.Snapshot, name string) telemetry.HistVal {
	t.Helper()
	for _, h := range s.Hists {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("%s: histogram %q not found", s.Name, name)
	return telemetry.HistVal{}
}
