package bench

import (
	"demikernel/internal/dtrace"
)

// TracedChain is one traced run of the service chain: the headline numbers,
// the tracer holding every sampled request's events and retained roots, and
// any violations the telemetry cross-check found (empty on a healthy run).
type TracedChain struct {
	Run        ChainRun
	Tracer     *dtrace.Tracer
	Violations []string
}

// RunChainTraced drives the service chain once over the named transport
// ("catmem" or "catloop") with distributed tracing attached to every stage:
// each libOS records op spans and wire/ring transits, each app stage stamps
// its serve interval, and the client roots every sampled post-warmup
// request. The sampled traces are cross-checked against the per-hop qtoken
// latency histograms before returning.
func RunChainTraced(transport string, rounds int, cfg dtrace.Config) (TracedChain, error) {
	tr := dtrace.New(cfg)
	r, err := runChain(transport, rounds, tr)
	if err != nil {
		return TracedChain{}, err
	}
	return TracedChain{
		Run: ChainRun{
			RTTAvg:        r.rtt.Mean(),
			RTTP99:        r.rtt.P99(),
			RelayNsPerReq: r.relayNs,
		},
		Tracer:     tr,
		Violations: dtrace.CrossCheck(tr, r.hists),
	}, nil
}
