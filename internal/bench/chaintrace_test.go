package bench

import (
	"bytes"
	"testing"
	"time"

	"demikernel/internal/apps/chain"
	"demikernel/internal/catmem"
	"demikernel/internal/core"
	"demikernel/internal/dtrace"
	"demikernel/internal/faults"
	"demikernel/internal/sim"
)

// smokeCfg samples every request so the smoke test can demand that every
// round produced a fully stitched trace.
var smokeCfg = dtrace.Config{SampleEvery: 1, Events: 1 << 18, Recent: 4096, Slowest: 16}

const smokeRounds = 256

// TestTraceSmoke is the CI trace gate: the chain runs at 100% sampling over
// both transports, and every sampled request must stitch into a waterfall
// that explains (almost) all of its measured RTT, with per-hop spans
// consistent with the telemetry histograms.
func TestTraceSmoke(t *testing.T) {
	for _, transport := range []string{"catmem", "catloop"} {
		t.Run(transport, func(t *testing.T) {
			res, err := RunChainTraced(transport, smokeRounds, smokeCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("cross-check: %s", v)
			}
			tr := res.Tracer
			if tr.Started() != smokeRounds || tr.Finished() != smokeRounds {
				t.Fatalf("sampled %d started / %d finished, want %d each",
					tr.Started(), tr.Finished(), smokeRounds)
			}
			if tr.Evicted() != 0 {
				t.Fatalf("arena evicted %d events; size the smoke arena up", tr.Evicted())
			}
			views := tr.Assemble()
			if len(views) != smokeRounds {
				t.Fatalf("stitched %d views, want %d", len(views), smokeRounds)
			}
			minHops := 4 // client, relay, cache; kv only on cache misses
			for _, v := range views {
				if v.Coverage < 0.95 {
					t.Errorf("trace %d: coverage %.3f < 0.95 (gap %dns of %dns)",
						v.Trace, v.Coverage, v.GapNs, v.Root.Dur())
				}
				if got := v.CritSum(); got != v.Root.Dur() {
					t.Errorf("trace %d: critical path sums to %dns, root is %dns",
						v.Trace, got, v.Root.Dur())
				}
				hops := map[uint8]bool{}
				for _, r := range v.Rows {
					hops[r.Hop] = true
				}
				if len(hops) < minHops-1 {
					t.Errorf("trace %d: spans from only %d hops", v.Trace, len(hops))
				}
			}
		})
	}
}

// TestTraceFaultAnnotation: a chaos fault that hits a traced request must
// appear inside that request's waterfall — both attributed (the catmem push
// knows its context when the RingFull window stalls it) and via the global
// observer path (un-attributed firings attach to every temporally
// overlapping trace).
func TestTraceFaultAnnotation(t *testing.T) {
	const rounds, warmup = 128, 8
	eng := sim.NewEngine(99)
	region := catmem.NewRegion(eng)
	kv := region.New(eng.NewNode("kv"))
	cache := region.New(eng.NewNode("cache"))
	relay := region.New(eng.NewNode("relay"))
	cli := region.New(eng.NewNode("client"))
	tr := dtrace.New(smokeCfg)
	kv.AttachDTrace(tr.Hop("kv"))
	cache.AttachDTrace(tr.Hop("cache"))
	relay.AttachDTrace(tr.Hop("relay"))
	cli.AttachDTrace(tr.Hop("client"))

	plan := faults.NewPlan(5)
	relay.SetFaults(catmem.Faults{
		RingFull: plan.Site("catmem.ring_full",
			faults.Spec{After: 3 * time.Microsecond, Every: 53, Duration: 300 * time.Nanosecond, Max: 3}),
	})
	obsHop := tr.Hop("faults")
	obsSite := obsHop.Label("fault:catmem.ring_full")
	plan.SetObserver(func(name string, at sim.Time) {
		tr.FaultAt(obsSite, int64(at))
	})

	addrs := [3]core.Addr{{Port: 1}, {Port: 2}, {Port: 3}}
	var kvSt, cacheSt, relaySt chain.Stats
	eng.Spawn(kv.Node(), func() {
		if err := chain.KV(kv, addrs[2], true, chainKeys, chainValSize, &kvSt,
			chain.Trace{Hop: tr.Hop("kv"), Clock: kv.Node()}); err != nil {
			t.Errorf("kv: %v", err)
		}
	})
	eng.Spawn(cache.Node(), func() {
		if err := chain.Cache(cache, addrs[1], addrs[2], true, &cacheSt,
			chain.Trace{Hop: tr.Hop("cache"), Clock: cache.Node()}); err != nil {
			t.Errorf("cache: %v", err)
		}
	})
	eng.Spawn(relay.Node(), func() {
		if err := chain.Relay(relay, addrs[0], addrs[1], true, &relaySt,
			chain.Trace{Hop: tr.Hop("relay"), Clock: relay.Node()}); err != nil {
			t.Errorf("relay: %v", err)
		}
	})
	var res chain.Result
	eng.Spawn(cli.Node(), func() {
		var err error
		res, err = chain.Client(cli, addrs[0], true, rounds, warmup,
			chainKeys, chainValSize, cli.Node(),
			chain.Trace{Hop: tr.Hop("client"), Clock: cli.Node()})
		if err != nil {
			t.Errorf("client: %v", err)
		}
	})
	eng.Run()

	if fired := plan.Fired("catmem.ring_full"); fired == 0 {
		t.Fatal("fault site never fired; the test proved nothing")
	}
	if res.Rounds != rounds {
		t.Fatalf("client completed %d rounds, want %d (faults must degrade, not lose requests)", res.Rounds, rounds)
	}
	views := tr.Assemble()
	annotated := 0
	for _, v := range views {
		if len(v.Faults) > 0 {
			annotated++
		}
	}
	if annotated == 0 {
		t.Fatalf("%d firings, %d views, none fault-annotated", plan.Fired("catmem.ring_full"), len(views))
	}
	t.Logf("%d firings annotated %d of %d traces", plan.Fired("catmem.ring_full"), annotated, len(views))
}

// TestTraceDeterminism re-runs the traced chain with the same seed and
// demands byte-identical binary exports — the dtrace analogue of the
// telemetry dump guarantee.
func TestTraceDeterminism(t *testing.T) {
	for _, transport := range []string{"catmem", "catloop"} {
		t.Run(transport, func(t *testing.T) {
			var dumps [2][]byte
			for i := range dumps {
				res, err := RunChainTraced(transport, smokeRounds, smokeCfg)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := res.Tracer.EncodeBinary(&buf); err != nil {
					t.Fatal(err)
				}
				dumps[i] = buf.Bytes()
			}
			if !bytes.Equal(dumps[0], dumps[1]) {
				t.Fatalf("same-seed traced runs produced different binary exports (%d vs %d bytes)",
					len(dumps[0]), len(dumps[1]))
			}
		})
	}
}
