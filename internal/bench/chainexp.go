package bench

import (
	"fmt"
	"time"

	"demikernel/internal/apps/chain"
	"demikernel/internal/catloop"
	"demikernel/internal/catmem"
	"demikernel/internal/core"
	"demikernel/internal/dtrace"
	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
	"demikernel/internal/wire"
)

// chainResult is one transport's measurement of the three-stage chain.
type chainResult struct {
	transport string
	rtt       *Hist
	// per-stage CPU ns per request (node busy time / requests served).
	relayNs, cacheNs, kvNs float64
	hitRate                float64
	// hists maps hop name to that stage's qtoken latency histogram, for
	// cross-checking traced spans against telemetry (traced runs only).
	hists map[string]*telemetry.Histogram
}

// chainStacks carries the transport-specific pieces of one instantiated
// chain: the ownership discipline and the leak check over its heap(s).
type chainStacks struct {
	handoff bool
	heapOf  func() int // live-object count across the transport's heap(s)
}

const (
	chainKeys    = 16
	chainValSize = 64
	chainWarmup  = 64
)

// runChain drives the relay -> cache -> kv chain once over the given
// transport and returns its measurement. When tr is non-nil, every stage's
// libOS records per-hop spans into it and the stages stamp app spans, so
// sampled requests stitch into end-to-end waterfalls.
func runChain(transport string, rounds int, tr *dtrace.Tracer) (chainResult, error) {
	eng := sim.NewEngine(77)
	var stacks chainStacks
	var addrs [3]core.Addr // relay, cache, kv listen addresses
	switch transport {
	case "catmem":
		region := catmem.NewRegion(eng)
		kv := region.New(eng.NewNode("kv"))
		cache := region.New(eng.NewNode("cache"))
		relay := region.New(eng.NewNode("relay"))
		cli := region.New(eng.NewNode("client"))
		kv.AttachDTrace(tr.Hop("kv"))
		cache.AttachDTrace(tr.Hop("cache"))
		relay.AttachDTrace(tr.Hop("relay"))
		cli.AttachDTrace(tr.Hop("client"))
		stacks = chainStacks{handoff: true, heapOf: region.Heap().LiveObjects}
		addrs = [3]core.Addr{{Port: 1}, {Port: 2}, {Port: 3}}
		return finishChain(eng, stacks, addrs, kv, cache, relay, cli, rounds, tr)
	case "catloop":
		hub := catloop.NewHub(eng)
		ips := [4]wire.IPAddr{
			{127, 0, 0, 1}, {127, 0, 0, 2}, {127, 0, 0, 3}, {127, 0, 0, 4},
		}
		kv := catloop.New(hub, eng.NewNode("kv"), ips[0])
		cache := catloop.New(hub, eng.NewNode("cache"), ips[1])
		relay := catloop.New(hub, eng.NewNode("relay"), ips[2])
		cli := catloop.New(hub, eng.NewNode("client"), ips[3])
		kv.AttachDTrace(tr.Hop("kv"))
		cache.AttachDTrace(tr.Hop("cache"))
		relay.AttachDTrace(tr.Hop("relay"))
		cli.AttachDTrace(tr.Hop("client"))
		stacks = chainStacks{
			handoff: false,
			heapOf: func() int {
				return kv.Heap().LiveObjects() + cache.Heap().LiveObjects() +
					relay.Heap().LiveObjects() + cli.Heap().LiveObjects()
			},
		}
		addrs = [3]core.Addr{
			{IP: ips[2], Port: 1}, {IP: ips[1], Port: 2}, {IP: ips[0], Port: 3},
		}
		return finishChain(eng, stacks, addrs, kv, cache, relay, cli, rounds, tr)
	default:
		return chainResult{}, fmt.Errorf("chain: unknown transport %q", transport)
	}
}

// chainLibOS is the slice of the libOS surface the chain stages need plus
// the node identity for CPU accounting.
type chainLibOS interface {
	core.LibOS
	PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error)
	Node() *sim.Node
	Telemetry() *telemetry.Registry
}

func finishChain(eng *sim.Engine, stacks chainStacks, addrs [3]core.Addr,
	kv, cache, relay, cli chainLibOS, rounds int, tr *dtrace.Tracer) (chainResult, error) {
	var kvSt, cacheSt, relaySt chain.Stats
	var stageErr error
	keep := func(err error) {
		if err != nil && stageErr == nil {
			stageErr = err
		}
	}
	kvTr := chain.Trace{Hop: tr.Hop("kv"), Clock: kv.Node()}
	cacheTr := chain.Trace{Hop: tr.Hop("cache"), Clock: cache.Node()}
	relayTr := chain.Trace{Hop: tr.Hop("relay"), Clock: relay.Node()}
	cliTr := chain.Trace{Hop: tr.Hop("client"), Clock: cli.Node()}
	eng.Spawn(kv.Node(), func() {
		keep(chain.KV(kv, addrs[2], stacks.handoff, chainKeys, chainValSize, &kvSt, kvTr))
	})
	eng.Spawn(cache.Node(), func() {
		keep(chain.Cache(cache, addrs[1], addrs[2], stacks.handoff, &cacheSt, cacheTr))
	})
	eng.Spawn(relay.Node(), func() {
		keep(chain.Relay(relay, addrs[0], addrs[1], stacks.handoff, &relaySt, relayTr))
	})
	var res chain.Result
	eng.Spawn(cli.Node(), func() {
		var err error
		res, err = chain.Client(cli, addrs[0], stacks.handoff,
			rounds, chainWarmup, chainKeys, chainValSize, cli.Node(), cliTr)
		keep(err)
	})
	eng.Run()
	if stageErr != nil {
		return chainResult{}, stageErr
	}
	total := float64(rounds + chainWarmup)
	h := &Hist{}
	for _, d := range res.RTTs {
		h.Add(d)
	}
	if n := stacks.heapOf(); n != 0 {
		return chainResult{}, fmt.Errorf("chain leaked %d buffers", n)
	}
	name := "catmem"
	if !stacks.handoff {
		name = "catloop"
	}
	r := chainResult{
		transport: name,
		rtt:       h,
		relayNs:   float64(relay.Node().Busy()) / total,
		cacheNs:   float64(cache.Node().Busy()) / total,
		kvNs:      float64(kv.Node().Busy()) / float64(kvSt.Requests),
		hitRate:   100 * float64(cacheSt.Hits) / float64(cacheSt.Requests),
	}
	if tr != nil {
		r.hists = map[string]*telemetry.Histogram{
			"kv":     kv.Telemetry().Histogram("core.qtoken_latency_ns"),
			"cache":  cache.Telemetry().Histogram("core.qtoken_latency_ns"),
			"relay":  relay.Telemetry().Histogram("core.qtoken_latency_ns"),
			"client": cli.Telemetry().Histogram("core.qtoken_latency_ns"),
		}
	}
	return r, nil
}

// ChainRun is one transport's headline numbers, exported for the root
// benchmark harness.
type ChainRun struct {
	RTTAvg, RTTP99 time.Duration
	RelayNsPerReq  float64
}

// RunChain drives the service chain once over the named transport
// ("catmem" or "catloop").
func RunChain(transport string, rounds int) (ChainRun, error) {
	r, err := runChain(transport, rounds, nil)
	if err != nil {
		return ChainRun{}, err
	}
	return ChainRun{
		RTTAvg:        r.rtt.Mean(),
		RTTP99:        r.rtt.P99(),
		RelayNsPerReq: r.relayNs,
	}, nil
}

// Chain benchmarks the three-stage microservice chain over the two
// intra-host transports: shared-memory queues (catmem, zero-copy handoff)
// vs loopback TCP (catloop, full protocol stacks). Fig-5 style: per-hop
// CPU cost is the story, end-to-end RTT the corroboration.
func Chain() ([]*Table, error) {
	t := &Table{
		Title: "Service chain: client -> relay -> cache -> KV, intra-host transports",
		Note: "catmem hands buffers through shared memory (zero-copy); " +
			"catloop runs full TCP stacks over an in-process wire",
		Header: []string{"transport", "rtt avg (µs)", "rtt p99 (µs)",
			"relay ns/req", "cache ns/req", "kv ns/req", "cache hit %"},
	}
	const rounds = 2000
	for _, transport := range []string{"catmem", "catloop"} {
		r, err := runChain(transport, rounds, nil)
		if err != nil {
			return nil, fmt.Errorf("chain %s: %w", transport, err)
		}
		t.AddRow(r.transport,
			Micros(r.rtt.Mean()), Micros(r.rtt.P99()),
			fmt.Sprintf("%.0f", r.relayNs),
			fmt.Sprintf("%.0f", r.cacheNs),
			fmt.Sprintf("%.0f", r.kvNs),
			fmt.Sprintf("%.0f", r.hitRate))
	}
	return []*Table{t}, nil
}
