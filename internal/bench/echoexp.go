package bench

import (
	"fmt"
	"time"

	"demikernel/internal/apps/echo"
	"demikernel/internal/baseline"
	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/rdmadev"
	"demikernel/internal/simnet"
	"demikernel/internal/telemetry"
	"demikernel/internal/wire"
)

var (
	benchServerIP = wire.IPAddr{10, 9, 0, 1}
	benchClientIP = wire.IPAddr{10, 9, 0, 2}
	benchPort     = uint16(7000)
)

// EchoOpts configures one echo measurement.
type EchoOpts struct {
	MsgSize int
	// MsgFraming makes the server accumulate full messages before
	// replying (NetPIPE semantics); zero echoes as data arrives.
	MsgFraming     int
	Rounds, Warmup int
	Log            bool // synchronous server-side logging (Figure 7)
	Switch         simnet.SwitchParams
	Seed           uint64
}

// DefaultEchoOpts is the Figure 5 configuration (64 B messages; the paper
// runs 1M echoes, we run enough for stable virtual-time numbers).
func DefaultEchoOpts() EchoOpts {
	return EchoOpts{MsgSize: 64, Rounds: 2000, Warmup: 200, Switch: SwitchEth(), Seed: 1}
}

// EchoRow is one system's echo result.
type EchoRow struct {
	System   string
	Avg, P99 time.Duration
	// OSTimePerIO is the CPU time both hosts spent per I/O operation
	// (4 I/Os per echo round: client send/recv + server recv/send) — the
	// paper's "time spent in Demikernel" split.
	OSTimePerIO time.Duration
	Throughput  float64 // echoes per second during measurement
}

// RunEcho measures one system's echo RTT.
func RunEcho(sys System, opts EchoOpts) (EchoRow, error) {
	if sys.Storage != opts.Log {
		sys.Storage = opts.Log
	}
	tb := NewTestbed(opts.Seed, opts.Switch)
	server := tb.NewStack(sys, "server", benchServerIP)
	client := tb.NewStack(sys, "client", benchClientIP)
	var serverFR, clientFR *telemetry.FlightRecorder
	if telemetrySink != nil {
		serverFR = instrumentStack(server, 0)
		clientFR = instrumentStack(client, 1)
	}
	tb.SeedARP()
	addr := core.Addr{IP: benchServerIP, Port: benchPort}
	scfg := echo.ServerConfig{Addr: addr, MessageSize: opts.MsgFraming}
	if opts.Log {
		scfg.LogName = "echo.log"
	}
	if sys.Dgram {
		tb.Eng.Spawn(server.Node, func() { echo.ServerUDP(server.OS, scfg) })
	} else {
		tb.Eng.Spawn(server.Node, func() { echo.Server(server.OS, scfg) })
	}
	var res echo.ClientResult
	var cerr error
	tb.Eng.Spawn(client.Node, func() {
		if sys.Dgram {
			res, cerr = echo.ClientUDP(client.OS, addr, opts.MsgSize, opts.Rounds, opts.Warmup, client.Node)
		} else {
			res, cerr = echo.Client(client.OS, addr, opts.MsgSize, opts.Rounds, opts.Warmup, client.Node)
		}
		tb.Eng.Stop()
	})
	tb.Eng.Run()
	if cerr != nil {
		return EchoRow{}, fmt.Errorf("%s: %w", sys.Name, cerr)
	}
	if telemetrySink != nil {
		dumpStack(sys.Name+"/server", server, serverFR)
		dumpStack(sys.Name+"/client", client, clientFR)
	}
	h := &Hist{}
	h.AddAll(res.RTTs)
	totalRounds := opts.Rounds + opts.Warmup
	busy := server.Node.Busy() + client.Node.Busy()
	row := EchoRow{
		System:      sys.Name,
		Avg:         h.Mean(),
		P99:         h.P99(),
		OSTimePerIO: busy / time.Duration(4*totalRounds),
	}
	if h.Mean() > 0 {
		row.Throughput = 1 / h.Mean().Seconds()
	}
	return row, nil
}

// RunRawDPDKEcho measures the testpmd floor.
func RunRawDPDKEcho(msgSize, rounds int) EchoRow {
	tb := NewTestbed(2, SwitchEth())
	nf, np := tb.Eng.NewNode("testpmd"), tb.Eng.NewNode("pinger")
	pf := tb.newDPDK(nf, LinkDPDK())
	pp := tb.newDPDK(np, LinkDPDK())
	nFrames := (msgSize + 1499) / 1500
	tb.Eng.Spawn(nf, baseline.MessageForwarder(pf, nFrames))
	var rtts []time.Duration
	tb.Eng.Spawn(np, func() {
		rtts = baseline.RawDPDKPing(pp, pf.MAC(), msgSize, rounds)
		tb.Eng.Stop()
	})
	tb.Eng.Run()
	h := &Hist{}
	h.AddAll(rtts)
	return EchoRow{System: "Raw DPDK", Avg: h.Mean(), P99: h.P99()}
}

// RunRawRDMAEcho measures the perftest floor.
func RunRawRDMAEcho(msgSize, rounds int) EchoRow {
	tb := NewTestbed(3, SwitchEth())
	nr, np := tb.Eng.NewNode("responder"), tb.Eng.NewNode("pinger")
	nicR := tb.newRDMA(nr, LinkRDMA())
	nicP := tb.newRDMA(np, LinkRDMA())
	heapR := memory.NewHeap(nicR.RegisterMemory)
	heapP := memory.NewHeap(nicP.RegisterMemory)
	l, _ := nicR.ListenCM(1)
	tb.Eng.Spawn(nr, func() {
		var qp *rdmadev.QP
		for {
			var ok bool
			if qp, ok = l.Accept(); ok {
				break
			}
			if !nr.Park(simInfinity()) {
				return
			}
		}
		baseline.PerftestResponder(nicR, qp, heapR, msgSize+64, 32)()
	})
	var rtts []time.Duration
	tb.Eng.Spawn(np, func() {
		qp, err := nicP.ConnectCM(nicR.MAC(), 1)
		if err != nil {
			return
		}
		rtts = baseline.PerftestPing(nicP, qp, heapP, msgSize, rounds)
		tb.Eng.Stop()
	})
	tb.Eng.Run()
	h := &Hist{}
	h.AddAll(rtts)
	return EchoRow{System: "Raw RDMA", Avg: h.Mean(), P99: h.P99()}
}

// Fig5 regenerates Figure 5: 64 B echo RTTs across every system.
func Fig5() (*Table, error) {
	opts := DefaultEchoOpts()
	systems := []System{
		SysLinux(baseline.EnvNative),
		SysCatnap(baseline.EnvNative),
		SysCatmint(0),
		SysCatnipUDP(),
		SysCatnipTCP(),
		SysERPC(),
		SysShenango(),
		SysCaladan(),
	}
	t := &Table{
		Title:  "Figure 5: echo latencies (64B)",
		Note:   "paper (µs): Linux 30.4  Catnap 16.9  Catmint 5.3  Catnip-UDP 6.0  Catnip-TCP 7.1  eRPC 5.1  Shenango 10.2  Caladan 5.4  rawDPDK 4.8  rawRDMA 3.4",
		Header: []string{"system", "avg RTT (µs)", "p99 (µs)", "OS time/I/O (ns)"},
	}
	for _, sys := range systems {
		row, err := RunEcho(sys, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.System, Micros(row.Avg), Micros(row.P99),
			fmt.Sprintf("%d", row.OSTimePerIO.Nanoseconds()))
	}
	raw := RunRawDPDKEcho(opts.MsgSize, opts.Rounds)
	t.AddRow(raw.System, Micros(raw.Avg), Micros(raw.P99), "0")
	raw = RunRawRDMAEcho(opts.MsgSize, opts.Rounds)
	t.AddRow(raw.System, Micros(raw.Avg), Micros(raw.P99), "0")
	return t, nil
}

// Fig6a regenerates Figure 6a: echo on the Windows cluster (WSL profile,
// CX-4 InfiniBand, SX6036 switch).
func Fig6a() (*Table, error) {
	opts := DefaultEchoOpts()
	opts.Switch = SwitchIB()
	t := &Table{
		Title:  "Figure 6a: echo latencies on Windows (64B)",
		Note:   "paper shape: WSL-POSIX >> Catnap(WSL) >> Catpaw (RDMA, ~27x faster than WSL)",
		Header: []string{"system", "avg RTT (µs)", "p99 (µs)"},
	}
	for _, sys := range []System{
		SysLinux(baseline.EnvWSL),
		SysCatnap(baseline.EnvWSL),
		SysCatpaw(),
	} {
		row, err := RunEcho(sys, opts)
		if err != nil {
			return nil, err
		}
		name := row.System
		if name == "Linux" {
			name = "WSL POSIX"
		}
		t.AddRow(name, Micros(row.Avg), Micros(row.P99))
	}
	return t, nil
}

// Fig6b regenerates Figure 6b: echo in an Azure VM (virtualized DPDK via
// the SmartNIC, bare-metal InfiniBand for RDMA).
func Fig6b() (*Table, error) {
	opts := DefaultEchoOpts()
	t := &Table{
		Title:  "Figure 6b: echo latencies in an Azure VM (64B)",
		Note:   "paper shape: Linux-VM worst; Catnip ~5x better than VM kernel; Catmint native (bare-metal IB)",
		Header: []string{"system", "avg RTT (µs)", "p99 (µs)"},
	}
	for _, sys := range []System{
		SysLinux(baseline.EnvAzureVM),
		SysCatnap(baseline.EnvAzureVM),
		SysCatnipVM(),
		SysCatmint(0), // bare-metal InfiniBand path
	} {
		row, err := RunEcho(sys, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.System, Micros(row.Avg), Micros(row.P99))
	}
	return t, nil
}

// Fig7 regenerates Figure 7: echo with synchronous logging to disk.
func Fig7() (*Table, error) {
	opts := DefaultEchoOpts()
	opts.Log = true
	opts.Rounds = 1000
	t := &Table{
		Title:  "Figure 7: echo latencies with synchronous logging (64B)",
		Note:   "paper shape: Demikernel gives lower latency to remote disk than Linux to remote memory (~30µs)",
		Header: []string{"system", "avg RTT (µs)", "p99 (µs)"},
	}
	systems := []System{
		SysLinux(baseline.EnvNative),
		SysCatnap(baseline.EnvNative),
		catmintCattree(),
		catnipCattreeUDP(),
		catnipCattreeTCP(),
	}
	for _, sys := range systems {
		sys.Storage = true
		row, err := RunEcho(sys, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.System, Micros(row.Avg), Micros(row.P99))
	}
	return t, nil
}

func catmintCattree() System {
	s := SysCatmint(0)
	s.Name = "Catmint x Cattree"
	s.Storage = true
	return s
}

func catnipCattreeTCP() System {
	s := SysCatnipTCP()
	s.Name = "Catnip (TCP) x Cattree"
	s.Storage = true
	return s
}

func catnipCattreeUDP() System {
	s := SysCatnipUDP()
	s.Name = "Catnip (UDP) x Cattree"
	s.Storage = true
	return s
}
