package bench

import (
	"fmt"

	"demikernel/internal/apps/kv"
	"demikernel/internal/baseline"
	"demikernel/internal/core"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
	"demikernel/internal/ycsb"
)

// RedisOpts configures the Figure 11 runs (paper: 64 B values, 1 M keys,
// 500 k accesses per operation; scaled for simulation runtime).
type RedisOpts struct {
	Keys, Ops, ValueSize int
	AOF                  bool
}

// DefaultRedisOpts scales the paper's parameters for tractable runtime.
func DefaultRedisOpts() RedisOpts {
	return RedisOpts{Keys: 10000, Ops: 4000, ValueSize: 64}
}

// RunRedis measures GET and SET throughput (separate passes, like
// redis-benchmark) for one server stack.
func RunRedis(sys System, opts RedisOpts) (getOps, setOps float64, err error) {
	for _, pass := range []string{"SET", "GET"} {
		tput, perr := runRedisPass(sys, opts, pass)
		if perr != nil {
			return 0, 0, fmt.Errorf("%s %s: %w", sys.Name, pass, perr)
		}
		if pass == "GET" {
			getOps = tput
		} else {
			setOps = tput
		}
	}
	return getOps, setOps, nil
}

func runRedisPass(sys System, opts RedisOpts, pass string) (float64, error) {
	tb := NewTestbed(11, SwitchEth())
	serverIP := wire.IPAddr{10, 11, 0, 1}
	clientIP := wire.IPAddr{10, 11, 0, 2}
	sys.Storage = opts.AOF
	srv := tb.NewStack(sys, "redis", serverIP)
	// Client and server machines use matching configurations (paper §7.1:
	// "some Demikernel libOSes require both clients and servers run the
	// same libOS").
	cliSys := sys
	cliSys.Storage = false
	cli := tb.NewStack(cliSys, "bench-client", clientIP)
	tb.SeedARP()
	addr := core.Addr{IP: serverIP, Port: 6379}
	cfg := kv.ServerConfig{Addr: addr}
	if opts.AOF {
		cfg.AOFName = "appendonly.aof"
	}
	var stats kv.ServerStats
	tb.Eng.Spawn(srv.Node, func() { kv.Server(srv.OS, cfg, &stats) })

	var res kv.BenchResult
	var cerr error
	tb.Eng.Spawn(cli.Node, func() {
		defer tb.Eng.Stop()
		c, err := kv.Dial(cli.OS, addr)
		if err != nil {
			cerr = err
			return
		}
		rng := sim.NewRand(17)
		keys := ycsb.NewUniform(opts.Keys, rng)
		// Preload a slice of the keyspace so GETs hit.
		for i := 0; i < opts.Keys/10; i++ {
			if err := c.Set(ycsb.Key(i), make([]byte, opts.ValueSize)); err != nil {
				cerr = err
				return
			}
		}
		isSet := func(i int) bool { return pass == "SET" }
		keyFn := func(i int) []byte {
			if pass == "GET" {
				return ycsb.Key(keys.Next() % (opts.Keys / 10))
			}
			return ycsb.Key(keys.Next())
		}
		res, cerr = c.Benchmark(opts.Ops, opts.ValueSize, keyFn, isSet, cli.Node)
		c.Close()
	})
	tb.Eng.Run()
	if cerr != nil {
		return 0, cerr
	}
	return res.OpsPerSec(), nil
}

// Fig11 regenerates Figure 11: Redis GET/SET throughput in-memory and with
// the fsync-per-write append-only file.
func Fig11() (*Table, error) {
	t := &Table{
		Title:  "Figure 11: Redis benchmark throughput (64B values)",
		Note:   "paper shape: in-memory Catmint ~2x Linux, Catnip +20%; with AOF, Demikernel keeps ~90% of unmodified in-memory Redis throughput while Linux collapses",
		Header: []string{"system", "mode", "GET kops/s", "SET kops/s"},
	}
	opts := DefaultRedisOpts()
	type cfg struct {
		sys  System
		mode string
		aof  bool
	}
	cfgs := []cfg{
		{SysLinux(baseline.EnvNative), "in-memory", false},
		{SysCatnap(baseline.EnvNative), "in-memory", false},
		{SysCatmint(0), "in-memory", false},
		{SysCatnipTCP(), "in-memory", false},
		{SysLinux(baseline.EnvNative), "AOF (fsync/SET)", true},
		{SysCatnap(baseline.EnvNative), "AOF (fsync/SET)", true},
		{catmintCattree(), "AOF (fsync/SET)", true},
		{catnipCattreeTCP(), "AOF (fsync/SET)", true},
	}
	for _, c := range cfgs {
		o := opts
		o.AOF = c.aof
		get, set, err := RunRedis(c.sys, o)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.sys.Name, c.mode, fmt.Sprintf("%.0f", get/1e3), fmt.Sprintf("%.0f", set/1e3))
	}
	return t, nil
}
