package bench

// Multi-core scale-out experiment: one server with N cores behind an RSS
// multi-queue DPDK port runs N shared-nothing Catnip stacks that all listen
// on the same (addr, port) SO_REUSEPORT-style; closed-loop clients are
// RSS-steered across the cores. Because cores share nothing — no locks, no
// cross-core handoffs — aggregate throughput should scale near-linearly,
// which is the multi-core story the paper's single-core-per-stack execution
// model (§3.1) implies but does not measure. This experiment measures it.

import (
	"fmt"
	"time"

	"demikernel/internal/apps/echo"
	"demikernel/internal/apps/kv"
	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/multicore"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// ScaleOutOpts configures the scale-out sweep.
type ScaleOutOpts struct {
	// CoreCounts is the sweep (default 1, 2, 4, 8).
	CoreCounts []int
	// FlowsPerCore is the number of closed-loop clients steered at each
	// core — enough concurrency per core to keep it busy.
	FlowsPerCore int
	// Rounds/Warmup are per-flow echo rounds (warmup excluded).
	Rounds, Warmup int
	// MsgSize is the echo payload.
	MsgSize int
	// KVOps is per-flow KV operations; ValueSize the SET payload.
	KVOps, ValueSize int
	Seed             uint64
}

// DefaultScaleOutOpts sizes the sweep for stable virtual-time numbers.
func DefaultScaleOutOpts() ScaleOutOpts {
	return ScaleOutOpts{
		CoreCounts:   []int{1, 2, 4, 8},
		FlowsPerCore: 4,
		Rounds:       1000,
		Warmup:       100,
		MsgSize:      64,
		KVOps:        600,
		ValueSize:    64,
		Seed:         21,
	}
}

// ScaleOutRow is one core count's measurement.
type ScaleOutRow struct {
	Cores int
	Flows int
	// Aggregate is total ops/s summed over flows; PerCore splits it by the
	// serving core (RSS-steered, so attribution is exact).
	Aggregate float64
	PerCore   []float64
	Avg, P99  time.Duration
	// Elapsed is the virtual wall clock consumed by the whole run.
	Elapsed time.Duration
	// CoreStats snapshots every server core's counters at the end.
	CoreStats []multicore.CoreStats
}

// scaleOutCluster is the common topology: an N-core server group and one
// single-core Catnip client host per flow, ARP warmed both ways.
type scaleOutCluster struct {
	eng     *sim.Engine
	grp     *multicore.Group
	svc     core.Addr
	clients []*Stack
	targets []int // flow -> serving core
}

var scaleServerIP = wire.IPAddr{10, 21, 0, 1}

func newScaleOutCluster(cores int, opts ScaleOutOpts) *scaleOutCluster {
	eng := sim.NewEngine(opts.Seed)
	sw := simnet.NewSwitch(eng, SwitchEth())
	grp := multicore.New(eng, sw, "server", scaleServerIP, multicore.Config{
		Cores: cores,
		Link:  LinkDPDK(),
	})
	c := &scaleOutCluster{
		eng: eng,
		grp: grp,
		svc: core.Addr{IP: scaleServerIP, Port: benchPort},
	}
	flows := cores * opts.FlowsPerCore
	for j := 0; j < flows; j++ {
		ip := wire.IPAddr{10, 21, 1, byte(j + 1)}
		node := eng.NewNode(fmt.Sprintf("client%d", j))
		port := dpdkdev.Attach(sw, node, LinkDPDK(), 1<<16, 0)
		l := catnip.New(node, port, catnip.DefaultConfig(ip))
		grp.SeedARP(ip, port.MAC())
		l.SeedARP(scaleServerIP, grp.MAC())
		c.clients = append(c.clients, &Stack{OS: l, Node: node, IP: ip})
		c.targets = append(c.targets, j%cores)
	}
	return c
}

// localAddr picks flow j's source endpoint so RSS steers it at its target
// core.
func (c *scaleOutCluster) localAddr(j int) core.Addr {
	sport := c.grp.SourcePortFor(c.clients[j].IP, c.svc.Port, c.targets[j], 40000)
	return core.Addr{IP: c.clients[j].IP, Port: sport}
}

// run spawns one client body per flow and runs the engine until all flows
// finish.
func (c *scaleOutCluster) run(body func(j int) error) error {
	var firstErr error
	remaining := len(c.clients)
	for j := range c.clients {
		j := j
		c.eng.Spawn(c.clients[j].Node, func() {
			if err := body(j); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("flow %d: %w", j, err)
			}
			remaining--
			if remaining == 0 {
				c.eng.Stop()
			}
		})
	}
	c.eng.Run()
	return firstErr
}

// finish folds per-flow throughputs and latencies into a row.
func (c *scaleOutCluster) finish(cores int, tput []float64, rtts [][]time.Duration) ScaleOutRow {
	row := ScaleOutRow{
		Cores:     cores,
		Flows:     len(c.clients),
		PerCore:   make([]float64, cores),
		Elapsed:   c.eng.Now().Sub(0),
		CoreStats: c.grp.Stats(),
	}
	h := &Hist{}
	for j := range c.clients {
		row.Aggregate += tput[j]
		row.PerCore[c.targets[j]] += tput[j]
		h.AddAll(rtts[j])
	}
	row.Avg, row.P99 = h.Mean(), h.P99()
	if telemetrySink != nil {
		fmt.Fprintf(telemetrySink, "\n-- telemetry: scale-out %d cores --\n", cores)
		for _, snap := range c.grp.CoreTelemetry() {
			snap.WriteText(telemetrySink)
		}
		c.grp.MergedTelemetry().WriteText(telemetrySink)
		c.grp.Port.Telemetry().Snapshot().WriteText(telemetrySink)
	}
	return row
}

// RunScaleOutEcho measures 64B-style echo across cores server cores.
func RunScaleOutEcho(cores int, opts ScaleOutOpts) (ScaleOutRow, error) {
	c := newScaleOutCluster(cores, opts)
	c.grp.Spawn(func(sc *multicore.Core) {
		echo.Server(sc.OS, echo.ServerConfig{Addr: c.svc, MaxConns: 2 * opts.FlowsPerCore})
	})
	tput := make([]float64, len(c.clients))
	rtts := make([][]time.Duration, len(c.clients))
	err := c.run(func(j int) error {
		res, err := echo.ClientFrom(c.clients[j].OS, c.localAddr(j), c.svc,
			opts.MsgSize, opts.Rounds, opts.Warmup, c.clients[j].Node)
		if err != nil {
			return err
		}
		if res.Elapsed > 0 {
			tput[j] = float64(opts.Rounds) / res.Elapsed.Seconds()
		}
		rtts[j] = res.RTTs
		return nil
	})
	if err != nil {
		return ScaleOutRow{}, err
	}
	return c.finish(cores, tput, rtts), nil
}

// RunScaleOutKV measures Redis-style GET or SET across cores server cores.
// Each core runs its own store (shared-nothing sharding, as a Redis Cluster
// shard per core); each flow works a private key space on its serving core.
func RunScaleOutKV(cores int, set bool, opts ScaleOutOpts) (ScaleOutRow, error) {
	c := newScaleOutCluster(cores, opts)
	c.grp.Spawn(func(sc *multicore.Core) {
		var stats kv.ServerStats
		kv.Server(sc.OS, kv.ServerConfig{Addr: c.svc, MaxConns: 2 * opts.FlowsPerCore}, &stats)
	})
	const keysPerFlow = 16
	tput := make([]float64, len(c.clients))
	rtts := make([][]time.Duration, len(c.clients))
	err := c.run(func(j int) error {
		cl, err := kv.DialFrom(c.clients[j].OS, c.localAddr(j), c.svc)
		if err != nil {
			return err
		}
		defer cl.Close()
		keyFn := func(i int) []byte {
			return []byte(fmt.Sprintf("flow%d:key%d", j, i%keysPerFlow))
		}
		if !set {
			// Populate the working set so GETs hit.
			for i := 0; i < keysPerFlow; i++ {
				if err := cl.Set(keyFn(i), make([]byte, opts.ValueSize)); err != nil {
					return err
				}
			}
		}
		res, err := cl.Benchmark(opts.KVOps, opts.ValueSize, keyFn,
			func(int) bool { return set }, c.clients[j].Node)
		if err != nil {
			return err
		}
		tput[j] = res.OpsPerSec()
		rtts[j] = res.RTTs
		return nil
	})
	if err != nil {
		return ScaleOutRow{}, err
	}
	return c.finish(cores, tput, rtts), nil
}

// minMax returns the smallest and largest per-core throughput share.
func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// kops formats ops/s as thousands.
func kops(v float64) string { return fmt.Sprintf("%.1f", v/1e3) }

// ScaleOut runs the full sweep: echo and KV GET/SET at each core count,
// plus a per-core utilization breakdown of the widest echo run.
func ScaleOut() ([]*Table, error) {
	opts := DefaultScaleOutOpts()

	echoT := &Table{
		Title:  "Scale-out: 64B echo, RSS multi-queue, shared-nothing cores",
		Note:   fmt.Sprintf("%d closed-loop flows per core, RSS-steered; speedup is aggregate vs 1 core", opts.FlowsPerCore),
		Header: []string{"cores", "flows", "agg kops/s", "per-core min/max", "avg RTT (µs)", "p99 (µs)", "speedup"},
	}
	var base float64
	var widest ScaleOutRow
	for _, n := range opts.CoreCounts {
		row, err := RunScaleOutEcho(n, opts)
		if err != nil {
			return nil, fmt.Errorf("scaleout echo %d cores: %w", n, err)
		}
		if n == opts.CoreCounts[0] {
			base = row.Aggregate
		}
		widest = row
		lo, hi := minMax(row.PerCore)
		echoT.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", row.Flows),
			kops(row.Aggregate), kops(lo)+" / "+kops(hi),
			Micros(row.Avg), Micros(row.P99),
			fmt.Sprintf("%.2fx", row.Aggregate/base))
	}

	kvT := &Table{
		Title:  "Scale-out: KV store (Redis-style), one shard per core",
		Note:   fmt.Sprintf("%dB values, %d ops per flow; shared-nothing shards behind one RSS address", opts.ValueSize, opts.KVOps),
		Header: []string{"op", "cores", "agg kops/s", "avg RTT (µs)", "p99 (µs)", "speedup"},
	}
	for _, set := range []bool{false, true} {
		op := "GET"
		if set {
			op = "SET"
		}
		var kvBase float64
		for _, n := range opts.CoreCounts {
			row, err := RunScaleOutKV(n, set, opts)
			if err != nil {
				return nil, fmt.Errorf("scaleout kv %s %d cores: %w", op, n, err)
			}
			if n == opts.CoreCounts[0] {
				kvBase = row.Aggregate
			}
			kvT.AddRow(op, fmt.Sprintf("%d", n), kops(row.Aggregate),
				Micros(row.Avg), Micros(row.P99),
				fmt.Sprintf("%.2fx", row.Aggregate/kvBase))
		}
	}

	utilT := &Table{
		Title:  fmt.Sprintf("Scale-out: per-core breakdown (echo, %d cores)", widest.Cores),
		Note:   "busy = virtual CPU time charged; polls/empty from the core's coroutine scheduler; rx/tx from its queue pair",
		Header: []string{"core", "busy (ms)", "util %", "sched polls", "empty scans", "spawned", "rx pkts", "tx pkts", "ring-full drops"},
	}
	for _, cs := range widest.CoreStats {
		util := 0.0
		if widest.Elapsed > 0 {
			util = 100 * float64(cs.Busy) / float64(widest.Elapsed)
		}
		utilT.AddRow(fmt.Sprintf("%d", cs.Core),
			fmt.Sprintf("%.2f", float64(cs.Busy)/1e6),
			fmt.Sprintf("%.1f", util),
			fmt.Sprintf("%d", cs.Sched.Polls),
			fmt.Sprintf("%d", cs.Sched.EmptyScans),
			fmt.Sprintf("%d", cs.Sched.Spawned),
			fmt.Sprintf("%d", cs.Queue.RxPackets),
			fmt.Sprintf("%d", cs.Queue.TxPackets),
			fmt.Sprintf("%d", cs.Queue.RxRingFull))
	}

	return []*Table{echoT, kvT, utilT}, nil
}
