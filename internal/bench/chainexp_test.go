package bench

import "testing"

// TestChainSmoke runs the service chain over both transports with a small
// round count — the CI smoke job. Catmem must beat catloop on end-to-end
// RTT: that gap is the whole reason the shared-memory libOS exists.
func TestChainSmoke(t *testing.T) {
	const rounds = 200
	shm, err := runChain("catmem", rounds, nil)
	if err != nil {
		t.Fatalf("catmem: %v", err)
	}
	tcp, err := runChain("catloop", rounds, nil)
	if err != nil {
		t.Fatalf("catloop: %v", err)
	}
	if shm.rtt.Mean() >= tcp.rtt.Mean() {
		t.Errorf("catmem rtt %v not below catloop %v", shm.rtt.Mean(), tcp.rtt.Mean())
	}
	// Per-hop CPU: the relay stage is a pure forwarder, so its ns/req is
	// the cleanest transport-cost comparison.
	if shm.relayNs >= tcp.relayNs {
		t.Errorf("catmem relay %.0f ns/req not below catloop %.0f", shm.relayNs, tcp.relayNs)
	}
	if shm.hitRate != tcp.hitRate {
		t.Errorf("hit rates diverge: %.1f%% vs %.1f%%", shm.hitRate, tcp.hitRate)
	}
}
