package bench

import (
	"fmt"
	"io"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/telemetry"
)

// telemetrySink, when set, makes every experiment dump its stacks'
// telemetry (registry snapshots + flight-recorder spans) after the run —
// the demi-bench --telemetry flag. All dumped values are virtual-time, so
// two same-seed runs write byte-identical dumps.
var telemetrySink io.Writer

// SetTelemetrySink directs post-run telemetry dumps to w (nil disables).
func SetTelemetrySink(w io.Writer) { telemetrySink = w }

// telemetrer is any libOS (or device) exposing a metric registry.
type telemetrer interface {
	Telemetry() *telemetry.Registry
}

// tokener is any libOS exposing its qtoken table for instrumentation.
type tokener interface {
	Tokens() *core.TokenTable
}

// innerer matches the baseline wrappers (baseline.Kernelized).
type innerer interface {
	Inner() demi.Drivable
}

// components unwraps a stack's libOS into its constituent instrumented
// parts: baseline wrappers are peeled, Combined splits into net + storage.
func components(os any) []any {
	switch v := os.(type) {
	case innerer:
		return components(v.Inner())
	case *demi.Combined:
		return append(components(v.Net), components(v.Stor)...)
	default:
		return []any{os}
	}
}

// instrumentStack attaches a flight recorder to every qtoken table in the
// stack and labels its spans with coreID. Returns nil if nothing in the
// stack is instrumentable.
func instrumentStack(st *Stack, coreID int) *telemetry.FlightRecorder {
	fr := telemetry.NewFlightRecorder(4096, 8)
	attached := false
	for _, c := range components(st.OS) {
		if t, ok := c.(tokener); ok {
			t.Tokens().Instrument(st.Node, coreID)
			t.Tokens().SetRecorder(fr)
			attached = true
		}
	}
	if !attached {
		return nil
	}
	return fr
}

// dumpStack writes the stack's registry snapshots and flight-recorder dump
// to the telemetry sink.
func dumpStack(title string, st *Stack, fr *telemetry.FlightRecorder) {
	w := telemetrySink
	if w == nil {
		return
	}
	fmt.Fprintf(w, "\n-- telemetry: %s --\n", title)
	for _, c := range components(st.OS) {
		if t, ok := c.(telemetrer); ok && t.Telemetry() != nil {
			t.Telemetry().Snapshot().WriteText(w)
		}
	}
	if fr != nil {
		fr.WriteDump(w)
	}
}
