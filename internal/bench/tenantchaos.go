package bench

// Adversarial-tenant chaos soak (the multi-tenant isolation gate): three
// tenants share one Catnip stack — a well-behaved echo victim, a
// well-behaved KV victim, and a hostile tenant that floods the flow table,
// forges qtokens against the victims' table, abuses its heap quota, double-
// and foreign-frees buffers, and bursts past its push-rate cap. The run
// asserts the isolation contract end to end: every attack is rejected with
// its documented sentinel error, the victims lose nothing and leak
// nothing, the victims' p99 under attack stays within TenantP99Bound of a
// same-seed solo baseline (DESIGN.md §12), and same-seed replay is
// byte-identical.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"demikernel/internal/apps/echo"
	"demikernel/internal/apps/kv"
	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
	"demikernel/internal/tenant"
	"demikernel/internal/wire"
)

// TenantP99Bound is the stated interference bound: the victims' p99 echo
// latency under a co-resident hostile tenant must stay within this factor
// of the same-seed solo baseline. Stated (and explained) in DESIGN.md §12.
const TenantP99Bound = 3.0

// TenantChaosOpts configures one adversarial-tenant soak run.
type TenantChaosOpts struct {
	Seed      uint64
	Rounds    int // victim echo rounds (one latency sample each)
	KVOps     int // victim KV SET+GET pairs, interleaved
	MsgSize   int
	ValueSize int
}

// DefaultTenantChaosOpts sizes the soak so every attack class fires many
// times while staying fast enough for -race CI.
func DefaultTenantChaosOpts() TenantChaosOpts {
	return TenantChaosOpts{
		Seed:      41,
		Rounds:    2000,
		KVOps:     500,
		MsgSize:   64,
		ValueSize: 64,
	}
}

// TenantChaosReport is one run's outcome (solo baseline + contended run).
type TenantChaosReport struct {
	Seed                 uint64
	VictimOK, VictimErrs int // echo victim rounds
	KVOK, KVErrs         int // kv victim operations
	AttackerOK           int // the attacker's own legitimate traffic

	// Rejections by attack class; the soak fails if any is zero (the run
	// would have proved nothing about that attack).
	FloodRejects       int // connect flood -> ErrTenantQuota
	ForgeryRejects     int // cross-tenant + guessed qtokens -> ErrBadQToken
	AllocRejects       int // alloc abuse -> ErrNoMem
	DoubleFreeRejects  int // double free -> ErrDoubleFree
	ForeignFreeRejects int // freeing a victim's buffer -> ErrForeignBuf
	RateRejects        int // push burst past the bucket -> ErrTenantQuota

	SoloP99, ContendedP99 time.Duration

	Outstanding int // shared-stack qtokens unconsumed after drain (must be 0)
	LiveBufs    int // shared-stack DMA buffers live after drain (must be 0)

	// Telemetry is the deterministic dump of both runs; two invocations
	// with the same seed must produce identical bytes.
	Telemetry string
}

// tenantWorld is the per-run outcome of one world execution.
type tenantWorld struct {
	victimOK, victimErrs int
	kvOK, kvErrs         int
	attackerOK           int
	flood, forgery       int
	alloc, dfree, ffree  int
	rate                 int
	hist                 Hist
	outstanding          int
	liveBufs             int
	telemetry            string
	err                  error
}

// attackErr wraps an isolation failure: an attack that was NOT rejected,
// or was rejected with the wrong sentinel.
func attackErr(attack string, got error, want error) error {
	return fmt.Errorf("tenantchaos: %s attack: got %v, want %v", attack, got, want)
}

// runTenantWorld executes one world: two victim tenants (echo + KV) on a
// shared Catnip stack, with the hostile tenant active only when attack is
// set. The victim-side call sequence is identical in both modes, so the
// solo run is a true baseline.
func runTenantWorld(opts TenantChaosOpts, attack bool) *tenantWorld {
	w := &tenantWorld{}
	tb := NewTestbed(opts.Seed, SwitchEth())
	echoSrv := tb.NewStack(SysCatnipTCP(), "mt-echo-srv", wire.IPAddr{10, 40, 0, 1})
	kvSrv := tb.NewStack(catnipCattreeTCP(), "mt-kv-srv", wire.IPAddr{10, 40, 0, 2})
	host := tb.NewStack(SysCatnipTCP(), "mt-host", wire.IPAddr{10, 40, 0, 3})
	tb.SeedARP()

	netos, ok := host.OS.(demi.NetOS)
	if !ok {
		w.err = fmt.Errorf("tenantchaos: shared stack is not a NetOS")
		return w
	}

	// Tenants: the victims get 4x the attacker's scheduler weight; the
	// attacker gets tight caps so every abuse lands on a quota edge.
	treg := tenant.NewRegistry()
	treg.AttachTable(netos.Tokens())
	victim := treg.New(1, "echo-victim", tenant.Limits{Weight: 4})
	kvVict := treg.New(2, "kv-victim", tenant.Limits{Weight: 4})
	hostile := treg.New(3, "attacker", tenant.Limits{
		Weight:    1,
		HeapBytes: 64 << 10,
		MaxFlows:  4,
		MaxTokens: 16,
		PushRate:  200000, // 200k pushes/s
		PushBurst: 4,
	})
	hostReg := stackTelemetry(host.OS)
	victim.Publish(hostReg)
	kvVict.Publish(hostReg)
	hostile.Publish(hostReg)
	vv := tenant.NewView(victim, netos)
	kvv := tenant.NewView(kvVict, netos)
	av := tenant.NewView(hostile, netos)

	// Servers (trusted hosts, host principal).
	echoAddr := core.Addr{IP: echoSrv.IP, Port: 7400}
	tb.Eng.Spawn(echoSrv.Node, func() {
		echo.Server(echoSrv.OS, echo.ServerConfig{Addr: echoAddr})
	})
	kvAddr := core.Addr{IP: kvSrv.IP, Port: 6380}
	aofName, aofCleanup, err := tempAOF()
	if err != nil {
		w.err = err
		return w
	}
	defer aofCleanup()
	var kvStats kv.ServerStats
	tb.Eng.Spawn(kvSrv.Node, func() {
		kv.Server(kvSrv.OS, kv.ServerConfig{Addr: kvAddr, AOFName: aofName}, &kvStats)
	})

	// The shared host's single node main interleaves all three tenants.
	tb.Eng.Spawn(host.Node, func() {
		w.err = tenantWorldMain(w, opts, attack, host, vv, kvv, av, echoAddr, kvAddr)
	})
	tb.Eng.Run()
	if w.err != nil {
		return w
	}

	// Leak accounting on the shared stack: every qtoken consumed, every
	// DMA buffer freed, every tenant's region drained.
	w.outstanding = netos.Tokens().Outstanding()
	w.liveBufs = host.OS.Heap().LiveObjects()
	for _, tn := range []*tenant.Tenant{victim, kvVict, hostile} {
		if used := host.OS.Heap().TenantStats(tn.ID()).Used; used != 0 {
			w.err = fmt.Errorf("tenantchaos: tenant %d leaked %d heap bytes", tn.ID(), used)
			return w
		}
		if n := tn.Flows(); n != 0 {
			w.err = fmt.Errorf("tenantchaos: tenant %d leaked %d flow charges", tn.ID(), n)
			return w
		}
		if n := tn.InFlight(); n != 0 {
			w.err = fmt.Errorf("tenantchaos: tenant %d leaked %d token charges", tn.ID(), n)
			return w
		}
	}

	// Deterministic telemetry dump: shared stack (tenant counters
	// included), then the servers.
	var sb strings.Builder
	for _, st := range []struct {
		name string
		s    *Stack
	}{{"mt-host", host}, {"mt-echo-srv", echoSrv}, {"mt-kv-srv", kvSrv}} {
		fmt.Fprintf(&sb, "== %s ==\n", st.name)
		stackTelemetry(st.s.OS).Snapshot().WriteText(&sb)
	}
	w.telemetry = sb.String()
	return w
}

// tenantWorldMain is the shared host's node main: victim echo rounds with
// per-round latency samples, interleaved KV victim ops, and (in attack
// mode) one hostile-tenant action between rounds.
func tenantWorldMain(w *tenantWorld, opts TenantChaosOpts, attack bool,
	host *Stack, vv, kvv, av *tenant.View, echoAddr, kvAddr core.Addr) error {

	// Victim setup: one long-lived echo connection plus a canary buffer
	// the attacker will try to free out from under it.
	echoConn, err := chaosConnect(vv, echoAddr, 8)
	if err != nil {
		return fmt.Errorf("tenantchaos: victim dial: %w", err)
	}
	canary := vv.TenantHeap().CopyFrom([]byte("victim canary"))
	canaryLive := true
	defer func() {
		// Error exits anywhere below must not strand the canary slot; the
		// happy path frees it explicitly as part of teardown verification.
		if canaryLive {
			vv.TenantHeap().TryFree(canary)
		}
	}()
	kvCl, err := chaosDial(kvv, kvAddr, 8)
	if err != nil {
		return fmt.Errorf("tenantchaos: kv victim dial: %w", err)
	}

	// Attacker setup: fill the flow quota (its held connections also keep
	// four extra TCP coroutine sets competing for the scheduler), keep one
	// for its own traffic.
	var atk *attacker
	if attack {
		if atk, err = newAttacker(av, echoAddr, opts.MsgSize); err != nil {
			return err
		}
		atk.canary = canary // the victim buffer it will try to free
	}

	for i := 0; i < opts.Rounds; i++ {
		// Every 8th round the attacker forges against the victim's live
		// pop token mid-round (the strongest forgery: the op exists and is
		// owned by another tenant).
		var forge func(core.QToken) error
		if atk != nil && i%8 == 1 {
			forge = func(qt core.QToken) error { return atk.forge(w, qt) }
		}
		start := host.Node.Now()
		rerr := tenantEchoRound(vv, echoConn, i, opts.MsgSize, forge)
		w.hist.Add(host.Node.Now().Sub(start))
		if rerr != nil {
			w.victimErrs++
			if strings.Contains(rerr.Error(), "corrupted") || strings.Contains(rerr.Error(), "forgery") {
				return rerr
			}
			vv.Close(echoConn)
			if echoConn, err = chaosConnect(vv, echoAddr, 8); err != nil {
				return err
			}
		} else {
			w.victimOK++
		}

		// KV victim: SET then verifying GET, spread across the run.
		if opts.KVOps > 0 && i%(opts.Rounds/opts.KVOps+1) == 0 {
			if kerr := tenantKVOp(kvCl, w, opts.ValueSize); kerr != nil {
				return kerr
			}
		}

		// One hostile action per round, cycling through the attack
		// classes deterministically.
		if atk != nil {
			if aerr := atk.step(w, i); aerr != nil {
				return aerr
			}
		}
	}

	// Drain and verify teardown: the victims release everything; the
	// attacker's cleanup must leave nothing behind either.
	canaryLive = false
	if err := vv.TenantHeap().TryFree(canary); err != nil {
		return fmt.Errorf("tenantchaos: canary free: %w", err)
	}
	kvCl.Close()
	if err := vv.Close(echoConn); err != nil {
		return fmt.Errorf("tenantchaos: victim close: %w", err)
	}
	if atk != nil {
		atk.canary = nil
		if err := atk.teardown(); err != nil {
			return err
		}
	}
	return nil
}

// tenantEchoRound is one verified victim echo round through its view. The
// optional forge callback is handed the victim's live pop token so the
// co-resident attacker can attempt redemption mid-flight; the round then
// proves the token still completes for its owner.
func tenantEchoRound(v *tenant.View, qd core.QDesc, round, size int, forge func(core.QToken) error) error {
	msg, err := v.TenantHeap().TryCopyFrom(chaosPattern(round, size))
	if err != nil {
		return fmt.Errorf("tenantchaos: victim alloc failed under attack: %w", err)
	}
	qt, err := v.Push(qd, core.SGA(msg))
	if err != nil {
		msg.Free()
		return err
	}
	if ev, err := v.Wait(qt); err != nil {
		return err
	} else if ev.Err != nil {
		msg.Free()
		return ev.Err
	}
	msg.Free()
	want := chaosPattern(round, size)
	got := make([]byte, 0, size)
	for len(got) < size {
		pqt, err := v.Pop(qd)
		if err != nil {
			return err
		}
		if forge != nil {
			if ferr := forge(pqt); ferr != nil {
				return ferr
			}
			forge = nil
		}
		ev, err := v.Wait(pqt)
		if err != nil {
			return err
		}
		if ev.Err != nil {
			return ev.Err
		}
		if len(ev.SGA.Segs) == 0 {
			return core.ErrQueueClosed
		}
		got = append(got, ev.SGA.Flatten()...)
		for _, b := range ev.SGA.Segs {
			if ferr := v.TenantHeap().TryFree(b); ferr != nil {
				return fmt.Errorf("tenantchaos: victim rx free: %w", ferr)
			}
		}
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("tenantchaos: round %d reply corrupted", round)
	}
	return nil
}

// tenantKVOp is one victim KV SET followed by a verifying GET. With no
// fault injection in this soak, any error or mismatch fails the run.
func tenantKVOp(cl *kv.Client, w *tenantWorld, valueSize int) error {
	k := w.kvOK % chaosKeys
	val := chaosValue(k, w.kvOK, valueSize)
	if err := cl.Set(chaosKey(k), val); err != nil {
		w.kvErrs++
		return fmt.Errorf("tenantchaos: kv set: %w", err)
	}
	got, err := cl.Get(chaosKey(k))
	if err != nil {
		w.kvErrs++
		return fmt.Errorf("tenantchaos: kv get: %w", err)
	}
	if !bytes.Equal(got, val) {
		return fmt.Errorf("tenantchaos: kv key %d corrupted under attack", k)
	}
	w.kvOK++
	return nil
}

// attacker is the hostile tenant's state: a full flow table, a working
// connection for its own traffic, and a scratch heap region.
type attacker struct {
	v      *tenant.View
	addr   core.Addr
	size   int
	held   []core.QDesc  // connections pinning the flow quota
	conn   core.QDesc    // the attacker's own working connection
	round  int           // its own echo round counter
	canary *memory.Buf   // victim buffer it keeps trying to free
	hoard  []*memory.Buf // alloc-abuse hoard (freed every cycle)
}

// newAttacker dials until the attacker's flow quota is exactly full: the
// last dial must be rejected with ErrTenantQuota.
func newAttacker(v *tenant.View, addr core.Addr, size int) (*attacker, error) {
	a := &attacker{v: v, addr: addr, size: size}
	max := v.Tenant().Limits().MaxFlows
	for i := 0; i < max; i++ {
		qd, err := chaosConnect(v, addr, 8)
		if err != nil {
			return nil, fmt.Errorf("tenantchaos: attacker dial %d: %w", i, err)
		}
		a.held = append(a.held, qd)
	}
	a.conn = a.held[0]
	return a, nil
}

// forge attempts to redeem the victim's live qtoken under the attacker's
// principal, plus neighboring guessed token values. Every attempt must be
// rejected with ErrBadQToken, and the guess must not consume the op.
func (a *attacker) forge(w *tenantWorld, victimQT core.QToken) error {
	for _, qt := range []core.QToken{victimQT, victimQT + 1, victimQT - 1} {
		if _, err := a.v.Wait(qt); !errors.Is(err, core.ErrBadQToken) {
			return attackErr("forgery", err, core.ErrBadQToken)
		}
		w.forgery++
	}
	return nil
}

// step runs one hostile action, cycling deterministically through the
// attack classes. Every class asserts its documented sentinel.
func (a *attacker) step(w *tenantWorld, i int) error {
	switch i % 5 {
	case 0: // connect flood: the flow table is pinned full, so dial -> quota
		qd, err := a.v.Socket(core.SockStream)
		if err != nil {
			return err
		}
		if qt, err := a.v.Connect(qd, a.addr); err == nil {
			// The quota failed to reject: settle the stray connect so its
			// token is not stranded, then report the missing enforcement.
			a.v.Wait(qt)
			return attackErr("connect flood", nil, core.ErrTenantQuota)
		} else if !errors.Is(err, core.ErrTenantQuota) {
			return attackErr("connect flood", err, core.ErrTenantQuota)
		}
		w.flood++
		return a.v.Close(qd)
	case 1: // alloc abuse: hoard until the region quota rejects, then release
		for {
			b, err := a.v.TenantHeap().TryAlloc(4096)
			if err != nil {
				if !errors.Is(err, memory.ErrNoMem) {
					return attackErr("alloc abuse", err, memory.ErrNoMem)
				}
				w.alloc++
				break
			}
			a.hoard = append(a.hoard, b)
			if len(a.hoard) > 1<<12 {
				return fmt.Errorf("tenantchaos: heap quota never enforced")
			}
		}
		for _, b := range a.hoard {
			if err := a.v.TenantHeap().TryFree(b); err != nil {
				return fmt.Errorf("tenantchaos: attacker hoard free: %w", err)
			}
		}
		a.hoard = a.hoard[:0]
		return nil
	case 2: // double free + foreign free
		b, err := a.v.TenantHeap().TryAlloc(64)
		if err != nil {
			return fmt.Errorf("tenantchaos: attacker alloc: %w", err)
		}
		if err := a.v.TenantHeap().TryFree(b); err != nil {
			return err
		}
		if err := a.v.TenantHeap().TryFree(b); !errors.Is(err, memory.ErrDoubleFree) {
			return attackErr("double free", err, memory.ErrDoubleFree)
		}
		w.dfree++
		if a.canary != nil {
			if err := a.v.TenantHeap().TryFree(a.canary); !errors.Is(err, memory.ErrForeignBuf) {
				return attackErr("foreign free", err, memory.ErrForeignBuf)
			}
			w.ffree++
		}
		return nil
	case 3: // push-rate burst: pushes past the bucket depth must be rejected
		var accepted []core.QToken
		var sent []*memory.Buf
		rejected := 0
		for k := 0; k < 8; k++ {
			buf, err := a.v.TenantHeap().TryCopyFrom(chaosPattern(a.round, a.size))
			if err != nil {
				return fmt.Errorf("tenantchaos: attacker burst alloc: %w", err)
			}
			qt, perr := a.v.Push(a.conn, core.SGA(buf))
			if perr != nil {
				// Complete-or-error: the rejected caller keeps the buffer.
				if ferr := a.v.TenantHeap().TryFree(buf); ferr != nil {
					return fmt.Errorf("tenantchaos: rejected push lost the buffer: %w", ferr)
				}
				if !errors.Is(perr, core.ErrTenantQuota) {
					return attackErr("push-rate burst", perr, core.ErrTenantQuota)
				}
				rejected++
				continue
			}
			accepted = append(accepted, qt)
			sent = append(sent, buf)
		}
		w.rate += rejected
		// Settle its own traffic: wait out the pushes (ownership of the
		// acked buffers returns here, so free them), pop the echoes.
		for j, qt := range accepted {
			ev, err := a.v.Wait(qt)
			if err != nil {
				return fmt.Errorf("tenantchaos: attacker push wait: %w", err)
			}
			if ev.Err != nil {
				return fmt.Errorf("tenantchaos: attacker push failed: %w", ev.Err)
			}
			if ferr := a.v.TenantHeap().TryFree(sent[j]); ferr != nil {
				return fmt.Errorf("tenantchaos: attacker push buf free: %w", ferr)
			}
		}
		need := len(accepted) * a.size
		for got := 0; got < need; {
			pqt, err := a.v.Pop(a.conn)
			if err != nil {
				return fmt.Errorf("tenantchaos: attacker pop: %w", err)
			}
			ev, err := a.v.Wait(pqt)
			if err != nil || ev.Err != nil {
				return fmt.Errorf("tenantchaos: attacker pop wait: %v %v", err, ev.Err)
			}
			got += ev.SGA.TotalLen()
			ev.SGA.Free()
		}
		a.round++
		w.attackerOK++
		return nil
	default: // guessed-token scan: redemption probing leaks nothing
		for g := core.QToken(1); g <= 3; g++ {
			if _, _, err := a.v.TryTake(core.QToken(uint64(a.round*31) + uint64(g)*1009)); !errors.Is(err, core.ErrBadQToken) {
				return attackErr("token scan", err, core.ErrBadQToken)
			}
			w.forgery++
		}
		return nil
	}
}

// teardown closes the attacker's connections; like any tenant, its exit
// must release every flow charge.
func (a *attacker) teardown() error {
	for _, qd := range a.held {
		if err := a.v.Close(qd); err != nil {
			return fmt.Errorf("tenantchaos: attacker close: %w", err)
		}
	}
	return nil
}

// RunTenantChaos runs the solo baseline and the contended world on the
// same seed and verifies every isolation invariant.
func RunTenantChaos(opts TenantChaosOpts) (*TenantChaosReport, error) {
	solo := runTenantWorld(opts, false)
	if solo.err != nil {
		return nil, fmt.Errorf("tenantchaos seed %d (solo): %w", opts.Seed, solo.err)
	}
	cont := runTenantWorld(opts, true)
	rep := &TenantChaosReport{
		Seed:     opts.Seed,
		VictimOK: cont.victimOK, VictimErrs: cont.victimErrs,
		KVOK: cont.kvOK, KVErrs: cont.kvErrs,
		AttackerOK:   cont.attackerOK,
		FloodRejects: cont.flood, ForgeryRejects: cont.forgery,
		AllocRejects: cont.alloc, DoubleFreeRejects: cont.dfree,
		ForeignFreeRejects: cont.ffree, RateRejects: cont.rate,
		SoloP99: solo.hist.P99(), ContendedP99: cont.hist.P99(),
		Outstanding: cont.outstanding, LiveBufs: cont.liveBufs,
		Telemetry: "--- solo ---\n" + solo.telemetry + "--- contended ---\n" + cont.telemetry,
	}
	if cont.err != nil {
		return rep, fmt.Errorf("tenantchaos seed %d: %w", opts.Seed, cont.err)
	}

	// The victims must not lose a single operation to the attacker.
	if rep.VictimErrs != 0 || rep.VictimOK != opts.Rounds {
		return rep, fmt.Errorf("tenantchaos seed %d: victim lost rounds under attack: %d ok, %d errs of %d",
			opts.Seed, rep.VictimOK, rep.VictimErrs, opts.Rounds)
	}
	if rep.KVErrs != 0 || rep.KVOK == 0 {
		return rep, fmt.Errorf("tenantchaos seed %d: kv victim: %d ok, %d errs", opts.Seed, rep.KVOK, rep.KVErrs)
	}
	// Every attack class must have fired and been rejected.
	for _, c := range []struct {
		name string
		n    int
	}{
		{"connect flood", rep.FloodRejects}, {"qtoken forgery", rep.ForgeryRejects},
		{"alloc abuse", rep.AllocRejects}, {"double free", rep.DoubleFreeRejects},
		{"foreign free", rep.ForeignFreeRejects}, {"push-rate burst", rep.RateRejects},
	} {
		if c.n == 0 {
			return rep, fmt.Errorf("tenantchaos seed %d: attack class %q never exercised", opts.Seed, c.name)
		}
	}
	// No leaks on the shared stack.
	if rep.Outstanding != 0 || rep.LiveBufs != 0 {
		return rep, fmt.Errorf("tenantchaos seed %d: %d outstanding qtokens, %d live bufs",
			opts.Seed, rep.Outstanding, rep.LiveBufs)
	}
	// The stated interference bound.
	if float64(rep.ContendedP99) > TenantP99Bound*float64(rep.SoloP99) {
		return rep, fmt.Errorf("tenantchaos seed %d: victim p99 %v exceeds %.1fx solo baseline %v",
			opts.Seed, rep.ContendedP99, TenantP99Bound, rep.SoloP99)
	}
	return rep, nil
}

// TenantChaosSeeds are the fixed seeds the soak replays (pinned in CI).
var TenantChaosSeeds = []uint64{41, 42, 43}

// TenantChaos is the demi-bench runner: each seed runs twice and the two
// telemetry dumps must match byte-for-byte.
func TenantChaos() ([]*Table, error) {
	t := &Table{
		Title:  "Adversarial-tenant soak: hostile tenant co-resident with echo/kv victims",
		Note:   fmt.Sprintf("victim p99 bound %.1fx solo; every run twice per seed; 'replay' requires byte-identical telemetry", TenantP99Bound),
		Header: []string{"seed", "victim ok/err", "kv ok/err", "attacks rejected (flood/forge/alloc/dfree/ffree/rate)", "solo p99", "attacked p99", "replay"},
	}
	for _, seed := range TenantChaosSeeds {
		opts := DefaultTenantChaosOpts()
		opts.Seed = seed
		r1, err := RunTenantChaos(opts)
		if err != nil {
			return nil, err
		}
		r2, err := RunTenantChaos(opts)
		if err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
		if r1.Telemetry != r2.Telemetry {
			return nil, fmt.Errorf("tenantchaos seed %d: replay diverged", seed)
		}
		t.AddRow(fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d/%d", r1.VictimOK, r1.VictimErrs),
			fmt.Sprintf("%d/%d", r1.KVOK, r1.KVErrs),
			fmt.Sprintf("%d/%d/%d/%d/%d/%d", r1.FloodRejects, r1.ForgeryRejects,
				r1.AllocRejects, r1.DoubleFreeRejects, r1.ForeignFreeRejects, r1.RateRejects),
			fmt.Sprintf("%v", r1.SoloP99), fmt.Sprintf("%v", r1.ContendedP99),
			"byte-identical")
	}
	return []*Table{t}, nil
}
