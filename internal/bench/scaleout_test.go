package bench

import (
	"reflect"
	"testing"
)

// TestScaleOutDeterminism replays a 4-core echo experiment twice with the
// same seed: multi-core scheduling (round-robin baton across equal-clock
// cores) plus RSS steering must reproduce byte-identical results.
func TestScaleOutDeterminism(t *testing.T) {
	opts := DefaultScaleOutOpts()
	opts.Rounds, opts.Warmup = 200, 20
	a, err := RunScaleOutEcho(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScaleOutEcho(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestScaleOutMonotonic checks the tentpole acceptance: aggregate echo
// throughput increases monotonically 1 -> 2 -> 4 cores and reaches at
// least 2.5x at 4 cores.
func TestScaleOutMonotonic(t *testing.T) {
	opts := DefaultScaleOutOpts()
	opts.Rounds, opts.Warmup = 400, 40
	var prev float64
	var base float64
	for _, n := range []int{1, 2, 4} {
		row, err := RunScaleOutEcho(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%d cores: %.0f ops/s (per-core %v)", n, row.Aggregate, row.PerCore)
		if row.Aggregate <= prev {
			t.Fatalf("throughput not monotonic: %d cores %.0f <= %.0f", n, row.Aggregate, prev)
		}
		for c, tp := range row.PerCore {
			if tp == 0 {
				t.Fatalf("%d cores: core %d served no traffic (RSS steering broken)", n, c)
			}
		}
		prev = row.Aggregate
		if n == 1 {
			base = row.Aggregate
		}
	}
	if prev < 2.5*base {
		t.Fatalf("4-core speedup %.2fx < 2.5x", prev/base)
	}
}

// TestScaleOutKV exercises the KV path at 2 cores: both shards serve, and
// GETs hit the values their own flows wrote.
func TestScaleOutKV(t *testing.T) {
	opts := DefaultScaleOutOpts()
	opts.KVOps = 100
	row, err := RunScaleOutKV(2, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	for c, tp := range row.PerCore {
		if tp == 0 {
			t.Fatalf("core %d served no KV traffic", c)
		}
	}
}
