package bench

import (
	"fmt"

	"demikernel/internal/apps/echo"
	"demikernel/internal/baseline"
	"demikernel/internal/core"
)

// netpipeSizes are the Figure 8 sweep points.
var netpipeSizes = []int{64, 256, 1024, 4096, 16384, 65536, 262144}

// netpipeRounds scales rounds down as messages grow (NetPIPE style).
func netpipeRounds(size int) int {
	switch {
	case size <= 1024:
		return 400
	case size <= 16384:
		return 150
	default:
		return 40
	}
}

// RunNetPipe measures ping-pong bandwidth (2*size bytes per RTT) for one
// system at one message size, NetPIPE's definition.
func RunNetPipe(sys System, size int) (float64, error) {
	opts := DefaultEchoOpts()
	opts.MsgSize = size
	opts.MsgFraming = size // NetPIPE echoes whole messages
	opts.Rounds = netpipeRounds(size)
	opts.Warmup = opts.Rounds / 10
	row, err := RunEcho(sys, opts)
	if err != nil {
		return 0, err
	}
	return Gbps(2*size, row.Avg), nil
}

// Fig8 regenerates Figure 8: NetPIPE bandwidth vs message size.
func Fig8() (*Table, error) {
	type series struct {
		name string
		sys  *System // nil = raw device series
		raw  func(size int) EchoRow
		max  int // largest supported message (0 = unlimited)
	}
	catmintBig := SysCatmint(1 << 20)
	catnipUDP := SysCatnipUDP()
	catnipTCP := SysCatnipTCP()
	sers := []series{
		{name: "testpmd", raw: func(size int) EchoRow { return RunRawDPDKEcho(size, netpipeRounds(size)) }},
		{name: "perftest", raw: func(size int) EchoRow { return RunRawRDMAEcho(size, netpipeRounds(size)) }},
		{name: "Catmint", sys: &catmintBig},
		{name: "Catnip (UDP)", sys: &catnipUDP, max: 65507},
		{name: "Catnip (TCP)", sys: &catnipTCP},
	}
	t := &Table{
		Title:  "Figure 8: NetPIPE bandwidth (Gbps) vs message size",
		Note:   "paper @256KB (Gbps): testpmd 40.3, perftest 37.7, Catmint 31.5 (-17%), Catnip-UDP 33.3, Catnip-TCP 29.7 (-26% vs testpmd); UDP capped at 64KB datagrams",
		Header: []string{"size (B)"},
	}
	for _, s := range sers {
		t.Header = append(t.Header, s.name)
	}
	for _, size := range netpipeSizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, s := range sers {
			if s.max > 0 && size > s.max {
				row = append(row, "-")
				continue
			}
			var bw float64
			if s.raw != nil {
				r := s.raw(size)
				bw = Gbps(2*size, r.Avg)
			} else {
				var err error
				bw, err = RunNetPipe(*s.sys, size)
				if err != nil {
					return nil, fmt.Errorf("%s @%d: %w", s.name, size, err)
				}
			}
			row = append(row, fmt.Sprintf("%.1f", bw))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig9 regenerates Figure 9: latency vs throughput under increasing load.
// Load rises by adding closed-loop client connections from distinct hosts
// (1 server core throughout, as the paper configures).
func Fig9() (*Table, error) {
	systems := []System{
		SysCatnipUDP(),
		SysCatnipTCP(),
		SysCatmint(0),
		SysERPC(),
		SysShenango(),
		SysCaladan(),
	}
	clientCounts := []int{1, 2, 4, 8, 16, 32}
	t := &Table{
		Title:  "Figure 9: latency vs throughput (64B echo)",
		Note:   "paper shape: throughput saturates per-system; Catnip-TCP outperforms Caladan and approaches eRPC; Catmint and Catnip-UDP latency-optimized",
		Header: []string{"system", "clients", "kops/s", "avg lat (µs)", "p99 (µs)"},
	}
	for _, sys := range systems {
		for _, nc := range clientCounts {
			tput, h, err := RunLoad(sys, nc, 300)
			if err != nil {
				return nil, fmt.Errorf("%s x%d: %w", sys.Name, nc, err)
			}
			t.AddRow(sys.Name, fmt.Sprintf("%d", nc),
				fmt.Sprintf("%.0f", tput/1e3), Micros(h.Mean()), Micros(h.P99()))
		}
	}
	return t, nil
}

// runLoad drives nClients closed-loop 64 B echo clients (each on its own
// host) against one server and returns aggregate throughput (ops/s) and
// the latency distribution.
func RunLoad(sys System, nClients, roundsPerClient int) (float64, *Hist, error) {
	tb := NewTestbed(uint64(100+nClients), SwitchEth())
	server := tb.NewStack(sys, "server", benchServerIP)
	var clients []*Stack
	for i := 0; i < nClients; i++ {
		ip := benchClientIP
		ip[2] = byte(1 + i/250)
		ip[3] = byte(2 + i%250)
		clients = append(clients, tb.NewStack(sys, fmt.Sprintf("client%d", i), ip))
	}
	tb.SeedARP()
	addr := core.Addr{IP: benchServerIP, Port: benchPort}
	scfg := echo.ServerConfig{Addr: addr, MaxConns: nClients + 4}
	if sys.Dgram {
		tb.Eng.Spawn(server.Node, func() { echo.ServerUDP(server.OS, scfg) })
	} else {
		tb.Eng.Spawn(server.Node, func() { echo.Server(server.OS, scfg) })
	}
	results := make([]echo.ClientResult, nClients)
	var failure error
	done := 0
	for i, cl := range clients {
		i, cl := i, cl
		tb.Eng.Spawn(cl.Node, func() {
			var err error
			if sys.Dgram {
				results[i], err = echo.ClientUDP(cl.OS, addr, 64, roundsPerClient, roundsPerClient/10, cl.Node)
			} else {
				results[i], err = echo.Client(cl.OS, addr, 64, roundsPerClient, roundsPerClient/10, cl.Node)
			}
			if err != nil && failure == nil {
				failure = err
			}
			done++
			if done == nClients {
				tb.Eng.Stop()
			}
		})
	}
	start := tb.Eng.Now()
	tb.Eng.Run()
	if failure != nil {
		return 0, nil, failure
	}
	elapsed := tb.Eng.Now().Sub(start)
	h := &Hist{}
	ops := 0
	for _, r := range results {
		h.AddAll(r.RTTs)
		ops += len(r.RTTs)
	}
	tput := 0.0
	if elapsed > 0 {
		tput = float64(ops) / elapsed.Seconds()
	}
	return tput, h, nil
}

// baselineUnused silences the import when raw series are inlined.
var _ = baseline.EnvNative
