package bench

import (
	"fmt"

	"demikernel/internal/apps/txnstore"
	"demikernel/internal/baseline"
	"demikernel/internal/core"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
	"demikernel/internal/ycsb"
)

// TxnOpts configures Figure 12 (paper: YCSB-t workload F, 64 B keys, 700 B
// values, quorum writes to 3 replicas; scaled op count).
type TxnOpts struct {
	Keys, Txns, ValueSize int
	Zipf                  bool
}

// DefaultTxnOpts scales the paper's configuration.
func DefaultTxnOpts() TxnOpts {
	return TxnOpts{Keys: 2000, Txns: 1500, ValueSize: 700}
}

// RunTxnStore measures per-transaction latency for workload F on one
// stack: 1 client, 3 replicas.
func RunTxnStore(sys System, opts TxnOpts) (*Hist, error) {
	tb := NewTestbed(13, SwitchEth())
	clientIP := wire.IPAddr{10, 12, 0, 100}
	cli := tb.NewStack(sys, "txn-client", clientIP)
	var addrs []core.Addr
	var replicaStacks []*Stack
	for i := 0; i < 3; i++ {
		ip := wire.IPAddr{10, 12, 0, byte(1 + i)}
		st := tb.NewStack(sys, fmt.Sprintf("replica%d", i), ip)
		replicaStacks = append(replicaStacks, st)
		addrs = append(addrs, core.Addr{IP: ip, Port: 7000})
	}
	tb.SeedARP()
	for i, st := range replicaStacks {
		r := txnstore.NewReplica()
		st := st
		addr := addrs[i]
		tb.Eng.Spawn(st.Node, func() { r.Serve(st.OS, addr) })
	}
	h := &Hist{}
	var cerr error
	tb.Eng.Spawn(cli.Node, func() {
		defer tb.Eng.Stop()
		rng := sim.NewRand(23)
		c, err := txnstore.Dial(cli.OS, addrs, rng.Fork())
		if err != nil {
			cerr = err
			return
		}
		// Preload keys through the protocol so replicas agree.
		value := make([]byte, opts.ValueSize)
		for i := 0; i < opts.Keys/10; i++ {
			txn := c.Begin()
			txn.Put(ycsb.Key(i), value)
			if ok, err := txn.Commit(); err != nil || !ok {
				cerr = fmt.Errorf("preload: %v", err)
				return
			}
		}
		var keys ycsb.KeyChooser = ycsb.NewUniform(opts.Keys/10, rng.Fork())
		if opts.Zipf {
			keys = ycsb.NewZipf(opts.Keys/10, 0.99, rng.Fork())
		}
		w := ycsb.WorkloadF(keys, rng.Fork())
		for i := 0; i < opts.Txns; i++ {
			op := w.Next()
			start := cli.Node.Now()
			txn := c.Begin()
			v, err := txn.Get(ycsb.Key(op.Key))
			if err != nil {
				cerr = err
				return
			}
			if op.Kind == ycsb.OpRMW {
				mod := append([]byte(nil), v...)
				if len(mod) == 0 {
					mod = make([]byte, opts.ValueSize)
				}
				mod[0]++
				txn.Put(ycsb.Key(op.Key), mod)
				if _, err := txn.Commit(); err != nil {
					cerr = err
					return
				}
			}
			h.Add(cli.Node.Now().Sub(start))
		}
		c.Close()
	})
	tb.Eng.Run()
	if cerr != nil {
		return nil, fmt.Errorf("%s: %w", sys.Name, cerr)
	}
	return h, nil
}

// Fig12 regenerates Figure 12: TxnStore YCSB-t latency across transports.
func Fig12() (*Table, error) {
	t := &Table{
		Title:  "Figure 12: TxnStore YCSB-t transaction latency (workload F, 700B values, 3-way puts)",
		Note:   "paper shape: Linux TCP worst; Catnap −69% vs TCP; Catmint and Catnip competitive with (and beating) the custom RDMA stack",
		Header: []string{"system", "avg (µs)", "p99 (µs)"},
	}
	opts := DefaultTxnOpts()
	for _, sys := range []System{
		SysLinux(baseline.EnvNative),
		SysTxnStoreRDMA(),
		SysCatnap(baseline.EnvNative),
		SysCatmint(0),
		SysCatnipTCP(),
	} {
		name := sys.Name
		if name == "Linux" {
			name = "Linux (TCP)"
		}
		h, err := RunTxnStore(sys, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, Micros(h.Mean()), Micros(h.P99()))
	}
	return t, nil
}
