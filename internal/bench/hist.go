// Package bench is the experiment harness: one runner per table and figure
// in the paper's evaluation (§7), sharing topology builders, load
// generators and latency histograms. Every experiment runs in virtual time
// on the deterministic simulator, so results are exactly reproducible.
package bench

import (
	"fmt"
	"sort"
	"time"
)

// Hist summarizes a latency distribution.
type Hist struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (h *Hist) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// AddAll records many samples.
func (h *Hist) AddAll(ds []time.Duration) {
	h.samples = append(h.samples, ds...)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Hist) Count() int { return len(h.samples) }

func (h *Hist) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Mean returns the average.
func (h *Hist) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (h *Hist) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	idx := int(float64(len(h.samples))*p/100) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// P50, P99, P999 and Max are convenience accessors.
func (h *Hist) P50() time.Duration  { return h.Percentile(50) }
func (h *Hist) P99() time.Duration  { return h.Percentile(99) }
func (h *Hist) P999() time.Duration { return h.Percentile(99.9) }

// Max returns the largest sample.
func (h *Hist) Max() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Micros renders a duration as microseconds with one decimal.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// Gbps converts bytes transferred over a duration into gigabits/second.
func Gbps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e9
}
