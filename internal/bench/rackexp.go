package bench

// Rack-scale two-layer scheduling experiment: a ToR switch model fronting
// N multi-core hosts serving one replicated KV VIP, sweeping the policy
// matrix — inter-server placement at the switch (random, round-robin,
// power-of-k over piggybacked load) crossed with intra-server dispatch
// (c-FCFS vs DARC). The RackSched claim this reproduces: load signals at
// the switch fix cross-server imbalance, core reservations at the host fix
// head-of-line blocking within a server, and the composition beats either
// layer alone on the short-request tail.

import (
	"fmt"
	"time"

	"demikernel/internal/rack"
	"demikernel/internal/reqsched"
)

// RackOpts configures the rack sweep.
type RackOpts struct {
	Servers, CoresPerServer, Clients int
	Requests                         int
	MeanThink                        time.Duration
	MaxSize                          int
	Reserved                         int // DARC reserved cores per host
	Seed                             uint64
}

// DefaultRackOpts sizes the rack so the policy gaps are unambiguous while
// staying fast enough for the full bench run.
func DefaultRackOpts() RackOpts {
	return RackOpts{
		Servers:        8,
		CoresPerServer: 2,
		Clients:        48,
		Requests:       150,
		MeanThink:      time.Microsecond,
		MaxSize:        64 << 10,
		Reserved:       1,
		Seed:           42,
	}
}

// runRack executes one cell of the policy matrix.
func runRack(opts RackOpts, placer rack.Placer, host reqsched.Policy) (*rack.Result, error) {
	cfg := rack.DefaultConfig()
	cfg.Servers = opts.Servers
	cfg.CoresPerServer = opts.CoresPerServer
	cfg.Clients = opts.Clients
	cfg.Placer = placer
	cfg.HostPolicy = host
	cfg.Seed = opts.Seed
	cfg.Workload.Requests = opts.Requests
	cfg.Workload.MeanThink = opts.MeanThink
	cfg.Workload.MaxSize = opts.MaxSize
	return rack.Run(cfg)
}

// Rack runs the policy matrix and renders the comparison tables.
func Rack() ([]*Table, error) {
	opts := DefaultRackOpts()
	type cell struct {
		placer rack.Placer
		host   reqsched.Policy
	}
	cells := []cell{
		{rack.Random{}, reqsched.FCFS{}},
		{&rack.RoundRobin{}, reqsched.FCFS{}},
		{rack.PowerOfK{K: 2}, reqsched.FCFS{}},
		{rack.Random{}, reqsched.DARC{Reserved: opts.Reserved}},
		{&rack.RoundRobin{}, reqsched.DARC{Reserved: opts.Reserved}},
		{rack.PowerOfK{K: 2}, reqsched.DARC{Reserved: opts.Reserved}},
	}

	matrix := &Table{
		Title: "Rack: two-layer scheduling, ToR placement x host dispatch",
		Note: fmt.Sprintf("%d hosts x %d cores, %d closed-loop clients, %d KV GETs each; "+
			"bounded-Pareto values to %dKiB; DARC reserves %d core(s) for shorts",
			opts.Servers, opts.CoresPerServer, opts.Clients, opts.Requests,
			opts.MaxSize>>10, opts.Reserved),
		Header: []string{"ToR placement", "host dispatch", "short p50 (µs)", "short p99 (µs)", "short p999 (µs)", "long p99 (µs)", "elapsed (ms)"},
	}
	spread := &Table{
		Title:  "Rack: ToR placement spread and load tracking",
		Note:   "placements min/max across servers; resyncs = reply load-trailers absorbed by the ToR; peak load = max host dispatcher backlog",
		Header: []string{"ToR placement", "host dispatch", "placements min/max", "resyncs", "peak host load min/max"},
	}
	for _, c := range cells {
		res, err := runRack(opts, c.placer, c.host)
		if err != nil {
			return nil, fmt.Errorf("rack %s/%s: %w", c.placer.Name(), c.host.Name(), err)
		}
		matrix.AddRow(res.Placer, res.HostPolicy,
			Micros(rack.Quantile(res.ShortLats, 0.5)),
			Micros(rack.Quantile(res.ShortLats, 0.99)),
			Micros(rack.Quantile(res.ShortLats, 0.999)),
			Micros(rack.Quantile(res.LongLats, 0.99)),
			fmt.Sprintf("%.3f", res.Elapsed.Seconds()*1e3))
		pmin, pmax := res.Placements[0], res.Placements[0]
		for _, p := range res.Placements[1:] {
			if p < pmin {
				pmin = p
			}
			if p > pmax {
				pmax = p
			}
		}
		lmin, lmax := res.MaxLoads[0], res.MaxLoads[0]
		for _, l := range res.MaxLoads[1:] {
			if l < lmin {
				lmin = l
			}
			if l > lmax {
				lmax = l
			}
		}
		spread.AddRow(res.Placer, res.HostPolicy,
			fmt.Sprintf("%d / %d", pmin, pmax),
			fmt.Sprintf("%d", res.Resyncs),
			fmt.Sprintf("%d / %d", lmin, lmax))
		if telemetrySink != nil {
			fmt.Fprintf(telemetrySink, "\n-- telemetry: rack %s + %s --\n", res.Placer, res.HostPolicy)
			fmt.Fprint(telemetrySink, res.TelemetryText)
		}
	}
	return []*Table{matrix, spread}, nil
}
