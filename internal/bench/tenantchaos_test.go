package bench

// The adversarial-tenant soak is the multi-tenant isolation acceptance
// test (ISSUE 9's analogue of the PR 4 chaos gate): a hostile tenant
// attacks a shared stack while echo/kv victims run, and the run must end
// with every attack rejected by its documented sentinel, zero victim loss
// or leaks, the victim p99 within TenantP99Bound of the solo baseline,
// and byte-identical telemetry on same-seed replay. CI runs this under
// -race across the pinned seeds.

import "testing"

func TestTenantSoak(t *testing.T) {
	for _, seed := range TenantChaosSeeds {
		opts := DefaultTenantChaosOpts()
		opts.Seed = seed
		r1, err := RunTenantChaos(opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Determinism: the same seed must replay byte-for-byte.
		r2, err := RunTenantChaos(opts)
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if r1.Telemetry != r2.Telemetry {
			t.Errorf("seed %d: telemetry diverged between identical runs", seed)
		}
		t.Logf("seed %d: victim %d/%d kv %d/%d attacks flood=%d forge=%d alloc=%d dfree=%d ffree=%d rate=%d p99 %v->%v",
			seed, r1.VictimOK, r1.VictimErrs, r1.KVOK, r1.KVErrs,
			r1.FloodRejects, r1.ForgeryRejects, r1.AllocRejects,
			r1.DoubleFreeRejects, r1.ForeignFreeRejects, r1.RateRejects,
			r1.SoloP99, r1.ContendedP99)
	}
}
