package bench

import (
	"testing"
	"time"

	"demikernel/internal/baseline"
)

func TestHistStats(t *testing.T) {
	h := &Hist{}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	if h.Mean() != 50500*time.Nanosecond {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.P50() != 50*time.Microsecond {
		t.Errorf("p50 = %v", h.P50())
	}
	if h.P99() != 99*time.Microsecond {
		t.Errorf("p99 = %v", h.P99())
	}
	if h.Max() != 100*time.Microsecond {
		t.Errorf("max = %v", h.Max())
	}
}

// TestFig5Shape verifies the paper's headline ordering on a reduced run:
// Linux > Catnap > Shenango > {Catnip TCP, Caladan} and raw floors lowest.
func TestFig5Shape(t *testing.T) {
	opts := DefaultEchoOpts()
	opts.Rounds, opts.Warmup = 300, 30
	rtt := func(sys System) time.Duration {
		row, err := RunEcho(sys, opts)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		return row.Avg
	}
	linux := rtt(SysLinux(baseline.EnvNative))
	catnap := rtt(SysCatnap(baseline.EnvNative))
	shenango := rtt(SysShenango())
	catnipTCP := rtt(SysCatnipTCP())
	catmint := rtt(SysCatmint(0))
	rawDPDK := RunRawDPDKEcho(64, 300).Avg
	rawRDMA := RunRawRDMAEcho(64, 300).Avg
	t.Logf("linux=%v catnap=%v shenango=%v catnipTCP=%v catmint=%v rawDPDK=%v rawRDMA=%v",
		linux, catnap, shenango, catnipTCP, catmint, rawDPDK, rawRDMA)
	if !(linux > catnap && catnap > shenango && shenango > catnipTCP) {
		t.Error("kernel/bypass ordering violated")
	}
	if !(catnipTCP > rawDPDK/2 && catnipTCP < 2*rawDPDK+4*time.Microsecond) {
		t.Error("catnip not within ns-scale overhead of raw DPDK")
	}
	if !(catmint > rawRDMA && catmint < rawRDMA+3*time.Microsecond) {
		t.Error("catmint not within ns-scale overhead of raw RDMA")
	}
	if linux < 20*time.Microsecond || linux > 45*time.Microsecond {
		t.Errorf("linux RTT %v outside the paper's ~30µs ballpark", linux)
	}
}

// TestFig7Shape: with synchronous logging, Demikernel-to-remote-disk beats
// Linux-to-remote-memory.
func TestFig7Shape(t *testing.T) {
	opts := DefaultEchoOpts()
	opts.Rounds, opts.Warmup = 200, 20
	memOpts := opts
	logOpts := opts
	logOpts.Log = true
	linuxMem, err := RunEcho(SysLinux(baseline.EnvNative), memOpts)
	if err != nil {
		t.Fatal(err)
	}
	demiDisk, err := RunEcho(catnipCattreeTCP(), logOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("linux-mem=%v demikernel-disk=%v", linuxMem.Avg, demiDisk.Avg)
	if demiDisk.Avg >= linuxMem.Avg {
		t.Errorf("Demikernel remote-disk (%v) not faster than Linux remote-memory (%v)",
			demiDisk.Avg, linuxMem.Avg)
	}
}

// TestFig10Shape: Catnip relay saves ~10µs per packet over the kernel.
func TestFig10Shape(t *testing.T) {
	linux, err := RunRelay(SysLinux(baseline.EnvNative), 500)
	if err != nil {
		t.Fatal(err)
	}
	catnip, err := RunRelay(SysCatnipUDP(), 500)
	if err != nil {
		t.Fatal(err)
	}
	saved := linux.Mean() - catnip.Mean()
	t.Logf("linux=%v catnip=%v saved=%v", linux.Mean(), catnip.Mean(), saved)
	if saved < 5*time.Microsecond {
		t.Errorf("relay saving %v too small (paper: ~11µs)", saved)
	}
}

// TestFig11Shape: AOF persistence keeps ~90% of in-memory throughput on
// the integrated Demikernel stack, while the kernel path collapses.
func TestFig11Shape(t *testing.T) {
	opts := DefaultRedisOpts()
	opts.Keys, opts.Ops = 1000, 600
	memGet, memSet, err := RunRedis(SysCatnipTCP(), opts)
	if err != nil {
		t.Fatal(err)
	}
	aofOpts := opts
	aofOpts.AOF = true
	aofGet, aofSet, err := RunRedis(catnipCattreeTCP(), aofOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mem get/set = %.0f/%.0f; aof get/set = %.0f/%.0f", memGet, memSet, aofGet, aofSet)
	if aofSet < memSet/3 {
		t.Errorf("AOF SET throughput collapsed: %.0f vs %.0f in-memory", aofSet, memSet)
	}
	// Linux with AOF must be far slower than Demikernel with AOF.
	linGet, linSet, err := RunRedis(SysLinux(baseline.EnvNative), aofOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("linux aof get/set = %.0f/%.0f", linGet, linSet)
	if linSet >= aofSet {
		t.Errorf("Linux AOF SET (%.0f) not slower than Demikernel (%.0f)", linSet, aofSet)
	}
}

// TestFig12Shape: Catmint beats the custom per-connection-QP RDMA stack.
func TestFig12Shape(t *testing.T) {
	opts := DefaultTxnOpts()
	opts.Keys, opts.Txns = 300, 250
	custom, err := RunTxnStore(SysTxnStoreRDMA(), opts)
	if err != nil {
		t.Fatal(err)
	}
	catmint, err := RunTxnStore(SysCatmint(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	linux, err := RunTxnStore(SysLinux(baseline.EnvNative), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("linux=%v custom-rdma=%v catmint=%v", linux.Mean(), custom.Mean(), catmint.Mean())
	if catmint.Mean() >= custom.Mean() {
		t.Error("catmint not faster than the custom RDMA stack")
	}
	if custom.Mean() >= linux.Mean() {
		t.Error("custom RDMA not faster than Linux TCP")
	}
}

// TestFig9SaturationShape: throughput grows with offered load and then
// saturates while latency climbs.
func TestFig9SaturationShape(t *testing.T) {
	t1, h1, err := RunLoad(SysCatnipTCP(), 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	t16, h16, err := RunLoad(SysCatnipTCP(), 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("1 client: %.0f ops/s @%v; 16 clients: %.0f ops/s @%v", t1, h1.Mean(), t16, h16.Mean())
	if t16 < 2*t1 {
		t.Errorf("throughput did not scale with load: %.0f -> %.0f", t1, t16)
	}
	if h16.Mean() < h1.Mean() {
		t.Error("latency should not improve under heavy load")
	}
}

// TestTablesRender ensures the LoC tables count something plausible.
func TestTablesRender(t *testing.T) {
	if loc := ModuleLoC("internal/catnip"); loc < 1000 {
		t.Errorf("catnip LoC = %d, implausibly small", loc)
	}
	t2, t3 := Table2(), Table3()
	if len(t2.Rows) < 4 || len(t3.Rows) < 4 {
		t.Error("tables missing rows")
	}
}

// TestEnvProfilesShape: WSL is much slower than native; the Azure VM adds
// overhead to kernel paths but Catmint stays native (Figure 6).
func TestEnvProfilesShape(t *testing.T) {
	opts := DefaultEchoOpts()
	opts.Rounds, opts.Warmup = 200, 20
	native, err := RunEcho(SysLinux(baseline.EnvNative), opts)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := RunEcho(SysLinux(baseline.EnvAzureVM), opts)
	if err != nil {
		t.Fatal(err)
	}
	wslOpts := opts
	wslOpts.Switch = SwitchIB()
	wsl, err := RunEcho(SysLinux(baseline.EnvWSL), wslOpts)
	if err != nil {
		t.Fatal(err)
	}
	catpaw, err := RunEcho(SysCatpaw(), wslOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("native=%v vm=%v wsl=%v catpaw=%v", native.Avg, vm.Avg, wsl.Avg, catpaw.Avg)
	if !(wsl.Avg > vm.Avg && vm.Avg > native.Avg) {
		t.Error("environment ordering violated")
	}
	if ratio := float64(wsl.Avg) / float64(catpaw.Avg); ratio < 10 {
		t.Errorf("Catpaw only %.1fx faster than WSL (paper: ~27x)", ratio)
	}
}
