package bench

// Chaos soak experiment: four application pairs (Catnip echo, Redis-style
// KV with an AOF on Cattree/SPDK, Catmint echo over RDMA, and a co-located
// Catmem shared-memory echo) run concurrently on one switch while a
// deterministic fault plan injects every fault class the devices support —
// RX/TX stalls, link flaps, bit corruption and device resets on the DPDK
// port; I/O errors, latency spikes and torn writes on the SPDK disk; QP
// errors on the RDMA NIC; DMA-heap exhaustion; and ring-full stalls plus
// abrupt peer death on the shared-memory queues. The
// invariants checked afterwards are the robustness story: no accepted
// request is lost or corrupted, every qtoken completes or errors, no buffer
// leaks, and the same seed replays byte-for-byte.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"demikernel/internal/apps/echo"
	"demikernel/internal/apps/kv"
	"demikernel/internal/catmem"
	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/faults"
	"demikernel/internal/memory"
	"demikernel/internal/rdmadev"
	"demikernel/internal/spdkdev"
	"demikernel/internal/telemetry"
	"demikernel/internal/wire"
)

// ChaosOpts configures one chaos soak run.
type ChaosOpts struct {
	Seed       uint64
	EchoRounds int // Catnip TCP echo rounds
	KVOps      int // KV operations (2/3 SET, 1/3 GET)
	MintRounds int // Catmint RDMA echo rounds
	ShmRounds  int // Catmem shared-memory echo rounds
	MsgSize    int
	ValueSize  int
}

// DefaultChaosOpts sizes the soak so every fault site fires at least once.
func DefaultChaosOpts() ChaosOpts {
	return ChaosOpts{
		Seed:       41,
		EchoRounds: 2500,
		KVOps:      1000,
		MintRounds: 1500,
		ShmRounds:  20000,
		MsgSize:    64,
		ValueSize:  64,
	}
}

// chaosSites is every fault class the plan injects; the soak fails unless
// each fired at least once (otherwise the run proved nothing about it).
var chaosSites = []string{
	"dpdk.rx_stall", "dpdk.tx_stall", "dpdk.link_flap", "dpdk.corrupt", "dpdk.reset",
	"spdk.io_err", "spdk.latency", "spdk.torn_write",
	"rdma.qp_error",
	"mem.exhaust",
	"catmem.ring_full", "catmem.peer_death",
}

// ChaosReport is one run's outcome.
type ChaosReport struct {
	Seed uint64
	// OK counts client operations that completed and verified; Errs counts
	// operations that failed visibly (connection reset/timeout) and were
	// retried on a fresh connection; KVDegraded counts writes the server
	// refused with an AOF error reply.
	EchoOK, EchoErrs         int
	KVOK, KVDegraded, KVErrs int
	MintOK, MintErrs         int
	ShmOK, ShmErrs           int
	// Faults maps each site to how often it fired.
	Faults map[string]uint64
	// Outstanding is the client stacks' unconsumed qtokens (must be 0).
	Outstanding int
	// LiveBufs is live DMA-heap objects on the Catnip client heaps after
	// the world drains (must be 0).
	LiveBufs int
	// Telemetry is the full deterministic telemetry dump; two runs with
	// the same seed must produce identical bytes.
	Telemetry string
}

// RunChaos builds the cluster, injects the plan, runs every workload to
// completion and verifies the soak invariants. Invariant violations are
// returned as errors.
func RunChaos(opts ChaosOpts) (*ChaosReport, error) {
	plan := faults.NewPlan(opts.Seed)
	tb := NewTestbed(opts.Seed, SwitchEth())

	echoSrv := tb.NewStack(SysCatnipTCP(), "echo-srv", wire.IPAddr{10, 30, 0, 1})
	echoCli := tb.NewStack(SysCatnipTCP(), "echo-cli", wire.IPAddr{10, 30, 0, 2})
	kvSrv := tb.NewStack(catnipCattreeTCP(), "kv-srv", wire.IPAddr{10, 30, 0, 3})
	kvCli := tb.NewStack(SysCatnipTCP(), "kv-cli", wire.IPAddr{10, 30, 0, 4})
	mintSrv := tb.NewStack(SysCatmint(0), "mint-srv", wire.IPAddr{10, 30, 0, 5})
	mintCli := tb.NewStack(SysCatmint(0), "mint-cli", wire.IPAddr{10, 30, 0, 6})
	tb.SeedARP()

	// Co-located shared-memory pair: same host, so no switch attachment —
	// only a catmem region between the two nodes.
	region := catmem.NewRegion(tb.Eng)
	shmSrv := region.New(tb.Eng.NewNode("shm-srv"))
	shmCli := region.New(tb.Eng.NewNode("shm-cli"))

	// Fault plan. After gates every site past connection setup; Every-N
	// triggers are deterministic in the op stream; Max caps give the stack
	// room to recover between faults.
	ms := time.Millisecond
	echoCli.Port.SetFaults(dpdkdev.Faults{
		RxStall: plan.Site("dpdk.rx_stall", faults.Spec{After: ms, Every: 2003, Duration: 20 * time.Microsecond, Max: 3}),
		TxStall: plan.Site("dpdk.tx_stall", faults.Spec{After: ms, Every: 293, Duration: 20 * time.Microsecond, Max: 3}),
	})
	echoSrv.Port.SetFaults(dpdkdev.Faults{
		Corrupt:  plan.Site("dpdk.corrupt", faults.Spec{After: ms, Every: 211, Max: 6}),
		Reset:    plan.Site("dpdk.reset", faults.Spec{After: 2 * ms, Every: 701, Max: 2}),
		LinkFlap: plan.Site("dpdk.link_flap", faults.Spec{After: ms, Every: 401, Duration: 15 * time.Microsecond, Max: 2}),
	})
	kvSrv.Disk.SetFaults(spdkdev.Faults{
		IOErr:     plan.Site("spdk.io_err", faults.Spec{After: ms, Every: 89, Max: 4}),
		Latency:   plan.Site("spdk.latency", faults.Spec{After: ms, Every: 131, Duration: 100 * time.Microsecond, Max: 4}),
		TornWrite: plan.Site("spdk.torn_write", faults.Spec{After: ms, Every: 223, Max: 2}),
	})
	mintSrv.NIC.SetFaults(rdmadev.Faults{
		QPError: plan.Site("rdma.qp_error", faults.Spec{After: ms, Every: 601, Max: 2}),
	})
	memSite := plan.Site("mem.exhaust", faults.Spec{After: ms, Every: 397, Max: 3})
	echoSrv.OS.Heap().SetAllocFault(func(int) bool { return memSite.Fire(echoSrv.Node.Now()) })
	shmCli.SetFaults(catmem.Faults{
		RingFull:  plan.Site("catmem.ring_full", faults.Spec{After: ms, Every: 283, Duration: 25 * time.Microsecond, Max: 3}),
		PeerDeath: plan.Site("catmem.peer_death", faults.Spec{After: ms, Every: 499, Max: 2}),
	})

	// Servers.
	echoAddr := core.Addr{IP: echoSrv.IP, Port: 7100}
	tb.Eng.Spawn(echoSrv.Node, func() {
		echo.Server(echoSrv.OS, echo.ServerConfig{Addr: echoAddr})
	})
	kvAddr := core.Addr{IP: kvSrv.IP, Port: 6379}
	// The AOF lives under a per-run temp dir, removed on completion, so
	// concurrent or aborted soaks can't collide or litter the repo. The
	// name stays out of telemetry, so replay byte-identity is unaffected.
	aofName, aofCleanup, err := tempAOF()
	if err != nil {
		return nil, err
	}
	defer aofCleanup()
	var kvStats kv.ServerStats
	tb.Eng.Spawn(kvSrv.Node, func() {
		kv.Server(kvSrv.OS, kv.ServerConfig{Addr: kvAddr, AOFName: aofName}, &kvStats)
	})
	mintAddr := core.Addr{IP: mintSrv.IP, Port: 7200}
	tb.Eng.Spawn(mintSrv.Node, func() {
		echo.Server(mintSrv.OS, echo.ServerConfig{Addr: mintAddr})
	})
	shmAddr := core.Addr{Port: 7300}
	tb.Eng.Spawn(shmSrv.Node(), func() { chaosShmServer(shmSrv, shmAddr) })

	// Clients.
	rep := &ChaosReport{Seed: opts.Seed, Faults: map[string]uint64{}}
	var echoErr, kvErr, mintErr, shmErr error
	tb.Eng.Spawn(echoCli.Node, func() {
		rep.EchoOK, rep.EchoErrs, echoErr = chaosEchoClient(echoCli.OS, echoAddr, opts.EchoRounds, opts.MsgSize)
	})
	tb.Eng.Spawn(kvCli.Node, func() {
		rep.KVOK, rep.KVDegraded, rep.KVErrs, kvErr = chaosKVClient(kvCli.OS, kvAddr, opts.KVOps, opts.ValueSize)
	})
	tb.Eng.Spawn(mintCli.Node, func() {
		rep.MintOK, rep.MintErrs, mintErr = chaosEchoClient(mintCli.OS, mintAddr, opts.MintRounds, opts.MsgSize)
	})
	tb.Eng.Spawn(shmCli.Node(), func() {
		rep.ShmOK, rep.ShmErrs, shmErr = chaosShmClient(shmCli, shmAddr, opts.ShmRounds, opts.MsgSize)
	})
	tb.Eng.Run()

	for _, e := range []error{echoErr, kvErr, mintErr, shmErr} {
		if e != nil {
			return rep, e
		}
	}
	if kvStats.AOFErrors == 0 {
		return rep, fmt.Errorf("chaos: disk faults fired but the KV server never degraded an AOF write")
	}

	// Every fault class must have been observed.
	for _, name := range chaosSites {
		n := plan.Fired(name)
		rep.Faults[name] = n
		if n == 0 {
			return rep, fmt.Errorf("chaos: fault site %q never fired", name)
		}
	}

	// Every client qtoken completed or errored; nothing is in flight.
	for _, st := range []*Stack{echoCli, kvCli, mintCli} {
		if tok, ok := st.OS.(interface{ Tokens() *core.TokenTable }); ok {
			rep.Outstanding += tok.Tokens().Outstanding()
		}
	}
	rep.Outstanding += shmCli.Tokens().Outstanding()
	if rep.Outstanding != 0 {
		return rep, fmt.Errorf("chaos: %d qtokens still outstanding on client stacks", rep.Outstanding)
	}

	// Zero buffer leaks on the Catnip client heaps (Catmint legitimately
	// keeps receive buffers posted to the NIC). The catmem region's shared
	// heap must also drain: every handed-off buffer has exactly one owner,
	// and peer-death teardown reclaims in-flight rings.
	for _, st := range []*Stack{echoCli, kvCli} {
		rep.LiveBufs += st.OS.Heap().LiveObjects()
	}
	rep.LiveBufs += region.Heap().LiveObjects()
	if rep.LiveBufs != 0 {
		return rep, fmt.Errorf("chaos: %d DMA buffers leaked on client heaps", rep.LiveBufs)
	}

	// Deterministic telemetry dump: stacks, devices, then the fault plan.
	var sb strings.Builder
	dump := func(name string, reg *telemetry.Registry) {
		if reg == nil {
			return
		}
		fmt.Fprintf(&sb, "== %s ==\n", name)
		reg.Snapshot().WriteText(&sb)
	}
	for _, st := range []struct {
		name string
		s    *Stack
	}{{"echo-srv", echoSrv}, {"echo-cli", echoCli}, {"kv-srv", kvSrv}, {"kv-cli", kvCli}, {"mint-srv", mintSrv}, {"mint-cli", mintCli}} {
		dump(st.name, stackTelemetry(st.s.OS))
		if st.s.Port != nil {
			dump(st.name+"/port", st.s.Port.Telemetry())
		}
		if st.s.NIC != nil {
			dump(st.name+"/nic", st.s.NIC.Telemetry())
		}
		if st.s.Disk != nil {
			dump(st.name+"/disk", st.s.Disk.Telemetry())
		}
	}
	dump("shm-srv", shmSrv.Telemetry())
	dump("shm-cli", shmCli.Telemetry())
	dump("faults", plan.Telemetry())
	rep.Telemetry = sb.String()
	return rep, nil
}

// chaosShmServer echoes on a catmem listener forever, re-accepting after
// every teardown (peer death kills both endpoints; the client redials).
// Shared-memory ownership: the popped SGA is pushed back as-is and the
// push consumes it — the server never frees a successfully pushed buffer.
func chaosShmServer(l *catmem.LibOS, addr core.Addr) {
	qd, err := l.Socket(core.SockStream)
	if err != nil {
		return
	}
	if err := l.Bind(qd, addr); err != nil {
		return
	}
	if err := l.Listen(qd, 8); err != nil {
		return
	}
	for {
		aqt, err := l.Accept(qd)
		if err != nil {
			return
		}
		ev, err := l.Wait(aqt)
		if err != nil || ev.Err != nil {
			return // engine stopping
		}
		conn := ev.NewQD
		for {
			pqt, err := l.Pop(conn)
			if err != nil {
				break
			}
			pev, err := l.Wait(pqt)
			if err != nil {
				return
			}
			if pev.Err != nil || len(pev.SGA.Segs) == 0 {
				break // death or EOF: drop the conn, accept the next
			}
			wqt, err := l.Push(conn, pev.SGA)
			if err != nil {
				pev.SGA.Free() // call-level error: ownership stayed here
				break
			}
			if wev, werr := l.Wait(wqt); werr != nil || wev.Err != nil {
				break // failed push ops are freed by the queue
			}
		}
		l.Close(conn)
	}
}

// chaosShmRound pushes one patterned message through the shared-memory
// echo pair and verifies the reply. Unlike chaosEchoRound, ownership of
// the pushed buffer transfers to the queue — no free on success or on an
// operation-level failure.
func chaosShmRound(l *catmem.LibOS, qd core.QDesc, round, size int) error {
	msg := memory.CopyFrom(l.Heap(), chaosPattern(round, size))
	qt, err := l.Push(qd, core.SGA(msg))
	if err != nil {
		msg.Free() // call-level error: ownership stayed here
		return err
	}
	ev, err := l.Wait(qt)
	if err != nil {
		return err
	}
	if ev.Err != nil {
		return ev.Err
	}
	pqt, err := l.Pop(qd)
	if err != nil {
		return err
	}
	pev, err := l.Wait(pqt)
	if err != nil {
		return err
	}
	if pev.Err != nil {
		return pev.Err
	}
	if len(pev.SGA.Segs) == 0 {
		return core.ErrQueueClosed
	}
	got := pev.SGA.Flatten()
	pev.SGA.Free()
	if !bytes.Equal(got, chaosPattern(round, size)) {
		return fmt.Errorf("chaos: shm round %d reply corrupted", round)
	}
	return nil
}

// chaosShmClient runs verified shared-memory echo rounds, redialing after
// every injected peer death.
func chaosShmClient(l *catmem.LibOS, server core.Addr, rounds, size int) (ok, errs int, err error) {
	conn, err := chaosConnect(l, server, 8)
	if err != nil {
		return ok, errs, err
	}
	for i := 0; i < rounds; i++ {
		rerr := chaosShmRound(l, conn, i, size)
		if rerr == nil {
			ok++
			continue
		}
		if strings.Contains(rerr.Error(), "corrupted") {
			return ok, errs, rerr
		}
		errs++
		l.Close(conn)
		if conn, err = chaosConnect(l, server, 8); err != nil {
			return ok, errs, err
		}
	}
	l.Close(conn)
	return ok, errs, nil
}

// tempAOF returns a per-run AOF path in a fresh temp dir and the cleanup
// that removes it. The storage stack is simulated, so the name is only a
// namespace key — but a unique path keeps concurrent soaks collision-free
// and nothing behind on abort.
func tempAOF() (string, func(), error) {
	dir, err := os.MkdirTemp("", "demi-chaos-")
	if err != nil {
		return "", nil, fmt.Errorf("chaos: aof temp dir: %w", err)
	}
	return filepath.Join(dir, "chaos.aof"), func() { os.RemoveAll(dir) }, nil
}

// stackTelemetry digs the telemetry registry out of a libOS (unwrapping the
// net+storage combination).
func stackTelemetry(os demi.LibOS) *telemetry.Registry {
	if c, ok := os.(*demi.Combined); ok {
		os = c.Net.(demi.LibOS)
	}
	if t, ok := os.(interface{ Telemetry() *telemetry.Registry }); ok {
		return t.Telemetry()
	}
	return nil
}

// chaosPattern is round r's payload: deterministic and position-dependent,
// so truncation, reordering and corruption all fail the compare.
func chaosPattern(r, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(r*31 + i*7 + 5)
	}
	return b
}

// chaosConnect dials with bounded retries (connections die under fault
// injection; a fresh one usually works).
func chaosConnect(l demi.LibOS, server core.Addr, attempts int) (core.QDesc, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		qd, err := l.Socket(core.SockStream)
		if err != nil {
			return core.InvalidQD, err
		}
		cqt, err := l.Connect(qd, server)
		if err != nil {
			l.Close(qd)
			lastErr = err
			continue
		}
		ev, err := l.Wait(cqt)
		if err != nil {
			return core.InvalidQD, err
		}
		if ev.Err != nil {
			l.Close(qd)
			lastErr = ev.Err
			continue
		}
		return qd, nil
	}
	return core.InvalidQD, fmt.Errorf("chaos: connect failed after %d attempts: %w", attempts, lastErr)
}

// chaosEchoRound pushes one patterned message and verifies the echo
// byte-for-byte.
func chaosEchoRound(l demi.LibOS, qd core.QDesc, round, size int) error {
	msg := memory.CopyFrom(l.Heap(), chaosPattern(round, size))
	qt, err := l.Push(qd, core.SGA(msg))
	if err != nil {
		msg.Free()
		return err
	}
	ev, err := l.Wait(qt)
	if err != nil {
		return err
	}
	msg.Free()
	if ev.Err != nil {
		return ev.Err
	}
	want := chaosPattern(round, size)
	got := make([]byte, 0, size)
	for len(got) < size {
		pqt, err := l.Pop(qd)
		if err != nil {
			return err
		}
		ev, err := l.Wait(pqt)
		if err != nil {
			return err
		}
		if ev.Err != nil {
			return ev.Err
		}
		if len(ev.SGA.Segs) == 0 {
			return core.ErrQueueClosed
		}
		got = append(got, ev.SGA.Flatten()...)
		ev.SGA.Free()
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("chaos: round %d reply corrupted (stack checksums failed to catch it)", round)
	}
	return nil
}

// chaosEchoClient runs rounds of verified echo, reconnecting whenever the
// connection dies under injection. A data-integrity failure is returned as
// err (it fails the soak); connection errors are counted and survived.
func chaosEchoClient(l demi.LibOS, server core.Addr, rounds, size int) (ok, errs int, err error) {
	conn, err := chaosConnect(l, server, 8)
	if err != nil {
		return ok, errs, err
	}
	for i := 0; i < rounds; i++ {
		rerr := chaosEchoRound(l, conn, i, size)
		if rerr == nil {
			ok++
			continue
		}
		if strings.Contains(rerr.Error(), "corrupted") {
			return ok, errs, rerr
		}
		errs++
		l.Close(conn)
		if conn, err = chaosConnect(l, server, 8); err != nil {
			return ok, errs, err
		}
	}
	l.Close(conn)
	return ok, errs, nil
}

// --- KV workload with versioned, self-describing values ---

const chaosKeys = 16

func chaosKey(k int) []byte { return []byte(fmt.Sprintf("chaos:key%02d", k)) }

// chaosValue encodes (key, version) in the value and pads with a pattern,
// so a read can verify both which write it observes and that no byte
// changed in flight or at rest.
func chaosValue(k, ver, size int) []byte {
	v := []byte(fmt.Sprintf("key=%02d ver=%08d ", k, ver))
	for i := len(v); i < size; i++ {
		v = append(v, byte(k*17+i*3+ver))
	}
	if len(v) > size {
		v = v[:size]
	}
	return v
}

// chaosCheckValue verifies a GET result: it must be exactly the encoding of
// an attempted version no older than the last acknowledged write. (A write
// that errored at the client may still have been applied if only its reply
// was lost — hence "attempted", not "acknowledged".)
func chaosCheckValue(k int, v []byte, attempted []int, lastOK, size int) error {
	if v == nil {
		if lastOK >= 0 {
			return fmt.Errorf("chaos: key %d lost (last acked write ver=%d)", k, lastOK)
		}
		return nil
	}
	var gotK, ver int
	if _, err := fmt.Sscanf(string(v), "key=%02d ver=%08d", &gotK, &ver); err != nil || gotK != k {
		return fmt.Errorf("chaos: key %d holds garbage %q", k, v)
	}
	if ver < lastOK {
		return fmt.Errorf("chaos: key %d regressed to ver=%d (acked ver=%d)", k, ver, lastOK)
	}
	for _, a := range attempted {
		if a == ver {
			if !bytes.Equal(v, chaosValue(k, ver, size)) {
				return fmt.Errorf("chaos: key %d ver=%d corrupted", k, ver)
			}
			return nil
		}
	}
	return fmt.Errorf("chaos: key %d holds never-written ver=%d", k, ver)
}

// chaosDial dials the KV server with bounded retries.
func chaosDial(l demi.LibOS, server core.Addr, attempts int) (*kv.Client, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		cl, err := kv.Dial(l, server)
		if err == nil {
			return cl, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("chaos: kv dial failed after %d attempts: %w", attempts, lastErr)
}

// isDegradedReply reports whether a KV error is the server refusing a write
// because its AOF failed (a well-formed degraded reply, not a dead
// connection).
func isDegradedReply(err error) bool {
	return strings.Contains(err.Error(), "aof write failed")
}

// chaosKVClient interleaves versioned SETs and verifying GETs, then reads
// every key back. Lost or corrupted accepted writes fail the soak; refused
// writes (AOF degraded) and connection errors are counted and survived.
func chaosKVClient(l demi.LibOS, server core.Addr, ops, valueSize int) (ok, degraded, errs int, err error) {
	attempted := make([][]int, chaosKeys)
	lastOK := make([]int, chaosKeys)
	for i := range lastOK {
		lastOK[i] = -1
	}
	cl, err := chaosDial(l, server, 8)
	if err != nil {
		return ok, degraded, errs, err
	}
	reconnect := func() error {
		cl.Close()
		cl, err = chaosDial(l, server, 8)
		return err
	}
	for i := 0; i < ops; i++ {
		k := i % chaosKeys
		if i%3 == 2 {
			v, gerr := cl.Get(chaosKey(k))
			if gerr != nil {
				errs++
				if rerr := reconnect(); rerr != nil {
					return ok, degraded, errs, rerr
				}
				continue
			}
			if cerr := chaosCheckValue(k, v, attempted[k], lastOK[k], valueSize); cerr != nil {
				return ok, degraded, errs, cerr
			}
			ok++
			continue
		}
		attempted[k] = append(attempted[k], i)
		serr := cl.Set(chaosKey(k), chaosValue(k, i, valueSize))
		switch {
		case serr == nil:
			lastOK[k] = i
			ok++
		case isDegradedReply(serr):
			degraded++
		default:
			errs++
			if rerr := reconnect(); rerr != nil {
				return ok, degraded, errs, rerr
			}
		}
	}
	// Final read-back: every key must hold an intact attempted version at
	// least as new as its last acknowledged write.
	for k := 0; k < chaosKeys; k++ {
		v, gerr := cl.Get(chaosKey(k))
		if gerr != nil {
			errs++
			if rerr := reconnect(); rerr != nil {
				return ok, degraded, errs, rerr
			}
			if v, gerr = cl.Get(chaosKey(k)); gerr != nil {
				return ok, degraded, errs, fmt.Errorf("chaos: final readback of key %d: %w", k, gerr)
			}
		}
		if cerr := chaosCheckValue(k, v, attempted[k], lastOK[k], valueSize); cerr != nil {
			return ok, degraded, errs, cerr
		}
	}
	cl.Close()
	return ok, degraded, errs, nil
}

// ChaosSeeds are the fixed seeds the soak replays (also pinned in CI).
var ChaosSeeds = []uint64{41, 42, 43}

// Chaos is the demi-bench runner: each seed runs twice and the two
// telemetry dumps must match byte-for-byte.
func Chaos() ([]*Table, error) {
	t := &Table{
		Title:  "Chaos soak: deterministic fault injection across four stacks",
		Note:   "every run twice per seed; 'replay' requires byte-identical telemetry dumps",
		Header: []string{"seed", "echo ok/err", "kv ok/degr/err", "mint ok/err", "shm ok/err", "fault classes", "replay"},
	}
	for _, seed := range ChaosSeeds {
		opts := DefaultChaosOpts()
		opts.Seed = seed
		r1, err := RunChaos(opts)
		if err != nil {
			return nil, fmt.Errorf("chaos seed %d: %w", seed, err)
		}
		r2, err := RunChaos(opts)
		if err != nil {
			return nil, fmt.Errorf("chaos seed %d (replay): %w", seed, err)
		}
		if r1.Telemetry != r2.Telemetry {
			return nil, fmt.Errorf("chaos seed %d: replay diverged (telemetry dumps differ)", seed)
		}
		t.AddRow(fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d/%d", r1.EchoOK, r1.EchoErrs),
			fmt.Sprintf("%d/%d/%d", r1.KVOK, r1.KVDegraded, r1.KVErrs),
			fmt.Sprintf("%d/%d", r1.MintOK, r1.MintErrs),
			fmt.Sprintf("%d/%d", r1.ShmOK, r1.ShmErrs),
			fmt.Sprintf("%d/%d", len(r1.Faults), len(chaosSites)),
			"byte-identical")
	}
	return []*Table{t}, nil
}
