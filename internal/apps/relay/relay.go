// Package relay implements the paper's TURN-style UDP relay server (§7.2):
// the workhorse behind Teams/Skype NAT traversal. Clients allocate a
// session binding the session id to a forwarding destination; data packets
// carry the session id and are relayed to that destination. End-to-end
// latency is not the point — per-packet server CPU cost is, since it
// directly sets the service's fleet size (§7.4).
//
// Wire format (UDP payload):
//
//	byte 0:    opcode (1 = ALLOCATE, 2 = DATA, 3 = ALLOCATE-OK)
//	ALLOCATE:  bytes 1-4 session id, 5-8 target IPv4, 9-10 target port
//	DATA:      bytes 1-4 session id, 5.. payload
package relay

import (
	"encoding/binary"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
)

// Opcodes.
const (
	OpAllocate   = 1
	OpData       = 2
	OpAllocateOK = 3
)

// allocateLen is the ALLOCATE message size.
const allocateLen = 11

// dataHeaderLen prefixes every relayed payload.
const dataHeaderLen = 5

// Stats counts relay activity.
type Stats struct {
	Allocations      uint64
	Relayed          uint64
	DroppedNoSess    uint64
	DroppedMalformed uint64
}

// Server relays packets until the libOS stops. It binds addr and serves
// every session from one thread.
func Server(l demi.LibOS, addr core.Addr, stats *Stats) error {
	qd, err := l.Socket(core.SockDgram)
	if err != nil {
		return err
	}
	if err := l.Bind(qd, addr); err != nil {
		return err
	}
	sessions := make(map[uint32]core.Addr)
	for {
		pqt, err := l.Pop(qd)
		if err != nil {
			return err
		}
		ev, err := l.Wait(pqt)
		if err != nil {
			return nil // stopped
		}
		if ev.Err != nil {
			continue
		}
		msg := ev.SGA.Flatten()
		ev.SGA.Free()
		if len(msg) < 1 {
			stats.DroppedMalformed++
			continue
		}
		switch msg[0] {
		case OpAllocate:
			if len(msg) < allocateLen {
				stats.DroppedMalformed++
				continue
			}
			sid := binary.BigEndian.Uint32(msg[1:5])
			var target core.Addr
			copy(target.IP[:], msg[5:9])
			target.Port = binary.BigEndian.Uint16(msg[9:11])
			sessions[sid] = target
			stats.Allocations++
			ok := memory.CopyFrom(l.Heap(), []byte{OpAllocateOK})
			if qt, err := l.PushTo(qd, core.SGA(ok), ev.From); err == nil {
				l.Wait(qt)
			} else {
				ok.Free() // failed push leaves ownership with us
			}
		case OpData:
			if len(msg) < dataHeaderLen {
				stats.DroppedMalformed++
				continue
			}
			sid := binary.BigEndian.Uint32(msg[1:5])
			target, ok := sessions[sid]
			if !ok {
				stats.DroppedNoSess++
				continue
			}
			// Forward with the header intact so the receiver can
			// demultiplex its own sessions.
			fwd := memory.CopyFrom(l.Heap(), msg)
			qt, err := l.PushTo(qd, core.SGA(fwd), target)
			if err != nil {
				fwd.Free() // failed push leaves ownership with us
				continue
			}
			if _, err := l.Wait(qt); err != nil {
				return nil
			}
			stats.Relayed++
		default:
			stats.DroppedMalformed++
		}
	}
}

// BuildAllocate assembles an ALLOCATE message.
func BuildAllocate(sid uint32, target core.Addr) []byte {
	msg := make([]byte, allocateLen)
	msg[0] = OpAllocate
	binary.BigEndian.PutUint32(msg[1:5], sid)
	copy(msg[5:9], target.IP[:])
	binary.BigEndian.PutUint16(msg[9:11], target.Port)
	return msg
}

// BuildData assembles a DATA message around payload.
func BuildData(sid uint32, payload []byte) []byte {
	msg := make([]byte, dataHeaderLen+len(payload))
	msg[0] = OpData
	binary.BigEndian.PutUint32(msg[1:5], sid)
	copy(msg[dataHeaderLen:], payload)
	return msg
}

// ParseData splits a DATA message, reporting ok=false for anything else.
func ParseData(msg []byte) (sid uint32, payload []byte, ok bool) {
	if len(msg) < dataHeaderLen || msg[0] != OpData {
		return 0, nil, false
	}
	return binary.BigEndian.Uint32(msg[1:5]), msg[dataHeaderLen:], true
}
