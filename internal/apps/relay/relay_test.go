package relay

import (
	"bytes"
	"testing"

	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

var (
	ipRelay = wire.IPAddr{10, 7, 0, 1}
	ipGen   = wire.IPAddr{10, 7, 0, 2}
)

func TestRelayForwardsBetweenSessions(t *testing.T) {
	eng := sim.NewEngine(81)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	nr, ng := eng.NewNode("relay"), eng.NewNode("gen")
	pr := dpdkdev.Attach(sw, nr, simnet.DefaultLink(), 8192, 0)
	pg := dpdkdev.Attach(sw, ng, simnet.DefaultLink(), 8192, 0)
	lr := catnip.New(nr, pr, catnip.DefaultConfig(ipRelay))
	lg := catnip.New(ng, pg, catnip.DefaultConfig(ipGen))
	lr.SeedARP(ipGen, pg.MAC())
	lg.SeedARP(ipRelay, pr.MAC())

	var stats Stats
	relayAddr := core.Addr{IP: ipRelay, Port: 3478}
	eng.Spawn(nr, func() { Server(lr, relayAddr, &stats) })

	var relayed [][]byte
	eng.Spawn(ng, func() {
		// Two sockets on the generator: "caller" and "callee".
		caller, _ := lg.Socket(core.SockDgram)
		callee, _ := lg.Socket(core.SockDgram)
		calleePort := uint16(40000)
		if err := lg.Bind(callee, core.Addr{IP: ipGen, Port: calleePort}); err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		// Allocate a session routing to the callee.
		alloc := memory.CopyFrom(lg.Heap(), BuildAllocate(7, core.Addr{IP: ipGen, Port: calleePort}))
		qt, _ := lg.PushTo(caller, core.SGA(alloc), relayAddr)
		lg.Wait(qt)
		pqt, _ := lg.Pop(caller)
		ev, err := lg.Wait(pqt)
		if err != nil || ev.Err != nil || ev.SGA.Flatten()[0] != OpAllocateOK {
			t.Errorf("allocate failed: %v %v", err, ev.Err)
			return
		}
		ev.SGA.Free()
		// Send data packets through the relay.
		for i := 0; i < 5; i++ {
			payload := []byte{byte('A' + i), byte(i)}
			data := memory.CopyFrom(lg.Heap(), BuildData(7, payload))
			qt, _ := lg.PushTo(caller, core.SGA(data), relayAddr)
			lg.Wait(qt)
			pqt, _ := lg.Pop(callee)
			ev, err := lg.Wait(pqt)
			if err != nil || ev.Err != nil {
				t.Errorf("callee pop: %v", err)
				return
			}
			sid, pl, ok := ParseData(ev.SGA.Flatten())
			if !ok || sid != 7 {
				t.Errorf("bad relayed packet")
				return
			}
			relayed = append(relayed, append([]byte(nil), pl...))
			ev.SGA.Free()
			if ev.From.Port != relayAddr.Port {
				t.Errorf("relayed packet from %v, want relay", ev.From)
			}
		}
	})
	eng.Run()
	if len(relayed) != 5 {
		t.Fatalf("relayed %d packets", len(relayed))
	}
	for i, pl := range relayed {
		if !bytes.Equal(pl, []byte{byte('A' + i), byte(i)}) {
			t.Fatalf("packet %d corrupted: %q", i, pl)
		}
	}
	if stats.Allocations != 1 || stats.Relayed != 5 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRelayDropsUnknownSessionAndMalformed(t *testing.T) {
	eng := sim.NewEngine(82)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	nr, ng := eng.NewNode("relay"), eng.NewNode("gen")
	pr := dpdkdev.Attach(sw, nr, simnet.DefaultLink(), 8192, 0)
	pg := dpdkdev.Attach(sw, ng, simnet.DefaultLink(), 8192, 0)
	lr := catnip.New(nr, pr, catnip.DefaultConfig(ipRelay))
	lg := catnip.New(ng, pg, catnip.DefaultConfig(ipGen))
	lr.SeedARP(ipGen, pg.MAC())
	lg.SeedARP(ipRelay, pr.MAC())
	var stats Stats
	relayAddr := core.Addr{IP: ipRelay, Port: 3478}
	eng.Spawn(nr, func() { Server(lr, relayAddr, &stats) })
	eng.Spawn(ng, func() {
		q, _ := lg.Socket(core.SockDgram)
		// Unknown session.
		d := memory.CopyFrom(lg.Heap(), BuildData(99, []byte("x")))
		qt, _ := lg.PushTo(q, core.SGA(d), relayAddr)
		lg.Wait(qt)
		// Malformed (single opcode byte with no body).
		m := memory.CopyFrom(lg.Heap(), []byte{OpAllocate})
		qt, _ = lg.PushTo(q, core.SGA(m), relayAddr)
		lg.Wait(qt)
		// Let the relay process.
		lg.WaitAny(nil, 5*sim.Millisecond)
	})
	eng.Run()
	if stats.DroppedNoSess != 1 {
		t.Errorf("DroppedNoSess = %d", stats.DroppedNoSess)
	}
	if stats.DroppedMalformed != 1 {
		t.Errorf("DroppedMalformed = %d", stats.DroppedMalformed)
	}
}
