// Package kv is a functional reimplementation of the paper's Redis port
// (§7.2, §7.5): an in-memory key-value server speaking RESP2 over PDPIX
// queues, with optional append-only-file persistence through the storage
// libOS (fsync per write, as the paper configures) and AOF replay on
// startup. The server's event loop is the paper's modified Redis loop:
// pop/push plus wait_any instead of epoll.
package kv

import (
	"fmt"
	"strconv"
)

// RESP2 wire types.
const (
	respSimple  = '+'
	respError   = '-'
	respInteger = ':'
	respBulk    = '$'
	respArray   = '*'
)

// Command is one parsed client command: an array of bulk strings.
type Command [][]byte

// Name returns the upper-cased command name.
func (c Command) Name() string {
	if len(c) == 0 {
		return ""
	}
	return upper(string(c[0]))
}

// upper avoids strings.ToUpper allocation for the common all-caps case.
func upper(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'a' && s[i] <= 'z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if b[j] >= 'a' && b[j] <= 'z' {
					b[j] -= 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

// ParseCommand incrementally parses one RESP command (or inline command)
// from buf. It returns the command, the bytes consumed, and whether a full
// command was present; a nil command with ok=true and n>0 means a protocol
// error was consumed.
func ParseCommand(buf []byte) (cmd Command, n int, ok bool, err error) {
	if len(buf) == 0 {
		return nil, 0, false, nil
	}
	if buf[0] != respArray {
		// Inline command: a plain line of space-separated words.
		line, consumed := readLine(buf)
		if consumed == 0 {
			return nil, 0, false, nil
		}
		var parts [][]byte
		for _, w := range splitWords(line) {
			parts = append(parts, w)
		}
		return parts, consumed, true, nil
	}
	line, consumed := readLine(buf)
	if consumed == 0 {
		return nil, 0, false, nil
	}
	count, cerr := strconv.Atoi(string(line[1:]))
	if cerr != nil || count < 0 || count > 1024*1024 {
		return nil, consumed, true, fmt.Errorf("kv: bad array header %q", line)
	}
	pos := consumed
	cmd = make(Command, 0, count)
	for i := 0; i < count; i++ {
		hdr, hn := readLine(buf[pos:])
		if hn == 0 {
			return nil, 0, false, nil
		}
		if len(hdr) < 1 || hdr[0] != respBulk {
			return nil, pos + hn, true, fmt.Errorf("kv: expected bulk string, got %q", hdr)
		}
		blen, berr := strconv.Atoi(string(hdr[1:]))
		if berr != nil || blen < 0 {
			return nil, pos + hn, true, fmt.Errorf("kv: bad bulk length %q", hdr)
		}
		pos += hn
		if len(buf[pos:]) < blen+2 {
			return nil, 0, false, nil
		}
		cmd = append(cmd, append([]byte(nil), buf[pos:pos+blen]...))
		pos += blen + 2
	}
	return cmd, pos, true, nil
}

// readLine returns the bytes before CRLF and the total consumed including
// the CRLF, or (nil, 0) if no full line is buffered.
func readLine(buf []byte) ([]byte, int) {
	for i := 0; i+1 < len(buf); i++ {
		if buf[i] == '\r' && buf[i+1] == '\n' {
			return buf[:i], i + 2
		}
	}
	return nil, 0
}

// splitWords splits on single spaces.
func splitWords(line []byte) [][]byte {
	var out [][]byte
	start := -1
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			if start >= 0 {
				out = append(out, append([]byte(nil), line[start:i]...))
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// EncodeCommand serializes a command as a RESP array of bulk strings.
func EncodeCommand(args ...[]byte) []byte {
	out := []byte(fmt.Sprintf("*%d\r\n", len(args)))
	for _, a := range args {
		out = append(out, fmt.Sprintf("$%d\r\n", len(a))...)
		out = append(out, a...)
		out = append(out, '\r', '\n')
	}
	return out
}

// Reply constructors.

// SimpleString encodes +s.
func SimpleString(s string) []byte { return []byte("+" + s + "\r\n") }

// ErrorReply encodes -msg.
func ErrorReply(msg string) []byte { return []byte("-" + msg + "\r\n") }

// Integer encodes :n.
func Integer(n int64) []byte { return []byte(":" + strconv.FormatInt(n, 10) + "\r\n") }

// BulkString encodes $len payload; nil encodes the null bulk string.
func BulkString(b []byte) []byte {
	if b == nil {
		return []byte("$-1\r\n")
	}
	out := []byte(fmt.Sprintf("$%d\r\n", len(b)))
	out = append(out, b...)
	return append(out, '\r', '\n')
}

// ParseReply parses one reply from buf, returning the payload (semantics
// depend on kind), bytes consumed, and completeness.
type Reply struct {
	Kind byte
	Str  string // simple/error
	Int  int64
	Bulk []byte // nil for null bulk
}

// ParseReply incrementally parses one server reply.
func ParseReply(buf []byte) (Reply, int, bool, error) {
	if len(buf) == 0 {
		return Reply{}, 0, false, nil
	}
	line, n := readLine(buf)
	if n == 0 {
		return Reply{}, 0, false, nil
	}
	switch buf[0] {
	case respSimple:
		return Reply{Kind: respSimple, Str: string(line[1:])}, n, true, nil
	case respError:
		return Reply{Kind: respError, Str: string(line[1:])}, n, true, nil
	case respInteger:
		v, err := strconv.ParseInt(string(line[1:]), 10, 64)
		return Reply{Kind: respInteger, Int: v}, n, true, err
	case respBulk:
		blen, err := strconv.Atoi(string(line[1:]))
		if err != nil {
			return Reply{}, n, true, err
		}
		if blen < 0 {
			return Reply{Kind: respBulk, Bulk: nil}, n, true, nil
		}
		if len(buf[n:]) < blen+2 {
			return Reply{}, 0, false, nil
		}
		return Reply{Kind: respBulk, Bulk: append([]byte(nil), buf[n:n+blen]...)}, n + blen + 2, true, nil
	default:
		return Reply{}, n, true, fmt.Errorf("kv: unknown reply type %q", buf[0])
	}
}
