package kv

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"demikernel/internal/catnap"
	"demikernel/internal/core"
	"demikernel/internal/demi"
)

// dialRetry dials with retries while the server goroutine binds.
func dialRetry(t *testing.T, l demi.LibOS, addr core.Addr) *Client {
	t.Helper()
	for attempt := 0; ; attempt++ {
		c, err := Dial(l, addr)
		if err == nil {
			return c
		}
		if attempt > 200 {
			t.Fatalf("dial %v: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The portability claim (paper §1): the same application code runs over
// the kernel-bypass libOSes and the POSIX libOS unchanged. These tests run
// the identical kv server/client on the real OS through Catnap.

func TestKVServerOnRealOS(t *testing.T) {
	srv := catnap.New("")
	defer srv.Shutdown()
	addr := core.Addr{Port: 42810}
	var stats ServerStats
	go Server(srv, ServerConfig{Addr: addr}, &stats)

	cliOS := catnap.New("")
	defer cliOS.Shutdown()
	c := dialRetry(t, cliOS, addr)
	defer c.Close()
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if err := c.Set(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	v, err := c.Get([]byte("key-7"))
	if err != nil || !bytes.Equal(v, []byte("val-7")) {
		t.Fatalf("get = %q, %v", v, err)
	}
	r, err := c.Do([]byte("DBSIZE"))
	if err != nil || r.Int != 20 {
		t.Fatalf("dbsize = %+v, %v", r, err)
	}
}

func TestKVServerAOFOnRealOS(t *testing.T) {
	dir := t.TempDir()
	addr := core.Addr{Port: 42811}
	srv := catnap.New(dir)
	defer srv.Shutdown()
	var stats ServerStats
	go Server(srv, ServerConfig{Addr: addr, AOFName: "aof.log"}, &stats)

	cliOS := catnap.New("")
	defer cliOS.Shutdown()
	c := dialRetry(t, cliOS, addr)
	c.Set([]byte("persist"), []byte("me"))
	c.Close()

	// "Restart" on the same directory: the AOF replays.
	srv2 := catnap.New(dir)
	defer srv2.Shutdown()
	addr2 := core.Addr{Port: 42812}
	var stats2 ServerStats
	go Server(srv2, ServerConfig{Addr: addr2, AOFName: "aof.log"}, &stats2)
	c2 := dialRetry(t, cliOS, addr2)
	defer c2.Close()
	v, err := c2.Get([]byte("persist"))
	if err != nil || !bytes.Equal(v, []byte("me")) {
		t.Fatalf("after restart get = %q, %v (replayed=%d)", v, err, stats2.ReplayedRecords)
	}
}
