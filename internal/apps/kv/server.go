package kv

import (
	"fmt"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
)

// ServerConfig configures the KV server.
type ServerConfig struct {
	Addr core.Addr
	// AOFName enables the append-only file: every write command is pushed
	// to this storage log and made durable before the reply (the paper
	// fsyncs after each SET for strong guarantees, §7.5).
	AOFName string
	// MaxConns bounds concurrent connections (0 = 64).
	MaxConns int
}

// ServerStats counts server activity.
type ServerStats struct {
	Commands, Writes uint64
	AOFRecords       uint64
	AOFErrors        uint64
	ReplayedRecords  uint64
	Connections      uint64
}

// connState buffers one connection's partial commands.
type connState struct {
	qd  core.QDesc
	buf []byte
}

// Server runs the KV server until the libOS stops. Startup replays the
// AOF (if any); the event loop is pop/push/wait_any over all connections.
func Server(l demi.LibOS, cfg ServerConfig, stats *ServerStats) error {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 64
	}
	store := NewStore()
	logQD := core.InvalidQD
	if cfg.AOFName != "" {
		var err error
		logQD, err = l.Open(cfg.AOFName)
		if err != nil {
			return fmt.Errorf("kv: open aof: %w", err)
		}
		if err := replayAOF(l, logQD, store, stats); err != nil {
			return fmt.Errorf("kv: aof replay: %w", err)
		}
	}

	lqd, err := l.Socket(core.SockStream)
	if err != nil {
		return err
	}
	if err := l.Bind(lqd, cfg.Addr); err != nil {
		return err
	}
	if err := l.Listen(lqd, cfg.MaxConns); err != nil {
		return err
	}
	aqt, err := l.Accept(lqd)
	if err != nil {
		return err
	}
	tokens := []core.QToken{aqt}
	conns := map[core.QToken]*connState{}

	drop := func(i int, c *connState) {
		l.Close(c.qd)
		tokens = append(tokens[:i], tokens[i+1:]...)
	}

	for {
		i, ev, err := l.WaitAny(tokens, -1)
		if err != nil {
			return nil // stopped
		}
		if ev.Op == core.OpAccept {
			if ev.Err == nil {
				stats.Connections++
				c := &connState{qd: ev.NewQD}
				if pqt, perr := l.Pop(c.qd); perr == nil {
					tokens = append(tokens, pqt)
					conns[pqt] = c
				}
			}
			if aqt, err = l.Accept(lqd); err != nil {
				return err
			}
			tokens[i] = aqt
			continue
		}
		// Pop on a connection.
		qt := tokens[i]
		c := conns[qt]
		delete(conns, qt)
		if ev.Err != nil || len(ev.SGA.Segs) == 0 {
			drop(i, c)
			continue
		}
		c.buf = append(c.buf, ev.SGA.Flatten()...)
		ev.SGA.Free()
		reply, fatal := serveBuffered(l, store, logQD, c, stats)
		if fatal != nil {
			return nil
		}
		if reply == nil {
			// Malformed protocol: hang up.
			drop(i, c)
			continue
		}
		if len(reply) > 0 {
			out := memory.CopyFrom(l.Heap(), reply)
			wqt, werr := l.Push(c.qd, core.SGA(out))
			if werr != nil {
				out.Free() // failed push leaves ownership with us
				drop(i, c)
				continue
			}
			if _, werr := l.Wait(wqt); werr != nil {
				return nil
			}
			out.Free()
		}
		pqt, perr := l.Pop(c.qd)
		if perr != nil {
			drop(i, c)
			continue
		}
		tokens[i] = pqt
		conns[pqt] = c
	}
}

// serveBuffered executes every complete command in the connection buffer,
// returning the concatenated replies. A nil reply signals a protocol
// error; a non-nil error signals libOS shutdown.
func serveBuffered(l demi.LibOS, store *Store, logQD core.QDesc, c *connState, stats *ServerStats) ([]byte, error) {
	var replies []byte
	for {
		cmd, n, ok, perr := ParseCommand(c.buf)
		if perr != nil {
			return nil, nil
		}
		if !ok {
			break
		}
		c.buf = c.buf[n:]
		stats.Commands++
		// AOF rewrite: compact the log to one SET per live key (Redis's
		// BGREWRITEAOF, done in the foreground as the paper's Cattree is
		// a synchronous log).
		if cmd.Name() == "REWRITEAOF" && logQD != core.InvalidQD {
			if err := rewriteAOF(l, logQD, store, stats); err != nil {
				return nil, err
			}
			replies = append(replies, SimpleString("OK")...)
			continue
		}
		if logQD != core.InvalidQD && IsWrite(cmd.Name()) {
			stats.Writes++
			rec := memory.CopyFrom(l.Heap(), EncodeCommand(cmd...))
			lqt, lerr := l.Push(logQD, core.SGA(rec))
			if lerr != nil {
				// Degrade, don't die: the write is refused (it was never
				// durable) and the client told why; reads and the server
				// itself keep going.
				rec.Free()
				stats.AOFErrors++
				replies = append(replies, ErrorReply("ERR aof write failed: "+lerr.Error())...)
				continue
			}
			lev, lerr := l.Wait(lqt)
			if lerr != nil {
				return nil, lerr // waiter shutdown is fatal, not an I/O error
			}
			rec.Free()
			if lev.Err != nil {
				stats.AOFErrors++
				replies = append(replies, ErrorReply("ERR aof write failed: "+lev.Err.Error())...)
				continue
			}
			stats.AOFRecords++
		}
		replies = append(replies, store.Execute(cmd)...)
	}
	return replies, nil
}

// rewriteAOF truncates the log and writes a snapshot: one SET per key.
func rewriteAOF(l demi.LibOS, logQD core.QDesc, store *Store, stats *ServerStats) error {
	s, ok := l.(demi.StorageOS)
	if !ok {
		return core.ErrNotSupported
	}
	if err := s.Truncate(logQD); err != nil {
		return err
	}
	for _, cmd := range store.Snapshot() {
		rec := memory.CopyFrom(l.Heap(), EncodeCommand(cmd...))
		qt, err := l.Push(logQD, core.SGA(rec))
		if err != nil {
			rec.Free() // failed push leaves ownership with us
			return err
		}
		if ev, err := l.Wait(qt); err != nil {
			return err
		} else if ev.Err != nil {
			return ev.Err
		}
		rec.Free()
		stats.AOFRecords++
	}
	return nil
}

// replayAOF re-executes the write log from the start (paper: Redis AOF
// recovery; exercised after crashes in the tests).
func replayAOF(l demi.LibOS, logQD core.QDesc, store *Store, stats *ServerStats) error {
	if s, ok := l.(demi.StorageOS); ok {
		s.Seek(logQD, 0)
	}
	for {
		pqt, err := l.Pop(logQD)
		if err != nil {
			return err
		}
		ev, err := l.Wait(pqt)
		if err != nil {
			return err
		}
		if ev.Err != nil {
			return ev.Err
		}
		if len(ev.SGA.Segs) == 0 {
			return nil // EOF
		}
		data := ev.SGA.Flatten()
		ev.SGA.Free()
		for len(data) > 0 {
			cmd, n, ok, perr := ParseCommand(data)
			if perr != nil || !ok {
				break
			}
			data = data[n:]
			store.Execute(cmd)
			stats.ReplayedRecords++
		}
	}
}
