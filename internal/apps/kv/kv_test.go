package kv

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestStoreBasicOps(t *testing.T) {
	s := NewStore()
	if got := s.Execute(Command{[]byte("SET"), []byte("k"), []byte("v")}); !bytes.Equal(got, SimpleString("OK")) {
		t.Fatalf("SET reply %q", got)
	}
	if got := s.Execute(Command{[]byte("GET"), []byte("k")}); !bytes.Equal(got, BulkString([]byte("v"))) {
		t.Fatalf("GET reply %q", got)
	}
	if got := s.Execute(Command{[]byte("GET"), []byte("missing")}); !bytes.Equal(got, BulkString(nil)) {
		t.Fatalf("GET missing reply %q", got)
	}
	if got := s.Execute(Command{[]byte("EXISTS"), []byte("k"), []byte("missing")}); !bytes.Equal(got, Integer(1)) {
		t.Fatalf("EXISTS reply %q", got)
	}
	if got := s.Execute(Command{[]byte("DEL"), []byte("k")}); !bytes.Equal(got, Integer(1)) {
		t.Fatalf("DEL reply %q", got)
	}
	if s.Len() != 0 {
		t.Fatal("store not empty after DEL")
	}
}

func TestStoreIncrDecr(t *testing.T) {
	s := NewStore()
	for want := int64(1); want <= 3; want++ {
		if got := s.Execute(Command{[]byte("INCR"), []byte("n")}); !bytes.Equal(got, Integer(want)) {
			t.Fatalf("INCR -> %q, want %d", got, want)
		}
	}
	if got := s.Execute(Command{[]byte("DECR"), []byte("n")}); !bytes.Equal(got, Integer(2)) {
		t.Fatalf("DECR -> %q", got)
	}
	s.Execute(Command{[]byte("SET"), []byte("s"), []byte("abc")})
	if got := s.Execute(Command{[]byte("INCR"), []byte("s")}); got[0] != '-' {
		t.Fatalf("INCR on string should error, got %q", got)
	}
}

func TestStoreAppendStrlenCase(t *testing.T) {
	s := NewStore()
	s.Execute(Command{[]byte("append"), []byte("k"), []byte("ab")}) // lower-case name
	s.Execute(Command{[]byte("APPEND"), []byte("k"), []byte("cd")})
	if got := s.Execute(Command{[]byte("STRLEN"), []byte("k")}); !bytes.Equal(got, Integer(4)) {
		t.Fatalf("STRLEN %q", got)
	}
	if got := s.Execute(Command{[]byte("GET"), []byte("k")}); !bytes.Equal(got, BulkString([]byte("abcd"))) {
		t.Fatalf("GET %q", got)
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewStore()
	for _, cmd := range []Command{
		{[]byte("SET"), []byte("k")},
		{[]byte("GET")},
		{[]byte("NOSUCH")},
		{},
	} {
		if got := s.Execute(cmd); len(got) == 0 || got[0] != '-' {
			t.Errorf("command %v should error, got %q", cmd, got)
		}
	}
}

func TestParseCommandRoundtrip(t *testing.T) {
	enc := EncodeCommand([]byte("SET"), []byte("key"), []byte("value with spaces"))
	cmd, n, ok, err := ParseCommand(enc)
	if err != nil || !ok || n != len(enc) {
		t.Fatalf("parse: ok=%v n=%d err=%v", ok, n, err)
	}
	if cmd.Name() != "SET" || string(cmd[2]) != "value with spaces" {
		t.Fatalf("cmd = %q", cmd)
	}
}

func TestParseCommandIncremental(t *testing.T) {
	enc := EncodeCommand([]byte("GET"), []byte("abc"))
	for cut := 0; cut < len(enc); cut++ {
		_, _, ok, err := ParseCommand(enc[:cut])
		if err != nil {
			t.Fatalf("partial at %d errored: %v", cut, err)
		}
		if ok {
			t.Fatalf("partial buffer at %d parsed as complete", cut)
		}
	}
}

func TestParseInlineCommand(t *testing.T) {
	cmd, n, ok, err := ParseCommand([]byte("PING hello\r\nrest"))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if n != len("PING hello\r\n") {
		t.Fatalf("consumed %d", n)
	}
	if cmd.Name() != "PING" || string(cmd[1]) != "hello" {
		t.Fatalf("cmd = %q", cmd)
	}
}

func TestParseCommandPipelined(t *testing.T) {
	buf := append(EncodeCommand([]byte("SET"), []byte("a"), []byte("1")),
		EncodeCommand([]byte("GET"), []byte("a"))...)
	c1, n1, ok, _ := ParseCommand(buf)
	if !ok || c1.Name() != "SET" {
		t.Fatal("first parse failed")
	}
	c2, n2, ok, _ := ParseCommand(buf[n1:])
	if !ok || c2.Name() != "GET" || n1+n2 != len(buf) {
		t.Fatal("second parse failed")
	}
}

func TestReplyRoundtrips(t *testing.T) {
	cases := []struct {
		enc  []byte
		kind byte
	}{
		{SimpleString("OK"), '+'},
		{ErrorReply("ERR boom"), '-'},
		{Integer(-42), ':'},
		{BulkString([]byte("hello")), '$'},
		{BulkString(nil), '$'},
	}
	for _, c := range cases {
		r, n, ok, err := ParseReply(c.enc)
		if err != nil || !ok || n != len(c.enc) {
			t.Fatalf("reply %q: ok=%v err=%v", c.enc, ok, err)
		}
		if r.Kind != c.kind {
			t.Errorf("reply %q kind = %c", c.enc, r.Kind)
		}
	}
	r, _, ok, _ := ParseReply(Integer(-42))
	if !ok || r.Int != -42 {
		t.Error("integer value lost")
	}
	r, _, ok, _ = ParseReply(BulkString(nil))
	if !ok || r.Bulk != nil {
		t.Error("null bulk not nil")
	}
}

// Property: any command of arbitrary binary arguments survives
// encode/parse roundtrip, even with CRLF bytes inside values.
func TestCommandRoundtripProperty(t *testing.T) {
	f := func(args [][]byte) bool {
		if len(args) == 0 {
			args = [][]byte{[]byte("PING")}
		}
		enc := EncodeCommand(args...)
		cmd, n, ok, err := ParseCommand(enc)
		if err != nil || !ok || n != len(enc) || len(cmd) != len(args) {
			return false
		}
		for i := range args {
			if !bytes.Equal(cmd[i], args[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: executing the same command sequence twice on fresh stores
// gives identical replies (determinism), and SET/GET agree.
func TestStoreSetGetProperty(t *testing.T) {
	f := func(keys []string, values [][]byte) bool {
		s := NewStore()
		n := len(keys)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			s.Execute(Command{[]byte("SET"), []byte(keys[i]), values[i]})
		}
		for i := 0; i < n; i++ {
			// The last write for each key wins.
			want := values[i]
			for j := i + 1; j < n; j++ {
				if keys[j] == keys[i] {
					want = values[j]
				}
			}
			if want == nil {
				want = []byte{} // the store holds empty, not null
			}
			got := s.Execute(Command{[]byte("GET"), []byte(keys[i])})
			if !bytes.Equal(got, BulkString(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUpperHelper(t *testing.T) {
	for in, want := range map[string]string{"get": "GET", "GET": "GET", "GeT": "GET", "": ""} {
		if got := upper(in); got != want {
			t.Errorf("upper(%q) = %q", in, got)
		}
	}
}

func TestEncodeCommandFormat(t *testing.T) {
	got := EncodeCommand([]byte("GET"), []byte("k"))
	want := "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
	if string(got) != want {
		t.Errorf("encoding = %q, want %q", got, want)
	}
	_ = fmt.Sprintf // keep fmt imported via use
}
