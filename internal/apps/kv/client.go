package kv

import (
	"fmt"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
)

// Client is a minimal RESP client over PDPIX, the redis-benchmark
// equivalent used by the Figure 11 harness.
type Client struct {
	lib demi.LibOS
	qd  core.QDesc
	buf []byte
}

// Dial connects to the server.
func Dial(l demi.LibOS, server core.Addr) (*Client, error) {
	return DialFrom(l, core.Addr{}, server)
}

// DialFrom is Dial with an explicit local endpoint, bound before
// connecting. Scale-out harnesses pick the source port so the flow's RSS
// hash steers it at a chosen server core; the zero Addr means "any".
func DialFrom(l demi.LibOS, local, server core.Addr) (*Client, error) {
	qd, err := l.Socket(core.SockStream)
	if err != nil {
		return nil, err
	}
	if local != (core.Addr{}) {
		if err := l.Bind(qd, local); err != nil {
			return nil, err
		}
	}
	cqt, err := l.Connect(qd, server)
	if err != nil {
		return nil, err
	}
	ev, err := l.Wait(cqt)
	if err != nil {
		return nil, err
	}
	if ev.Err != nil {
		return nil, ev.Err
	}
	return &Client{lib: l, qd: qd}, nil
}

// Close releases the connection.
func (c *Client) Close() { c.lib.Close(c.qd) }

// Do sends one command and waits for its reply.
func (c *Client) Do(args ...[]byte) (Reply, error) {
	out := memory.CopyFrom(c.lib.Heap(), EncodeCommand(args...))
	qt, err := c.lib.Push(c.qd, core.SGA(out))
	if err != nil {
		out.Free()
		return Reply{}, err
	}
	ev, err := c.lib.Wait(qt)
	if err != nil {
		return Reply{}, err
	}
	out.Free()
	if ev.Err != nil {
		// Failed push (connection died): surface it now rather than
		// blocking on a reply that will never come.
		return Reply{}, ev.Err
	}
	for {
		if reply, n, ok, err := ParseReply(c.buf); ok {
			c.buf = c.buf[n:]
			return reply, err
		}
		pqt, err := c.lib.Pop(c.qd)
		if err != nil {
			return Reply{}, err
		}
		ev, err := c.lib.Wait(pqt)
		if err != nil {
			return Reply{}, err
		}
		if ev.Err != nil {
			return Reply{}, ev.Err
		}
		if len(ev.SGA.Segs) == 0 {
			return Reply{}, core.ErrQueueClosed
		}
		c.buf = append(c.buf, ev.SGA.Flatten()...)
		ev.SGA.Free()
	}
}

// Set stores key=value.
func (c *Client) Set(key, value []byte) error {
	r, err := c.Do([]byte("SET"), key, value)
	if err != nil {
		return err
	}
	if r.Kind == respError {
		return fmt.Errorf("kv: %s", r.Str)
	}
	return nil
}

// Get fetches key, returning nil for a missing key.
func (c *Client) Get(key []byte) ([]byte, error) {
	r, err := c.Do([]byte("GET"), key)
	if err != nil {
		return nil, err
	}
	if r.Kind == respError {
		return nil, fmt.Errorf("kv: %s", r.Str)
	}
	return r.Bulk, nil
}

// BenchResult summarizes a closed-loop run.
type BenchResult struct {
	Ops     int
	Elapsed time.Duration
	RTTs    []time.Duration
}

// OpsPerSec returns throughput.
func (r BenchResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Benchmark runs ops closed-loop operations: op i targets key chosen by
// keyFn(i); SET when setFrac of the index space, GET otherwise.
func (c *Client) Benchmark(ops int, valueSize int, keyFn func(i int) []byte, isSet func(i int) bool, clock sim.Clock) (BenchResult, error) {
	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	res := BenchResult{RTTs: make([]time.Duration, 0, ops)}
	start := clock.Now()
	for i := 0; i < ops; i++ {
		opStart := clock.Now()
		var err error
		if isSet(i) {
			err = c.Set(keyFn(i), value)
		} else {
			_, err = c.Get(keyFn(i))
		}
		if err != nil {
			return res, err
		}
		res.RTTs = append(res.RTTs, clock.Now().Sub(opStart))
		res.Ops++
	}
	res.Elapsed = clock.Now().Sub(start)
	return res, nil
}
