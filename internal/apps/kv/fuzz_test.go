package kv

import (
	"testing"
	"testing/quick"
)

// The RESP parser faces untrusted client bytes: it must never panic and
// must always make progress (consume bytes or report incomplete).
func TestParseCommandNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		cmd, n, complete, _ := ParseCommand(b)
		if complete && n <= 0 && len(b) > 0 {
			return false // claimed completion without consuming
		}
		_ = cmd
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseReplyNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ParseReply(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Adversarial RESP headers must be rejected without huge allocations.
func TestParseCommandHostileHeaders(t *testing.T) {
	for _, in := range []string{
		"*99999999999999999999\r\n",    // overflow array count
		"*1048577\r\n",                 // over the element cap
		"*2\r\n$-5\r\nxx\r\n",          // negative bulk length
		"*1\r\n$99999999999999999\r\n", // overflow bulk length
		"*1\r\nnotabulk\r\n",           // wrong element type
	} {
		cmd, _, complete, err := ParseCommand([]byte(in))
		if complete && err == nil && cmd != nil {
			t.Errorf("hostile input %q accepted as %q", in, cmd)
		}
	}
}

// Execute must tolerate arbitrary command arrays.
func TestExecuteNeverPanics(t *testing.T) {
	f := func(args [][]byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		s := NewStore()
		reply := s.Execute(Command(args))
		return len(reply) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
