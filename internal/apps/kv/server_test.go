package kv

import (
	"bytes"
	"testing"

	"demikernel/internal/catnip"
	"demikernel/internal/cattree"
	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/spdkdev"
	"demikernel/internal/wire"
)

var (
	ipSrv = wire.IPAddr{10, 4, 0, 1}
	ipCli = wire.IPAddr{10, 4, 0, 2}
)

// cluster builds a server (Catnip×Cattree) and client (Catnip) pair.
func cluster(t *testing.T) (*sim.Engine, *demi.Combined, *catnip.LibOS, *spdkdev.Device) {
	t.Helper()
	eng := sim.NewEngine(51)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	ns, nc := eng.NewNode("kv-server"), eng.NewNode("kv-client")
	ps := dpdkdev.Attach(sw, ns, simnet.DefaultLink(), 8192, 0)
	pc := dpdkdev.Attach(sw, nc, simnet.DefaultLink(), 8192, 0)
	ls := catnip.New(ns, ps, catnip.DefaultConfig(ipSrv))
	lc := catnip.New(nc, pc, catnip.DefaultConfig(ipCli))
	ls.SeedARP(ipCli, pc.MAC())
	lc.SeedARP(ipSrv, ps.MAC())
	dev := spdkdev.New(ns, spdkdev.OptaneParams(), 1<<16)
	srv := demi.NewCombined(ls, cattree.New(ns, dev))
	return eng, srv, lc, dev
}

func TestKVServerGetSet(t *testing.T) {
	eng, srv, lc, _ := cluster(t)
	var stats ServerStats
	eng.Spawn(srv.Net.(*catnip.LibOS).Node(), func() {
		Server(srv, ServerConfig{Addr: core.Addr{IP: ipSrv, Port: 6379}}, &stats)
	})
	eng.Spawn(lc.Node(), func() {
		c, err := Dial(lc, core.Addr{IP: ipSrv, Port: 6379})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Set([]byte("name"), []byte("demikernel")); err != nil {
			t.Errorf("set: %v", err)
			return
		}
		v, err := c.Get([]byte("name"))
		if err != nil || !bytes.Equal(v, []byte("demikernel")) {
			t.Errorf("get = %q, %v", v, err)
		}
		if v, _ := c.Get([]byte("missing")); v != nil {
			t.Errorf("missing key returned %q", v)
		}
		r, err := c.Do([]byte("INCR"), []byte("ctr"))
		if err != nil || r.Int != 1 {
			t.Errorf("incr: %+v %v", r, err)
		}
		r, _ = c.Do([]byte("PING"))
		if r.Str != "PONG" {
			t.Errorf("ping: %+v", r)
		}
		c.Close()
	})
	eng.Run()
	if stats.Commands < 5 {
		t.Errorf("server saw %d commands", stats.Commands)
	}
}

func TestKVServerAOFDurabilityAndRecovery(t *testing.T) {
	eng, srv, lc, dev := cluster(t)
	var stats ServerStats
	eng.Spawn(srv.Net.(*catnip.LibOS).Node(), func() {
		Server(srv, ServerConfig{Addr: core.Addr{IP: ipSrv, Port: 6379}, AOFName: "appendonly.aof"}, &stats)
	})
	eng.Spawn(lc.Node(), func() {
		c, err := Dial(lc, core.Addr{IP: ipSrv, Port: 6379})
		if err != nil {
			return
		}
		c.Set([]byte("k1"), []byte("v1"))
		c.Set([]byte("k2"), []byte("v2"))
		c.Do([]byte("DEL"), []byte("k1"))
		c.Do([]byte("INCR"), []byte("n"))
		c.Close()
	})
	eng.Run()
	if stats.AOFRecords != 4 {
		t.Fatalf("AOF records = %d, want 4", stats.AOFRecords)
	}
	// 4 AOF records + 1 directory record for the new log name.
	if dev.Stats().Writes != 5 {
		t.Fatalf("device writes = %d, want 5 (fsync per write + directory)", dev.Stats().Writes)
	}

	// "Restart": replay the AOF into a fresh store on the same device.
	eng2 := sim.NewEngine(52)
	node := eng2.NewNode("restarted")
	// The device's durable blocks carry over; rebind it to the new node.
	dev2 := spdkdev.New(node, spdkdev.OptaneParams(), 1<<16)
	copyDevice(t, dev, dev2)
	stor := cattree.New(node, dev2)
	var replayed ServerStats
	store := NewStore()
	eng2.Spawn(node, func() {
		if err := stor.Mount(); err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		qd, _ := stor.Open("appendonly.aof")
		if err := replayAOF(stor, qd, store, &replayed); err != nil {
			t.Errorf("replay: %v", err)
		}
	})
	eng2.Run()
	if replayed.ReplayedRecords != 4 {
		t.Fatalf("replayed %d records, want 4", replayed.ReplayedRecords)
	}
	if got := store.Execute(Command{[]byte("GET"), []byte("k2")}); !bytes.Equal(got, BulkString([]byte("v2"))) {
		t.Errorf("k2 after replay = %q", got)
	}
	if got := store.Execute(Command{[]byte("GET"), []byte("k1")}); !bytes.Equal(got, BulkString(nil)) {
		t.Errorf("deleted k1 resurrected: %q", got)
	}
	if got := store.Execute(Command{[]byte("GET"), []byte("n")}); !bytes.Equal(got, BulkString([]byte("1"))) {
		t.Errorf("counter after replay = %q", got)
	}
}

// copyDevice clones durable blocks between simulated devices (stands in
// for the disk surviving a process restart).
func copyDevice(t *testing.T, from, to *spdkdev.Device) {
	t.Helper()
	from.CloneBlocksInto(to)
}

func TestKVServerPipelinedCommands(t *testing.T) {
	eng, srv, lc, _ := cluster(t)
	var stats ServerStats
	eng.Spawn(srv.Net.(*catnip.LibOS).Node(), func() {
		Server(srv, ServerConfig{Addr: core.Addr{IP: ipSrv, Port: 6379}}, &stats)
	})
	var replies []Reply
	eng.Spawn(lc.Node(), func() {
		c, err := Dial(lc, core.Addr{IP: ipSrv, Port: 6379})
		if err != nil {
			return
		}
		// Hand-pipeline: two commands in one push.
		batch := append(EncodeCommand([]byte("SET"), []byte("p"), []byte("q")),
			EncodeCommand([]byte("GET"), []byte("p"))...)
		out := c.lib.Heap().Alloc(len(batch))
		copy(out.Bytes(), batch)
		qt, _ := c.lib.Push(c.qd, core.SGA(out))
		c.lib.Wait(qt)
		out.Free()
		for len(replies) < 2 {
			pqt, _ := c.lib.Pop(c.qd)
			ev, err := c.lib.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			c.buf = append(c.buf, ev.SGA.Flatten()...)
			ev.SGA.Free()
			for {
				r, n, ok, _ := ParseReply(c.buf)
				if !ok {
					break
				}
				c.buf = c.buf[n:]
				replies = append(replies, r)
			}
		}
		c.Close()
	})
	eng.Run()
	if len(replies) != 2 || replies[0].Str != "OK" || !bytes.Equal(replies[1].Bulk, []byte("q")) {
		t.Fatalf("replies = %+v", replies)
	}
}

func TestAOFRewriteCompactsLog(t *testing.T) {
	eng, srv, lc, dev := cluster(t)
	var stats ServerStats
	eng.Spawn(srv.Net.(*catnip.LibOS).Node(), func() {
		Server(srv, ServerConfig{Addr: core.Addr{IP: ipSrv, Port: 6379}, AOFName: "appendonly.aof"}, &stats)
	})
	eng.Spawn(lc.Node(), func() {
		c, err := Dial(lc, core.Addr{IP: ipSrv, Port: 6379})
		if err != nil {
			return
		}
		// Churn one key 50 times, then compact.
		for i := 0; i < 50; i++ {
			c.Set([]byte("hot"), []byte{byte(i)})
		}
		c.Set([]byte("cold"), []byte("x"))
		r, err := c.Do([]byte("REWRITEAOF"))
		if err != nil || r.Str != "OK" {
			t.Errorf("rewrite: %+v %v", r, err)
		}
		c.Close()
	})
	eng.Run()
	// After rewrite the log holds exactly one record per live key.
	if tail := srv.Stor.(*cattree.LibOS).TailBlock("appendonly.aof"); tail != 2 {
		t.Fatalf("log tail = %d blocks after rewrite, want 2 (one per key)", tail)
	}

	// Recovery from the compacted log must reproduce the final state.
	node2 := sim.NewEngine(99).NewNode("r")
	_ = node2
	eng2 := sim.NewEngine(99)
	node := eng2.NewNode("restarted")
	dev2 := spdkdev.New(node, spdkdev.OptaneParams(), 1<<16)
	dev.CloneBlocksInto(dev2)
	stor := cattree.New(node, dev2)
	store := NewStore()
	var replayed ServerStats
	eng2.Spawn(node, func() {
		if err := stor.Mount(); err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		qd, _ := stor.Open("appendonly.aof")
		replayAOF(stor, qd, store, &replayed)
	})
	eng2.Run()
	if replayed.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want 2", replayed.ReplayedRecords)
	}
	if got := store.Execute(Command{[]byte("GET"), []byte("hot")}); !bytes.Equal(got, BulkString([]byte{49})) {
		t.Errorf("hot after compacted replay = %q", got)
	}
}
