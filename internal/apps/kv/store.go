package kv

import (
	"sort"
	"strconv"
)

// Store is the in-memory keyspace. Keys and values are immutable once
// stored (Redis strings are not updated in place), which is exactly the
// property that lets Demikernel's use-after-free protection give Redis
// zero-copy I/O with no code changes (paper §4.1, §7.2).
type Store struct {
	m map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{m: make(map[string][]byte)} }

// Len returns the number of keys.
func (s *Store) Len() int { return len(s.m) }

// IsWrite reports whether the command mutates the store (and therefore
// must be logged to the AOF before replying).
func IsWrite(name string) bool {
	switch name {
	case "SET", "DEL", "INCR", "DECR", "APPEND", "FLUSHALL", "SETNX":
		return true
	}
	return false
}

// Snapshot returns one SET command per key in sorted key order (so AOF
// rewrites are deterministic), the store's canonical compact form.
func (s *Store) Snapshot() []Command {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Command, 0, len(keys))
	for _, k := range keys {
		out = append(out, Command{[]byte("SET"), []byte(k), s.m[k]})
	}
	return out
}

// Execute runs one command and returns the RESP-encoded reply.
func (s *Store) Execute(cmd Command) []byte {
	switch name := cmd.Name(); name {
	case "PING":
		if len(cmd) > 1 {
			return BulkString(cmd[1])
		}
		return SimpleString("PONG")
	case "ECHO":
		if len(cmd) != 2 {
			return wrongArity(name)
		}
		return BulkString(cmd[1])
	case "SET":
		if len(cmd) < 3 {
			return wrongArity(name)
		}
		s.m[string(cmd[1])] = cloneValue(cmd[2])
		return SimpleString("OK")
	case "SETNX":
		if len(cmd) != 3 {
			return wrongArity(name)
		}
		if _, exists := s.m[string(cmd[1])]; exists {
			return Integer(0)
		}
		s.m[string(cmd[1])] = cloneValue(cmd[2])
		return Integer(1)
	case "GET":
		if len(cmd) != 2 {
			return wrongArity(name)
		}
		v, ok := s.m[string(cmd[1])]
		if !ok {
			return BulkString(nil)
		}
		return BulkString(v)
	case "DEL":
		if len(cmd) < 2 {
			return wrongArity(name)
		}
		n := int64(0)
		for _, k := range cmd[1:] {
			if _, ok := s.m[string(k)]; ok {
				delete(s.m, string(k))
				n++
			}
		}
		return Integer(n)
	case "EXISTS":
		if len(cmd) < 2 {
			return wrongArity(name)
		}
		n := int64(0)
		for _, k := range cmd[1:] {
			if _, ok := s.m[string(k)]; ok {
				n++
			}
		}
		return Integer(n)
	case "INCR", "DECR":
		if len(cmd) != 2 {
			return wrongArity(name)
		}
		delta := int64(1)
		if name == "DECR" {
			delta = -1
		}
		cur := int64(0)
		if v, ok := s.m[string(cmd[1])]; ok {
			parsed, err := strconv.ParseInt(string(v), 10, 64)
			if err != nil {
				return ErrorReply("ERR value is not an integer or out of range")
			}
			cur = parsed
		}
		cur += delta
		s.m[string(cmd[1])] = []byte(strconv.FormatInt(cur, 10))
		return Integer(cur)
	case "APPEND":
		if len(cmd) != 3 {
			return wrongArity(name)
		}
		// Append builds a new value; the old one stays untouched for any
		// in-flight zero-copy send (no update in place).
		old := s.m[string(cmd[1])]
		next := make([]byte, 0, len(old)+len(cmd[2]))
		next = append(append(next, old...), cmd[2]...)
		s.m[string(cmd[1])] = next
		return Integer(int64(len(next)))
	case "STRLEN":
		if len(cmd) != 2 {
			return wrongArity(name)
		}
		return Integer(int64(len(s.m[string(cmd[1])])))
	case "DBSIZE":
		return Integer(int64(len(s.m)))
	case "FLUSHALL":
		s.m = make(map[string][]byte)
		return SimpleString("OK")
	case "":
		return ErrorReply("ERR empty command")
	default:
		return ErrorReply("ERR unknown command '" + name + "'")
	}
}

// cloneValue copies a value, keeping empty values non-nil so GET can
// distinguish an empty string from a missing key.
func cloneValue(v []byte) []byte {
	return append(make([]byte, 0, len(v)), v...)
}

func wrongArity(name string) []byte {
	return ErrorReply("ERR wrong number of arguments for '" + name + "' command")
}
