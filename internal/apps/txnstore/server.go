package txnstore

import (
	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
)

// versioned is one key's replicated state.
type versioned struct {
	value   []byte
	version uint64
}

// Replica is one storage server: a versioned in-memory keyspace behind the
// RPC interface.
type Replica struct {
	data map[string]versioned
	// Stats
	Gets, Puts, Rejected uint64
}

// NewReplica returns an empty replica.
func NewReplica() *Replica { return &Replica{data: make(map[string]versioned)} }

// Load installs a key directly (test/bench preloading).
func (r *Replica) Load(key string, value []byte, version uint64) {
	r.data[key] = versioned{value: append([]byte(nil), value...), version: version}
}

// Len returns the number of keys stored.
func (r *Replica) Len() int { return len(r.data) }

// handle executes one decoded request.
func (r *Replica) handle(msg any) any {
	switch m := msg.(type) {
	case GetRequest:
		r.Gets++
		v, ok := r.data[string(m.Key)]
		return GetReply{Found: ok, Value: v.value, Version: v.version}
	case PutRequest:
		r.Puts++
		cur := r.data[string(m.Key)]
		if m.Conditional && cur.version != m.Expected {
			r.Rejected++
			return PutReply{Applied: false}
		}
		if !m.Conditional && m.Version <= cur.version {
			// Last-writer-wins: stale replicated writes are dropped.
			r.Rejected++
			return PutReply{Applied: false}
		}
		r.data[string(m.Key)] = versioned{
			value:   append([]byte(nil), m.Value...),
			version: m.Version,
		}
		return PutReply{Applied: true}
	default:
		return PutReply{Applied: false}
	}
}

// Serve runs the replica's RPC loop on l at addr until the libOS stops.
func (r *Replica) Serve(l demi.LibOS, addr core.Addr) error {
	lqd, err := l.Socket(core.SockStream)
	if err != nil {
		return err
	}
	if err := l.Bind(lqd, addr); err != nil {
		return err
	}
	if err := l.Listen(lqd, 16); err != nil {
		return err
	}
	aqt, err := l.Accept(lqd)
	if err != nil {
		return err
	}
	tokens := []core.QToken{aqt}
	type connState struct {
		qd  core.QDesc
		buf []byte
	}
	conns := map[core.QToken]*connState{}
	for {
		i, ev, err := l.WaitAny(tokens, -1)
		if err != nil {
			return nil
		}
		if ev.Op == core.OpAccept {
			if ev.Err == nil {
				c := &connState{qd: ev.NewQD}
				if pqt, perr := l.Pop(c.qd); perr == nil {
					tokens = append(tokens, pqt)
					conns[pqt] = c
				}
			}
			if aqt, err = l.Accept(lqd); err != nil {
				return err
			}
			tokens[i] = aqt
			continue
		}
		qt := tokens[i]
		c := conns[qt]
		delete(conns, qt)
		if ev.Err != nil || len(ev.SGA.Segs) == 0 {
			l.Close(c.qd)
			tokens = append(tokens[:i], tokens[i+1:]...)
			continue
		}
		c.buf = append(c.buf, ev.SGA.Flatten()...)
		ev.SGA.Free()
		var replies []byte
		for {
			body, n, ok := Deframe(c.buf)
			if !ok {
				break
			}
			c.buf = c.buf[n:]
			msg, derr := Decode(body)
			if derr != nil {
				replies = nil
				break
			}
			replies = append(replies, Frame(Encode(r.handle(msg)))...)
		}
		if len(replies) > 0 {
			out := memory.CopyFrom(l.Heap(), replies)
			wqt, werr := l.Push(c.qd, core.SGA(out))
			if werr != nil {
				out.Free() // failed push leaves ownership with us
				l.Close(c.qd)
				tokens = append(tokens[:i], tokens[i+1:]...)
				continue
			}
			if _, werr := l.Wait(wqt); werr != nil {
				return nil
			}
			out.Free()
		}
		pqt, perr := l.Pop(c.qd)
		if perr != nil {
			l.Close(c.qd)
			tokens = append(tokens[:i], tokens[i+1:]...)
			continue
		}
		tokens[i] = pqt
		conns[pqt] = c
	}
}
