package txnstore

import (
	"fmt"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
)

// Client coordinates transactions against a replica group using the
// paper's weakly consistent quorum-write protocol: gets read one replica,
// puts replicate to all (§7.6).
type Client struct {
	lib   demi.LibOS
	conns []core.QDesc
	bufs  [][]byte
	rng   *sim.Rand
	// Stats
	Txns, Aborts uint64
}

// Dial connects to every replica.
func Dial(l demi.LibOS, replicas []core.Addr, rng *sim.Rand) (*Client, error) {
	c := &Client{lib: l, rng: rng}
	for _, addr := range replicas {
		qd, err := l.Socket(core.SockStream)
		if err != nil {
			return nil, err
		}
		cqt, err := l.Connect(qd, addr)
		if err != nil {
			return nil, err
		}
		ev, err := l.Wait(cqt)
		if err != nil {
			return nil, err
		}
		if ev.Err != nil {
			return nil, fmt.Errorf("txnstore: connect %v: %w", addr, ev.Err)
		}
		c.conns = append(c.conns, qd)
		c.bufs = append(c.bufs, nil)
	}
	return c, nil
}

// Close releases all connections.
func (c *Client) Close() {
	for _, qd := range c.conns {
		c.lib.Close(qd)
	}
}

// call performs one framed request/response on replica i.
func (c *Client) call(i int, req any) (any, error) {
	framed := Frame(Encode(req))
	out := memory.CopyFrom(c.lib.Heap(), framed)
	qt, err := c.lib.Push(c.conns[i], core.SGA(out))
	if err != nil {
		out.Free() // failed push leaves ownership with us
		return nil, err
	}
	out.Free()
	if _, err := c.lib.Wait(qt); err != nil {
		return nil, err
	}
	return c.receive(i)
}

// receive reads one reply frame from replica i.
func (c *Client) receive(i int) (any, error) {
	for {
		if body, n, ok := Deframe(c.bufs[i]); ok {
			msg, err := Decode(body)
			c.bufs[i] = c.bufs[i][n:]
			return msg, err
		}
		pqt, err := c.lib.Pop(c.conns[i])
		if err != nil {
			return nil, err
		}
		ev, err := c.lib.Wait(pqt)
		if err != nil {
			return nil, err
		}
		if ev.Err != nil {
			return nil, ev.Err
		}
		if len(ev.SGA.Segs) == 0 {
			return nil, core.ErrQueueClosed
		}
		c.bufs[i] = append(c.bufs[i], ev.SGA.Flatten()...)
		ev.SGA.Free()
	}
}

// broadcastPut sends a put to every replica and waits for all replies
// (the paper replicates every put to three servers).
func (c *Client) broadcastPut(req PutRequest) (applied int, err error) {
	framed := Frame(Encode(req))
	for i := range c.conns {
		out := memory.CopyFrom(c.lib.Heap(), framed)
		qt, perr := c.lib.Push(c.conns[i], core.SGA(out))
		if perr != nil {
			out.Free() // failed push leaves ownership with us
			return 0, perr
		}
		out.Free()
		if _, perr := c.lib.Wait(qt); perr != nil {
			return 0, perr
		}
	}
	for i := range c.conns {
		msg, rerr := c.receive(i)
		if rerr != nil {
			return applied, rerr
		}
		if pr, ok := msg.(PutReply); ok && pr.Applied {
			applied++
		}
	}
	return applied, nil
}

// Txn is one optimistic read-modify-write transaction.
type Txn struct {
	c      *Client
	reads  map[string]uint64
	writes map[string][]byte
}

// Begin starts a transaction.
func (c *Client) Begin() *Txn {
	return &Txn{c: c, reads: make(map[string]uint64), writes: make(map[string][]byte)}
}

// Get reads a key from one randomly chosen replica, recording the version
// for commit-time validation.
func (t *Txn) Get(key []byte) ([]byte, error) {
	if v, ok := t.writes[string(key)]; ok {
		return v, nil // read-your-writes
	}
	i := t.c.rng.Intn(len(t.c.conns))
	msg, err := t.c.call(i, GetRequest{Key: key})
	if err != nil {
		return nil, err
	}
	gr, ok := msg.(GetReply)
	if !ok {
		return nil, fmt.Errorf("txnstore: unexpected reply %T", msg)
	}
	t.reads[string(key)] = gr.Version
	if !gr.Found {
		return nil, nil
	}
	return gr.Value, nil
}

// Put buffers a write until commit.
func (t *Txn) Put(key, value []byte) {
	t.writes[string(key)] = append([]byte(nil), value...)
}

// Commit replicates every buffered write, validating read versions
// optimistically: a write is applied only if the replica's version still
// matches the one read. It reports whether the transaction committed on a
// majority of replicas.
func (t *Txn) Commit() (bool, error) {
	t.c.Txns++
	majority := len(t.c.conns)/2 + 1
	for key, value := range t.writes {
		expected, validated := t.reads[key]
		req := PutRequest{
			Key:         []byte(key),
			Value:       value,
			Version:     expected + 1,
			Conditional: validated,
			Expected:    expected,
		}
		applied, err := t.c.broadcastPut(req)
		if err != nil {
			return false, err
		}
		if applied < majority {
			t.c.Aborts++
			return false, nil
		}
	}
	return true, nil
}
