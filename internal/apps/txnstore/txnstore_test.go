package txnstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

func TestWireRoundtrips(t *testing.T) {
	msgs := []any{
		GetRequest{Key: []byte("k")},
		GetReply{Found: true, Value: []byte("v"), Version: 42},
		GetReply{Found: false},
		PutRequest{Key: []byte("k"), Value: []byte("v"), Version: 7, Conditional: true, Expected: 6},
		PutRequest{Key: []byte(""), Value: nil, Version: 0},
		PutReply{Applied: true},
		PutReply{Applied: false},
	}
	for _, m := range msgs {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		// Compare via re-encoding (byte slices lose nil-ness).
		if !bytes.Equal(Encode(got), Encode(m)) {
			t.Errorf("roundtrip: %+v -> %+v", m, got)
		}
	}
}

func TestWireRoundtripProperty(t *testing.T) {
	f := func(key, val []byte, ver, expected uint64, cond bool) bool {
		m := PutRequest{Key: key, Value: val, Version: ver, Conditional: cond, Expected: expected}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		g := got.(PutRequest)
		return bytes.Equal(g.Key, key) && bytes.Equal(g.Value, val) &&
			g.Version == ver && g.Conditional == cond && g.Expected == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeframeIncremental(t *testing.T) {
	framed := Frame([]byte("hello"))
	for cut := 0; cut < len(framed); cut++ {
		if _, _, ok := Deframe(framed[:cut]); ok {
			t.Fatalf("partial frame at %d parsed", cut)
		}
	}
	body, n, ok := Deframe(append(framed, 0xFF))
	if !ok || n != len(framed) || string(body) != "hello" {
		t.Fatal("full frame failed")
	}
}

func TestReplicaVersioning(t *testing.T) {
	r := NewReplica()
	if rep := r.handle(PutRequest{Key: []byte("k"), Value: []byte("v1"), Version: 1}); !rep.(PutReply).Applied {
		t.Fatal("fresh put rejected")
	}
	if rep := r.handle(PutRequest{Key: []byte("k"), Value: []byte("stale"), Version: 1}); rep.(PutReply).Applied {
		t.Fatal("stale put applied (LWW violated)")
	}
	if rep := r.handle(GetRequest{Key: []byte("k")}); !bytes.Equal(rep.(GetReply).Value, []byte("v1")) {
		t.Fatal("get returned wrong value")
	}
	// Conditional (OCC) put with wrong expected version is rejected.
	if rep := r.handle(PutRequest{Key: []byte("k"), Value: []byte("v2"), Version: 2, Conditional: true, Expected: 0}); rep.(PutReply).Applied {
		t.Fatal("OCC validation failed to reject")
	}
	if rep := r.handle(PutRequest{Key: []byte("k"), Value: []byte("v2"), Version: 2, Conditional: true, Expected: 1}); !rep.(PutReply).Applied {
		t.Fatal("valid OCC put rejected")
	}
}

// testCluster builds one client and three replicas over Catnip.
func testCluster(t *testing.T) (*sim.Engine, *catnip.LibOS, []*Replica, []core.Addr) {
	t.Helper()
	eng := sim.NewEngine(61)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	clientIP := wire.IPAddr{10, 5, 0, 100}
	nc := eng.NewNode("txn-client")
	pc := dpdkdev.Attach(sw, nc, simnet.DefaultLink(), 8192, 0)
	lc := catnip.New(nc, pc, catnip.DefaultConfig(clientIP))

	var replicas []*Replica
	var addrs []core.Addr
	for i := 0; i < 3; i++ {
		ip := wire.IPAddr{10, 5, 0, byte(1 + i)}
		n := eng.NewNode("replica")
		p := dpdkdev.Attach(sw, n, simnet.DefaultLink(), 8192, 0)
		l := catnip.New(n, p, catnip.DefaultConfig(ip))
		l.SeedARP(clientIP, pc.MAC())
		lc.SeedARP(ip, p.MAC())
		r := NewReplica()
		replicas = append(replicas, r)
		addrs = append(addrs, core.Addr{IP: ip, Port: 7000})
		lCopy, addr := l, addrs[i]
		eng.Spawn(n, func() { r.Serve(lCopy, addr) })
	}
	return eng, lc, replicas, addrs
}

func TestTransactionalRMWAcrossReplicas(t *testing.T) {
	eng, lc, replicas, addrs := testCluster(t)
	eng.Spawn(lc.Node(), func() {
		c, err := Dial(lc, addrs, sim.NewRand(9))
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		// Seed a key through a blind transactional write.
		txn := c.Begin()
		txn.Put([]byte("balance"), []byte("100"))
		if ok, err := txn.Commit(); err != nil || !ok {
			t.Errorf("seed commit: ok=%v err=%v", ok, err)
			return
		}
		// Read-modify-write.
		txn = c.Begin()
		v, err := txn.Get([]byte("balance"))
		if err != nil || string(v) != "100" {
			t.Errorf("get = %q, %v", v, err)
			return
		}
		txn.Put([]byte("balance"), []byte("150"))
		if ok, err := txn.Commit(); err != nil || !ok {
			t.Errorf("rmw commit: ok=%v err=%v", ok, err)
			return
		}
		// Verify on a fresh transaction.
		txn = c.Begin()
		v, _ = txn.Get([]byte("balance"))
		if string(v) != "150" {
			t.Errorf("final balance = %q", v)
		}
		c.Close()
	})
	eng.Run()
	// Every replica must hold the final value (puts replicate to all 3).
	for i, r := range replicas {
		if r.Puts < 2 {
			t.Errorf("replica %d saw %d puts", i, r.Puts)
		}
		got := r.handle(GetRequest{Key: []byte("balance")}).(GetReply)
		if string(got.Value) != "150" {
			t.Errorf("replica %d value = %q", i, got.Value)
		}
	}
}

func TestOCCConflictAborts(t *testing.T) {
	eng, lc, _, addrs := testCluster(t)
	eng.Spawn(lc.Node(), func() {
		c, err := Dial(lc, addrs, sim.NewRand(9))
		if err != nil {
			return
		}
		seed := c.Begin()
		seed.Put([]byte("k"), []byte("v0"))
		seed.Commit()

		// txn1 reads, then txn2 sneaks in a write, then txn1 commits: the
		// version check must abort txn1.
		txn1 := c.Begin()
		txn1.Get([]byte("k"))
		txn2 := c.Begin()
		txn2.Get([]byte("k"))
		txn2.Put([]byte("k"), []byte("v2"))
		if ok, _ := txn2.Commit(); !ok {
			t.Error("txn2 should commit")
			return
		}
		txn1.Put([]byte("k"), []byte("v1"))
		ok, err := txn1.Commit()
		if err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		if ok {
			t.Error("conflicting transaction committed (OCC broken)")
		}
		if c.Aborts != 1 {
			t.Errorf("aborts = %d", c.Aborts)
		}
		c.Close()
	})
	eng.Run()
}

func TestGetLoadBalancesAcrossReplicas(t *testing.T) {
	eng, lc, replicas, addrs := testCluster(t)
	eng.Spawn(lc.Node(), func() {
		c, err := Dial(lc, addrs, sim.NewRand(1234))
		if err != nil {
			return
		}
		seed := c.Begin()
		seed.Put([]byte("k"), []byte("v"))
		seed.Commit()
		for i := 0; i < 90; i++ {
			txn := c.Begin()
			txn.Get([]byte("k"))
		}
		c.Close()
	})
	eng.Run()
	for i, r := range replicas {
		if r.Gets < 10 {
			t.Errorf("replica %d served only %d gets (no balancing)", i, r.Gets)
		}
	}
}

// Decode faces peer-controlled bytes: never panic.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Decode(b)
		Deframe(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
