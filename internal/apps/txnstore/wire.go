// Package txnstore is a functional reimplementation of the paper's
// TxnStore (§7.2, §7.6): an in-memory, replicated, transactional key-value
// store with interchangeable RPC transports. It runs the paper's weakly
// consistent quorum-write protocol: every get reads one replica, every put
// replicates to three, and transactions are client-coordinated
// optimistic read-modify-writes with version validation.
//
// RPC framing is a 4-byte length prefix plus a compact tag-free binary
// encoding (uvarint lengths), standing in for the original's protobufs.
package txnstore

import (
	"encoding/binary"
	"fmt"
)

// Message opcodes.
const (
	opGet      = 1
	opGetReply = 2
	opPut      = 3
	opPutReply = 4
)

// GetRequest asks for a key's value and version.
type GetRequest struct {
	Key []byte
}

// GetReply answers a GetRequest.
type GetReply struct {
	Found   bool
	Value   []byte
	Version uint64
}

// PutRequest writes a versioned value; the replica applies it only if
// Version is newer than its current one (last-writer-wins weak
// consistency), or unconditionally validates equality when Conditional.
type PutRequest struct {
	Key         []byte
	Value       []byte
	Version     uint64
	Conditional bool   // OCC validation: apply only if current == Expected
	Expected    uint64 // version observed at read time
}

// PutReply answers a PutRequest.
type PutReply struct {
	Applied bool
}

// appendBytes appends a uvarint-length-prefixed byte string.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// readBytes consumes a uvarint-length-prefixed byte string.
func readBytes(src []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 || uint64(len(src)-k) < n {
		return nil, nil, fmt.Errorf("txnstore: truncated field")
	}
	return src[k : k+int(n)], src[k+int(n):], nil
}

// Encode serializes any of the message types with its opcode.
func Encode(msg any) []byte {
	switch m := msg.(type) {
	case GetRequest:
		return appendBytes([]byte{opGet}, m.Key)
	case GetReply:
		out := []byte{opGetReply, 0}
		if m.Found {
			out[1] = 1
		}
		out = appendBytes(out, m.Value)
		return binary.AppendUvarint(out, m.Version)
	case PutRequest:
		out := appendBytes([]byte{opPut}, m.Key)
		out = appendBytes(out, m.Value)
		out = binary.AppendUvarint(out, m.Version)
		if m.Conditional {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		return binary.AppendUvarint(out, m.Expected)
	case PutReply:
		out := []byte{opPutReply, 0}
		if m.Applied {
			out[1] = 1
		}
		return out
	default:
		panic(fmt.Sprintf("txnstore: cannot encode %T", msg))
	}
}

// Decode parses one message.
func Decode(b []byte) (any, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("txnstore: empty message")
	}
	switch b[0] {
	case opGet:
		key, _, err := readBytes(b[1:])
		if err != nil {
			return nil, err
		}
		return GetRequest{Key: key}, nil
	case opGetReply:
		if len(b) < 2 {
			return nil, fmt.Errorf("txnstore: truncated get reply")
		}
		val, rest, err := readBytes(b[2:])
		if err != nil {
			return nil, err
		}
		ver, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("txnstore: truncated version")
		}
		return GetReply{Found: b[1] == 1, Value: val, Version: ver}, nil
	case opPut:
		key, rest, err := readBytes(b[1:])
		if err != nil {
			return nil, err
		}
		val, rest, err := readBytes(rest)
		if err != nil {
			return nil, err
		}
		ver, k := binary.Uvarint(rest)
		if k <= 0 || len(rest) < k+1 {
			return nil, fmt.Errorf("txnstore: truncated put")
		}
		cond := rest[k] == 1
		expected, k2 := binary.Uvarint(rest[k+1:])
		if k2 <= 0 {
			return nil, fmt.Errorf("txnstore: truncated expected version")
		}
		return PutRequest{Key: key, Value: val, Version: ver, Conditional: cond, Expected: expected}, nil
	case opPutReply:
		if len(b) < 2 {
			return nil, fmt.Errorf("txnstore: truncated put reply")
		}
		return PutReply{Applied: b[1] == 1}, nil
	default:
		return nil, fmt.Errorf("txnstore: unknown opcode %d", b[0])
	}
}

// Frame prefixes msg with its 4-byte big-endian length.
func Frame(msg []byte) []byte {
	out := make([]byte, 4+len(msg))
	binary.BigEndian.PutUint32(out, uint32(len(msg)))
	copy(out[4:], msg)
	return out
}

// Deframe extracts one complete frame from buf, returning the body, bytes
// consumed, and whether a full frame was present.
func Deframe(buf []byte) (body []byte, n int, ok bool) {
	if len(buf) < 4 {
		return nil, 0, false
	}
	l := binary.BigEndian.Uint32(buf)
	if uint32(len(buf)-4) < l {
		return nil, 0, false
	}
	return buf[4 : 4+l], 4 + int(l), true
}
