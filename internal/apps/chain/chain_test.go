package chain

import (
	"testing"

	"demikernel/internal/catloop"
	"demikernel/internal/catmem"
	"demikernel/internal/core"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
)

const (
	nkeys   = 8
	valSize = 64
	warmup  = 8
	rounds  = 32
)

// TestChainOverCatmem runs the full three-stage chain over shared-memory
// queues and checks end-to-end correctness plus stage accounting.
func TestChainOverCatmem(t *testing.T) {
	eng := sim.NewEngine(21)
	region := catmem.NewRegion(eng)
	var relaySt, cacheSt, kvSt Stats
	kv := region.New(eng.NewNode("kv"))
	cache := region.New(eng.NewNode("cache"))
	relay := region.New(eng.NewNode("relay"))
	cli := region.New(eng.NewNode("client"))
	eng.Spawn(kv.Node(), func() {
		if err := KV(kv, core.Addr{Port: 3}, true, nkeys, valSize, &kvSt, Trace{}); err != nil {
			t.Errorf("kv: %v", err)
		}
	})
	eng.Spawn(cache.Node(), func() {
		if err := Cache(cache, core.Addr{Port: 2}, core.Addr{Port: 3}, true, &cacheSt, Trace{}); err != nil {
			t.Errorf("cache: %v", err)
		}
	})
	eng.Spawn(relay.Node(), func() {
		if err := Relay(relay, core.Addr{Port: 1}, core.Addr{Port: 2}, true, &relaySt, Trace{}); err != nil {
			t.Errorf("relay: %v", err)
		}
	})
	var res Result
	eng.Spawn(cli.Node(), func() {
		var err error
		res, err = Client(cli, core.Addr{Port: 1}, true, rounds, warmup, nkeys, valSize, cli.Node(), Trace{})
		if err != nil {
			t.Errorf("client: %v", err)
		}
	})
	eng.Run()
	checkChain(t, res, &relaySt, &cacheSt, &kvSt)
	if n := region.Heap().LiveObjects(); n != 0 {
		t.Errorf("catmem chain leaked %d buffers", n)
	}
}

// TestChainOverCatloop runs the identical chain over loopback TCP stacks.
func TestChainOverCatloop(t *testing.T) {
	eng := sim.NewEngine(22)
	hub := catloop.NewHub(eng)
	ipKV := wire.IPAddr{127, 0, 0, 1}
	ipCache := wire.IPAddr{127, 0, 0, 2}
	ipRelay := wire.IPAddr{127, 0, 0, 3}
	ipCli := wire.IPAddr{127, 0, 0, 4}
	kv := catloop.New(hub, eng.NewNode("kv"), ipKV)
	cache := catloop.New(hub, eng.NewNode("cache"), ipCache)
	relay := catloop.New(hub, eng.NewNode("relay"), ipRelay)
	cli := catloop.New(hub, eng.NewNode("client"), ipCli)
	var relaySt, cacheSt, kvSt Stats
	eng.Spawn(kv.Node(), func() {
		if err := KV(kv, core.Addr{IP: ipKV, Port: 3}, false, nkeys, valSize, &kvSt, Trace{}); err != nil {
			t.Errorf("kv: %v", err)
		}
	})
	eng.Spawn(cache.Node(), func() {
		if err := Cache(cache, core.Addr{IP: ipCache, Port: 2}, core.Addr{IP: ipKV, Port: 3}, false, &cacheSt, Trace{}); err != nil {
			t.Errorf("cache: %v", err)
		}
	})
	eng.Spawn(relay.Node(), func() {
		if err := Relay(relay, core.Addr{IP: ipRelay, Port: 1}, core.Addr{IP: ipCache, Port: 2}, false, &relaySt, Trace{}); err != nil {
			t.Errorf("relay: %v", err)
		}
	})
	var res Result
	eng.Spawn(cli.Node(), func() {
		var err error
		res, err = Client(cli, core.Addr{IP: ipRelay, Port: 1}, false, rounds, warmup, nkeys, valSize, cli.Node(), Trace{})
		if err != nil {
			t.Errorf("client: %v", err)
		}
	})
	eng.Run()
	checkChain(t, res, &relaySt, &cacheSt, &kvSt)
}

func checkChain(t *testing.T, res Result, relaySt, cacheSt, kvSt *Stats) {
	t.Helper()
	total := uint64(rounds + warmup)
	if res.Rounds != rounds || len(res.RTTs) != rounds {
		t.Errorf("client rounds = %d/%d RTT samples = %d", res.Rounds, rounds, len(res.RTTs))
	}
	if relaySt.Requests != total || relaySt.Replies != total {
		t.Errorf("relay fwd = %d/%d, want %d each", relaySt.Requests, relaySt.Replies, total)
	}
	if cacheSt.Requests != total {
		t.Errorf("cache requests = %d, want %d", cacheSt.Requests, total)
	}
	// Keys cycle through [0, nkeys): each key misses exactly once.
	if cacheSt.Misses != nkeys || cacheSt.Hits != total-nkeys {
		t.Errorf("cache hits/misses = %d/%d, want %d/%d",
			cacheSt.Hits, cacheSt.Misses, total-nkeys, nkeys)
	}
	if kvSt.Requests != nkeys {
		t.Errorf("kv requests = %d, want %d", kvSt.Requests, nkeys)
	}
	for i, d := range res.RTTs {
		if d <= 0 {
			t.Errorf("RTT[%d] = %v", i, d)
		}
	}
}
