// Package chain is a three-stage microservice service chain — ingress
// relay -> cache -> key-value store — built entirely on PDPIX queues. It
// is the paper's motivating deployment shape: datacenter requests rarely
// touch one process; they traverse a sidecar, a cache tier and a backing
// store, and every hop's datapath cost multiplies across the chain.
//
// The same stage code runs over any demi.LibOS. The handoff flag selects
// the buffer-ownership discipline per transport:
//
//   - handoff=true (catmem): Push CONSUMES the scatter-gather array —
//     forwarding a popped request downstream is pointer handoff, so a
//     request's bytes are written once by the client and never copied
//     again on the way to the store.
//   - handoff=false (catloop, catnip, catnap): the network contract —
//     the pusher still owns the buffers and frees them after the push
//     completes; pops may split or coalesce frames, so stages reframe
//     from the byte stream.
//
// Wire format, both directions (lengths big-endian):
//
//	bytes 0-3: payload length N
//	byte  4:   opcode (1 = GET, 2 = REPLY)
//	bytes 5-8: key
//	bytes 9..: value (REPLY only)
package chain

import (
	"encoding/binary"
	"fmt"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/dtrace"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
)

// Opcodes.
const (
	OpGet   = 1
	OpReply = 2
)

// lenPrefix frames every message; hdrLen is opcode + key.
const (
	lenPrefix = 4
	hdrLen    = 5
)

// Stats counts one stage's activity.
type Stats struct {
	Requests uint64 // frames forwarded downstream (relay) or served (cache/kv)
	Replies  uint64 // frames forwarded upstream
	Hits     uint64 // cache only
	Misses   uint64 // cache only
}

// Trace wires one stage into the distributed tracer: the stage's recording
// hop and the clock that timestamps its app spans. The zero value disables
// tracing (every record call is a nil-receiver no-op). The Client's hop
// additionally roots sampled requests (StartRequest/EndRequest).
type Trace struct {
	Hop   *dtrace.Hop
	Clock sim.Clock
}

// now returns the trace timestamp, 0 with no clock.
func (t Trace) now() int64 {
	if t.Clock == nil {
		return 0
	}
	return int64(t.Clock.Now())
}

// valueByte is the deterministic store content: value[i] of key.
func valueByte(key uint32, i int) byte { return byte(int(key)*31 + i*7 + 3) }

// buildFrame allocates one framed message in h.
func buildFrame(h *memory.Heap, op byte, key uint32, val []byte) *memory.Buf {
	b := h.Alloc(lenPrefix + hdrLen + len(val))
	p := b.Bytes()
	binary.BigEndian.PutUint32(p[0:4], uint32(hdrLen+len(val)))
	p[4] = op
	binary.BigEndian.PutUint32(p[5:9], key)
	copy(p[9:], val)
	return b
}

// accept waits for exactly one upstream connection on lst.
func accept(l demi.LibOS, lst core.Addr) (listenQD, connQD core.QDesc, err error) {
	qd, err := l.Socket(core.SockStream)
	if err != nil {
		return core.InvalidQD, core.InvalidQD, err
	}
	if err := l.Bind(qd, lst); err != nil {
		return core.InvalidQD, core.InvalidQD, err
	}
	if err := l.Listen(qd, 4); err != nil {
		return core.InvalidQD, core.InvalidQD, err
	}
	aqt, err := l.Accept(qd)
	if err != nil {
		return core.InvalidQD, core.InvalidQD, err
	}
	ev, err := l.Wait(aqt)
	if err != nil {
		return core.InvalidQD, core.InvalidQD, err
	}
	if ev.Err != nil {
		return core.InvalidQD, core.InvalidQD, ev.Err
	}
	return qd, ev.NewQD, nil
}

// dial connects downstream.
func dial(l demi.LibOS, to core.Addr) (core.QDesc, error) {
	qd, err := l.Socket(core.SockStream)
	if err != nil {
		return core.InvalidQD, err
	}
	qt, err := l.Connect(qd, to)
	if err != nil {
		return core.InvalidQD, err
	}
	ev, err := l.Wait(qt)
	if err != nil {
		return core.InvalidQD, err
	}
	if ev.Err != nil {
		return core.InvalidQD, ev.Err
	}
	return qd, nil
}

// send pushes sga under the transport's ownership discipline: with
// handoff, the queue consumed it; without, the sender frees it once the
// push completes.
func send(l demi.LibOS, qd core.QDesc, sga core.SGArray, handoff bool) error {
	qt, err := l.Push(qd, sga)
	if err != nil {
		if !handoff {
			sga.Free()
		}
		return err
	}
	ev, err := l.Wait(qt)
	if err != nil {
		return err
	}
	if !handoff {
		sga.Free()
	}
	return ev.Err
}

// framer extracts whole frames from a queue. Over a handoff transport
// every pop is exactly one frame and the SGA is returned intact for
// zero-copy forwarding; over a stream transport pops are accumulated and
// reframed into fresh buffers.
type framer struct {
	l       demi.LibOS
	qd      core.QDesc
	handoff bool
	buf     []byte // stream accumulator (handoff=false only)
	ctx     uint64 // trace context of the most recent traced pop (stream reframing)
}

// next returns the next whole frame, or ok=false on EOF. The returned SGA
// owns the frame: forward it with send (zero-copy under handoff) or Free
// it after parsing.
func (f *framer) next() (core.SGArray, bool, error) {
	for {
		if !f.handoff {
			if sga, ok := f.reframe(); ok {
				return sga, true, nil
			}
		}
		qt, err := f.l.Pop(f.qd)
		if err != nil {
			return core.SGArray{}, false, err
		}
		ev, err := f.l.Wait(qt)
		if err != nil {
			return core.SGArray{}, false, err
		}
		if ev.Err != nil {
			return core.SGArray{}, false, ev.Err
		}
		if len(ev.SGA.Segs) == 0 {
			return core.SGArray{}, false, nil // EOF
		}
		if f.handoff {
			// Message-preserving transport: one pop is one frame.
			return ev.SGA, true, nil
		}
		if c := ev.SGA.TraceCtx(); c != 0 {
			f.ctx = c // survive the reframing copy below
		}
		f.buf = append(f.buf, ev.SGA.Flatten()...)
		ev.SGA.Free()
	}
}

// reframe cuts one whole frame out of the stream accumulator.
func (f *framer) reframe() (core.SGArray, bool) {
	if len(f.buf) < lenPrefix {
		return core.SGArray{}, false
	}
	n := int(binary.BigEndian.Uint32(f.buf[0:4]))
	if len(f.buf) < lenPrefix+n {
		return core.SGArray{}, false
	}
	b := memory.CopyFrom(f.l.Heap(), f.buf[:lenPrefix+n])
	b.SetTraceCtx(f.ctx)
	f.buf = f.buf[lenPrefix+n:]
	return core.SGA(b), true
}

// parse views a frame's opcode, key and value. The bytes alias the SGA's
// first segment — valid only until the frame is freed or forwarded.
func parse(sga core.SGArray) (op byte, key uint32, val []byte, err error) {
	if len(sga.Segs) != 1 {
		return 0, 0, nil, fmt.Errorf("chain: %d-segment frame", len(sga.Segs))
	}
	p := sga.Segs[0].Bytes()
	if len(p) < lenPrefix+hdrLen || int(binary.BigEndian.Uint32(p[0:4])) != len(p)-lenPrefix {
		return 0, 0, nil, fmt.Errorf("chain: malformed %d-byte frame", len(p))
	}
	return p[4], binary.BigEndian.Uint32(p[5:9]), p[lenPrefix+hdrLen:], nil
}

// Relay is the ingress stage: a pure bidirectional forwarder (sidecar
// proxy shape). Under handoff it never touches the bytes — both
// directions are pointer handoffs.
func Relay(l demi.LibOS, lst, down core.Addr, handoff bool, stats *Stats, tr Trace) error {
	lqd, up, err := accept(l, lst)
	if err != nil {
		return err
	}
	dn, err := dial(l, down)
	if err != nil {
		return err
	}
	fwd := tr.Hop.Label("relay.forward")
	back := tr.Hop.Label("relay.return")
	upF := &framer{l: l, qd: up, handoff: handoff}
	dnF := &framer{l: l, qd: dn, handoff: handoff}
	for {
		req, ok, err := upF.next()
		if err != nil || !ok {
			l.Close(dn)
			l.Close(up)
			l.Close(lqd)
			return err
		}
		ctx, t0 := req.TraceCtx(), tr.now()
		if err := send(l, dn, req, handoff); err != nil {
			return err
		}
		tr.Hop.AppSpan(ctx, fwd, t0, tr.now())
		stats.Requests++
		rep, ok, err := dnF.next()
		if err != nil || !ok {
			l.Close(dn)
			l.Close(up)
			l.Close(lqd)
			return err
		}
		ctx, t0 = rep.TraceCtx(), tr.now()
		if err := send(l, up, rep, handoff); err != nil {
			return err
		}
		tr.Hop.AppSpan(ctx, back, t0, tr.now())
		stats.Replies++
	}
}

// Cache is the middle stage: a look-aside cache over the KV store. Hits
// are served from memory; misses forward the request downstream
// unmodified (zero-copy under handoff) and fill from the reply.
func Cache(l demi.LibOS, lst, down core.Addr, handoff bool, stats *Stats, tr Trace) error {
	lqd, up, err := accept(l, lst)
	if err != nil {
		return err
	}
	dn, err := dial(l, down)
	if err != nil {
		return err
	}
	hitLbl := tr.Hop.Label("cache.hit")
	missLbl := tr.Hop.Label("cache.miss")
	upF := &framer{l: l, qd: up, handoff: handoff}
	dnF := &framer{l: l, qd: dn, handoff: handoff}
	cache := make(map[uint32][]byte)
	for {
		req, ok, err := upF.next()
		if err != nil || !ok {
			l.Close(dn)
			l.Close(up)
			l.Close(lqd)
			return err
		}
		_, key, _, err := parse(req)
		if err != nil {
			return err
		}
		ctx, t0 := req.TraceCtx(), tr.now()
		stats.Requests++
		if val, hit := cache[key]; hit {
			stats.Hits++
			req.Free() // request consumed here; reply built fresh
			rep := core.SGA(buildFrame(l.Heap(), OpReply, key, val))
			rep.SetTraceCtx(ctx) // the fresh reply continues the request's trace
			if err := send(l, up, rep, handoff); err != nil {
				return err
			}
			tr.Hop.AppSpan(ctx, hitLbl, t0, tr.now())
			stats.Replies++
			continue
		}
		stats.Misses++
		if err := send(l, dn, req, handoff); err != nil {
			return err
		}
		rep, ok, err := dnF.next()
		if err != nil || !ok {
			l.Close(dn)
			l.Close(up)
			l.Close(lqd)
			return err
		}
		_, rkey, rval, err := parse(rep)
		if err != nil {
			return err
		}
		// Fill the cache (the map copy is the cache's own storage — the
		// frame itself flows on untouched).
		cp := make([]byte, len(rval))
		copy(cp, rval)
		cache[rkey] = cp
		if err := send(l, up, rep, handoff); err != nil {
			return err
		}
		tr.Hop.AppSpan(ctx, missLbl, t0, tr.now())
		stats.Replies++
	}
}

// KV is the terminal stage: a deterministic in-memory store of nkeys
// values, valSize bytes each.
func KV(l demi.LibOS, lst core.Addr, handoff bool, nkeys, valSize int, stats *Stats, tr Trace) error {
	store := make(map[uint32][]byte, nkeys)
	for k := 0; k < nkeys; k++ {
		v := make([]byte, valSize)
		for i := range v {
			v[i] = valueByte(uint32(k), i)
		}
		store[uint32(k)] = v
	}
	lqd, up, err := accept(l, lst)
	if err != nil {
		return err
	}
	serve := tr.Hop.Label("kv.serve")
	upF := &framer{l: l, qd: up, handoff: handoff}
	for {
		req, ok, err := upF.next()
		if err != nil || !ok {
			l.Close(up)
			l.Close(lqd)
			return err
		}
		op, key, _, err := parse(req)
		if err != nil {
			return err
		}
		ctx, t0 := req.TraceCtx(), tr.now()
		req.Free()
		if op != OpGet {
			return fmt.Errorf("chain: kv got opcode %d", op)
		}
		stats.Requests++
		rep := core.SGA(buildFrame(l.Heap(), OpReply, key, store[key]))
		rep.SetTraceCtx(ctx) // the fresh reply continues the request's trace
		if err := send(l, up, rep, handoff); err != nil {
			return err
		}
		tr.Hop.AppSpan(ctx, serve, t0, tr.now())
		stats.Replies++
	}
}

// Result is the client's view of one run.
type Result struct {
	Rounds int
	RTTs   []time.Duration // post-warmup request latencies, in order
}

// Client drives the chain closed-loop: one GET outstanding, the reply
// verified byte-for-byte against the deterministic store content. Keys
// cycle through [0, nkeys) so every key is a cache miss exactly once.
//
// With tracing attached, the client is where requests are rooted: the
// head-based sampling decision is made per post-warmup request, the trace
// context is stamped onto the outgoing frame, and the request's measured
// interval becomes the trace's root span.
func Client(l demi.LibOS, server core.Addr, handoff bool, rounds, warmup, nkeys, valSize int, clock sim.Clock, tr Trace) (Result, error) {
	qd, err := dial(l, server)
	if err != nil {
		return Result{}, err
	}
	f := &framer{l: l, qd: qd, handoff: handoff}
	res := Result{RTTs: make([]time.Duration, 0, rounds)}
	for r := 0; r < warmup+rounds; r++ {
		key := uint32(r % nkeys)
		var ctx uint64
		if r >= warmup {
			// Warmup rounds are unmeasured, so they are also unsampled —
			// retained traces correspond one-to-one with reported RTTs.
			ctx = tr.Hop.Tracer().StartRequest()
		}
		start := clock.Now()
		req := core.SGA(buildFrame(l.Heap(), OpGet, key, nil))
		req.SetTraceCtx(ctx)
		if err := send(l, qd, req, handoff); err != nil {
			return res, err
		}
		rep, ok, err := f.next()
		if err != nil {
			return res, err
		}
		if !ok {
			return res, fmt.Errorf("chain: server closed after %d rounds", r)
		}
		op, rkey, val, err := parse(rep)
		if err != nil {
			return res, err
		}
		if op != OpReply || rkey != key || len(val) != valSize {
			return res, fmt.Errorf("chain: bad reply op=%d key=%d len=%d", op, rkey, len(val))
		}
		for i, b := range val {
			if b != valueByte(key, i) {
				return res, fmt.Errorf("chain: corrupt value byte %d of key %d", i, key)
			}
		}
		rep.Free()
		if r >= warmup {
			end := clock.Now()
			res.Rounds++
			res.RTTs = append(res.RTTs, end.Sub(start))
			tr.Hop.EndRequest(ctx, int64(start), int64(end))
		}
	}
	l.Close(qd)
	return res, nil
}
