package echo

import (
	"testing"
	"time"

	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

var (
	ipS = wire.IPAddr{10, 6, 0, 1}
	ipC = wire.IPAddr{10, 6, 0, 2}
)

func pair(t *testing.T) (*sim.Engine, *catnip.LibOS, *catnip.LibOS) {
	t.Helper()
	eng := sim.NewEngine(71)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	ns, nc := eng.NewNode("srv"), eng.NewNode("cli")
	ps := dpdkdev.Attach(sw, ns, simnet.DefaultLink(), 8192, 0)
	pc := dpdkdev.Attach(sw, nc, simnet.DefaultLink(), 8192, 0)
	ls := catnip.New(ns, ps, catnip.DefaultConfig(ipS))
	lc := catnip.New(nc, pc, catnip.DefaultConfig(ipC))
	ls.SeedARP(ipC, pc.MAC())
	lc.SeedARP(ipS, ps.MAC())
	return eng, ls, lc
}

func TestEchoClientServer(t *testing.T) {
	eng, ls, lc := pair(t)
	eng.Spawn(ls.Node(), func() {
		Server(ls, ServerConfig{Addr: core.Addr{IP: ipS, Port: 80}})
	})
	var res ClientResult
	var cerr error
	eng.Spawn(lc.Node(), func() {
		res, cerr = Client(lc, core.Addr{IP: ipS, Port: 80}, 64, 100, 10, lc.Node())
	})
	eng.Run()
	if cerr != nil {
		t.Fatalf("client: %v", cerr)
	}
	if len(res.RTTs) != 100 {
		t.Fatalf("measured %d rounds", len(res.RTTs))
	}
	for _, rtt := range res.RTTs {
		if rtt <= 0 || rtt > 100*time.Microsecond {
			t.Fatalf("implausible RTT %v", rtt)
		}
	}
	if res.BytesPerS <= 0 {
		t.Error("no goodput computed")
	}
}

func TestEchoServerServesConcurrentClients(t *testing.T) {
	eng, ls, lc := pair(t)
	eng.Spawn(ls.Node(), func() {
		Server(ls, ServerConfig{Addr: core.Addr{IP: ipS, Port: 80}})
	})
	done := 0
	// Two sequential client sessions on one node exercise accept reuse.
	eng.Spawn(lc.Node(), func() {
		for i := 0; i < 2; i++ {
			if _, err := Client(lc, core.Addr{IP: ipS, Port: 80}, 128, 20, 0, lc.Node()); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			done++
		}
	})
	eng.Run()
	if done != 2 {
		t.Fatalf("completed %d sessions", done)
	}
}
