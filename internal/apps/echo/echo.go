// Package echo implements the paper's echo system (§7.2): a server that
// returns every message, optionally logging it synchronously to the
// storage queue first (§7.3, Figure 7), and a closed-loop client measuring
// per-round RTTs. Both sides are written against the PDPIX interface, so
// the same code runs over Catnip, Catmint, Catnap, the integrations and
// every baseline — which is the portability claim the paper demonstrates.
package echo

import (
	"fmt"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
)

// ServerConfig configures an echo server.
type ServerConfig struct {
	Addr core.Addr
	// LogName, when non-empty, makes the server push each message to this
	// storage log and wait for durability before echoing.
	LogName string
	// MaxConns bounds the concurrent connections served (0 = 16).
	MaxConns int
	// MessageSize, when non-zero, makes the server accumulate exactly
	// that many bytes before echoing (NetPIPE message semantics on a
	// byte stream). Zero echoes data as it arrives.
	MessageSize int
}

// pendingKind tags what a token in the wait set represents.
type pendingKind int

const (
	kindAccept pendingKind = iota
	kindPop
	kindPush
)

// pending is per-token server state.
type pending struct {
	kind pendingKind
	conn core.QDesc
	sga  core.SGArray // kindPush: buffers to release on completion
}

// connAcc accumulates a partial message for MessageSize framing.
type connAcc struct {
	segs  []*memory.Buf
	bytes int
}

// Server runs the echo server until the libOS stops. One thread serves
// every connection through a single wait_any set holding the accept, one
// pop per connection, and every in-flight reply push — replies complete
// asynchronously so a slow client never blocks the others (the paper's
// replacement for the epoll loop).
func Server(l demi.LibOS, cfg ServerConfig) error {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 16
	}
	lqd, err := l.Socket(core.SockStream)
	if err != nil {
		return err
	}
	if err := l.Bind(lqd, cfg.Addr); err != nil {
		return fmt.Errorf("echo: bind %v: %w", cfg.Addr, err)
	}
	if err := l.Listen(lqd, cfg.MaxConns); err != nil {
		return err
	}
	logQD := core.InvalidQD
	if cfg.LogName != "" {
		logQD, err = l.Open(cfg.LogName)
		if err != nil {
			return fmt.Errorf("echo: open log: %w", err)
		}
	}

	tokens := make([]core.QToken, 0, 2*cfg.MaxConns+1)
	state := make(map[core.QToken]pending)
	add := func(qt core.QToken, p pending) {
		tokens = append(tokens, qt)
		state[qt] = p
	}
	remove := func(i int) {
		delete(state, tokens[i])
		tokens = append(tokens[:i], tokens[i+1:]...)
	}

	acc := make(map[core.QDesc]*connAcc)

	aqt, err := l.Accept(lqd)
	if err != nil {
		return err
	}
	add(aqt, pending{kind: kindAccept})

	for {
		i, ev, err := l.WaitAny(tokens, -1)
		if err != nil {
			return nil // stopped
		}
		p := state[tokens[i]]
		switch p.kind {
		case kindAccept:
			remove(i)
			if ev.Err == nil {
				if pqt, perr := l.Pop(ev.NewQD); perr == nil {
					add(pqt, pending{kind: kindPop, conn: ev.NewQD})
				}
			}
			if aqt, err = l.Accept(lqd); err != nil {
				return err
			}
			add(aqt, pending{kind: kindAccept})

		case kindPush:
			remove(i)
			p.sga.Free() // reply delivered: buffers come home

		case kindPop:
			remove(i)
			if ev.Err != nil || len(ev.SGA.Segs) == 0 {
				delete(acc, p.conn)
				l.Close(p.conn) // error or EOF
				continue
			}
			// NetPIPE framing: hold partial messages until complete.
			if cfg.MessageSize > 0 {
				a := acc[p.conn]
				if a == nil {
					a = &connAcc{}
					acc[p.conn] = a
				}
				a.segs = append(a.segs, ev.SGA.Segs...)
				a.bytes += ev.SGA.TotalLen()
				if a.bytes < cfg.MessageSize {
					if pqt, perr := l.Pop(p.conn); perr == nil {
						add(pqt, pending{kind: kindPop, conn: p.conn})
					}
					continue
				}
				ev.SGA = core.SGArray{Segs: a.segs}
				acc[p.conn] = nil
				delete(acc, p.conn)
			}
			// Optional synchronous logging before the reply (Figure 7:
			// NIC -> app -> disk -> NIC without copies). Durability is
			// part of the request's critical path, so this wait is
			// semantic, not incidental.
			if logQD != core.InvalidQD {
				lqt, lerr := l.Push(logQD, ev.SGA)
				if lerr != nil {
					return lerr
				}
				if lev, lerr := l.Wait(lqt); lerr != nil || lev.Err != nil {
					return fmt.Errorf("echo: log write failed: %v %v", lerr, lev.Err)
				}
			}
			wqt, werr := l.Push(p.conn, ev.SGA)
			if werr != nil {
				l.Close(p.conn)
				continue
			}
			add(wqt, pending{kind: kindPush, conn: p.conn, sga: ev.SGA})
			if pqt, perr := l.Pop(p.conn); perr == nil {
				add(pqt, pending{kind: kindPop, conn: p.conn})
			}
		}
	}
}

// ClientResult holds a closed-loop client's measurements.
type ClientResult struct {
	RTTs      []time.Duration
	Elapsed   time.Duration // measured window (rounds after warmup)
	BytesPerS float64       // goodput over the measured rounds
}

// Client runs a closed-loop echo client: connect, then rounds of
// push-and-wait-for-reply of msgSize bytes. warmup rounds are excluded
// from the result.
func Client(l demi.LibOS, server core.Addr, msgSize, rounds, warmup int, clock sim.Clock) (ClientResult, error) {
	return ClientFrom(l, core.Addr{}, server, msgSize, rounds, warmup, clock)
}

// ClientFrom is Client with an explicit local endpoint, bound before
// connecting. Scale-out harnesses pick the source port so the flow's RSS
// hash steers it at a chosen server core; the zero Addr means "any".
func ClientFrom(l demi.LibOS, local, server core.Addr, msgSize, rounds, warmup int, clock sim.Clock) (ClientResult, error) {
	qd, err := l.Socket(core.SockStream)
	if err != nil {
		return ClientResult{}, err
	}
	if local != (core.Addr{}) {
		if err := l.Bind(qd, local); err != nil {
			return ClientResult{}, err
		}
	}
	cqt, err := l.Connect(qd, server)
	if err != nil {
		return ClientResult{}, err
	}
	if ev, err := l.Wait(cqt); err != nil {
		return ClientResult{}, err
	} else if ev.Err != nil {
		return ClientResult{}, ev.Err
	}
	res := ClientResult{RTTs: make([]time.Duration, 0, rounds)}
	var measuredStart sim.Time
	for i := 0; i < rounds+warmup; i++ {
		if i == warmup {
			measuredStart = clock.Now()
		}
		start := clock.Now()
		msg := l.Heap().Alloc(msgSize)
		fill(msg, byte(i))
		wqt, err := l.Push(qd, core.SGA(msg))
		if err != nil {
			msg.Free() // failed push leaves ownership with us
			return res, err
		}
		msg.Free() // UAF protection covers the in-flight buffer
		if _, err := l.Wait(wqt); err != nil {
			return res, err
		}
		got := 0
		for got < msgSize {
			pqt, err := l.Pop(qd)
			if err != nil {
				return res, err
			}
			ev, err := l.Wait(pqt)
			if err != nil {
				return res, err
			}
			if ev.Err != nil {
				return res, ev.Err
			}
			if len(ev.SGA.Segs) == 0 {
				return res, core.ErrQueueClosed
			}
			got += ev.SGA.TotalLen()
			ev.SGA.Free()
		}
		if i >= warmup {
			res.RTTs = append(res.RTTs, clock.Now().Sub(start))
		}
	}
	res.Elapsed = clock.Now().Sub(measuredStart)
	if res.Elapsed > 0 {
		res.BytesPerS = float64(2*msgSize*rounds) / res.Elapsed.Seconds()
	}
	l.Close(qd)
	return res, nil
}

// fill writes a recognizable pattern.
func fill(b *memory.Buf, seed byte) {
	p := b.Bytes()
	for i := range p {
		p[i] = seed + byte(i)
	}
}
