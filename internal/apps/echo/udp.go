package echo

import (
	"time"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/sim"
)

// ServerUDP runs a datagram echo server: every received datagram is sent
// back to its source (optionally after synchronous logging). It runs until
// the libOS stops.
func ServerUDP(l demi.LibOS, cfg ServerConfig) error {
	qd, err := l.Socket(core.SockDgram)
	if err != nil {
		return err
	}
	if err := l.Bind(qd, cfg.Addr); err != nil {
		return err
	}
	logQD := core.InvalidQD
	if cfg.LogName != "" {
		logQD, err = l.Open(cfg.LogName)
		if err != nil {
			return err
		}
	}
	for {
		pqt, err := l.Pop(qd)
		if err != nil {
			return err
		}
		ev, err := l.Wait(pqt)
		if err != nil {
			return nil // stopped
		}
		if ev.Err != nil {
			continue
		}
		if logQD != core.InvalidQD {
			lqt, lerr := l.Push(logQD, ev.SGA)
			if lerr != nil {
				return lerr
			}
			if lev, lerr := l.Wait(lqt); lerr != nil || lev.Err != nil {
				return lerr
			}
		}
		wqt, werr := l.PushTo(qd, ev.SGA, ev.From)
		if werr != nil {
			continue
		}
		if _, werr := l.Wait(wqt); werr != nil {
			return nil
		}
		ev.SGA.Free()
	}
}

// ClientUDP runs a closed-loop datagram echo client against server.
func ClientUDP(l demi.LibOS, server core.Addr, msgSize, rounds, warmup int, clock sim.Clock) (ClientResult, error) {
	qd, err := l.Socket(core.SockDgram)
	if err != nil {
		return ClientResult{}, err
	}
	res := ClientResult{RTTs: make([]time.Duration, 0, rounds)}
	var measuredStart sim.Time
	for i := 0; i < rounds+warmup; i++ {
		if i == warmup {
			measuredStart = clock.Now()
		}
		start := clock.Now()
		msg := l.Heap().Alloc(msgSize)
		fill(msg, byte(i))
		wqt, err := l.PushTo(qd, core.SGA(msg), server)
		if err != nil {
			msg.Free() // failed push leaves ownership with us
			return res, err
		}
		msg.Free()
		if _, err := l.Wait(wqt); err != nil {
			return res, err
		}
		pqt, err := l.Pop(qd)
		if err != nil {
			return res, err
		}
		ev, err := l.Wait(pqt)
		if err != nil {
			return res, err
		}
		if ev.Err != nil {
			return res, ev.Err
		}
		ev.SGA.Free()
		if i >= warmup {
			res.RTTs = append(res.RTTs, clock.Now().Sub(start))
		}
	}
	elapsed := clock.Now().Sub(measuredStart)
	if elapsed > 0 {
		res.BytesPerS = float64(2*msgSize*rounds) / elapsed.Seconds()
	}
	l.Close(qd)
	return res, nil
}
