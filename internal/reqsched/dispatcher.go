package reqsched

import (
	"time"

	"demikernel/internal/sim"
)

// A Dispatcher is the intra-server scheduling layer as an embeddable
// component: a policy-governed worker pool living inside an existing
// simulation. The standalone Run harness is built on it, and the rack
// subsystem embeds one per server host — the host-local half of the
// RackSched two-layer scheduler, whose instantaneous Load is the signal
// piggybacked to the ToR on every reply.
//
// The Dispatcher is driven entirely by engine events, so it composes with
// any node (a Catnip server core submits from its app coroutine; completion
// callbacks run as engine events and may target a node to wake it). The
// engine's baton discipline serializes all access.
type Dispatcher struct {
	eng      *sim.Engine
	policy   Policy
	busy     []bool
	queue    []pendingReq
	queueCap int

	inService  int
	dropped    uint64
	dispatched uint64
	maxLoad    int
}

// pendingReq is one submitted request awaiting a worker.
type pendingReq struct {
	class   Class
	service time.Duration
	done    func(start, end sim.Time)
}

// NewDispatcher returns a dispatcher with the given worker count, admission
// policy and queue bound (0 means unbounded).
func NewDispatcher(eng *sim.Engine, workers int, policy Policy, queueCap int) *Dispatcher {
	if workers < 1 {
		workers = 1
	}
	return &Dispatcher{
		eng:      eng,
		policy:   policy,
		busy:     make([]bool, workers),
		queueCap: queueCap,
	}
}

// Policy returns the admission policy.
func (d *Dispatcher) Policy() Policy { return d.policy }

// Workers returns the worker-pool size.
func (d *Dispatcher) Workers() int { return len(d.busy) }

// Load returns the instantaneous outstanding-request count: queued plus in
// service. This is the load signal a rack server piggybacks to the ToR on
// every reply (RackSched's per-server state).
//
//demi:nonalloc
func (d *Dispatcher) Load() int { return len(d.queue) + d.inService }

// Queued returns the number of requests waiting for a worker.
//
//demi:nonalloc
func (d *Dispatcher) Queued() int { return len(d.queue) }

// InService returns the number of requests currently executing.
//
//demi:nonalloc
func (d *Dispatcher) InService() int { return d.inService }

// Dropped returns the number of requests rejected by the queue bound.
func (d *Dispatcher) Dropped() uint64 { return d.dropped }

// Dispatched returns the number of requests handed to workers.
func (d *Dispatcher) Dispatched() uint64 { return d.dispatched }

// MaxLoad returns the highest Load observed across the run.
func (d *Dispatcher) MaxLoad() int { return d.maxLoad }

// Submit offers one request to the server. It reports false when the queue
// bound rejects it (the caller owns the overload response — a rack server
// still answers, with an error, so the client is never left hanging). done,
// if non-nil, runs as an engine event at completion time with the request's
// service interval; wire a target node wakeup inside it if a parked core
// must notice.
func (d *Dispatcher) Submit(c Class, service time.Duration, done func(start, end sim.Time)) bool {
	if d.queueCap > 0 && len(d.queue) >= d.queueCap {
		d.dropped++
		return false
	}
	d.queue = append(d.queue, pendingReq{class: c, service: service, done: done})
	if l := d.Load(); l > d.maxLoad {
		d.maxLoad = l
	}
	d.dispatch()
	return true
}

// dispatch assigns queued requests to idle, admissible workers, preserving
// FCFS order within each admissible class: a request is skipped only when
// no idle worker may take it now (long requests must not block shorts bound
// for reserved cores).
func (d *Dispatcher) dispatch() {
	for i := 0; i < len(d.queue); {
		r := d.queue[i]
		assigned := -1
		for wi := range d.busy {
			if !d.busy[wi] && d.policy.Admit(wi, r.class) {
				assigned = wi
				break
			}
		}
		if assigned < 0 {
			i++
			continue
		}
		d.queue = append(d.queue[:i], d.queue[i+1:]...)
		wi := assigned
		d.busy[wi] = true
		d.inService++
		d.dispatched++
		// Cross-core handoff, then service, then completion.
		start := d.eng.Now().Add(DispatchCost)
		end := start.Add(r.service)
		d.eng.At(end, nil, func() {
			d.busy[wi] = false
			d.inService--
			if r.done != nil {
				r.done(start, end)
			}
			d.dispatch()
		})
	}
}
