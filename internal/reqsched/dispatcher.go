package reqsched

import (
	"time"

	"demikernel/internal/sim"
)

// A Dispatcher is the intra-server scheduling layer as an embeddable
// component: a policy-governed worker pool living inside an existing
// simulation. The standalone Run harness is built on it, and the rack
// subsystem embeds one per server host — the host-local half of the
// RackSched two-layer scheduler, whose instantaneous Load is the signal
// piggybacked to the ToR on every reply.
//
// The Dispatcher is driven entirely by engine events, so it composes with
// any node (a Catnip server core submits from its app coroutine; completion
// callbacks run as engine events and may target a node to wake it). The
// engine's baton discipline serializes all access.
type Dispatcher struct {
	eng      *sim.Engine
	policy   Policy
	busy     []bool
	queue    []pendingReq
	queueCap int

	inService  int
	dropped    uint64
	dispatched uint64
	maxLoad    int

	// Weighted-fair dispatch across tenants: served banks each tenant's
	// dispatched service time (its virtual clock), weights its share.
	// Disarmed (wfq false) until a nonzero tenant appears, so the legacy
	// FCFS skip-scan — whose exact event ordering the rack tests pin —
	// runs unchanged for single-tenant servers. Maps are keyed-access
	// only, never ranged: determinism.
	wfq     bool
	weights map[uint32]uint64
	served  map[uint32]uint64
}

// pendingReq is one submitted request awaiting a worker.
type pendingReq struct {
	tenant  uint32
	class   Class
	service time.Duration
	done    func(start, end sim.Time)
}

// NewDispatcher returns a dispatcher with the given worker count, admission
// policy and queue bound (0 means unbounded).
func NewDispatcher(eng *sim.Engine, workers int, policy Policy, queueCap int) *Dispatcher {
	if workers < 1 {
		workers = 1
	}
	return &Dispatcher{
		eng:      eng,
		policy:   policy,
		busy:     make([]bool, workers),
		queueCap: queueCap,
	}
}

// Policy returns the admission policy.
func (d *Dispatcher) Policy() Policy { return d.policy }

// Workers returns the worker-pool size.
func (d *Dispatcher) Workers() int { return len(d.busy) }

// Load returns the instantaneous outstanding-request count: queued plus in
// service. This is the load signal a rack server piggybacks to the ToR on
// every reply (RackSched's per-server state).
//
//demi:nonalloc
func (d *Dispatcher) Load() int { return len(d.queue) + d.inService }

// Queued returns the number of requests waiting for a worker.
//
//demi:nonalloc
func (d *Dispatcher) Queued() int { return len(d.queue) }

// InService returns the number of requests currently executing.
//
//demi:nonalloc
func (d *Dispatcher) InService() int { return d.inService }

// Dropped returns the number of requests rejected by the queue bound.
func (d *Dispatcher) Dropped() uint64 { return d.dropped }

// Dispatched returns the number of requests handed to workers.
func (d *Dispatcher) Dispatched() uint64 { return d.dispatched }

// MaxLoad returns the highest Load observed across the run.
func (d *Dispatcher) MaxLoad() int { return d.maxLoad }

// Submit offers one request to the server. It reports false when the queue
// bound rejects it (the caller owns the overload response — a rack server
// still answers, with an error, so the client is never left hanging). done,
// if non-nil, runs as an engine event at completion time with the request's
// service interval; wire a target node wakeup inside it if a parked core
// must notice.
func (d *Dispatcher) Submit(c Class, service time.Duration, done func(start, end sim.Time)) bool {
	return d.SubmitTenant(0, c, service, done)
}

// SetTenantWeight sets a tenant's weighted-fair dispatch share (default 1).
// Any nonzero tenant arms WFQ dispatch.
func (d *Dispatcher) SetTenantWeight(tenant uint32, weight uint64) {
	if d.weights == nil {
		d.weights = make(map[uint32]uint64)
		d.served = make(map[uint32]uint64)
	}
	d.weights[tenant] = weight
	if tenant != 0 {
		d.wfq = true
	}
}

// Served returns the service time (ns) dispatched on a tenant's behalf.
func (d *Dispatcher) Served(tenant uint32) uint64 { return d.served[tenant] }

// SubmitTenant is Submit with the request charged to a tenant principal.
func (d *Dispatcher) SubmitTenant(tenant uint32, c Class, service time.Duration, done func(start, end sim.Time)) bool {
	if d.queueCap > 0 && len(d.queue) >= d.queueCap {
		d.dropped++
		return false
	}
	if tenant != 0 && !d.wfq {
		d.SetTenantWeight(tenant, 1)
	}
	d.queue = append(d.queue, pendingReq{tenant: tenant, class: c, service: service, done: done})
	if l := d.Load(); l > d.maxLoad {
		d.maxLoad = l
	}
	d.dispatch()
	return true
}

// dispatch assigns queued requests to idle, admissible workers, preserving
// FCFS order within each admissible class: a request is skipped only when
// no idle worker may take it now (long requests must not block shorts bound
// for reserved cores).
func (d *Dispatcher) dispatch() {
	if d.wfq {
		d.dispatchWFQ()
		return
	}
	for i := 0; i < len(d.queue); {
		r := d.queue[i]
		assigned := -1
		for wi := range d.busy {
			if !d.busy[wi] && d.policy.Admit(wi, r.class) {
				assigned = wi
				break
			}
		}
		if assigned < 0 {
			i++
			continue
		}
		d.queue = append(d.queue[:i], d.queue[i+1:]...)
		d.startService(r, assigned)
	}
}

// dispatchWFQ is dispatch under weighted-fair queuing: each round, every
// tenant's head-of-line request with an admissible idle worker is a
// candidate, and the tenant with the smallest virtual time (service ns
// banked / weight, compared by cross-multiplication) wins the slot. FCFS
// holds within a tenant; a flooding tenant's deep backlog only competes
// one request at a time.
func (d *Dispatcher) dispatchWFQ() {
	for {
		chosen, chosenWorker := -1, -1
		var chosenTenant uint32
		considered := make(map[uint32]bool, 4)
		for qi := 0; qi < len(d.queue); qi++ {
			r := d.queue[qi]
			if considered[r.tenant] {
				continue // only the tenant's head-of-line request competes
			}
			considered[r.tenant] = true
			wi := -1
			for w := range d.busy {
				if !d.busy[w] && d.policy.Admit(w, r.class) {
					wi = w
					break
				}
			}
			if wi < 0 {
				continue
			}
			if chosen < 0 || d.vless(r.tenant, chosenTenant) {
				chosen, chosenWorker, chosenTenant = qi, wi, r.tenant
			}
		}
		if chosen < 0 {
			return
		}
		r := d.queue[chosen]
		d.queue = append(d.queue[:chosen], d.queue[chosen+1:]...)
		d.startService(r, chosenWorker)
	}
}

// vless reports whether tenant a's virtual time is strictly behind b's
// (ties keep the earlier-queued candidate).
func (d *Dispatcher) vless(a, b uint32) bool {
	return d.served[a]*d.weightOf(b) < d.served[b]*d.weightOf(a)
}

// weightOf returns a tenant's effective weight (unset = 1).
func (d *Dispatcher) weightOf(tenant uint32) uint64 {
	if w := d.weights[tenant]; w != 0 {
		return w
	}
	return 1
}

// startService runs one request on an idle worker: cross-core handoff,
// then service, then the completion event.
func (d *Dispatcher) startService(r pendingReq, wi int) {
	d.busy[wi] = true
	d.inService++
	d.dispatched++
	if d.served != nil {
		d.served[r.tenant] += uint64(r.service)
	}
	start := d.eng.Now().Add(DispatchCost)
	end := start.Add(r.service)
	d.eng.At(end, nil, func() {
		d.busy[wi] = false
		d.inService--
		if r.done != nil {
			r.done(start, end)
		}
		d.dispatch()
	})
}
