package reqsched

import (
	"testing"
	"time"

	"demikernel/internal/sim"
)

// TestDispatcherWFQSharesFollowWeights pins weighted-fair dispatch: with a
// single worker and two tenants keeping deep backlogs, dispatched service
// time splits in proportion to the configured weights even though the
// attacker queues 10 requests for every victim one.
func TestDispatcherWFQSharesFollowWeights(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDispatcher(eng, 1, FCFS{}, 0)
	d.SetTenantWeight(1, 3) // victim
	d.SetTenantWeight(2, 1) // attacker
	var victimDone, attackerDone int
	svc := 100 * time.Microsecond
	for i := 0; i < 200; i++ {
		d.SubmitTenant(1, Short, svc, func(start, end sim.Time) { victimDone++ })
		for j := 0; j < 10; j++ {
			d.SubmitTenant(2, Short, svc, func(start, end sim.Time) { attackerDone++ })
		}
	}
	// Run a 160-slot window and stop: both backlogs stay deep throughout,
	// so the finished split is pure weighted fairness under contention.
	deadline := sim.Time(0).Add(160 * (svc + DispatchCost))
	eng.At(deadline, nil, eng.Stop)
	eng.Run()
	total := victimDone + attackerDone
	if total < 100 {
		t.Fatalf("only %d requests completed, want >= 100", total)
	}
	// Weight 3:1 → victim share ~75% despite the 10x attacker backlog.
	lo, hi := total*70/100, total*80/100
	if victimDone < lo || victimDone > hi {
		t.Errorf("victim completed %d of %d, want ~75%% (weights 3:1)", victimDone, total)
	}
	if d.Served(1) == 0 || d.Served(2) == 0 {
		t.Errorf("Served: victim=%d attacker=%d, both must be nonzero", d.Served(1), d.Served(2))
	}
}

// TestDispatcherWFQKeepsFCFSWithinTenant checks intra-tenant order: one
// tenant's requests complete in submission order under WFQ.
func TestDispatcherWFQKeepsFCFSWithinTenant(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDispatcher(eng, 1, FCFS{}, 0)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		d.SubmitTenant(7, Short, 10*time.Microsecond, func(start, end sim.Time) { order = append(order, i) })
	}
	eng.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v, want submission order", order)
		}
	}
}

// TestDispatcherHostOnlyPathUnchanged: without tenants, SubmitTenant(0,...)
// must leave WFQ disarmed so the legacy skip-scan (whose event ordering the
// rack suite pins) runs.
func TestDispatcherHostOnlyPathUnchanged(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDispatcher(eng, 2, FCFS{}, 0)
	d.Submit(Short, time.Microsecond, nil)
	if d.wfq {
		t.Fatal("host-tenant Submit armed WFQ")
	}
}
