package reqsched

import (
	"testing"
	"time"

	"demikernel/internal/sim"
)

// TestDARCAdmitTable pins the reservation rule itself across its edges:
// Reserved=0 admits everything everywhere (degenerates to c-FCFS), a full
// reservation admits Long nowhere, and the boundary worker Reserved is the
// first one a Long request may use.
func TestDARCAdmitTable(t *testing.T) {
	cases := []struct {
		name     string
		reserved int
		worker   int
		class    Class
		want     bool
	}{
		{"zero reservation, short on worker 0", 0, 0, Short, true},
		{"zero reservation, long on worker 0", 0, 0, Long, true},
		{"short on reserved core", 2, 0, Short, true},
		{"short on shared core", 2, 5, Short, true},
		{"long on last reserved core", 2, 1, Long, false},
		{"long on first shared core", 2, 2, Long, true},
		{"full reservation, long anywhere", 8, 7, Long, false},
		{"full reservation, short anywhere", 8, 7, Short, true},
		{"over-reservation, long beyond pool", 16, 7, Long, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DARC{Reserved: tc.reserved}.Admit(tc.worker, tc.class)
			if got != tc.want {
				t.Errorf("DARC{Reserved: %d}.Admit(%d, class %d) = %v, want %v",
					tc.reserved, tc.worker, tc.class, got, tc.want)
			}
		})
	}
}

// TestDARCZeroReservedMatchesFCFS runs the same seeded workload under FCFS
// and DARC{Reserved: 0}; with no cores reserved the two policies must make
// identical scheduling decisions, request by request.
func TestDARCZeroReservedMatchesFCFS(t *testing.T) {
	w := HighDispersion(4000, 0.8, 4)
	f := Run(13, 4, FCFS{}, w, 1<<20)
	d := Run(13, 4, DARC{Reserved: 0}, w, 1<<20)
	if len(f.ShortLats) != len(d.ShortLats) || len(f.LongLats) != len(d.LongLats) {
		t.Fatalf("request accounting diverged: FCFS %d/%d, DARC0 %d/%d",
			len(f.ShortLats), len(f.LongLats), len(d.ShortLats), len(d.LongLats))
	}
	for i := range f.ShortLats {
		if f.ShortLats[i] != d.ShortLats[i] {
			t.Fatalf("short latency %d diverged: FCFS=%v DARC0=%v", i, f.ShortLats[i], d.ShortLats[i])
		}
	}
	for i := range f.LongLats {
		if f.LongLats[i] != d.LongLats[i] {
			t.Fatalf("long latency %d diverged: FCFS=%v DARC0=%v", i, f.LongLats[i], d.LongLats[i])
		}
	}
	if f.Dropped != d.Dropped {
		t.Errorf("drops diverged: FCFS=%d DARC0=%d", f.Dropped, d.Dropped)
	}
}

// TestDARCFullReservationStarvesLongs covers Reserved >= workers: no worker
// may ever take a Long request, so longs pile up unserved while shorts keep
// completing — the run must still terminate rather than spin on the
// unservable queue head.
func TestDARCFullReservationStarvesLongs(t *testing.T) {
	w := Workload{
		Interarrival: time.Microsecond,
		ShortService: 500 * time.Nanosecond,
		LongService:  50 * time.Microsecond,
		LongFraction: 0.25,
		Count:        400,
	}
	for _, reserved := range []int{4, 9} { // exactly all workers, and beyond
		res := Run(17, 4, DARC{Reserved: reserved}, w, 1<<20)
		if len(res.LongLats) != 0 {
			t.Errorf("Reserved=%d: %d long requests completed on fully reserved cores", reserved, len(res.LongLats))
		}
		if len(res.ShortLats) == 0 {
			t.Errorf("Reserved=%d: no short requests completed", reserved)
		}
		starved := w.Count - len(res.ShortLats) - res.Dropped
		if starved == 0 {
			t.Errorf("Reserved=%d: workload generated no long requests; starvation not exercised", reserved)
		}
	}
}

// TestDispatcherEmptyQueue exercises the embeddable Dispatcher around the
// empty-queue edges: Load is zero before any submit, dispatch on an empty
// queue is a no-op, and a lone request runs to completion with the dispatch
// handoff charged.
func TestDispatcherEmptyQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDispatcher(eng, 2, DARC{Reserved: 1}, 0)
	if d.Load() != 0 || d.Queued() != 0 || d.InService() != 0 {
		t.Fatalf("fresh dispatcher not idle: load=%d queued=%d inService=%d",
			d.Load(), d.Queued(), d.InService())
	}

	completions := 0
	eng.At(0, nil, func() {
		ok := d.Submit(Short, time.Microsecond, func(start, end sim.Time) {
			if got := end.Sub(start); got != time.Microsecond {
				t.Errorf("service interval = %v, want 1µs", got)
			}
			if start.Sub(sim.Time(0)) != DispatchCost {
				t.Errorf("start = %v, want the dispatch handoff %v", start, DispatchCost)
			}
			completions++
		})
		if !ok {
			t.Error("unbounded dispatcher rejected a submit")
		}
		if d.Load() != 1 || d.InService() != 1 || d.Queued() != 0 {
			t.Errorf("after submit: load=%d inService=%d queued=%d, want 1/1/0",
				d.Load(), d.InService(), d.Queued())
		}
	})
	eng.Run()

	if completions != 1 {
		t.Errorf("completions = %d, want 1", completions)
	}
	if d.Load() != 0 || d.Dispatched() != 1 || d.Dropped() != 0 {
		t.Errorf("after drain: load=%d dispatched=%d dropped=%d", d.Load(), d.Dispatched(), d.Dropped())
	}
	if d.MaxLoad() != 1 {
		t.Errorf("MaxLoad = %d, want 1", d.MaxLoad())
	}
}

// TestDispatcherQueueCapAndLoad pins the bounded-queue contract: with one
// worker and cap 2, the fourth concurrent submit is rejected, and Load
// reflects queued plus in-service throughout.
func TestDispatcherQueueCapAndLoad(t *testing.T) {
	eng := sim.NewEngine(2)
	d := NewDispatcher(eng, 1, FCFS{}, 2)
	eng.At(0, nil, func() {
		for i := 0; i < 3; i++ {
			if !d.Submit(Short, time.Microsecond, nil) {
				t.Errorf("submit %d rejected below cap", i)
			}
		}
		if d.Submit(Short, time.Microsecond, nil) {
			t.Error("submit above queue cap accepted")
		}
		if d.Load() != 3 || d.Queued() != 2 || d.InService() != 1 {
			t.Errorf("load=%d queued=%d inService=%d, want 3/2/1",
				d.Load(), d.Queued(), d.InService())
		}
	})
	eng.Run()
	if d.Load() != 0 {
		t.Errorf("load after drain = %d, want 0", d.Load())
	}
	if d.Dropped() != 1 || d.Dispatched() != 3 {
		t.Errorf("dropped=%d dispatched=%d, want 1/3", d.Dropped(), d.Dispatched())
	}
	if d.MaxLoad() != 3 {
		t.Errorf("MaxLoad = %d, want 3", d.MaxLoad())
	}
}
