package reqsched

import (
	"sort"
	"testing"
	"time"
)

func p999(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*999/1000]
}

func TestAllRequestsComplete(t *testing.T) {
	w := HighDispersion(5000, 0.5, 8)
	res := Run(1, 8, FCFS{}, w, 1<<20)
	if got := len(res.ShortLats) + len(res.LongLats) + res.Dropped; got != w.Count {
		t.Fatalf("accounted %d of %d requests", got, w.Count)
	}
	if len(res.LongLats) == 0 {
		t.Fatal("workload generated no long requests")
	}
	// Low load: latencies near the service time + handoff.
	if p := p999(res.ShortLats); p > 100*time.Microsecond {
		t.Errorf("short p999 = %v at 50%% load under FCFS", p)
	}
}

func TestDARCProtectsShortTail(t *testing.T) {
	// High dispersion at high load: FCFS lets rare 100 µs requests occupy
	// every core, destroying the short-request tail; DARC reserves cores.
	const workers = 8
	w := HighDispersion(60000, 0.85, workers)
	fcfs := Run(7, workers, FCFS{}, w, 1<<20)
	darc := Run(7, workers, DARC{Reserved: 2}, w, 1<<20)
	fp, dp := p999(fcfs.ShortLats), p999(darc.ShortLats)
	t.Logf("short p999: FCFS=%v DARC=%v (%.1fx)", fp, dp, float64(fp)/float64(dp))
	if dp >= fp {
		t.Errorf("DARC did not improve the short-request tail: FCFS=%v DARC=%v", fp, dp)
	}
	if float64(fp)/float64(dp) < 2 {
		t.Errorf("DARC improvement only %.1fx; expected substantial protection", float64(fp)/float64(dp))
	}
}

func TestDARCCostsLongRequests(t *testing.T) {
	// The reservation is a trade-off: long requests queue more under DARC.
	const workers = 8
	w := HighDispersion(40000, 0.85, workers)
	fcfs := Run(9, workers, FCFS{}, w, 1<<20)
	darc := Run(9, workers, DARC{Reserved: 2}, w, 1<<20)
	if p999(darc.LongLats) < p999(fcfs.LongLats) {
		t.Errorf("long requests should not improve under DARC: FCFS=%v DARC=%v",
			p999(fcfs.LongLats), p999(darc.LongLats))
	}
}

func TestDeterministicRuns(t *testing.T) {
	w := HighDispersion(3000, 0.7, 4)
	a := Run(5, 4, DARC{Reserved: 1}, w, 1<<20)
	b := Run(5, 4, DARC{Reserved: 1}, w, 1<<20)
	if len(a.ShortLats) != len(b.ShortLats) || p999(a.ShortLats) != p999(b.ShortLats) {
		t.Fatal("same seed produced different results")
	}
}

func TestQueueCapDrops(t *testing.T) {
	w := HighDispersion(5000, 3.0, 2) // heavy overload
	res := Run(11, 2, FCFS{}, w, 64)
	if res.Dropped == 0 {
		t.Error("overload with a tiny queue cap dropped nothing")
	}
}
