// Package reqsched reproduces, in miniature, the request-scheduling layer
// the paper delegates to its companion work Perséphone (paper §3.2, §4.1
// C2: "allocating I/O requests among application workers"). It simulates a
// multi-worker server dispatching requests with widely dispersed service
// times and compares dispatch policies:
//
//   - FCFS: one central queue, any idle worker takes the oldest request.
//     Short requests suffer head-of-line blocking behind long ones.
//   - EarliestDeadline-ish "DARC" (Dedicated Application Request Cores,
//     Perséphone's policy): a fraction of workers is reserved for the
//     short request class, so a burst of long requests can never occupy
//     every core.
//
// Workers are simulated cores (sim nodes); dispatch costs a cross-core
// handoff. The headline result — DARC cuts short-request tail latency by
// orders of magnitude under highly dispersed workloads — reproduces
// Perséphone's motivation for building on Demikernel.
package reqsched

import (
	"math"
	"time"

	"demikernel/internal/sim"
)

// Class is a request type.
type Class int

const (
	// Short requests dominate the workload (e.g. Redis GETs).
	Short Class = iota
	// Long requests are rare but 100x heavier (e.g. range scans).
	Long
)

// DispatchCost is the cross-core handoff charged per request (a shared
// memory queue hop; Perséphone's dispatcher is similarly lightweight).
const DispatchCost = 100 * time.Nanosecond

// Request is one unit of work.
type Request struct {
	Class   Class
	Service time.Duration
	arrived sim.Time
}

// Policy selects a worker for the request at the head of the queue.
type Policy interface {
	// Admit reports whether a request of this class may run on worker w.
	Admit(w int, c Class) bool
	// Name labels the policy in results.
	Name() string
}

// FCFS admits any class on any worker (the classic single-queue server).
type FCFS struct{}

// Admit implements Policy.
func (FCFS) Admit(int, Class) bool { return true }

// Name implements Policy.
func (FCFS) Name() string { return "c-FCFS" }

// DARC reserves the first Reserved workers exclusively for Short requests.
type DARC struct {
	Reserved int
}

// Admit implements Policy.
func (d DARC) Admit(w int, c Class) bool {
	if c == Long {
		return w >= d.Reserved
	}
	return true
}

// Name implements Policy.
func (d DARC) Name() string { return "DARC" }

// Workload generates the request stream.
type Workload struct {
	// Interarrival is the mean time between arrivals (exponential).
	Interarrival time.Duration
	// ShortService and LongService are fixed per-class service times.
	ShortService, LongService time.Duration
	// LongFraction is the probability a request is Long.
	LongFraction float64
	// Count is the number of requests.
	Count int
}

// HighDispersion is Perséphone's motivating workload shape: 99.5% short
// (0.5 µs), 0.5% long (500 µs) — a 1000x dispersion.
func HighDispersion(count int, load float64, workers int) Workload {
	w := Workload{
		ShortService: 500 * time.Nanosecond,
		LongService:  500 * time.Microsecond,
		LongFraction: 0.005,
		Count:        count,
	}
	// Effective per-request worker occupancy includes the dispatch hop.
	mean := 0.995*float64(w.ShortService+DispatchCost) + 0.005*float64(w.LongService+DispatchCost)
	w.Interarrival = time.Duration(mean / (load * float64(workers)))
	return w
}

// Result summarizes one run.
type Result struct {
	Policy              string
	ShortLats, LongLats []time.Duration
	Dropped             int
}

// Run simulates the server: an open-loop arrival process feeding a
// Dispatcher that hands requests to idle workers under the policy.
// Requests that find the queue above queueCap are dropped (overload
// control is out of scope; Perséphone pairs with Breakwater for that).
func Run(seed uint64, workers int, policy Policy, w Workload, queueCap int) Result {
	eng := sim.NewEngine(seed)
	rng := eng.Rand().Fork()
	res := Result{Policy: policy.Name()}
	d := NewDispatcher(eng, workers, policy, queueCap)

	// Arrival process.
	var arrive func(i int, at sim.Time)
	arrive = func(i int, at sim.Time) {
		if i >= w.Count {
			return
		}
		eng.At(at, nil, func() {
			r := Request{Class: Short, Service: w.ShortService, arrived: eng.Now()}
			if rng.Float64() < w.LongFraction {
				r.Class = Long
				r.Service = w.LongService
			}
			if !d.Submit(r.Class, r.Service, func(_, end sim.Time) {
				lat := end.Sub(r.arrived)
				if r.Class == Short {
					res.ShortLats = append(res.ShortLats, lat)
				} else {
					res.LongLats = append(res.LongLats, lat)
				}
			}) {
				res.Dropped++
			}
			// Exponential interarrival via inverse transform.
			gap := expDuration(rng, w.Interarrival)
			arrive(i+1, eng.Now().Add(gap))
		})
	}
	arrive(0, 0)
	eng.Run()
	return res
}

// expDuration draws an exponential duration with the given mean (inverse
// transform sampling).
func expDuration(rng *sim.Rand, mean time.Duration) time.Duration {
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return time.Duration(-float64(mean) * math.Log(u))
}
