// Package baseline models the systems the paper compares against, over the
// same simulated fabric and devices as the Demikernel libOSes. Each
// baseline differs from Demikernel exactly in the architectural dimensions
// the paper credits for its results:
//
//   - Linux (POSIX sockets + epoll): two kernel crossings per I/O, a copy
//     in each direction, in-kernel protocol stacks, and sleep/wake latency
//     on the epoll path.
//   - io_uring: the same kernel stacks, but batched ring submission
//     replaces most syscalls and completions need no epoll_wait.
//   - Shenango: kernel-bypass with a dedicated IOKernel core — every
//     packet pays two cross-core handoffs (paper §7.3: "packets traverse
//     2 cores").
//   - Caladan: run-to-completion on the low-level OFED interface — lowest
//     latency, at the cost of NIC portability (paper §7.3).
//   - eRPC: run-to-completion RPCs carefully tuned for the NIC.
//   - testpmd / perftest: raw device echo loops, no OS at all — the
//     "native" floors of Figures 5 and 8.
//
// Linux and io_uring reuse Catnip's protocol machinery with kernel cost
// parameters: the kernel's TCP is not architecturally different from a
// user-level TCP — what differs is where it runs and what crossings and
// copies surround it, which is exactly what the profiles charge.
package baseline

import (
	"time"

	"demikernel/internal/catmint"
	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/costmodel"
	"demikernel/internal/demi"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/memory"
	"demikernel/internal/rdmadev"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
)

// Env selects the environment profile (Figure 6).
type Env int

const (
	// EnvNative is the bare-metal Linux testbed.
	EnvNative Env = iota
	// EnvWSL is Windows running POSIX through the WSL translation layer.
	EnvWSL
	// EnvAzureVM is a general-purpose Azure VM: virtualized NIC path and
	// paravirtualized kernel I/O.
	EnvAzureVM
)

// Profile is the cost structure a Kernelized wrapper charges around the
// protocol stack.
type Profile struct {
	Name        string
	SyscallCost time.Duration // per PDPIX-equivalent syscall
	WaitCost    time.Duration // per wait call (epoll_wait / cqe reap)
	WakeCost    time.Duration // scheduler wakeup after sleeping
	RxCopy      bool          // kernel-to-user copy on receive
	Polling     bool          // busy-poll instead of sleeping
}

// LinuxProfile is the standard POSIX/epoll path.
func LinuxProfile(env Env) Profile {
	p := Profile{
		Name:        "linux",
		SyscallCost: costmodel.Syscall,
		WaitCost:    costmodel.EpollWait,
		WakeCost:    costmodel.WakeFromSleep,
		RxCopy:      true,
	}
	switch env {
	case EnvWSL:
		p.Name = "wsl"
		p.SyscallCost *= costmodel.WSLSyscallFactor
		p.WaitCost *= costmodel.WSLSyscallFactor
	case EnvAzureVM:
		p.Name = "linux-vm"
		p.SyscallCost *= costmodel.AzureKernelFactor
		p.WaitCost *= costmodel.AzureKernelFactor
		p.WakeCost *= costmodel.AzureKernelFactor
	}
	return p
}

// IOUringProfile models io_uring with a polled completion ring.
func IOUringProfile() Profile {
	return Profile{
		Name:        "io_uring",
		SyscallCost: costmodel.IOUringSubmit,
		WaitCost:    0, // completions read from the shared ring
		WakeCost:    costmodel.WakeFromSleep,
		RxCopy:      true,
	}
}

// CatnapProfile models Demikernel's Catnap: the kernel path, but polled
// read/write instead of epoll — it burns a core to cut the wake latency
// (paper §6.1, §7.3).
func CatnapProfile(env Env) Profile {
	p := Profile{
		Name:        "catnap",
		SyscallCost: costmodel.Syscall,
		WaitCost:    0,
		WakeCost:    0,
		RxCopy:      true,
		Polling:     true,
	}
	if env == EnvWSL {
		p.SyscallCost *= costmodel.WSLSyscallFactor
	}
	if env == EnvAzureVM {
		// Polling also keeps the vCPU scheduled (paper §7.3), so only the
		// syscall cost inflates.
		p.SyscallCost *= costmodel.AzureKernelFactor
	}
	return p
}

// kernelStackConfig returns a Catnip config with in-kernel protocol costs.
func kernelStackConfig(ip wire.IPAddr, env Env) catnip.Config {
	cfg := catnip.DefaultConfig(ip)
	cfg.ForceCopy = true // the kernel path copies on tx
	cfg.TCPIngressCost = costmodel.KernelTCPRx
	cfg.TCPEgressCost = costmodel.KernelTCPTx
	cfg.UDPIngressCost = costmodel.KernelUDPRx
	cfg.UDPEgressCost = costmodel.KernelUDPTx
	if env == EnvAzureVM {
		cfg.TCPIngressCost = cfg.TCPIngressCost*costmodel.AzureKernelFactor + costmodel.AzureVNICHop
		cfg.TCPEgressCost = cfg.TCPEgressCost*costmodel.AzureKernelFactor + costmodel.AzureVNICHop
		cfg.UDPIngressCost = cfg.UDPIngressCost*costmodel.AzureKernelFactor + costmodel.AzureVNICHop
		cfg.UDPEgressCost = cfg.UDPEgressCost*costmodel.AzureKernelFactor + costmodel.AzureVNICHop
	}
	if env == EnvWSL {
		cfg.TCPIngressCost *= 2 // WSL2 network virtualization
		cfg.TCPEgressCost *= 2
		cfg.UDPIngressCost *= 2
		cfg.UDPEgressCost *= 2
	}
	return cfg
}

// NewLinux builds a Linux-baseline stack (POSIX + epoll) on node/port.
func NewLinux(node *sim.Node, port *dpdkdev.Port, ip wire.IPAddr, env Env) *Kernelized {
	inner := catnip.New(node, port, kernelStackConfig(ip, env))
	return Wrap(inner, node, LinuxProfile(env))
}

// NewLinuxWithStorage builds a Linux baseline with a storage log behind
// the kernel block layer (for the logging and Redis experiments).
func NewLinuxWithStorage(node *sim.Node, port *dpdkdev.Port, ip wire.IPAddr, env Env, stor demi.StorOS) *Kernelized {
	inner := demi.NewCombined(catnip.New(node, port, kernelStackConfig(ip, env)), stor)
	return Wrap(inner, node, LinuxProfile(env))
}

// NewCatnapSimWithStorage is the polled kernel path plus kernel storage.
func NewCatnapSimWithStorage(node *sim.Node, port *dpdkdev.Port, ip wire.IPAddr, env Env, stor demi.StorOS) *Kernelized {
	inner := demi.NewCombined(catnip.New(node, port, kernelStackConfig(ip, env)), stor)
	return Wrap(inner, node, CatnapProfile(env))
}

// NewIOUring builds an io_uring-baseline stack.
func NewIOUring(node *sim.Node, port *dpdkdev.Port, ip wire.IPAddr) *Kernelized {
	inner := catnip.New(node, port, kernelStackConfig(ip, EnvNative))
	return Wrap(inner, node, IOUringProfile())
}

// NewCatnapSim builds the simulated equivalent of Catnap (kernel stack,
// polled) so Catnap appears in virtual-time experiments alongside the
// kernel-bypass libOSes. The real Catnap (internal/catnap) runs on the
// real OS.
func NewCatnapSim(node *sim.Node, port *dpdkdev.Port, ip wire.IPAddr, env Env) *Kernelized {
	inner := catnip.New(node, port, kernelStackConfig(ip, env))
	return Wrap(inner, node, CatnapProfile(env))
}

// NewShenango builds a Shenango-model stack: user-level TCP over DPDK with
// a dedicated IOKernel core — each packet pays two core hops plus IOKernel
// work on top of a basic (less optimized) TCP stack.
func NewShenango(node *sim.Node, port *dpdkdev.Port, ip wire.IPAddr) demi.NetOS {
	cfg := catnip.DefaultConfig(ip)
	cfg.TCPIngressCost = costmodel.ShenangoPerPacket + 2*costmodel.CoreHop
	cfg.TCPEgressCost = costmodel.ShenangoPerPacket + 2*costmodel.CoreHop
	cfg.UDPIngressCost = cfg.TCPIngressCost
	cfg.UDPEgressCost = cfg.TCPEgressCost
	return catnip.New(node, port, cfg)
}

// NewCaladan builds a Caladan-model stack: run-to-completion TCP directly
// on the OFED-level interface. Lower per-packet cost than Catnip (no
// portability layer), same single-core architecture.
func NewCaladan(node *sim.Node, port *dpdkdev.Port, ip wire.IPAddr) demi.NetOS {
	cfg := catnip.DefaultConfig(ip)
	cfg.TCPIngressCost = costmodel.CaladanPerPacket
	cfg.TCPEgressCost = costmodel.CaladanPerPacket
	cfg.UDPIngressCost = costmodel.CaladanPerPacket
	cfg.UDPEgressCost = costmodel.CaladanPerPacket
	return catnip.New(node, port, cfg)
}

// NewERPC builds an eRPC-model stack: RPC-oriented messaging over the RDMA
// NIC with per-IO costs tuned below Catmint's (paper: eRPC is "carefully
// tuned for Mellanox CX5 NICs").
func NewERPC(node *sim.Node, nic *rdmadev.NIC, book *catmint.AddrBook) demi.NetOS {
	cfg := catmint.DefaultConfig(book)
	cfg.PostSendCost = costmodel.ERPCPerIO / 2
	cfg.PollCQECost = costmodel.ERPCPerIO / 2
	return catmint.New(node, nic, cfg)
}

// Kernelized wraps a protocol stack with kernel-path costs: syscalls on
// every PDPIX-equivalent call, wakeup latency when sleeping, and receive
// copies. The inner stack may be a bare network libOS or a Combined
// network×storage stack (the kernel path then models file writes through
// the block layer).
type Kernelized struct {
	inner demi.Drivable
	node  *sim.Node
	prof  Profile
	// storageWriteCost is the kernel block-layer + filesystem journalling
	// cost per synchronous write, charged when pushing to a storage queue.
	storageWriteCost time.Duration
	// rr rotates the wait scan start (same fairness rule as core.Waiter;
	// epoll likewise reports ready fds without favoring the lowest).
	rr int
}

// Wrap builds a Kernelized stack.
func Wrap(inner demi.Drivable, node *sim.Node, prof Profile) *Kernelized {
	return &Kernelized{inner: inner, node: node, prof: prof, storageWriteCost: costmodel.KernelBlockIO}
}

// Profile returns the wrapper's cost profile.
func (k *Kernelized) Profile() Profile { return k.prof }

// Inner returns the wrapped stack.
func (k *Kernelized) Inner() demi.Drivable { return k.inner }

// Seek moves a storage cursor (lseek syscall).
func (k *Kernelized) Seek(qd core.QDesc, off int64) error {
	k.syscall()
	if s, ok := k.inner.(demi.StorageOS); ok {
		return s.Seek(qd, off)
	}
	return core.ErrNotSupported
}

// Truncate truncates the log (ftruncate syscall).
func (k *Kernelized) Truncate(qd core.QDesc) error {
	k.syscall()
	if s, ok := k.inner.(demi.StorageOS); ok {
		return s.Truncate(qd)
	}
	return core.ErrNotSupported
}

func (k *Kernelized) syscall() { k.node.Charge(k.prof.SyscallCost) }

// Heap returns the application heap.
func (k *Kernelized) Heap() *memory.Heap { return k.inner.Heap() }

// Socket creates a socket (one syscall).
func (k *Kernelized) Socket(t core.SockType) (core.QDesc, error) {
	k.syscall()
	return k.inner.Socket(t)
}

// Bind binds (one syscall).
func (k *Kernelized) Bind(qd core.QDesc, a core.Addr) error {
	k.syscall()
	return k.inner.Bind(qd, a)
}

// Listen listens (one syscall).
func (k *Kernelized) Listen(qd core.QDesc, backlog int) error {
	k.syscall()
	return k.inner.Listen(qd, backlog)
}

// Accept posts an accept (one syscall when it completes; charged here).
func (k *Kernelized) Accept(qd core.QDesc) (core.QToken, error) {
	k.syscall()
	return k.inner.Accept(qd)
}

// Connect dials (one syscall).
func (k *Kernelized) Connect(qd core.QDesc, a core.Addr) (core.QToken, error) {
	k.syscall()
	return k.inner.Connect(qd, a)
}

// Close closes (one syscall).
func (k *Kernelized) Close(qd core.QDesc) error {
	k.syscall()
	return k.inner.Close(qd)
}

// Queue creates an in-memory queue (no kernel involvement).
func (k *Kernelized) Queue() (core.QDesc, error) { return k.inner.Queue() }

// Open opens a storage log (one syscall).
func (k *Kernelized) Open(name string) (core.QDesc, error) {
	k.syscall()
	return k.inner.Open(name)
}

// Push is a write syscall; on storage queues it also pays the kernel
// block layer and filesystem journalling (ext4 in the paper's testbed).
func (k *Kernelized) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	k.syscall()
	if c, ok := k.inner.(*demi.Combined); ok && c.IsStorageQD(qd) {
		k.node.Charge(k.storageWriteCost)
		k.node.Charge(costmodel.Memcpy(sga.TotalLen())) // user-to-kernel copy
	}
	return k.inner.Push(qd, sga)
}

// PushTo is a sendto syscall.
func (k *Kernelized) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	k.syscall()
	return k.inner.PushTo(qd, sga, to)
}

// Pop is a read syscall (the data lands at wait time).
func (k *Kernelized) Pop(qd core.QDesc) (core.QToken, error) {
	k.syscall()
	return k.inner.Pop(qd)
}

// finish applies receive-side costs to a completed event.
func (k *Kernelized) finish(ev core.QEvent) core.QEvent {
	if k.prof.RxCopy && ev.Op == core.OpPop {
		k.node.Charge(costmodel.Memcpy(ev.SGA.TotalLen()))
	}
	return ev
}

// wait runs the kernel-path wait loop: epoll_wait (or ring reap) plus
// sleep/wake costs when not polling.
func (k *Kernelized) wait(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	deadline := sim.Infinity
	if timeout >= 0 {
		deadline = k.inner.Now().Add(timeout)
	}
	k.node.Charge(k.prof.WaitCost)
	for {
		for j := range qts {
			i := (k.rr + j) % len(qts)
			ev, done, err := k.inner.TryTake(qts[i])
			if err != nil {
				return -1, core.QEvent{}, err
			}
			if done {
				if len(qts) > 1 {
					k.rr = i + 1
				}
				return i, k.finish(ev), nil
			}
		}
		if k.inner.Step() {
			continue
		}
		if k.inner.Now() >= deadline {
			return -1, core.QEvent{}, core.ErrTimeout
		}
		if !k.inner.Block(deadline) {
			return -1, core.QEvent{}, core.ErrStopped
		}
		if !k.prof.Polling {
			// The thread slept in the kernel and was woken.
			k.node.Charge(k.prof.WakeCost + k.prof.WaitCost)
		}
	}
}

// Wait blocks until qt completes.
func (k *Kernelized) Wait(qt core.QToken) (core.QEvent, error) {
	_, ev, err := k.wait([]core.QToken{qt}, -1)
	return ev, err
}

// WaitAny blocks until one of qts completes.
func (k *Kernelized) WaitAny(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	return k.wait(qts, timeout)
}

// WaitAll blocks until all tokens complete.
func (k *Kernelized) WaitAll(qts []core.QToken, timeout time.Duration) ([]core.QEvent, error) {
	events := make([]core.QEvent, len(qts))
	remaining := make([]core.QToken, len(qts))
	copy(remaining, qts)
	idx := make([]int, len(qts))
	for i := range idx {
		idx[i] = i
	}
	for len(remaining) > 0 {
		i, ev, err := k.wait(remaining, timeout)
		if err != nil {
			return events, err
		}
		events[idx[i]] = ev
		remaining = append(remaining[:i], remaining[i+1:]...)
		idx = append(idx[:i], idx[i+1:]...)
	}
	return events, nil
}
