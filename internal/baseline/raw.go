package baseline

import (
	"time"

	"demikernel/internal/costmodel"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/memory"
	"demikernel/internal/rdmadev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
)

// Raw device loops: the paper's testpmd (DPDK L2 forwarder) and perftest
// (RDMA ping-pong), the "native" performance floors with no OS at all.

// TestpmdForwarder returns an application main that echoes every frame at
// L2, swapping the Ethernet addresses — exactly what testpmd's iofwd mode
// does. It runs until the engine stops.
func TestpmdForwarder(port *dpdkdev.Port) func() {
	return func() {
		node := port.Node()
		for {
			mbufs := port.RxBurst(32)
			if len(mbufs) == 0 {
				node.Charge(costmodel.PollEmpty)
				if !node.Park(sim.Infinity) {
					return
				}
				continue
			}
			for _, m := range mbufs {
				node.Charge(costmodel.RawDPDKPerPacket)
				// Swap dst/src MACs in place and bounce the frame.
				var tmp [6]byte
				copy(tmp[:], m.Data[0:6])
				copy(m.Data[0:6], m.Data[6:12])
				copy(m.Data[6:12], tmp[:])
				port.TxBurst([][]byte{m.Data})
				m.Free()
			}
		}
	}
}

// rawMTU is the Ethernet payload per frame for the raw DPDK ping (NetPIPE
// over DPDK segments messages into MTU frames, as any L2 path must).
const rawMTU = 1500

// RawDPDKPing measures count echo RTTs of size-byte messages (segmented
// into MTU frames) against a testpmd forwarder, returning per-round RTTs.
// It is the client side of the paper's "Raw DPDK" bar.
func RawDPDKPing(port *dpdkdev.Port, peer simnet.MAC, size, count int) []time.Duration {
	node := port.Node()
	rtts := make([]time.Duration, 0, count)
	nFrames := (size + rawMTU - 1) / rawMTU
	frames := make([][]byte, nFrames)
	mac := port.MAC()
	remaining := size
	for i := range frames {
		n := remaining
		if n > rawMTU {
			n = rawMTU
		}
		remaining -= n
		f := make([]byte, 14+n)
		copy(f[0:6], peer[:])
		copy(f[6:12], mac[:])
		frames[i] = f
	}
	for i := 0; i < count; i++ {
		start := node.Now()
		for _, f := range frames {
			node.Charge(costmodel.RawDPDKPerPacket)
			port.TxBurst([][]byte{f})
		}
		got := 0
		for got < nFrames {
			mbufs := port.RxBurst(32)
			if len(mbufs) == 0 {
				node.Charge(costmodel.PollEmpty)
				if !node.Park(sim.Infinity) {
					return rtts
				}
				continue
			}
			for _, m := range mbufs {
				node.Charge(costmodel.RawDPDKPerPacket)
				m.Free()
				got++
			}
		}
		rtts = append(rtts, node.Now().Sub(start))
	}
	return rtts
}

// MessageForwarder returns an application main that buffers nFrames
// frames (one NetPIPE message) and then echoes them all, preserving
// message semantics for the bandwidth sweep.
func MessageForwarder(port *dpdkdev.Port, nFrames int) func() {
	return func() {
		node := port.Node()
		var held [][]byte
		for {
			mbufs := port.RxBurst(32)
			if len(mbufs) == 0 {
				node.Charge(costmodel.PollEmpty)
				if !node.Park(sim.Infinity) {
					return
				}
				continue
			}
			for _, m := range mbufs {
				node.Charge(costmodel.RawDPDKPerPacket)
				var tmp [6]byte
				copy(tmp[:], m.Data[0:6])
				copy(m.Data[0:6], m.Data[6:12])
				copy(m.Data[6:12], tmp[:])
				held = append(held, m.Data)
				m.Free()
				if len(held) == nFrames {
					port.TxBurst(held)
					held = held[:0]
				}
			}
		}
	}
}

// PerftestResponder returns an application main bouncing RDMA messages
// back on the given QP, the server side of perftest's ping-pong.
func PerftestResponder(nic *rdmadev.NIC, qp *rdmadev.QP, heap *memory.Heap, msgSize, depth int) func() {
	return func() {
		node := nic.Node()
		for i := 0; i < depth; i++ {
			qp.PostRecv(heap.Alloc(msgSize), nil)
		}
		for {
			cqes := nic.PollCQ(8)
			if len(cqes) == 0 {
				node.Charge(costmodel.PollEmpty)
				if !node.Park(sim.Infinity) {
					return
				}
				continue
			}
			for _, cqe := range cqes {
				if cqe.Op != rdmadev.OpRecv {
					continue
				}
				node.Charge(costmodel.RawRDMAPerIO)
				qp.PostSend(nil, cqe.Buf.Bytes()[:cqe.Len])
				qp.PostRecv(cqe.Buf, nil) // recycle the buffer
			}
		}
	}
}

// PerftestPing measures count RDMA send/recv RTTs of msgSize bytes,
// returning per-round RTTs — the paper's "Raw RDMA" bar.
func PerftestPing(nic *rdmadev.NIC, qp *rdmadev.QP, heap *memory.Heap, msgSize, count int) []time.Duration {
	node := nic.Node()
	rtts := make([]time.Duration, 0, count)
	msg := heap.Alloc(msgSize)
	defer msg.Free()
	for i := 0; i < 4; i++ {
		qp.PostRecv(heap.Alloc(msgSize), nil)
	}
	for i := 0; i < count; i++ {
		start := node.Now()
		node.Charge(costmodel.RawRDMAPerIO)
		qp.PostSend(nil, msg.Bytes())
		got := false
		for !got {
			for _, cqe := range nic.PollCQ(8) {
				if cqe.Op == rdmadev.OpRecv {
					node.Charge(costmodel.RawRDMAPerIO)
					qp.PostRecv(cqe.Buf, nil)
					got = true
				}
			}
			if !got {
				node.Charge(costmodel.PollEmpty)
				if !node.Park(sim.Infinity) {
					return rtts
				}
			}
		}
		rtts = append(rtts, node.Now().Sub(start))
	}
	return rtts
}
