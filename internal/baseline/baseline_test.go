package baseline

import (
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/memory"
	"demikernel/internal/rdmadev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

var (
	ipA = wire.IPAddr{10, 3, 0, 1}
	ipB = wire.IPAddr{10, 3, 0, 2}
)

// echoRTT runs a 64 B TCP echo between two instances of the stack built by
// mk and returns the steady-state average RTT in virtual time.
func echoRTT(t *testing.T, mk func(node *sim.Node, port *dpdkdev.Port, ip wire.IPAddr) demi.LibOS) time.Duration {
	t.Helper()
	eng := sim.NewEngine(77)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	na, nb := eng.NewNode("client"), eng.NewNode("server")
	pa := dpdkdev.Attach(sw, na, simnet.DefaultLink(), 8192, 0)
	pb := dpdkdev.Attach(sw, nb, simnet.DefaultLink(), 8192, 0)
	la := mk(na, pa, ipA)
	lb := mk(nb, pb, ipB)
	seedARP(la, ipB, pb.MAC())
	seedARP(lb, ipA, pa.MAC())

	eng.Spawn(nb, func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, core.Addr{IP: ipB, Port: 80})
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			wqt, _ := lb.Push(conn, ev.SGA)
			if _, err := lb.Wait(wqt); err != nil {
				return
			}
			ev.SGA.Free()
		}
	})
	var total time.Duration
	const rounds = 50
	eng.Spawn(na, func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for i := 0; i < rounds; i++ {
			start := na.Now()
			la.Push(qd, core.SGA(memory.CopyFrom(la.Heap(), make([]byte, 64))))
			pqt, _ := la.Pop(qd)
			ev, err := la.Wait(pqt)
			if err != nil || ev.Err != nil {
				t.Errorf("pop: %v", err)
				return
			}
			ev.SGA.Free()
			total += na.Now().Sub(start)
		}
		la.Close(qd)
	})
	eng.Run()
	return total / rounds
}

// seedARP seeds the underlying Catnip cache regardless of wrapping.
func seedARP(l demi.LibOS, ip wire.IPAddr, mac simnet.MAC) {
	type seeder interface {
		SeedARP(wire.IPAddr, simnet.MAC)
	}
	switch v := l.(type) {
	case *Kernelized:
		v.Inner().(seeder).SeedARP(ip, mac)
	case seeder:
		v.SeedARP(ip, mac)
	}
}

func TestLatencyOrderingMatchesPaper(t *testing.T) {
	linux := echoRTT(t, func(n *sim.Node, p *dpdkdev.Port, ip wire.IPAddr) demi.LibOS {
		return NewLinux(n, p, ip, EnvNative)
	})
	catnapSim := echoRTT(t, func(n *sim.Node, p *dpdkdev.Port, ip wire.IPAddr) demi.LibOS {
		return NewCatnapSim(n, p, ip, EnvNative)
	})
	shenango := echoRTT(t, func(n *sim.Node, p *dpdkdev.Port, ip wire.IPAddr) demi.LibOS {
		return NewShenango(n, p, ip)
	})
	caladan := echoRTT(t, func(n *sim.Node, p *dpdkdev.Port, ip wire.IPAddr) demi.LibOS {
		return NewCaladan(n, p, ip)
	})
	t.Logf("linux=%v catnap=%v shenango=%v caladan=%v", linux, catnapSim, shenango, caladan)
	// Paper Figure 5 ordering: Linux > Catnap > Shenango > Caladan.
	if !(linux > catnapSim && catnapSim > shenango && shenango > caladan) {
		t.Errorf("latency ordering wrong: linux=%v catnap=%v shenango=%v caladan=%v",
			linux, catnapSim, shenango, caladan)
	}
	// Linux should be tens of microseconds; Caladan single-digit.
	if linux < 15*time.Microsecond {
		t.Errorf("linux RTT %v implausibly fast", linux)
	}
	if caladan > 10*time.Microsecond {
		t.Errorf("caladan RTT %v implausibly slow", caladan)
	}
}

func TestWSLSlowerThanNativeLinux(t *testing.T) {
	native := echoRTT(t, func(n *sim.Node, p *dpdkdev.Port, ip wire.IPAddr) demi.LibOS {
		return NewLinux(n, p, ip, EnvNative)
	})
	wsl := echoRTT(t, func(n *sim.Node, p *dpdkdev.Port, ip wire.IPAddr) demi.LibOS {
		return NewLinux(n, p, ip, EnvWSL)
	})
	if wsl <= native*2 {
		t.Errorf("WSL %v not clearly slower than native %v", wsl, native)
	}
}

func TestRawDPDKPing(t *testing.T) {
	eng := sim.NewEngine(5)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	na, nb := eng.NewNode("pinger"), eng.NewNode("fwd")
	pa := dpdkdev.Attach(sw, na, simnet.DefaultLink(), 1024, 0)
	pb := dpdkdev.Attach(sw, nb, simnet.DefaultLink(), 1024, 0)
	eng.Spawn(nb, TestpmdForwarder(pb))
	var rtts []time.Duration
	eng.Spawn(na, func() {
		rtts = RawDPDKPing(pa, pb.MAC(), 64, 100)
		eng.Stop()
	})
	eng.Run()
	if len(rtts) != 100 {
		t.Fatalf("completed %d pings", len(rtts))
	}
	// Floor: 4 link traversals + 2 switch latencies ≈ 2.1 µs with the
	// default 300 ns link.
	if rtts[50] < 2*time.Microsecond || rtts[50] > 4*time.Microsecond {
		t.Errorf("raw DPDK RTT = %v", rtts[50])
	}
}

func TestRawRDMAPingFasterThanRawDPDKStack(t *testing.T) {
	eng := sim.NewEngine(6)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	reg := rdmadev.NewRegistry(sw)
	na, nb := eng.NewNode("pinger"), eng.NewNode("resp")
	nicA := reg.NewNIC(na, simnet.DefaultLink(), 0)
	nicB := reg.NewNIC(nb, simnet.DefaultLink(), 0)
	heapA, heapB := memory.NewHeap(nicA.RegisterMemory), memory.NewHeap(nicB.RegisterMemory)
	l, _ := nicB.ListenCM(1)
	var rtts []time.Duration
	eng.Spawn(nb, func() {
		var qp *rdmadev.QP
		for {
			var ok bool
			if qp, ok = l.Accept(); ok {
				break
			}
			if !nb.Park(sim.Infinity) {
				return
			}
		}
		PerftestResponder(nicB, qp, heapB, 4096, 16)()
	})
	eng.Spawn(na, func() {
		qp, err := nicA.ConnectCM(nicB.MAC(), 1)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		rtts = PerftestPing(nicA, qp, heapA, 64, 100)
		eng.Stop()
	})
	eng.Run()
	if len(rtts) != 100 {
		t.Fatalf("completed %d pings", len(rtts))
	}
	if rtts[50] > 4*time.Microsecond {
		t.Errorf("raw RDMA RTT = %v", rtts[50])
	}
}
