package multicore

import (
	"testing"
	"time"

	"demikernel/internal/apps/echo"
	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// TestTwoCoreEcho runs an SO_REUSEPORT-style sharded echo server on two
// cores and one RSS-steered client per core: both cores must serve their
// own flow, and port-level stats must equal the sum of the queues.
func TestTwoCoreEcho(t *testing.T) {
	eng := sim.NewEngine(5)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	serverIP := wire.IPAddr{10, 0, 0, 1}
	link := simnet.LinkParams{Latency: time.Microsecond, BandwidthBps: 100e9}
	grp := New(eng, sw, "server", serverIP, Config{Cores: 2, Link: link})
	if grp.NumCores() != 2 || grp.Port.NumQueues() != 2 {
		t.Fatalf("group has %d cores, port %d queues", grp.NumCores(), grp.Port.NumQueues())
	}

	svc := core.Addr{IP: serverIP, Port: 7000}
	grp.Spawn(func(c *Core) {
		echo.Server(c.OS, echo.ServerConfig{Addr: svc, MaxConns: 4})
	})

	const rounds = 50
	var done int
	results := make([]echo.ClientResult, 2)
	for target := 0; target < 2; target++ {
		target := target
		ip := wire.IPAddr{10, 0, 0, byte(2 + target)}
		node := eng.NewNode("client")
		port := dpdkdev.Attach(sw, node, link, 1<<12, 0)
		l := catnip.New(node, port, catnip.DefaultConfig(ip))
		grp.SeedARP(ip, port.MAC())
		l.SeedARP(serverIP, grp.MAC())
		sport := grp.SourcePortFor(ip, svc.Port, target, 40000)
		if got := grp.CoreFor(ip, sport, svc.Port); got != target {
			t.Fatalf("SourcePortFor picked port %d mapping to core %d, want %d", sport, got, target)
		}
		local := core.Addr{IP: ip, Port: sport}
		eng.Spawn(node, func() {
			res, err := echo.ClientFrom(l, local, svc, 64, rounds, 5, node)
			if err != nil {
				t.Errorf("client %d: %v", target, err)
			}
			results[target] = res
			if done++; done == 2 {
				eng.Stop()
			}
		})
	}
	eng.Run()

	for i, res := range results {
		if len(res.RTTs) != rounds {
			t.Fatalf("client %d completed %d/%d rounds", i, len(res.RTTs), rounds)
		}
	}
	stats := grp.Stats()
	var rxSum, txSum uint64
	for _, cs := range stats {
		if cs.Queue.RxPackets == 0 || cs.Queue.TxPackets == 0 {
			t.Errorf("core %d idle: %+v (RSS steering should hit both)", cs.Core, cs.Queue)
		}
		if cs.Busy == 0 {
			t.Errorf("core %d charged no CPU time", cs.Core)
		}
		if cs.Sched.Polls == 0 {
			t.Errorf("core %d scheduler never polled", cs.Core)
		}
		rxSum += cs.Queue.RxPackets
		txSum += cs.Queue.TxPackets
	}
	agg := grp.Port.Stats()
	if agg.RxPackets != rxSum || agg.TxPackets != txSum {
		t.Errorf("port aggregate %+v != queue sums rx=%d tx=%d", agg, rxSum, txSum)
	}
}

// TestHostRoundRobin checks equal-clock cores take the engine baton in
// round-robin order, the property that makes multi-core runs replayable.
func TestHostRoundRobin(t *testing.T) {
	eng := sim.NewEngine(1)
	host := eng.NewHost("h", 3)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn(host.Core(i), func() {
			for step := 0; step < 3; step++ {
				order = append(order, i)
				host.Core(i).Charge(time.Microsecond) // all cores stay in lockstep
				if !host.Core(i).Yield() {
					return
				}
			}
		})
	}
	eng.Run()
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("ran %d steps, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("baton order %v, want %v", order, want)
		}
	}
}
