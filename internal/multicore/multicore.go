// Package multicore assembles a shared-nothing multi-core Demikernel node:
// one RSS multi-queue DPDK port, one virtual CPU per queue pair, and one
// complete Catnip stack (with its own coroutine scheduler, ARP cache,
// socket tables and heap) per core. Nothing on the datapath is shared
// between cores — the paper's single-threaded-per-core execution model
// (§3.1) scaled out the way microsecond-scale servers actually scale:
// hardware flow steering instead of software locking.
//
// Request steering is RSS (dpdkdev/rss.go): the NIC hashes each arriving
// frame's 5-tuple, so every frame of a flow lands on the queue — and
// therefore the core — that owns its connection. Listening works
// SO_REUSEPORT-style: every core binds the same (addr, port) in its own
// stack and accepts exactly the connections RSS steers to its queue, so
// one service address fans out across cores with no dispatcher core and
// no cross-core handoff (contrast with Shenango's IOKernel hop, which
// Figure 5 charges ~1.2 µs per packet).
//
// Determinism is preserved: cores are ordinary sim.Nodes under the
// engine's one-runner-at-a-time baton, RSS is a pure hash, and equal-clock
// cores take the baton round-robin — the same seed replays the same
// multi-core execution byte for byte.
package multicore

import (
	"time"

	"demikernel/internal/catnip"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sched"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/telemetry"
	"demikernel/internal/wire"
)

// Config sizes a multi-core node.
type Config struct {
	// Cores is the number of virtual CPUs = rx/tx queue pairs (0 means 1).
	Cores int
	// Link is the NIC attachment; zero value means simnet.DefaultLink.
	Link simnet.LinkParams
	// PoolSize bounds the port's shared mbuf pool (0 means 1<<16).
	PoolSize int
	// RxRing bounds each queue's rx descriptor ring (0 = unbounded).
	// Bound it in overload experiments so drops surface in QueueStats.
	RxRing int
	// Stack builds each core's Catnip config; nil means
	// catnip.DefaultConfig.
	Stack func(ip wire.IPAddr) catnip.Config
}

// A Core is one virtual CPU with its private stack and queue pair.
type Core struct {
	ID    int
	Node  *sim.Node
	Queue *dpdkdev.Queue
	OS    *catnip.LibOS
}

// CoreStats is one core's activity snapshot after a run.
type CoreStats struct {
	Core  int
	Busy  time.Duration
	Sched sched.Stats
	Stack catnip.Stats
	Queue dpdkdev.QueueStats
}

// Group is a multi-core Demikernel node on the fabric.
type Group struct {
	Name  string
	IP    wire.IPAddr
	Host  *sim.Host
	Port  *dpdkdev.Port
	Cores []*Core
}

// New attaches a multi-core node to the switch: an N-queue RSS port on an
// N-core host, one Catnip stack per core over its own queue pair.
func New(eng *sim.Engine, sw *simnet.Switch, name string, ip wire.IPAddr, cfg Config) *Group {
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	link := cfg.Link
	if link == (simnet.LinkParams{}) {
		link = simnet.DefaultLink()
	}
	poolSize := cfg.PoolSize
	if poolSize == 0 {
		poolSize = 1 << 16
	}
	mkcfg := cfg.Stack
	if mkcfg == nil {
		mkcfg = catnip.DefaultConfig
	}
	host := eng.NewHost(name, cores)
	port := dpdkdev.AttachQueues(sw, host.Core(0), link, dpdkdev.Config{
		PoolSize: poolSize,
		RxRing:   cfg.RxRing,
		Queues:   cores,
	})
	g := &Group{Name: name, IP: ip, Host: host, Port: port}
	for i := 0; i < cores; i++ {
		node := host.Core(i)
		q := port.Queue(i)
		q.SetOwner(node)
		os := catnip.NewOnDevice(node, q, mkcfg(ip))
		// Re-label the core's qtoken spans with its index (the stack
		// self-instruments as core 0).
		os.Tokens().Instrument(node, i)
		g.Cores = append(g.Cores, &Core{
			ID:    i,
			Node:  node,
			Queue: q,
			OS:    os,
		})
	}
	return g
}

// CoreTelemetry snapshots every core's stack registry, in core order — the
// per-core shards of the group's metrics.
func (g *Group) CoreTelemetry() []*telemetry.Snapshot {
	out := make([]*telemetry.Snapshot, 0, len(g.Cores))
	for _, c := range g.Cores {
		out = append(out, c.OS.Telemetry().Snapshot())
	}
	return out
}

// MergedTelemetry merges the per-core shards into one group-wide view:
// counters and gauges sum, histograms merge bucket-wise (so group
// quantiles are exact with respect to the shard histograms).
func (g *Group) MergedTelemetry() *telemetry.Snapshot {
	return telemetry.Merge(g.Name+"/merged", g.CoreTelemetry()...)
}

// MAC returns the node's (single, shared) Ethernet address.
func (g *Group) MAC() simnet.MAC { return g.Port.MAC() }

// NumCores returns the number of cores.
func (g *Group) NumCores() int { return len(g.Cores) }

// SeedARP warms every core's ARP cache with one endpoint. Only core 0
// receives broadcast ARP (RSS sends non-IP frames to queue 0), so
// benchmark steady state seeds all cores, as real deployments pre-resolve.
func (g *Group) SeedARP(ip wire.IPAddr, mac simnet.MAC) {
	for _, c := range g.Cores {
		c.OS.SeedARP(ip, mac)
	}
}

// AttachLoadProbe installs the same load probe on every core's stack, so
// each reply frame from any core carries the node's current outstanding
// count — the piggyback signal the rack ToR reads (the probe typically
// closes over a host-wide reqsched.Dispatcher).
func (g *Group) AttachLoadProbe(p catnip.LoadProbe) {
	for _, c := range g.Cores {
		c.OS.SetLoadProbe(p)
	}
}

// Spawn starts fn once per core, each on its own virtual CPU — the
// SO_REUSEPORT-style sharded server: fn typically binds the same
// (addr, port) on every core's stack and serves the connections RSS
// steers its way.
func (g *Group) Spawn(fn func(c *Core)) {
	for _, c := range g.Cores {
		c := c
		g.Host.Core(c.ID).Engine().Spawn(c.Node, func() { fn(c) })
	}
}

// CoreFor returns the core that will own a flow from remote
// (srcIP:srcPort) to this node's svcPort — the RSS mapping, exposed so
// harnesses can place load deterministically.
func (g *Group) CoreFor(srcIP wire.IPAddr, srcPort, svcPort uint16) int {
	return dpdkdev.QueueForFlow(len(g.Cores), srcIP, g.IP, srcPort, svcPort)
}

// SourcePortFor searches from base for a client source port whose flow
// (srcIP:port -> g.IP:svcPort) RSS-steers to the given core. Load
// generators bind it before connecting to pin each flow's serving core.
func (g *Group) SourcePortFor(srcIP wire.IPAddr, svcPort uint16, core int, base uint16) uint16 {
	for p := base; ; p++ {
		if g.CoreFor(srcIP, p, svcPort) == core {
			return p
		}
		if p == base-1 { // wrapped the whole port space
			panic("multicore: no source port steers to core")
		}
	}
}

// Stats snapshots every core's counters.
func (g *Group) Stats() []CoreStats {
	out := make([]CoreStats, 0, len(g.Cores))
	for _, c := range g.Cores {
		out = append(out, CoreStats{
			Core:  c.ID,
			Busy:  c.Node.Busy(),
			Sched: c.OS.SchedStats(),
			Stack: c.OS.Stats(),
			Queue: c.Queue.Stats(),
		})
	}
	return out
}
