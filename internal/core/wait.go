package core

import (
	"time"

	"demikernel/internal/sim"
)

// Waiter implements the PDPIX wait family over a token table and a Runner.
// This is the heart of Demikernel's cooperative execution: Wait does not
// sleep in a kernel — it *is* the scheduler loop, running application
// coroutines, background protocol work and the device fast path until the
// awaited token completes (paper §5.2's run-to-completion flow).
type Waiter struct {
	Table  *TokenTable
	Runner Runner
	// Tenant is the principal redeeming through this waiter. Every
	// redemption goes through TryTakeAs, so a token minted for another
	// tenant fails with ErrBadQToken without consuming the victim's op.
	// The zero value is the host tenant, which redeems only host-minted
	// tokens — tenancy is strict equality, never a wildcard.
	Tenant uint32
	// rr rotates WaitAny's scan start across calls so a busy low-index
	// token cannot starve the rest. A server holding one pop per
	// connection in a single wait set would otherwise serve only the
	// first connection whenever its next request arrives before the
	// rescan — which is every time, for a closed-loop peer whose request
	// piggybacks the ack that completes the server's reply push.
	rr int
}

// Wait blocks until qt completes and returns its event.
func (w *Waiter) Wait(qt QToken) (QEvent, error) {
	_, ev, err := w.WaitAny([]QToken{qt}, -1)
	return ev, err
}

// WaitAny blocks until one of qts completes, returning its index and event.
// A negative timeout waits forever. Unlike epoll, exactly one completion is
// consumed per call, so each worker waiting on its own tokens wakes alone
// (no thundering herd; paper §3.3).
func (w *Waiter) WaitAny(qts []QToken, timeout time.Duration) (int, QEvent, error) {
	deadline := sim.Infinity
	if timeout >= 0 {
		deadline = w.Runner.Now().Add(timeout)
	}
	for {
		for k := range qts {
			i := (w.rr + k) % len(qts)
			ev, done, err := w.Table.TryTakeAs(qts[i], w.Tenant)
			if err != nil {
				return -1, QEvent{}, err
			}
			if done {
				if len(qts) > 1 {
					// Single-token Waits (e.g. a nested wait on a
					// reply push) must not perturb the rotation.
					w.rr = i + 1 // next scan starts past this token
				}
				return i, ev, nil
			}
		}
		if w.Runner.Step() {
			continue
		}
		if w.Runner.Now() >= deadline {
			return -1, QEvent{}, ErrTimeout
		}
		if !w.Runner.Block(deadline) {
			return -1, QEvent{}, ErrStopped
		}
	}
}

// WaitAll blocks until every token completes, returning events in token
// order. On timeout, completed events consumed so far are returned with
// ErrTimeout.
func (w *Waiter) WaitAll(qts []QToken, timeout time.Duration) ([]QEvent, error) {
	deadline := sim.Infinity
	if timeout >= 0 {
		deadline = w.Runner.Now().Add(timeout)
	}
	events := make([]QEvent, len(qts))
	got := make([]bool, len(qts))
	remaining := len(qts)
	for remaining > 0 {
		progress := false
		for i, qt := range qts {
			if got[i] {
				continue
			}
			ev, done, err := w.Table.TryTakeAs(qt, w.Tenant)
			if err != nil {
				return events, err
			}
			if done {
				events[i] = ev
				got[i] = true
				remaining--
				progress = true
			}
		}
		if remaining == 0 {
			break
		}
		if progress || w.Runner.Step() {
			continue
		}
		if w.Runner.Now() >= deadline {
			return events, ErrTimeout
		}
		if !w.Runner.Block(deadline) {
			return events, ErrStopped
		}
	}
	return events, nil
}
