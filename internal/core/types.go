// Package core defines PDPIX, Demikernel's portable datapath interface
// (paper §4.2, Figure 2): queue descriptors instead of file descriptors,
// complete I/O operations via push/pop returning qtokens, wait/wait_any/
// wait_all instead of epoll, and scatter-gather arrays of DMA-capable
// buffers with explicit zero-copy ownership transfer.
//
// It also provides the shared machinery every library OS builds on: the
// qtoken table, the generic wait loop, and in-memory queues.
package core

import (
	"fmt"

	"demikernel/internal/memory"
	"demikernel/internal/wire"
)

// QDesc names an I/O queue: a socket, file, pipe or in-memory queue.
// PDPIX returns queue descriptors wherever POSIX returns file descriptors.
type QDesc int32

// InvalidQD is the zero value's invalid descriptor.
const InvalidQD QDesc = -1

// QToken names an outstanding asynchronous operation. Applications redeem
// qtokens with Wait/WaitAny/WaitAll for the operation's QEvent.
type QToken uint64

// InvalidQToken is returned alongside errors.
const InvalidQToken QToken = 0

// SockType selects the transport of a socket queue.
type SockType int

const (
	// SockStream is a connection-oriented byte/message stream (TCP on
	// Catnip, reliable messaging on Catmint).
	SockStream SockType = iota
	// SockDgram is unreliable datagram transport (UDP on Catnip).
	SockDgram
)

// Addr is a network endpoint.
type Addr struct {
	IP   wire.IPAddr
	Port uint16
}

// String formats the endpoint as ip:port.
func (a Addr) String() string { return fmt.Sprintf("%v:%d", a.IP, a.Port) }

// OpCode identifies the operation a QEvent completes.
type OpCode int

const (
	// OpInvalid marks the zero QEvent.
	OpInvalid OpCode = iota
	// OpPush completes a Push: buffer ownership returns to the app.
	OpPush
	// OpPop completes a Pop: the event carries received data.
	OpPop
	// OpAccept completes an Accept: the event carries the new queue.
	OpAccept
	// OpConnect completes a Connect.
	OpConnect
)

// String returns the opcode mnemonic.
func (o OpCode) String() string {
	switch o {
	case OpPush:
		return "push"
	case OpPop:
		return "pop"
	case OpAccept:
		return "accept"
	case OpConnect:
		return "connect"
	default:
		return "invalid"
	}
}

// QEvent is the completion of one asynchronous operation.
//
//demi:carrier completions are the PDPIX transfer record: a pop's received
// buffers ride the event to the caller, who owns them on redemption.
type QEvent struct {
	QD    QDesc
	Op    OpCode
	SGA   SGArray // OpPop: the received data, owned by the application
	NewQD QDesc   // OpAccept/OpConnect: the connected queue
	From  Addr    // OpPop on unconnected datagram sockets: the sender
	Err   error   // operation-level failure (e.g. connection reset)
}

// SGArray is a scatter-gather array of DMA-capable buffers, the unit of
// PDPIX I/O. Push transfers ownership of every segment to the library OS
// until the operation completes; Pop returns segments owned by the caller.
//
//demi:carrier the scatter-gather array IS the I/O ownership-transfer unit.
type SGArray struct {
	Segs []*memory.Buf
}

// SGA builds a scatter-gather array from buffers.
func SGA(bufs ...*memory.Buf) SGArray { return SGArray{Segs: bufs} }

// TotalLen returns the summed length of all segments.
func (s SGArray) TotalLen() int {
	n := 0
	for _, b := range s.Segs {
		n += b.Len()
	}
	return n
}

// Flatten copies all segments into one contiguous byte slice. It is a
// convenience for tests and protocol layers that need contiguous views; the
// datapath avoids it where zero-copy matters.
func (s SGArray) Flatten() []byte {
	out := make([]byte, 0, s.TotalLen())
	for _, b := range s.Segs {
		out = append(out, b.Bytes()...)
	}
	return out
}

// Free releases every segment's application reference.
func (s SGArray) Free() {
	for _, b := range s.Segs {
		b.Free()
	}
}

// TraceCtx returns the distributed-trace context riding with the array (the
// first segment's tag), 0 when untraced or empty.
//
//demi:nonalloc
func (s SGArray) TraceCtx() uint64 {
	if len(s.Segs) == 0 || s.Segs[0] == nil {
		return 0
	}
	return s.Segs[0].TraceCtx()
}

// SetTraceCtx tags every segment with the distributed-trace context, so the
// tag survives whichever segment a downstream hop inspects.
//
//demi:nonalloc
func (s SGArray) SetTraceCtx(ctx uint64) {
	for _, b := range s.Segs {
		if b != nil {
			b.SetTraceCtx(ctx)
		}
	}
}
