package core

// MemQueue is PDPIX's lightweight in-memory queue (paper §4.2: "queue()
// creates a light-weight in-memory queue, similar to a Go channel"). Pushes
// complete immediately; pops complete when data is available. Buffers pass
// by reference from producer to consumer — the consumer becomes the owner
// and frees them.
type MemQueue struct {
	qd     QDesc
	data   []SGArray
	waiter []*Op // pending pops, FIFO
	closed bool
}

// NewMemQueue creates an in-memory queue with descriptor qd.
func NewMemQueue(qd QDesc) *MemQueue { return &MemQueue{qd: qd} }

// QD returns the queue's descriptor.
func (q *MemQueue) QD() QDesc { return q.qd }

// Len returns the number of buffered scatter-gather arrays.
func (q *MemQueue) Len() int { return len(q.data) }

// Push enqueues sga and completes op immediately. Ownership of the segments
// passes through the queue to the eventual popper.
func (q *MemQueue) Push(op *Op, sga SGArray) {
	if q.closed {
		op.Fail(q.qd, OpPush, ErrQueueClosed)
		return
	}
	if len(q.waiter) > 0 {
		pop := q.waiter[0]
		q.waiter = q.waiter[1:]
		pop.Complete(QEvent{QD: q.qd, Op: OpPop, SGA: sga})
	} else {
		q.data = append(q.data, sga)
	}
	op.Complete(QEvent{QD: q.qd, Op: OpPush})
}

// Pop completes op with buffered data, or parks it until a push arrives.
func (q *MemQueue) Pop(op *Op) {
	if len(q.data) > 0 {
		sga := q.data[0]
		q.data = q.data[1:]
		op.Complete(QEvent{QD: q.qd, Op: OpPop, SGA: sga})
		return
	}
	if q.closed {
		op.Fail(q.qd, OpPop, ErrQueueClosed)
		return
	}
	q.waiter = append(q.waiter, op)
}

// Close fails all pending pops and rejects future operations. Buffered data
// is freed.
func (q *MemQueue) Close() {
	q.closed = true
	for _, op := range q.waiter {
		op.Fail(q.qd, OpPop, ErrQueueClosed)
	}
	q.waiter = nil
	for _, sga := range q.data {
		sga.Free()
	}
	q.data = nil
}

// QDescTable allocates queue descriptors and maps them to libOS-specific
// queue state.
type QDescTable struct {
	next QDesc
	qs   map[QDesc]any
}

// NewQDescTable returns an empty descriptor table.
func NewQDescTable() *QDescTable {
	return &QDescTable{qs: make(map[QDesc]any)}
}

// Insert allocates a descriptor for state q.
func (t *QDescTable) Insert(q any) QDesc {
	t.next++
	t.qs[t.next] = q
	return t.next
}

// Lookup returns the state for qd.
func (t *QDescTable) Lookup(qd QDesc) (any, bool) {
	q, ok := t.qs[qd]
	return q, ok
}

// Restore sets the state stored for an already-allocated descriptor (used
// when queue state needs its descriptor value at construction time).
func (t *QDescTable) Restore(qd QDesc, q any) { t.qs[qd] = q }

// Remove deletes qd, returning its state.
func (t *QDescTable) Remove(qd QDesc) (any, bool) {
	q, ok := t.qs[qd]
	if ok {
		delete(t.qs, qd)
	}
	return q, ok
}

// Len returns the number of live descriptors.
func (t *QDescTable) Len() int { return len(t.qs) }
