package core

// MemQueue is PDPIX's lightweight in-memory queue (paper §4.2: "queue()
// creates a light-weight in-memory queue, similar to a Go channel"). Pushes
// complete while the queue is below its high-water capacity; pops complete
// when data is available. Buffers pass by reference from producer to
// consumer — the consumer becomes the owner and frees them. A push that the
// queue can never deliver (failed by Close) is freed by the queue, so
// producers never free after Push.
type MemQueue struct {
	qd       QDesc
	capacity int // max buffered SGArrays; 0 = unbounded
	data     []SGArray
	waiter   []*Op         // pending pops, FIFO
	pushers  []pendingPush // pushes parked on backpressure, FIFO
	closed   bool
}

// pendingPush is one push op parked until the queue drains below capacity.
type pendingPush struct {
	op  *Op
	sga SGArray
}

// NewMemQueue creates an unbounded in-memory queue with descriptor qd.
func NewMemQueue(qd QDesc) *MemQueue { return &MemQueue{qd: qd} }

// NewBoundedMemQueue creates an in-memory queue that buffers at most
// capacity scatter-gather arrays; pushes beyond the high-water mark park
// until a pop drains the queue (backpressure). capacity <= 0 is unbounded.
func NewBoundedMemQueue(qd QDesc, capacity int) *MemQueue {
	return &MemQueue{qd: qd, capacity: capacity}
}

// QD returns the queue's descriptor.
func (q *MemQueue) QD() QDesc { return q.qd }

// Len returns the number of buffered scatter-gather arrays.
func (q *MemQueue) Len() int { return len(q.data) }

// Depth is the queue's instantaneous occupancy: buffered arrays plus pushes
// parked on backpressure (data admitted but not yet below high-water).
func (q *MemQueue) Depth() int { return len(q.data) + len(q.pushers) }

// Capacity returns the high-water mark (0 = unbounded).
func (q *MemQueue) Capacity() int { return q.capacity }

// Closed reports whether the queue has been closed.
func (q *MemQueue) Closed() bool { return q.closed }

// full reports whether the queue is at or above its high-water mark.
func (q *MemQueue) full() bool {
	return q.capacity > 0 && len(q.data) >= q.capacity
}

// Push enqueues sga. The op completes immediately when the queue is below
// its high-water mark; at capacity it parks until a pop makes room.
// Ownership of the segments passes through the queue to the eventual
// popper; if the queue can never deliver them (closed), it frees them.
func (q *MemQueue) Push(op *Op, sga SGArray) {
	if q.closed {
		sga.Free()
		op.Fail(q.qd, OpPush, ErrQueueClosed)
		return
	}
	if len(q.waiter) > 0 {
		pop := q.waiter[0]
		q.waiter = q.waiter[1:]
		pop.Complete(QEvent{QD: q.qd, Op: OpPop, SGA: sga})
		op.Complete(QEvent{QD: q.qd, Op: OpPush})
		return
	}
	if q.full() {
		q.pushers = append(q.pushers, pendingPush{op: op, sga: sga})
		return
	}
	q.data = append(q.data, sga)
	op.Complete(QEvent{QD: q.qd, Op: OpPush})
}

// Pop completes op with buffered data, or parks it until a push arrives.
// After Close, pops drain the remaining buffered data before reporting
// ErrQueueClosed, so no accepted push is stranded.
func (q *MemQueue) Pop(op *Op) {
	if len(q.data) > 0 {
		sga := q.data[0]
		q.data = q.data[1:]
		op.Complete(QEvent{QD: q.qd, Op: OpPop, SGA: sga})
		q.admit()
		return
	}
	if q.closed {
		op.Fail(q.qd, OpPop, ErrQueueClosed)
		return
	}
	q.waiter = append(q.waiter, op)
}

// admit moves parked pushes into the freed buffer space, completing their
// ops in FIFO order.
func (q *MemQueue) admit() {
	for len(q.pushers) > 0 && !q.full() {
		p := q.pushers[0]
		q.pushers = q.pushers[1:]
		q.data = append(q.data, p.sga)
		p.op.Complete(QEvent{QD: q.qd, Op: OpPush})
	}
}

// Close half-closes the queue: parked pops and parked pushes fail with
// ErrQueueClosed (a parked push's buffers are freed — the producer handed
// them over and never frees after Push), future pushes are rejected, and
// buffered data stays available for draining pops. Callers tearing the
// queue down for good use Destroy, which also frees the undrained data.
func (q *MemQueue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, op := range q.waiter {
		op.Fail(q.qd, OpPop, ErrQueueClosed)
	}
	q.waiter = nil
	for _, p := range q.pushers {
		p.sga.Free()
		p.op.Fail(q.qd, OpPush, ErrQueueClosed)
	}
	q.pushers = nil
}

// Destroy closes the queue and frees any still-buffered data. Library OSes
// call it when the descriptor is released: with the descriptor gone no pop
// can drain the queue, so freeing is the only way to keep the never-leak
// contract.
func (q *MemQueue) Destroy() {
	q.Close()
	for _, sga := range q.data {
		sga.Free()
	}
	q.data = nil
}

// QDescTable allocates queue descriptors and maps them to libOS-specific
// queue state.
type QDescTable struct {
	next QDesc
	qs   map[QDesc]any
}

// NewQDescTable returns an empty descriptor table.
func NewQDescTable() *QDescTable {
	return &QDescTable{qs: make(map[QDesc]any)}
}

// Insert allocates a descriptor for state q.
func (t *QDescTable) Insert(q any) QDesc {
	t.next++
	t.qs[t.next] = q
	return t.next
}

// Lookup returns the state for qd.
func (t *QDescTable) Lookup(qd QDesc) (any, bool) {
	q, ok := t.qs[qd]
	return q, ok
}

// Restore sets the state stored for an already-allocated descriptor (used
// when queue state needs its descriptor value at construction time).
func (t *QDescTable) Restore(qd QDesc, q any) { t.qs[qd] = q }

// Remove deletes qd, returning its state.
func (t *QDescTable) Remove(qd QDesc) (any, bool) {
	q, ok := t.qs[qd]
	if ok {
		delete(t.qs, qd)
	}
	return q, ok
}

// Len returns the number of live descriptors.
func (t *QDescTable) Len() int { return len(t.qs) }
