package core

import (
	"errors"
	"testing"
	"time"

	"demikernel/internal/memory"
	"demikernel/internal/sim"
)

func TestTokenLifecycle(t *testing.T) {
	tb := NewTokenTable()
	op := tb.New()
	if op.Done() {
		t.Fatal("fresh op already done")
	}
	if _, done, err := tb.TryTake(op.Token()); done || err != nil {
		t.Fatalf("TryTake on pending: done=%v err=%v", done, err)
	}
	op.Complete(QEvent{QD: 3, Op: OpPop})
	ev, done, err := tb.TryTake(op.Token())
	if err != nil || !done {
		t.Fatalf("TryTake after complete: done=%v err=%v", done, err)
	}
	if ev.QD != 3 || ev.Op != OpPop {
		t.Errorf("event = %+v", ev)
	}
	// Redeeming twice is an error.
	if _, _, err := tb.TryTake(op.Token()); !errors.Is(err, ErrBadQToken) {
		t.Errorf("second take err = %v", err)
	}
}

func TestDoubleCompletePanics(t *testing.T) {
	tb := NewTokenTable()
	op := tb.New()
	op.Complete(QEvent{})
	defer func() {
		if recover() == nil {
			t.Error("double complete did not panic")
		}
	}()
	op.Complete(QEvent{})
}

func TestCancelFailsPendingOp(t *testing.T) {
	tb := NewTokenTable()
	op := tb.New()
	tb.Cancel(op.Token(), 7, OpPop)
	ev, done, _ := tb.TryTake(op.Token())
	if !done || !errors.Is(ev.Err, ErrQueueClosed) {
		t.Errorf("cancelled op: done=%v ev=%+v", done, ev)
	}
}

func TestSGArrayHelpers(t *testing.T) {
	h := memory.NewHeap(nil)
	a := memory.CopyFrom(h, []byte("abc"))
	b := memory.CopyFrom(h, []byte("defg"))
	sga := SGA(a, b)
	if sga.TotalLen() != 7 {
		t.Errorf("TotalLen = %d", sga.TotalLen())
	}
	if string(sga.Flatten()) != "abcdefg" {
		t.Errorf("Flatten = %q", sga.Flatten())
	}
	sga.Free()
	if h.LiveObjects() != 0 {
		t.Errorf("live = %d after Free", h.LiveObjects())
	}
}

func TestMemQueuePushThenPop(t *testing.T) {
	h := memory.NewHeap(nil)
	tb := NewTokenTable()
	q := NewMemQueue(1)
	push := tb.New()
	q.Push(push, SGA(memory.CopyFrom(h, []byte("x"))))
	if !push.Done() {
		t.Fatal("push did not complete immediately")
	}
	pop := tb.New()
	q.Pop(pop)
	if !pop.Done() {
		t.Fatal("pop with buffered data did not complete")
	}
	ev, _, _ := tb.TryTake(pop.Token())
	if string(ev.SGA.Flatten()) != "x" {
		t.Errorf("popped %q", ev.SGA.Flatten())
	}
}

func TestMemQueuePopThenPush(t *testing.T) {
	h := memory.NewHeap(nil)
	tb := NewTokenTable()
	q := NewMemQueue(1)
	pop := tb.New()
	q.Pop(pop)
	if pop.Done() {
		t.Fatal("pop completed with no data")
	}
	q.Push(tb.New(), SGA(memory.CopyFrom(h, []byte("y"))))
	if !pop.Done() {
		t.Fatal("pending pop not completed by push")
	}
}

func TestMemQueueFIFOAcrossWaiters(t *testing.T) {
	h := memory.NewHeap(nil)
	tb := NewTokenTable()
	q := NewMemQueue(1)
	pop1, pop2 := tb.New(), tb.New()
	q.Pop(pop1)
	q.Pop(pop2)
	q.Push(tb.New(), SGA(memory.CopyFrom(h, []byte("first"))))
	q.Push(tb.New(), SGA(memory.CopyFrom(h, []byte("second"))))
	ev1, _, _ := tb.TryTake(pop1.Token())
	ev2, _, _ := tb.TryTake(pop2.Token())
	if string(ev1.SGA.Flatten()) != "first" || string(ev2.SGA.Flatten()) != "second" {
		t.Error("pops not served FIFO")
	}
}

func TestMemQueueCloseDrains(t *testing.T) {
	h := memory.NewHeap(nil)
	tb := NewTokenTable()
	q := NewMemQueue(1)
	pending := tb.New()
	q.Pop(pending)
	q.Push(tb.New(), SGA(memory.CopyFrom(h, []byte("z")))) // consumed by pending pop
	q.Push(tb.New(), SGA(memory.CopyFrom(h, []byte("buffered"))))
	q.Close()
	// Close must not strand the buffered sga: a draining pop still gets it.
	pop := tb.New()
	q.Pop(pop)
	ev, _, _ := tb.TryTake(pop.Token())
	if ev.Err != nil {
		t.Fatalf("draining pop after close failed: %v", ev.Err)
	}
	if string(ev.SGA.Flatten()) != "buffered" {
		t.Errorf("draining pop got %q", ev.SGA.Flatten())
	}
	ev.SGA.Free()
	// Only once the queue is dry do pops report the close.
	pop = tb.New()
	q.Pop(pop)
	ev, _, _ = tb.TryTake(pop.Token())
	if !errors.Is(ev.Err, ErrQueueClosed) {
		t.Errorf("pop after drain: %+v", ev)
	}
	push := tb.New()
	q.Push(push, SGA(memory.CopyFrom(h, []byte("w"))))
	ev, _, _ = tb.TryTake(push.Token())
	if !errors.Is(ev.Err, ErrQueueClosed) {
		t.Errorf("push after close: %+v", ev)
	}
	// The rejected push's buffer was freed by the queue; the popped "z"
	// stays with its consumer.
	if h.LiveObjects() != 1 {
		t.Errorf("live = %d, want 1 (the popped sga)", h.LiveObjects())
	}
}

func TestMemQueueDestroyFreesBufferedData(t *testing.T) {
	h := memory.NewHeap(nil)
	tb := NewTokenTable()
	q := NewMemQueue(1)
	q.Push(tb.New(), SGA(memory.CopyFrom(h, []byte("a"))))
	q.Push(tb.New(), SGA(memory.CopyFrom(h, []byte("b"))))
	q.Destroy()
	if h.LiveObjects() != 0 {
		t.Errorf("live = %d after Destroy, want 0", h.LiveObjects())
	}
	if q.Depth() != 0 {
		t.Errorf("depth = %d after Destroy", q.Depth())
	}
}

func TestMemQueueBackpressure(t *testing.T) {
	h := memory.NewHeap(nil)
	tb := NewTokenTable()
	q := NewBoundedMemQueue(1, 2)
	if q.Capacity() != 2 {
		t.Fatalf("capacity = %d", q.Capacity())
	}
	p1, p2, p3 := tb.New(), tb.New(), tb.New()
	q.Push(p1, SGA(memory.CopyFrom(h, []byte("1"))))
	q.Push(p2, SGA(memory.CopyFrom(h, []byte("2"))))
	q.Push(p3, SGA(memory.CopyFrom(h, []byte("3"))))
	if !p1.Done() || !p2.Done() {
		t.Fatal("pushes below high-water did not complete")
	}
	if p3.Done() {
		t.Fatal("push at capacity completed without backpressure")
	}
	if q.Depth() != 3 || q.Len() != 2 {
		t.Fatalf("depth = %d len = %d, want 3/2", q.Depth(), q.Len())
	}
	// A pop frees one slot; the parked push is admitted FIFO.
	pop := tb.New()
	q.Pop(pop)
	ev, _, _ := tb.TryTake(pop.Token())
	if string(ev.SGA.Flatten()) != "1" {
		t.Errorf("pop got %q", ev.SGA.Flatten())
	}
	ev.SGA.Free()
	if !p3.Done() {
		t.Fatal("parked push not admitted after pop")
	}
	if q.Depth() != 2 {
		t.Errorf("depth = %d after admit", q.Depth())
	}
	// Drain and verify FIFO order survived the backpressure stall.
	for _, want := range []string{"2", "3"} {
		pop := tb.New()
		q.Pop(pop)
		ev, _, _ := tb.TryTake(pop.Token())
		if string(ev.SGA.Flatten()) != want {
			t.Errorf("drained %q, want %q", ev.SGA.Flatten(), want)
		}
		ev.SGA.Free()
	}
	if h.LiveObjects() != 0 {
		t.Errorf("live = %d after drain", h.LiveObjects())
	}
}

func TestMemQueueCloseFailsParkedPush(t *testing.T) {
	h := memory.NewHeap(nil)
	tb := NewTokenTable()
	q := NewBoundedMemQueue(1, 1)
	q.Push(tb.New(), SGA(memory.CopyFrom(h, []byte("kept"))))
	parked := tb.New()
	q.Push(parked, SGA(memory.CopyFrom(h, []byte("parked"))))
	q.Close()
	ev, _, _ := tb.TryTake(parked.Token())
	if !errors.Is(ev.Err, ErrQueueClosed) {
		t.Errorf("parked push after close: %+v", ev)
	}
	// The parked push's buffer was freed; the buffered one drains.
	if h.LiveObjects() != 1 {
		t.Errorf("live = %d, want 1", h.LiveObjects())
	}
	pop := tb.New()
	q.Pop(pop)
	ev, _, _ = tb.TryTake(pop.Token())
	if string(ev.SGA.Flatten()) != "kept" {
		t.Errorf("drain after close got %q", ev.SGA.Flatten())
	}
	ev.SGA.Free()
	if h.LiveObjects() != 0 {
		t.Errorf("live = %d after drain", h.LiveObjects())
	}
}

// stubRunner drives a Waiter in tests: Step completes queued ops; Block
// advances a fake clock.
type stubRunner struct {
	now     sim.Time
	work    []func()
	stopped bool
}

func (r *stubRunner) Step() bool {
	if len(r.work) == 0 {
		return false
	}
	f := r.work[0]
	r.work = r.work[1:]
	f()
	return true
}

func (r *stubRunner) Block(deadline sim.Time) bool {
	if r.stopped {
		return false
	}
	if deadline == sim.Infinity {
		// Nothing will ever happen: simulate a stuck runtime by stopping.
		r.stopped = true
		return false
	}
	r.now = deadline
	return true
}

func (r *stubRunner) Now() sim.Time { return r.now }

func TestWaiterWaitCompletesViaStep(t *testing.T) {
	tb := NewTokenTable()
	op := tb.New()
	r := &stubRunner{work: []func(){
		func() {}, // a no-op quantum first
		func() { op.Complete(QEvent{QD: 9, Op: OpPush}) },
	}}
	w := &Waiter{Table: tb, Runner: r}
	ev, err := w.Wait(op.Token())
	if err != nil {
		t.Fatal(err)
	}
	if ev.QD != 9 {
		t.Errorf("event = %+v", ev)
	}
}

func TestWaiterTimeout(t *testing.T) {
	tb := NewTokenTable()
	op := tb.New()
	r := &stubRunner{}
	w := &Waiter{Table: tb, Runner: r}
	_, _, err := w.WaitAny([]QToken{op.Token()}, 5*time.Microsecond)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestWaiterStopped(t *testing.T) {
	tb := NewTokenTable()
	op := tb.New()
	r := &stubRunner{}
	w := &Waiter{Table: tb, Runner: r}
	if _, err := w.Wait(op.Token()); !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v, want ErrStopped", err)
	}
}

func TestWaitAnyReturnsFirstCompleted(t *testing.T) {
	tb := NewTokenTable()
	a, b := tb.New(), tb.New()
	r := &stubRunner{work: []func(){
		func() { b.Complete(QEvent{QD: 2, Op: OpPop}) },
	}}
	w := &Waiter{Table: tb, Runner: r}
	i, ev, err := w.WaitAny([]QToken{a.Token(), b.Token()}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if i != 1 || ev.QD != 2 {
		t.Errorf("i=%d ev=%+v", i, ev)
	}
	// a is still outstanding and redeemable later.
	if _, done, err := tb.TryTake(a.Token()); done || err != nil {
		t.Error("untouched token corrupted by WaitAny")
	}
}

func TestWaitAllCollectsInOrder(t *testing.T) {
	tb := NewTokenTable()
	a, b, c := tb.New(), tb.New(), tb.New()
	r := &stubRunner{work: []func(){
		func() { c.Complete(QEvent{QD: 3}) },
		func() { a.Complete(QEvent{QD: 1}) },
		func() { b.Complete(QEvent{QD: 2}) },
	}}
	w := &Waiter{Table: tb, Runner: r}
	evs, err := w.WaitAll([]QToken{a.Token(), b.Token(), c.Token()}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []QDesc{1, 2, 3} {
		if evs[i].QD != want {
			t.Errorf("evs[%d].QD = %d, want %d", i, evs[i].QD, want)
		}
	}
}

func TestQDescTable(t *testing.T) {
	tbl := NewQDescTable()
	qd := tbl.Insert("sock")
	if got, ok := tbl.Lookup(qd); !ok || got != "sock" {
		t.Fatal("lookup failed")
	}
	if _, ok := tbl.Lookup(qd + 100); ok {
		t.Error("phantom descriptor")
	}
	if got, ok := tbl.Remove(qd); !ok || got != "sock" {
		t.Error("remove failed")
	}
	if _, ok := tbl.Lookup(qd); ok {
		t.Error("descriptor survived removal")
	}
}
