package core

import "errors"

// Errors shared by all library OSes.
var (
	// ErrBadQDesc means the queue descriptor is unknown or closed.
	ErrBadQDesc = errors.New("pdpix: bad queue descriptor")
	// ErrBadQToken means the qtoken is unknown or already redeemed.
	ErrBadQToken = errors.New("pdpix: bad qtoken")
	// ErrTimeout means a wait's timeout elapsed first.
	ErrTimeout = errors.New("pdpix: wait timed out")
	// ErrStopped means the runtime is shutting down.
	ErrStopped = errors.New("pdpix: runtime stopped")
	// ErrNotSupported means the libOS does not implement the operation
	// (e.g. Accept on a datagram socket).
	ErrNotSupported = errors.New("pdpix: operation not supported")
	// ErrQueueClosed means the peer closed the connection or the queue
	// was closed locally with operations outstanding.
	ErrQueueClosed = errors.New("pdpix: queue closed")
	// ErrInUse means the address or port is already bound.
	ErrInUse = errors.New("pdpix: address in use")
	// ErrConnRefused means no listener exists at the remote address.
	ErrConnRefused = errors.New("pdpix: connection refused")
	// ErrNotBound means the socket needs a bind or connect first.
	ErrNotBound = errors.New("pdpix: socket not bound")
	// ErrEmptySGA means a push carried no data.
	ErrEmptySGA = errors.New("pdpix: empty scatter-gather array")
	// ErrAddrNotAvail means no local address (ephemeral port) could be
	// assigned — the POSIX EADDRNOTAVAIL analogue.
	ErrAddrNotAvail = errors.New("pdpix: address not available")
	// ErrHostUnreachable means link-layer resolution of the remote host
	// failed (ARP gave up) — the POSIX EHOSTUNREACH analogue.
	ErrHostUnreachable = errors.New("pdpix: host unreachable")
	// ErrTenantQuota means a per-tenant resource cap (flow-table entries,
	// in-flight qtokens, push rate) rejected the operation. The rejection
	// is complete-or-error at the call site: nothing is left outstanding
	// and buffer ownership stays with the caller.
	ErrTenantQuota = errors.New("pdpix: tenant quota exceeded")
)
