package core

import (
	"demikernel/internal/dtrace"
	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
)

// Op is one outstanding operation's state in the token table. Library OSes
// create an Op when a libcall is issued and complete it from their I/O
// stacks; the wait machinery redeems it.
type Op struct {
	qt          QToken
	done        bool
	ev          QEvent
	tbl         *TokenTable // owning table, for lifecycle timestamps
	issuedAt    sim.Time
	completedAt sim.Time
	trace       uint64 // distributed-trace context stamped by the libOS at issue
	tenant      uint32 // issuing tenant principal (0 = the host/infra tenant)
}

// Tenant returns the principal the operation was minted for.
func (o *Op) Tenant() uint32 { return o.tenant }

// Trace stamps the operation with a distributed-trace context. LibOSes call
// it on push when the SGArray carries a sampled request's tag; pops pick the
// context up from the delivered SGA at redeem instead.
//
//demi:nonalloc
func (o *Op) Trace(ctx uint64) { o.trace = ctx }

// Token returns the operation's qtoken.
func (o *Op) Token() QToken { return o.qt }

// Done reports whether the operation completed.
func (o *Op) Done() bool { return o.done }

// Complete finishes the operation with ev. Completing twice panics: an
// I/O stack delivering two results for one token is a bug.
func (o *Op) Complete(ev QEvent) {
	if o.done {
		panic("pdpix: operation completed twice")
	}
	o.done = true
	o.ev = ev
	if t := o.tbl; t != nil && t.clock != nil {
		o.completedAt = t.clock.Now()
		if t.lat != nil {
			t.lat.Observe(int64(o.completedAt - o.issuedAt))
		}
	}
}

// Fail finishes the operation with an error event.
func (o *Op) Fail(qd QDesc, opc OpCode, err error) {
	o.Complete(QEvent{QD: qd, Op: opc, Err: err})
}

// TokenTable issues qtokens and tracks outstanding operations. Demikernel
// datapaths are single-threaded, so the table needs no locking.
//
// A table can be instrumented (Instrument, SetLatencyHist, SetRecorder) to
// stamp every operation's lifecycle against a virtual clock: issue at New,
// complete inside Complete, redeem at TryTake. Uninstrumented tables pay
// one nil check per stage.
type TokenTable struct {
	next   QToken
	ops    map[QToken]*Op
	clock  sim.Clock
	coreID int32
	lat    *telemetry.Histogram
	rec    *telemetry.FlightRecorder
	dt     *dtrace.Hop
	// issuer is the tenant principal stamped on ops minted while it is set
	// (EnterTenant/ExitTenant bracket each tenant's libcalls). forgeries
	// counts cross-tenant redemption attempts rejected by TryTakeAs; the
	// optional hook lets harnesses attribute them per tenant.
	issuer    uint32
	forgeries uint64
	onForgery func(issuer, redeemer uint32)
}

// NewTokenTable returns an empty table.
func NewTokenTable() *TokenTable {
	return &TokenTable{ops: make(map[QToken]*Op)}
}

// Instrument attaches a virtual clock (and the issuing core's id, for span
// labels) so operations are lifecycle-stamped. Calling it again updates the
// labels — multicore groups re-instrument each core's table with its index.
func (t *TokenTable) Instrument(clock sim.Clock, core int) {
	t.clock = clock
	t.coreID = int32(core)
}

// SetLatencyHist records every operation's issue→complete latency into h.
func (t *TokenTable) SetLatencyHist(h *telemetry.Histogram) { t.lat = h }

// SetRecorder emits a flight-recorder span for every redeemed operation.
func (t *TokenTable) SetRecorder(r *telemetry.FlightRecorder) { t.rec = r }

// SetDTrace emits a distributed-trace op span for every redeemed operation
// that carries a trace context (stamped via Op.Trace, or riding the popped
// SGArray). A nil hop keeps the table untraced.
func (t *TokenTable) SetDTrace(h *dtrace.Hop) { t.dt = h }

// SetIssuer sets the tenant principal stamped on subsequently minted ops.
// Library OSes bracket each tenant's libcalls with SetIssuer(id) /
// SetIssuer(0); ops minted outside any bracket belong to the host tenant 0.
func (t *TokenTable) SetIssuer(tenant uint32) { t.issuer = tenant }

// Issuer returns the currently stamped tenant principal.
func (t *TokenTable) Issuer() uint32 { return t.issuer }

// SetForgeryHook installs a callback invoked on every cross-tenant
// redemption attempt rejected by TryTakeAs, with the op's issuing tenant
// and the principal that tried to redeem it.
func (t *TokenTable) SetForgeryHook(fn func(issuer, redeemer uint32)) { t.onForgery = fn }

// Forgeries returns the number of cross-tenant redemption attempts the
// table has rejected.
func (t *TokenTable) Forgeries() uint64 { return t.forgeries }

// New allocates a fresh operation and its qtoken.
func (t *TokenTable) New() *Op {
	t.next++
	op := &Op{qt: t.next, tbl: t, tenant: t.issuer}
	if t.clock != nil {
		op.issuedAt = t.clock.Now()
	}
	t.ops[op.qt] = op
	return op
}

// Lookup returns the operation for qt, if outstanding.
func (t *TokenTable) Lookup(qt QToken) (*Op, bool) {
	op, ok := t.ops[qt]
	return op, ok
}

// TryTake redeems qt if its operation has completed, removing it from the
// table. ok reports completion; a false ok with a nil error means the
// operation is still outstanding. TryTake does not check the principal —
// it is the trusted-driver path (demi.Combined, bench drivers); tenant
// code goes through TryTakeAs.
func (t *TokenTable) TryTake(qt QToken) (QEvent, bool, error) {
	op, exists := t.ops[qt]
	if !exists {
		return QEvent{}, false, ErrBadQToken
	}
	return t.take(qt, op)
}

// TryTakeAs redeems qt on behalf of tenant principal tid. A token minted
// for a different tenant is rejected with ErrBadQToken *without consuming
// the operation*: qtokens are capabilities, and a forged or guessed token
// must never let one tenant steal or cancel another's completion. The
// rejection is indistinguishable from an unknown token, so probing leaks
// nothing about the victim's outstanding ops.
func (t *TokenTable) TryTakeAs(qt QToken, tid uint32) (QEvent, bool, error) {
	op, exists := t.ops[qt]
	if !exists {
		return QEvent{}, false, ErrBadQToken
	}
	if op.tenant != tid {
		t.forgeries++
		if t.onForgery != nil {
			t.onForgery(op.tenant, tid)
		}
		return QEvent{}, false, ErrBadQToken
	}
	return t.take(qt, op)
}

// take finishes a redemption whose principal check already passed.
func (t *TokenTable) take(qt QToken, op *Op) (QEvent, bool, error) {
	if !op.done {
		return QEvent{}, false, nil
	}
	delete(t.ops, qt)
	if t.rec != nil && t.clock != nil {
		t.rec.Record(telemetry.Span{
			Token:     uint64(qt),
			Core:      t.coreID,
			Op:        uint8(op.ev.Op),
			QD:        int32(op.ev.QD),
			Issued:    int64(op.issuedAt),
			Completed: int64(op.completedAt),
			Redeemed:  int64(t.clock.Now()),
		})
	}
	if t.dt != nil && t.clock != nil {
		ctx := op.trace
		if ctx == 0 {
			ctx = op.ev.SGA.TraceCtx() // pops learn the context from the delivered data
		}
		t.dt.OpSpan(ctx, uint64(qt), uint8(op.ev.Op), int32(op.ev.QD),
			int64(op.issuedAt), int64(op.completedAt), int64(t.clock.Now()))
	}
	return op.ev, true, nil
}

// Cancel drops an outstanding operation without completing it (used when a
// queue closes with operations pending). The token is failed so a waiter
// redeems an error instead of hanging.
func (t *TokenTable) Cancel(qt QToken, qd QDesc, opc OpCode) {
	if op, ok := t.ops[qt]; ok && !op.done {
		op.Fail(qd, opc, ErrQueueClosed)
	}
}

// Outstanding returns the number of incomplete operations.
func (t *TokenTable) Outstanding() int {
	n := 0
	for _, op := range t.ops {
		if !op.done {
			n++
		}
	}
	return n
}

// OutstandingFor returns the number of incomplete operations minted for
// one tenant principal.
func (t *TokenTable) OutstandingFor(tid uint32) int {
	n := 0
	for _, op := range t.ops {
		if !op.done && op.tenant == tid {
			n++
		}
	}
	return n
}
