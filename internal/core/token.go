package core

// Op is one outstanding operation's state in the token table. Library OSes
// create an Op when a libcall is issued and complete it from their I/O
// stacks; the wait machinery redeems it.
type Op struct {
	qt   QToken
	done bool
	ev   QEvent
}

// Token returns the operation's qtoken.
func (o *Op) Token() QToken { return o.qt }

// Done reports whether the operation completed.
func (o *Op) Done() bool { return o.done }

// Complete finishes the operation with ev. Completing twice panics: an
// I/O stack delivering two results for one token is a bug.
func (o *Op) Complete(ev QEvent) {
	if o.done {
		panic("pdpix: operation completed twice")
	}
	o.done = true
	o.ev = ev
}

// Fail finishes the operation with an error event.
func (o *Op) Fail(qd QDesc, opc OpCode, err error) {
	o.Complete(QEvent{QD: qd, Op: opc, Err: err})
}

// TokenTable issues qtokens and tracks outstanding operations. Demikernel
// datapaths are single-threaded, so the table needs no locking.
type TokenTable struct {
	next QToken
	ops  map[QToken]*Op
}

// NewTokenTable returns an empty table.
func NewTokenTable() *TokenTable {
	return &TokenTable{ops: make(map[QToken]*Op)}
}

// New allocates a fresh operation and its qtoken.
func (t *TokenTable) New() *Op {
	t.next++
	op := &Op{qt: t.next}
	t.ops[op.qt] = op
	return op
}

// Lookup returns the operation for qt, if outstanding.
func (t *TokenTable) Lookup(qt QToken) (*Op, bool) {
	op, ok := t.ops[qt]
	return op, ok
}

// TryTake redeems qt if its operation has completed, removing it from the
// table. ok reports completion; a false ok with a nil error means the
// operation is still outstanding.
func (t *TokenTable) TryTake(qt QToken) (QEvent, bool, error) {
	op, exists := t.ops[qt]
	if !exists {
		return QEvent{}, false, ErrBadQToken
	}
	if !op.done {
		return QEvent{}, false, nil
	}
	delete(t.ops, qt)
	return op.ev, true, nil
}

// Cancel drops an outstanding operation without completing it (used when a
// queue closes with operations pending). The token is failed so a waiter
// redeems an error instead of hanging.
func (t *TokenTable) Cancel(qt QToken, qd QDesc, opc OpCode) {
	if op, ok := t.ops[qt]; ok && !op.done {
		op.Fail(qd, opc, ErrQueueClosed)
	}
}

// Outstanding returns the number of incomplete operations.
func (t *TokenTable) Outstanding() int {
	n := 0
	for _, op := range t.ops {
		if !op.done {
			n++
		}
	}
	return n
}
