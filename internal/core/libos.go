package core

import (
	"time"

	"demikernel/internal/memory"
	"demikernel/internal/sim"
)

// LibOS is the PDPIX interface every Demikernel library OS implements
// (paper Figure 2). All calls are library calls — no kernel crossing on the
// datapath — and all I/O calls are asynchronous, returning qtokens redeemed
// through the Wait family.
type LibOS interface {
	// Socket creates a network socket queue.
	Socket(t SockType) (QDesc, error)
	// Bind assigns the socket's local address.
	Bind(qd QDesc, addr Addr) error
	// Listen makes a stream socket accept connections.
	Listen(qd QDesc, backlog int) error
	// Accept asks for the next inbound connection; the completion event's
	// NewQD is the connected queue.
	Accept(qd QDesc) (QToken, error)
	// Connect initiates a connection; completion means established.
	Connect(qd QDesc, addr Addr) (QToken, error)
	// Close releases the queue. Outstanding operations fail with
	// ErrQueueClosed.
	Close(qd QDesc) error

	// Queue creates a lightweight in-memory queue (like a Go channel).
	Queue() (QDesc, error)

	// Open opens (or creates) a storage log queue by name. Push appends;
	// Pop reads from the queue's cursor.
	Open(name string) (QDesc, error)

	// Push submits a complete outbound I/O operation. Ownership of every
	// segment transfers to the libOS until the token completes.
	Push(qd QDesc, sga SGArray) (QToken, error)
	// Pop asks for the next inbound data on the queue. The completion
	// event's SGA is owned by the application.
	Pop(qd QDesc) (QToken, error)

	// Wait blocks until qt completes.
	Wait(qt QToken) (QEvent, error)
	// WaitAny blocks until any of qts completes, returning its index. A
	// negative timeout means wait forever.
	WaitAny(qts []QToken, timeout time.Duration) (int, QEvent, error)
	// WaitAll blocks until every token completes, returning events in
	// token order.
	WaitAll(qts []QToken, timeout time.Duration) ([]QEvent, error)

	// Heap returns the DMA-capable application heap backing this libOS
	// (PDPIX malloc/free are Heap.Alloc and Buf.Free).
	Heap() *memory.Heap
}

// Runner is the engine-facing side of a library OS: the generic wait loop
// drives it. Step runs one scheduler quantum; Block waits for an external
// event when nothing is runnable.
type Runner interface {
	// Step performs one unit of datapath work (runs one coroutine). It
	// reports whether anything ran.
	Step() bool
	// Block waits until new work may exist or the deadline passes,
	// whichever is first. It reports false if the runtime is stopping.
	Block(deadline sim.Time) bool
	// Now returns the libOS clock, used for wait timeouts.
	Now() sim.Time
}
