package ycsb

import (
	"testing"

	"demikernel/internal/sim"
)

func TestUniformCoversRange(t *testing.T) {
	u := NewUniform(10, sim.NewRand(1))
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		k := u.Next()
		if k < 0 || k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Errorf("uniform covered %d of 10 keys", len(seen))
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	const n = 1000
	z := NewZipf(n, 0.99, sim.NewRand(2))
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		k := z.Next()
		if k < 0 || k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The hottest key must dominate: zipf(0.99) gives key 0 ~ 1/zetan of
	// mass, far more than uniform's 0.1%.
	if counts[0] < 5000 {
		t.Errorf("key 0 hit %d of 100000; zipf not skewed", counts[0])
	}
	// Tail keys must still be reachable.
	tail := 0
	for _, c := range counts[n/2:] {
		tail += c
	}
	if tail == 0 {
		t.Error("zipf never touched the tail half")
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(100, 0.99, sim.NewRand(7)), NewZipf(100, 0.99, sim.NewRand(7))
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("zipf not deterministic for equal seeds")
		}
	}
}

func TestWorkloadFMix(t *testing.T) {
	rng := sim.NewRand(3)
	w := WorkloadF(NewUniform(100, rng.Fork()), rng)
	reads, rmws := 0, 0
	for i := 0; i < 10000; i++ {
		switch w.Next().Kind {
		case OpRead:
			reads++
		case OpRMW:
			rmws++
		default:
			t.Fatal("workload F generated a plain update")
		}
	}
	if reads < 4000 || rmws < 4000 {
		t.Errorf("mix reads=%d rmws=%d, want ~50/50", reads, rmws)
	}
}

func TestKeyFormat(t *testing.T) {
	k := Key(42)
	if string(k) != "user00000000000000000042" {
		t.Errorf("Key(42) = %q", k)
	}
	if len(Key(0)) != len(Key(999999)) {
		t.Error("keys not fixed width")
	}
}
