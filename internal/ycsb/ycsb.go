// Package ycsb generates YCSB-style key-value workloads for the Redis and
// TxnStore experiments (paper §7.5, §7.6): zipfian and uniform key
// choosers, GET/SET mixes, and workload F's read-modify-write
// transactions.
package ycsb

import (
	"fmt"
	"math"

	"demikernel/internal/sim"
)

// KeyChooser picks key indices in [0, n).
type KeyChooser interface {
	Next() int
}

// Uniform picks keys uniformly.
type Uniform struct {
	n   int
	rng *sim.Rand
}

// NewUniform returns a uniform chooser over n keys.
func NewUniform(n int, rng *sim.Rand) *Uniform { return &Uniform{n: n, rng: rng} }

// Next implements KeyChooser.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// Zipf picks keys with the standard YCSB zipfian distribution (theta
// defaults to 0.99), using Gray et al.'s rejection-free method.
type Zipf struct {
	n          int
	rng        *sim.Rand
	theta      float64
	zetan      float64
	alpha, eta float64
	zeta2theta float64
}

// NewZipf returns a zipfian chooser over n keys with the given theta
// (0 < theta < 1; YCSB's default is 0.99).
func NewZipf(n int, theta float64, rng *sim.Rand) *Zipf {
	z := &Zipf{n: n, rng: rng, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Key renders key index i in YCSB's fixed-width form.
func Key(i int) []byte { return []byte(fmt.Sprintf("user%020d", i)) }

// OpKind is a workload operation type.
type OpKind int

const (
	// OpRead is a GET.
	OpRead OpKind = iota
	// OpUpdate is a SET of an existing key.
	OpUpdate
	// OpRMW is workload F's read-modify-write transaction.
	OpRMW
)

// Workload generates a stream of operations.
type Workload struct {
	Keys     KeyChooser
	ReadFrac float64 // probability of OpRead; remainder split per kind
	RMW      bool    // workload F: non-reads are RMW transactions
	rng      *sim.Rand
}

// WorkloadF returns YCSB workload F: 50% reads, 50% read-modify-writes
// (the paper's TxnStore configuration uses its transactional form).
func WorkloadF(keys KeyChooser, rng *sim.Rand) *Workload {
	return &Workload{Keys: keys, ReadFrac: 0.5, RMW: true, rng: rng}
}

// UpdateHeavy returns a 50/50 GET/SET mix (the redis-benchmark runs
// separate pure-GET and pure-SET passes; this mix serves general tests).
func UpdateHeavy(keys KeyChooser, rng *sim.Rand) *Workload {
	return &Workload{Keys: keys, ReadFrac: 0.5, rng: rng}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  int
}

// Next returns the next operation.
func (w *Workload) Next() Op {
	k := w.Keys.Next()
	if w.rng.Float64() < w.ReadFrac {
		return Op{Kind: OpRead, Key: k}
	}
	if w.RMW {
		return Op{Kind: OpRMW, Key: k}
	}
	return Op{Kind: OpUpdate, Key: k}
}
