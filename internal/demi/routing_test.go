package demi

import (
	"fmt"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
)

// fakeSide is a scripted libOS half: every call is recorded with the
// descriptor it saw, and tokens come from a real core.TokenTable so the
// combined TryTake path is exercised end to end.
type fakeSide struct {
	name   string
	tokens *core.TokenTable
	calls  []string
	// nextNewQD is delivered as the NewQD of accept/open-style
	// completions.
	nextNewQD core.QDesc
}

func (f *fakeSide) record(op string, qd core.QDesc) {
	f.calls = append(f.calls, fmt.Sprintf("%s(%d)", op, qd))
}

func (f *fakeSide) Socket(t core.SockType) (core.QDesc, error) { return 1, nil }
func (f *fakeSide) Bind(qd core.QDesc, a core.Addr) error      { f.record("bind", qd); return nil }
func (f *fakeSide) Listen(qd core.QDesc, b int) error          { f.record("listen", qd); return nil }
func (f *fakeSide) Queue() (core.QDesc, error)                 { return 2, nil }
func (f *fakeSide) Open(name string) (core.QDesc, error)       { return 3, nil }

func (f *fakeSide) Accept(qd core.QDesc) (core.QToken, error) {
	f.record("accept", qd)
	op := f.tokens.New()
	op.Complete(core.QEvent{QD: qd, Op: core.OpAccept, NewQD: f.nextNewQD})
	return op.Token(), nil
}

func (f *fakeSide) Connect(qd core.QDesc, a core.Addr) (core.QToken, error) {
	f.record("connect", qd)
	op := f.tokens.New()
	op.Complete(core.QEvent{QD: qd, Op: core.OpConnect})
	return op.Token(), nil
}

func (f *fakeSide) Close(qd core.QDesc) error { f.record("close", qd); return nil }

func (f *fakeSide) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	f.record("push", qd)
	op := f.tokens.New()
	op.Complete(core.QEvent{QD: qd, Op: core.OpPush})
	return op.Token(), nil
}

func (f *fakeSide) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	f.record("pushto", qd)
	op := f.tokens.New()
	op.Complete(core.QEvent{QD: qd, Op: core.OpPush})
	return op.Token(), nil
}

func (f *fakeSide) Pop(qd core.QDesc) (core.QToken, error) {
	f.record("pop", qd)
	op := f.tokens.New()
	op.Complete(core.QEvent{QD: qd, Op: core.OpPop})
	return op.Token(), nil
}

func (f *fakeSide) Wait(qt core.QToken) (core.QEvent, error) { panic("unused") }
func (f *fakeSide) WaitAny(qts []core.QToken, d time.Duration) (int, core.QEvent, error) {
	panic("unused")
}
func (f *fakeSide) WaitAll(qts []core.QToken, d time.Duration) ([]core.QEvent, error) {
	panic("unused")
}
func (f *fakeSide) Heap() *memory.Heap                { return nil }
func (f *fakeSide) Tokens() *core.TokenTable          { return f.tokens }
func (f *fakeSide) Step() bool                        { return false }
func (f *fakeSide) Block(deadline sim.Time) bool      { return false }
func (f *fakeSide) Now() sim.Time                     { return 0 }
func (f *fakeSide) Mount() error                      { return nil }
func (f *fakeSide) Seek(qd core.QDesc, o int64) error { f.record("seek", qd); return nil }
func (f *fakeSide) Truncate(qd core.QDesc) error      { f.record("truncate", qd); return nil }

func newFakes() (*Combined, *fakeSide, *fakeSide) {
	net := &fakeSide{name: "net", tokens: core.NewTokenTable()}
	stor := &fakeSide{name: "stor", tokens: core.NewTokenTable()}
	return NewCombined(net, stor), net, stor
}

// TestCombinedTagRouting drives each PDPIX call through Combined and
// checks which side saw it and with which (untagged) descriptor, plus
// whether the returned token carries the storage tag.
func TestCombinedTagRouting(t *testing.T) {
	const stQD = core.QDesc(7) // a storage-side descriptor, pre-tagging

	cases := []struct {
		name     string
		invoke   func(c *Combined) (core.QToken, error)
		wantSide string // "net" or "stor"
		wantCall string // recorded call on that side
		wantTag  bool   // returned token carries storTag
	}{
		{
			name: "push untagged routes to net",
			invoke: func(c *Combined) (core.QToken, error) {
				return c.Push(5, core.SGArray{})
			},
			wantSide: "net", wantCall: "push(5)", wantTag: false,
		},
		{
			name: "push tagged routes to stor untagged",
			invoke: func(c *Combined) (core.QToken, error) {
				return c.Push(stQD|storTag, core.SGArray{})
			},
			wantSide: "stor", wantCall: "push(7)", wantTag: true,
		},
		{
			name: "pop untagged routes to net",
			invoke: func(c *Combined) (core.QToken, error) {
				return c.Pop(5)
			},
			wantSide: "net", wantCall: "pop(5)", wantTag: false,
		},
		{
			name: "pop tagged routes to stor untagged",
			invoke: func(c *Combined) (core.QToken, error) {
				return c.Pop(stQD | storTag)
			},
			wantSide: "stor", wantCall: "pop(7)", wantTag: true,
		},
		{
			name: "accept stays on net",
			invoke: func(c *Combined) (core.QToken, error) {
				return c.Accept(5)
			},
			wantSide: "net", wantCall: "accept(5)", wantTag: false,
		},
		{
			name: "connect stays on net",
			invoke: func(c *Combined) (core.QToken, error) {
				return c.Connect(5, core.Addr{})
			},
			wantSide: "net", wantCall: "connect(5)", wantTag: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, net, stor := newFakes()
			qt, err := tc.invoke(c)
			if err != nil {
				t.Fatalf("invoke: %v", err)
			}
			want, other := net, stor
			if tc.wantSide == "stor" {
				want, other = stor, net
			}
			if len(want.calls) != 1 || want.calls[0] != tc.wantCall {
				t.Fatalf("%s calls = %v, want [%s]", tc.wantSide, want.calls, tc.wantCall)
			}
			if len(other.calls) != 0 {
				t.Fatalf("wrong side also called: %v", other.calls)
			}
			if got := qt&storTag != 0; got != tc.wantTag {
				t.Fatalf("token tag = %v, want %v", got, tc.wantTag)
			}
			// The combined table must redeem the token it handed out.
			ev, done, terr := c.TryTake(qt)
			if terr != nil || !done {
				t.Fatalf("TryTake: done=%v err=%v", done, terr)
			}
			if tc.wantTag && ev.QD&storTag == 0 {
				t.Fatalf("storage event QD %d not retagged", ev.QD)
			}
		})
	}
}

// TestCombinedCloseSeekTruncateRouting checks the descriptor-routed
// control calls.
func TestCombinedCloseSeekTruncateRouting(t *testing.T) {
	c, net, stor := newFakes()
	if err := c.Close(9); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(9 | storTag); err != nil {
		t.Fatal(err)
	}
	if err := c.Seek(9|storTag, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate(9 | storTag); err != nil {
		t.Fatal(err)
	}
	if err := c.Seek(9, 0); err != core.ErrNotSupported {
		t.Fatalf("seek on net qd = %v, want ErrNotSupported", err)
	}
	if err := c.Truncate(9); err != core.ErrNotSupported {
		t.Fatalf("truncate on net qd = %v, want ErrNotSupported", err)
	}
	if len(net.calls) != 1 || net.calls[0] != "close(9)" {
		t.Fatalf("net calls = %v", net.calls)
	}
	wantStor := []string{"close(9)", "seek(9)", "truncate(9)"}
	if len(stor.calls) != len(wantStor) {
		t.Fatalf("stor calls = %v, want %v", stor.calls, wantStor)
	}
	for i, w := range wantStor {
		if stor.calls[i] != w {
			t.Fatalf("stor calls = %v, want %v", stor.calls, wantStor)
		}
	}
}

// TestCombinedRetagsNewQD: a storage-side completion carrying a NewQD must
// surface it tagged, and the tagged descriptor must route back to the
// storage side — the full round trip an application performs.
func TestCombinedRetagsNewQD(t *testing.T) {
	c, _, stor := newFakes()
	stor.nextNewQD = 11

	// Drive an accept-style completion through the storage table via the
	// tagged path (Combined has no storage accept call, so mint the token
	// directly and redeem it through the combined namespace).
	qt, err := stor.Accept(4)
	if err != nil {
		t.Fatal(err)
	}
	ev, done, err := c.TryTake(tagQT(qt))
	if err != nil || !done {
		t.Fatalf("TryTake: done=%v err=%v", done, err)
	}
	if ev.QD != tagQD(4) {
		t.Fatalf("event QD = %d, want tagged 4", ev.QD)
	}
	if ev.NewQD != tagQD(11) {
		t.Fatalf("event NewQD = %d, want tagged 11", ev.NewQD)
	}
	// The tagged NewQD routes back to the storage side, untagged.
	stor.calls = nil
	if _, err := c.Push(ev.NewQD, core.SGArray{}); err != nil {
		t.Fatal(err)
	}
	if len(stor.calls) != 1 || stor.calls[0] != "push(11)" {
		t.Fatalf("stor calls = %v, want [push(11)]", stor.calls)
	}
}

// TestCombinedNetNewQDUntouched: network completions must pass through
// retag-free — tagging a net accept's NewQD would route it to storage.
func TestCombinedNetNewQDUntouched(t *testing.T) {
	c, net, _ := newFakes()
	net.nextNewQD = 13
	qt, err := c.Accept(4)
	if err != nil {
		t.Fatal(err)
	}
	ev, done, err := c.TryTake(qt)
	if err != nil || !done {
		t.Fatalf("TryTake: done=%v err=%v", done, err)
	}
	if ev.NewQD != 13 {
		t.Fatalf("net NewQD = %d, want 13 untagged", ev.NewQD)
	}
}
