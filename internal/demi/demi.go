// Package demi assembles Demikernel library OSes into the integrated
// datapath OS the application links against. Its centerpiece is Combined,
// the network×storage integration (paper §5.5: Catnip×Cattree and
// Catmint×Cattree): one node runs both stacks, the scheduler splits the
// fast path between the NIC and the NVMe completion queues round-robin,
// and a single wait call spans qtokens from both — which is what lets
// Redis receive a PUT, log it to disk, and reply without a copy or context
// switch.
package demi

import (
	"time"

	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/sched"
	"demikernel/internal/sim"
)

// LibOS is the application-facing Demikernel interface: PDPIX (core.LibOS)
// plus the datagram and storage extensions the example applications use.
type LibOS interface {
	core.LibOS
	// PushTo is push with an explicit datagram destination (demi_pushto).
	PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error)
}

// StorageOS is implemented by libOSes with a storage log (Cattree, Catnap,
// Combined): cursor control and log truncation beyond plain push/pop.
type StorageOS interface {
	Seek(qd core.QDesc, offset int64) error
	Truncate(qd core.QDesc) error
}

// NetOS is the libOS-internal contract Combined needs from a network
// libOS (Catnip or Catmint satisfy it).
type NetOS interface {
	LibOS
	Tokens() *core.TokenTable
	Step() bool
	Block(deadline sim.Time) bool
	Now() sim.Time
}

// StorOS is the libOS-internal contract for the storage side (Cattree).
type StorOS interface {
	core.LibOS
	StorageOS
	Tokens() *core.TokenTable
	Step() bool
	Mount() error
}

// SchedStatser is implemented by libOSes that expose their coroutine
// scheduler's counters (Catnip, Catmint, Cattree, Combined). Scale-out
// harnesses read it per core for utilization breakdowns.
type SchedStatser interface {
	SchedStats() sched.Stats
}

// Drivable is a libOS whose wait loop can be driven externally (the
// baseline wrappers re-implement the wait loop to charge kernel-path
// costs). Combined and the network libOSes satisfy it.
type Drivable interface {
	LibOS
	TryTake(qt core.QToken) (core.QEvent, bool, error)
	Step() bool
	Block(deadline sim.Time) bool
	Now() sim.Time
}

// storTag marks descriptors and tokens owned by the storage libOS.
const storTag = 1 << 30

// Combined is a network×storage datapath OS on one node.
type Combined struct {
	Net  NetOS
	Stor StorOS
	// pollNetNext alternates the fast path between devices.
	pollNetNext bool
	// rr rotates WaitAny's scan start so one hot token cannot starve the
	// rest (same fairness rule as core.Waiter).
	rr int
}

// NewCombined integrates a network and a storage libOS running on the same
// node.
func NewCombined(net NetOS, stor StorOS) *Combined {
	return &Combined{Net: net, Stor: stor}
}

// Heap returns the network libOS's DMA heap (shared by convention: the
// paper backs both devices from one allocator).
func (c *Combined) Heap() *memory.Heap { return c.Net.Heap() }

// Mount recovers the storage log (control path).
func (c *Combined) Mount() error { return c.Stor.Mount() }

// --- descriptor/token tagging ---

func isStorQD(qd core.QDesc) bool    { return qd&storTag != 0 }
func tagQD(qd core.QDesc) core.QDesc { return qd | storTag }
func untagQD(qd core.QDesc) core.QDesc {
	return qd &^ storTag
}

func isStorQT(qt core.QToken) bool     { return qt&storTag != 0 }
func tagQT(qt core.QToken) core.QToken { return qt | storTag }
func untagQT(qt core.QToken) core.QToken {
	return qt &^ storTag
}

// retagEvent rewrites a storage event into the combined namespace. NewQD
// must be retagged too: an accept-style completion carrying an untagged
// descriptor would route the application's next operation on it to the
// wrong libOS.
func retagEvent(ev core.QEvent) core.QEvent {
	ev.QD = tagQD(ev.QD)
	if ev.NewQD > 0 {
		ev.NewQD = tagQD(ev.NewQD)
	}
	return ev
}

// --- PDPIX: network calls pass through ---

// Socket creates a network socket.
func (c *Combined) Socket(t core.SockType) (core.QDesc, error) { return c.Net.Socket(t) }

// Bind binds a network socket.
func (c *Combined) Bind(qd core.QDesc, a core.Addr) error { return c.Net.Bind(qd, a) }

// Listen starts a listener.
func (c *Combined) Listen(qd core.QDesc, backlog int) error { return c.Net.Listen(qd, backlog) }

// Accept asks for an inbound connection.
func (c *Combined) Accept(qd core.QDesc) (core.QToken, error) { return c.Net.Accept(qd) }

// Connect initiates a connection.
func (c *Combined) Connect(qd core.QDesc, a core.Addr) (core.QToken, error) {
	return c.Net.Connect(qd, a)
}

// Queue creates an in-memory queue (on the network side).
func (c *Combined) Queue() (core.QDesc, error) { return c.Net.Queue() }

// Open opens the storage log.
func (c *Combined) Open(name string) (core.QDesc, error) {
	qd, err := c.Stor.Open(name)
	if err != nil {
		return core.InvalidQD, err
	}
	return tagQD(qd), nil
}

// Seek moves a storage cursor.
func (c *Combined) Seek(qd core.QDesc, off int64) error {
	if !isStorQD(qd) {
		return core.ErrNotSupported
	}
	return c.Stor.Seek(untagQD(qd), off)
}

// Truncate garbage-collects the log.
func (c *Combined) Truncate(qd core.QDesc) error {
	if !isStorQD(qd) {
		return core.ErrNotSupported
	}
	return c.Stor.Truncate(untagQD(qd))
}

// Close releases a queue on whichever side owns it.
func (c *Combined) Close(qd core.QDesc) error {
	if isStorQD(qd) {
		return c.Stor.Close(untagQD(qd))
	}
	return c.Net.Close(qd)
}

// Push dispatches to the owning libOS.
func (c *Combined) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	if isStorQD(qd) {
		qt, err := c.Stor.Push(untagQD(qd), sga)
		if err != nil {
			return core.InvalidQToken, err
		}
		return tagQT(qt), nil
	}
	return c.Net.Push(qd, sga)
}

// PushTo dispatches a datagram push.
func (c *Combined) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	if isStorQD(qd) {
		return core.InvalidQToken, core.ErrNotSupported
	}
	return c.Net.PushTo(qd, sga, to)
}

// Pop dispatches to the owning libOS.
func (c *Combined) Pop(qd core.QDesc) (core.QToken, error) {
	if isStorQD(qd) {
		qt, err := c.Stor.Pop(untagQD(qd))
		if err != nil {
			return core.InvalidQToken, err
		}
		return tagQT(qt), nil
	}
	return c.Net.Pop(qd)
}

// --- Integrated wait machinery ---

// TryTake redeems a token from whichever table owns it.
func (c *Combined) TryTake(qt core.QToken) (core.QEvent, bool, error) {
	if isStorQT(qt) {
		ev, done, err := c.Stor.Tokens().TryTake(untagQT(qt))
		if done {
			ev = retagEvent(ev)
		}
		return ev, done, err
	}
	return c.Net.Tokens().TryTake(qt)
}

// Step alternates the two stacks' fast paths (paper §5.5: round-robin CPU
// between network and storage I/O given no pending work).
func (c *Combined) Step() bool {
	c.pollNetNext = !c.pollNetNext
	if c.pollNetNext {
		return c.Net.Step() || c.Stor.Step()
	}
	return c.Stor.Step() || c.Net.Step()
}

// Block parks the node until an event or deadline.
func (c *Combined) Block(deadline sim.Time) bool { return c.Net.Block(deadline) }

// Now returns the node clock.
func (c *Combined) Now() sim.Time { return c.Net.Now() }

// IsStorageQD reports whether qd belongs to the storage side.
func (c *Combined) IsStorageQD(qd core.QDesc) bool { return isStorQD(qd) }

// SchedStats sums the scheduler counters of both stacks (each side runs
// its own scheduler; one core drives both).
func (c *Combined) SchedStats() sched.Stats {
	var total sched.Stats
	for _, side := range []any{c.Net, c.Stor} {
		if s, ok := side.(SchedStatser); ok {
			st := s.SchedStats()
			total.Spawned += st.Spawned
			total.Completed += st.Completed
			total.Polls += st.Polls
			total.EmptyScans += st.EmptyScans
		}
	}
	return total
}

// Wait blocks until qt completes.
func (c *Combined) Wait(qt core.QToken) (core.QEvent, error) {
	_, ev, err := c.WaitAny([]core.QToken{qt}, -1)
	return ev, err
}

// WaitAny blocks until one of qts completes.
func (c *Combined) WaitAny(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	deadline := sim.Infinity
	if timeout >= 0 {
		deadline = c.Net.Now().Add(timeout)
	}
	for {
		for k := range qts {
			i := (c.rr + k) % len(qts)
			ev, done, err := c.TryTake(qts[i])
			if err != nil {
				return -1, core.QEvent{}, err
			}
			if done {
				if len(qts) > 1 {
					c.rr = i + 1
				}
				return i, ev, nil
			}
		}
		if c.Step() {
			continue
		}
		if c.Net.Now() >= deadline {
			return -1, core.QEvent{}, core.ErrTimeout
		}
		if !c.Net.Block(deadline) {
			return -1, core.QEvent{}, core.ErrStopped
		}
	}
}

// WaitAll blocks until every token completes.
func (c *Combined) WaitAll(qts []core.QToken, timeout time.Duration) ([]core.QEvent, error) {
	events := make([]core.QEvent, len(qts))
	got := make([]bool, len(qts))
	remaining := len(qts)
	deadline := sim.Infinity
	if timeout >= 0 {
		deadline = c.Net.Now().Add(timeout)
	}
	for remaining > 0 {
		progress := false
		for i, qt := range qts {
			if got[i] {
				continue
			}
			ev, done, err := c.TryTake(qt)
			if err != nil {
				return events, err
			}
			if done {
				events[i] = ev
				got[i] = true
				remaining--
				progress = true
			}
		}
		if remaining == 0 {
			break
		}
		if progress || c.Step() {
			continue
		}
		if c.Net.Now() >= deadline {
			return events, core.ErrTimeout
		}
		if !c.Net.Block(deadline) {
			return events, core.ErrStopped
		}
	}
	return events, nil
}
