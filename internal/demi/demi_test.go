package demi

import (
	"errors"
	"testing"
	"time"

	"demikernel/internal/catnip"
	"demikernel/internal/cattree"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/spdkdev"
	"demikernel/internal/wire"
)

var (
	ipA = wire.IPAddr{10, 2, 0, 1}
	ipB = wire.IPAddr{10, 2, 0, 2}
)

// combinedPair builds two nodes, each with Catnip×Cattree.
func combinedPair(t *testing.T) (*sim.Engine, *Combined, *Combined, *spdkdev.Device) {
	t.Helper()
	eng := sim.NewEngine(31)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	na, nb := eng.NewNode("a"), eng.NewNode("b")
	pa := dpdkdev.Attach(sw, na, simnet.DefaultLink(), 8192, 0)
	pb := dpdkdev.Attach(sw, nb, simnet.DefaultLink(), 8192, 0)
	la := catnip.New(na, pa, catnip.DefaultConfig(ipA))
	lb := catnip.New(nb, pb, catnip.DefaultConfig(ipB))
	la.SeedARP(ipB, pb.MAC())
	lb.SeedARP(ipA, pa.MAC())
	devB := spdkdev.New(nb, spdkdev.OptaneParams(), 1<<16)
	ca := NewCombined(la, cattree.New(na, spdkdev.New(na, spdkdev.OptaneParams(), 1<<16)))
	cb := NewCombined(lb, cattree.New(nb, devB))
	return eng, ca, cb, devB
}

func TestCombinedEchoWithSynchronousLogging(t *testing.T) {
	eng, ca, cb, devB := combinedPair(t)
	// Server: pop from the network, log to disk, reply — the paper's
	// run-to-completion NIC -> app -> disk -> NIC flow.
	var logged uint64
	eng.Spawn(cbNode(cb), func() {
		qd, _ := cb.Socket(core.SockStream)
		cb.Bind(qd, core.Addr{IP: ipB, Port: 80})
		cb.Listen(qd, 4)
		logQD, err := cb.Open("echo.log")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		aqt, _ := cb.Accept(qd)
		ev, err := cb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for {
			pqt, _ := cb.Pop(conn)
			ev, err := cb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			// Synchronously log before replying.
			lqt, err := cb.Push(logQD, ev.SGA)
			if err != nil {
				t.Errorf("log push: %v", err)
				return
			}
			if lev, err := cb.Wait(lqt); err != nil || lev.Err != nil {
				t.Errorf("log wait: %v", err)
				return
			}
			logged++
			wqt, _ := cb.Push(conn, ev.SGA)
			if _, err := cb.Wait(wqt); err != nil {
				return
			}
			ev.SGA.Free()
		}
	})
	const rounds = 20
	var rtts []time.Duration
	eng.Spawn(caNode(ca), func() {
		qd, _ := ca.Socket(core.SockStream)
		cqt, _ := ca.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if ev, err := ca.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for i := 0; i < rounds; i++ {
			start := caNode(ca).Now()
			msg := memory.CopyFrom(ca.Heap(), []byte("log-me-0123456789"))
			ca.Push(qd, core.SGA(msg))
			pqt, _ := ca.Pop(qd)
			ev, err := ca.Wait(pqt)
			if err != nil || ev.Err != nil {
				t.Errorf("pop: %v", err)
				return
			}
			rtts = append(rtts, caNode(ca).Now().Sub(start))
			ev.SGA.Free()
		}
		ca.Close(qd)
	})
	eng.Run()
	if len(rtts) != rounds {
		t.Fatalf("completed %d rounds", len(rtts))
	}
	if logged != rounds {
		t.Fatalf("logged %d records, want %d", logged, rounds)
	}
	// rounds data records + 1 directory record for the new log name.
	if devB.Stats().Writes != rounds+1 {
		t.Fatalf("device writes = %d", devB.Stats().Writes)
	}
	// Each RTT must include the ~10 µs disk write plus network time, and
	// stay well under kernel-stack latencies (~30 µs in the paper).
	for _, rtt := range rtts[1:] {
		if rtt < 10*time.Microsecond {
			t.Errorf("rtt %v too fast to include a durable write", rtt)
		}
		if rtt > 40*time.Microsecond {
			t.Errorf("rtt %v unexpectedly slow", rtt)
		}
	}
}

func TestCombinedStorageTokensDoNotCollideWithNet(t *testing.T) {
	eng, ca, cb, _ := combinedPair(t)
	_ = cb
	eng.Spawn(caNode(ca), func() {
		logQD, err := ca.Open("x.log")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		// Interleave a network memqueue op and a storage op; tokens from
		// both tables must resolve independently.
		mq, _ := ca.Queue()
		nqt, _ := ca.Push(mq, core.SGA(memory.CopyFrom(ca.Heap(), []byte("net"))))
		sqt, err := ca.Push(logQD, core.SGA(memory.CopyFrom(ca.Heap(), []byte("disk"))))
		if err != nil {
			t.Errorf("stor push: %v", err)
			return
		}
		evs, err := ca.WaitAll([]core.QToken{nqt, sqt}, -1)
		if err != nil {
			t.Errorf("waitall: %v", err)
			return
		}
		if evs[0].Err != nil || evs[1].Err != nil {
			t.Errorf("events: %+v", evs)
		}
		if !isStorQD(evs[1].QD) {
			t.Error("storage event not tagged")
		}
		// Read the record back through the combined API.
		ca.Seek(logQD, 0)
		pqt, _ := ca.Pop(logQD)
		ev, err := ca.Wait(pqt)
		if err != nil || string(ev.SGA.Flatten()) != "disk" {
			t.Errorf("disk readback: %v %q", err, ev.SGA.Flatten())
		}
	})
	eng.Run()
}

func TestCombinedWaitAnyMixesDevices(t *testing.T) {
	eng, ca, cb, _ := combinedPair(t)
	_ = cb
	eng.Spawn(caNode(ca), func() {
		logQD, _ := ca.Open("y.log")
		sqt, _ := ca.Push(logQD, core.SGA(memory.CopyFrom(ca.Heap(), []byte("r"))))
		// A pop on an empty memqueue never completes; WaitAny must return
		// the storage completion.
		mq, _ := ca.Queue()
		nqt, _ := ca.Pop(mq)
		i, ev, err := ca.WaitAny([]core.QToken{nqt, sqt}, -1)
		if err != nil {
			t.Errorf("waitany: %v", err)
			return
		}
		if i != 1 || ev.Op != core.OpPush {
			t.Errorf("i=%d ev=%+v", i, ev)
		}
	})
	eng.Run()
}

func TestCombinedErrors(t *testing.T) {
	eng, ca, cb, _ := combinedPair(t)
	_ = cb
	eng.Spawn(caNode(ca), func() {
		if _, err := ca.PushTo(0x40000001, core.SGArray{}, core.Addr{}); !errors.Is(err, core.ErrNotSupported) {
			t.Errorf("PushTo on storage qd: %v", err)
		}
		if err := ca.Seek(1, 0); !errors.Is(err, core.ErrNotSupported) {
			t.Errorf("Seek on net qd: %v", err)
		}
	})
	eng.Run()
}

// caNode extracts the node (helper keeps tests terse).
func caNode(c *Combined) *sim.Node { return c.Net.(*catnip.LibOS).Node() }
func cbNode(c *Combined) *sim.Node { return c.Net.(*catnip.LibOS).Node() }
