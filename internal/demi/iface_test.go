package demi

import (
	"demikernel/internal/catmint"
	"demikernel/internal/catnap"
	"demikernel/internal/catnip"
	"demikernel/internal/cattree"
)

// Compile-time interface conformance checks.
var (
	_ NetOS     = (*catnip.LibOS)(nil)
	_ NetOS     = (*catmint.LibOS)(nil)
	_ LibOS     = (*catnap.LibOS)(nil)
	_ StorOS    = (*cattree.LibOS)(nil)
	_ LibOS     = (*Combined)(nil)
	_ StorageOS = (*Combined)(nil)
	_ StorageOS = (*catnap.LibOS)(nil)
)
