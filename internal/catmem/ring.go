package catmem

import "demikernel/internal/core"

// ring is one direction of a catmem duplex queue pair: a fixed-capacity
// FIFO of scatter-gather arrays modelling a shared-memory descriptor ring.
// Slots are preallocated at rendezvous so the datapath never touches the Go
// allocator; producer and consumer run on different simulated cores, with
// the baton discipline standing in for the real ring's memory-ordering
// protocol.
type ring struct {
	slots []core.SGArray
	head  int // next slot to pop
	tail  int // next slot to fill
	count int
}

// newRing preallocates a ring of the given slot capacity.
func newRing(capacity int) *ring {
	return &ring{slots: make([]core.SGArray, capacity)}
}

//demi:nonalloc ring ops run on the per-I/O fast path of both endpoints
func (r *ring) tryPush(sga core.SGArray) bool {
	if r.count == len(r.slots) {
		return false
	}
	r.slots[r.tail] = sga
	r.tail++
	if r.tail == len(r.slots) {
		r.tail = 0
	}
	r.count++
	return true
}

//demi:nonalloc ring ops run on the per-I/O fast path of both endpoints
func (r *ring) tryPop() (core.SGArray, bool) {
	if r.count == 0 {
		return core.SGArray{}, false
	}
	sga := r.slots[r.head]
	r.slots[r.head] = core.SGArray{}
	r.head++
	if r.head == len(r.slots) {
		r.head = 0
	}
	r.count--
	return sga, true
}

//demi:nonalloc sampled by the per-queue depth gauges at snapshot time
func (r *ring) depth() int { return r.count }
