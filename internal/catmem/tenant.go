package catmem

import "fmt"

// tenantStats counts one tenant's datapath activity on this instance.
// Quota enforcement (flows, in-flight qtokens, push rate, heap bytes)
// lives in tenant.View layered above the libOS; catmem's job is to keep
// the activity attributable so the counters and the region heap's
// per-tenant accounting line up.
type tenantStats struct {
	pushes, pops uint64
}

// RegisterTenant publishes a tenant's telemetry under the tenant.<id>.
// namespace (tenant.Registrar). The weight is accepted for interface
// symmetry with catnip but unused: shared-memory rings are wait-free, so
// there is no scheduler to weight.
func (l *LibOS) RegisterTenant(tid, weight uint32) {
	if tid == 0 || l.tstats[tid] != nil {
		return
	}
	ts := &tenantStats{}
	l.tstats[tid] = ts
	prefix := fmt.Sprintf("tenant.%d.catmem.", tid)
	l.reg.Sample(prefix+"pushes", func() int64 { return int64(ts.pushes) })
	l.reg.Sample(prefix+"pops", func() int64 { return int64(ts.pops) })
}

// EnterTenant brackets PDPIX calls issued on behalf of a tenant
// (tenant.Enterer): sockets created inside the bracket — and the
// connections they become — belong to that principal.
func (l *LibOS) EnterTenant(tid uint32) { l.curTenant = tid }

// ExitTenant ends the bracket; subsequent calls run as the host.
func (l *LibOS) ExitTenant() { l.curTenant = 0 }

func (l *LibOS) bumpPush(tid uint32) {
	if ts := l.tstats[tid]; ts != nil {
		ts.pushes++
	}
}

func (l *LibOS) bumpPop(tid uint32) {
	if ts := l.tstats[tid]; ts != nil {
		ts.pops++
	}
}
