// Package catmem is Demikernel's shared-memory queue library OS (paper
// §4.1: "Demikernel libOSes implement ... shared-memory queues between
// processes on the same host"). Co-located application instances attach to
// one Region — a model of a shared-memory segment plus its heap — and
// connect to each other through named rendezvous ports. A connected queue
// is a duplex pair of fixed-capacity descriptor rings; push hands the
// scatter-gather array's buffers to the peer by reference through the
// shared heap, so an intra-host hop costs two ring operations and a
// cache-line handoff instead of a network stack traversal.
//
// Ownership follows the in-memory-queue contract (core.MemQueue), not the
// UAF-protected network contract: Push transfers ownership of the segments
// through the queue to the eventual popper, which frees them. A push the
// queue can never deliver (closed or dead peer) is freed by the libOS;
// producers never free after a successful Push call. This is what makes
// the datapath true zero-copy — no reference juggling, exactly one owner
// at every instant.
//
// Determinism: all completions happen on the owning node under the
// engine's baton discipline; cross-node notifications are pure wakeups
// scheduled through the event heap, so a seed replays byte-identically.
package catmem

import (
	"fmt"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/costmodel"
	"demikernel/internal/demi"
	"demikernel/internal/dtrace"
	"demikernel/internal/faults"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
)

// DefaultRingSlots is the per-direction ring capacity of a connected
// queue pair (also the high-water mark of Queue()-created memory queues).
const DefaultRingSlots = 64

// Region models one shared-memory segment: the heap buffers travel
// through, the rendezvous namespace, and the engine that sequences the
// attached instances. All libOS instances of one host share a Region.
type Region struct {
	eng       *sim.Engine
	heap      *memory.Heap
	slots     int
	handoff   time.Duration
	listeners map[uint16]*listener
}

// NewRegion returns an empty shared-memory region on eng.
func NewRegion(eng *sim.Engine) *Region {
	return &Region{
		eng:       eng,
		heap:      memory.NewHeap(nil),
		slots:     DefaultRingSlots,
		handoff:   costmodel.ShmHandoff,
		listeners: make(map[uint16]*listener),
	}
}

// Heap returns the region's shared heap. Every attached instance
// allocates from it, which is what lets buffers cross instances without a
// copy.
func (r *Region) Heap() *memory.Heap { return r.heap }

// SetRingSlots overrides the per-direction ring capacity for queues
// created after the call (tests shrink it to exercise backpressure).
func (r *Region) SetRingSlots(n int) {
	if n > 0 {
		r.slots = n
	}
}

// Faults are catmem's injection sites (all nil-safe).
type Faults struct {
	// RingFull, while active, models a stalled consumer: pushes park as
	// if the ring were at capacity even when slots are free.
	RingFull *faults.Site
	// PeerDeath abruptly kills the connection's peer on an eligible push:
	// both endpoints' parked operations fail and in-flight buffers are
	// reclaimed, as if the peer process had crashed.
	PeerDeath *faults.Site
}

// Stats counts libOS activity.
type Stats struct {
	Connects, Accepts uint64
	Pushes, Pops      uint64
	Stalls            uint64 // pushes parked on a full (or stalled) ring
	PeerDeaths        uint64 // connections torn down by the fault site
}

// LibOS is one application instance attached to a shared-memory region.
type LibOS struct {
	region *Region
	node   *sim.Node
	tokens *core.TokenTable
	qds    *core.QDescTable
	waiter core.Waiter
	flts   Faults
	stats  Stats

	conns     []*conn     // creation order: Step scans deterministically
	listens   []*listener // ditto
	curTenant uint32      // principal for the current EnterTenant bracket
	tstats    map[uint32]*tenantStats
	reg       *telemetry.Registry
	stallHist *telemetry.Histogram
	// stallWakeAt dedupes retry wakeups while a RingFull window holds
	// pushes parked.
	stallWakeAt sim.Time

	dt            *dtrace.Hop // distributed-trace hop; nil when untraced
	siteRingFull  uint8       // trace label for RingFull firings
	sitePeerDeath uint8       // trace label for PeerDeath firings
}

// New attaches a libOS instance for node to the region.
func (r *Region) New(node *sim.Node) *LibOS {
	l := &LibOS{
		region: r,
		node:   node,
		tokens: core.NewTokenTable(),
		qds:    core.NewQDescTable(),
		tstats: make(map[uint32]*tenantStats),
	}
	l.waiter = core.Waiter{Table: l.tokens, Runner: l}
	l.reg = telemetry.NewRegistry(node.Name() + "/catmem")
	l.stallHist = l.reg.Histogram("catmem.push_stall_ns")
	l.tokens.Instrument(node, 0)
	l.tokens.SetLatencyHist(l.reg.Histogram("core.qtoken_latency_ns"))
	s := &l.stats
	l.reg.Sample("catmem.connects", func() int64 { return int64(s.Connects) })
	l.reg.Sample("catmem.accepts", func() int64 { return int64(s.Accepts) })
	l.reg.Sample("catmem.pushes", func() int64 { return int64(s.Pushes) })
	l.reg.Sample("catmem.pops", func() int64 { return int64(s.Pops) })
	l.reg.Sample("catmem.stalls", func() int64 { return int64(s.Stalls) })
	l.reg.Sample("catmem.peer_deaths", func() int64 { return int64(s.PeerDeaths) })
	r.heap.PublishTelemetry(l.reg, node.Name()+".mem")
	return l
}

// SetFaults installs the injection sites (chaos harness hook).
func (l *LibOS) SetFaults(f Faults) { l.flts = f }

// AttachDTrace connects the instance to a distributed-trace hop: redeemed
// qtoken spans, ring push/pop instants (the zero-copy handoff, since the
// context rides the SGArray's buffer tags through the ring), and fault
// annotations inside affected traces. A nil hop keeps the instance untraced.
func (l *LibOS) AttachDTrace(h *dtrace.Hop) {
	l.dt = h
	l.tokens.SetDTrace(h)
	l.siteRingFull = h.Label("fault:catmem.ring_full")
	l.sitePeerDeath = h.Label("fault:catmem.peer_death")
}

// Tokens returns the qtoken table (flight-recorder attachment, leak
// checks).
func (l *LibOS) Tokens() *core.TokenTable { return l.tokens }

// Telemetry returns the instance's metric registry.
func (l *LibOS) Telemetry() *telemetry.Registry { return l.reg }

// Node returns the owning simulated host.
func (l *LibOS) Node() *sim.Node { return l.node }

// Heap returns the region's shared heap.
func (l *LibOS) Heap() *memory.Heap { return l.region.heap }

// Stats returns a snapshot of instance counters.
func (l *LibOS) Stats() Stats { return l.stats }

// --- Queue state ---

// sockQueue is an unconnected socket placeholder created by Socket.
type sockQueue struct {
	port   uint16
	bound  bool
	tenant uint32 // owning principal, captured at Socket
}

// listener accepts rendezvous connections on a region port.
type listener struct {
	lib     *LibOS
	qd      core.QDesc
	port    uint16
	tenant  uint32  // accepted endpoints inherit the listener's principal
	backlog []*conn // server-side endpoints awaiting accept
	accepts []*core.Op
	closed  bool
}

// pendingPush is one push parked on backpressure (ring full or a RingFull
// fault window).
type pendingPush struct {
	op       *core.Op
	sga      core.SGArray
	parkedAt sim.Time
}

// conn is one endpoint of a connected shared-memory queue pair.
type conn struct {
	lib    *LibOS
	qd     core.QDesc
	tenant uint32 // owning principal (0 = host)
	rx, tx *ring
	peer   *conn
	pops   []*core.Op
	pushes []pendingPush
	// closed: this side released the descriptor. peerClosed: the peer
	// did (remaining rx data stays poppable — half-close). dead: the
	// pair was killed by a peer-death fault.
	closed, peerClosed, dead bool
}

// wakePeer schedules a pure wakeup of the peer's node one cache-line
// handoff from now — the consumer-side latency of shared-memory
// notification.
func (c *conn) wakePeer() {
	p := c.peer
	if p == nil {
		return
	}
	l := c.lib
	l.region.eng.At(l.node.Now().Add(l.region.handoff), p.lib.node, nil)
}

// push hands sga to the peer. Ownership of the segments passes to the
// libOS here: delivered buffers are freed by the popper, undeliverable
// ones by the queue.
func (c *conn) push(op *core.Op, sga core.SGArray) {
	l := c.lib
	ctx := sga.TraceCtx()
	op.Trace(ctx)
	if c.dead || c.closed || c.peerClosed {
		sga.Free()
		op.Fail(c.qd, core.OpPush, core.ErrQueueClosed)
		return
	}
	if l.flts.PeerDeath.Fire(l.node.Now()) {
		l.dt.Fault(ctx, l.sitePeerDeath, int64(l.node.Now()))
		c.killPair()
		sga.Free()
		op.Fail(c.qd, core.OpPush, core.ErrQueueClosed)
		return
	}
	l.node.Charge(costmodel.ShmRingOp)
	if l.flts.RingFull.Active(l.node.Now()) || !c.tx.tryPush(sga) {
		if l.flts.RingFull.Active(l.node.Now()) {
			l.dt.Fault(ctx, l.siteRingFull, int64(l.node.Now()))
		}
		l.stats.Stalls++
		c.pushes = append(c.pushes, pendingPush{op: op, sga: sga, parkedAt: l.node.Now()})
		l.armStallRetry()
		return
	}
	l.stats.Pushes++
	l.bumpPush(c.tenant)
	l.dt.RingPush(ctx, int64(l.node.Now()))
	op.Complete(core.QEvent{QD: c.qd, Op: core.OpPush})
	c.wakePeer()
}

// pop completes op with the next ring entry, EOF after a peer close, or
// parks it.
func (c *conn) pop(op *core.Op) {
	l := c.lib
	l.node.Charge(costmodel.ShmRingOp)
	if sga, ok := c.rx.tryPop(); ok {
		l.stats.Pops++
		l.bumpPop(c.tenant)
		l.dt.RingPop(sga.TraceCtx(), int64(l.node.Now()))
		op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop, SGA: sga})
		c.wakePeer() // freed a slot: peer may have parked pushes
		return
	}
	switch {
	case c.dead:
		op.Fail(c.qd, core.OpPop, core.ErrQueueClosed)
	case c.peerClosed:
		op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop}) // EOF
	case c.closed:
		op.Fail(c.qd, core.OpPop, core.ErrQueueClosed)
	default:
		c.pops = append(c.pops, op)
	}
}

// step makes whatever progress the rings allow on this endpoint,
// reporting whether anything completed.
func (c *conn) step() bool {
	l := c.lib
	progress := false
	for len(c.pops) > 0 {
		sga, ok := c.rx.tryPop()
		if !ok {
			break
		}
		op := c.pops[0]
		c.pops = c.pops[1:]
		l.node.Charge(costmodel.ShmRingOp)
		l.stats.Pops++
		l.bumpPop(c.tenant)
		l.dt.RingPop(sga.TraceCtx(), int64(l.node.Now()))
		op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop, SGA: sga})
		c.wakePeer()
		progress = true
	}
	if len(c.pops) > 0 && (c.dead || c.peerClosed) {
		for _, op := range c.pops {
			if c.dead {
				op.Fail(c.qd, core.OpPop, core.ErrQueueClosed)
			} else {
				op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop}) // EOF
			}
		}
		c.pops = nil
		progress = true
	}
	if len(c.pushes) > 0 {
		switch {
		case c.dead || c.closed || c.peerClosed:
			c.failParkedPushes()
			progress = true
		case l.flts.RingFull.Active(l.node.Now()):
			l.armStallRetry() // still stalled: retry when the window ends
		default:
			for len(c.pushes) > 0 && c.tx.tryPush(c.pushes[0].sga) {
				p := c.pushes[0]
				c.pushes = c.pushes[1:]
				l.node.Charge(costmodel.ShmRingOp)
				l.stats.Pushes++
				l.bumpPush(c.tenant)
				l.dt.RingPush(p.sga.TraceCtx(), int64(l.node.Now()))
				l.stallHist.Observe(int64(l.node.Now().Sub(p.parkedAt)))
				p.op.Complete(core.QEvent{QD: c.qd, Op: core.OpPush})
				c.wakePeer()
				progress = true
			}
			if len(c.pushes) > 0 {
				l.armStallRetry()
			}
		}
	}
	return progress
}

// failParkedPushes frees and fails every parked push: the queue accepted
// the buffers and can no longer deliver them, so it frees them.
func (c *conn) failParkedPushes() {
	for _, p := range c.pushes {
		p.sga.Free()
		p.op.Fail(c.qd, core.OpPush, core.ErrQueueClosed)
	}
	c.pushes = nil
}

// drainFree reclaims every undelivered buffer still in the endpoint's
// receive ring — called when this side can never pop again.
func (c *conn) drainFree() {
	for {
		sga, ok := c.rx.tryPop()
		if !ok {
			return
		}
		sga.Free()
	}
}

// close releases this endpoint. The peer keeps draining what we already
// pushed (half-close); our own undrained rx data is freed here since the
// descriptor is gone.
func (c *conn) close() {
	if c.closed || c.dead {
		return
	}
	c.closed = true
	for _, op := range c.pops {
		op.Fail(c.qd, core.OpPop, core.ErrQueueClosed)
	}
	c.pops = nil
	c.failParkedPushes()
	c.drainFree()
	if p := c.peer; p != nil {
		p.peerClosed = true
		c.wakePeer()
	}
}

// killPair is the peer-death fault: both endpoints die abruptly, every
// parked operation fails, and all in-flight buffers are reclaimed.
func (c *conn) killPair() {
	c.lib.stats.PeerDeaths++
	for _, e := range []*conn{c, c.peer} {
		if e == nil || e.dead {
			continue
		}
		e.dead = true
		for _, op := range e.pops {
			op.Fail(e.qd, core.OpPop, core.ErrQueueClosed)
		}
		e.pops = nil
		e.failParkedPushes()
		if !e.closed {
			e.drainFree()
		}
	}
	c.wakePeer()
}

// finished reports whether the endpoint can be dropped from the Step scan.
func (c *conn) finished() bool {
	return (c.closed || c.dead) && len(c.pops) == 0 && len(c.pushes) == 0
}

// armStallRetry schedules a self-wakeup so parked pushes are retried
// after a RingFull window even if no peer activity wakes the node. One
// wakeup is kept in flight at a time.
func (l *LibOS) armStallRetry() {
	now := l.node.Now()
	if l.stallWakeAt > now {
		return
	}
	d := l.flts.RingFull.Spec().Duration
	if d <= 0 {
		d = l.region.handoff
	}
	l.stallWakeAt = now.Add(d)
	l.region.eng.At(l.stallWakeAt, l.node, nil)
}

// --- Runner (drives the Waiter) ---

// Step delivers rendezvous completions and ring progress for one quantum.
func (l *LibOS) Step() bool {
	l.node.Charge(costmodel.SchedQuantum)
	for _, ln := range l.listens {
		if ln.closed {
			continue
		}
		if len(ln.backlog) > 0 && len(ln.accepts) > 0 {
			c := ln.backlog[0]
			ln.backlog = ln.backlog[1:]
			op := ln.accepts[0]
			ln.accepts = ln.accepts[1:]
			ln.complete(op, c)
			return true
		}
	}
	progress := false
	kept := l.conns[:0]
	for _, c := range l.conns {
		if c.step() {
			progress = true
		}
		if !c.finished() {
			kept = append(kept, c)
		}
	}
	for i := len(kept); i < len(l.conns); i++ {
		l.conns[i] = nil
	}
	l.conns = kept
	return progress
}

// Block parks the node until an event (peer push/pop, rendezvous, stall
// retry) or the deadline.
func (l *LibOS) Block(deadline sim.Time) bool { return l.node.Park(deadline) }

// Now returns the node's virtual clock.
func (l *LibOS) Now() sim.Time { return l.node.Now() }

// TryTake redeems a completed qtoken (demi.Drivable).
func (l *LibOS) TryTake(qt core.QToken) (core.QEvent, bool, error) {
	return l.tokens.TryTake(qt)
}

// --- PDPIX entry points ---

// Socket creates a stream socket (shared-memory queues are
// connection-oriented; there is no datagram flavor).
func (l *LibOS) Socket(t core.SockType) (core.QDesc, error) {
	l.node.Charge(costmodel.Libcall)
	if t != core.SockStream {
		return core.InvalidQD, core.ErrNotSupported
	}
	return l.qds.Insert(&sockQueue{tenant: l.curTenant}), nil
}

// Queue creates an in-memory queue bounded at the region's ring capacity.
func (l *LibOS) Queue() (core.QDesc, error) {
	l.node.Charge(costmodel.Libcall)
	qd := l.qds.Insert(nil)
	l.qds.Restore(qd, core.NewBoundedMemQueue(qd, l.region.slots))
	return qd, nil
}

// Open is not supported: catmem has no storage stack.
func (l *LibOS) Open(name string) (core.QDesc, error) {
	return core.InvalidQD, core.ErrNotSupported
}

// Bind claims a rendezvous port in the region's namespace. Only the IP's
// port matters — the region is one host.
func (l *LibOS) Bind(qd core.QDesc, addr core.Addr) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	s, ok := q.(*sockQueue)
	if !ok {
		return core.ErrNotSupported
	}
	if s.bound {
		return core.ErrInUse
	}
	if _, used := l.region.listeners[addr.Port]; used {
		return core.ErrInUse
	}
	s.port = addr.Port
	s.bound = true
	return nil
}

// Listen publishes the bound port for rendezvous.
func (l *LibOS) Listen(qd core.QDesc, backlog int) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	s, ok := q.(*sockQueue)
	if !ok {
		return core.ErrNotSupported
	}
	if !s.bound {
		return core.ErrNotBound
	}
	if _, used := l.region.listeners[s.port]; used {
		return core.ErrInUse
	}
	ln := &listener{lib: l, qd: qd, port: s.port, tenant: s.tenant}
	l.qds.Restore(qd, ln)
	l.region.listeners[s.port] = ln
	l.listens = append(l.listens, ln)
	return nil
}

// Accept asks for the next rendezvous on a listening queue.
func (l *LibOS) Accept(qd core.QDesc) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	ln, ok := q.(*listener)
	if !ok {
		return core.InvalidQToken, core.ErrNotSupported
	}
	op := l.tokens.New()
	if len(ln.backlog) > 0 {
		c := ln.backlog[0]
		ln.backlog = ln.backlog[1:]
		ln.complete(op, c)
	} else {
		ln.accepts = append(ln.accepts, op)
	}
	return op.Token(), nil
}

// complete finishes an accept: the server-side endpoint gets its
// descriptor and joins the instance's scan set.
func (ln *listener) complete(op *core.Op, c *conn) {
	l := ln.lib
	c.qd = l.qds.Insert(c)
	l.adopt(c)
	l.stats.Accepts++
	op.Complete(core.QEvent{QD: ln.qd, Op: core.OpAccept, NewQD: c.qd})
}

// adopt adds a connected endpoint to the Step scan and publishes its
// depth gauge (descriptor numbering is deterministic, so gauge names
// replay identically).
func (l *LibOS) adopt(c *conn) {
	l.conns = append(l.conns, c)
	r := c.rx
	l.reg.Sample(fmt.Sprintf("catmem.q%d.depth", c.qd), func() int64 { return int64(r.depth()) })
}

// Connect performs the rendezvous: a duplex ring pair is carved and the
// server-side endpoint is queued for accept. Shared-memory connect needs
// no handshake round trip, so the op completes immediately.
func (l *LibOS) Connect(qd core.QDesc, addr core.Addr) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	sq, ok := q.(*sockQueue)
	if !ok {
		return core.InvalidQToken, core.ErrNotSupported
	}
	op := l.tokens.New()
	ln := l.region.listeners[addr.Port]
	if ln == nil || ln.closed {
		op.Fail(qd, core.OpConnect, core.ErrConnRefused)
		return op.Token(), nil
	}
	c2s := newRing(l.region.slots)
	s2c := newRing(l.region.slots)
	cli := &conn{lib: l, qd: qd, tenant: sq.tenant, rx: s2c, tx: c2s}
	srv := &conn{lib: ln.lib, tenant: ln.tenant, rx: c2s, tx: s2c}
	cli.peer = srv
	srv.peer = cli
	l.qds.Restore(qd, cli)
	l.adopt(cli)
	ln.backlog = append(ln.backlog, srv)
	l.stats.Connects++
	op.Complete(core.QEvent{QD: qd, Op: core.OpConnect, NewQD: qd})
	cli.wakePeer() // let the listener's Step deliver the accept
	return op.Token(), nil
}

// Close releases a queue.
func (l *LibOS) Close(qd core.QDesc) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *conn:
		s.close()
	case *listener:
		s.closed = true
		delete(l.region.listeners, s.port)
		for _, op := range s.accepts {
			op.Fail(qd, core.OpAccept, core.ErrQueueClosed)
		}
		s.accepts = nil
		for _, c := range s.backlog {
			c.close() // never accepted: the client sees EOF
		}
		s.backlog = nil
	case *core.MemQueue:
		s.Destroy() // descriptor gone: free undrained data, never leak
	}
	l.qds.Remove(qd)
	return nil
}

// Push hands sga to the peer; see the package comment for the ownership
// contract (the producer never frees after a successful call).
func (l *LibOS) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	if len(sga.Segs) == 0 {
		return core.InvalidQToken, core.ErrEmptySGA
	}
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *conn:
		op := l.tokens.New()
		s.push(op, sga)
		return op.Token(), nil
	case *core.MemQueue:
		op := l.tokens.New()
		op.Trace(sga.TraceCtx())
		s.Push(op, sga)
		return op.Token(), nil
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
}

// PushTo is unsupported: shared-memory queues are connection-oriented.
func (l *LibOS) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	return core.InvalidQToken, core.ErrNotSupported
}

// Pop asks for the next scatter-gather array on the queue.
//
//demi:budget=5us static estimate 3.124us; pop arming is on the request fast path
func (l *LibOS) Pop(qd core.QDesc) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *conn:
		op := l.tokens.New()
		s.pop(op)
		return op.Token(), nil
	case *core.MemQueue:
		op := l.tokens.New()
		s.Pop(op)
		return op.Token(), nil
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
}

// Wait blocks until qt completes.
func (l *LibOS) Wait(qt core.QToken) (core.QEvent, error) { return l.waiter.Wait(qt) }

// WaitAny blocks until one of qts completes.
func (l *LibOS) WaitAny(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	return l.waiter.WaitAny(qts, timeout)
}

// WaitAll blocks until all of qts complete.
func (l *LibOS) WaitAll(qts []core.QToken, timeout time.Duration) ([]core.QEvent, error) {
	return l.waiter.WaitAll(qts, timeout)
}

// Interface conformance: Catmem is a full PDPIX libOS and externally
// drivable (baseline wrappers, chaos harness).
var (
	_ demi.LibOS    = (*LibOS)(nil)
	_ demi.Drivable = (*LibOS)(nil)
)
