package catmem

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/faults"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
)

// duo builds a region with a server and a client instance on one engine.
func duo(seed uint64) (*sim.Engine, *Region, *LibOS, *LibOS) {
	eng := sim.NewEngine(seed)
	r := NewRegion(eng)
	srv := r.New(eng.NewNode("shm-srv"))
	cli := r.New(eng.NewNode("shm-cli"))
	return eng, r, srv, cli
}

// listen sets up a listening socket on port.
func listen(t *testing.T, l *LibOS, port uint16) core.QDesc {
	t.Helper()
	qd, err := l.Socket(core.SockStream)
	if err != nil {
		t.Fatalf("socket: %v", err)
	}
	if err := l.Bind(qd, core.Addr{Port: port}); err != nil {
		t.Fatalf("bind: %v", err)
	}
	if err := l.Listen(qd, 8); err != nil {
		t.Fatalf("listen: %v", err)
	}
	return qd
}

// dial connects and returns the connected queue.
func dial(t *testing.T, l *LibOS, port uint16) core.QDesc {
	t.Helper()
	qd, err := l.Socket(core.SockStream)
	if err != nil {
		t.Fatalf("socket: %v", err)
	}
	qt, err := l.Connect(qd, core.Addr{Port: port})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	ev, err := l.Wait(qt)
	if err != nil || ev.Err != nil {
		t.Fatalf("connect wait: %v %v", err, ev.Err)
	}
	return qd
}

func push(t *testing.T, l *LibOS, qd core.QDesc, p []byte) core.QToken {
	t.Helper()
	qt, err := l.Push(qd, core.SGA(memory.CopyFrom(l.Heap(), p)))
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	return qt
}

// checkClean asserts no leaked buffers and no outstanding qtokens.
func checkClean(t *testing.T, r *Region, libs ...*LibOS) {
	t.Helper()
	if n := r.Heap().LiveObjects(); n != 0 {
		t.Errorf("leaked %d heap objects", n)
	}
	for _, l := range libs {
		if n := l.Tokens().Outstanding(); n != 0 {
			t.Errorf("%s: %d qtokens still outstanding", l.Node().Name(), n)
		}
	}
}

func TestCatmemEcho(t *testing.T) {
	eng, r, srv, cli := duo(1)
	eng.Spawn(srv.Node(), func() {
		lqd := listen(t, srv, 7000)
		aqt, _ := srv.Accept(lqd)
		ev, err := srv.Wait(aqt)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		conn := ev.NewQD
		for {
			pqt, _ := srv.Pop(conn)
			ev, err := srv.Wait(pqt)
			if err != nil || ev.Err != nil {
				t.Errorf("server pop: %v %v", err, ev.Err)
				return
			}
			if len(ev.SGA.Segs) == 0 { // EOF
				srv.Close(conn)
				srv.Close(lqd)
				return
			}
			// Zero-copy echo: push the popped SGA back as-is. Ownership
			// transfers to the queue — no Free on this side.
			wqt, err := srv.Push(conn, ev.SGA)
			if err != nil {
				t.Errorf("server push: %v", err)
				return
			}
			if _, err := srv.Wait(wqt); err != nil {
				return
			}
		}
	})
	var got []byte
	eng.Spawn(cli.Node(), func() {
		qd := dial(t, cli, 7000)
		push(t, cli, qd, []byte("hello catmem"))
		pqt, _ := cli.Pop(qd)
		ev, err := cli.Wait(pqt)
		if err != nil || ev.Err != nil {
			t.Errorf("client pop: %v %v", err, ev.Err)
			return
		}
		got = ev.SGA.Flatten()
		ev.SGA.Free()
		cli.Close(qd)
	})
	eng.Run()
	if string(got) != "hello catmem" {
		t.Fatalf("echo = %q", got)
	}
	checkClean(t, r, srv, cli)
}

// TestCatmemZeroCopy is the acceptance check: the buffer the consumer pops
// is the very *memory.Buf the producer pushed — same pointer, no copy.
func TestCatmemZeroCopy(t *testing.T) {
	eng, r, srv, cli := duo(2)
	var popped *memory.Buf
	eng.Spawn(srv.Node(), func() {
		lqd := listen(t, srv, 7001)
		aqt, _ := srv.Accept(lqd)
		ev, err := srv.Wait(aqt)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		pqt, _ := srv.Pop(ev.NewQD)
		pev, err := srv.Wait(pqt)
		if err != nil || pev.Err != nil || len(pev.SGA.Segs) == 0 {
			t.Errorf("pop: %v %v", err, pev.Err)
			return
		}
		popped = pev.SGA.Segs[0]
		pev.SGA.Free()
		srv.Close(ev.NewQD)
		srv.Close(lqd)
	})
	var pushed *memory.Buf
	eng.Spawn(cli.Node(), func() {
		qd := dial(t, cli, 7001)
		pushed = memory.CopyFrom(cli.Heap(), []byte("same bytes, same buffer"))
		qt, err := cli.Push(qd, core.SGA(pushed))
		if err != nil {
			t.Errorf("push: %v", err)
			return
		}
		if _, err := cli.Wait(qt); err != nil {
			t.Errorf("push wait: %v", err)
		}
		cli.Close(qd)
	})
	eng.Run()
	if pushed == nil || popped == nil {
		t.Fatal("datapath did not run")
	}
	if pushed != popped {
		t.Fatalf("not zero-copy: pushed %p, popped %p", pushed, popped)
	}
	checkClean(t, r, srv, cli)
}

// TestCatmemBackpressure fills a tiny ring: excess pushes park and complete
// only as the consumer drains slots.
func TestCatmemBackpressure(t *testing.T) {
	eng, r, srv, cli := duo(3)
	r.SetRingSlots(2)
	const msgs = 8
	eng.Spawn(srv.Node(), func() {
		lqd := listen(t, srv, 7002)
		aqt, _ := srv.Accept(lqd)
		ev, err := srv.Wait(aqt)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		// Let the producer hit the ring limit before draining.
		srv.Node().Park(srv.Now().Add(10 * time.Microsecond))
		for i := 0; i < msgs; i++ {
			pqt, _ := srv.Pop(ev.NewQD)
			pev, err := srv.Wait(pqt)
			if err != nil || pev.Err != nil {
				t.Errorf("pop %d: %v %v", i, err, pev.Err)
				return
			}
			pev.SGA.Free()
		}
		srv.Close(ev.NewQD)
		srv.Close(lqd)
	})
	eng.Spawn(cli.Node(), func() {
		qd := dial(t, cli, 7002)
		qts := make([]core.QToken, 0, msgs)
		for i := 0; i < msgs; i++ {
			qts = append(qts, push(t, cli, qd, bytes.Repeat([]byte{byte(i)}, 16)))
		}
		evs, err := cli.WaitAll(qts, -1)
		if err != nil {
			t.Errorf("waitall: %v", err)
			return
		}
		for i, ev := range evs {
			if ev.Err != nil {
				t.Errorf("push %d failed: %v", i, ev.Err)
			}
		}
		cli.Close(qd)
	})
	eng.Run()
	if cli.Stats().Stalls == 0 {
		t.Fatal("expected parked pushes on a 2-slot ring")
	}
	if got := cli.Stats().Pushes; got != msgs {
		t.Fatalf("pushes = %d, want %d", got, msgs)
	}
	checkClean(t, r, srv, cli)
}

// TestCatmemHalfCloseDrain: after the producer closes, buffered data stays
// poppable; only then does the consumer see EOF.
func TestCatmemHalfCloseDrain(t *testing.T) {
	eng, r, srv, cli := duo(4)
	var got []string
	eng.Spawn(srv.Node(), func() {
		lqd := listen(t, srv, 7003)
		aqt, _ := srv.Accept(lqd)
		ev, err := srv.Wait(aqt)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		// Sleep long enough that the client has pushed both messages and
		// closed before the first pop.
		srv.Node().Park(srv.Now().Add(50 * time.Microsecond))
		for {
			pqt, _ := srv.Pop(ev.NewQD)
			pev, err := srv.Wait(pqt)
			if err != nil || pev.Err != nil {
				t.Errorf("pop: %v %v", err, pev.Err)
				return
			}
			if len(pev.SGA.Segs) == 0 {
				srv.Close(ev.NewQD)
				srv.Close(lqd)
				return
			}
			got = append(got, string(pev.SGA.Flatten()))
			pev.SGA.Free()
		}
	})
	eng.Spawn(cli.Node(), func() {
		qd := dial(t, cli, 7003)
		qt1 := push(t, cli, qd, []byte("first"))
		qt2 := push(t, cli, qd, []byte("second"))
		cli.WaitAll([]core.QToken{qt1, qt2}, -1)
		cli.Close(qd)
	})
	eng.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("drained %q, want [first second]", got)
	}
	checkClean(t, r, srv, cli)
}

func TestCatmemConnectRefused(t *testing.T) {
	eng, r, _, cli := duo(5)
	var gotErr error
	eng.Spawn(cli.Node(), func() {
		qd, _ := cli.Socket(core.SockStream)
		qt, err := cli.Connect(qd, core.Addr{Port: 7999})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		ev, err := cli.Wait(qt)
		if err != nil {
			t.Errorf("wait: %v", err)
			return
		}
		gotErr = ev.Err
		cli.Close(qd)
	})
	eng.Run()
	if gotErr != core.ErrConnRefused {
		t.Fatalf("connect err = %v, want ErrConnRefused", gotErr)
	}
	checkClean(t, r, cli)
}

// TestCatmemPeerDeath: the fault site kills the pair mid-stream; both sides
// observe ErrQueueClosed and every in-flight buffer is reclaimed.
func TestCatmemPeerDeath(t *testing.T) {
	eng, r, srv, cli := duo(6)
	plan := faults.NewPlan(6)
	cli.SetFaults(Faults{
		PeerDeath: plan.Site("catmem.peer_death", faults.Spec{Every: 5}),
	})
	srvErrs, cliErrs := 0, 0
	eng.Spawn(srv.Node(), func() {
		lqd := listen(t, srv, 7004)
		aqt, _ := srv.Accept(lqd)
		ev, err := srv.Wait(aqt)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		for {
			pqt, _ := srv.Pop(ev.NewQD)
			pev, err := srv.Wait(pqt)
			if err != nil || pev.Err != nil {
				srvErrs++
				srv.Close(ev.NewQD)
				srv.Close(lqd)
				return
			}
			if len(pev.SGA.Segs) == 0 {
				srv.Close(ev.NewQD)
				srv.Close(lqd)
				return
			}
			pev.SGA.Free()
		}
	})
	eng.Spawn(cli.Node(), func() {
		qd := dial(t, cli, 7004)
		for i := 0; i < 10; i++ {
			sga := core.SGA(memory.CopyFrom(cli.Heap(), []byte("doomed")))
			qt, err := cli.Push(qd, sga)
			if err != nil {
				cliErrs++
				break
			}
			ev, err := cli.Wait(qt)
			if err != nil || ev.Err != nil {
				cliErrs++
				break
			}
		}
		cli.Close(qd)
	})
	eng.Run()
	if cliErrs == 0 {
		t.Fatal("peer-death fault never surfaced to the producer")
	}
	if cli.Stats().PeerDeaths == 0 {
		t.Fatal("PeerDeaths counter not incremented")
	}
	if plan.Fired("catmem.peer_death") == 0 {
		t.Fatal("site never fired")
	}
	checkClean(t, r, srv, cli)
}

// TestCatmemRingFullStall: a RingFull window parks pushes even with free
// slots; the stall-retry wakeup resumes them after the window closes.
func TestCatmemRingFullStall(t *testing.T) {
	eng, r, srv, cli := duo(7)
	plan := faults.NewPlan(7)
	cli.SetFaults(Faults{
		RingFull: plan.Site("catmem.ring_full", faults.Spec{
			Every:    3,
			Max:      1,
			Duration: 5 * time.Microsecond,
		}),
	})
	const msgs = 6
	received := 0
	eng.Spawn(srv.Node(), func() {
		lqd := listen(t, srv, 7005)
		aqt, _ := srv.Accept(lqd)
		ev, err := srv.Wait(aqt)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		for {
			pqt, _ := srv.Pop(ev.NewQD)
			pev, err := srv.Wait(pqt)
			if err != nil || pev.Err != nil {
				t.Errorf("pop: %v %v", err, pev.Err)
				return
			}
			if len(pev.SGA.Segs) == 0 {
				srv.Close(ev.NewQD)
				srv.Close(lqd)
				return
			}
			received++
			pev.SGA.Free()
		}
	})
	eng.Spawn(cli.Node(), func() {
		qd := dial(t, cli, 7005)
		for i := 0; i < msgs; i++ {
			qt := push(t, cli, qd, []byte("through the stall"))
			ev, err := cli.Wait(qt)
			if err != nil || ev.Err != nil {
				t.Errorf("push %d: %v %v", i, err, ev.Err)
				return
			}
		}
		cli.Close(qd)
	})
	eng.Run()
	if received != msgs {
		t.Fatalf("received %d/%d messages", received, msgs)
	}
	if cli.Stats().Stalls == 0 {
		t.Fatal("RingFull window never stalled a push")
	}
	if plan.Fired("catmem.ring_full") == 0 {
		t.Fatal("site never fired")
	}
	checkClean(t, r, srv, cli)
}

// TestCatmemDeterminism: the same seed replays to byte-identical telemetry.
func TestCatmemDeterminism(t *testing.T) {
	run := func() string {
		eng, _, srv, cli := duo(11)
		eng.Spawn(srv.Node(), func() {
			lqd := listen(t, srv, 7006)
			aqt, _ := srv.Accept(lqd)
			ev, err := srv.Wait(aqt)
			if err != nil {
				return
			}
			for {
				pqt, _ := srv.Pop(ev.NewQD)
				pev, err := srv.Wait(pqt)
				if err != nil || pev.Err != nil || len(pev.SGA.Segs) == 0 {
					srv.Close(ev.NewQD)
					srv.Close(lqd)
					return
				}
				wqt, err := srv.Push(ev.NewQD, pev.SGA)
				if err != nil {
					return
				}
				srv.Wait(wqt)
			}
		})
		eng.Spawn(cli.Node(), func() {
			qd := dial(t, cli, 7006)
			for i := 0; i < 32; i++ {
				qt := push(t, cli, qd, bytes.Repeat([]byte{byte(i)}, 64))
				if ev, err := cli.Wait(qt); err != nil || ev.Err != nil {
					return
				}
				pqt, _ := cli.Pop(qd)
				ev, err := cli.Wait(pqt)
				if err != nil || ev.Err != nil {
					return
				}
				ev.SGA.Free()
			}
			cli.Close(qd)
		})
		eng.Run()
		var sb strings.Builder
		srv.Telemetry().Snapshot().WriteText(&sb)
		cli.Telemetry().Snapshot().WriteText(&sb)
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed telemetry differs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "catmem.pushes") {
		t.Fatalf("telemetry missing catmem stats:\n%s", a)
	}
}

// TestCatmemQueue exercises the bounded in-memory queue descriptor type.
func TestCatmemQueue(t *testing.T) {
	eng, r, _, cli := duo(12)
	eng.Spawn(cli.Node(), func() {
		qd, err := cli.Queue()
		if err != nil {
			t.Errorf("queue: %v", err)
			return
		}
		qt := push(t, cli, qd, []byte("mem"))
		if ev, err := cli.Wait(qt); err != nil || ev.Err != nil {
			t.Errorf("push: %v %v", err, ev.Err)
			return
		}
		pqt, _ := cli.Pop(qd)
		ev, err := cli.Wait(pqt)
		if err != nil || ev.Err != nil {
			t.Errorf("pop: %v %v", err, ev.Err)
			return
		}
		if string(ev.SGA.Flatten()) != "mem" {
			t.Errorf("got %q", ev.SGA.Flatten())
		}
		ev.SGA.Free()
		cli.Close(qd)
	})
	eng.Run()
	checkClean(t, r, cli)
}
