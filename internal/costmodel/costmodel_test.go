package costmodel

import (
	"testing"
	"time"
)

func TestMemcpyScalesLinearly(t *testing.T) {
	if Memcpy(0) != 0 {
		t.Error("zero-byte copy should be free")
	}
	if Memcpy(32<<10) != 1024*time.Nanosecond {
		t.Errorf("32 KiB copy = %v, want 1024ns at 32 B/ns", Memcpy(32<<10))
	}
	if Memcpy(64) >= Memcpy(6400) {
		t.Error("memcpy not monotone")
	}
}

func TestArchitecturalOrderings(t *testing.T) {
	// The cost model must preserve the paper's architectural relations.
	if Libcall >= Syscall {
		t.Error("a libcall must be cheaper than a kernel crossing")
	}
	if TCPIngress >= KernelTCPRx {
		t.Error("Catnip's TCP must be cheaper than the kernel's")
	}
	if CaladanPerPacket >= ShenangoPerPacket+2*CoreHop {
		t.Error("run-to-completion must beat the IOKernel hop")
	}
	if IOUringSubmit >= Syscall+EpollWait {
		t.Error("io_uring must be cheaper than syscall+epoll")
	}
}
