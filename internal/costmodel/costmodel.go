// Package costmodel centralizes the virtual-CPU costs charged by library
// OSes, device shims and baselines under simulation. The constants are
// calibrated from component costs the paper itself reports (per-I/O libOS
// overheads in §7.3, Linux/kernel costs implied by Figure 5) plus standard
// published numbers for kernel crossings; EXPERIMENTS.md carries the
// calibration table. Absolute values matter less than the architectural
// ratios they encode — which path copies, which path crosses the kernel,
// which path hops cores.
package costmodel

import "time"

// Demikernel datapath costs (paper §7.3: Catmint ≈250 ns/I/O, Catnip
// ≈125 ns/UDP packet, ≈200 ns/TCP packet, §6.3: 53 ns TCP ingress).
const (
	// Libcall is the PDPIX library-call entry/exit (no kernel crossing).
	Libcall = 25 * time.Nanosecond
	// SchedQuantum is one coroutine context switch + scheduler decision.
	SchedQuantum = 8 * time.Nanosecond
	// PollEmpty is one empty device poll (rx burst finding nothing).
	PollEmpty = 15 * time.Nanosecond

	// TCPIngress is Catnip's in-order TCP segment processing + dispatch.
	TCPIngress = 53 * time.Nanosecond
	// TCPEgress is Catnip's TCP segmentation + header build + submit.
	TCPEgress = 90 * time.Nanosecond
	// UDPIngress and UDPEgress are Catnip's UDP datapath costs.
	UDPIngress = 55 * time.Nanosecond
	UDPEgress  = 60 * time.Nanosecond
	// ARPProcess handles one ARP packet.
	ARPProcess = 40 * time.Nanosecond

	// RDMAPostSend is Catmint's work-request build + doorbell.
	RDMAPostSend = 120 * time.Nanosecond
	// RDMAPollCQE is Catmint's per-completion processing.
	RDMAPollCQE = 100 * time.Nanosecond

	// SPDKSubmit and SPDKComplete are Cattree's per-command costs.
	SPDKSubmit   = 100 * time.Nanosecond
	SPDKComplete = 80 * time.Nanosecond
)

// Kernel-path costs (Linux baselines; Li et al. "Tales of the Tail" and
// io_uring literature give the same order).
const (
	// Syscall is one user/kernel crossing, mitigations included.
	Syscall = 600 * time.Nanosecond
	// KernelTCPRx/Tx is the in-kernel TCP stack cost per packet,
	// including skb management and softirq share.
	KernelTCPRx = 2500 * time.Nanosecond
	KernelTCPTx = 2200 * time.Nanosecond
	// KernelUDPRx/Tx is the in-kernel UDP path.
	KernelUDPRx = 1800 * time.Nanosecond
	KernelUDPTx = 1600 * time.Nanosecond
	// KernelBlockIO is the kernel block layer + ext4 journalling cost per
	// synchronous write, excluding device time.
	KernelBlockIO = 8 * time.Microsecond
	// EpollWait is the cost of an epoll_wait returning one event.
	EpollWait = 1200 * time.Nanosecond
	// IOUringSubmit is the amortized per-op cost of io_uring
	// submission+completion via shared rings (cheaper than syscalls).
	IOUringSubmit = 700 * time.Nanosecond
	// WakeFromSleep is scheduler wakeup latency when a blocked kernel
	// thread becomes runnable (epoll path pays it; polling does not).
	WakeFromSleep = 5 * time.Microsecond
)

// Architecture costs for the kernel-bypass comparators.
const (
	// CoreHop is a cross-core handoff through a shared-memory queue
	// (Shenango/Caladan IOKernel -> worker), including cache transfer.
	CoreHop = 600 * time.Nanosecond
	// RawDPDKPerPacket is testpmd-style L2 forwarding work per packet.
	RawDPDKPerPacket = 30 * time.Nanosecond
	// RawRDMAPerIO is perftest-style per-operation host work.
	RawRDMAPerIO = 50 * time.Nanosecond
	// ERPCPerIO is eRPC's per-RPC host processing (carefully tuned,
	// paper: ~0.2 µs below Catmint's RTT share).
	ERPCPerIO = 150 * time.Nanosecond
	// ShenangoPerPacket is Shenango's per-packet IOKernel work, added to
	// the CoreHop each direction.
	ShenangoPerPacket = 250 * time.Nanosecond
	// CaladanPerPacket is Caladan's run-to-completion per-packet work on
	// the directly-attached OFED queue.
	CaladanPerPacket = 180 * time.Nanosecond
)

// Intra-host transport costs (catmem shared-memory queues and the catloop
// in-process wire).
const (
	// ShmRingOp is one lock-free ring slot operation (enqueue or dequeue)
	// on a shared-memory queue: an index update plus one cache-line write.
	ShmRingOp = 25 * time.Nanosecond
	// ShmHandoff is the consumer-side latency of a cross-core buffer
	// handoff through shared memory: the cache-line transfer plus the
	// poll that observes it.
	ShmHandoff = 100 * time.Nanosecond
	// LoopbackWire is the in-process wire latency of the catloop hub: a
	// frame handed between two TCP stacks in one address space (memcpy
	// plus a wakeup, no NIC or PCIe crossing).
	LoopbackWire = 300 * time.Nanosecond
)

// Environment profiles (Figure 6).
const (
	// WSLSyscallFactor multiplies kernel-crossing costs under the Windows
	// Subsystem for Linux translation layer.
	WSLSyscallFactor = 12
	// AzureVNICHop is the SmartNIC vnet translation added to each DPDK
	// packet in an Azure VM (paper §7.3: DPDK "still goes through the
	// Azure virtualization layer").
	AzureVNICHop = 1500 * time.Nanosecond
	// AzureKernelFactor multiplies kernel network-stack costs inside a VM
	// (vmexits, paravirt queues).
	AzureKernelFactor = 2
)

// memBandwidth is the modelled memcpy bandwidth (bytes/ns): ~32 GB/s.
const memBandwidth = 32

// Memcpy returns the CPU cost of copying n bytes.
func Memcpy(n int) time.Duration {
	return time.Duration(n/memBandwidth) * time.Nanosecond
}
