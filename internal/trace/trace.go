// Package trace records packet traces with timings from a Catnip stack and
// replays them. This reproduces the paper's §6.3 debugging methodology:
// "Catnip is able to control all inputs to the TCP stack, including packets
// and time, which let us easily debug the stack by feeding it a trace with
// packet timings." A recorded ingress trace fed to a fresh stack at the
// same virtual instants yields a bit-identical egress trace.
package trace

import (
	"encoding/binary"
	"fmt"

	"demikernel/internal/sim"
)

// Dir is a packet direction relative to the traced stack.
type Dir byte

const (
	// RX is a frame entering the stack.
	RX Dir = 'R'
	// TX is a frame leaving the stack.
	TX Dir = 'T'
)

// Event is one traced frame.
type Event struct {
	At   sim.Time
	Dir  Dir
	Data []byte
}

// Log is an append-only packet trace. It implements catnip's Tracer hook.
type Log struct {
	Events []Event
}

// RecordFrame implements the tracer hook: it copies the frame so later
// mutation cannot corrupt the trace.
func (l *Log) RecordFrame(dir byte, at sim.Time, data []byte) {
	l.Events = append(l.Events, Event{
		At:   at,
		Dir:  Dir(dir),
		Data: append([]byte(nil), data...),
	})
}

// Filter returns the events with the given direction.
func (l *Log) Filter(dir Dir) []Event {
	var out []Event
	for _, e := range l.Events {
		if e.Dir == dir {
			out = append(out, e)
		}
	}
	return out
}

// Equal compares two traces byte-for-byte including timings.
func Equal(a, b []Event) error {
	if len(a) != len(b) {
		return fmt.Errorf("trace: %d events vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At {
			return fmt.Errorf("trace: event %d at %v vs %v", i, a[i].At, b[i].At)
		}
		if a[i].Dir != b[i].Dir {
			return fmt.Errorf("trace: event %d dir %c vs %c", i, a[i].Dir, b[i].Dir)
		}
		if string(a[i].Data) != string(b[i].Data) {
			return fmt.Errorf("trace: event %d payload differs (%d vs %d bytes)",
				i, len(a[i].Data), len(b[i].Data))
		}
	}
	return nil
}

// EqualData compares two traces' directions and payloads, ignoring
// timestamps: the determinism property replay debugging relies on (the
// same ingress must regenerate the same egress bytes in the same order;
// timestamps shift when deliveries coalesce into different poll bursts).
func EqualData(a, b []Event) error {
	if len(a) != len(b) {
		return fmt.Errorf("trace: %d events vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Dir != b[i].Dir {
			return fmt.Errorf("trace: event %d dir %c vs %c", i, a[i].Dir, b[i].Dir)
		}
		if string(a[i].Data) != string(b[i].Data) {
			return fmt.Errorf("trace: event %d payload differs (%d vs %d bytes)",
				i, len(a[i].Data), len(b[i].Data))
		}
	}
	return nil
}

// Encode serializes the log: per event, time(8) dir(1) len(4) data.
func (l *Log) Encode() []byte {
	var out []byte
	for _, e := range l.Events {
		out = binary.BigEndian.AppendUint64(out, uint64(e.At))
		out = append(out, byte(e.Dir))
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.Data)))
		out = append(out, e.Data...)
	}
	return out
}

// Decode parses a serialized log.
func Decode(b []byte) (*Log, error) {
	l := &Log{}
	for len(b) > 0 {
		if len(b) < 13 {
			return nil, fmt.Errorf("trace: truncated event header")
		}
		at := sim.Time(binary.BigEndian.Uint64(b))
		dir := Dir(b[8])
		n := binary.BigEndian.Uint32(b[9:13])
		b = b[13:]
		if uint32(len(b)) < n {
			return nil, fmt.Errorf("trace: truncated event payload")
		}
		l.Events = append(l.Events, Event{At: at, Dir: dir, Data: append([]byte(nil), b[:n]...)})
		b = b[n:]
	}
	return l, nil
}
