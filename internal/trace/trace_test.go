package trace

import (
	"testing"
	"testing/quick"

	"demikernel/internal/sim"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	l := &Log{}
	l.RecordFrame('R', 100, []byte("frame-one"))
	l.RecordFrame('T', 250, []byte{})
	l.RecordFrame('T', 300, []byte{0, 1, 2, 255})
	got, err := Decode(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(l.Events, got.Events); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	l := &Log{}
	l.RecordFrame('R', 1, []byte("abcdef"))
	enc := l.Encode()
	for cut := 1; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := []Event{{At: 1, Dir: RX, Data: []byte("x")}}
	for _, b := range [][]Event{
		{},
		{{At: 2, Dir: RX, Data: []byte("x")}},
		{{At: 1, Dir: TX, Data: []byte("x")}},
		{{At: 1, Dir: RX, Data: []byte("y")}},
	} {
		if Equal(a, b) == nil {
			t.Errorf("Equal missed difference vs %+v", b)
		}
	}
	if err := Equal(a, a); err != nil {
		t.Errorf("Equal rejected identical traces: %v", err)
	}
}

func TestRecordCopiesData(t *testing.T) {
	l := &Log{}
	buf := []byte("mutable")
	l.RecordFrame('R', 1, buf)
	buf[0] = 'X'
	if string(l.Events[0].Data) != "mutable" {
		t.Fatal("trace aliased the caller's buffer")
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(times []int64, payloads [][]byte) bool {
		l := &Log{}
		n := len(times)
		if len(payloads) < n {
			n = len(payloads)
		}
		for i := 0; i < n; i++ {
			dir := byte('R')
			if times[i]%2 == 0 {
				dir = 'T'
			}
			at := times[i]
			if at < 0 {
				at = -at
			}
			l.RecordFrame(dir, sim.Time(at), payloads[i])
		}
		got, err := Decode(l.Encode())
		return err == nil && Equal(l.Events, got.Events) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
