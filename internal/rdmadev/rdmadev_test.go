package rdmadev

import (
	"bytes"
	"testing"

	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
)

// pair builds a connected client/server QP pair on a fresh fabric. The
// server node runs serverFn once connected; the client body runs inline.
func pair(t *testing.T, clientFn func(*NIC, *QP), serverFn func(*NIC, *QP)) *sim.Engine {
	t.Helper()
	eng := sim.NewEngine(3)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	reg := NewRegistry(sw)
	serverNode := eng.NewNode("server")
	clientNode := eng.NewNode("client")
	serverNIC := reg.NewNIC(serverNode, simnet.DefaultLink(), 0)
	clientNIC := reg.NewNIC(clientNode, simnet.DefaultLink(), 0)
	l, err := serverNIC.ListenCM(1)
	if err != nil {
		t.Fatal(err)
	}
	eng.Spawn(serverNode, func() {
		var qp *QP
		for {
			var ok bool
			if qp, ok = l.Accept(); ok {
				break
			}
			if !serverNode.Park(sim.Infinity) {
				return
			}
		}
		serverFn(serverNIC, qp)
	})
	eng.Spawn(clientNode, func() {
		qp, err := clientNIC.ConnectCM(serverNIC.MAC(), 1)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		clientFn(clientNIC, qp)
	})
	eng.Run()
	return eng
}

// waitCQE polls the NIC until a completion arrives, parking between polls.
func waitCQE(nic *NIC) (CQE, bool) {
	for {
		if cqes := nic.PollCQ(1); len(cqes) > 0 {
			return cqes[0], true
		}
		if !nic.node.Park(sim.Infinity) {
			return CQE{}, false
		}
	}
}

func TestSendRecvRoundtrip(t *testing.T) {
	heap := memory.NewHeap(nil)
	msg := []byte("hello over rdma")
	var got []byte
	pair(t,
		func(nic *NIC, qp *QP) { // client
			if err := qp.PostSend("send-ctx", msg); err != nil {
				t.Error(err)
			}
			cqe, ok := waitCQE(nic)
			if !ok {
				return
			}
			if cqe.Op != OpSend || cqe.Ctx != "send-ctx" {
				t.Errorf("send CQE = %+v", cqe)
			}
		},
		func(nic *NIC, qp *QP) { // server
			buf := heap.Alloc(4096)
			qp.PostRecv(buf, "recv-ctx")
			cqe, ok := waitCQE(nic)
			if !ok {
				return
			}
			if cqe.Op != OpRecv || cqe.Ctx != "recv-ctx" {
				t.Fatalf("recv CQE = %+v", cqe)
			}
			got = append([]byte{}, cqe.Buf.Bytes()[:cqe.Len]...)
		})
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q, want %q", got, msg)
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	heap := memory.NewHeap(nil)
	big := make([]byte, 3*WireMTU+123)
	for i := range big {
		big[i] = byte(i * 7)
	}
	var got []byte
	var gotLen int
	eng := pair(t,
		func(nic *NIC, qp *QP) {
			qp.PostSend(nil, big)
		},
		func(nic *NIC, qp *QP) {
			buf := heap.Alloc(len(big))
			qp.PostRecv(buf, nil)
			cqe, ok := waitCQE(nic)
			if !ok {
				return
			}
			gotLen = cqe.Len
			got = append([]byte{}, cqe.Buf.Bytes()[:cqe.Len]...)
		})
	if gotLen != len(big) || !bytes.Equal(got, big) {
		t.Fatalf("reassembly failed: got %d bytes, want %d", gotLen, len(big))
	}
	_ = eng
}

func TestScatterGatherSend(t *testing.T) {
	heap := memory.NewHeap(nil)
	var got []byte
	pair(t,
		func(nic *NIC, qp *QP) {
			qp.PostSend(nil, []byte("header|"), []byte("body"))
		},
		func(nic *NIC, qp *QP) {
			buf := heap.Alloc(64)
			qp.PostRecv(buf, nil)
			cqe, ok := waitCQE(nic)
			if !ok {
				return
			}
			got = append([]byte{}, cqe.Buf.Bytes()[:cqe.Len]...)
		})
	if string(got) != "header|body" {
		t.Errorf("got %q", got)
	}
}

func TestOneSidedWriteLandsInMR(t *testing.T) {
	eng := sim.NewEngine(3)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	reg := NewRegistry(sw)
	serverNode := eng.NewNode("server")
	clientNode := eng.NewNode("client")
	serverNIC := reg.NewNIC(serverNode, simnet.DefaultLink(), 0)
	clientNIC := reg.NewNIC(clientNode, simnet.DefaultLink(), 0)
	window := make([]byte, 16)
	rkey := serverNIC.RegisterMemory(window)
	l, _ := serverNIC.ListenCM(1)
	eng.Spawn(serverNode, func() {
		for {
			if _, ok := l.Accept(); ok {
				break
			}
			if !serverNode.Park(sim.Infinity) {
				return
			}
		}
		// Poll until the write is visible.
		for window[3] == 0 {
			serverNIC.PollCQ(8)
			if !serverNode.Park(sim.Infinity) {
				return
			}
		}
	})
	eng.Spawn(clientNode, func() {
		qp, err := clientNIC.ConnectCM(serverNIC.MAC(), 1)
		if err != nil {
			t.Error(err)
			return
		}
		qp.PostWrite(rkey, 3, []byte{42})
	})
	eng.Run()
	if window[3] != 42 {
		t.Errorf("window[3] = %d, want 42", window[3])
	}
	if serverNIC.Stats().WriteMsgs != 0 || clientNIC.Stats().WriteMsgs != 1 {
		t.Errorf("write accounted on wrong side")
	}
}

func TestRNRDropWhenNoRecvPosted(t *testing.T) {
	var serverNICRef *NIC
	pair(t,
		func(nic *NIC, qp *QP) {
			qp.PostSend(nil, []byte("nobody home"))
			nic.node.Park(nic.node.Now().Add(10 * 1000 * 1000))
		},
		func(nic *NIC, qp *QP) {
			serverNICRef = nic
			// No PostRecv: the message must be dropped and counted.
			for nic.Stats().RNRDrops == 0 {
				nic.PollCQ(8)
				if !nic.node.Park(sim.Infinity) {
					return
				}
			}
		})
	if serverNICRef.Stats().RNRDrops != 1 {
		t.Errorf("RNRDrops = %d, want 1", serverNICRef.Stats().RNRDrops)
	}
}

func TestUndersizedRecvBufferCounted(t *testing.T) {
	heap := memory.NewHeap(nil)
	var nicRef *NIC
	pair(t,
		func(nic *NIC, qp *QP) {
			qp.PostSend(nil, make([]byte, 2048))
			nic.node.Park(nic.node.Now().Add(10 * 1000 * 1000))
		},
		func(nic *NIC, qp *QP) {
			nicRef = nic
			qp.PostRecv(heap.Alloc(64), nil) // too small
			for nic.Stats().RecvTooSmall == 0 {
				nic.PollCQ(8)
				if !nic.node.Park(sim.Infinity) {
					return
				}
			}
		})
	if nicRef.Stats().RecvTooSmall != 1 {
		t.Errorf("RecvTooSmall = %d", nicRef.Stats().RecvTooSmall)
	}
}

func TestSendOnUnconnectedQPFails(t *testing.T) {
	eng := sim.NewEngine(3)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	reg := NewRegistry(sw)
	nic := reg.NewNIC(eng.NewNode("n"), simnet.DefaultLink(), 0)
	qp := nic.newQP()
	if err := qp.PostSend(nil, []byte("x")); err == nil {
		t.Error("send on unconnected QP succeeded")
	}
	if err := qp.PostWrite(1, 0, []byte("x")); err == nil {
		t.Error("write on unconnected QP succeeded")
	}
}

func TestConnectRefusedWithoutListener(t *testing.T) {
	eng := sim.NewEngine(3)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	reg := NewRegistry(sw)
	a := reg.NewNIC(eng.NewNode("a"), simnet.DefaultLink(), 0)
	b := reg.NewNIC(eng.NewNode("b"), simnet.DefaultLink(), 0)
	eng.Spawn(a.node, func() {
		if _, err := a.ConnectCM(b.MAC(), 99); err == nil {
			t.Error("connect to non-listening port succeeded")
		}
	})
	eng.Run()
}

func TestManyMessagesInOrder(t *testing.T) {
	heap := memory.NewHeap(nil)
	const n = 200
	var received []byte
	pair(t,
		func(nic *NIC, qp *QP) {
			for i := 0; i < n; i++ {
				qp.PostSend(nil, []byte{byte(i)})
				nic.node.Charge(100)
			}
		},
		func(nic *NIC, qp *QP) {
			for i := 0; i < n; i++ {
				qp.PostRecv(heap.Alloc(64), nil)
			}
			for len(received) < n {
				for _, cqe := range nic.PollCQ(16) {
					if cqe.Op == OpRecv {
						received = append(received, cqe.Buf.Bytes()[0])
					}
				}
				if len(received) < n && !nic.node.Park(sim.Infinity) {
					return
				}
			}
		})
	if len(received) != n {
		t.Fatalf("received %d, want %d", len(received), n)
	}
	for i, v := range received {
		if v != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, v)
		}
	}
}

func TestCMListenerCloseRejectsPending(t *testing.T) {
	eng := sim.NewEngine(12)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	reg := NewRegistry(sw)
	serverNode := eng.NewNode("server")
	clientNode := eng.NewNode("client")
	serverNIC := reg.NewNIC(serverNode, simnet.DefaultLink(), 0)
	clientNIC := reg.NewNIC(clientNode, simnet.DefaultLink(), 0)
	l, _ := serverNIC.ListenCM(1)
	eng.Spawn(serverNode, func() {
		// Wait for the request to arrive, then close without accepting.
		for !l.Pending() {
			if !serverNode.Park(sim.Infinity) {
				return
			}
		}
		l.Close()
	})
	var connErr error
	eng.Spawn(clientNode, func() {
		_, connErr = clientNIC.ConnectCM(serverNIC.MAC(), 1)
	})
	eng.Run()
	if connErr == nil {
		t.Fatal("connect to closed listener succeeded")
	}
	if _, err := serverNIC.ListenCM(1); err != nil {
		t.Errorf("re-listen after close: %v", err)
	}
}

func TestDoubleListenSamePortFails(t *testing.T) {
	eng := sim.NewEngine(13)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	reg := NewRegistry(sw)
	nic := reg.NewNIC(eng.NewNode("n"), simnet.DefaultLink(), 0)
	if _, err := nic.ListenCM(5); err != nil {
		t.Fatal(err)
	}
	if _, err := nic.ListenCM(5); err == nil {
		t.Fatal("double listen succeeded")
	}
}
