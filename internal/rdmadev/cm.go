package rdmadev

import (
	"fmt"

	"demikernel/internal/sim"
	"demikernel/internal/simnet"
)

// Connection management, modelling rdma_cm: a control-path rendezvous that
// pairs queue pairs across the fabric. It runs through the legacy kernel in
// the real system, so it charges microsecond-scale latency and stays off
// the datapath.

// cmRequest is one in-flight connection attempt.
type cmRequest struct {
	clientNIC *NIC
	clientQP  *QP
	serverQP  *QP
	done      bool
	rejected  bool
}

// Listener accepts inbound connection requests on a CM port.
type Listener struct {
	nic     *NIC
	port    uint16
	pending []*cmRequest
	closed  bool
}

// ListenCM starts listening for connections on the given CM port number.
func (n *NIC) ListenCM(port uint16) (*Listener, error) {
	if _, exists := n.listeners[port]; exists {
		return nil, fmt.Errorf("rdmadev: CM port %d already listening", port)
	}
	l := &Listener{nic: n, port: port}
	n.listeners[port] = l
	return l, nil
}

// Close stops the listener; pending requests are rejected.
func (l *Listener) Close() {
	l.closed = true
	delete(l.nic.listeners, l.port)
	for _, req := range l.pending {
		req.rejected = true
		req.done = true
	}
	l.pending = nil
}

// Pending reports whether a connection request is waiting.
func (l *Listener) Pending() bool { return len(l.pending) > 0 }

// Accept takes the oldest pending connection request, creating and pairing
// a local QP. It returns ok=false when nothing is pending (the caller polls
// or parks on its node).
func (l *Listener) Accept() (*QP, bool) {
	if len(l.pending) == 0 {
		return nil, false
	}
	req := l.pending[0]
	l.pending = l.pending[1:]
	q := l.nic.newQP()
	q.remoteMAC = req.clientNIC.MAC()
	q.remoteQPN = req.clientQP.qpn
	q.connected = true
	req.serverQP = q
	req.done = true
	// Complete the client's half once the CM reply crosses the fabric.
	client := req.clientNIC
	l.nic.node.Engine().At(l.nic.node.Now().Add(cmLatency), client.node, func() {
		req.clientQP.remoteMAC = l.nic.MAC()
		req.clientQP.remoteQPN = q.qpn
		req.clientQP.connected = true
	})
	return q, true
}

// ConnectCM connects to a listener at (remote, port), blocking the caller's
// node until the server accepts or rejects. It returns the connected QP.
func (n *NIC) ConnectCM(remote simnet.MAC, port uint16) (*QP, error) {
	server, ok := n.reg.byMAC[remote]
	if !ok {
		return nil, fmt.Errorf("rdmadev: no NIC at %v", remote)
	}
	l, ok := server.listeners[port]
	if !ok {
		return nil, fmt.Errorf("rdmadev: connection refused at %v port %d", remote, port)
	}
	req := &cmRequest{clientNIC: n, clientQP: n.newQP()}
	// The request reaches the server after the control-path latency.
	n.node.Engine().At(n.node.Now().Add(cmLatency), server.node, func() {
		if l.closed {
			req.rejected = true
			req.done = true
			return
		}
		l.pending = append(l.pending, req)
	})
	for !req.clientQP.connected && !req.rejected {
		if !n.node.Park(sim.Infinity) {
			return nil, fmt.Errorf("rdmadev: engine stopped during connect")
		}
	}
	if req.rejected {
		return nil, fmt.Errorf("rdmadev: connection rejected")
	}
	return req.clientQP, nil
}
