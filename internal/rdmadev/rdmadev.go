// Package rdmadev simulates an RDMA RC (reliable connection) NIC in the
// style of ib_verbs: queue pairs, a completion queue polled by the host,
// registered memory regions with rkeys, two-sided SEND/RECV and one-sided
// WRITE operations. The transport — segmentation to wire MTU, ordered
// reliable delivery — happens inside the device model, mirroring the
// paper's observation that RDMA NICs offload the network protocol, so
// Catmint above only implements connection multiplexing and flow control
// (paper §2.1, §6.2).
//
// The device assumes a lossless fabric (datacenter RoCE with PFC); frames
// arriving out of order or without a posted receive buffer are counted and
// dropped, which Catmint's credit-based flow control prevents in practice.
package rdmadev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"demikernel/internal/faults"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/telemetry"
	"demikernel/internal/wire"
)

// ErrQPError is returned by PostSend/PostWrite on a QP that has entered the
// error state (injected QP error / async disconnect). The QP stays errored
// until destroyed; the application reconnects with a fresh QP, exactly as
// with real verbs hardware.
var ErrQPError = errors.New("rdmadev: queue pair in error state")

// Faults bundles the NIC's injection sites. Any field may be nil.
type Faults struct {
	// QPError transitions the posting QP into the error state: the
	// triggering post and all later posts fail with ErrQPError, and
	// inbound frames for the QP are dropped and counted.
	QPError *faults.Site
}

// WireMTU is the maximum payload carried per fragment frame.
const WireMTU = 4096

// cmLatency models the control-path cost of connection setup through the
// kernel's rdma_cm (microseconds; it is off the datapath).
const cmLatency = 30 * time.Microsecond

// Opcode identifies a completed work request.
type Opcode int

const (
	// OpSend completes a PostSend.
	OpSend Opcode = iota
	// OpRecv completes a PostRecv whose buffer now holds a full message.
	OpRecv
	// OpQPErr is an error completion: the QP entered the error state
	// because the remote side NAKed it (its paired QP failed). The host
	// must tear down its use of the QP; posts now fail with ErrQPError.
	OpQPErr
)

// CQE is a completion queue entry.
//
//demi:carrier completion entries hand the posted receive buffer back to
// the poller; ownership transfers with the entry by the verbs contract.
type CQE struct {
	QPN uint32
	Op  Opcode
	Buf *memory.Buf // OpRecv: the posted buffer
	Len int         // OpRecv: message length within Buf
	Ctx any         // cookie passed at post time
}

// Stats counts NIC activity.
type Stats struct {
	SendMsgs, RecvMsgs   uint64
	WriteMsgs            uint64
	TxFrames, RxFrames   uint64
	RNRDrops             uint64 // messages dropped: no posted receive buffer
	RecvTooSmall         uint64
	BadFrames, UnknownQP uint64
	QPErrDrops           uint64 // inbound frames dropped on an errored QP
	NaksTx, NaksRx       uint64 // QP-error NAK notifications sent/received
}

// recvWR is a posted receive buffer.
type recvWR struct {
	buf *memory.Buf
	ctx any
}

// A QP is one reliable-connection queue pair.
type QP struct {
	nic       *NIC
	qpn       uint32
	remoteMAC simnet.MAC
	remoteQPN uint32
	connected bool

	rq      []recvWR
	sendSeq uint32
	errored bool

	// Inbound reassembly state for the current message.
	cur      *recvWR
	curSeq   uint32
	curTotal int
	curGot   int
	skipping bool // dropping the remainder of an unreceivable message
}

// QPN returns the queue pair number.
func (q *QP) QPN() uint32 { return q.qpn }

// RemoteMAC returns the paired remote NIC's address (zero until connected).
func (q *QP) RemoteMAC() simnet.MAC { return q.remoteMAC }

// Connected reports whether the QP has a paired remote.
func (q *QP) Connected() bool { return q.connected }

// RecvPosted returns the number of posted, unconsumed receive buffers.
func (q *QP) RecvPosted() int { return len(q.rq) }

// Errored reports whether the QP is in the error state.
func (q *QP) Errored() bool { return q.errored }

// FlushRecvs removes and returns every posted receive buffer, the verbs
// "flush" that lets the owner release buffer references after a QP error.
func (q *QP) FlushRecvs() []*memory.Buf {
	var out []*memory.Buf
	for _, wr := range q.rq {
		out = append(out, wr.buf)
	}
	if q.cur != nil {
		out = append(out, q.cur.buf)
		q.cur = nil
	}
	q.rq = nil
	return out
}

// MR is a registered memory region accessible to one-sided operations.
type MR struct {
	rkey uint32
	mem  []byte
}

// Registry is the control-plane rendezvous (the fabric's "subnet manager"):
// it maps MACs to NICs so connection management can pair queue pairs. It is
// control path only; no datapath operation consults it.
type Registry struct {
	sw    *simnet.Switch
	byMAC map[simnet.MAC]*NIC
}

// NewRegistry creates a registry over the switch.
func NewRegistry(sw *simnet.Switch) *Registry {
	return &Registry{sw: sw, byMAC: make(map[simnet.MAC]*NIC)}
}

// NIC is a simulated RDMA NIC bound to one node.
type NIC struct {
	reg  *Registry
	port *simnet.Port
	node *sim.Node

	qps       map[uint32]*QP
	mrs       map[uint32]*MR
	cq        []CQE
	listeners map[uint16]*Listener
	nextQPN   uint32
	nextRkey  uint32
	stats     Stats
	tel       *telemetry.Registry
	flt       Faults
}

// SetFaults installs (or, with the zero value, clears) the NIC's fault
// injection sites.
func (n *NIC) SetFaults(f Faults) { n.flt = f }

// NewNIC attaches a NIC for node to the fabric.
func (r *Registry) NewNIC(node *sim.Node, link simnet.LinkParams, rxRing int) *NIC {
	n := &NIC{
		reg:       r,
		port:      r.sw.Attach(node, link, rxRing),
		node:      node,
		qps:       make(map[uint32]*QP),
		mrs:       make(map[uint32]*MR),
		listeners: make(map[uint16]*Listener),
	}
	r.byMAC[n.port.MAC()] = n
	n.tel = telemetry.NewRegistry(node.Name() + "/rdma")
	s := &n.stats
	n.tel.Sample("rdma.send_msgs", func() int64 { return int64(s.SendMsgs) })
	n.tel.Sample("rdma.recv_msgs", func() int64 { return int64(s.RecvMsgs) })
	n.tel.Sample("rdma.write_msgs", func() int64 { return int64(s.WriteMsgs) })
	n.tel.Sample("rdma.tx_frames", func() int64 { return int64(s.TxFrames) })
	n.tel.Sample("rdma.rx_frames", func() int64 { return int64(s.RxFrames) })
	n.tel.Sample("rdma.rnr_drops", func() int64 { return int64(s.RNRDrops) })
	n.tel.Sample("rdma.recv_too_small", func() int64 { return int64(s.RecvTooSmall) })
	n.tel.Sample("rdma.bad_frames", func() int64 { return int64(s.BadFrames) })
	n.tel.Sample("rdma.unknown_qp", func() int64 { return int64(s.UnknownQP) })
	n.tel.Sample("rdma.qperr_drops", func() int64 { return int64(s.QPErrDrops) })
	n.tel.Sample("rdma.naks_tx", func() int64 { return int64(s.NaksTx) })
	n.tel.Sample("rdma.naks_rx", func() int64 { return int64(s.NaksRx) })
	return n
}

// Telemetry returns the NIC's metric registry (sampled views of Stats).
func (n *NIC) Telemetry() *telemetry.Registry { return n.tel }

// MAC returns the NIC's address.
func (n *NIC) MAC() simnet.MAC { return n.port.MAC() }

// Node returns the owning node.
func (n *NIC) Node() *sim.Node { return n.node }

// Stats returns a snapshot of NIC counters.
func (n *NIC) Stats() Stats { return n.stats }

// RegisterMemory registers mem for remote access and returns its rkey
// (ibv_reg_mr).
func (n *NIC) RegisterMemory(mem []byte) uint32 {
	n.nextRkey++
	n.mrs[n.nextRkey] = &MR{rkey: n.nextRkey, mem: mem}
	return n.nextRkey
}

// newQP allocates an unconnected QP.
func (n *NIC) newQP() *QP {
	n.nextQPN++
	q := &QP{nic: n, qpn: n.nextQPN}
	n.qps[q.qpn] = q
	return q
}

// PostRecv posts a receive buffer on the QP (ibv_post_recv). Buffers are
// consumed in FIFO order, one per inbound message.
func (q *QP) PostRecv(buf *memory.Buf, ctx any) {
	q.rq = append(q.rq, recvWR{buf: buf, ctx: ctx})
}

// rdma wire header: op(1) flags(1) dstQPN(4) srcQPN(4) msgSeq(4) fragOff(4)
// totalLen(4) rkey(4) remoteOff(8) = 34 bytes, after the Ethernet header.
const rdmaHeaderLen = 34

const (
	opSendWire  = 1
	opWriteWire = 2
	opNakWire   = 3
	flagLast    = 1
)

func putHeader(b []byte, op, flags byte, dstQPN, srcQPN, msgSeq, fragOff, totalLen, rkey uint32, remoteOff uint64) {
	b[0], b[1] = op, flags
	be := binary.BigEndian
	be.PutUint32(b[2:6], dstQPN)
	be.PutUint32(b[6:10], srcQPN)
	be.PutUint32(b[10:14], msgSeq)
	be.PutUint32(b[14:18], fragOff)
	be.PutUint32(b[18:22], totalLen)
	be.PutUint32(b[22:26], rkey)
	be.PutUint64(b[26:34], remoteOff)
}

// sendFragments segments payload (a scatter-gather list) into MTU-sized
// frames and puts them on the wire. The NIC DMA-reads directly from the
// caller's buffers (no host CPU copy is charged; the frame assembly below
// is simulation bookkeeping).
func (q *QP) sendFragments(op byte, rkey uint32, remoteOff uint64, segs ...[]byte) {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	q.sendSeq++
	// Flatten the scatter-gather list fragment by fragment.
	flat := make([]byte, 0, total)
	for _, s := range segs {
		flat = append(flat, s...)
	}
	off := 0
	for {
		n := len(flat) - off
		if n > WireMTU {
			n = WireMTU
		}
		flags := byte(0)
		if off+n == total {
			flags = flagLast
		}
		frame := make([]byte, wire.EthHeaderLen+rdmaHeaderLen+n)
		eth := wire.EthHeader{Dst: q.remoteMAC, Src: q.nic.port.MAC(), EtherType: wire.EtherTypeRDMA}
		eth.Marshal(frame)
		putHeader(frame[wire.EthHeaderLen:], op, flags, q.remoteQPN, q.qpn, q.sendSeq, uint32(off), uint32(total), rkey, remoteOff)
		copy(frame[wire.EthHeaderLen+rdmaHeaderLen:], flat[off:off+n])
		q.nic.port.Send(simnet.Frame{Data: frame})
		q.nic.stats.TxFrames++
		off += n
		if off >= total && (total > 0 || flags == flagLast) {
			break
		}
	}
}

// nak notifies the paired remote QP that this QP has failed, mirroring the
// RC transport's NAK/retry-exhaustion path: the requester's QP also moves
// to the error state and its host sees an OpQPErr completion. Without it a
// one-sided failure would strand the peer waiting on replies forever.
func (q *QP) nak() {
	if !q.connected {
		return
	}
	frame := make([]byte, wire.EthHeaderLen+rdmaHeaderLen)
	eth := wire.EthHeader{Dst: q.remoteMAC, Src: q.nic.port.MAC(), EtherType: wire.EtherTypeRDMA}
	eth.Marshal(frame)
	putHeader(frame[wire.EthHeaderLen:], opNakWire, 0, q.remoteQPN, q.qpn, 0, 0, 0, 0, 0)
	q.nic.port.Send(simnet.Frame{Data: frame})
	q.nic.stats.TxFrames++
	q.nic.stats.NaksTx++
}

// PostSend submits a two-sided send of the concatenated segments
// (ibv_post_send with IBV_WR_SEND). A send CQE is delivered on the local
// CQ; the remote consumes one posted receive buffer.
func (q *QP) PostSend(ctx any, segs ...[]byte) error {
	if q.errored {
		return ErrQPError
	}
	if q.nic.flt.QPError.Fire(q.nic.node.Now()) {
		q.errored = true
		q.nak()
		return ErrQPError
	}
	if !q.connected {
		return fmt.Errorf("rdmadev: send on unconnected QP %d", q.qpn)
	}
	q.sendFragments(opSendWire, 0, 0, segs...)
	q.nic.stats.SendMsgs++
	q.nic.cq = append(q.nic.cq, CQE{QPN: q.qpn, Op: OpSend, Ctx: ctx})
	return nil
}

// PostWrite submits a one-sided RDMA write into the remote memory region
// identified by rkey at byte offset remoteOff. No remote CQE is generated
// and no receive buffer is consumed — the remote CPU is not involved, which
// is exactly why Catmint uses it for flow-control window updates.
func (q *QP) PostWrite(rkey uint32, remoteOff int, data []byte) error {
	if q.errored {
		return ErrQPError
	}
	if !q.connected {
		return fmt.Errorf("rdmadev: write on unconnected QP %d", q.qpn)
	}
	q.sendFragments(opWriteWire, rkey, uint64(remoteOff), data)
	q.nic.stats.WriteMsgs++
	return nil
}

// PollCQ drains the NIC port and returns up to max completions
// (ibv_poll_cq). It never blocks.
func (n *NIC) PollCQ(max int) []CQE {
	n.drainPort()
	if len(n.cq) == 0 {
		return nil
	}
	k := len(n.cq)
	if k > max {
		k = max
	}
	out := make([]CQE, k)
	copy(out, n.cq[:k])
	n.cq = n.cq[k:]
	return out
}

// CQPending reports whether completions are waiting (after draining rx).
func (n *NIC) CQPending() bool {
	n.drainPort()
	return len(n.cq) > 0
}

// drainPort processes every frame waiting in the rx ring.
func (n *NIC) drainPort() {
	for {
		f, ok := n.port.Recv()
		if !ok {
			return
		}
		n.stats.RxFrames++
		n.handleFrame(f)
	}
}

func (n *NIC) handleFrame(f simnet.Frame) {
	eth, payload, err := wire.ParseEth(f.Data)
	if err != nil || eth.EtherType != wire.EtherTypeRDMA || len(payload) < rdmaHeaderLen {
		n.stats.BadFrames++
		return
	}
	be := binary.BigEndian
	op, flags := payload[0], payload[1]
	dstQPN := be.Uint32(payload[2:6])
	srcQPN := be.Uint32(payload[6:10])
	fragOff := be.Uint32(payload[14:18])
	totalLen := be.Uint32(payload[18:22])
	rkey := be.Uint32(payload[22:26])
	remoteOff := be.Uint64(payload[26:34])
	data := payload[rdmaHeaderLen:]

	if op == opWriteWire {
		mr, ok := n.mrs[rkey]
		if !ok || int(remoteOff)+int(fragOff)+len(data) > len(mr.mem) {
			n.stats.BadFrames++
			return
		}
		copy(mr.mem[int(remoteOff)+int(fragOff):], data)
		return
	}

	q, ok := n.qps[dstQPN]
	if !ok || (q.connected && q.remoteQPN != srcQPN) {
		n.stats.UnknownQP++
		return
	}
	if op == opNakWire {
		n.stats.NaksRx++
		if !q.errored {
			q.errored = true
			n.cq = append(n.cq, CQE{QPN: q.qpn, Op: OpQPErr})
		}
		return
	}
	if q.errored {
		n.stats.QPErrDrops++
		q.nak() // remind a peer that missed the first NAK
		return
	}
	q.handleSendFragment(flags, fragOff, totalLen, data)
}

// handleSendFragment reassembles two-sided messages into the posted
// receive buffer at the head of the RQ.
func (q *QP) handleSendFragment(flags byte, fragOff, totalLen uint32, data []byte) {
	n := q.nic
	if fragOff == 0 { // first fragment of a message
		q.skipping = false
		if len(q.rq) == 0 {
			n.stats.RNRDrops++
			q.skipping = true
		} else if q.rq[0].buf.Len() < int(totalLen) {
			n.stats.RecvTooSmall++
			q.rq = q.rq[1:] // consume the undersized buffer, as hardware would
			q.skipping = true
		} else {
			q.cur = &q.rq[0]
			q.rq = q.rq[1:]
			q.curTotal = int(totalLen)
			q.curGot = 0
		}
	}
	if q.skipping {
		return
	}
	if q.cur == nil {
		n.stats.BadFrames++ // mid-message fragment with no message open
		return
	}
	copy(q.cur.buf.Bytes()[fragOff:], data)
	q.curGot += len(data)
	if flags&flagLast != 0 {
		if q.curGot != q.curTotal {
			n.stats.BadFrames++ // lost fragment on a lossless fabric: bug
		}
		n.stats.RecvMsgs++
		n.cq = append(n.cq, CQE{QPN: q.qpn, Op: OpRecv, Buf: q.cur.buf, Len: q.curTotal, Ctx: q.cur.ctx})
		q.cur = nil
	}
}
