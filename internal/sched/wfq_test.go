package sched

import "testing"

// yielder counts its polls and always yields (an infinitely greedy
// coroutine — the scheduling pattern of a flooding tenant).
type yielder struct{ polls int }

func (y *yielder) Poll(ctx *Context) Poll { y.polls++; return Yield }

// TestWFQSharesFollowWeights pins the weighted-fair invariant: two
// always-ready tenants split poll cycles in proportion to their weights,
// regardless of how many coroutines each fields.
func TestWFQSharesFollowWeights(t *testing.T) {
	s := New()
	s.SetTenantWeight(1, 3)
	s.SetTenantWeight(2, 1)
	victim := &yielder{}
	s.SpawnTenant(Background, 1, victim)
	// The attacker fields 8 greedy coroutines to the victim's one.
	attackers := make([]*yielder, 8)
	for i := range attackers {
		attackers[i] = &yielder{}
		s.SpawnTenant(Background, 2, attackers[i])
	}
	const rounds = 4000
	for i := 0; i < rounds; i++ {
		if !s.RunOne() {
			t.Fatal("scheduler went idle with ready coroutines")
		}
	}
	attackerPolls := 0
	for _, a := range attackers {
		attackerPolls += a.polls
	}
	// Weight 3:1 → victim ~3000, attackers ~1000 combined.
	if victim.polls < 2900 || victim.polls > 3100 {
		t.Errorf("victim polls = %d, want ~3000 of %d (weight 3 of 4)", victim.polls, rounds)
	}
	if attackerPolls != rounds-victim.polls {
		t.Errorf("attacker polls = %d, victim = %d, don't sum to %d", attackerPolls, victim.polls, rounds)
	}
	if got := s.TenantPolls(1); got != uint64(victim.polls) {
		t.Errorf("TenantPolls(1) = %d, want %d", got, victim.polls)
	}
}

// TestWFQIntraTenantRoundRobin checks the per-tenant cursor: one tenant's
// coroutines share its turns evenly instead of the lowest slot starving
// the rest.
func TestWFQIntraTenantRoundRobin(t *testing.T) {
	s := New()
	cos := make([]*yielder, 4)
	for i := range cos {
		cos[i] = &yielder{}
		s.SpawnTenant(Background, 1, cos[i])
	}
	for i := 0; i < 400; i++ {
		s.RunOne()
	}
	for i, c := range cos {
		if c.polls != 100 {
			t.Errorf("coroutine %d polled %d times, want 100", i, c.polls)
		}
	}
}

// TestWFQIdleTenantCannotBankCredit pins the clamp in SpawnTenant: a
// tenant that sat idle while another accumulated virtual time starts at
// the active tenant's clock, not at zero, so it cannot monopolize the
// scheduler to "catch up".
func TestWFQIdleTenantCannotBankCredit(t *testing.T) {
	s := New()
	s.SetTenantWeight(1, 1)
	s.SetTenantWeight(2, 1)
	early := &yielder{}
	s.SpawnTenant(Background, 1, early)
	for i := 0; i < 1000; i++ {
		s.RunOne()
	}
	late := &yielder{}
	s.SpawnTenant(Background, 2, late)
	window := 200
	for i := 0; i < window; i++ {
		s.RunOne()
	}
	// Without the clamp the late tenant would take all 200 polls.
	if late.polls > window/2+10 {
		t.Errorf("late tenant took %d of %d polls after idling — banked credit", late.polls, window)
	}
}

// TestWFQOffByDefault: with only host-tenant spawns the legacy FIFO
// round-robin path runs (wfq stays disarmed), preserving bit-exact
// scheduling for every existing single-tenant workload.
func TestWFQOffByDefault(t *testing.T) {
	s := New()
	s.Spawn(Background, &yielder{})
	if s.wfq {
		t.Fatal("host-tenant Spawn armed WFQ")
	}
	s.SpawnTenant(Background, 1, &yielder{})
	if !s.wfq {
		t.Fatal("nonzero tenant spawn did not arm WFQ")
	}
}
