package sched

import (
	"testing"
	"testing/quick"

	"demikernel/internal/sim"
)

func TestSpawnAndComplete(t *testing.T) {
	s := New()
	ran := 0
	s.Spawn(App, Func(func(ctx *Context) Poll {
		ran++
		return Done
	}))
	if !s.RunOne() {
		t.Fatal("nothing ran")
	}
	if ran != 1 {
		t.Fatalf("ran %d times", ran)
	}
	if s.RunOne() {
		t.Error("completed coroutine ran again")
	}
	if s.Len(App) != 0 {
		t.Errorf("Len = %d, want 0", s.Len(App))
	}
}

func TestPendingBlocksUntilWake(t *testing.T) {
	s := New()
	polls := 0
	var waker Waker
	h := s.Spawn(App, Func(func(ctx *Context) Poll {
		polls++
		waker = ctx.Waker()
		if polls < 2 {
			return Pending
		}
		return Done
	}))
	_ = h
	s.RunOne()
	if polls != 1 {
		t.Fatalf("polls = %d, want 1", polls)
	}
	if s.RunOne() {
		t.Fatal("blocked coroutine polled without wake")
	}
	waker.Wake()
	if !s.RunOne() {
		t.Fatal("woken coroutine did not run")
	}
	if polls != 2 {
		t.Errorf("polls = %d, want 2", polls)
	}
}

func TestWakeAfterDoneIsNoop(t *testing.T) {
	s := New()
	h := s.Spawn(App, Func(func(ctx *Context) Poll { return Done }))
	s.RunOne()
	h.Wake() // must not resurrect
	if s.RunOne() {
		t.Error("wake after done made coroutine runnable")
	}
}

func TestWakeDuringPollKeepsRunnable(t *testing.T) {
	// A coroutine whose event fires while it is being polled (fast path
	// finds more work mid-poll) must run again without an external wake.
	s := New()
	polls := 0
	s.Spawn(App, Func(func(ctx *Context) Poll {
		polls++
		if polls == 1 {
			ctx.Waker().Wake() // self-wake before blocking
			return Pending
		}
		return Done
	}))
	s.RunOne()
	if !s.RunOne() {
		t.Fatal("self-woken coroutine did not run")
	}
	if polls != 2 {
		t.Errorf("polls = %d", polls)
	}
}

func TestPriorityAppOverBackgroundOverFastPath(t *testing.T) {
	s := New()
	var order []string
	s.Spawn(FastPath, Func(func(ctx *Context) Poll {
		order = append(order, "fast")
		return Yield
	}))
	s.Spawn(Background, Func(func(ctx *Context) Poll {
		order = append(order, "bg")
		return Done
	}))
	s.Spawn(App, Func(func(ctx *Context) Poll {
		order = append(order, "app")
		return Done
	}))
	for i := 0; i < 3; i++ {
		s.RunOne()
	}
	want := []string{"app", "bg", "fast"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOWithinClass(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn(App, Func(func(ctx *Context) Poll {
			order = append(order, i)
			return Done
		}))
	}
	for s.RunOne() {
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, not FIFO", order)
		}
	}
}

func TestYieldRoundRobins(t *testing.T) {
	// Two always-Yield coroutines in one class must alternate, not starve.
	s := New()
	counts := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn(FastPath, Func(func(ctx *Context) Poll {
			counts[i]++
			return Yield
		}))
	}
	for i := 0; i < 100; i++ {
		s.RunOne()
	}
	if counts[0] < 40 || counts[1] < 40 {
		t.Errorf("unfair: counts = %v", counts)
	}
}

func TestManyBlockedCoroutinesScanFast(t *testing.T) {
	// 1000 blocked coroutines and 1 runnable: RunOne must still find it.
	s := New()
	for i := 0; i < 1000; i++ {
		s.Spawn(App, Func(func(ctx *Context) Poll { return Pending }))
	}
	// Drain the initial-runnable polls.
	for s.RunOne() {
	}
	ran := false
	h := s.Spawn(App, Func(func(ctx *Context) Poll {
		ran = true
		return Done
	}))
	_ = h
	if !s.RunOne() || !ran {
		t.Fatal("runnable coroutine lost among blocked ones")
	}
}

func TestSlotReuseAfterCompletion(t *testing.T) {
	s := New()
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			s.Spawn(App, Func(func(ctx *Context) Poll { return Done }))
		}
		for s.RunOne() {
		}
	}
	// 200 concurrent max => at most 4 blocks should ever exist.
	if len(s.classes[App]) > 4 {
		t.Errorf("blocks grew to %d; slots not reused", len(s.classes[App]))
	}
}

func TestRunUntilIdleBudget(t *testing.T) {
	s := New()
	s.Spawn(FastPath, Func(func(ctx *Context) Poll { return Yield }))
	if got := s.RunUntilIdle(50); got != 50 {
		t.Errorf("polls = %d, want budget 50", got)
	}
}

// Property: for any random interleaving of spawns, wakes and polls, a
// coroutine is never polled while blocked (Pending without wake), and every
// wake of a live blocked coroutine leads to exactly one additional poll.
func TestSchedulerWakeProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		rng := sim.NewRand(seed)
		s := New()
		type co struct {
			h       Handle
			polls   int
			pending bool // expects no poll until woken
			done    bool
		}
		var cos []*co
		ok := true
		for i := 0; i < int(steps)%200+20; i++ {
			switch rng.Intn(3) {
			case 0: // spawn: blocks first poll, completes second
				c := &co{}
				c.h = s.Spawn(App, Func(func(ctx *Context) Poll {
					c.polls++
					if c.pending {
						ok = false // polled while blocked
					}
					if c.polls == 1 {
						c.pending = true
						return Pending
					}
					c.done = true
					return Done
				}))
				cos = append(cos, c)
			case 1: // wake a random coroutine
				if len(cos) == 0 {
					continue
				}
				c := cos[rng.Intn(len(cos))]
				if c.pending && !c.done {
					c.pending = false
				}
				c.h.Wake()
			case 2:
				s.RunOne()
			}
			if !ok {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSchedSwitch(b *testing.B) {
	// Paper §5.4: context switch between an empty yielding coroutine and
	// finding the next runnable one costs ~12 cycles in their Rust
	// prototype. This measures our Go equivalent.
	s := New()
	s.Spawn(FastPath, Func(func(ctx *Context) Poll { return Yield }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunOne()
	}
}

func BenchmarkSchedScan1000Blocked(b *testing.B) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.Spawn(Background, Func(func(ctx *Context) Poll { return Pending }))
	}
	for s.RunOne() {
	}
	s.Spawn(FastPath, Func(func(ctx *Context) Poll { return Yield }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunOne()
	}
}
