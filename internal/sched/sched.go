// Package sched implements Demikernel's nanosecond-scale coroutine
// scheduler (paper §5.4). Coroutines are poll-based state machines — the Go
// analogue of the Rust futures the paper compiles — and are cooperative and
// blockable: a coroutine that cannot progress stashes its Waker with the
// event source and returns Pending; whoever triggers the event calls Wake,
// flipping a readiness bit that moves the coroutine back to the runnable
// set.
//
// Readiness bits live in waker blocks of 64 coroutines each, and the
// scheduler finds runnable coroutines by iterating set bits with
// count-trailing-zeros (Lemire's loop; x86 tzcnt), so a poll over thousands
// of mostly-blocked coroutines touches only a handful of words.
//
// Scheduling policy (paper §5.4): runnable application coroutines first,
// then background coroutines, then the always-runnable fast-path coroutine,
// FIFO within a class.
package sched

import "math/bits"

// Poll is a coroutine step result.
type Poll int

const (
	// Pending means the coroutine is blocked; it will not be polled again
	// until its Waker fires.
	Pending Poll = iota
	// Yield means the coroutine made progress and can run again
	// immediately; it stays in the runnable set.
	Yield
	// Done means the coroutine finished and is removed from the scheduler.
	Done
)

// A Coroutine is a pollable task: one application request, one background
// protocol duty (retransmission, acking), or a device fast path.
type Coroutine interface {
	// Poll advances the coroutine. A coroutine returning Pending must have
	// arranged for ctx.Waker() to be woken, or it will sleep forever.
	Poll(ctx *Context) Poll
}

// Func adapts a plain function to the Coroutine interface.
type Func func(ctx *Context) Poll

// Poll implements Coroutine.
func (f Func) Poll(ctx *Context) Poll { return f(ctx) }

// Class is a scheduling priority class.
type Class int

const (
	// App coroutines run application request handlers (one per blocked
	// qtoken); highest priority.
	App Class = iota
	// Background coroutines do protocol housekeeping (TCP retransmit,
	// pure acks, flow-control refills).
	Background
	// FastPath coroutines poll device queues; always runnable, lowest
	// priority so they fill otherwise-idle cycles.
	FastPath
	numClasses
)

// Context is passed to every Poll and carries the coroutine's own Waker so
// it can register with event sources before blocking.
type Context struct {
	waker Waker
}

// Waker returns the running coroutine's waker, which event sources may
// copy and keep for the coroutine's lifetime.
func (c *Context) Waker() Waker { return c.waker }

// A Waker marks one coroutine runnable. It is a small value safe to copy
// and store with event sources. Wake is idempotent, and a waker left over
// from a completed coroutine is a no-op even if its slot was reused: each
// waker carries the slot generation it was minted for.
type Waker struct {
	block *wakerBlock
	slot  uint
	gen   uint32
}

// Wake sets the coroutine's readiness bit.
//
//demi:nonalloc wakes happen per packet on the I/O fast path
func (w Waker) Wake() {
	b := w.block
	if b != nil && b.occupied&(1<<w.slot) != 0 && b.gens[w.slot] == w.gen {
		b.ready |= 1 << w.slot
	}
}

// wakerBlock holds readiness for up to 64 coroutines of one class, plus
// their contexts. ready and occupied are the bitsets the scheduler scans.
// tens tags each slot with its tenant index for weighted-fair picking.
type wakerBlock struct {
	ready    uint64
	occupied uint64
	gens     [64]uint32
	tens     [64]uint8
	cos      [64]Coroutine
	ctxs     [64]Context
}

// Handle identifies a spawned coroutine.
type Handle struct {
	waker Waker
}

// Wake marks the coroutine runnable (e.g. its qtoken's data arrived).
func (h Handle) Wake() { h.waker.Wake() }

// NumClasses is the number of scheduling classes, for per-class stat arrays.
const NumClasses = int(numClasses)

// ClassName returns a class's mnemonic for metric names.
func ClassName(c Class) string {
	switch c {
	case App:
		return "app"
	case Background:
		return "background"
	case FastPath:
		return "fastpath"
	}
	return "class?"
}

// Stats counts scheduler activity.
type Stats struct {
	Spawned, Completed uint64
	Polls              uint64
	EmptyScans         uint64             // RunOne calls that found nothing runnable
	PollsByClass       [NumClasses]uint64 // per-class share of Polls
}

// MaxTenants is the number of dense tenant indices the scheduler's
// weighted-fair state is sized for (index 0 is the host tenant). Fixed
// arrays, not maps: runClass is //demi:nonalloc.
const MaxTenants = 16

// Scheduler runs one core's coroutines. It is single-threaded by design.
type Scheduler struct {
	classes [numClasses][]*wakerBlock
	cursor  [numClasses]int // round-robin start block per class
	count   [numClasses]int
	stats   Stats

	// Weighted-fair queuing across tenants (ROADMAP multi-tenant item):
	// within a class, the ready tenant with the smallest virtual time
	// (polls charged / weight) runs next, so a flooding tenant's ready
	// swarm cannot monopolize poll cycles. wfq stays false until a
	// nonzero tenant appears, keeping the single-tenant path bit-exact.
	wfq     bool
	weights [MaxTenants]uint32 // 0 means weight 1
	tpolls  [MaxTenants]uint64 // polls charged per tenant (the virtual clock)
	tlive   [MaxTenants]int    // live coroutines per tenant
	tcursor [numClasses][MaxTenants]int
}

// New returns an empty scheduler.
func New() *Scheduler { return &Scheduler{} }

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Runnable reports whether any coroutine is ready to run.
func (s *Scheduler) Runnable() bool {
	for c := Class(0); c < numClasses; c++ {
		for _, b := range s.classes[c] {
			if b.ready&b.occupied != 0 {
				return true
			}
		}
	}
	return false
}

// Len returns the number of live coroutines in the class.
func (s *Scheduler) Len(c Class) int { return s.count[c] }

// Ready returns the class's runnable-queue depth: live coroutines whose
// readiness bit is set.
func (s *Scheduler) Ready(c Class) int {
	n := 0
	for _, b := range s.classes[c] {
		n += bits.OnesCount64(b.ready & b.occupied)
	}
	return n
}

// SetTenantWeight sets a tenant's weighted-fair share (default 1). Any
// nonzero tenant index arms WFQ picking for every class.
func (s *Scheduler) SetTenantWeight(tenant int, weight uint32) {
	if tenant < 0 || tenant >= MaxTenants {
		panic("sched: tenant index out of range")
	}
	s.weights[tenant] = weight
	if tenant != 0 {
		s.wfq = true
	}
}

// TenantPolls returns the polls charged to a tenant index so far.
func (s *Scheduler) TenantPolls(tenant int) uint64 { return s.tpolls[tenant] }

// weightOf returns a tenant's effective weight (unset = 1).
func (s *Scheduler) weightOf(tenant int) uint64 {
	if w := s.weights[tenant]; w != 0 {
		return uint64(w)
	}
	return 1
}

// Spawn adds a coroutine in the given class, initially runnable, and
// returns its handle. The coroutine belongs to the host tenant.
func (s *Scheduler) Spawn(c Class, co Coroutine) Handle {
	return s.SpawnTenant(c, 0, co)
}

// SpawnTenant is Spawn with the coroutine charged to a tenant index. A
// tenant going from idle to active has its virtual clock clamped forward
// to the lightest active tenant's, so banked idle time cannot be spent as
// a monopolizing burst.
func (s *Scheduler) SpawnTenant(c Class, tenant uint8, co Coroutine) Handle {
	if int(tenant) >= MaxTenants {
		panic("sched: tenant index out of range")
	}
	if tenant != 0 {
		s.wfq = true
	}
	if s.wfq && s.tlive[tenant] == 0 {
		minV := uint64(0)
		found := false
		for t := 0; t < MaxTenants; t++ {
			if t == int(tenant) || s.tlive[t] == 0 {
				continue
			}
			v := s.tpolls[t] / s.weightOf(t)
			if !found || v < minV {
				minV, found = v, true
			}
		}
		if found {
			if floor := minV * s.weightOf(int(tenant)); s.tpolls[tenant] < floor {
				s.tpolls[tenant] = floor
			}
		}
	}
	s.tlive[tenant]++
	blocks := s.classes[c]
	var blk *wakerBlock
	var slot uint
	for _, b := range blocks {
		if b.occupied != ^uint64(0) {
			blk = b
			slot = uint(bits.TrailingZeros64(^b.occupied))
			break
		}
	}
	if blk == nil {
		blk = &wakerBlock{}
		s.classes[c] = append(s.classes[c], blk)
		slot = 0
	}
	blk.occupied |= 1 << slot
	blk.ready |= 1 << slot
	blk.gens[slot]++
	blk.tens[slot] = tenant
	blk.cos[slot] = co
	w := Waker{block: blk, slot: slot, gen: blk.gens[slot]}
	blk.ctxs[slot] = Context{waker: w}
	s.count[c]++
	s.stats.Spawned++
	return Handle{waker: w}
}

// RunOne polls the highest-priority runnable coroutine, if any, and reports
// whether one ran. FastPath coroutines are polled even when their readiness
// bit is clear only if they were spawned ready — by convention fast paths
// always return Yield, so they stay ready.
//
//demi:nonalloc the paper's 12-cycle context switch leaves no room for the allocator
func (s *Scheduler) RunOne() bool {
	for c := Class(0); c < numClasses; c++ {
		if s.runClass(c) {
			return true
		}
	}
	s.stats.EmptyScans++
	return false
}

// runClass finds and polls one ready coroutine in class c, scanning
// round-robin from the slot after the last one run so same-class
// coroutines cannot starve each other.
//
//demi:nonalloc the waker-block iteration is the scheduler's innermost loop
//demi:budget=27us static estimate 17.79us; one scheduling decision per poll
func (s *Scheduler) runClass(c Class) bool {
	if s.wfq {
		return s.runClassWFQ(c)
	}
	blocks := s.classes[c]
	n := len(blocks)
	if n == 0 {
		return false
	}
	start := s.cursor[c] % (n * 64)
	startBlock, startSlot := start/64, uint(start%64)
	// The starting block is visited twice: its tail first, its head after
	// the wrap, so iteration covers every slot exactly once.
	for off := 0; off <= n; off++ {
		bi := (startBlock + off) % n
		blk := blocks[bi]
		ready := blk.ready & blk.occupied
		if off == 0 {
			ready &^= (uint64(1) << startSlot) - 1
		} else if off == n {
			ready &= (uint64(1) << startSlot) - 1
		}
		if ready == 0 {
			continue
		}
		slot := uint(bits.TrailingZeros64(ready)) // Lemire's loop: tzcnt
		s.cursor[c] = bi*64 + int(slot) + 1
		s.poll(c, blk, slot)
		return true
	}
	return false
}

// runClassWFQ is runClass under weighted-fair queuing: among tenants with
// a ready coroutine in the class, pick the one with the smallest virtual
// time (polls/weight, compared by cross-multiplication — no division or
// floats on the hot path), then round-robin within that tenant via its own
// cursor. Ties go to the lower tenant index, deterministically.
//
//demi:nonalloc same innermost loop as runClass, fixed arrays only
func (s *Scheduler) runClassWFQ(c Class) bool {
	blocks := s.classes[c]
	n := len(blocks)
	if n == 0 {
		return false
	}
	// Pass 1: which tenants have a ready coroutine in this class?
	var readyT [MaxTenants]bool
	any := false
	for _, blk := range blocks {
		ready := blk.ready & blk.occupied
		for ready != 0 {
			slot := uint(bits.TrailingZeros64(ready))
			ready &^= 1 << slot
			readyT[blk.tens[slot]] = true
			any = true
		}
	}
	if !any {
		return false
	}
	// Pass 2: smallest virtual time among ready tenants.
	best := -1
	for t := 0; t < MaxTenants; t++ {
		if !readyT[t] {
			continue
		}
		if best < 0 || s.tpolls[t]*s.weightOf(best) < s.tpolls[best]*s.weightOf(t) {
			best = t
		}
	}
	// Pass 3: round-robin within the chosen tenant, per-tenant cursor.
	start := s.tcursor[c][best] % (n * 64)
	startBlock, startSlot := start/64, uint(start%64)
	for off := 0; off <= n; off++ {
		bi := (startBlock + off) % n
		blk := blocks[bi]
		ready := blk.ready & blk.occupied
		if off == 0 {
			ready &^= (uint64(1) << startSlot) - 1
		} else if off == n {
			ready &= (uint64(1) << startSlot) - 1
		}
		for ready != 0 {
			slot := uint(bits.TrailingZeros64(ready))
			ready &^= 1 << slot
			if int(blk.tens[slot]) != best {
				continue
			}
			s.tcursor[c][best] = bi*64 + int(slot) + 1
			s.poll(c, blk, slot)
			return true
		}
	}
	return false
}

// poll runs one coroutine slot and applies its result. The Coroutine.Poll
// dispatch is the one dynamic call on the path; the allowlist carries it
// (every Poll implementation is audited by the alloc-guard benchmark).
//
//demi:nonalloc
func (s *Scheduler) poll(c Class, blk *wakerBlock, slot uint) {
	bit := uint64(1) << slot
	blk.ready &^= bit // clear before polling: wakes during poll are kept
	s.stats.Polls++
	s.stats.PollsByClass[c]++
	s.tpolls[blk.tens[slot]]++
	switch blk.cos[slot].Poll(&blk.ctxs[slot]) {
	case Yield:
		blk.ready |= bit
	case Done:
		blk.occupied &^= bit
		blk.ready &^= bit
		blk.cos[slot] = nil
		s.count[c]--
		s.tlive[blk.tens[slot]]--
		s.stats.Completed++
	case Pending:
		// Readiness bit stays as the coroutine's waker left it: if an
		// event fired mid-poll the coroutine runs again; otherwise it
		// sleeps until Wake.
	}
}

// RunUntilIdle polls until no coroutine is runnable, with a safety budget
// to bound livelock from always-Yield coroutines. It returns the number of
// polls performed. Fast-path coroutines count against the budget like any
// other, so callers typically use RunOne in their own loop instead; this
// helper serves tests and simple drivers.
func (s *Scheduler) RunUntilIdle(budget int) int {
	polls := 0
	for polls < budget && s.RunOne() {
		polls++
	}
	return polls
}
