package telemetry

import "testing"

// The whole point of a kernel-bypass datapath is that nothing unexpected
// runs on it; instrumentation that allocates would add GC pressure and
// jitter at exactly the microsecond scale the paper measures. These tests
// pin every hot-path operation at zero Go heap allocations.

func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry("alloc")
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	fr := NewFlightRecorder(1024, 8)
	span := Span{Token: 1, Op: OpPop, Issued: 10, Completed: 1200, Redeemed: 1300}

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(1234) }},
		{"FlightRecorder.Record", func() { fr.Record(span) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("CounterInc", func(b *testing.B) {
		r := NewRegistry("bench")
		c := r.Counter("c")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		r := NewRegistry("bench")
		h := r.Histogram("h")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
	b.Run("FlightRecord", func(b *testing.B) {
		fr := NewFlightRecorder(4096, 8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fr.Record(Span{Token: uint64(i), Op: OpPop,
				Issued: int64(i), Completed: int64(i + 1000), Redeemed: int64(i + 1100)})
		}
	})
}
