package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// span builds a test span whose total latency is total ns.
func span(token uint64, total int64) Span {
	return Span{Token: token, Op: OpPop, Issued: 0, Completed: total / 2, Redeemed: total}
}

// TestSlowestTieBreaking: equal totals order by token ascending, so the
// slowest table is deterministic regardless of recording order.
func TestSlowestTieBreaking(t *testing.T) {
	f := NewFlightRecorder(16, 4)
	for _, tok := range []uint64{9, 3, 7, 5} {
		f.Record(span(tok, 100))
	}
	slow := f.Slowest()
	if len(slow) != 4 {
		t.Fatalf("retained %d slowest, want 4", len(slow))
	}
	for i, want := range []uint64{3, 5, 7, 9} {
		if slow[i].Token != want {
			t.Errorf("slowest[%d].Token = %d, want %d", i, slow[i].Token, want)
		}
	}
}

// TestSlowestTiesKeepEarlier: once the top-k table is full, a later span
// that merely ties the current minimum must not displace it (strict >).
func TestSlowestTiesKeepEarlier(t *testing.T) {
	f := NewFlightRecorder(16, 2)
	f.Record(span(1, 300))
	f.Record(span(2, 100)) // table full; current min is token 2 at 100ns
	f.Record(span(3, 100)) // ties the min: must be dropped
	slow := f.Slowest()
	if len(slow) != 2 || slow[0].Token != 1 || slow[1].Token != 2 {
		t.Fatalf("slowest = %+v, want tokens [1 2] (tie keeps the earlier span)", slow)
	}
	f.Record(span(4, 101)) // strictly slower: must evict token 2
	slow = f.Slowest()
	if len(slow) != 2 || slow[0].Token != 1 || slow[1].Token != 4 {
		t.Fatalf("slowest = %+v, want tokens [1 4] after strict improvement", slow)
	}
}

// TestRingWraparound: the recent ring keeps exactly the last capacity spans
// in recording order after wrapping, and Total still counts everything.
func TestRingWraparound(t *testing.T) {
	const capacity = 4
	f := NewFlightRecorder(capacity, 1)
	for tok := uint64(1); tok <= 10; tok++ {
		f.Record(span(tok, int64(tok)*10))
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	spans := f.Spans()
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if spans[i].Token != want {
			t.Errorf("spans[%d].Token = %d, want %d (oldest-first order)", i, spans[i].Token, want)
		}
	}
}

// TestRingExactFill: recording exactly capacity spans must not be confused
// with an empty wrapped ring (next returns to 0 in both cases).
func TestRingExactFill(t *testing.T) {
	f := NewFlightRecorder(3, 1)
	for tok := uint64(1); tok <= 3; tok++ {
		f.Record(span(tok, 10))
	}
	spans := f.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans at exact fill, want 3", len(spans))
	}
	for i, want := range []uint64{1, 2, 3} {
		if spans[i].Token != want {
			t.Errorf("spans[%d].Token = %d, want %d", i, spans[i].Token, want)
		}
	}
}

// TestFlightDumpJSON: the JSON dump parses, carries the same counts as the
// recorder, and is byte-identical across renders of the same state.
func TestFlightDumpJSON(t *testing.T) {
	f := NewFlightRecorder(8, 2)
	for tok := uint64(1); tok <= 5; tok++ {
		f.Record(span(tok, int64(tok)*100))
	}
	var a, b bytes.Buffer
	if err := f.WriteDumpJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteDumpJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-state JSON dumps differ")
	}
	var got struct {
		Total    uint64 `json:"total_spans"`
		Retained int    `json:"retained"`
		Recent   []struct {
			Token   uint64 `json:"token"`
			Op      string `json:"op"`
			TotalNs int64  `json:"total_ns"`
		} `json:"recent"`
		Slowest []struct {
			Token uint64 `json:"token"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(a.Bytes(), &got); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if got.Total != 5 || got.Retained != 5 || len(got.Recent) != 5 {
		t.Fatalf("JSON counts = %d/%d/%d, want 5 each", got.Total, got.Retained, len(got.Recent))
	}
	if len(got.Slowest) != 2 || got.Slowest[0].Token != 5 || got.Slowest[1].Token != 4 {
		t.Fatalf("JSON slowest = %+v, want tokens [5 4]", got.Slowest)
	}
	if got.Recent[0].Op != "pop" || got.Recent[0].TotalNs != 100 {
		t.Fatalf("JSON span fields = %+v", got.Recent[0])
	}
}
