package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CounterVal is one counter's value in a snapshot.
type CounterVal struct {
	Name  string
	Value uint64
}

// GaugeVal is one gauge's (or sampled gauge's) value in a snapshot.
type GaugeVal struct {
	Name  string
	Value int64
}

// A Snapshot is a registry frozen at export time: every metric's value with
// names sorted, so rendering it in any format is deterministic.
type Snapshot struct {
	Name     string
	Counters []CounterVal
	Gauges   []GaugeVal
	Hists    []HistVal
}

// Merge combines per-core snapshots into one named view: counters and
// gauges are summed by name, histograms are merged bucket-wise (which
// preserves quantile fidelity — a merged histogram quantiles exactly like
// one that observed every core's values directly).
func Merge(name string, snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{Name: name}
	counters := make(map[string]uint64)
	gauges := make(map[string]int64)
	hists := make(map[string]*HistVal)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			gauges[g.Name] += g.Value
		}
		for _, h := range s.Hists {
			m, ok := hists[h.Name]
			if !ok {
				cp := h
				cp.Buckets = append([]uint64(nil), h.Buckets...)
				hists[h.Name] = &cp
				continue
			}
			if h.Count > 0 {
				if m.Count == 0 || h.Min < m.Min {
					m.Min = h.Min
				}
				if h.Max > m.Max {
					m.Max = h.Max
				}
			}
			m.Count += h.Count
			m.Sum += h.Sum
			for i, n := range h.Buckets {
				if i < len(m.Buckets) {
					m.Buckets[i] += n
				}
			}
		}
	}
	for n, v := range counters {
		out.Counters = append(out.Counters, CounterVal{Name: n, Value: v})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	for n, v := range gauges {
		out.Gauges = append(out.Gauges, GaugeVal{Name: n, Value: v})
	}
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	for _, h := range hists {
		out.Hists = append(out.Hists, *h)
	}
	sort.Slice(out.Hists, func(i, j int) bool { return out.Hists[i].Name < out.Hists[j].Name })
	return out
}

// WriteText renders the snapshot as aligned plain text.
func (s *Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== telemetry: %s ==\n", s.Name)
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > width {
			width = len(g.Name)
		}
	}
	for _, h := range s.Hists {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	for _, c := range s.Counters {
		fmt.Fprintf(w, "  %-*s %12d\n", width, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "  %-*s %12d\n", width, g.Name, g.Value)
	}
	for _, h := range s.Hists {
		fmt.Fprintf(w, "  %-*s count=%d mean=%dns p50=%dns p99=%dns max=%dns\n",
			width, h.Name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max)
	}
}

// jsonHist is the JSON shape for a histogram: summary quantiles, not raw
// buckets (those are an internal representation).
type jsonHist struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	Mean  int64  `json:"mean_ns"`
	P50   int64  `json:"p50_ns"`
	P99   int64  `json:"p99_ns"`
	Min   int64  `json:"min_ns"`
	Max   int64  `json:"max_ns"`
}

type jsonMetric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type jsonSnapshot struct {
	Name     string       `json:"name"`
	Counters []jsonMetric `json:"counters"`
	Gauges   []jsonMetric `json:"gauges"`
	Hists    []jsonHist   `json:"histograms"`
}

func (s *Snapshot) toJSON() jsonSnapshot {
	js := jsonSnapshot{Name: s.Name, Counters: []jsonMetric{}, Gauges: []jsonMetric{}, Hists: []jsonHist{}}
	for _, c := range s.Counters {
		js.Counters = append(js.Counters, jsonMetric{Name: c.Name, Value: int64(c.Value)})
	}
	for _, g := range s.Gauges {
		js.Gauges = append(js.Gauges, jsonMetric{Name: g.Name, Value: g.Value})
	}
	for _, h := range s.Hists {
		js.Hists = append(js.Hists, jsonHist{Name: h.Name, Count: h.Count, Mean: h.Mean(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99), Min: h.Min, Max: h.Max})
	}
	return js
}

// WriteJSON renders the snapshot as indented JSON (fields in fixed order,
// so output is deterministic).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.toJSON())
}

// WriteSnapshotsJSON renders several snapshots as one JSON array.
func WriteSnapshotsJSON(w io.Writer, snaps []*Snapshot) error {
	arr := make([]jsonSnapshot, 0, len(snaps))
	for _, s := range snaps {
		arr = append(arr, s.toJSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}

// promName sanitizes a metric name into Prometheus form.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("demikernel_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. The registry name becomes a "registry" label; histograms emit
// cumulative le buckets (non-empty edges only, plus +Inf), _sum and _count.
func (s *Snapshot) WritePrometheus(w io.Writer) {
	label := fmt.Sprintf("{registry=%q}", s.Name)
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", n, n, label, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", n, n, label, g.Value)
	}
	for _, h := range s.Hists {
		n := promName(h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, cnt := range h.Buckets {
			if cnt == 0 {
				continue
			}
			cum += cnt
			fmt.Fprintf(w, "%s_bucket{registry=%q,le=\"%d\"} %d\n", n, s.Name, bucketHigh(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{registry=%q,le=\"+Inf\"} %d\n", n, s.Name, h.Count)
		fmt.Fprintf(w, "%s_sum%s %d\n", n, label, h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", n, label, h.Count)
	}
}
