package telemetry

import "math/bits"

// Log-linear histogram layout (HdrHistogram-style): values 0..histSub-1
// each get their own bucket; above that, every power-of-two octave is
// split into histSub linear sub-buckets, so relative error is bounded by
// 1/histSub (12.5%) across the full int64 range. The bucket array is a
// fixed-size struct field: recording never allocates.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // 8 linear sub-buckets per octave
	// Octaves run from exponent histSubBits (values >= 8) to 62: values are
	// non-negative int64, so the top bucket's upper edge is exactly MaxInt64.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// bucketFor maps a non-negative value to its bucket index.
//
//demi:nonalloc
func bucketFor(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	frac := (u >> (uint(exp) - histSubBits)) & (histSub - 1)
	return histSub + (exp-histSubBits)*histSub + int(frac)
}

// bucketHigh returns the largest value that maps to bucket i — the
// representative used for quantile estimates (a deterministic upper bound).
func bucketHigh(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	oct := (i-histSub)/histSub + histSubBits
	frac := int64((i - histSub) % histSub)
	low := int64(1)<<uint(oct) | frac<<uint(oct-histSubBits)
	return low + int64(1)<<uint(oct-histSubBits) - 1
}

// A Histogram summarizes a distribution of int64 values (latency
// nanoseconds, window bytes, queue depths) in log-linear buckets. Observe
// is allocation-free; quantiles are computed at export time from the
// buckets, so merged (multi-core) histograms quantile exactly like live
// ones.
type Histogram struct {
	buckets  [histBuckets]uint64
	count    uint64
	sum      int64
	min, max int64
}

// Observe records one value. Negative values clamp to zero.
//
//demi:nonalloc histograms record per-I/O latencies on the datapath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of recorded values (post-clamping). Exposed so
// cross-checks (e.g. dtrace critical-path accounting vs telemetry) can
// bound sampled sums against the full population.
func (h *Histogram) Sum() int64 { return h.sum }

// snapshot copies the histogram into its export form.
func (h *Histogram) snapshot(name string) HistVal {
	hv := HistVal{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Buckets: make([]uint64, histBuckets)}
	copy(hv.Buckets, h.buckets[:])
	return hv
}

// Quantile returns the q-th quantile (0 < q <= 1) without snapshotting.
func (h *Histogram) Quantile(q float64) int64 {
	return quantile(h.buckets[:], h.count, h.min, h.max, q)
}

// HistVal is a histogram snapshot: buckets plus exact count/sum/min/max.
// Merging HistVals bucket-wise (export.go) preserves quantile fidelity.
type HistVal struct {
	Name    string
	Count   uint64
	Sum     int64
	Min     int64
	Max     int64
	Buckets []uint64
}

// Quantile returns the q-th quantile (0 < q <= 1) of the snapshot.
func (hv HistVal) Quantile(q float64) int64 {
	return quantile(hv.Buckets, hv.Count, hv.Min, hv.Max, q)
}

// Mean returns the exact average of recorded values.
func (hv HistVal) Mean() int64 {
	if hv.Count == 0 {
		return 0
	}
	return hv.Sum / int64(hv.Count)
}

// quantile scans cumulative bucket counts for the q-th quantile's bucket
// and returns its upper edge, clamped into the exact [min, max] range.
func quantile(buckets []uint64, count uint64, min, max int64, q float64) int64 {
	if count == 0 {
		return 0
	}
	rank := uint64(q * float64(count))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum uint64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			v := bucketHigh(i)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}
