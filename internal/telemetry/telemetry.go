// Package telemetry is the microsecond-scale observability subsystem: a
// registry of named counters, gauges and log-linear latency histograms that
// are allocation-free on the datapath, plus a fixed-capacity flight
// recorder of qtoken lifecycle spans (flight.go) and exporters in aligned
// text, JSON and Prometheus text format (export.go, http.go).
//
// The paper's whole argument is about where nanoseconds go (Fig 5's in-OS
// breakdown, §5.4's 12-cycle context switch, §6.3's 53 ns ingress
// dispatch); because kernel-bypass datapaths also bypass the kernel's
// observability, the datapath OS must carry its own. Design rules:
//
//   - Hot-path operations (Counter.Inc/Add, Gauge.Set, Histogram.Observe,
//     FlightRecorder.Record) perform zero Go heap allocations and take no
//     locks. Demikernel datapaths are single-threaded per core by design,
//     so metrics are plain per-core structs; multi-core views are built by
//     merging per-core snapshots at export time (export.go).
//   - All timestamps fed to the subsystem are virtual-time nanoseconds, so
//     two same-seed simulation runs produce byte-identical telemetry dumps.
//     Exports order metrics by name, never by map iteration.
//   - The package imports only the standard library; every layer of the
//     datapath (devices, allocator, scheduler, libOSes) can depend on it.
package telemetry

import "sort"

// A Counter is a monotonically increasing metric. The zero value is usable,
// but counters are normally minted by Registry.Counter so they appear in
// exports.
type Counter struct{ v uint64 }

// Inc adds one.
//
//demi:nonalloc counters are incremented per I/O on the datapath
func (c *Counter) Inc() { c.v++ }

// Add adds n.
//
//demi:nonalloc
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// A Gauge is an instantaneous signed value (queue depth, occupancy).
type Gauge struct{ v int64 }

// Set replaces the value.
//
//demi:nonalloc
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the value by d (negative to decrease).
//
//demi:nonalloc
func (g *Gauge) Add(d int64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// A Registry names and owns one domain's metrics — typically one core's
// libOS or one device. Metric creation and snapshotting may allocate;
// operating on the returned metrics does not. Registries are not
// goroutine-safe: each belongs to the single thread that runs its datapath.
type Registry struct {
	name     string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	samples  map[string]func() int64
}

// NewRegistry returns an empty registry labeled name (e.g. "server/cpu0").
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		samples:  make(map[string]func() int64),
	}
}

// Name returns the registry's label.
func (r *Registry) Name() string { return r.name }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// Sample registers a gauge whose value is read by calling fn at snapshot
// time. It is the bridge for pre-existing stats structs: the struct stays
// the hot-path truth, and the registry pulls it into exports with zero
// datapath cost.
func (r *Registry) Sample(name string, fn func() int64) { r.samples[name] = fn }

// Snapshot captures every metric's current value, with names sorted for
// deterministic export. Sampled gauges are evaluated here.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Name: r.name}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterVal{Name: name, Value: c.v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeVal{Name: name, Value: g.v})
	}
	for name, fn := range r.samples {
		s.Gauges = append(s.Gauges, GaugeVal{Name: name, Value: fn()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	for name, h := range r.hists {
		s.Hists = append(s.Hists, h.snapshot(name))
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
