package telemetry

import "net/http"

// NewHandler serves the observability endpoints for a real-OS (Catnap)
// server:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshots
//	/flight        flight-recorder dump (text)
//	/flight.json   flight-recorder dump (JSON)
//
// snap is called per request to collect fresh snapshots; fr may be nil.
// This is explicitly opt-in for real-OS servers: the handler reads metrics
// while the datapath thread writes them, which is benign for monotonic
// counters but means scrapes are advisory, not transactional. Simulated
// stacks never use this path — they export deterministically at end of run.
func NewHandler(snap func() []*Snapshot, fr *FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		for _, s := range snap() {
			s.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteSnapshotsJSON(w, snap())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if fr == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		fr.WriteDump(w)
	})
	mux.HandleFunc("/flight.json", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = fr.WriteDumpJSON(w)
	})
	return mux
}

// ListenAndServe serves NewHandler on addr. It blocks; run it in its own
// goroutine.
func ListenAndServe(addr string, snap func() []*Snapshot, fr *FlightRecorder) error {
	return http.ListenAndServe(addr, NewHandler(snap, fr))
}
