package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("rx")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("rx") != c {
		t.Fatalf("Counter(rx) did not return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	live := int64(3)
	r.Sample("live", func() int64 { return live })

	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 5 {
		t.Fatalf("snapshot counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 2 {
		t.Fatalf("snapshot gauges = %+v", s.Gauges)
	}
	// Sorted by name: depth < live.
	if s.Gauges[0].Name != "depth" || s.Gauges[1].Name != "live" || s.Gauges[1].Value != 3 {
		t.Fatalf("snapshot gauges = %+v", s.Gauges)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Log-linear with 8 sub-buckets per octave bounds relative error at 12.5%.
	p50 := h.Quantile(0.50)
	if p50 < 500 || p50 > 570 {
		t.Fatalf("p50 = %d, want ~500", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990 || p99 > 1000 {
		t.Fatalf("p99 = %d, want ~990 (clamped to max 1000)", p99)
	}
	if got := h.Quantile(1.0); got != 1000 {
		t.Fatalf("p100 = %d, want 1000 (max)", got)
	}
	hv := h.snapshot("lat")
	if hv.Mean() != 500 {
		t.Fatalf("mean = %d, want 500", hv.Mean())
	}
	if hv.Min != 1 || hv.Max != 1000 {
		t.Fatalf("min/max = %d/%d", hv.Min, hv.Max)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's upper edge must map back to that bucket, and bucket
	// edges must be strictly increasing.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		hi := bucketHigh(i)
		if hi <= prev {
			t.Fatalf("bucket %d: high %d not > previous %d", i, hi, prev)
		}
		if hi >= 0 && bucketFor(hi) != i {
			t.Fatalf("bucket %d: bucketFor(%d) = %d", i, hi, bucketFor(hi))
		}
		prev = hi
	}
}

func TestMerge(t *testing.T) {
	a := NewRegistry("cpu0")
	a.Counter("rx").Add(10)
	a.Gauge("depth").Set(2)
	ha := a.Histogram("lat")
	for i := int64(0); i < 100; i++ {
		ha.Observe(100)
	}
	b := NewRegistry("cpu1")
	b.Counter("rx").Add(5)
	b.Counter("tx").Add(1)
	b.Gauge("depth").Set(3)
	hb := b.Histogram("lat")
	for i := int64(0); i < 100; i++ {
		hb.Observe(900)
	}

	m := Merge("merged", a.Snapshot(), b.Snapshot())
	if m.Name != "merged" {
		t.Fatalf("name = %q", m.Name)
	}
	if len(m.Counters) != 2 || m.Counters[0].Name != "rx" || m.Counters[0].Value != 15 ||
		m.Counters[1].Name != "tx" || m.Counters[1].Value != 1 {
		t.Fatalf("merged counters = %+v", m.Counters)
	}
	if len(m.Gauges) != 1 || m.Gauges[0].Value != 5 {
		t.Fatalf("merged gauges = %+v", m.Gauges)
	}
	if len(m.Hists) != 1 {
		t.Fatalf("merged hists = %+v", m.Hists)
	}
	h := m.Hists[0]
	if h.Count != 200 || h.Min != 100 || h.Max != 900 {
		t.Fatalf("merged hist count/min/max = %d/%d/%d", h.Count, h.Min, h.Max)
	}
	// Half the samples at 100, half at 900: p50 lands in the 100 bucket,
	// p99 in the 900 bucket (within log-linear error).
	if p50 := h.Quantile(0.50); p50 > 112 {
		t.Fatalf("merged p50 = %d, want ~100", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 800 {
		t.Fatalf("merged p99 = %d, want ~900", p99)
	}
}

func TestMergeEqualsBucketSum(t *testing.T) {
	// The merged histogram must equal the bucket-wise sum of the shards.
	a, b := NewRegistry("a"), NewRegistry("b")
	ha, hb := a.Histogram("lat"), b.Histogram("lat")
	for i := int64(0); i < 5000; i += 7 {
		ha.Observe(i)
		hb.Observe(i * 3)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	m := Merge("m", sa, sb)
	for i := range m.Hists[0].Buckets {
		want := sa.Hists[0].Buckets[i] + sb.Hists[0].Buckets[i]
		if m.Hists[0].Buckets[i] != want {
			t.Fatalf("bucket %d: merged %d != sum %d", i, m.Hists[0].Buckets[i], want)
		}
	}
}

func TestFlightRecorder(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	for i := 0; i < 6; i++ {
		fr.Record(Span{Token: uint64(i + 1), Op: OpPop,
			Issued: int64(i * 100), Completed: int64(i*100 + 10 + i), Redeemed: int64(i*100 + 20 + 2*i)})
	}
	if fr.Total() != 6 {
		t.Fatalf("total = %d", fr.Total())
	}
	spans := fr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained = %d, want 4 (ring capacity)", len(spans))
	}
	// Oldest two evicted; chronological order preserved.
	if spans[0].Token != 3 || spans[3].Token != 6 {
		t.Fatalf("spans = %+v", spans)
	}
	slow := fr.Slowest()
	if len(slow) != 2 {
		t.Fatalf("slowest = %+v", slow)
	}
	// Total latency grows with i, so tokens 6 and 5 are slowest.
	if slow[0].Token != 6 || slow[1].Token != 5 {
		t.Fatalf("slowest = %+v", slow)
	}
	if slow[0].Total() <= slow[1].Total() {
		t.Fatalf("slowest not sorted: %d then %d", slow[0].Total(), slow[1].Total())
	}
}

func TestFlightDumpFormat(t *testing.T) {
	fr := NewFlightRecorder(16, 4)
	fr.Record(Span{Token: 1, Op: OpPush, QD: 3, Issued: 100, Completed: 1500, Redeemed: 1700})
	fr.Record(Span{Token: 2, Op: OpPop, QD: 3, Issued: 200, Completed: 5200, Redeemed: 5900})
	var buf bytes.Buffer
	fr.WriteDump(&buf)
	out := buf.String()
	for _, want := range []string{
		"stage order (Fig 5 in-OS decomposition): issue(libcall) -> complete(I/O stack) -> redeem(wait/sched)",
		"push", "pop", "slowest spans:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// The pop span is slower and must rank first.
	if strings.Index(out, "slowest") > strings.Index(out, "rank") {
		t.Fatalf("dump layout unexpected:\n%s", out)
	}
}

func TestExportersDeterministic(t *testing.T) {
	build := func() *Snapshot {
		r := NewRegistry("node/os")
		r.Counter("tcp.retransmits").Add(3)
		r.Counter("rx.frames").Add(99)
		r.Gauge("ooo-depth").Set(2)
		h := r.Histogram("qtoken.latency_ns")
		for i := int64(0); i < 1000; i++ {
			h.Observe(i * 13 % 7919)
		}
		return r.Snapshot()
	}
	render := func(s *Snapshot) string {
		var buf bytes.Buffer
		s.WriteText(&buf)
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		s.WritePrometheus(&buf)
		return buf.String()
	}
	a, b := render(build()), render(build())
	if a != b {
		t.Fatalf("exports not byte-identical:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "demikernel_tcp_retransmits") {
		t.Fatalf("prometheus name sanitization missing:\n%s", a)
	}
	if !strings.Contains(a, `le="+Inf"`) {
		t.Fatalf("prometheus histogram missing +Inf bucket:\n%s", a)
	}
	if !strings.Contains(a, "== telemetry: node/os ==") {
		t.Fatalf("text header missing:\n%s", a)
	}
}
