package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span operation codes. Values mirror core.OpCode's ordinals so library
// OSes convert with a plain cast (telemetry cannot import core: core
// imports telemetry).
const (
	OpInvalid uint8 = iota
	OpPush
	OpPop
	OpAccept
	OpConnect
)

var opNames = [...]string{"invalid", "push", "pop", "accept", "connect"}

// OpName returns the operation mnemonic for a span's Op byte.
func OpName(op uint8) string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return "op?"
}

// A Span is one qtoken's lifecycle: the libcall issued it, the I/O stack
// completed it, and a wait call redeemed it. Stage order matches Figure 5's
// in-OS decomposition of a request: issue (libcall entry) → complete (time
// in the OS and on the wire) → redeem (scheduler/wait handoff back to the
// application). Timestamps are virtual-time nanoseconds.
type Span struct {
	Token     uint64 // the qtoken
	Core      int32  // virtual CPU that issued the operation
	Op        uint8  // OpPush, OpPop, ... (core.OpCode ordinal)
	QD        int32  // queue descriptor the operation ran on
	Issued    int64  // libcall entry (push/pop/accept/connect)
	Completed int64  // I/O stack delivered the result
	Redeemed  int64  // wait returned the event to the application
}

// InOS is the issue→complete stage: time inside the datapath OS (and, for
// network pops, on the wire).
//
//demi:nonalloc
func (s Span) InOS() int64 { return s.Completed - s.Issued }

// RedeemDelay is the complete→redeem stage: time until the wait loop
// handed the completion back.
//
//demi:nonalloc
func (s Span) RedeemDelay() int64 { return s.Redeemed - s.Completed }

// Total is the full issue→redeem latency.
//
//demi:nonalloc
func (s Span) Total() int64 { return s.Redeemed - s.Issued }

// A FlightRecorder keeps the last capacity qtoken spans in a ring plus the
// k slowest spans seen over the whole run. Record is allocation-free; all
// state is fixed-capacity. It is single-threaded like the datapath that
// feeds it (simulated cores share one safely: the engine runs one core at
// a time).
type FlightRecorder struct {
	ring    []Span
	next    int
	wrapped bool
	total   uint64
	slow    []Span // unordered top-k by Total; ties keep the earlier span
}

// NewFlightRecorder returns a recorder holding the last capacity spans and
// the k slowest.
func NewFlightRecorder(capacity, k int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	if k < 1 {
		k = 1
	}
	return &FlightRecorder{ring: make([]Span, capacity), slow: make([]Span, 0, k)}
}

// Record adds one completed span. Zero allocations: the ring and top-k
// table are preallocated.
//
//demi:nonalloc every redeemed qtoken records a span
//demi:budget=400ns static estimate 264ns; runs on every completion
func (f *FlightRecorder) Record(s Span) {
	f.total++
	f.ring[f.next] = s
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrapped = true
	}
	if len(f.slow) < cap(f.slow) {
		f.slow = append(f.slow, s)
		return
	}
	mi := 0
	for i := 1; i < len(f.slow); i++ {
		if f.slow[i].Total() < f.slow[mi].Total() {
			mi = i
		}
	}
	if s.Total() > f.slow[mi].Total() {
		f.slow[mi] = s
	}
}

// Total returns the number of spans ever recorded (recent spans beyond the
// ring capacity are evicted but still counted).
func (f *FlightRecorder) Total() uint64 { return f.total }

// Spans returns the retained recent spans in recording order.
func (f *FlightRecorder) Spans() []Span {
	if !f.wrapped {
		return append([]Span(nil), f.ring[:f.next]...)
	}
	out := make([]Span, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	return append(out, f.ring[:f.next]...)
}

// Slowest returns the k slowest spans, most expensive first (ties broken
// by token for determinism).
func (f *FlightRecorder) Slowest() []Span {
	out := append([]Span(nil), f.slow...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Token < out[j].Token
	})
	return out
}

// micros renders nanoseconds as microseconds with three decimals.
func micros(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e3) }

// WriteDump renders the recorder as text: a per-op stage breakdown over
// the retained spans, then the slowest spans with their per-stage split.
// The output is deterministic for deterministic inputs.
func (f *FlightRecorder) WriteDump(w io.Writer) {
	spans := f.Spans()
	fmt.Fprintf(w, "flight recorder: %d spans recorded, %d retained, %d slowest tracked\n",
		f.total, len(spans), len(f.slow))
	fmt.Fprintf(w, "stage order (Fig 5 in-OS decomposition): issue(libcall) -> complete(I/O stack) -> redeem(wait/sched)\n")

	// Aggregate per-stage latency by op over the retained spans.
	var inOS, redeem, total [len(opNames)]Histogram
	for _, s := range spans {
		op := s.Op
		if int(op) >= len(opNames) {
			op = OpInvalid
		}
		inOS[op].Observe(s.InOS())
		redeem[op].Observe(s.RedeemDelay())
		total[op].Observe(s.Total())
	}
	fmt.Fprintf(w, "  %-8s %8s  %22s  %22s  %12s\n",
		"op", "spans", "in-os p50/p99 (us)", "redeem p50/p99 (us)", "total p99")
	for op := range opNames {
		if total[op].Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s %8d  %10s/%-11s  %10s/%-11s  %12s\n",
			opNames[op], total[op].Count(),
			micros(inOS[op].Quantile(0.50)), micros(inOS[op].Quantile(0.99)),
			micros(redeem[op].Quantile(0.50)), micros(redeem[op].Quantile(0.99)),
			micros(total[op].Quantile(0.99)))
	}

	slow := f.Slowest()
	if len(slow) == 0 {
		return
	}
	fmt.Fprintf(w, "slowest spans:\n")
	fmt.Fprintf(w, "  %4s %8s %4s %-8s %4s %14s %12s %12s %12s\n",
		"rank", "token", "core", "op", "qd", "issued (us)", "in-os (us)", "redeem (us)", "total (us)")
	for i, s := range slow {
		fmt.Fprintf(w, "  %4d %8d %4d %-8s %4d %14s %12s %12s %12s\n",
			i+1, s.Token, s.Core, OpName(s.Op), s.QD,
			micros(s.Issued), micros(s.InOS()), micros(s.RedeemDelay()), micros(s.Total()))
	}
}

// jsonSpan is one span in the machine-readable dump: identity, raw
// timestamps, and the derived per-stage split (all nanoseconds).
type jsonSpan struct {
	Token     uint64 `json:"token"`
	Core      int32  `json:"core"`
	Op        string `json:"op"`
	QD        int32  `json:"qd"`
	Issued    int64  `json:"issued_ns"`
	Completed int64  `json:"completed_ns"`
	Redeemed  int64  `json:"redeemed_ns"`
	InOS      int64  `json:"in_os_ns"`
	Redeem    int64  `json:"redeem_ns"`
	Total     int64  `json:"total_ns"`
}

func toJSONSpan(s Span) jsonSpan {
	return jsonSpan{
		Token: s.Token, Core: s.Core, Op: OpName(s.Op), QD: s.QD,
		Issued: s.Issued, Completed: s.Completed, Redeemed: s.Redeemed,
		InOS: s.InOS(), Redeem: s.RedeemDelay(), Total: s.Total(),
	}
}

// jsonFlight mirrors WriteDump's content as JSON.
type jsonFlight struct {
	Total    uint64     `json:"total_spans"`
	Retained int        `json:"retained"`
	Recent   []jsonSpan `json:"recent"`
	Slowest  []jsonSpan `json:"slowest"`
}

// WriteDumpJSON renders the recorder as JSON: the retained recent spans in
// recording order plus the slowest table, each span with its per-stage
// split. Deterministic for deterministic inputs, like WriteDump.
func (f *FlightRecorder) WriteDumpJSON(w io.Writer) error {
	spans := f.Spans()
	slow := f.Slowest()
	out := jsonFlight{
		Total:    f.total,
		Retained: len(spans),
		Recent:   make([]jsonSpan, 0, len(spans)),
		Slowest:  make([]jsonSpan, 0, len(slow)),
	}
	for _, s := range spans {
		out.Recent = append(out.Recent, toJSONSpan(s))
	}
	for _, s := range slow {
		out.Slowest = append(out.Slowest, toJSONSpan(s))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
