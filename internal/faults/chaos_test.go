package faults_test

// The chaos soak is the fault engine's acceptance test: four application
// pairs run concurrently while every fault class fires, and the run must
// end with all client operations completed-or-errored, no buffer leaks,
// and byte-identical telemetry when the seed replays. The harness itself
// lives in internal/bench (it reuses the benchmark testbed); this test
// pins the seeds CI runs under -race.

import (
	"testing"

	"demikernel/internal/bench"
)

func TestChaosSoak(t *testing.T) {
	for _, seed := range bench.ChaosSeeds {
		opts := bench.DefaultChaosOpts()
		opts.Seed = seed
		r1, err := bench.RunChaos(opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for site, n := range r1.Faults {
			if n == 0 {
				t.Errorf("seed %d: fault site %s never fired", seed, site)
			}
		}
		if r1.Outstanding != 0 || r1.LiveBufs != 0 {
			t.Errorf("seed %d: %d outstanding qtokens, %d live bufs after drain",
				seed, r1.Outstanding, r1.LiveBufs)
		}
		// Determinism: the same seed must replay byte-for-byte.
		r2, err := bench.RunChaos(opts)
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if r1.Telemetry != r2.Telemetry {
			t.Errorf("seed %d: telemetry diverged between identical runs", seed)
		}
		t.Logf("seed %d: echo %d/%d kv %d/%d/%d mint %d/%d faults %v",
			seed, r1.EchoOK, r1.EchoErrs, r1.KVOK, r1.KVDegraded, r1.KVErrs,
			r1.MintOK, r1.MintErrs, r1.Faults)
	}
}
