// Package faults is the deterministic, seed-driven fault-plan engine. A
// Plan names a set of injection sites ("dpdk.corrupt", "spdk.ioerr", ...);
// each site decides, per operation and per virtual-time instant, whether a
// fault fires. All randomness derives from the plan seed and the site name,
// so two runs with the same seed — regardless of site registration order —
// inject byte-identical fault sequences, and a fault observed in a chaos
// soak can be replayed exactly for debugging (mirroring the telemetry
// subsystem's byte-identical-dump guarantee).
//
// Sites are pull-model hooks: the device or allocator calls Fire (point
// faults: drop/corrupt/error this one operation) or Active (window faults:
// a stall or link flap that persists for Spec.Duration of virtual time) on
// its own datapath. A nil *Site is inert — a device holds a nil site for
// every fault class the current plan does not configure, so the hooks cost
// one nil check when chaos is off.
//
// The package imports only sim (time + RNG) and telemetry (fire counters),
// so every layer of the datapath can depend on it.
package faults

import (
	"time"

	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
)

// Spec declares when a site's fault fires. Triggers compose: a fault fires
// when the op counter matches Every (if set), or the probability draw
// succeeds (if Prob > 0) — but never outside the [After, Until] virtual-time
// window, and never more than Max times.
type Spec struct {
	// Prob fires the fault on each eligible operation with this
	// probability (0 disables the probabilistic trigger).
	Prob float64
	// Every fires the fault on every Every-th eligible operation at the
	// site (0 disables the counter trigger). Primes make good values:
	// they decorrelate from power-of-two batch sizes.
	Every uint64
	// After suppresses the fault before this virtual-time offset, letting
	// connection handshakes complete cleanly. Zero means from the start.
	After time.Duration
	// Until suppresses the fault at or past this virtual-time offset.
	// Zero means forever.
	Until time.Duration
	// Max caps the total number of firings (0 means unlimited).
	Max uint64
	// Duration is the length of the window a firing opens, for window
	// faults queried through Active (stalls, link flaps, latency spikes).
	Duration time.Duration
}

// An Observer is notified of every site firing: the site's name and the
// virtual-time instant. The distributed tracer hooks in here so chaos
// faults appear inside the traces of the requests they hit.
type Observer func(name string, at sim.Time)

// A Plan is one seeded fault schedule: a namespace of sites plus the
// telemetry registry that records, deterministically, how often each fired.
type Plan struct {
	seed  uint64
	reg   *telemetry.Registry
	sites map[string]*Site
	obs   Observer
}

// NewPlan returns an empty plan. Every site minted from it derives its
// random stream from seed and the site's name only.
func NewPlan(seed uint64) *Plan {
	return &Plan{
		seed:  seed,
		reg:   telemetry.NewRegistry("faults"),
		sites: make(map[string]*Site),
	}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Telemetry returns the registry holding one "faults.<name>" counter per
// site, for asserting fault coverage and for determinism dumps.
func (p *Plan) Telemetry() *telemetry.Registry { return p.reg }

// Site registers (or returns the existing) injection site called name,
// configured by spec. Re-registering a name returns the original site
// unchanged, so plans can be handed to several devices safely.
func (p *Plan) Site(name string, spec Spec) *Site {
	if s, ok := p.sites[name]; ok {
		return s
	}
	s := &Site{
		name:  name,
		spec:  spec,
		rng:   sim.NewRand(p.seed ^ hashName(name)),
		fired: p.reg.Counter("faults." + name),
		obs:   p.obs,
	}
	p.sites[name] = s
	return s
}

// SetObserver installs fn on every current and future site of the plan.
// Observation is passive — it never changes whether or when faults fire,
// so an observed plan replays identically to an unobserved one.
func (p *Plan) SetObserver(fn Observer) {
	p.obs = fn
	for _, s := range p.sites {
		s.obs = fn
	}
}

// Fired returns how many times the named site has fired (0 for unknown
// sites), for soak-harness coverage assertions.
func (p *Plan) Fired(name string) uint64 {
	if s, ok := p.sites[name]; ok {
		return s.Count()
	}
	return 0
}

// hashName is FNV-1a, fixed here (not hash/fnv) so the mapping from site
// name to RNG stream is frozen independent of the standard library.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// A Site is one named injection point. All methods are safe on a nil
// receiver and report "no fault", so hooks need no configuration checks.
type Site struct {
	name    string
	spec    Spec
	rng     *sim.Rand
	fired   *telemetry.Counter
	obs     Observer
	ops     uint64
	count   uint64
	openEnd sim.Time
}

// Name returns the site's name ("" for nil).
func (s *Site) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Spec returns the site's configuration (zero for nil), so hooks can read
// payload parameters such as Duration.
func (s *Site) Spec() Spec {
	if s == nil {
		return Spec{}
	}
	return s.spec
}

// Count returns how many times the site has fired.
func (s *Site) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.count
}

// Rand returns the site's private random stream, for fault payload
// decisions (which bit to flip, how many blocks to tear). It is nil for a
// nil site; only call it after Fire or Active reported true.
func (s *Site) Rand() *sim.Rand {
	if s == nil {
		return nil
	}
	return s.rng
}

func (s *Site) inWindow(now sim.Time) bool {
	if now < sim.Time(s.spec.After) {
		return false
	}
	if s.spec.Until > 0 && now >= sim.Time(s.spec.Until) {
		return false
	}
	return true
}

// Fire reports whether a point fault fires for the operation happening at
// virtual time now. Each call counts one eligible operation.
func (s *Site) Fire(now sim.Time) bool {
	if s == nil {
		return false
	}
	if !s.inWindow(now) || (s.spec.Max > 0 && s.count >= s.spec.Max) {
		return false
	}
	s.ops++
	hit := s.spec.Every > 0 && s.ops%s.spec.Every == 0
	if !hit && s.spec.Prob > 0 {
		hit = s.rng.Bool(s.spec.Prob)
	}
	if hit {
		s.count++
		s.fired.Inc()
		if s.obs != nil {
			s.obs(s.name, now)
		}
	}
	return hit
}

// Active reports whether a window fault covers virtual time now. A trigger
// (same rules as Fire) opens a window of Spec.Duration; while a window is
// open, Active returns true without consuming further triggers.
func (s *Site) Active(now sim.Time) bool {
	if s == nil {
		return false
	}
	if now < s.openEnd {
		return true
	}
	if s.Fire(now) {
		s.openEnd = now.Add(s.spec.Duration)
		return true
	}
	return false
}
