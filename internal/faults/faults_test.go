package faults

import (
	"testing"
	"time"

	"demikernel/internal/sim"
)

// Two plans with the same seed must produce the identical firing sequence
// at a site, regardless of how many unrelated sites exist or the order in
// which sites were registered.
func TestSameSeedDeterminism(t *testing.T) {
	run := func(registerExtraFirst bool) []bool {
		p := NewPlan(42)
		if registerExtraFirst {
			p.Site("unrelated", Spec{Prob: 0.5})
		}
		s := p.Site("dpdk.corrupt", Spec{Prob: 0.1})
		if !registerExtraFirst {
			p.Site("unrelated", Spec{Prob: 0.5})
		}
		var seq []bool
		for i := 0; i < 1000; i++ {
			seq = append(seq, s.Fire(sim.Time(i)))
		}
		return seq
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing sequence diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("Prob=0.1 over 1000 ops never fired")
	}
}

func TestEveryAndMax(t *testing.T) {
	p := NewPlan(1)
	s := p.Site("spdk.ioerr", Spec{Every: 7, Max: 3})
	var at []int
	for i := 1; i <= 100; i++ {
		if s.Fire(0) {
			at = append(at, i)
		}
	}
	want := []int{7, 14, 21}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if p.Fired("spdk.ioerr") != 3 {
		t.Fatalf("Plan.Fired = %d, want 3", p.Fired("spdk.ioerr"))
	}
}

func TestTimeWindow(t *testing.T) {
	p := NewPlan(9)
	s := p.Site("w", Spec{Every: 1, After: time.Millisecond, Until: 2 * time.Millisecond})
	if s.Fire(sim.Time(time.Millisecond) - 1) {
		t.Fatal("fired before After")
	}
	if !s.Fire(sim.Time(time.Millisecond)) {
		t.Fatal("did not fire inside window")
	}
	if s.Fire(sim.Time(2 * time.Millisecond)) {
		t.Fatal("fired at Until")
	}
}

// A firing opens a Spec.Duration window during which Active stays true
// without consuming additional triggers.
func TestActiveWindow(t *testing.T) {
	p := NewPlan(7)
	s := p.Site("dpdk.linkflap", Spec{Every: 1, Max: 1, Duration: 100 * time.Microsecond})
	if !s.Active(0) {
		t.Fatal("first Active did not trigger")
	}
	if !s.Active(sim.Time(99 * time.Microsecond)) {
		t.Fatal("Active false inside open window")
	}
	if s.Active(sim.Time(100 * time.Microsecond)) {
		t.Fatal("Active true after window closed (Max=1 exhausted)")
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

// Nil sites are inert: every method reports "no fault".
func TestNilSiteSafe(t *testing.T) {
	var s *Site
	if s.Fire(0) || s.Active(0) || s.Count() != 0 || s.Name() != "" || s.Rand() != nil {
		t.Fatal("nil *Site is not inert")
	}
}

// The telemetry registry carries one counter per site; counter values track
// firings so chaos harnesses can assert coverage from the dump alone.
func TestTelemetryCounters(t *testing.T) {
	p := NewPlan(3)
	s := p.Site("rnic.qperr", Spec{Every: 2})
	for i := 0; i < 10; i++ {
		s.Fire(0)
	}
	snap := p.Telemetry().Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == "faults.rnic.qperr" {
			found = true
			if c.Value != 5 {
				t.Fatalf("counter = %d, want 5", c.Value)
			}
		}
	}
	if !found {
		t.Fatal("faults.rnic.qperr counter missing from snapshot")
	}
}

// TestObserver: an installed observer sees every firing (name and instant),
// reaches sites registered before and after installation, and never changes
// whether or when faults fire — an observed plan replays identically to an
// unobserved same-seed plan.
func TestObserver(t *testing.T) {
	run := func(observe bool) ([]bool, []sim.Time) {
		p := NewPlan(11)
		early := p.Site("dpdk.corrupt", Spec{Prob: 0.2})
		var seen []sim.Time
		if observe {
			p.SetObserver(func(name string, at sim.Time) {
				if name != "dpdk.corrupt" && name != "spdk.ioerr" {
					t.Errorf("observer saw unknown site %q", name)
				}
				seen = append(seen, at)
			})
		}
		late := p.Site("spdk.ioerr", Spec{Every: 5})
		var seq []bool
		for i := 0; i < 200; i++ {
			seq = append(seq, early.Fire(sim.Time(i)))
			seq = append(seq, late.Fire(sim.Time(i)))
		}
		return seq, seen
	}
	plain, _ := run(false)
	observed, seen := run(true)
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("observation perturbed the firing sequence at op %d", i)
		}
	}
	fired := 0
	for _, f := range observed {
		if f {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no faults fired; the test proved nothing")
	}
	if len(seen) != fired {
		t.Fatalf("observer saw %d firings, sites fired %d", len(seen), fired)
	}
}
