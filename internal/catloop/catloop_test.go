package catloop

import (
	"bytes"
	"strings"
	"testing"

	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
)

var (
	ipA = wire.IPAddr{127, 0, 0, 1}
	ipB = wire.IPAddr{127, 0, 0, 2}
)

func pair(seed uint64) (*sim.Engine, *LibOS, *LibOS) {
	eng := sim.NewEngine(seed)
	hub := NewHub(eng)
	la := New(hub, eng.NewNode("loop-a"), ipA)
	lb := New(hub, eng.NewNode("loop-b"), ipB)
	return eng, la, lb
}

func echoServer(t *testing.T, l *LibOS, port uint16) func() {
	return func() {
		qd, err := l.Socket(core.SockStream)
		if err != nil {
			t.Errorf("socket: %v", err)
			return
		}
		if err := l.Bind(qd, l.Addr(port)); err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		if err := l.Listen(qd, 8); err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		aqt, _ := l.Accept(qd)
		ev, err := l.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for {
			pqt, _ := l.Pop(conn)
			pev, err := l.Wait(pqt)
			if err != nil || pev.Err != nil {
				return
			}
			if len(pev.SGA.Segs) == 0 {
				l.Close(conn)
				l.Close(qd)
				return
			}
			wqt, err := l.Push(conn, pev.SGA)
			if err != nil {
				return
			}
			if _, err := l.Wait(wqt); err != nil {
				return
			}
			pev.SGA.Free() // network contract: free after push completes
		}
	}
}

// TestLoopbackTCPEcho runs a real TCP handshake, echo and teardown with
// both stacks in one process, no NIC or switch involved.
func TestLoopbackTCPEcho(t *testing.T) {
	eng, la, lb := pair(1)
	eng.Spawn(lb.Node(), echoServer(t, lb, 80))
	var got []byte
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, err := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect wait: %v %v", err, ev.Err)
			return
		}
		msg := []byte("over the loopback wire")
		qt, err := la.Push(qd, core.SGA(memory.CopyFrom(la.Heap(), msg)))
		if err != nil {
			t.Errorf("push: %v", err)
			return
		}
		la.Wait(qt)
		for len(got) < len(msg) {
			pqt, _ := la.Pop(qd)
			ev, err := la.Wait(pqt)
			if err != nil || ev.Err != nil {
				t.Errorf("pop: %v %v", err, ev.Err)
				return
			}
			got = append(got, ev.SGA.Flatten()...)
			ev.SGA.Free()
		}
		la.Close(qd)
	})
	eng.Run()
	if string(got) != "over the loopback wire" {
		t.Fatalf("echo = %q", got)
	}
	if la.Stats().TCPRetransmits != 0 || lb.Stats().TCPRetransmits != 0 {
		t.Fatalf("retransmits on a lossless wire: %d/%d",
			la.Stats().TCPRetransmits, lb.Stats().TCPRetransmits)
	}
}

// TestLoopbackThreeParty checks MAC routing with more than two stacks on
// the hub: a middle relay terminates one connection per side.
func TestLoopbackThreeParty(t *testing.T) {
	eng := sim.NewEngine(2)
	hub := NewHub(eng)
	la := New(hub, eng.NewNode("a"), ipA)
	lb := New(hub, eng.NewNode("b"), ipB)
	lc := New(hub, eng.NewNode("c"), wire.IPAddr{127, 0, 0, 3})
	eng.Spawn(lc.Node(), echoServer(t, lc, 90))
	// b relays one message a -> c and the reply back.
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		if err := lb.Bind(qd, lb.Addr(85)); err != nil {
			t.Errorf("relay bind: %v", err)
			return
		}
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		up := ev.NewQD
		down, _ := lb.Socket(core.SockStream)
		cqt, _ := lb.Connect(down, core.Addr{IP: wire.IPAddr{127, 0, 0, 3}, Port: 90})
		if ev, err := lb.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("relay connect: %v %v", err, ev.Err)
			return
		}
		pqt, _ := lb.Pop(up)
		pev, err := lb.Wait(pqt)
		if err != nil || pev.Err != nil {
			return
		}
		wqt, _ := lb.Push(down, pev.SGA)
		lb.Wait(wqt)
		pev.SGA.Free()
		pqt, _ = lb.Pop(down)
		pev, err = lb.Wait(pqt)
		if err != nil || pev.Err != nil {
			return
		}
		wqt, _ = lb.Push(up, pev.SGA)
		lb.Wait(wqt)
		pev.SGA.Free()
		lb.Close(down)
		lb.Close(up)
		lb.Close(qd)
	})
	var got []byte
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 85})
		if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect: %v %v", err, ev.Err)
			return
		}
		msg := bytes.Repeat([]byte("abc"), 5)
		qt, _ := la.Push(qd, core.SGA(memory.CopyFrom(la.Heap(), msg)))
		la.Wait(qt)
		for len(got) < len(msg) {
			pqt, _ := la.Pop(qd)
			ev, err := la.Wait(pqt)
			if err != nil || ev.Err != nil {
				t.Errorf("pop: %v %v", err, ev.Err)
				return
			}
			got = append(got, ev.SGA.Flatten()...)
			ev.SGA.Free()
		}
		la.Close(qd)
	})
	eng.Run()
	if string(got) != strings.Repeat("abc", 5) {
		t.Fatalf("relayed = %q", got)
	}
}

// TestLoopbackDeterminism: same seed, byte-identical telemetry.
func TestLoopbackDeterminism(t *testing.T) {
	run := func() string {
		eng, la, lb := pair(7)
		eng.Spawn(lb.Node(), echoServer(t, lb, 80))
		eng.Spawn(la.Node(), func() {
			qd, _ := la.Socket(core.SockStream)
			cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
			if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
				return
			}
			for i := 0; i < 16; i++ {
				qt, err := la.Push(qd, core.SGA(memory.CopyFrom(la.Heap(), bytes.Repeat([]byte{byte(i)}, 32))))
				if err != nil {
					return
				}
				la.Wait(qt)
				pqt, _ := la.Pop(qd)
				ev, err := la.Wait(pqt)
				if err != nil || ev.Err != nil {
					return
				}
				ev.SGA.Free()
			}
			la.Close(qd)
		})
		eng.Run()
		var sb strings.Builder
		la.Telemetry().Snapshot().WriteText(&sb)
		lb.Telemetry().Snapshot().WriteText(&sb)
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed telemetry differs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}
