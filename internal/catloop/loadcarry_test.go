package catloop

import (
	"testing"

	"demikernel/internal/core"
	"demikernel/internal/sim"
	"demikernel/internal/wire"
)

// TestLoadTrailerCarriedAcrossLoopback pins the header-carry contract: a
// stack with a load probe installed appends the load trailer to every IPv4
// frame it sends over the loopback wire, the trailer arrives intact at the
// peer (observed via the hub tap), and the peer's parser — which trims to
// the IPv4 TotalLen — never surfaces it to the application.
func TestLoadTrailerCarriedAcrossLoopback(t *testing.T) {
	eng := sim.NewEngine(11)
	hub := NewHub(eng)
	srv := New(hub, eng.NewNode("srv"), ipA)
	cli := New(hub, eng.NewNode("cli"), ipB)

	load := uint32(0)
	srv.SetLoadProbe(func() (uint16, uint32) {
		load++
		return 9, load
	})

	var carried, bare int
	var lastSrv uint16
	var lastLoad uint32
	hub.SetTap(func(frame []byte) {
		if s, l, ok := wire.ParseLoadTrailer(frame); ok {
			carried++
			lastSrv, lastLoad = s, l
		} else {
			bare++
		}
	})

	const port = 700
	const rounds = 3
	eng.Spawn(srv.Node(), func() {
		qd, err := srv.Socket(core.SockDgram)
		if err != nil {
			t.Errorf("socket: %v", err)
			return
		}
		if err := srv.Bind(qd, srv.Addr(port)); err != nil {
			t.Errorf("bind: %v", err)
			return
		}
		for i := 0; i < rounds; i++ {
			pqt, _ := srv.Pop(qd)
			ev, err := srv.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			wqt, werr := srv.PushTo(qd, ev.SGA, ev.From)
			if werr != nil {
				ev.SGA.Free()
				continue
			}
			if _, werr := srv.Wait(wqt); werr != nil {
				return
			}
			ev.SGA.Free()
		}
	})

	var got int
	eng.Spawn(cli.Node(), func() {
		qd, _ := cli.Socket(core.SockDgram)
		for i := 0; i < rounds; i++ {
			msg := cli.Heap().Alloc(32)
			wqt, err := cli.PushTo(qd, core.SGA(msg), core.Addr{IP: ipA, Port: port})
			if err != nil {
				msg.Free()
				t.Errorf("push: %v", err)
				return
			}
			msg.Free()
			if _, err := cli.Wait(wqt); err != nil {
				return
			}
			pqt, _ := cli.Pop(qd)
			ev, err := cli.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			if n := ev.SGA.TotalLen(); n != 32 {
				t.Errorf("round %d: echoed %d bytes, want 32 (trailer leaked into payload?)", i, n)
			}
			ev.SGA.Free()
		}
		eng.Stop()
	})
	eng.Run()

	if got = carried; got != rounds {
		t.Errorf("frames carrying load trailer = %d, want %d (one per server reply)", got, rounds)
	}
	if bare != rounds {
		t.Errorf("bare frames = %d, want %d (client requests carry no trailer)", bare, rounds)
	}
	if lastSrv != 9 || lastLoad != uint32(rounds) {
		t.Errorf("last trailer = (server %d, load %d), want (9, %d)", lastSrv, lastLoad, rounds)
	}
}
