// Package catloop is the TCP-loopback library OS: real Catnip TCP state
// machines running over an in-process wire instead of a NIC. It is the
// POSIX-compatible counterpart to catmem for co-located services — the same
// sockets, handshakes, retransmission timers and congestion control as
// cross-host Catnip, but frames hop between stacks through one address
// space, paying a memcpy and a wakeup rather than PCIe and a switch.
//
// Architecturally this is the control experiment for the service-chain
// benchmark: catmem shows what intra-host communication costs when the
// transport knows the peer shares memory; catloop shows what the same chain
// pays for keeping the network abstraction. The delta is the price of
// protocol generality.
package catloop

import (
	"time"

	"demikernel/internal/catnip"
	"demikernel/internal/costmodel"
	"demikernel/internal/demi"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// Hub is the in-process wire: every attached stack's frames are routed by
// destination MAC to a peer's receive queue after the loopback latency.
type Hub struct {
	eng     *sim.Engine
	latency time.Duration
	devs    []*loopDev
	libs    []*LibOS
	tap     func(frame []byte)
}

// NewHub returns an empty loopback hub on eng.
func NewHub(eng *sim.Engine) *Hub {
	return &Hub{eng: eng, latency: costmodel.LoopbackWire}
}

// SetTap installs fn to observe every frame at the instant the hub delivers
// it to a peer's receive queue — the loopback wire's equivalent of a port
// mirror. Tests use it to assert what actually crosses the wire (e.g. that
// load/trace trailers survive the hop intact). A nil fn removes the tap.
func (h *Hub) SetTap(fn func(frame []byte)) { h.tap = fn }

// loopDev adapts the hub to catnip.Device: one rx queue of raw frames,
// filled by peers' TxBursts.
type loopDev struct {
	hub  *Hub
	node *sim.Node
	mac  simnet.MAC
	rxq  [][]byte
}

// MAC returns the device's synthetic locally-administered address.
func (d *loopDev) MAC() simnet.MAC { return d.mac }

// RxBurst drains up to max queued frames. The mbufs carry no pool — frames
// were copied at Tx time, so Free is a no-op and nothing leaks.
func (d *loopDev) RxBurst(max int) []*dpdkdev.Mbuf {
	n := len(d.rxq)
	if n == 0 {
		return nil
	}
	if n > max {
		n = max
	}
	out := make([]*dpdkdev.Mbuf, n)
	for i := 0; i < n; i++ {
		out[i] = &dpdkdev.Mbuf{Data: d.rxq[i]}
		d.rxq[i] = nil
	}
	d.rxq = d.rxq[n:]
	return out
}

// TxBurst routes frames to peers by destination MAC. Each frame is copied
// once — the in-process wire's memcpy — because the sender's stack may
// reuse its buffer the moment TxBurst returns.
func (d *loopDev) TxBurst(frames [][]byte) int {
	for _, f := range frames {
		if len(f) < 6 {
			continue
		}
		var dst simnet.MAC
		copy(dst[:], f[:6])
		cp := make([]byte, len(f))
		copy(cp, f)
		if dst.IsBroadcast() {
			for _, p := range d.hub.devs {
				if p != d {
					p.deliver(cp)
				}
			}
			continue
		}
		for _, p := range d.hub.devs {
			if p.mac == dst {
				p.deliver(cp)
				break
			}
		}
	}
	return len(frames)
}

// deliver schedules the frame's arrival on the peer after the wire
// latency; the event wakes the peer node, whose next poll picks it up.
func (p *loopDev) deliver(frame []byte) {
	h := p.hub
	h.eng.At(h.eng.Now().Add(h.latency), p.node, func() {
		if h.tap != nil {
			h.tap(frame)
		}
		p.rxq = append(p.rxq, frame)
	})
}

// LibOS is a Catnip instance bound to the loopback hub. It embeds the full
// stack — applications use it exactly like cross-host Catnip.
type LibOS struct {
	*catnip.LibOS
	dev *loopDev
}

// New attaches a new TCP-loopback instance for node to the hub. ARP is
// seeded both ways with every existing instance: co-located processes
// share a neighbor table by construction, so no resolution traffic flows.
func New(hub *Hub, node *sim.Node, ip wire.IPAddr) *LibOS {
	dev := &loopDev{
		hub:  hub,
		node: node,
		mac:  simnet.MAC{0x02, 0, 0, 0, 0, byte(len(hub.devs) + 1)},
	}
	hub.devs = append(hub.devs, dev)
	l := &LibOS{LibOS: catnip.NewOnDevice(node, dev, catnip.DefaultConfig(ip)), dev: dev}
	for _, peer := range hub.libs {
		l.SeedARP(peer.IP(), peer.dev.mac)
		peer.SeedARP(ip, dev.mac)
	}
	hub.libs = append(hub.libs, l)
	return l
}

// Interface conformance: Catloop inherits the full PDPIX surface from the
// embedded Catnip stack.
var (
	_ demi.LibOS    = (*LibOS)(nil)
	_ demi.Drivable = (*LibOS)(nil)
)
