// Package evloop is a small libevent-style callback layer over PDPIX — the
// library the paper hopes for in §4.2: "wait_* is a low-level API, so we
// hope to eventually implement libraries, like libevent, to reduce
// application changes." Applications register callbacks per queue; the
// loop multiplexes every outstanding operation through one wait_any set.
//
// Unlike epoll-based libevent, a callback receives the completed data
// directly (no follow-up read), and exactly one callback fires per
// completion — the two epoll problems PDPIX removes (paper §3.3).
package evloop

import (
	"fmt"

	"demikernel/internal/core"
	"demikernel/internal/demi"
)

// ConnHandler receives events for one connection.
type ConnHandler interface {
	// OnData is called with received data (ownership of sga passes to the
	// handler). Returning false closes the connection.
	OnData(conn core.QDesc, sga core.SGArray) bool
	// OnClose is called when the peer closes or errors.
	OnClose(conn core.QDesc)
}

// AcceptHandler decides per-connection handlers.
type AcceptHandler func(conn core.QDesc) ConnHandler

// Loop multiplexes listeners and connections over one wait set.
type Loop struct {
	lib     demi.LibOS
	tokens  []core.QToken
	entries map[core.QToken]entry
	stopped bool
}

type entryKind int

const (
	kindAccept entryKind = iota
	kindPop
	kindPush
)

type entry struct {
	kind    entryKind
	conn    core.QDesc
	handler ConnHandler
	accept  AcceptHandler
	sga     core.SGArray // kindPush: released on completion
}

// New builds an event loop over the libOS.
func New(lib demi.LibOS) *Loop {
	return &Loop{lib: lib, entries: make(map[core.QToken]entry)}
}

// Listen binds and listens on addr; each accepted connection gets the
// handler returned by onAccept.
func (l *Loop) Listen(addr core.Addr, backlog int, onAccept AcceptHandler) error {
	qd, err := l.lib.Socket(core.SockStream)
	if err != nil {
		return err
	}
	if err := l.lib.Bind(qd, addr); err != nil {
		return err
	}
	if err := l.lib.Listen(qd, backlog); err != nil {
		return err
	}
	return l.armAccept(qd, onAccept)
}

func (l *Loop) armAccept(qd core.QDesc, onAccept AcceptHandler) error {
	qt, err := l.lib.Accept(qd)
	if err != nil {
		return err
	}
	l.add(qt, entry{kind: kindAccept, conn: qd, accept: onAccept})
	return nil
}

// Watch starts delivering a connected queue's data to handler.
func (l *Loop) Watch(conn core.QDesc, handler ConnHandler) error {
	return l.armPop(conn, handler)
}

func (l *Loop) armPop(conn core.QDesc, handler ConnHandler) error {
	qt, err := l.lib.Pop(conn)
	if err != nil {
		return err
	}
	l.add(qt, entry{kind: kindPop, conn: conn, handler: handler})
	return nil
}

// Send pushes sga on conn; the loop frees the buffers once delivered.
func (l *Loop) Send(conn core.QDesc, sga core.SGArray) error {
	qt, err := l.lib.Push(conn, sga)
	if err != nil {
		return err
	}
	l.add(qt, entry{kind: kindPush, conn: conn, sga: sga})
	return nil
}

// Stop makes Run return after the current dispatch.
func (l *Loop) Stop() { l.stopped = true }

func (l *Loop) add(qt core.QToken, e entry) {
	l.tokens = append(l.tokens, qt)
	l.entries[qt] = e
}

func (l *Loop) remove(i int) entry {
	qt := l.tokens[i]
	e := l.entries[qt]
	delete(l.entries, qt)
	l.tokens = append(l.tokens[:i], l.tokens[i+1:]...)
	return e
}

// Run dispatches completions until Stop is called, the libOS stops, or no
// operations remain armed.
func (l *Loop) Run() error {
	for !l.stopped {
		if len(l.tokens) == 0 {
			return nil
		}
		i, ev, err := l.lib.WaitAny(l.tokens, -1)
		if err != nil {
			return nil // libOS stopped
		}
		e := l.remove(i)
		switch e.kind {
		case kindAccept:
			if ev.Err == nil {
				if h := e.accept(ev.NewQD); h != nil {
					if err := l.armPop(ev.NewQD, h); err != nil {
						return fmt.Errorf("evloop: arm pop: %w", err)
					}
				} else {
					l.lib.Close(ev.NewQD)
				}
			}
			if err := l.armAccept(e.conn, e.accept); err != nil {
				return fmt.Errorf("evloop: re-arm accept: %w", err)
			}
		case kindPush:
			e.sga.Free()
		case kindPop:
			if ev.Err != nil || len(ev.SGA.Segs) == 0 {
				e.handler.OnClose(e.conn)
				l.lib.Close(e.conn)
				continue
			}
			if !e.handler.OnData(e.conn, ev.SGA) {
				e.handler.OnClose(e.conn)
				l.lib.Close(e.conn)
				continue
			}
			if err := l.armPop(e.conn, e.handler); err != nil {
				e.handler.OnClose(e.conn)
				l.lib.Close(e.conn)
			}
		}
	}
	return nil
}
