package evloop

import (
	"testing"
	"time"

	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

var (
	ipS = wire.IPAddr{10, 13, 0, 1}
	ipC = wire.IPAddr{10, 13, 0, 2}
)

// echoHandler echoes everything and counts messages.
type echoHandler struct {
	loop   *Loop
	served *int
	closed *bool
}

func (h *echoHandler) OnData(conn core.QDesc, sga core.SGArray) bool {
	*h.served++
	h.loop.Send(conn, sga)
	return true
}

func (h *echoHandler) OnClose(core.QDesc) { *h.closed = true }

func TestEventLoopEchoServer(t *testing.T) {
	eng := sim.NewEngine(88)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	ns, nc := eng.NewNode("srv"), eng.NewNode("cli")
	ps := dpdkdev.Attach(sw, ns, simnet.DefaultLink(), 8192, 0)
	pc := dpdkdev.Attach(sw, nc, simnet.DefaultLink(), 8192, 0)
	ls := catnip.New(ns, ps, catnip.DefaultConfig(ipS))
	lc := catnip.New(nc, pc, catnip.DefaultConfig(ipC))
	ls.SeedARP(ipC, pc.MAC())
	lc.SeedARP(ipS, ps.MAC())

	served := 0
	closed := false
	eng.Spawn(ns, func() {
		loop := New(ls)
		err := loop.Listen(core.Addr{IP: ipS, Port: 80}, 8, func(conn core.QDesc) ConnHandler {
			return &echoHandler{loop: loop, served: &served, closed: &closed}
		})
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		loop.Run()
	})
	const rounds = 25
	got := 0
	eng.Spawn(nc, func() {
		qd, _ := lc.Socket(core.SockStream)
		cqt, _ := lc.Connect(qd, core.Addr{IP: ipS, Port: 80})
		if ev, err := lc.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		for i := 0; i < rounds; i++ {
			msg := memory.CopyFrom(lc.Heap(), []byte("callback me"))
			lc.Push(qd, core.SGA(msg))
			msg.Free()
			pqt, _ := lc.Pop(qd)
			ev, err := lc.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			got += ev.SGA.TotalLen()
			ev.SGA.Free()
		}
		lc.Close(qd)
		lc.WaitAny(nil, 100*time.Millisecond)
	})
	eng.Run()
	if served != rounds {
		t.Fatalf("handler served %d messages, want %d", served, rounds)
	}
	if got != rounds*len("callback me") {
		t.Fatalf("client echoed %d bytes", got)
	}
	if !closed {
		t.Error("OnClose never fired after client close")
	}
}

// rejectingHandler closes every connection after the first message.
type rejectingHandler struct{ loop *Loop }

func (h *rejectingHandler) OnData(conn core.QDesc, sga core.SGArray) bool {
	sga.Free()
	return false // drop the connection
}
func (h *rejectingHandler) OnClose(core.QDesc) {}

func TestEventLoopHandlerCanReject(t *testing.T) {
	eng := sim.NewEngine(89)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	ns, nc := eng.NewNode("srv"), eng.NewNode("cli")
	ps := dpdkdev.Attach(sw, ns, simnet.DefaultLink(), 8192, 0)
	pc := dpdkdev.Attach(sw, nc, simnet.DefaultLink(), 8192, 0)
	ls := catnip.New(ns, ps, catnip.DefaultConfig(ipS))
	lc := catnip.New(nc, pc, catnip.DefaultConfig(ipC))
	ls.SeedARP(ipC, pc.MAC())
	lc.SeedARP(ipS, ps.MAC())
	eng.Spawn(ns, func() {
		loop := New(ls)
		loop.Listen(core.Addr{IP: ipS, Port: 80}, 8, func(conn core.QDesc) ConnHandler {
			return &rejectingHandler{loop: loop}
		})
		loop.Run()
	})
	sawEOF := false
	eng.Spawn(nc, func() {
		qd, _ := lc.Socket(core.SockStream)
		cqt, _ := lc.Connect(qd, core.Addr{IP: ipS, Port: 80})
		if ev, err := lc.Wait(cqt); err != nil || ev.Err != nil {
			return
		}
		msg := memory.CopyFrom(lc.Heap(), []byte("x"))
		lc.Push(qd, core.SGA(msg))
		pqt, _ := lc.Pop(qd)
		ev, err := lc.Wait(pqt)
		if err == nil && (ev.Err != nil || len(ev.SGA.Segs) == 0) {
			sawEOF = true
		}
		lc.Close(qd)
		lc.WaitAny(nil, 100*time.Millisecond)
	})
	eng.Run()
	if !sawEOF {
		t.Fatal("client did not observe the server-side close")
	}
}
