package simnet

import (
	"testing"
	"time"

	"demikernel/internal/sim"
)

// slowLink returns a link slow enough that back-to-back frames queue at the
// egress port: 1 Gbps serializes a 1000 B frame in 8 µs.
func slowLink() LinkParams {
	return LinkParams{Latency: 300 * time.Nanosecond, BandwidthBps: 1e9}
}

// TestEgressQueueDepthAndDrops drives a burst through one egress port with
// a bounded queue and checks depth tracking, the peak gauge and the drop
// counter.
func TestEgressQueueDepthAndDrops(t *testing.T) {
	eng := sim.NewEngine(3)
	params := DefaultSwitch()
	params.TxQueueCap = 4
	sw := NewSwitch(eng, params)
	// a uplinks fast so the burst reaches the switch back-to-back; b's slow
	// down link is where the queue forms.
	a := sw.Attach(eng.NewNode("a"), DefaultLink(), 0)
	b := sw.Attach(eng.NewNode("b"), slowLink(), 0)

	const burst = 10
	eng.Spawn(a.Node(), func() {
		for i := 0; i < burst; i++ {
			a.Send(frame(b.MAC(), a.MAC(), 986)) // 1000 B frames
		}
	})
	eng.Run()

	bs := b.Stats()
	if bs.EgressDrops != uint64(burst-params.TxQueueCap) {
		t.Errorf("EgressDrops = %d, want %d", bs.EgressDrops, burst-params.TxQueueCap)
	}
	if bs.EgressPeak != params.TxQueueCap {
		t.Errorf("EgressPeak = %d, want %d", bs.EgressPeak, params.TxQueueCap)
	}
	if bs.RxFrames != uint64(params.TxQueueCap) {
		t.Errorf("delivered %d frames, want %d", bs.RxFrames, params.TxQueueCap)
	}
	if d := b.EgressDepth(eng.Now()); d != 0 {
		t.Errorf("EgressDepth after drain = %d, want 0", d)
	}

	// The registry snapshot carries the per-port views.
	snap := sw.Telemetry().Snapshot()
	found := false
	for _, g := range snap.Gauges {
		if g.Name == "switch.port01.egress_drops" {
			found = true
			if g.Value != int64(burst-params.TxQueueCap) {
				t.Errorf("telemetry egress_drops = %d", g.Value)
			}
		}
	}
	if !found {
		t.Error("per-port egress_drops gauge missing from switch telemetry")
	}
}

// steerHook redirects every unicast frame to a fixed port and consumes
// frames whose payload starts with a poison byte.
type steerHook struct {
	to       *Port
	steered  int
	consumed int
}

func (h *steerHook) Forward(f Frame, from *Port) (Frame, *Port, bool) {
	if len(f.Data) > 14 && f.Data[14] == 0xEE {
		h.consumed++
		return f, nil, false
	}
	if !f.Dst().IsBroadcast() {
		h.steered++
		return f, h.to, true
	}
	return f, nil, true
}

func TestForwardHookSteersAndConsumes(t *testing.T) {
	eng := sim.NewEngine(5)
	sw := NewSwitch(eng, DefaultSwitch())
	a := sw.Attach(eng.NewNode("a"), DefaultLink(), 0)
	b := sw.Attach(eng.NewNode("b"), DefaultLink(), 0)
	c := sw.Attach(eng.NewNode("c"), DefaultLink(), 0)
	hook := &steerHook{to: c}
	sw.SetHook(hook)

	eng.Spawn(a.Node(), func() {
		a.Send(frame(b.MAC(), a.MAC(), 50)) // addressed to b, steered to c
		poison := frame(b.MAC(), a.MAC(), 50)
		poison.Data[14] = 0xEE
		a.Send(poison) // consumed by the hook
	})
	eng.Run()

	if b.Stats().RxFrames != 0 {
		t.Errorf("b received %d frames despite steering hook", b.Stats().RxFrames)
	}
	if c.Stats().RxFrames != 1 {
		t.Errorf("c received %d frames, want 1 steered", c.Stats().RxFrames)
	}
	if hook.steered != 1 || hook.consumed != 1 {
		t.Errorf("hook saw steered=%d consumed=%d", hook.steered, hook.consumed)
	}
}

func TestPortIndexStable(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, DefaultSwitch())
	for i := 0; i < 3; i++ {
		p := sw.Attach(eng.NewNode("n"), DefaultLink(), 0)
		if p.Index() != i {
			t.Errorf("port %d has Index %d", i, p.Index())
		}
	}
	if len(sw.Ports()) != 3 {
		t.Errorf("Ports() = %d entries", len(sw.Ports()))
	}
}
