// Package simnet simulates the datacenter network fabric that Demikernel-Go
// devices attach to: NIC ports joined by full-duplex links to a
// store-and-forward switch. Links model propagation latency, serialization
// (bandwidth), loss, duplication and reordering, so protocol stacks above
// (Catnip's TCP, Catmint's flow control) exercise their full recovery paths.
//
// The fabric stands in for the paper's Arista 7060CX switch and Mellanox
// NICs; its default parameters follow the paper's testbed (§7.1): 100 Gbps
// links and a 450 ns minimum switching latency.
package simnet

import (
	"fmt"
	"time"

	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the usual colon-separated hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// A Frame is a raw Ethernet frame on the wire. The fabric treats it as
// opaque bytes apart from the destination and source addresses in the first
// 12 bytes.
type Frame struct {
	Data []byte
}

// Dst returns the destination MAC (frame bytes 0..5).
func (f Frame) Dst() MAC {
	var m MAC
	copy(m[:], f.Data[0:6])
	return m
}

// Src returns the source MAC (frame bytes 6..11).
func (f Frame) Src() MAC {
	var m MAC
	copy(m[:], f.Data[6:12])
	return m
}

// LinkParams configures one attachment link (both directions share the
// parameters but have independent serialization state).
type LinkParams struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BandwidthBps is the line rate in bits per second; zero means
	// infinite (no serialization delay).
	BandwidthBps float64
	// LossProb is the probability a frame is dropped in transit.
	LossProb float64
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// ReorderProb is the probability a frame is delayed by an extra
	// ReorderJitter, letting later frames overtake it.
	ReorderProb   float64
	ReorderJitter time.Duration
}

// DefaultLink returns parameters modelling the paper's testbed NIC link:
// 100 Gbps, 300 ns one-way (NIC + cable), lossless.
func DefaultLink() LinkParams {
	return LinkParams{Latency: 300 * time.Nanosecond, BandwidthBps: 100e9}
}

// direction tracks serialization state for one direction of a link.
type direction struct {
	params    LinkParams
	busyUntil sim.Time
	rng       *sim.Rand

	// Stats
	sent, dropped, duplicated uint64
}

// transmitDelay computes when a frame of n bytes finishes serializing if
// transmission starts at t, updating the busy horizon.
func (d *direction) transmitDelay(t sim.Time, n int) sim.Time {
	start := t
	if d.busyUntil > start {
		start = d.busyUntil
	}
	end := start
	if d.params.BandwidthBps > 0 {
		bits := float64(n * 8)
		end = start.Add(time.Duration(bits / d.params.BandwidthBps * 1e9))
	}
	d.busyUntil = end
	return end
}

// arrival computes the delivery time for a frame finishing serialization at
// txEnd, applying reorder jitter. It reports ok=false if the frame is lost.
func (d *direction) arrival(txEnd sim.Time, n int) (at sim.Time, dup bool, ok bool) {
	d.sent++
	if d.params.LossProb > 0 && d.rng.Bool(d.params.LossProb) {
		d.dropped++
		return 0, false, false
	}
	at = txEnd.Add(d.params.Latency)
	if d.params.ReorderProb > 0 && d.rng.Bool(d.params.ReorderProb) {
		at = at.Add(time.Duration(d.rng.Int63n(int64(d.params.ReorderJitter) + 1)))
	}
	dup = d.params.DupProb > 0 && d.rng.Bool(d.params.DupProb)
	if dup {
		d.duplicated++
	}
	return at, dup, true
}

// PortStats counts frames seen by a port.
type PortStats struct {
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	RxDropped          uint64 // dropped because the rx ring was full
	EgressDrops        uint64 // dropped because the switch-side egress queue was full
	EgressPeak         int    // deepest the egress queue ever got
}

// An RxSink takes over receive-side delivery from the port's default rx
// ring. Multi-queue device models (dpdkdev with RSS) install one to
// classify each frame into their own per-queue rings at the instant it
// arrives, exactly as NIC receive-side-scaling hardware does. The sink
// runs inside the delivery event and owns all ring-bound/drop accounting
// for the frames it takes.
type RxSink interface {
	DeliverRx(f Frame)
}

// A Port is a NIC attachment point on the fabric. Device models (dpdkdev,
// rdmadev) wrap a Port; received frames accumulate in a bounded rx ring the
// device polls.
type Port struct {
	sw    *Switch
	node  *sim.Node
	mac   MAC
	index int       // attach order on the switch
	up    direction // port -> switch
	down  direction // switch -> port

	// eq holds the serialization-end times of frames occupying this port's
	// switch-side egress queue, oldest first. txEnd is nondecreasing per
	// port (the down link serializes in order), so pruning entries at or
	// before "now" from the front yields the instantaneous queue depth
	// without per-frame drain events.
	eq []sim.Time

	rx      []Frame
	rxLimit int
	promisc bool
	sink    RxSink
	stats   PortStats
}

// MAC returns the port's Ethernet address.
func (p *Port) MAC() MAC { return p.mac }

// Index returns the port's attach order on its switch — the stable port
// number used in telemetry names and by switch hooks (the rack ToR) to
// identify servers.
func (p *Port) Index() int { return p.index }

// EgressDepth returns the number of frames occupying the port's switch-side
// egress queue at virtual time now: frames admitted but not yet fully
// serialized onto the down link.
func (p *Port) EgressDepth(now sim.Time) int {
	p.pruneEgress(now)
	return len(p.eq)
}

// pruneEgress drops queue entries whose serialization finished by now.
func (p *Port) pruneEgress(now sim.Time) {
	i := 0
	for i < len(p.eq) && p.eq[i] <= now {
		i++
	}
	if i > 0 {
		p.eq = p.eq[i:]
	}
}

// Node returns the simulated host the port belongs to.
func (p *Port) Node() *sim.Node { return p.node }

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// SetPromiscuous controls whether the port accepts frames for other MACs.
func (p *Port) SetPromiscuous(on bool) { p.promisc = on }

// SetRxSink installs a receive sink, bypassing the default rx ring.
func (p *Port) SetRxSink(s RxSink) { p.sink = s }

// Send puts a frame on the wire at the owning node's current virtual time.
// The frame's source must be the port's MAC (enforced to catch stack bugs).
func (p *Port) Send(f Frame) { p.SendAt(f, p.node.Now()) }

// SendAt is Send with an explicit submission time — the clock of whichever
// virtual CPU issued the doorbell. Multi-queue devices use it so a core
// other than the port's attach node transmits at its own local time rather
// than the attach node's possibly-stale clock.
func (p *Port) SendAt(f Frame, now sim.Time) {
	if len(f.Data) < 14 {
		panic("simnet: runt frame")
	}
	if f.Src() != p.mac {
		panic(fmt.Sprintf("simnet: port %v sending frame with src %v", p.mac, f.Src()))
	}
	// Serialization copies the frame onto the wire: receivers own their
	// copy and may mutate it without aliasing the sender's buffers.
	f = Frame{Data: append([]byte(nil), f.Data...)}
	p.stats.TxFrames++
	p.stats.TxBytes += uint64(len(f.Data))
	txEnd := p.up.transmitDelay(now, len(f.Data))
	at, dup, ok := p.up.arrival(txEnd, len(f.Data))
	if !ok {
		return
	}
	eng := p.node.Engine()
	deliver := func(t sim.Time) {
		eng.At(t, nil, func() { p.sw.forward(f, p) })
	}
	deliver(at)
	if dup {
		deliver(at.Add(p.up.params.Latency))
	}
}

// enqueue places a frame in the rx ring (or hands it to the sink),
// dropping if the ring is full.
func (p *Port) enqueue(f Frame) {
	if p.sink != nil {
		p.stats.RxFrames++
		p.stats.RxBytes += uint64(len(f.Data))
		p.sink.DeliverRx(f)
		return
	}
	if p.rxLimit > 0 && len(p.rx) >= p.rxLimit {
		p.stats.RxDropped++
		return
	}
	p.stats.RxFrames++
	p.stats.RxBytes += uint64(len(f.Data))
	p.rx = append(p.rx, f)
}

// InjectRx places a frame directly in the receive ring, bypassing the
// fabric — the trace-replay and test hook. Call it from an engine event
// targeting the owning node, so the node wakes to process it exactly as it
// would a fabric delivery.
func (p *Port) InjectRx(f Frame) { p.enqueue(f) }

// Recv pops the oldest received frame, reporting ok=false when the ring is
// empty. Devices poll this from their fast path.
func (p *Port) Recv() (Frame, bool) {
	if len(p.rx) == 0 {
		return Frame{}, false
	}
	f := p.rx[0]
	p.rx[0] = Frame{}
	p.rx = p.rx[1:]
	return f, true
}

// RxPending returns the number of frames waiting in the rx ring.
func (p *Port) RxPending() int { return len(p.rx) }

// SwitchParams configures the fabric switch.
type SwitchParams struct {
	// Latency is the minimum switching (store-and-forward) delay.
	Latency time.Duration
	// TxQueueCap bounds each port's egress queue in frames (0 means
	// unbounded). A frame arriving for a port whose queue is full is
	// dropped and counted in that port's EgressDrops — the ToR hotspot
	// signal rack experiments watch.
	TxQueueCap int
}

// DefaultSwitch models the paper's Arista 7060CX: 450 ns minimum latency.
func DefaultSwitch() SwitchParams {
	return SwitchParams{Latency: 450 * time.Nanosecond}
}

// A ForwardHook intercepts every frame at switch ingress, before the MAC
// table runs. It may rewrite or trim the frame (e.g. strip a tracking
// trailer) and choose its egress port — the extension point the rack ToR
// model uses for inter-server load balancing. It returns the (possibly
// modified) frame, an explicit egress port or nil, and whether the frame
// should still be forwarded: (f, port, _) steers to port; (f, nil, true)
// falls back to normal MAC forwarding; (f, nil, false) consumes the frame.
type ForwardHook interface {
	Forward(f Frame, from *Port) (out Frame, to *Port, forward bool)
}

// A Switch joins ports and forwards frames by destination MAC, flooding
// broadcasts. Forwarding uses the static table built at Attach time (every
// port's MAC is known), which matches a learned steady state.
type Switch struct {
	eng    *sim.Engine
	params SwitchParams
	ports  []*Port
	byMAC  map[MAC]*Port
	macSeq uint64
	hook   ForwardHook

	reg          *telemetry.Registry
	forwarded    *telemetry.Counter // frames sent out exactly one port
	flooded      *telemetry.Counter // broadcast/unknown-unicast copies
	hookConsumed *telemetry.Counter // frames a hook absorbed
}

// NewSwitch creates a switch on the engine's fabric.
func NewSwitch(eng *sim.Engine, params SwitchParams) *Switch {
	s := &Switch{eng: eng, params: params, byMAC: make(map[MAC]*Port)}
	s.reg = telemetry.NewRegistry("simnet/switch")
	s.forwarded = s.reg.Counter("switch.frames_forwarded")
	s.flooded = s.reg.Counter("switch.frames_flooded")
	s.hookConsumed = s.reg.Counter("switch.frames_hook_consumed")
	return s
}

// Telemetry returns the switch's metric registry: aggregate forwarding
// counters plus, per port, egress queue-depth gauges (sampled at snapshot
// time), peak depth, and drop counters.
func (s *Switch) Telemetry() *telemetry.Registry { return s.reg }

// SetHook installs a forwarding hook (nil removes it).
func (s *Switch) SetHook(h ForwardHook) { s.hook = h }

// Ports returns the attached ports in attach order.
func (s *Switch) Ports() []*Port { return s.ports }

// NextMAC allocates a locally administered unicast MAC unique on this
// switch.
func (s *Switch) NextMAC() MAC {
	s.macSeq++
	v := s.macSeq
	return MAC{0x02, 0x44, 0x4d, byte(v >> 16), byte(v >> 8), byte(v)}
}

// Attach connects a new port for node to the switch over a link with the
// given parameters and returns it. rxRing bounds the receive ring (0 means
// unbounded).
func (s *Switch) Attach(node *sim.Node, params LinkParams, rxRing int) *Port {
	rng := s.eng.Rand().Fork()
	p := &Port{
		sw:      s,
		node:    node,
		mac:     s.NextMAC(),
		index:   len(s.ports),
		rxLimit: rxRing,
	}
	p.up = direction{params: params, rng: rng}
	p.down = direction{params: params, rng: rng.Fork()}
	s.ports = append(s.ports, p)
	s.byMAC[p.mac] = p
	name := fmt.Sprintf("switch.port%02d.", p.index)
	s.reg.Sample(name+"eq_depth", func() int64 { return int64(p.EgressDepth(s.eng.Now())) })
	s.reg.Sample(name+"eq_peak", func() int64 { return int64(p.stats.EgressPeak) })
	s.reg.Sample(name+"egress_drops", func() int64 { return int64(p.stats.EgressDrops) })
	s.reg.Sample(name+"tx_frames", func() int64 { return int64(p.stats.TxFrames) })
	s.reg.Sample(name+"rx_frames", func() int64 { return int64(p.stats.RxFrames) })
	return p
}

// forward runs at the instant a frame arrives at the switch ingress and
// schedules egress deliveries.
func (s *Switch) forward(f Frame, from *Port) {
	if s.hook != nil {
		var to *Port
		var fwd bool
		f, to, fwd = s.hook.Forward(f, from)
		if to != nil {
			s.forwarded.Inc()
			s.egress(f, to)
			return
		}
		if !fwd {
			s.hookConsumed.Inc()
			return
		}
	}
	dst := f.Dst()
	if dst.IsBroadcast() {
		for _, p := range s.ports {
			if p != from {
				s.flooded.Inc()
				s.egress(f, p)
			}
		}
		return
	}
	if p, ok := s.byMAC[dst]; ok {
		s.forwarded.Inc()
		s.egress(f, p)
		return
	}
	// Unknown unicast: flood, and promiscuous ports may claim it.
	for _, p := range s.ports {
		if p != from && p.promisc {
			s.flooded.Inc()
			s.egress(f, p)
		}
	}
}

// egress sends a frame out one port, applying switch latency, the bounded
// egress queue, and the down link's serialization/loss models, then waking
// the destination node.
func (s *Switch) egress(f Frame, to *Port) {
	t := s.eng.Now().Add(s.params.Latency)
	to.pruneEgress(t)
	if s.params.TxQueueCap > 0 && len(to.eq) >= s.params.TxQueueCap {
		to.stats.EgressDrops++
		return
	}
	txEnd := to.down.transmitDelay(t, len(f.Data))
	to.eq = append(to.eq, txEnd)
	if d := len(to.eq); d > to.stats.EgressPeak {
		to.stats.EgressPeak = d
	}
	at, dup, ok := to.down.arrival(txEnd, len(f.Data))
	if !ok {
		return
	}
	deliver := func(when sim.Time) {
		s.eng.At(when, to.node, func() { to.enqueue(f) })
	}
	deliver(at)
	if dup {
		deliver(at.Add(to.down.params.Latency))
	}
}
