package simnet

import (
	"testing"
	"time"

	"demikernel/internal/sim"
)

// frame builds a minimal Ethernet frame from dst, src and payload size.
func frame(dst, src MAC, n int) Frame {
	data := make([]byte, 14+n)
	copy(data[0:6], dst[:])
	copy(data[6:12], src[:])
	return Frame{Data: data}
}

// twoPorts wires two nodes to a default switch, returning engine and ports.
func twoPorts(t *testing.T, link LinkParams) (*sim.Engine, *Port, *Port) {
	t.Helper()
	eng := sim.NewEngine(7)
	sw := NewSwitch(eng, DefaultSwitch())
	a := sw.Attach(eng.NewNode("a"), link, 0)
	b := sw.Attach(eng.NewNode("b"), link, 0)
	return eng, a, b
}

func TestUnicastDelivery(t *testing.T) {
	eng, a, b := twoPorts(t, DefaultLink())
	var got Frame
	var at sim.Time
	eng.Spawn(a.Node(), func() {
		a.Send(frame(b.MAC(), a.MAC(), 50))
	})
	eng.Spawn(b.Node(), func() {
		for {
			if f, ok := b.Recv(); ok {
				got, at = f, b.Node().Now()
				return
			}
			if !b.Node().Park(sim.Infinity) {
				return
			}
		}
	})
	eng.Run()
	if got.Data == nil {
		t.Fatal("frame not delivered")
	}
	if got.Src() != a.MAC() || got.Dst() != b.MAC() {
		t.Errorf("frame addresses corrupted: src %v dst %v", got.Src(), got.Dst())
	}
	// 64 B at 100 Gbps ≈ 5.1 ns serialization each hop; latency 300 ns per
	// link + 450 ns switch: total just over 1.05 µs.
	min := sim.Time(0).Add(1050 * time.Nanosecond)
	max := sim.Time(0).Add(1200 * time.Nanosecond)
	if at < min || at > max {
		t.Errorf("delivery at %v, want within [%v, %v]", at, min, max)
	}
}

func TestBroadcastFloods(t *testing.T) {
	eng := sim.NewEngine(7)
	sw := NewSwitch(eng, DefaultSwitch())
	src := sw.Attach(eng.NewNode("src"), DefaultLink(), 0)
	var others []*Port
	for i := 0; i < 3; i++ {
		others = append(others, sw.Attach(eng.NewNode("dst"), DefaultLink(), 0))
	}
	eng.Spawn(src.Node(), func() {
		src.Send(frame(Broadcast, src.MAC(), 30))
	})
	eng.Run()
	for i, p := range others {
		if p.RxPending() != 1 {
			t.Errorf("port %d got %d frames, want 1", i, p.RxPending())
		}
	}
	if src.RxPending() != 0 {
		t.Error("broadcast echoed back to sender")
	}
}

func TestLossDropsFrames(t *testing.T) {
	link := DefaultLink()
	link.LossProb = 0.5
	eng, a, b := twoPorts(t, link)
	const n = 2000
	eng.Spawn(a.Node(), func() {
		for i := 0; i < n; i++ {
			a.Send(frame(b.MAC(), a.MAC(), 50))
			a.Node().Charge(100 * time.Nanosecond)
		}
	})
	eng.Run()
	got := int(b.Stats().RxFrames)
	if got == 0 || got == n {
		t.Fatalf("loss model inert: delivered %d of %d", got, n)
	}
	// Two independent 50% loss legs => ~25% delivery. Allow wide slack.
	if got < n/8 || got > n/2 {
		t.Errorf("delivered %d of %d, want roughly 25%%", got, n)
	}
}

func TestDuplication(t *testing.T) {
	link := DefaultLink()
	link.DupProb = 1.0
	eng, a, b := twoPorts(t, link)
	eng.Spawn(a.Node(), func() {
		a.Send(frame(b.MAC(), a.MAC(), 50))
	})
	eng.Run()
	// Dup on both legs: 1 frame becomes up to 4 copies; at least 2.
	if got := b.RxPending(); got < 2 {
		t.Errorf("got %d copies, want >= 2 with DupProb=1", got)
	}
}

func TestRxRingBoundDrops(t *testing.T) {
	eng := sim.NewEngine(7)
	sw := NewSwitch(eng, DefaultSwitch())
	a := sw.Attach(eng.NewNode("a"), DefaultLink(), 0)
	b := sw.Attach(eng.NewNode("b"), DefaultLink(), 4)
	eng.Spawn(a.Node(), func() {
		for i := 0; i < 10; i++ {
			a.Send(frame(b.MAC(), a.MAC(), 50))
			a.Node().Charge(time.Microsecond)
		}
	})
	eng.Run()
	if b.RxPending() != 4 {
		t.Errorf("rx ring holds %d, want 4", b.RxPending())
	}
	if b.Stats().RxDropped != 6 {
		t.Errorf("dropped %d, want 6", b.Stats().RxDropped)
	}
}

func TestSerializationDelayAtLowBandwidth(t *testing.T) {
	link := DefaultLink()
	link.BandwidthBps = 8e6 // 1 byte/µs: a 1000 B frame serializes in 1 ms
	eng, a, b := twoPorts(t, link)
	var at sim.Time
	eng.Spawn(a.Node(), func() {
		a.Send(frame(b.MAC(), a.MAC(), 1000-14))
	})
	eng.Spawn(b.Node(), func() {
		for b.RxPending() == 0 {
			if !b.Node().Park(sim.Infinity) {
				return
			}
		}
		at = b.Node().Now()
	})
	eng.Run()
	if at < sim.Time(0).Add(2*time.Millisecond) {
		t.Errorf("arrival %v too early for two 1 ms serializations", at)
	}
}

func TestBackToBackFramesQueueOnLink(t *testing.T) {
	link := DefaultLink()
	link.BandwidthBps = 8e9 // 1 ns/byte
	eng, a, b := twoPorts(t, link)
	eng.Spawn(a.Node(), func() {
		// Two frames sent at the same instant must serialize back-to-back.
		a.Send(frame(b.MAC(), a.MAC(), 986)) // 1000 B on wire: 1 µs
		a.Send(frame(b.MAC(), a.MAC(), 986))
	})
	eng.Run()
	if got := b.Stats().RxFrames; got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
	// Engine time must reflect the second frame's extra serialization.
	if eng.Now() < sim.Time(0).Add(2*time.Microsecond) {
		t.Errorf("engine time %v too early for back-to-back serialization", eng.Now())
	}
}

func TestPromiscuousSeesUnknownUnicast(t *testing.T) {
	eng := sim.NewEngine(7)
	sw := NewSwitch(eng, DefaultSwitch())
	a := sw.Attach(eng.NewNode("a"), DefaultLink(), 0)
	snoop := sw.Attach(eng.NewNode("snoop"), DefaultLink(), 0)
	snoop.SetPromiscuous(true)
	unknown := MAC{0x02, 0xff, 0xff, 0xff, 0xff, 0xff}
	eng.Spawn(a.Node(), func() {
		a.Send(frame(unknown, a.MAC(), 20))
	})
	eng.Run()
	if snoop.RxPending() != 1 {
		t.Errorf("promiscuous port saw %d frames, want 1", snoop.RxPending())
	}
}

func TestMACStringAndBroadcast(t *testing.T) {
	m := MAC{0x02, 0x44, 0x4d, 0, 0, 1}
	if m.String() != "02:44:4d:00:00:01" {
		t.Errorf("MAC string = %q", m.String())
	}
	if m.IsBroadcast() || !Broadcast.IsBroadcast() {
		t.Error("IsBroadcast misclassifies")
	}
}
