package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, nil, func() { got = append(got, 3) })
	e.At(10, nil, func() { got = append(got, 1) })
	e.At(20, nil, func() { got = append(got, 2) })
	e.At(10, nil, func() { got = append(got, 11) }) // same time: FIFO by seq
	e.Run()
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestChargeAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	n := e.NewNode("n")
	var end Time
	e.Spawn(n, func() {
		n.Charge(500 * time.Nanosecond)
		n.Charge(1500 * time.Nanosecond)
		end = n.Now()
	})
	e.Run()
	if end != 2000 {
		t.Errorf("node clock = %v, want 2000ns", end)
	}
	if n.Busy() != 2*time.Microsecond {
		t.Errorf("busy = %v, want 2µs", n.Busy())
	}
}

func TestParkDeadline(t *testing.T) {
	e := NewEngine(1)
	n := e.NewNode("sleeper")
	var woke Time
	e.Spawn(n, func() {
		if !n.Park(n.Now().Add(5 * time.Microsecond)) {
			t.Error("park returned false before stop")
		}
		woke = n.Now()
	})
	e.Run()
	if woke != 5000 {
		t.Errorf("woke at %v, want 5µs", woke)
	}
}

func TestEventWakesParkedNode(t *testing.T) {
	e := NewEngine(1)
	n := e.NewNode("rx")
	delivered := false
	var woke Time
	e.Spawn(n, func() {
		for !delivered {
			if !n.Park(Infinity) {
				return
			}
		}
		woke = n.Now()
	})
	e.At(7_000, n, func() { delivered = true })
	e.Run()
	if !delivered {
		t.Fatal("event did not run")
	}
	if woke != 7_000 {
		t.Errorf("woke at %v, want 7µs", woke)
	}
}

// Two nodes exchanging messages through events must interleave in clock
// order: the receiver cannot observe a message before its send time plus
// latency.
func TestCausalPingPong(t *testing.T) {
	e := NewEngine(1)
	a, b := e.NewNode("a"), e.NewNode("b")
	const latency = 2 * time.Microsecond
	var (
		inboxA, inboxB []Time // message receive timestamps
		rounds         = 0
	)
	e.Spawn(a, func() {
		for rounds < 5 {
			a.Charge(100 * time.Nanosecond) // work before send
			e.At(a.Now().Add(latency), b, func() { inboxB = append(inboxB, e.Now()) })
			seen := len(inboxA)
			for len(inboxA) == seen {
				if !a.Park(Infinity) {
					return
				}
			}
			rounds++
		}
		e.Stop()
	})
	e.Spawn(b, func() {
		for {
			seen := len(inboxB)
			for len(inboxB) == seen {
				if !b.Park(Infinity) {
					return
				}
			}
			b.Charge(100 * time.Nanosecond)
			e.At(b.Now().Add(latency), a, func() { inboxA = append(inboxA, e.Now()) })
		}
	})
	e.Run()
	if rounds != 5 {
		t.Fatalf("completed %d rounds, want 5", rounds)
	}
	// Each round is >= 2*latency + 2*work.
	last := Time(0)
	for _, ts := range inboxA {
		if ts < last.Add(2*latency+200*time.Nanosecond) {
			t.Errorf("receive at %v violates round-trip lower bound (prev %v)", ts, last)
		}
		last = ts
	}
}

func TestStopUnblocksParkedNodes(t *testing.T) {
	e := NewEngine(1)
	server := e.NewNode("server")
	exited := false
	e.Spawn(server, func() {
		for server.Park(Infinity) {
		}
		exited = true
	})
	e.At(1000, nil, func() { e.Stop() })
	e.Run()
	if !exited {
		t.Fatal("server goroutine did not unwind on Stop")
	}
}

func TestQuiescenceWithParkedServer(t *testing.T) {
	// A server parked forever must not prevent Run from returning once all
	// events are drained.
	e := NewEngine(1)
	server := e.NewNode("server")
	e.Spawn(server, func() {
		for server.Park(Infinity) {
		}
	})
	client := e.NewNode("client")
	e.Spawn(client, func() { client.Charge(time.Microsecond) })
	done := make(chan struct{})
	go func() { e.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not quiesce")
	}
}

func TestYieldOrdersByClock(t *testing.T) {
	// A node that charged far ahead must let a lagging node catch up on
	// Yield.
	e := NewEngine(1)
	fast, slow := e.NewNode("fast"), e.NewNode("slow")
	var order []string
	e.Spawn(fast, func() {
		fast.Charge(10 * time.Microsecond)
		fast.Yield()
		order = append(order, "fast")
	})
	e.Spawn(slow, func() {
		slow.Charge(1 * time.Microsecond)
		order = append(order, "slow")
	})
	e.Run()
	if len(order) != 2 || order[0] != "slow" || order[1] != "fast" {
		t.Fatalf("order = %v, want [slow fast]", order)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		var trace []Time
		rng := e.Rand()
		a, b := e.NewNode("a"), e.NewNode("b")
		e.Spawn(a, func() {
			for i := 0; i < 50; i++ {
				a.Charge(time.Duration(rng.Intn(1000)) * time.Nanosecond)
				e.At(a.Now().Add(time.Microsecond), b, nil)
				trace = append(trace, a.Now())
				if !a.Yield() {
					return
				}
			}
		})
		e.Spawn(b, func() {
			for i := 0; i < 50; i++ {
				if !b.Park(Infinity) {
					return
				}
				trace = append(trace, b.Now())
			}
		})
		e.Run()
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestRandDeterminismAndRange(t *testing.T) {
	r1, r2 := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	f := func(seed uint64, n uint16) bool {
		r := NewRand(seed)
		m := int(n%1000) + 1
		v := r.Intn(m)
		g := r.Float64()
		return v >= 0 && v < m && g >= 0 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventHeapProperty(t *testing.T) {
	// Pushing random events and popping them must yield nondecreasing
	// (time, seq) order.
	f := func(seed uint64, count uint8) bool {
		r := NewRand(seed)
		var h eventHeap
		n := int(count)%64 + 1
		for i := 0; i < n; i++ {
			h.push(event{at: Time(r.Intn(100)), seq: uint64(i)})
		}
		prevAt, prevSeq := Time(-1), uint64(0)
		for h.len() > 0 {
			ev := h.pop()
			if ev.at < prevAt || (ev.at == prevAt && ev.seq < prevSeq) {
				return false
			}
			prevAt, prevSeq = ev.at, ev.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Errorf("wall clock went backwards: %v then %v", a, b)
	}
}
