package sim

import "time"

// nodeState tracks where a node is in its lifecycle. Transitions are driven
// entirely by the engine loop and the node's own Park calls, under the
// baton discipline (exactly one of {engine, some node} executes at a time),
// so no locking is needed.
type nodeState int

const (
	stateNew nodeState = iota
	stateRunnable
	stateRunning
	stateParked
	stateFinished
)

// A Node is a simulated host (or an isolated CPU core of one). Application
// and library-OS code runs on the node's goroutine in ordinary blocking Go
// style; the node's virtual clock advances only through explicit Charge
// calls and Park waits. A node is also a Clock.
type Node struct {
	eng  *Engine
	id   int
	name string

	state  nodeState
	clock  Time          // local virtual time; >= engine.now whenever runnable
	busy   time.Duration // total charged CPU time
	parks  uint64        // number of Park calls (idle transitions)
	ranSeq uint64        // engine.runSeq at last baton grant (round-robin ties)
	resume chan struct{} // baton: engine -> node
}

// Name returns the node's diagnostic name.
func (n *Node) Name() string { return n.name }

// Engine returns the engine this node belongs to.
func (n *Node) Engine() *Engine { return n.eng }

// Now implements Clock: the node's local virtual time.
func (n *Node) Now() Time { return n.clock }

// Busy returns the total virtual CPU time this node has charged.
func (n *Node) Busy() time.Duration { return n.busy }

// Charge advances the node's local clock by d, modelling CPU work. It must
// be called only from the node's own goroutine while running.
func (n *Node) Charge(d time.Duration) {
	if d < 0 {
		panic("sim: negative charge")
	}
	n.clock = n.clock.Add(d)
	n.busy += d
}

// Park blocks the node until some event wakes it or the deadline passes,
// whichever is first. Pass Infinity for no deadline. Wakeups may be
// spurious: callers re-check their condition and park again. Park reports
// false when the engine is stopping, in which case the caller must unwind
// promptly (no further Park will block).
func (n *Node) Park(deadline Time) bool {
	if n.eng.stopped {
		return false
	}
	if deadline != Infinity {
		if deadline < n.clock {
			deadline = n.clock
		}
		n.eng.At(deadline, n, nil)
	}
	n.parks++
	n.state = stateParked
	n.eng.back <- struct{}{}
	<-n.resume
	return !n.eng.stopped
}

// Yield parks until the engine has processed every event up to the node's
// current clock, giving other nodes with earlier clocks a chance to run.
// It reports false when the engine is stopping.
func (n *Node) Yield() bool { return n.Park(n.clock) }

// Stopped reports whether the engine is shutting down.
func (n *Node) Stopped() bool { return n.eng.stopped }
