package sim

import "fmt"

// Engine is the discrete-event simulator. It owns the global event heap and
// coordinates node execution with a baton: the engine loop either processes
// the earliest pending event or hands control to the runnable node with the
// smallest local clock, and waits for it to park. Because exactly one
// goroutine (the engine or a single node) executes at any time, the engine
// state needs no locks; the channels provide the happens-before edges.
//
// Causality invariant: every runnable node's clock is >= the engine's
// current time, and events are executed in nondecreasing (time, seq) order,
// so a node can never observe an effect from its future.
type Engine struct {
	now   Time
	heap  eventHeap
	seq   uint64
	nodes []*Node
	rng   *Rand

	back          chan struct{} // baton: node -> engine
	stopRequested bool
	stopped       bool
	runSeq        uint64 // ticks once per baton handoff (round-robin ties)

	eventsRun uint64
	mains     map[*Node]func() // app entry points not yet started
}

// NewEngine returns an engine with the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:   NewRand(seed),
		back:  make(chan struct{}),
		mains: make(map[*Node]func()),
	}
}

// Now returns the engine's global virtual time: the timestamp of the last
// processed event. Running nodes may be ahead of it.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's root random stream. Subsystems should Fork it.
func (e *Engine) Rand() *Rand { return e.rng }

// EventsRun returns the number of events processed so far.
func (e *Engine) EventsRun() uint64 { return e.eventsRun }

// NewNode creates a simulated host with the given diagnostic name. Nodes
// with no Spawned main still work as passive event targets (their devices
// can be driven by events), but most nodes get a main via Spawn.
func (e *Engine) NewNode(name string) *Node {
	n := &Node{
		eng:    e,
		id:     len(e.nodes),
		name:   name,
		resume: make(chan struct{}),
	}
	e.nodes = append(e.nodes, n)
	return n
}

// Spawn registers fn as the node's application main. The node becomes
// runnable at the engine's current time. Spawn must be called before Run or
// from inside the simulation (an event or another node).
func (e *Engine) Spawn(n *Node, fn func()) {
	if n.state != stateNew {
		panic(fmt.Sprintf("sim: node %q spawned twice", n.name))
	}
	n.state = stateRunnable
	n.clock = e.now
	e.mains[n] = fn
	go func() {
		<-n.resume
		// The deferred handoff also covers runtime.Goexit (e.g. t.Fatal
		// inside a node's main), which would otherwise deadlock the
		// engine loop waiting for the baton.
		defer func() {
			n.state = stateFinished
			e.back <- struct{}{}
		}()
		fn()
	}()
}

// At schedules fn to run at virtual time t. After fn runs, target (if
// non-nil and parked) is woken with its clock advanced to at least t.
// fn may be nil (pure wakeup). At may be called from the engine loop, an
// event, or the currently running node; t is clamped to the caller's
// present to preserve causality.
func (e *Engine) At(t Time, target *Node, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.heap.push(event{at: t, seq: e.seq, target: target, fn: fn})
}

// Stop requests a graceful shutdown: once the current node parks, the
// engine stops processing events and unparks every node with a false Park
// result so application code can unwind.
func (e *Engine) Stop() { e.stopRequested = true }

// minRunnable returns the runnable node with the smallest clock, breaking
// clock ties by least-recently-run (then id). The tie-break makes
// equal-clock nodes — the virtual CPUs of one multi-core host — take the
// baton round-robin instead of lowest-id-first, while staying fully
// deterministic.
func (e *Engine) minRunnable() *Node {
	var best *Node
	for _, n := range e.nodes {
		if n.state != stateRunnable {
			continue
		}
		if best == nil || n.clock < best.clock ||
			(n.clock == best.clock && n.ranSeq < best.ranSeq) {
			best = n
		}
	}
	return best
}

// Run executes the simulation until it quiesces (no pending events and no
// runnable node) or Stop is requested. It then releases every parked node.
func (e *Engine) Run() {
	for !e.stopRequested {
		next := e.minRunnable()
		// Process every event at or before the next node's clock. With no
		// runnable node, drain events until one wakes somebody.
		for e.heap.len() > 0 && (next == nil || e.heap.peek().at <= next.clock) {
			ev := e.heap.pop()
			e.now = ev.at
			e.eventsRun++
			if ev.fn != nil {
				ev.fn()
			}
			if t := ev.target; t != nil && t.state == stateParked {
				t.state = stateRunnable
				if ev.at > t.clock {
					t.clock = ev.at
				}
			}
			if e.stopRequested {
				break
			}
			next = e.minRunnable()
		}
		if next == nil || e.stopRequested {
			break // quiescent or stopping
		}
		e.step(next)
	}
	e.shutdown()
}

// step hands the baton to n and waits until it parks or finishes.
func (e *Engine) step(n *Node) {
	e.runSeq++
	n.ranSeq = e.runSeq
	n.state = stateRunning
	n.resume <- struct{}{}
	<-e.back
}

// shutdown marks the engine stopped and unblocks every parked node so its
// goroutine can observe the stop and return.
func (e *Engine) shutdown() {
	e.stopped = true
	for {
		var parked *Node
		for _, n := range e.nodes {
			if n.state == stateParked || n.state == stateRunnable {
				parked = n
				break
			}
		}
		if parked == nil {
			return
		}
		e.step(parked)
	}
}
