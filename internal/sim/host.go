package sim

import (
	"fmt"
	"time"
)

// A Host is a simulated machine owning several virtual CPUs. Each core is
// an ordinary Node — independently charged, parked and woken — so the
// engine's baton discipline is unchanged: exactly one core (of any host)
// executes at a time, and cores of one host interleave round-robin as
// their clocks advance (see minRunnable's least-recently-run tie-break).
// Shared-nothing multi-core stacks (internal/multicore) run one libOS per
// core; the host is only the grouping for attachment and accounting.
type Host struct {
	eng   *Engine
	name  string
	cores []*Node
}

// NewHost creates a simulated machine with the given number of virtual
// CPUs, named "<name>/cpu<i>".
func (e *Engine) NewHost(name string, cores int) *Host {
	if cores < 1 {
		panic("sim: host needs at least one core")
	}
	h := &Host{eng: e, name: name}
	for i := 0; i < cores; i++ {
		h.cores = append(h.cores, e.NewNode(fmt.Sprintf("%s/cpu%d", name, i)))
	}
	return h
}

// Name returns the host's diagnostic name.
func (h *Host) Name() string { return h.name }

// NumCores returns the number of virtual CPUs.
func (h *Host) NumCores() int { return len(h.cores) }

// Core returns the i-th virtual CPU.
func (h *Host) Core(i int) *Node { return h.cores[i] }

// Cores returns all virtual CPUs in core order.
func (h *Host) Cores() []*Node { return h.cores }

// Busy returns the total virtual CPU time charged across all cores.
func (h *Host) Busy() time.Duration {
	var total time.Duration
	for _, c := range h.cores {
		total += c.Busy()
	}
	return total
}
