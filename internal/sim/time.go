// Package sim provides a deterministic discrete-event simulation engine
// with virtual time. It is the substrate under every Demikernel-Go
// experiment: simulated hosts ("nodes") run real application and library-OS
// code, charge virtual CPU time for the work they do, and exchange I/O
// through events (packet deliveries, disk completions, timers) ordered on a
// single global event heap.
//
// The engine is cooperative: at most one node executes at any instant, and
// control passes between nodes and the engine by explicit parking, so every
// run with the same seed and inputs is bit-for-bit reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no relation to the wall clock.
type Time int64

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Infinity is a sentinel Time later than any reachable simulation instant.
const Infinity Time = 1<<63 - 1

// Add returns t advanced by d. Adding to Infinity saturates.
func (t Time) Add(d time.Duration) Time {
	if t == Infinity {
		return Infinity
	}
	return t + Time(d)
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// String formats the instant as a duration offset, e.g. "1.5ms".
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return fmt.Sprintf("%v", time.Duration(t))
}

// A Clock tells virtual (or real) time. Nodes are Clocks; so is WallClock.
// Protocol stacks take a Clock so they are deterministic under simulation
// and still usable on the real OS.
type Clock interface {
	Now() Time
}

// WallClock adapts the operating system clock to the Clock interface, for
// library OSes that run on the real OS (Catnap).
type WallClock struct{ base time.Time }

// NewWallClock returns a Clock reading zero at the moment of creation.
func NewWallClock() *WallClock { return &WallClock{base: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() Time { return Time(time.Since(w.base)) }
