package sim

// Rand is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Every stochastic decision in the simulator (packet loss,
// reorder jitter, workload key choice) draws from a seeded Rand so runs are
// reproducible. We do not use math/rand to keep the stream stable across Go
// releases.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to a
// fixed odd constant, since xorshift has a zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator, so subsystems can consume random
// numbers without perturbing each other's streams.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() | 1)
}
