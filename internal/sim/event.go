package sim

// An event is a closure scheduled at a virtual instant, optionally waking a
// target node after it runs. Events are totally ordered by (time, sequence),
// so ties break in scheduling order and runs are deterministic.
type event struct {
	at     Time
	seq    uint64
	target *Node // node to make runnable after fn runs; may be nil
	fn     func()
}

// eventHeap is a binary min-heap of events keyed by (at, seq). We implement
// it directly rather than through container/heap to avoid the interface
// boxing on the hot path: experiments schedule millions of events.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	if h.ev[i].at != h.ev[j].at {
		return h.ev[i].at < h.ev[j].at
	}
	return h.ev[i].seq < h.ev[j].seq
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// peek returns the earliest event without removing it. It panics on an
// empty heap; callers check len first.
func (h *eventHeap) peek() *event { return &h.ev[0] }

func (h *eventHeap) pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev[last] = event{} // release closure for GC
	h.ev = h.ev[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}
