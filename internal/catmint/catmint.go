// Package catmint is Demikernel's RDMA library OS (paper §6.2). The RDMA
// NIC offloads ordered, reliable transport, so Catmint's software is thin:
// it multiplexes PDPIX connections over one queue pair per remote device
// (per-connection queue pairs are unaffordable; paper §6.2 and [35]),
// manages receive buffers, and implements credit-based flow control whose
// window updates travel as one-sided RDMA writes into the sender's
// registered window table — the remote CPU never sees them.
package catmint

import (
	"encoding/binary"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/costmodel"
	"demikernel/internal/dtrace"
	"demikernel/internal/memory"
	"demikernel/internal/rdmadev"
	"demikernel/internal/sched"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/telemetry"
)

// Config tunes the libOS.
type Config struct {
	// MaxMsgSize bounds one message (the receive buffer size); Catmint
	// "currently only supports messages up to a configurable buffer
	// size" (paper §6.2).
	MaxMsgSize int
	// RecvDepth is the receive buffers posted per link.
	RecvDepth int
	// RefillThreshold triggers the flow-control coroutine when posted
	// buffers fall below it (paper: "the fast-path coroutine checks the
	// remaining receive buffers on each incoming I/O").
	RefillThreshold int
	// CMPort is the device-level connection-manager port.
	CMPort uint16
	// Book resolves PDPIX addresses to NIC MACs; instances of one
	// simulation share a book. New creates one when nil.
	Book *AddrBook
	// Per-operation CPU costs; defaults are Catmint's, comparators
	// (eRPC) override them.
	PostSendCost, PollCQECost time.Duration
}

// DefaultConfig returns the standard tuning. Pass the simulation's shared
// address book.
func DefaultConfig(book *AddrBook) Config {
	return Config{
		MaxMsgSize: 64 << 10, RecvDepth: 64, RefillThreshold: 16, CMPort: 1, Book: book,
		PostSendCost: costmodel.RDMAPostSend, PollCQECost: costmodel.RDMAPollCQE,
	}
}

// Message type tags on the wire (first payload byte).
const (
	msgHello   = 1 // link setup: carries the sender's credit-table rkey
	msgConnect = 2 // open connection: aux = destination port
	msgAccept  = 3 // connection accepted: aux = acceptor's conn id
	msgReject  = 4
	msgData    = 5
	msgFin     = 6
)

// msgHeaderLen is type(1) + connID(4) + aux(4).
const msgHeaderLen = 9

// Stats counts libOS activity. It is a snapshot view: the live counters are
// registry-backed (Telemetry()), and Stats() rebuilds this struct from them
// so pre-registry callers keep working.
type Stats struct {
	Sends, Recvs     uint64
	CreditStalls     uint64
	WindowWrites     uint64
	ZeroCopyTx       uint64
	CopiedTx         uint64
	ConnectsAccepted uint64
	MessagesTooLarge uint64
	RecvBufsReposted uint64
}

// counters are the live registry-backed equivalents of Stats.
type counters struct {
	sends, recvs     *telemetry.Counter
	creditStalls     *telemetry.Counter
	windowWrites     *telemetry.Counter
	zeroCopyTx       *telemetry.Counter
	copiedTx         *telemetry.Counter
	connectsAccepted *telemetry.Counter
	messagesTooLarge *telemetry.Counter
	recvBufsReposted *telemetry.Counter
	linkFailures     *telemetry.Counter
}

func newCounters(reg *telemetry.Registry) counters {
	return counters{
		sends:            reg.Counter("catmint.sends"),
		recvs:            reg.Counter("catmint.recvs"),
		creditStalls:     reg.Counter("catmint.credit_stalls"),
		windowWrites:     reg.Counter("catmint.window_writes"),
		zeroCopyTx:       reg.Counter("catmint.tx_zero_copy"),
		copiedTx:         reg.Counter("catmint.tx_copied"),
		connectsAccepted: reg.Counter("catmint.connects_accepted"),
		messagesTooLarge: reg.Counter("catmint.messages_too_large"),
		recvBufsReposted: reg.Counter("catmint.recv_bufs_reposted"),
		linkFailures:     reg.Counter("catmint.link_failures"),
	}
}

// LibOS is a Catmint instance for one node + RDMA NIC.
type LibOS struct {
	node   *sim.Node
	nic    *rdmadev.NIC
	heap   *memory.Heap
	sched  *sched.Scheduler
	tokens *core.TokenTable
	waiter core.Waiter
	qds    *core.QDescTable
	cfg    Config

	cmListener *rdmadev.Listener
	book       *AddrBook
	links      map[simnet.MAC]*peerLink
	listeners  map[uint16]*listener
	nextConnID uint32
	reg        *telemetry.Registry
	stats      counters
	dt         *dtrace.Hop // distributed-trace hop; nil when untraced
}

// New builds a Catmint libOS on an RDMA NIC. The application heap registers
// superblocks with the NIC lazily on first I/O (get_rkey; paper §5.3).
func New(node *sim.Node, nic *rdmadev.NIC, cfg Config) *LibOS {
	if cfg.Book == nil {
		cfg.Book = NewAddrBook()
	}
	l := &LibOS{
		node:      node,
		nic:       nic,
		sched:     sched.New(),
		tokens:    core.NewTokenTable(),
		qds:       core.NewQDescTable(),
		cfg:       cfg,
		book:      cfg.Book,
		links:     make(map[simnet.MAC]*peerLink),
		listeners: make(map[uint16]*listener),
	}
	l.reg = telemetry.NewRegistry(node.Name() + "/catmint")
	l.stats = newCounters(l.reg)
	l.heap = memory.NewHeap(nic.RegisterMemory)
	l.heap.PublishTelemetry(l.reg, "mem")
	l.tokens.Instrument(node, 0)
	l.tokens.SetLatencyHist(l.reg.Histogram("core.qtoken_latency_ns"))
	sc := l.sched
	l.reg.Sample("sched.polls", func() int64 { return int64(sc.Stats().Polls) })
	l.reg.Sample("sched.empty_scans", func() int64 { return int64(sc.Stats().EmptyScans) })
	l.waiter = core.Waiter{Table: l.tokens, Runner: l}
	var err error
	l.cmListener, err = nic.ListenCM(cfg.CMPort)
	if err != nil {
		panic("catmint: CM port in use: " + err.Error())
	}
	return l
}

// Node returns the owning node.
func (l *LibOS) Node() *sim.Node { return l.node }

// MAC returns the NIC address (Catmint endpoints are addressed by MAC).
func (l *LibOS) MAC() simnet.MAC { return l.nic.MAC() }

// Heap returns the DMA-capable application heap.
func (l *LibOS) Heap() *memory.Heap { return l.heap }

// Stats returns a snapshot rebuilt from the registry-backed counters.
func (l *LibOS) Stats() Stats {
	return Stats{
		Sends:            l.stats.sends.Value(),
		Recvs:            l.stats.recvs.Value(),
		CreditStalls:     l.stats.creditStalls.Value(),
		WindowWrites:     l.stats.windowWrites.Value(),
		ZeroCopyTx:       l.stats.zeroCopyTx.Value(),
		CopiedTx:         l.stats.copiedTx.Value(),
		ConnectsAccepted: l.stats.connectsAccepted.Value(),
		MessagesTooLarge: l.stats.messagesTooLarge.Value(),
		RecvBufsReposted: l.stats.recvBufsReposted.Value(),
	}
}

// Telemetry returns the libOS's metric registry.
func (l *LibOS) Telemetry() *telemetry.Registry { return l.reg }

// AttachDTrace connects the libOS to a distributed-trace hop: redeemed
// qtoken spans carry trace contexts stamped from pushed SGArrays (and from
// popped messages' buffer tags on the receive side).
func (l *LibOS) AttachDTrace(h *dtrace.Hop) {
	l.dt = h
	l.tokens.SetDTrace(h)
}

// SchedStats returns the per-core coroutine scheduler's counters
// (demikernel.SchedStatser) for utilization breakdowns.
func (l *LibOS) SchedStats() sched.Stats { return l.sched.Stats() }

// peerLink is the multiplexed transport to one remote device: one QP, a
// credit table each way, and the per-link flow-control coroutine.
type peerLink struct {
	lib    *LibOS
	qp     *rdmadev.QP
	remote simnet.MAC
	ready  bool
	failed bool

	// Credits we may spend (the peer one-sided-writes grantMem).
	grantMem  []byte // 8 bytes, registered with the NIC
	grantRkey uint32
	peerRkey  uint32 // rkey of the peer's grantMem
	sent      uint64

	// Receive-side state.
	posted  int
	granted uint64

	pendingSends []pendingSend
	flowH        sched.Handle

	conns     map[uint32]*conn // by local conn id
	helloWait []sched.Waker
}

// pendingSend is a message stalled on credits.
type pendingSend struct {
	hdr [msgHeaderLen]byte
	sga core.SGArray // segments to send (nil for control messages)
	op  *core.Op     // push op to complete on transmission
	qd  core.QDesc
}

// grant returns the peer-written cumulative credit grant.
func (pl *peerLink) grant() uint64 { return binary.LittleEndian.Uint64(pl.grantMem) }

// credits returns how many messages we may still send.
func (pl *peerLink) credits() int { return int(pl.grant() - pl.sent) }

// conn is one multiplexed PDPIX connection.
type conn struct {
	lib     *LibOS
	link    *peerLink
	qd      core.QDesc
	localID uint32
	peerID  uint32
	open    bool
	peerFin bool
	err     error

	recvQ []*memory.Buf
	pops  []*core.Op

	connectOp *core.Op
}

// listener accepts inbound multiplexed connections on a port.
type listener struct {
	lib     *LibOS
	qd      core.QDesc
	port    uint16
	ready   []*conn
	accepts []*core.Op
	closed  bool
}

// socket is the pre-connection PDPIX queue state.
type socket struct {
	lib      *LibOS
	qd       core.QDesc
	port     uint16
	bound    bool
	listener *listener
	conn     *conn
}

// --- Runner ---

// Step runs one scheduler quantum or polls the completion queue.
func (l *LibOS) Step() bool {
	if l.sched.Runnable() {
		l.node.Charge(costmodel.SchedQuantum)
		return l.sched.RunOne()
	}
	return l.pollDevice()
}

// Block parks the node until an event or deadline.
func (l *LibOS) Block(deadline sim.Time) bool { return l.node.Park(deadline) }

// Now returns the node clock.
func (l *LibOS) Now() sim.Time { return l.node.Now() }

// pollDevice drains CM arrivals, completions and credit-unblocked sends.
func (l *LibOS) pollDevice() bool {
	progress := false
	// Control path: accept inbound device connections.
	for l.cmListener.Pending() {
		qp, _ := l.cmListener.Accept()
		l.setupLink(qp)
		progress = true
	}
	cqes := l.nic.PollCQ(32)
	for _, cqe := range cqes {
		l.node.Charge(l.cfg.PollCQECost)
		l.handleCQE(cqe)
		progress = true
	}
	// Credit writes arrive silently; retry stalled sends.
	for _, pl := range l.links {
		if len(pl.pendingSends) > 0 && pl.credits() > 0 {
			pl.drainPending()
			progress = true
		}
	}
	if !progress {
		l.node.Charge(costmodel.PollEmpty)
	}
	return progress
}

// setupLink wires a peerLink around a connected QP and starts its flow
// coroutine; the HELLO exchange carries credit-table rkeys.
func (l *LibOS) setupLink(qp *rdmadev.QP) *peerLink {
	pl := &peerLink{
		lib:      l,
		qp:       qp,
		remote:   qp.RemoteMAC(),
		grantMem: make([]byte, 8),
		conns:    make(map[uint32]*conn),
	}
	l.links[pl.remote] = pl
	pl.grantRkey = l.nic.RegisterMemory(pl.grantMem)
	// Post the initial receive set and grant it to the peer via HELLO
	// (the grant rides in aux; later grants are one-sided writes).
	for i := 0; i < l.cfg.RecvDepth; i++ {
		l.postRecv(pl)
	}
	pl.granted = uint64(l.cfg.RecvDepth)
	pl.flowH = l.sched.Spawn(sched.Background, sched.Func(pl.pollFlow))
	// HELLO does not consume credits (control bootstrap).
	hdr := buildHeader(msgHello, pl.grantRkey, uint32(pl.granted))
	l.node.Charge(l.cfg.PostSendCost)
	if err := qp.PostSend(nil, hdr[:]); err != nil {
		pl.fail(err)
	}
	return pl
}

// fail tears the link down after a QP error: every queued send and open
// connection resolves with an error, flushed receive buffers are released,
// and the link leaves the table so the next connect builds a fresh QP —
// degradation with reconnection, never a wedged stack.
func (pl *peerLink) fail(err error) {
	if pl.failed {
		return
	}
	pl.failed = true
	l := pl.lib
	if l.links[pl.remote] == pl {
		delete(l.links, pl.remote)
	}
	l.stats.linkFailures.Inc()
	for _, ps := range pl.pendingSends {
		for _, b := range ps.sga.Segs {
			b.IOUnref()
		}
		if ps.op != nil {
			ps.op.Fail(ps.qd, core.OpPush, err)
		}
	}
	pl.pendingSends = nil
	for id, c := range pl.conns {
		delete(pl.conns, id)
		c.fail(err)
	}
	for _, buf := range pl.qp.FlushRecvs() {
		buf.IOUnref()
		buf.Free()
	}
	pl.posted = 0
	for _, w := range pl.helloWait {
		w.Wake()
	}
	pl.helloWait = nil
}

// buildHeader assembles a message header.
func buildHeader(typ byte, connID, aux uint32) [msgHeaderLen]byte {
	var h [msgHeaderLen]byte
	h[0] = typ
	binary.BigEndian.PutUint32(h[1:5], connID)
	binary.BigEndian.PutUint32(h[5:9], aux)
	return h
}

// postRecv allocates and posts one receive buffer.
func (l *LibOS) postRecv(pl *peerLink) {
	buf := l.heap.Alloc(l.cfg.MaxMsgSize + msgHeaderLen)
	buf.IORef() // owned by the device until a CQE hands it back
	pl.qp.PostRecv(buf, pl)
	pl.posted++
	l.stats.recvBufsReposted.Inc()
}

// pollFlow is the per-link flow-control coroutine (paper §6.2): it reposts
// receive buffers and pushes the new grant to the sender with a one-sided
// write, so the sender's CPU is never interrupted.
func (pl *peerLink) pollFlow(ctx *sched.Context) sched.Poll {
	l := pl.lib
	if pl.failed {
		return sched.Done
	}
	if pl.posted >= l.cfg.RefillThreshold {
		return sched.Pending
	}
	for pl.posted < l.cfg.RecvDepth {
		l.postRecv(pl)
		pl.granted++
	}
	if pl.ready {
		var g [8]byte
		binary.LittleEndian.PutUint64(g[:], pl.granted)
		l.node.Charge(l.cfg.PostSendCost)
		if err := pl.qp.PostWrite(pl.peerRkey, 0, g[:]); err != nil {
			pl.fail(err)
			return sched.Done
		}
		l.stats.windowWrites.Inc()
	}
	return sched.Pending
}

// send transmits (or queues) one message on the link.
func (pl *peerLink) send(hdr [msgHeaderLen]byte, sga core.SGArray, op *core.Op, qd core.QDesc) {
	pl.pendingSends = append(pl.pendingSends, pendingSend{hdr: hdr, sga: sga, op: op, qd: qd})
	pl.drainPending()
}

// drainPending sends queued messages while credits allow.
func (pl *peerLink) drainPending() {
	l := pl.lib
	for len(pl.pendingSends) > 0 {
		if pl.credits() <= 0 {
			l.stats.creditStalls.Inc()
			return
		}
		ps := pl.pendingSends[0]
		pl.pendingSends = pl.pendingSends[1:]
		pl.sent++
		segs := make([][]byte, 0, 1+len(ps.sga.Segs))
		segs = append(segs, ps.hdr[:])
		for _, b := range ps.sga.Segs {
			if b.ZeroCopyEligible() {
				b.Rkey() // get_rkey: lazy registration on first I/O
				l.stats.zeroCopyTx.Inc()
			} else {
				l.node.Charge(costmodel.Memcpy(b.Len()))
				l.stats.copiedTx.Inc()
			}
			segs = append(segs, b.Bytes())
		}
		l.node.Charge(l.cfg.PostSendCost)
		if err := pl.qp.PostSend(ps, segs...); err != nil {
			for _, b := range ps.sga.Segs {
				b.IOUnref()
			}
			if ps.op != nil {
				ps.op.Fail(ps.qd, core.OpPush, err)
			}
			pl.fail(err)
			return
		}
		l.stats.sends.Inc()
	}
}

// handleCQE processes one completion.
func (l *LibOS) handleCQE(cqe rdmadev.CQE) {
	switch cqe.Op {
	case rdmadev.OpSend:
		// Transmission done: buffer ownership returns to the app when the
		// push op completes (reliable delivery is the NIC's job).
		if ps, ok := cqe.Ctx.(pendingSend); ok && ps.op != nil {
			for _, b := range ps.sga.Segs {
				b.IOUnref()
			}
			ps.op.Complete(core.QEvent{QD: ps.qd, Op: core.OpPush})
		}
	case rdmadev.OpRecv:
		pl := cqe.Ctx.(*peerLink)
		pl.posted--
		if pl.posted < l.cfg.RefillThreshold {
			pl.flowH.Wake()
		}
		l.stats.recvs.Inc()
		l.handleMessage(pl, cqe.Buf, cqe.Len)
	case rdmadev.OpQPErr:
		// The remote QP failed and NAKed us: tear the link down so every
		// op parked on it errors instead of waiting forever.
		for _, pl := range l.links {
			if pl.qp.QPN() == cqe.QPN {
				pl.fail(rdmadev.ErrQPError)
				break
			}
		}
	}
}

// handleMessage dispatches one received multiplexed message.
func (l *LibOS) handleMessage(pl *peerLink, buf *memory.Buf, length int) {
	data := buf.Bytes()[:length]
	if length < msgHeaderLen {
		buf.IOUnref()
		buf.Free()
		return
	}
	typ := data[0]
	connID := binary.BigEndian.Uint32(data[1:5])
	aux := binary.BigEndian.Uint32(data[5:9])
	switch typ {
	case msgHello:
		pl.peerRkey = connID
		// aux carries the peer's initial grant.
		binary.LittleEndian.PutUint64(pl.grantMem, uint64(aux))
		pl.ready = true
		for _, w := range pl.helloWait {
			w.Wake()
		}
		pl.helloWait = nil
		pl.drainPending()
		buf.IOUnref()
		buf.Free()
	case msgConnect:
		port := uint16(aux)
		ln, ok := l.listeners[port]
		if !ok || ln.closed {
			pl.send(buildHeader(msgReject, connID, 0), core.SGArray{}, nil, core.InvalidQD)
			buf.IOUnref()
			buf.Free()
			return
		}
		l.nextConnID++
		c := &conn{lib: l, link: pl, localID: l.nextConnID, peerID: connID, open: true}
		pl.conns[c.localID] = c
		pl.send(buildHeader(msgAccept, connID, c.localID), core.SGArray{}, nil, core.InvalidQD)
		l.stats.connectsAccepted.Inc()
		ln.established(c)
		buf.IOUnref()
		buf.Free()
	case msgAccept:
		c, ok := pl.conns[connID]
		if ok && !c.open {
			c.peerID = aux
			c.open = true
			if c.connectOp != nil {
				c.connectOp.Complete(core.QEvent{QD: c.qd, Op: core.OpConnect, NewQD: c.qd})
				c.connectOp = nil
			}
		}
		buf.IOUnref()
		buf.Free()
	case msgReject:
		c, ok := pl.conns[connID]
		if ok && c.connectOp != nil {
			c.connectOp.Fail(c.qd, core.OpConnect, core.ErrConnRefused)
			c.connectOp = nil
			delete(pl.conns, connID)
		}
		buf.IOUnref()
		buf.Free()
	case msgData:
		c, ok := pl.conns[connID]
		if !ok || !c.open {
			buf.IOUnref()
			buf.Free()
			return
		}
		// Deliver the payload in a fresh buffer, stripping the mux header.
		// This copy is charged: it is Catmint's per-byte receive cost, and
		// it reproduces the paper's observed throughput gap between
		// Catmint and raw perftest at large messages (Figure 8).
		l.node.Charge(costmodel.Memcpy(length - msgHeaderLen))
		payload := memory.CopyFrom(l.heap, data[msgHeaderLen:])
		buf.IOUnref()
		buf.Free()
		c.deliver(payload)
	case msgFin:
		if c, ok := pl.conns[connID]; ok {
			c.peerFin = true
			c.completePops()
		}
		buf.IOUnref()
		buf.Free()
	default:
		buf.IOUnref()
		buf.Free()
	}
}

// linkTo returns (creating if needed) the link to a remote Catmint,
// blocking through the control path until HELLO completes.
func (l *LibOS) linkTo(remote simnet.MAC) (*peerLink, error) {
	if pl, ok := l.links[remote]; ok {
		return pl, nil
	}
	qp, err := l.nic.ConnectCM(remote, l.cfg.CMPort)
	if err != nil {
		return nil, core.ErrConnRefused
	}
	pl := l.setupLink(qp)
	// Wait for the peer's HELLO (control path; block the app).
	for !pl.ready {
		if pl.failed {
			return nil, core.ErrConnRefused
		}
		if !l.Step() {
			if !l.node.Park(sim.Infinity) {
				return nil, core.ErrStopped
			}
		}
	}
	return pl, nil
}

// Tokens exposes the qtoken table for libOS integration (demi.Combined).
func (l *LibOS) Tokens() *core.TokenTable { return l.tokens }

// TryTake redeems a completed qtoken (demi.Drivable).
func (l *LibOS) TryTake(qt core.QToken) (core.QEvent, bool, error) {
	return l.tokens.TryTake(qt)
}
