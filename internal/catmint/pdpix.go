package catmint

import (
	"time"

	"demikernel/internal/core"
	"demikernel/internal/costmodel"
	"demikernel/internal/memory"
	"demikernel/internal/simnet"
)

// AddrBook maps PDPIX IP addresses to RDMA NIC MACs, standing in for an
// address-resolution service on the control plane. One book is shared by
// the Catmint instances of a simulation, so the same application code runs
// over Catnip and Catmint unchanged (portability is the point).
type AddrBook struct {
	m map[[4]byte]simnet.MAC
}

// NewAddrBook returns an empty address book.
func NewAddrBook() *AddrBook { return &AddrBook{m: make(map[[4]byte]simnet.MAC)} }

// RegisterAddr binds a PDPIX IP address to this libOS's NIC.
func (l *LibOS) RegisterAddr(a core.Addr) {
	l.book.m[a.IP] = l.nic.MAC()
}

// --- conn operations ---

// deliver hands a received message to a waiting pop or queues it.
func (c *conn) deliver(buf *memory.Buf) {
	if len(c.pops) > 0 {
		op := c.pops[0]
		c.pops = c.pops[1:]
		op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop, SGA: core.SGA(buf)})
		return
	}
	c.recvQ = append(c.recvQ, buf)
}

// completePops drains waiting pops after FIN or teardown.
func (c *conn) completePops() {
	for len(c.pops) > 0 && (len(c.recvQ) > 0 || c.peerFin) {
		op := c.pops[0]
		c.pops = c.pops[1:]
		if len(c.recvQ) > 0 {
			buf := c.recvQ[0]
			c.recvQ = c.recvQ[1:]
			op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop, SGA: core.SGA(buf)})
		} else {
			op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop}) // EOF
		}
	}
}

// push sends one message (Catmint is message-oriented: each push is one
// delimited message, as RDMA SEND preserves boundaries).
func (c *conn) push(op *core.Op, sga core.SGArray) {
	l := c.lib
	if c.err != nil || (!c.open && c.connectOp == nil) {
		op.Fail(c.qd, core.OpPush, core.ErrQueueClosed)
		return
	}
	if sga.TotalLen() > l.cfg.MaxMsgSize {
		l.stats.messagesTooLarge.Inc()
		op.Fail(c.qd, core.OpPush, core.ErrNotSupported)
		return
	}
	for _, b := range sga.Segs {
		b.IORef() // held until the send completion
	}
	c.link.send(buildHeader(msgData, c.peerID, 0), sga, op, c.qd)
}

// pop asks for the next message.
func (c *conn) pop(op *core.Op) {
	if len(c.recvQ) > 0 {
		buf := c.recvQ[0]
		c.recvQ = c.recvQ[1:]
		op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop, SGA: core.SGA(buf)})
		return
	}
	if c.peerFin {
		op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop})
		return
	}
	if c.err != nil {
		op.Fail(c.qd, core.OpPop, c.err)
		return
	}
	c.pops = append(c.pops, op)
}

// fail aborts the connection with err (link/QP failure): the pending
// connect and queued pops resolve with err, buffered messages are released,
// and later pushes/pops fail fast via c.err.
func (c *conn) fail(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	c.open = false
	if c.connectOp != nil {
		c.connectOp.Fail(c.qd, core.OpConnect, err)
		c.connectOp = nil
	}
	for _, op := range c.pops {
		op.Fail(c.qd, core.OpPop, err)
	}
	c.pops = nil
	for _, b := range c.recvQ {
		b.Free()
	}
	c.recvQ = nil
}

// close tears the connection down, notifying the peer.
func (c *conn) close() {
	if c.err != nil {
		return
	}
	c.err = core.ErrQueueClosed
	if c.open {
		c.link.send(buildHeader(msgFin, c.peerID, 0), core.SGArray{}, nil, core.InvalidQD)
	}
	delete(c.link.conns, c.localID)
	for _, op := range c.pops {
		op.Complete(core.QEvent{QD: c.qd, Op: core.OpPop}) // EOF
	}
	c.pops = nil
	for _, b := range c.recvQ {
		b.Free()
	}
	c.recvQ = nil
}

// established is called when a multiplexed CONNECT lands on the listener.
func (ln *listener) established(c *conn) {
	if ln.closed {
		return
	}
	if len(ln.accepts) > 0 {
		op := ln.accepts[0]
		ln.accepts = ln.accepts[1:]
		ln.complete(op, c)
		return
	}
	ln.ready = append(ln.ready, c)
}

func (ln *listener) complete(op *core.Op, c *conn) {
	s := &socket{lib: ln.lib, port: ln.port, bound: true, conn: c}
	s.qd = ln.lib.qds.Insert(s)
	c.qd = s.qd
	op.Complete(core.QEvent{QD: ln.qd, Op: core.OpAccept, NewQD: s.qd})
}

// --- PDPIX entry points ---

// Socket creates a stream socket (Catmint has no datagram support; RDMA RC
// is connection-oriented).
func (l *LibOS) Socket(t core.SockType) (core.QDesc, error) {
	l.node.Charge(costmodel.Libcall)
	if t != core.SockStream {
		return core.InvalidQD, core.ErrNotSupported
	}
	s := &socket{lib: l}
	s.qd = l.qds.Insert(s)
	return s.qd, nil
}

// Queue creates an in-memory queue.
func (l *LibOS) Queue() (core.QDesc, error) {
	l.node.Charge(costmodel.Libcall)
	qd := l.qds.Insert(nil)
	l.qds.Restore(qd, core.NewMemQueue(qd))
	return qd, nil
}

// Open is provided by the Catmint×Cattree integration.
func (l *LibOS) Open(name string) (core.QDesc, error) {
	return core.InvalidQD, core.ErrNotSupported
}

// Bind assigns the local port.
func (l *LibOS) Bind(qd core.QDesc, addr core.Addr) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	s, ok := q.(*socket)
	if !ok {
		return core.ErrNotSupported
	}
	if s.bound {
		return core.ErrInUse
	}
	if _, used := l.listeners[addr.Port]; used {
		return core.ErrInUse
	}
	s.port = addr.Port
	s.bound = true
	return nil
}

// Listen starts accepting connections on the bound port.
func (l *LibOS) Listen(qd core.QDesc, backlog int) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	s, ok := q.(*socket)
	if !ok {
		return core.ErrNotSupported
	}
	if !s.bound {
		return core.ErrNotBound
	}
	ln := &listener{lib: l, qd: qd, port: s.port}
	s.listener = ln
	l.listeners[s.port] = ln
	return nil
}

// Accept asks for the next inbound connection.
func (l *LibOS) Accept(qd core.QDesc) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	s, ok := q.(*socket)
	if !ok || s.listener == nil {
		return core.InvalidQToken, core.ErrNotSupported
	}
	op := l.tokens.New()
	ln := s.listener
	if len(ln.ready) > 0 {
		c := ln.ready[0]
		ln.ready = ln.ready[1:]
		ln.complete(op, c)
	} else {
		ln.accepts = append(ln.accepts, op)
	}
	return op.Token(), nil
}

// Connect opens a multiplexed connection to addr (resolved to a NIC).
func (l *LibOS) Connect(qd core.QDesc, addr core.Addr) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	s, ok := q.(*socket)
	if !ok || s.conn != nil || s.listener != nil {
		return core.InvalidQToken, core.ErrNotSupported
	}
	mac, ok := l.book.m[addr.IP]
	if !ok {
		return core.InvalidQToken, core.ErrConnRefused
	}
	op := l.tokens.New()
	pl, err := l.linkTo(mac)
	if err != nil {
		op.Fail(qd, core.OpConnect, err)
		return op.Token(), nil
	}
	l.nextConnID++
	c := &conn{lib: l, link: pl, qd: qd, localID: l.nextConnID, connectOp: op}
	pl.conns[c.localID] = c
	s.conn = c
	pl.send(buildHeader(msgConnect, c.localID, uint32(addr.Port)), core.SGArray{}, nil, core.InvalidQD)
	return op.Token(), nil
}

// Close releases a queue.
func (l *LibOS) Close(qd core.QDesc) error {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *socket:
		if s.listener != nil {
			s.listener.closed = true
			delete(l.listeners, s.listener.port)
			for _, op := range s.listener.accepts {
				op.Fail(qd, core.OpAccept, core.ErrQueueClosed)
			}
		}
		if s.conn != nil {
			s.conn.close()
		}
	case *core.MemQueue:
		s.Destroy() // descriptor gone: free undrained data, never leak
	}
	l.qds.Remove(qd)
	return nil
}

// Push submits one message.
func (l *LibOS) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	if len(sga.Segs) == 0 {
		return core.InvalidQToken, core.ErrEmptySGA
	}
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	// Validate before minting the op: an op created then abandoned on an
	// error return would linger outstanding in the token table forever.
	switch s := q.(type) {
	case *socket:
		if s.conn == nil {
			return core.InvalidQToken, core.ErrNotBound
		}
		op := l.tokens.New()
		op.Trace(sga.TraceCtx())
		s.conn.push(op, sga)
		return op.Token(), nil
	case *core.MemQueue:
		op := l.tokens.New()
		op.Trace(sga.TraceCtx())
		s.Push(op, sga)
		return op.Token(), nil
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
}

// PushTo is unsupported on connection-oriented Catmint.
func (l *LibOS) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	return core.InvalidQToken, core.ErrNotSupported
}

// Pop asks for the next message.
func (l *LibOS) Pop(qd core.QDesc) (core.QToken, error) {
	l.node.Charge(costmodel.Libcall)
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *socket:
		if s.conn == nil {
			return core.InvalidQToken, core.ErrNotBound
		}
		op := l.tokens.New()
		s.conn.pop(op)
		return op.Token(), nil
	case *core.MemQueue:
		op := l.tokens.New()
		s.Pop(op)
		return op.Token(), nil
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
}

// Wait blocks until qt completes.
func (l *LibOS) Wait(qt core.QToken) (core.QEvent, error) { return l.waiter.Wait(qt) }

// WaitAny blocks until one of qts completes.
func (l *LibOS) WaitAny(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	return l.waiter.WaitAny(qts, timeout)
}

// WaitAll blocks until all of qts complete.
func (l *LibOS) WaitAll(qts []core.QToken, timeout time.Duration) ([]core.QEvent, error) {
	return l.waiter.WaitAll(qts, timeout)
}
