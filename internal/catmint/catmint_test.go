package catmint

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/rdmadev"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

var (
	ipA = wire.IPAddr{10, 1, 0, 1}
	ipB = wire.IPAddr{10, 1, 0, 2}
)

// pair builds two Catmint nodes sharing a fabric and address book.
func pair(t *testing.T, seed uint64, cfg func(*Config)) (*sim.Engine, *LibOS, *LibOS) {
	t.Helper()
	eng := sim.NewEngine(seed)
	sw := simnet.NewSwitch(eng, simnet.DefaultSwitch())
	reg := rdmadev.NewRegistry(sw)
	book := NewAddrBook()
	na, nb := eng.NewNode("a"), eng.NewNode("b")
	ca, cb := DefaultConfig(book), DefaultConfig(book)
	if cfg != nil {
		cfg(&ca)
		cfg(&cb)
	}
	la := New(na, reg.NewNIC(na, simnet.DefaultLink(), 0), ca)
	lb := New(nb, reg.NewNIC(nb, simnet.DefaultLink(), 0), cb)
	la.RegisterAddr(core.Addr{IP: ipA})
	lb.RegisterAddr(core.Addr{IP: ipB})
	return eng, la, lb
}

func push(t *testing.T, l *LibOS, qd core.QDesc, p []byte) core.QToken {
	t.Helper()
	qt, err := l.Push(qd, core.SGA(memory.CopyFrom(l.Heap(), p)))
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	return qt
}

func echoServer(t *testing.T, l *LibOS, port uint16) func() {
	return func() {
		qd, _ := l.Socket(core.SockStream)
		l.Bind(qd, core.Addr{Port: port})
		if err := l.Listen(qd, 8); err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		aqt, _ := l.Accept(qd)
		ev, err := l.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for {
			pqt, _ := l.Pop(conn)
			ev, err := l.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			if len(ev.SGA.Segs) == 0 {
				l.Close(conn)
				return
			}
			wqt, err := l.Push(conn, ev.SGA)
			if err != nil {
				return
			}
			if _, err := l.Wait(wqt); err != nil {
				return
			}
			ev.SGA.Free()
		}
	}
}

func TestCatmintEcho(t *testing.T) {
	eng, la, lb := pair(t, 1, nil)
	eng.Spawn(lb.Node(), echoServer(t, lb, 7))
	var got []byte
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, err := la.Connect(qd, core.Addr{IP: ipB, Port: 7})
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
			t.Errorf("connect wait: %v %v", err, ev.Err)
			return
		}
		push(t, la, qd, []byte("rdma says hi"))
		pqt, _ := la.Pop(qd)
		ev, err := la.Wait(pqt)
		if err != nil || ev.Err != nil {
			t.Errorf("pop: %v", err)
			return
		}
		got = ev.SGA.Flatten()
		la.Close(qd)
	})
	eng.Run()
	if string(got) != "rdma says hi" {
		t.Fatalf("echo = %q", got)
	}
}

func TestCatmintConnectRefusedNoListener(t *testing.T) {
	eng, la, lb := pair(t, 2, nil)
	var connErr error
	eng.Spawn(lb.Node(), func() {
		lb.WaitAny(nil, 10*time.Millisecond) // drive libOS to reject
	})
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, err := la.Connect(qd, core.Addr{IP: ipB, Port: 99})
		if err != nil {
			connErr = err
			return
		}
		ev, err := la.Wait(cqt)
		if err != nil {
			connErr = err
			return
		}
		connErr = ev.Err
	})
	eng.Run()
	if !errors.Is(connErr, core.ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", connErr)
	}
}

func TestCatmintConnectUnknownAddress(t *testing.T) {
	eng, la, _ := pair(t, 3, nil)
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		if _, err := la.Connect(qd, core.Addr{IP: wire.IPAddr{9, 9, 9, 9}, Port: 1}); !errors.Is(err, core.ErrConnRefused) {
			t.Errorf("err = %v", err)
		}
	})
	eng.Run()
}

func TestCatmintMessageBoundariesPreserved(t *testing.T) {
	// Unlike TCP, Catmint is message-oriented: three pushes arrive as
	// exactly three pops.
	eng, la, lb := pair(t, 4, nil)
	var msgs []string
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, core.Addr{Port: 7})
		lb.Listen(qd, 8)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for len(msgs) < 3 {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			msgs = append(msgs, string(ev.SGA.Flatten()))
			ev.SGA.Free()
		}
	})
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 7})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		var qts []core.QToken
		for _, m := range []string{"alpha", "beta", "gamma"} {
			qts = append(qts, push(t, la, qd, []byte(m)))
		}
		la.WaitAll(qts, -1)
		la.WaitAny(nil, time.Millisecond)
	})
	eng.Run()
	want := []string{"alpha", "beta", "gamma"}
	if len(msgs) != 3 {
		t.Fatalf("got %d messages", len(msgs))
	}
	for i := range want {
		if msgs[i] != want[i] {
			t.Fatalf("msgs = %v", msgs)
		}
	}
}

func TestCatmintCreditFlowControl(t *testing.T) {
	// Push far more messages than the receive depth while the server
	// sleeps: the sender must stall on credits, then drain as the server
	// consumes and the flow-control coroutine writes new grants.
	eng, la, lb := pair(t, 5, func(c *Config) {
		c.RecvDepth = 8
		c.RefillThreshold = 4
	})
	const n = 100
	received := 0
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, core.Addr{Port: 7})
		lb.Listen(qd, 8)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		lb.Node().Park(lb.Node().Now().Add(2 * time.Millisecond)) // sleep first
		for received < n {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			received++
			ev.SGA.Free()
		}
	})
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 7})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		var qts []core.QToken
		for i := 0; i < n; i++ {
			qts = append(qts, push(t, la, qd, []byte{byte(i)}))
		}
		if _, err := la.WaitAll(qts, -1); err != nil {
			t.Errorf("waitall: %v", err)
		}
	})
	eng.Run()
	if received != n {
		t.Fatalf("received %d, want %d", received, n)
	}
	if la.Stats().CreditStalls == 0 {
		t.Error("sender never stalled on credits despite tiny window")
	}
	if lb.Stats().WindowWrites == 0 {
		t.Error("flow-control coroutine never wrote a window update")
	}
	if rnr := laNIC(la).Stats().RNRDrops; rnr != 0 {
		t.Errorf("RNR drops = %d; flow control must prevent them", rnr)
	}
}

// laNIC exposes the NIC for stats assertions.
func laNIC(l *LibOS) *rdmadev.NIC { return l.nic }

func TestCatmintLargeMessage(t *testing.T) {
	eng, la, lb := pair(t, 6, nil)
	big := make([]byte, 48<<10)
	for i := range big {
		big[i] = byte(i * 13)
	}
	var got []byte
	eng.Spawn(lb.Node(), echoServer(t, lb, 7))
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 7})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		push(t, la, qd, big)
		pqt, _ := la.Pop(qd)
		ev, err := la.Wait(pqt)
		if err != nil || ev.Err != nil {
			return
		}
		got = ev.SGA.Flatten()
		la.Close(qd)
	})
	eng.Run()
	if !bytes.Equal(got, big) {
		t.Fatalf("large echo corrupted (got %d bytes)", len(got))
	}
}

func TestCatmintMessageTooLargeRejected(t *testing.T) {
	eng, la, lb := pair(t, 7, nil)
	eng.Spawn(lb.Node(), echoServer(t, lb, 7))
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 7})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		buf := la.Heap().Alloc(la.cfg.MaxMsgSize + 1)
		qt, err := la.Push(qd, core.SGA(buf))
		if err != nil {
			t.Errorf("push returned sync error: %v", err)
			return
		}
		ev, _ := la.Wait(qt)
		if !errors.Is(ev.Err, core.ErrNotSupported) {
			t.Errorf("oversize push: %+v", ev)
		}
		la.Close(qd)
	})
	eng.Run()
}

func TestCatmintEOFOnClose(t *testing.T) {
	eng, la, lb := pair(t, 8, nil)
	gotEOF := false
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, core.Addr{Port: 7})
		lb.Listen(qd, 8)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		pqt, _ := lb.Pop(ev.NewQD)
		ev2, err := lb.Wait(pqt)
		if err == nil && ev2.Err == nil && len(ev2.SGA.Segs) == 0 {
			gotEOF = true
		}
	})
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 7})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		la.Close(qd)
		la.WaitAny(nil, time.Millisecond) // flush the FIN
	})
	eng.Run()
	if !gotEOF {
		t.Fatal("no EOF delivered on close")
	}
}

func TestCatmintManyConnectionsMultiplexed(t *testing.T) {
	// Several PDPIX connections share one device QP (the paper's
	// multiplexing design).
	eng, la, lb := pair(t, 9, nil)
	const conns = 5
	done := 0
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, core.Addr{Port: 7})
		lb.Listen(qd, 8)
		var qts []core.QToken
		cq := make(map[core.QToken]core.QDesc)
		for i := 0; i < conns; i++ {
			aqt, _ := lb.Accept(qd)
			ev, err := lb.Wait(aqt)
			if err != nil {
				return
			}
			pqt, _ := lb.Pop(ev.NewQD)
			qts = append(qts, pqt)
			cq[pqt] = ev.NewQD
		}
		for done < conns {
			i, ev, err := lb.WaitAny(qts, -1)
			if err != nil || ev.Err != nil {
				return
			}
			lb.Push(cq[qts[i]], ev.SGA)
			done++
			qts[i], _ = lb.Pop(cq[qts[i]])
		}
		lb.WaitAny(nil, time.Millisecond)
	})
	replies := make([]string, conns)
	eng.Spawn(la.Node(), func() {
		var qds []core.QDesc
		for i := 0; i < conns; i++ {
			qd, _ := la.Socket(core.SockStream)
			cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 7})
			if _, err := la.Wait(cqt); err != nil {
				return
			}
			qds = append(qds, qd)
		}
		for i, qd := range qds {
			push(t, la, qd, []byte{byte('A' + i)})
		}
		for i, qd := range qds {
			pqt, _ := la.Pop(qd)
			ev, err := la.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			replies[i] = string(ev.SGA.Flatten())
		}
	})
	eng.Run()
	for i := range replies {
		if replies[i] != string(rune('A'+i)) {
			t.Fatalf("replies = %v", replies)
		}
	}
	// All connections share one QP pair per side.
	if got := len(la.links); got != 1 {
		t.Errorf("client has %d links, want 1", got)
	}
}

func TestCatmintListenerCloseFailsPendingAccepts(t *testing.T) {
	eng, la, lb := pair(t, 10, nil)
	_ = la
	var acceptErr error
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, core.Addr{Port: 7})
		lb.Listen(qd, 8)
		aqt, _ := lb.Accept(qd)
		// Close the listener with the accept outstanding.
		lb.Close(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			acceptErr = err
			return
		}
		acceptErr = ev.Err
	})
	eng.Run()
	if !errors.Is(acceptErr, core.ErrQueueClosed) {
		t.Fatalf("pending accept got %v, want ErrQueueClosed", acceptErr)
	}
}

func TestCatmintBadDescriptor(t *testing.T) {
	eng, la, _ := pair(t, 11, nil)
	eng.Spawn(la.Node(), func() {
		if _, err := la.Pop(9999); !errors.Is(err, core.ErrBadQDesc) {
			t.Errorf("pop: %v", err)
		}
		if _, err := la.Push(9999, core.SGA(memory.CopyFrom(la.Heap(), []byte("x")))); !errors.Is(err, core.ErrBadQDesc) {
			t.Errorf("push: %v", err)
		}
		if _, err := la.PushTo(1, core.SGArray{}, core.Addr{}); !errors.Is(err, core.ErrNotSupported) {
			t.Errorf("pushto: %v", err)
		}
	})
	eng.Run()
}
