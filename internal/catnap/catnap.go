// Package catnap is Demikernel's POSIX library OS (paper §6.1): the PDPIX
// API implemented over the legacy OS kernel, so Demikernel applications can
// be developed, tested and run without kernel-bypass hardware. It runs on
// the real operating system — Go's net package over loopback and ordinary
// files for the storage log — and, like the paper's Catnap, it trades CPU
// for latency by polling rather than sleeping in epoll.
//
// Internal reader goroutines stand in for the kernel's readiness
// machinery; every PDPIX-visible mutation still happens on the application
// thread inside Step, so the datapath state needs no locks.
//
// Catnap is single-host: PDPIX addresses map to 127.0.0.1:port.
package catnap

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/dtrace"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
)

// Stats counts libOS activity.
type Stats struct {
	TCPAccepts, TCPConnects uint64
	BytesIn, BytesOut       uint64
	FileAppends, FileReads  uint64
	RxAllocDrops            uint64 // inbound data refused for want of heap
}

// LibOS is a Catnap instance.
type LibOS struct {
	clock  *sim.WallClock
	tokens *core.TokenTable
	qds    *core.QDescTable
	waiter core.Waiter
	heap   *memory.Heap

	// pending carries completions from reader goroutines to the
	// application thread; activity wakes Block.
	pending  chan func()
	activity chan struct{}
	closed   atomic.Bool

	dir   string // directory for storage log files
	stats Stats
	reg   *telemetry.Registry
	dt    *dtrace.Hop // distributed-trace hop; nil when untraced
}

// New builds a Catnap libOS. dir is where storage logs live ("" disables
// the storage stack).
func New(dir string) *LibOS {
	l := &LibOS{
		clock:    sim.NewWallClock(),
		tokens:   core.NewTokenTable(),
		qds:      core.NewQDescTable(),
		heap:     memory.NewHeap(nil),
		pending:  make(chan func(), 4096),
		activity: make(chan struct{}, 1),
		dir:      dir,
	}
	l.waiter = core.Waiter{Table: l.tokens, Runner: l}
	l.reg = telemetry.NewRegistry("catnap")
	s := &l.stats
	l.reg.Sample("catnap.tcp_accepts", func() int64 { return int64(s.TCPAccepts) })
	l.reg.Sample("catnap.tcp_connects", func() int64 { return int64(s.TCPConnects) })
	l.reg.Sample("catnap.bytes_in", func() int64 { return int64(s.BytesIn) })
	l.reg.Sample("catnap.bytes_out", func() int64 { return int64(s.BytesOut) })
	l.reg.Sample("catnap.file_appends", func() int64 { return int64(s.FileAppends) })
	l.reg.Sample("catnap.file_reads", func() int64 { return int64(s.FileReads) })
	l.reg.Sample("catnap.rx_alloc_drops", func() int64 { return int64(s.RxAllocDrops) })
	l.heap.PublishTelemetry(l.reg, "mem")
	l.tokens.Instrument(l.clock, 0)
	l.tokens.SetLatencyHist(l.reg.Histogram("core.qtoken_latency_ns"))
	return l
}

// Tokens returns the qtoken table (for flight-recorder attachment).
func (l *LibOS) Tokens() *core.TokenTable { return l.tokens }

// AttachDTrace connects the libOS to a distributed-trace hop: redeemed
// qtoken spans carry trace contexts stamped from pushed SGArrays. The
// kernel path cannot carry the context across the wire (no trailer on
// kernel sockets), so catnap traces are single-hop.
func (l *LibOS) AttachDTrace(h *dtrace.Hop) {
	l.dt = h
	l.tokens.SetDTrace(h)
}

// Telemetry returns the libOS's metric registry. Timestamps here are
// wall-clock (Catnap runs on the real OS), so dumps are not deterministic —
// unlike the simulated stacks.
func (l *LibOS) Telemetry() *telemetry.Registry { return l.reg }

// Heap returns the application heap (plain memory: the kernel path copies
// anyway, as the paper notes — POSIX is not zero-copy).
func (l *LibOS) Heap() *memory.Heap { return l.heap }

// Stats returns a snapshot.
func (l *LibOS) Stats() Stats { return l.stats }

// Shutdown stops the libOS; subsequent waits fail with ErrStopped.
func (l *LibOS) Shutdown() {
	l.closed.Store(true)
	l.wake()
}

// enqueue hands a completion closure to the application thread.
func (l *LibOS) enqueue(fn func()) {
	l.pending <- fn
	l.wake()
}

func (l *LibOS) wake() {
	select {
	case l.activity <- struct{}{}:
	default:
	}
}

// --- Runner ---

// Step executes one queued completion on the application thread.
func (l *LibOS) Step() bool {
	select {
	case fn := <-l.pending:
		fn()
		return true
	default:
		return false
	}
}

// Block waits (real time) for activity or the deadline.
func (l *LibOS) Block(deadline sim.Time) bool {
	if l.closed.Load() {
		return false
	}
	if deadline == sim.Infinity {
		<-l.activity
		return !l.closed.Load()
	}
	d := deadline.Sub(l.Now())
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-l.activity:
	case <-t.C:
	}
	return !l.closed.Load()
}

// Now returns wall-clock time since the libOS started.
func (l *LibOS) Now() sim.Time { return l.clock.Now() }

// --- Queue state ---

// tcpQueue is a connected TCP socket.
type tcpQueue struct {
	lib   *LibOS
	qd    core.QDesc
	conn  net.Conn
	recvQ [][]byte
	pops  []*core.Op
	eof   bool
	err   error
}

// listenQueue is a listening TCP socket.
type listenQueue struct {
	lib     *LibOS
	qd      core.QDesc
	ln      net.Listener
	ready   []net.Conn
	accepts []*core.Op
}

// udpQueue is a UDP socket.
type udpQueue struct {
	lib   *LibOS
	qd    core.QDesc
	conn  *net.UDPConn
	recvQ []udpDatagram
	pops  []*core.Op
	err   error
}

type udpDatagram struct {
	from core.Addr
	data []byte
}

// sockQueue is an unbound socket placeholder created by Socket.
type sockQueue struct {
	typ  core.SockType
	port uint16
}

// fileQueue is one open of a storage log file.
type fileQueue struct {
	lib    *LibOS
	qd     core.QDesc
	f      *os.File
	cursor int64
}

// loopback renders a PDPIX address on the loopback interface.
func loopback(a core.Addr) string { return fmt.Sprintf("127.0.0.1:%d", a.Port) }

// --- PDPIX entry points ---

// Socket creates a socket queue.
func (l *LibOS) Socket(t core.SockType) (core.QDesc, error) {
	if t != core.SockStream && t != core.SockDgram {
		return core.InvalidQD, core.ErrNotSupported
	}
	return l.qds.Insert(&sockQueue{typ: t}), nil
}

// Bind records the local port.
func (l *LibOS) Bind(qd core.QDesc, addr core.Addr) error {
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	s, ok := q.(*sockQueue)
	if !ok {
		return core.ErrNotSupported
	}
	s.port = addr.Port
	if s.typ == core.SockDgram {
		// Datagram sockets bind eagerly so pops can start.
		uaddr, err := net.ResolveUDPAddr("udp", loopback(core.Addr{Port: s.port}))
		if err != nil {
			return err
		}
		conn, err := net.ListenUDP("udp", uaddr)
		if err != nil {
			return core.ErrInUse
		}
		u := &udpQueue{lib: l, qd: qd, conn: conn}
		l.qds.Restore(qd, u)
		go u.readLoop()
	}
	return nil
}

// Listen starts accepting TCP connections.
func (l *LibOS) Listen(qd core.QDesc, backlog int) error {
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	s, ok := q.(*sockQueue)
	if !ok || s.typ != core.SockStream {
		return core.ErrNotSupported
	}
	ln, err := net.Listen("tcp", loopback(core.Addr{Port: s.port}))
	if err != nil {
		return core.ErrInUse
	}
	lq := &listenQueue{lib: l, qd: qd, ln: ln}
	l.qds.Restore(qd, lq)
	go lq.acceptLoop()
	return nil
}

// acceptLoop feeds inbound connections to the application thread.
func (lq *listenQueue) acceptLoop() {
	for {
		conn, err := lq.ln.Accept()
		if err != nil {
			return
		}
		lq.lib.enqueue(func() { lq.established(conn) })
	}
}

func (lq *listenQueue) established(conn net.Conn) {
	lq.lib.stats.TCPAccepts++
	if len(lq.accepts) > 0 {
		op := lq.accepts[0]
		lq.accepts = lq.accepts[1:]
		lq.complete(op, conn)
		return
	}
	lq.ready = append(lq.ready, conn)
}

func (lq *listenQueue) complete(op *core.Op, conn net.Conn) {
	q := &tcpQueue{lib: lq.lib, conn: conn}
	q.qd = lq.lib.qds.Insert(q)
	go q.readLoop()
	op.Complete(core.QEvent{QD: lq.qd, Op: core.OpAccept, NewQD: q.qd})
}

// Accept asks for the next inbound connection.
func (l *LibOS) Accept(qd core.QDesc) (core.QToken, error) {
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	lq, ok := q.(*listenQueue)
	if !ok {
		return core.InvalidQToken, core.ErrNotSupported
	}
	op := l.tokens.New()
	if len(lq.ready) > 0 {
		conn := lq.ready[0]
		lq.ready = lq.ready[1:]
		lq.complete(op, conn)
	} else {
		lq.accepts = append(lq.accepts, op)
	}
	return op.Token(), nil
}

// Connect dials the remote address.
func (l *LibOS) Connect(qd core.QDesc, addr core.Addr) (core.QToken, error) {
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	s, ok := q.(*sockQueue)
	if !ok {
		return core.InvalidQToken, core.ErrNotSupported
	}
	op := l.tokens.New()
	if s.typ == core.SockDgram {
		// Datagram connect: bind an ephemeral port and fix the peer.
		uaddr, _ := net.ResolveUDPAddr("udp", loopback(addr))
		conn, err := net.DialUDP("udp", nil, uaddr)
		if err != nil {
			op.Fail(qd, core.OpConnect, core.ErrConnRefused)
			return op.Token(), nil
		}
		u := &udpQueue{lib: l, qd: qd, conn: conn}
		l.qds.Restore(qd, u)
		go u.readLoop()
		op.Complete(core.QEvent{QD: qd, Op: core.OpConnect, NewQD: qd})
		return op.Token(), nil
	}
	go func() {
		conn, err := net.Dial("tcp", loopback(addr))
		l.enqueue(func() {
			if err != nil {
				op.Fail(qd, core.OpConnect, core.ErrConnRefused)
				return
			}
			l.stats.TCPConnects++
			t := &tcpQueue{lib: l, qd: qd, conn: conn}
			l.qds.Restore(qd, t)
			go t.readLoop()
			op.Complete(core.QEvent{QD: qd, Op: core.OpConnect, NewQD: qd})
		})
	}()
	return op.Token(), nil
}

// readLoop pulls bytes from the kernel into the receive queue.
func (q *tcpQueue) readLoop() {
	for {
		buf := make([]byte, 16<<10)
		n, err := q.conn.Read(buf)
		if n > 0 {
			data := buf[:n]
			q.lib.enqueue(func() { q.deliver(data) })
		}
		if err != nil {
			q.lib.enqueue(func() { q.hangup() })
			return
		}
	}
}

func (q *tcpQueue) deliver(data []byte) {
	q.lib.stats.BytesIn += uint64(len(data))
	if len(q.pops) > 0 {
		buf, err := memory.TryCopyFrom(q.lib.heap, data)
		if err != nil {
			// Heap exhausted: fail the pop (app sees ENOMEM) but keep the
			// bytes — the kernel already acked them — so a later pop after
			// memory frees up delivers them.
			q.lib.stats.RxAllocDrops++
			op := q.pops[0]
			q.pops = q.pops[1:]
			q.recvQ = append(q.recvQ, data)
			op.Fail(q.qd, core.OpPop, err)
			return
		}
		op := q.pops[0]
		q.pops = q.pops[1:]
		op.Complete(core.QEvent{QD: q.qd, Op: core.OpPop, SGA: core.SGA(buf)})
		return
	}
	q.recvQ = append(q.recvQ, data)
}

func (q *tcpQueue) hangup() {
	q.eof = true
	for _, op := range q.pops {
		op.Complete(core.QEvent{QD: q.qd, Op: core.OpPop}) // EOF
	}
	q.pops = nil
}

func (q *udpQueue) readLoop() {
	for {
		buf := make([]byte, 64<<10)
		n, from, err := q.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		data := buf[:n]
		var a core.Addr
		if from != nil {
			a = core.Addr{IP: [4]byte{127, 0, 0, 1}, Port: uint16(from.Port)}
		}
		q.lib.enqueue(func() { q.deliver(a, data) })
	}
}

func (q *udpQueue) deliver(from core.Addr, data []byte) {
	q.lib.stats.BytesIn += uint64(len(data))
	if len(q.pops) > 0 {
		buf, err := memory.TryCopyFrom(q.lib.heap, data)
		if err != nil {
			// UDP is lossy: drop the datagram, leave the pop pending.
			q.lib.stats.RxAllocDrops++
			return
		}
		op := q.pops[0]
		q.pops = q.pops[1:]
		op.Complete(core.QEvent{QD: q.qd, Op: core.OpPop, SGA: core.SGA(buf), From: from})
		return
	}
	q.recvQ = append(q.recvQ, udpDatagram{from: from, data: data})
}

// Close releases a queue.
func (l *LibOS) Close(qd core.QDesc) error {
	q, ok := l.qds.Remove(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	switch s := q.(type) {
	case *tcpQueue:
		s.conn.Close()
		for _, op := range s.pops {
			op.Fail(qd, core.OpPop, core.ErrQueueClosed)
		}
	case *listenQueue:
		s.ln.Close()
		for _, op := range s.accepts {
			op.Fail(qd, core.OpAccept, core.ErrQueueClosed)
		}
	case *udpQueue:
		s.conn.Close()
		for _, op := range s.pops {
			op.Fail(qd, core.OpPop, core.ErrQueueClosed)
		}
	case *fileQueue:
		s.f.Close()
	case *core.MemQueue:
		s.Destroy() // descriptor gone: free undrained data, never leak
	}
	return nil
}

// Push writes sga to the queue. On the kernel path the write copies (no
// zero-copy through POSIX; paper Table 1), and the op completes when the
// kernel accepts (TCP/UDP) or the file is durable (storage).
func (l *LibOS) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	return l.pushTo(qd, sga, core.Addr{}, false)
}

// PushTo is Push with an explicit datagram destination.
func (l *LibOS) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	return l.pushTo(qd, sga, to, true)
}

func (l *LibOS) pushTo(qd core.QDesc, sga core.SGArray, to core.Addr, explicit bool) (core.QToken, error) {
	if len(sga.Segs) == 0 {
		return core.InvalidQToken, core.ErrEmptySGA
	}
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	op := l.tokens.New()
	op.Trace(sga.TraceCtx())
	data := sga.Flatten()
	switch s := q.(type) {
	case *tcpQueue:
		if _, err := s.conn.Write(data); err != nil {
			op.Fail(qd, core.OpPush, core.ErrQueueClosed)
			return op.Token(), nil
		}
		l.stats.BytesOut += uint64(len(data))
		op.Complete(core.QEvent{QD: qd, Op: core.OpPush})
	case *udpQueue:
		var err error
		if explicit {
			var uaddr *net.UDPAddr
			uaddr, err = net.ResolveUDPAddr("udp", loopback(to))
			if err == nil {
				_, err = s.conn.WriteToUDP(data, uaddr)
			}
		} else {
			_, err = s.conn.Write(data)
		}
		if err != nil {
			op.Fail(qd, core.OpPush, core.ErrQueueClosed)
			return op.Token(), nil
		}
		l.stats.BytesOut += uint64(len(data))
		op.Complete(core.QEvent{QD: qd, Op: core.OpPush})
	case *sockQueue:
		if s.typ == core.SockDgram && explicit {
			// Unbound sendto: bind an ephemeral port first.
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				op.Fail(qd, core.OpPush, err)
				return op.Token(), nil
			}
			u := &udpQueue{lib: l, qd: qd, conn: conn}
			l.qds.Restore(qd, u)
			go u.readLoop()
			uaddr, _ := net.ResolveUDPAddr("udp", loopback(to))
			if _, err := u.conn.WriteToUDP(data, uaddr); err != nil {
				op.Fail(qd, core.OpPush, err)
				return op.Token(), nil
			}
			op.Complete(core.QEvent{QD: qd, Op: core.OpPush})
			return op.Token(), nil
		}
		return core.InvalidQToken, core.ErrNotBound
	case *fileQueue:
		s.append(op, data)
	case *core.MemQueue:
		s.Push(op, sga)
		return op.Token(), nil
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
	return op.Token(), nil
}

// Pop asks for the next inbound data on the queue.
func (l *LibOS) Pop(qd core.QDesc) (core.QToken, error) {
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.InvalidQToken, core.ErrBadQDesc
	}
	op := l.tokens.New()
	switch s := q.(type) {
	case *tcpQueue:
		switch {
		case len(s.recvQ) > 0:
			data := s.recvQ[0]
			s.recvQ = s.recvQ[1:]
			op.Complete(core.QEvent{QD: qd, Op: core.OpPop,
				SGA: core.SGA(memory.CopyFrom(l.heap, data))})
		case s.eof:
			op.Complete(core.QEvent{QD: qd, Op: core.OpPop})
		default:
			s.pops = append(s.pops, op)
		}
	case *udpQueue:
		if len(s.recvQ) > 0 {
			d := s.recvQ[0]
			s.recvQ = s.recvQ[1:]
			op.Complete(core.QEvent{QD: qd, Op: core.OpPop,
				SGA: core.SGA(memory.CopyFrom(l.heap, d.data)), From: d.from})
		} else {
			s.pops = append(s.pops, op)
		}
	case *fileQueue:
		s.read(op)
	case *core.MemQueue:
		s.Pop(op)
	default:
		return core.InvalidQToken, core.ErrNotSupported
	}
	return op.Token(), nil
}

// Queue creates an in-memory queue.
func (l *LibOS) Queue() (core.QDesc, error) {
	qd := l.qds.Insert(nil)
	l.qds.Restore(qd, core.NewMemQueue(qd))
	return qd, nil
}

// --- Storage log over a kernel file ---

// Open opens (creating if absent) the named storage log.
func (l *LibOS) Open(name string) (core.QDesc, error) {
	if l.dir == "" {
		return core.InvalidQD, core.ErrNotSupported
	}
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return core.InvalidQD, err
	}
	q := &fileQueue{lib: l, f: f}
	q.qd = l.qds.Insert(q)
	return q.qd, nil
}

// append writes one length-prefixed record and fsyncs (synchronous
// logging, as the paper's experiments configure).
func (q *fileQueue) append(op *core.Op, data []byte) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := q.f.Seek(0, 2); err != nil {
		op.Fail(q.qd, core.OpPush, err)
		return
	}
	if _, err := q.f.Write(hdr[:]); err != nil {
		op.Fail(q.qd, core.OpPush, err)
		return
	}
	if _, err := q.f.Write(data); err != nil {
		op.Fail(q.qd, core.OpPush, err)
		return
	}
	if err := q.f.Sync(); err != nil {
		op.Fail(q.qd, core.OpPush, err)
		return
	}
	q.lib.stats.FileAppends++
	op.Complete(core.QEvent{QD: q.qd, Op: core.OpPush})
}

// read returns the record at the cursor, or EOF.
func (q *fileQueue) read(op *core.Op) {
	var hdr [4]byte
	if _, err := q.f.ReadAt(hdr[:], q.cursor); err != nil {
		op.Complete(core.QEvent{QD: q.qd, Op: core.OpPop}) // EOF
		return
	}
	n := binary.BigEndian.Uint32(hdr[:])
	data := make([]byte, n)
	if _, err := q.f.ReadAt(data, q.cursor+4); err != nil {
		op.Complete(core.QEvent{QD: q.qd, Op: core.OpPop})
		return
	}
	q.cursor += 4 + int64(n)
	q.lib.stats.FileReads++
	op.Complete(core.QEvent{QD: q.qd, Op: core.OpPop,
		SGA: core.SGA(memory.CopyFrom(q.lib.heap, data))})
}

// Seek moves a log queue's read cursor to a byte offset.
func (l *LibOS) Seek(qd core.QDesc, offset int64) error {
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	fq, ok := q.(*fileQueue)
	if !ok {
		return core.ErrNotSupported
	}
	fq.cursor = offset
	return nil
}

// Truncate empties the log.
func (l *LibOS) Truncate(qd core.QDesc) error {
	q, ok := l.qds.Lookup(qd)
	if !ok {
		return core.ErrBadQDesc
	}
	fq, ok := q.(*fileQueue)
	if !ok {
		return core.ErrNotSupported
	}
	if err := fq.f.Truncate(0); err != nil {
		return err
	}
	fq.cursor = 0
	return nil
}

// Wait blocks until qt completes.
func (l *LibOS) Wait(qt core.QToken) (core.QEvent, error) { return l.waiter.Wait(qt) }

// WaitAny blocks until one of qts completes.
func (l *LibOS) WaitAny(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	return l.waiter.WaitAny(qts, timeout)
}

// WaitAll blocks until all of qts complete.
func (l *LibOS) WaitAll(qts []core.QToken, timeout time.Duration) ([]core.QEvent, error) {
	return l.waiter.WaitAll(qts, timeout)
}
