package catnap

import (
	"bytes"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/memory"
)

// freePort starts from a fixed base and spaces tests apart; loopback tests
// pick uncommon ports to avoid collisions.
const basePort = 42600

func push(t *testing.T, l *LibOS, qd core.QDesc, p []byte) core.QToken {
	t.Helper()
	qt, err := l.Push(qd, core.SGA(memory.CopyFrom(l.Heap(), p)))
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	return qt
}

func TestTCPEchoOverLoopback(t *testing.T) {
	l := New("")
	defer l.Shutdown()
	qd, err := l.Socket(core.SockStream)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Bind(qd, core.Addr{Port: basePort}); err != nil {
		t.Fatal(err)
	}
	if err := l.Listen(qd, 4); err != nil {
		t.Fatal(err)
	}
	// Server in a goroutine with its own libOS instance.
	done := make(chan struct{})
	go func() {
		defer close(done)
		aqt, _ := l.Accept(qd)
		ev, err := l.Wait(aqt)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		conn := ev.NewQD
		pqt, _ := l.Pop(conn)
		ev, err = l.Wait(pqt)
		if err != nil || ev.Err != nil {
			t.Errorf("server pop: %v %v", err, ev.Err)
			return
		}
		wqt, _ := l.Push(conn, ev.SGA)
		l.Wait(wqt)
	}()

	cl := New("")
	defer cl.Shutdown()
	cqd, _ := cl.Socket(core.SockStream)
	cqt, _ := cl.Connect(cqd, core.Addr{Port: basePort})
	if ev, err := cl.Wait(cqt); err != nil || ev.Err != nil {
		t.Fatalf("connect: %v %v", err, ev.Err)
	}
	push(t, cl, cqd, []byte("catnap echo"))
	var got []byte
	for len(got) < len("catnap echo") {
		pqt, _ := cl.Pop(cqd)
		ev, err := cl.Wait(pqt)
		if err != nil || ev.Err != nil {
			t.Fatalf("pop: %v %v", err, ev.Err)
		}
		got = append(got, ev.SGA.Flatten()...)
	}
	<-done
	if string(got) != "catnap echo" {
		t.Fatalf("echo = %q", got)
	}
}

func TestUDPEchoWithPushTo(t *testing.T) {
	srv := New("")
	defer srv.Shutdown()
	sqd, _ := srv.Socket(core.SockDgram)
	if err := srv.Bind(sqd, core.Addr{Port: basePort + 1}); err != nil {
		t.Fatal(err)
	}
	go func() {
		pqt, _ := srv.Pop(sqd)
		ev, err := srv.Wait(pqt)
		if err != nil || ev.Err != nil {
			return
		}
		srv.PushTo(sqd, ev.SGA, ev.From)
	}()

	cl := New("")
	defer cl.Shutdown()
	cqd, _ := cl.Socket(core.SockDgram)
	qt, err := cl.PushTo(cqd, core.SGA(memory.CopyFrom(cl.Heap(), []byte("dgram"))), core.Addr{Port: basePort + 1})
	if err != nil {
		t.Fatal(err)
	}
	cl.Wait(qt)
	pqt, _ := cl.Pop(cqd)
	ev, err := cl.Wait(pqt)
	if err != nil || ev.Err != nil {
		t.Fatalf("pop: %v %v", err, ev.Err)
	}
	if string(ev.SGA.Flatten()) != "dgram" {
		t.Fatalf("got %q", ev.SGA.Flatten())
	}
}

func TestConnectRefused(t *testing.T) {
	l := New("")
	defer l.Shutdown()
	qd, _ := l.Socket(core.SockStream)
	cqt, _ := l.Connect(qd, core.Addr{Port: basePort + 7}) // nothing listening
	ev, err := l.Wait(cqt)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Err == nil {
		t.Fatal("connect to dead port succeeded")
	}
}

func TestWaitAnyTimeout(t *testing.T) {
	l := New("")
	defer l.Shutdown()
	qd, _ := l.Socket(core.SockStream)
	l.Bind(qd, core.Addr{Port: basePort + 2})
	l.Listen(qd, 1)
	aqt, _ := l.Accept(qd)
	start := time.Now()
	_, _, err := l.WaitAny([]core.QToken{aqt}, 30*time.Millisecond)
	if err != core.ErrTimeout {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("timeout returned too early")
	}
}

func TestStorageLogRoundtripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	l := New(dir)
	defer l.Shutdown()
	qd, err := l.Open("test.log")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []string{"one", "two", "three"} {
		qt := push(t, l, qd, []byte(rec))
		if ev, err := l.Wait(qt); err != nil || ev.Err != nil {
			t.Fatalf("append: %v %v", err, ev.Err)
		}
	}
	// Read back from the start.
	var got []string
	for {
		pqt, _ := l.Pop(qd)
		ev, err := l.Wait(pqt)
		if err != nil || ev.Err != nil {
			t.Fatal(err)
		}
		if len(ev.SGA.Segs) == 0 {
			break
		}
		got = append(got, string(ev.SGA.Flatten()))
	}
	if len(got) != 3 || got[0] != "one" || got[2] != "three" {
		t.Fatalf("got %v", got)
	}
	l.Close(qd)

	// Reopen (simulating restart): records persist.
	l2 := New(dir)
	defer l2.Shutdown()
	qd2, _ := l2.Open("test.log")
	pqt, _ := l2.Pop(qd2)
	ev, _ := l2.Wait(pqt)
	if string(ev.SGA.Flatten()) != "one" {
		t.Fatal("log not persistent across reopen")
	}
}

func TestStorageSeekAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := New(dir)
	defer l.Shutdown()
	qd, _ := l.Open("log")
	qt := push(t, l, qd, []byte("data"))
	l.Wait(qt)
	pqt, _ := l.Pop(qd)
	l.Wait(pqt)
	if err := l.Seek(qd, 0); err != nil {
		t.Fatal(err)
	}
	pqt, _ = l.Pop(qd)
	ev, _ := l.Wait(pqt)
	if string(ev.SGA.Flatten()) != "data" {
		t.Fatal("seek rewind failed")
	}
	if err := l.Truncate(qd); err != nil {
		t.Fatal(err)
	}
	pqt, _ = l.Pop(qd)
	ev, _ = l.Wait(pqt)
	if len(ev.SGA.Segs) != 0 {
		t.Fatal("truncated log still has data")
	}
}

func TestMemQueueCatnap(t *testing.T) {
	l := New("")
	defer l.Shutdown()
	qd, _ := l.Queue()
	qt := push(t, l, qd, []byte("mq"))
	l.Wait(qt)
	pqt, _ := l.Pop(qd)
	ev, err := l.Wait(pqt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ev.SGA.Flatten(), []byte("mq")) {
		t.Fatal("memqueue roundtrip failed")
	}
}
