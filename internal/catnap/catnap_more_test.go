package catnap

import (
	"errors"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/memory"
)

func TestWaitAllOverRealOS(t *testing.T) {
	dir := t.TempDir()
	l := New(dir)
	defer l.Shutdown()
	qd, err := l.Open("multi.log")
	if err != nil {
		t.Fatal(err)
	}
	var qts []core.QToken
	for i := 0; i < 5; i++ {
		qt := push(t, l, qd, []byte{byte('a' + i)})
		qts = append(qts, qt)
	}
	evs, err := l.WaitAll(qts, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if ev.Err != nil {
			t.Errorf("append %d: %v", i, ev.Err)
		}
	}
}

func TestConnectedUDPPush(t *testing.T) {
	srv := New("")
	defer srv.Shutdown()
	sqd, _ := srv.Socket(core.SockDgram)
	if err := srv.Bind(sqd, core.Addr{Port: basePort + 20}); err != nil {
		t.Fatal(err)
	}
	go func() {
		pqt, _ := srv.Pop(sqd)
		ev, err := srv.Wait(pqt)
		if err != nil || ev.Err != nil {
			return
		}
		srv.PushTo(sqd, ev.SGA, ev.From)
	}()

	cl := New("")
	defer cl.Shutdown()
	qd, _ := cl.Socket(core.SockDgram)
	cqt, err := cl.Connect(qd, core.Addr{Port: basePort + 20})
	if err != nil {
		t.Fatal(err)
	}
	if ev, err := cl.Wait(cqt); err != nil || ev.Err != nil {
		t.Fatalf("connect: %v %v", err, ev.Err)
	}
	// Connected datagram socket: plain Push, no explicit address.
	qt, err := cl.Push(qd, core.SGA(memory.CopyFrom(cl.Heap(), []byte("connected"))))
	if err != nil {
		t.Fatal(err)
	}
	cl.Wait(qt)
	pqt, _ := cl.Pop(qd)
	_, ev, err := cl.WaitAny([]core.QToken{pqt}, 5*time.Second)
	if err != nil || ev.Err != nil {
		t.Fatalf("pop: %v %v", err, ev.Err)
	}
	if string(ev.SGA.Flatten()) != "connected" {
		t.Fatalf("got %q", ev.SGA.Flatten())
	}
}

func TestBadDescriptorErrors(t *testing.T) {
	l := New("")
	defer l.Shutdown()
	if _, err := l.Pop(9999); !errors.Is(err, core.ErrBadQDesc) {
		t.Errorf("pop: %v", err)
	}
	if _, err := l.Push(9999, core.SGA(memory.CopyFrom(l.Heap(), []byte("x")))); !errors.Is(err, core.ErrBadQDesc) {
		t.Errorf("push: %v", err)
	}
	if err := l.Close(9999); !errors.Is(err, core.ErrBadQDesc) {
		t.Errorf("close: %v", err)
	}
	if _, err := l.Open("x"); !errors.Is(err, core.ErrNotSupported) {
		t.Errorf("open with no dir: %v", err)
	}
	qd, _ := l.Socket(core.SockStream)
	if _, err := l.Push(qd, core.SGArray{}); !errors.Is(err, core.ErrEmptySGA) {
		t.Errorf("empty push: %v", err)
	}
}

func TestShutdownUnblocksWaiters(t *testing.T) {
	l := New("")
	qd, _ := l.Socket(core.SockStream)
	l.Bind(qd, core.Addr{Port: basePort + 21})
	l.Listen(qd, 1)
	aqt, _ := l.Accept(qd)
	done := make(chan error, 1)
	go func() {
		_, err := l.Wait(aqt)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	l.Shutdown()
	select {
	case err := <-done:
		if !errors.Is(err, core.ErrStopped) {
			t.Errorf("wait returned %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not unblocked by Shutdown")
	}
}
