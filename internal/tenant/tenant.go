// Package tenant makes tenants first-class datapath principals (ROADMAP
// "Multi-tenant datapath"; cf. "Safe Sharing of Fast Kernel-Bypass I/O
// Among Nontrusting Applications"). A Tenant bundles an identity, its
// resource limits, and its quota accounting; a View (view.go) is the
// tenant's capability to a shared library OS, enforcing those limits with
// complete-or-error semantics at every libcall.
//
// The isolation model, layer by layer:
//
//   - qtokens are capabilities: core.TokenTable stamps every op with the
//     issuing tenant and TryTakeAs rejects cross-tenant redemption with
//     ErrBadQToken, without consuming the victim's op.
//   - DMA memory is partitioned: memory.Heap gives each tenant its own
//     superblocks and a byte quota (ErrNoMem on breach), reached through a
//     memory.TenantHeap capability whose TryFree turns double-free and
//     foreign-free abuse into errors instead of panics.
//   - flow-table entries, in-flight qtokens and push rate are quota'd
//     here, rejected with core.ErrTenantQuota at the call site (the
//     caller keeps buffer ownership; nothing is left outstanding).
//   - poll cycles and dispatch slots are shared weighted-fair (sched WFQ,
//     reqsched.Dispatcher WFQ), so a flooding tenant cannot monopolize
//     the datapath.
//
// Tenant id 0 is the host: the trusted infrastructure principal, never
// limited, and the only principal that may bypass Views.
package tenant

import (
	"fmt"

	"demikernel/internal/core"
	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
)

// Limits are one tenant's resource caps. Zero values mean unlimited
// (except Weight, where zero means weight 1).
type Limits struct {
	// Weight is the tenant's weighted-fair share of poll cycles and
	// dispatch slots.
	Weight uint32
	// HeapBytes caps the tenant's live DMA-heap bytes.
	HeapBytes int64
	// MaxFlows caps flow-table entries (connected + connecting + reserved
	// by outstanding accepts).
	MaxFlows int
	// MaxTokens caps in-flight qtokens (issued, not yet redeemed).
	MaxTokens int
	// PushRate caps pushes per second, token-bucket smoothed.
	PushRate int
	// PushBurst is the bucket depth in pushes (default 8 when PushRate is
	// set).
	PushBurst int
}

// Tenant is one datapath principal: identity, limits and accounting.
// Like everything on the datapath it is single-threaded by design.
type Tenant struct {
	id   uint32
	name string
	lim  Limits

	//demi:stateguard quota accounting must match reality: charging a flow
	// on a rejected acquire leaks quota the tenant never got.
	flows int // live flow-table entries (and reservations)
	//demi:stateguard same complete-or-error contract as flows.
	tokens int // in-flight qtokens

	// Push-rate token bucket in "nanopushes" (1e9 per push), refilled
	// from virtual time — integer math only, deterministic.
	bucket   int64
	lastFill sim.Time
	primed   bool

	// Rejection observability (satellite: isolation violations must be
	// observable, not just fatal). Nil until Publish.
	cFlowRej *telemetry.Counter
	cTokRej  *telemetry.Counter
	cRateRej *telemetry.Counter
	cBadWait *telemetry.Counter
	cForgery *telemetry.Counter
}

// nanoPush is one push worth of bucket credit.
const nanoPush = int64(1e9)

// ID returns the tenant's principal id.
func (t *Tenant) ID() uint32 { return t.id }

// Name returns the tenant's human-readable name.
func (t *Tenant) Name() string { return t.name }

// Limits returns the tenant's resource caps.
func (t *Tenant) Limits() Limits { return t.lim }

// Flows returns the live flow-table entries charged to the tenant.
func (t *Tenant) Flows() int { return t.flows }

// InFlight returns the tenant's outstanding qtoken count.
func (t *Tenant) InFlight() int { return t.tokens }

// Publish registers the tenant's quota-rejection and forgery counters
// plus live gauges with reg, namespaced "tenant.<id>.". All three
// exporters (text/JSON/Prometheus) render them like any other metric.
func (t *Tenant) Publish(reg *telemetry.Registry) {
	p := fmt.Sprintf("tenant.%d.", t.id)
	t.cFlowRej = reg.Counter(p + "quota_rejects.flows")
	t.cTokRej = reg.Counter(p + "quota_rejects.tokens")
	t.cRateRej = reg.Counter(p + "quota_rejects.push_rate")
	t.cBadWait = reg.Counter(p + "bad_token_waits")
	t.cForgery = reg.Counter(p + "forgery_attempts")
	reg.Sample(p+"flows", func() int64 { return int64(t.flows) })
	reg.Sample(p+"tokens_inflight", func() int64 { return int64(t.tokens) })
}

// NoteForgery counts one cross-tenant redemption attempt made *by* this
// tenant (wired from the token table via Registry.AttachTable).
func (t *Tenant) NoteForgery() {
	if t.cForgery != nil {
		t.cForgery.Inc()
	}
}

// noteBadWait counts a rejected token redemption observed at this
// tenant's own wait (its forged guesses and its stale-token bugs alike).
func (t *Tenant) noteBadWait() {
	if t.cBadWait != nil {
		t.cBadWait.Inc()
	}
}

// AcquireFlow charges one flow-table entry, or ErrTenantQuota at the cap.
func (t *Tenant) AcquireFlow() error {
	if t.lim.MaxFlows > 0 && t.flows >= t.lim.MaxFlows {
		if t.cFlowRej != nil {
			t.cFlowRej.Inc()
		}
		return core.ErrTenantQuota
	}
	t.flows++
	return nil
}

// ReleaseFlow credits one flow-table entry back (close, failed connect,
// failed accept). Releasing below zero panics: that is a View bug.
func (t *Tenant) ReleaseFlow() {
	if t.flows == 0 {
		panic("tenant: flow release without acquire")
	}
	t.flows--
}

// AcquireToken charges one in-flight qtoken, or ErrTenantQuota at the cap.
func (t *Tenant) AcquireToken() error {
	if t.lim.MaxTokens > 0 && t.tokens >= t.lim.MaxTokens {
		if t.cTokRej != nil {
			t.cTokRej.Inc()
		}
		return core.ErrTenantQuota
	}
	t.tokens++
	return nil
}

// ReleaseToken credits one in-flight qtoken back (redemption).
func (t *Tenant) ReleaseToken() {
	if t.tokens == 0 {
		panic("tenant: token release without acquire")
	}
	t.tokens--
}

// AllowPush debits the push-rate bucket at virtual time now, or
// ErrTenantQuota when the tenant is pushing faster than its rate.
func (t *Tenant) AllowPush(now sim.Time) error {
	if t.lim.PushRate <= 0 {
		return nil
	}
	burst := t.lim.PushBurst
	if burst <= 0 {
		burst = 8
	}
	depth := int64(burst) * nanoPush
	if !t.primed {
		t.bucket = depth // a fresh tenant starts with a full bucket
		t.primed = true
	} else if now > t.lastFill {
		elapsed := int64(now - t.lastFill) // ns of virtual time
		if elapsed > int64(10e9) {
			t.bucket = depth // >10s idle: full refill, no overflow risk
		} else {
			t.bucket += elapsed * int64(t.lim.PushRate)
			if t.bucket > depth {
				t.bucket = depth
			}
		}
	}
	t.lastFill = now
	if t.bucket < nanoPush {
		if t.cRateRej != nil {
			t.cRateRej.Inc()
		}
		return core.ErrTenantQuota
	}
	t.bucket -= nanoPush
	return nil
}

// Registry tracks the tenants sharing one datapath.
type Registry struct {
	byID map[uint32]*Tenant
	ids  []uint32 // creation order: the deterministic iteration order
}

// NewRegistry returns an empty tenant registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[uint32]*Tenant)}
}

// New creates and registers a tenant. Id 0 is reserved for the host, and
// ids are unique.
func (r *Registry) New(id uint32, name string, lim Limits) *Tenant {
	if id == 0 {
		panic("tenant: id 0 is the host principal")
	}
	if _, dup := r.byID[id]; dup {
		panic("tenant: duplicate id " + fmt.Sprint(id))
	}
	t := &Tenant{id: id, name: name, lim: lim}
	r.byID[id] = t
	r.ids = append(r.ids, id)
	return t
}

// Get returns the tenant with the given id, nil if unknown.
func (r *Registry) Get(id uint32) *Tenant { return r.byID[id] }

// AttachTable wires the token table's forgery hook to the registry, so
// every cross-tenant redemption attempt increments the *redeeming*
// tenant's forgery_attempts counter. One table has one hook; attach the
// registry that covers all its tenants.
func (r *Registry) AttachTable(tbl *core.TokenTable) {
	tbl.SetForgeryHook(func(issuer, redeemer uint32) {
		if t := r.byID[redeemer]; t != nil {
			t.NoteForgery()
		}
	})
}
