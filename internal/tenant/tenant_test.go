package tenant_test

import (
	"errors"
	"testing"
	"time"

	"demikernel/internal/catmem"
	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/sim"
	"demikernel/internal/telemetry"
	"demikernel/internal/tenant"
)

// rig is a single-host catmem backend with two tenant views sharing it.
type rig struct {
	eng  *sim.Engine
	lib  *catmem.LibOS
	treg *tenant.Registry
	tel  *telemetry.Registry
	ta   *tenant.Tenant
	tb   *tenant.Tenant
	va   *tenant.View
	vb   *tenant.View
}

func newRig(limA, limB tenant.Limits) *rig {
	eng := sim.NewEngine(1)
	region := catmem.NewRegion(eng)
	lib := region.New(eng.NewNode("host"))
	treg := tenant.NewRegistry()
	treg.AttachTable(lib.Tokens())
	tel := telemetry.NewRegistry("tenants")
	ta := treg.New(1, "victim", limA)
	tb := treg.New(2, "attacker", limB)
	ta.Publish(tel)
	tb.Publish(tel)
	return &rig{
		eng: eng, lib: lib, treg: treg, tel: tel,
		ta: ta, tb: tb,
		va: tenant.NewView(ta, lib), vb: tenant.NewView(tb, lib),
	}
}

// run executes body as the host node's main and drives it to completion.
func (r *rig) run(body func()) {
	r.eng.Spawn(r.lib.Node(), body)
	r.eng.Run()
}

// mintCompleted mints a completed push qtoken owned by view v: a bounded
// in-memory queue accepts the push immediately, so the token is redeemable
// the moment Push returns.
func mintCompleted(t *testing.T, v *tenant.View) (core.QDesc, core.QToken) {
	t.Helper()
	qd, err := v.Queue()
	if err != nil {
		t.Fatalf("queue: %v", err)
	}
	buf := v.TenantHeap().CopyFrom([]byte("payload"))
	qt, err := v.Push(qd, core.SGA(buf))
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	return qd, qt
}

// drain pops the pushed payload back out and frees it, then closes qd.
func drain(t *testing.T, v *tenant.View, qd core.QDesc) {
	t.Helper()
	pqt, err := v.Pop(qd)
	if err != nil {
		t.Fatalf("pop: %v", err)
	}
	ev, err := v.Wait(pqt)
	if err != nil {
		t.Fatalf("pop wait: %v", err)
	}
	for _, b := range ev.SGA.Segs {
		if err := v.TenantHeap().TryFree(b); err != nil {
			t.Fatalf("free popped buf: %v", err)
		}
	}
	if err := v.Close(qd); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCrossTenantRedemption is the capability property, table-driven over
// every redemption path: a qtoken minted by tenant A is rejected for
// tenant B with ErrBadQToken — indistinguishable from an unknown token —
// without consuming A's completion, and the attempt is counted.
func TestCrossTenantRedemption(t *testing.T) {
	cases := []struct {
		name   string
		redeem func(v *tenant.View, qt core.QToken) error
	}{
		{"Wait", func(v *tenant.View, qt core.QToken) error {
			_, err := v.Wait(qt)
			return err
		}},
		{"WaitAny", func(v *tenant.View, qt core.QToken) error {
			_, _, err := v.WaitAny([]core.QToken{qt}, time.Second)
			return err
		}},
		{"WaitAll", func(v *tenant.View, qt core.QToken) error {
			_, err := v.WaitAll([]core.QToken{qt}, time.Second)
			return err
		}},
		{"TryTake", func(v *tenant.View, qt core.QToken) error {
			_, _, err := v.TryTake(qt)
			return err
		}},
	}
	r := newRig(tenant.Limits{}, tenant.Limits{})
	r.run(func() {
		for i, tc := range cases {
			qd, qt := mintCompleted(t, r.va)
			if err := tc.redeem(r.vb, qt); !errors.Is(err, core.ErrBadQToken) {
				t.Errorf("%s: foreign redemption got %v, want ErrBadQToken", tc.name, err)
			}
			// The victim's completion survived the attempt.
			if ev, err := r.va.Wait(qt); err != nil || ev.Err != nil {
				t.Errorf("%s: victim redemption after attack: %v %v", tc.name, err, ev.Err)
			}
			drain(t, r.va, qd)
			if got := r.lib.Tokens().Forgeries(); got != uint64(i+1) {
				t.Errorf("%s: forgeries = %d, want %d", tc.name, got, i+1)
			}
		}
	})
	if got := r.tel.Counter("tenant.2.forgery_attempts").Value(); got != uint64(len(cases)) {
		t.Errorf("attacker forgery_attempts = %d, want %d", got, len(cases))
	}
	if got := r.tel.Counter("tenant.1.forgery_attempts").Value(); got != 0 {
		t.Errorf("victim forgery_attempts = %d, want 0", got)
	}
	if got := r.tel.Counter("tenant.2.bad_token_waits").Value(); got != uint64(len(cases)) {
		t.Errorf("attacker bad_token_waits = %d, want %d", got, len(cases))
	}
}

// TestForeignDescriptorRejected: a leaked or guessed foreign qd is not a
// capability — every call on it fails with ErrBadQDesc before reaching the
// libOS.
func TestForeignDescriptorRejected(t *testing.T) {
	r := newRig(tenant.Limits{}, tenant.Limits{})
	r.run(func() {
		qd, qt := mintCompleted(t, r.va)
		if _, err := r.vb.Pop(qd); !errors.Is(err, core.ErrBadQDesc) {
			t.Errorf("foreign Pop: got %v, want ErrBadQDesc", err)
		}
		if _, err := r.vb.Push(qd, core.SGArray{}); !errors.Is(err, core.ErrBadQDesc) {
			t.Errorf("foreign Push: got %v, want ErrBadQDesc", err)
		}
		if err := r.vb.Close(qd); !errors.Is(err, core.ErrBadQDesc) {
			t.Errorf("foreign Close: got %v, want ErrBadQDesc", err)
		}
		if _, err := r.va.Wait(qt); err != nil {
			t.Fatalf("victim wait: %v", err)
		}
		drain(t, r.va, qd)
	})
}

// TestFlowQuotaChurn: connect/close churn never leaks a flow-table charge,
// and the cap rejects exactly the connection over it.
func TestFlowQuotaChurn(t *testing.T) {
	const maxFlows = 2
	r := newRig(tenant.Limits{MaxFlows: maxFlows}, tenant.Limits{})
	r.run(func() {
		// Host-side listener (trusted infrastructure, no view).
		lqd, err := r.lib.Socket(core.SockStream)
		if err != nil {
			t.Fatalf("listener socket: %v", err)
		}
		if err := r.lib.Bind(lqd, core.Addr{Port: 9000}); err != nil {
			t.Fatalf("bind: %v", err)
		}
		if err := r.lib.Listen(lqd, 64); err != nil {
			t.Fatalf("listen: %v", err)
		}
		dial := func() (core.QDesc, error) {
			qd, err := r.va.Socket(core.SockStream)
			if err != nil {
				return core.InvalidQD, err
			}
			qt, err := r.va.Connect(qd, core.Addr{Port: 9000})
			if err != nil {
				r.va.Close(qd)
				return core.InvalidQD, err
			}
			if ev, werr := r.va.Wait(qt); werr != nil || ev.Err != nil {
				t.Fatalf("connect wait: %v %v", werr, ev.Err)
			}
			return qd, nil
		}
		// Churn: connect and close far more times than the cap. Any charge
		// leak would trip the quota mid-loop.
		for i := 0; i < 10*maxFlows; i++ {
			qd, err := dial()
			if err != nil {
				t.Fatalf("churn iteration %d: %v", i, err)
			}
			if err := r.va.Close(qd); err != nil {
				t.Fatalf("churn close %d: %v", i, err)
			}
		}
		if got := r.ta.Flows(); got != 0 {
			t.Fatalf("flows after churn = %d, want 0", got)
		}
		// Fill to the cap, then one more must be rejected.
		held := make([]core.QDesc, 0, maxFlows)
		for i := 0; i < maxFlows; i++ {
			qd, err := dial()
			if err != nil {
				t.Fatalf("fill %d: %v", i, err)
			}
			held = append(held, qd)
		}
		if _, err := dial(); !errors.Is(err, core.ErrTenantQuota) {
			t.Fatalf("over-cap connect: got %v, want ErrTenantQuota", err)
		}
		// Releasing one flow re-opens the cap.
		if err := r.va.Close(held[0]); err != nil {
			t.Fatalf("release: %v", err)
		}
		qd, err := dial()
		if err != nil {
			t.Fatalf("connect after release: %v", err)
		}
		for _, h := range append(held[1:], qd) {
			r.va.Close(h)
		}
	})
	if r.tel.Counter("tenant.1.quota_rejects.flows").Value() == 0 {
		t.Error("flow quota rejection not counted")
	}
}

// TestTokenQuota: the in-flight qtoken cap rejects the mint over it and is
// credited back at redemption.
func TestTokenQuota(t *testing.T) {
	r := newRig(tenant.Limits{MaxTokens: 1}, tenant.Limits{})
	r.run(func() {
		qd, err := r.va.Queue()
		if err != nil {
			t.Fatalf("queue: %v", err)
		}
		buf := r.va.TenantHeap().CopyFrom([]byte("x"))
		qt, err := r.va.Push(qd, core.SGA(buf))
		if err != nil {
			t.Fatalf("push: %v", err)
		}
		if _, err := r.va.Pop(qd); !errors.Is(err, core.ErrTenantQuota) {
			t.Fatalf("second in-flight op: got %v, want ErrTenantQuota", err)
		}
		if _, err := r.va.Wait(qt); err != nil {
			t.Fatalf("wait: %v", err)
		}
		if got := r.ta.InFlight(); got != 0 {
			t.Fatalf("in-flight after redemption = %d, want 0", got)
		}
		drain(t, r.va, qd) // the pop works once the quota is credited back
	})
	if r.tel.Counter("tenant.1.quota_rejects.tokens").Value() != 1 {
		t.Error("token quota rejection not counted")
	}
}

// TestPushRateLimit: the push-rate bucket rejects a burst past its depth,
// and the rejected caller keeps buffer ownership (complete-or-error).
func TestPushRateLimit(t *testing.T) {
	r := newRig(tenant.Limits{PushRate: 1, PushBurst: 1}, tenant.Limits{})
	r.run(func() {
		qd, err := r.va.Queue()
		if err != nil {
			t.Fatalf("queue: %v", err)
		}
		buf1 := r.va.TenantHeap().CopyFrom([]byte("a"))
		qt, err := r.va.Push(qd, core.SGA(buf1))
		if err != nil {
			t.Fatalf("first push: %v", err)
		}
		buf2 := r.va.TenantHeap().CopyFrom([]byte("b"))
		if _, err := r.va.Push(qd, core.SGA(buf2)); !errors.Is(err, core.ErrTenantQuota) {
			t.Fatalf("burst push: got %v, want ErrTenantQuota", err)
		}
		// Rejected at the call: ownership stayed with the caller.
		if err := r.va.TenantHeap().TryFree(buf2); err != nil {
			t.Fatalf("free rejected-push buffer: %v", err)
		}
		if _, err := r.va.Wait(qt); err != nil {
			t.Fatalf("wait: %v", err)
		}
		drain(t, r.va, qd)
	})
	if r.tel.Counter("tenant.1.quota_rejects.push_rate").Value() != 1 {
		t.Error("push-rate rejection not counted")
	}
	if used := r.va.TenantHeap().Used(); used != 0 {
		t.Errorf("tenant heap bytes leaked: %d", used)
	}
}

// TestHeapQuotaIsolation: one tenant's alloc flood exhausts its own quota
// (ErrNoMem) while the other tenant keeps allocating; frees restore
// headroom; double free and foreign free are errors, not panics.
func TestHeapQuotaIsolation(t *testing.T) {
	const quota = 16 << 10
	r := newRig(tenant.Limits{HeapBytes: quota}, tenant.Limits{HeapBytes: quota})
	thA, thB := r.va.TenantHeap(), r.vb.TenantHeap()

	// B floods its region to exhaustion.
	var held []*memory.Buf
	for {
		b, err := thB.TryAlloc(1024)
		if err != nil {
			if !errors.Is(err, memory.ErrNoMem) {
				t.Fatalf("flood alloc: got %v, want ErrNoMem", err)
			}
			break
		}
		held = append(held, b)
		if len(held) > quota/1024+1 {
			t.Fatalf("quota never enforced after %d allocs", len(held))
		}
	}
	// The victim allocates unimpeded.
	vb, err := thA.TryAlloc(1024)
	if err != nil {
		t.Fatalf("victim alloc during flood: %v", err)
	}
	if got := thB.Stats().Rejects; got == 0 {
		t.Error("flood rejection not accounted")
	}

	// Cross-tenant free is rejected without touching the buffer.
	if err := thB.TryFree(vb); !errors.Is(err, memory.ErrForeignBuf) {
		t.Fatalf("foreign free: got %v, want ErrForeignBuf", err)
	}
	if err := thA.TryFree(vb); err != nil {
		t.Fatalf("owner free: %v", err)
	}
	// Double free through the capability is an error, not a panic.
	if err := thA.TryFree(vb); !errors.Is(err, memory.ErrDoubleFree) {
		t.Fatalf("double free: got %v, want ErrDoubleFree", err)
	}

	// Frees restore headroom: B can allocate again.
	if err := thB.TryFree(held[0]); err != nil {
		t.Fatalf("flood free: %v", err)
	}
	if _, err := thB.TryAlloc(1024); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}
