package tenant

import (
	"time"

	"demikernel/internal/core"
	"demikernel/internal/demi"
	"demikernel/internal/memory"
)

// Enterer is implemented by library OSes that tag in-stack state (sockets,
// connections, coroutine spawns, rx allocations) with the calling tenant.
// EnterTenant/ExitTenant bracket each of the tenant's libcalls.
type Enterer interface {
	EnterTenant(tid uint32)
	ExitTenant()
}

// Registrar is implemented by library OSes whose coroutine scheduler does
// weighted-fair queuing across tenants.
type Registrar interface {
	RegisterTenant(tid uint32, weight uint32)
}

// View is one tenant's handle on a shared library OS: it implements
// demi.LibOS, so tenant applications run unmodified, but every call is
// checked against the tenant's capabilities and quotas first —
//
//   - descriptors: only queues this view created (or accepted) may be
//     used; a guessed or leaked foreign qd fails with ErrBadQDesc.
//   - qtokens: redemption goes through core.TryTakeAs under the tenant's
//     principal, so foreign tokens fail with ErrBadQToken without
//     touching the victim's op.
//   - flows: Connect and Accept charge the flow-table quota, released on
//     close or operation failure (no leak across churn).
//   - in-flight tokens: every mint charges the token quota, released at
//     redemption.
//   - push rate: Push/PushTo debit a deterministic token bucket.
//
// All rejections are complete-or-error at the call site: a quota-rejected
// Push returns ErrTenantQuota with buffer ownership untouched, exactly
// like the PR 4 graceful-degradation contract.
type View struct {
	t  *Tenant
	os demi.NetOS
	w  core.Waiter
	th *memory.TenantHeap

	owned map[core.QDesc]bool // descriptors this tenant may use
	flow  map[core.QDesc]bool // descriptors holding a flow-quota charge
}

// NewView hands tenant t its capability to the shared libOS. The tenant's
// heap quota and scheduler weight are installed here; the token table's
// issuer is bracketed per call.
func NewView(t *Tenant, os demi.NetOS) *View {
	v := &View{
		t:     t,
		os:    os,
		w:     core.Waiter{Table: os.Tokens(), Runner: os, Tenant: t.id},
		th:    os.Heap().Tenant(t.id),
		owned: make(map[core.QDesc]bool),
		flow:  make(map[core.QDesc]bool),
	}
	if t.lim.HeapBytes > 0 {
		os.Heap().SetTenantQuota(t.id, t.lim.HeapBytes)
	}
	if r, ok := os.(Registrar); ok {
		w := t.lim.Weight
		if w == 0 {
			w = 1
		}
		r.RegisterTenant(t.id, w)
	}
	return v
}

// Tenant returns the view's principal.
func (v *View) Tenant() *Tenant { return v.t }

// TenantHeap returns the tenant's DMA-heap capability; applications that
// allocate through it have their bytes charged against the tenant's quota.
func (v *View) TenantHeap() *memory.TenantHeap { return v.th }

// Heap returns the shared heap, for demi.LibOS compatibility. Allocations
// made directly on it are host-charged; quota-enforced tenants should use
// TenantHeap. (The signature is fixed by core.LibOS.)
func (v *View) Heap() *memory.Heap { return v.os.Heap() }

// enter brackets a libcall: ops minted inside are stamped with the
// tenant, and the backend (if it cares) tags in-stack state.
func (v *View) enter() {
	v.os.Tokens().SetIssuer(v.t.id)
	if e, ok := v.os.(Enterer); ok {
		e.EnterTenant(v.t.id)
	}
}

// exit restores the host principal.
func (v *View) exit() {
	v.os.Tokens().SetIssuer(0)
	if e, ok := v.os.(Enterer); ok {
		e.ExitTenant()
	}
}

// check validates descriptor ownership.
func (v *View) check(qd core.QDesc) error {
	if !v.owned[qd] {
		return core.ErrBadQDesc
	}
	return nil
}

// Socket creates a socket queue owned by the tenant.
func (v *View) Socket(t core.SockType) (core.QDesc, error) {
	v.enter()
	qd, err := v.os.Socket(t)
	v.exit()
	if err == nil {
		v.owned[qd] = true
	}
	return qd, err
}

// Bind assigns the socket's local address.
func (v *View) Bind(qd core.QDesc, addr core.Addr) error {
	if err := v.check(qd); err != nil {
		return err
	}
	v.enter()
	defer v.exit()
	return v.os.Bind(qd, addr)
}

// Listen makes a stream socket accept connections.
func (v *View) Listen(qd core.QDesc, backlog int) error {
	if err := v.check(qd); err != nil {
		return err
	}
	v.enter()
	defer v.exit()
	return v.os.Listen(qd, backlog)
}

// Accept asks for the next inbound connection. The flow-table entry for
// the connection-to-be is reserved now (complete-or-error: a tenant at
// its flow cap gets ErrTenantQuota here, not a half-accepted socket); the
// reservation is released if the accept itself fails.
func (v *View) Accept(qd core.QDesc) (core.QToken, error) {
	if err := v.check(qd); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AcquireFlow(); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AcquireToken(); err != nil {
		v.t.ReleaseFlow()
		return core.InvalidQToken, err
	}
	v.enter()
	qt, err := v.os.Accept(qd)
	v.exit()
	if err != nil {
		v.t.ReleaseToken()
		v.t.ReleaseFlow()
		return qt, err
	}
	return qt, nil
}

// Connect initiates a connection, charging one flow-table entry. The
// charge is released if the connect fails at the call or completes with
// an error.
func (v *View) Connect(qd core.QDesc, addr core.Addr) (core.QToken, error) {
	if err := v.check(qd); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AcquireFlow(); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AcquireToken(); err != nil {
		v.t.ReleaseFlow()
		return core.InvalidQToken, err
	}
	v.enter()
	qt, err := v.os.Connect(qd, addr)
	v.exit()
	if err != nil {
		v.t.ReleaseToken()
		v.t.ReleaseFlow()
		return qt, err
	}
	v.flow[qd] = true
	return qt, nil
}

// Close releases the queue and credits its flow-table charge back.
func (v *View) Close(qd core.QDesc) error {
	if err := v.check(qd); err != nil {
		return err
	}
	v.enter()
	err := v.os.Close(qd)
	v.exit()
	delete(v.owned, qd)
	if v.flow[qd] {
		delete(v.flow, qd)
		v.t.ReleaseFlow()
	}
	return err
}

// Queue creates an in-memory queue owned by the tenant.
func (v *View) Queue() (core.QDesc, error) {
	v.enter()
	qd, err := v.os.Queue()
	v.exit()
	if err == nil {
		v.owned[qd] = true
	}
	return qd, err
}

// Open opens a storage log queue owned by the tenant.
func (v *View) Open(name string) (core.QDesc, error) {
	v.enter()
	qd, err := v.os.Open(name)
	v.exit()
	if err == nil {
		v.owned[qd] = true
	}
	return qd, err
}

// Push submits an outbound operation, debiting the push-rate bucket and
// the token quota. On any rejection the caller keeps buffer ownership.
func (v *View) Push(qd core.QDesc, sga core.SGArray) (core.QToken, error) {
	if err := v.check(qd); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AllowPush(v.os.Now()); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AcquireToken(); err != nil {
		return core.InvalidQToken, err
	}
	v.enter()
	qt, err := v.os.Push(qd, sga)
	v.exit()
	if err != nil {
		v.t.ReleaseToken()
	}
	return qt, err
}

// PushTo is Push with an explicit datagram destination.
func (v *View) PushTo(qd core.QDesc, sga core.SGArray, to core.Addr) (core.QToken, error) {
	if err := v.check(qd); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AllowPush(v.os.Now()); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AcquireToken(); err != nil {
		return core.InvalidQToken, err
	}
	v.enter()
	qt, err := v.os.PushTo(qd, sga, to)
	v.exit()
	if err != nil {
		v.t.ReleaseToken()
	}
	return qt, err
}

// Pop asks for the next inbound data, debiting the token quota.
func (v *View) Pop(qd core.QDesc) (core.QToken, error) {
	if err := v.check(qd); err != nil {
		return core.InvalidQToken, err
	}
	if err := v.t.AcquireToken(); err != nil {
		return core.InvalidQToken, err
	}
	v.enter()
	qt, err := v.os.Pop(qd)
	v.exit()
	if err != nil {
		v.t.ReleaseToken()
	}
	return qt, err
}

// settle applies one redeemed event's quota bookkeeping: the in-flight
// token is released; a failed connect releases its flow charge; an accept
// adopts (success) or releases (failure) the flow reserved at Accept.
func (v *View) settle(ev core.QEvent) {
	v.t.ReleaseToken()
	switch ev.Op {
	case core.OpConnect:
		if ev.Err != nil && v.flow[ev.QD] {
			delete(v.flow, ev.QD)
			v.t.ReleaseFlow()
		}
	case core.OpAccept:
		if ev.Err != nil {
			v.t.ReleaseFlow() // the reservation made at Accept
		} else {
			v.owned[ev.NewQD] = true
			v.flow[ev.NewQD] = true // the reservation becomes the conn's charge
		}
	}
}

// Wait blocks until qt completes. A token minted for another tenant is
// rejected with ErrBadQToken (and counted), not redeemed.
func (v *View) Wait(qt core.QToken) (core.QEvent, error) {
	ev, err := v.w.Wait(qt)
	if err == core.ErrBadQToken {
		v.t.noteBadWait()
	}
	if err == nil {
		v.settle(ev)
	}
	return ev, err
}

// WaitAny blocks until one of qts completes.
func (v *View) WaitAny(qts []core.QToken, timeout time.Duration) (int, core.QEvent, error) {
	i, ev, err := v.w.WaitAny(qts, timeout)
	if err == core.ErrBadQToken {
		v.t.noteBadWait()
	}
	if err == nil {
		v.settle(ev)
	}
	return i, ev, err
}

// WaitAll blocks until every token completes. On timeout, quota is
// credited for exactly the events that were redeemed.
func (v *View) WaitAll(qts []core.QToken, timeout time.Duration) ([]core.QEvent, error) {
	events, err := v.w.WaitAll(qts, timeout)
	if err == core.ErrBadQToken {
		v.t.noteBadWait()
	}
	for _, ev := range events {
		if ev.Op != core.OpInvalid {
			v.settle(ev)
		}
	}
	return events, err
}

// TryTake redeems qt non-blocking under the tenant's principal.
func (v *View) TryTake(qt core.QToken) (core.QEvent, bool, error) {
	ev, done, err := v.os.Tokens().TryTakeAs(qt, v.t.id)
	if err == core.ErrBadQToken {
		v.t.noteBadWait()
	}
	if done && err == nil {
		v.settle(ev)
	}
	return ev, done, err
}
