package rack

import (
	"strings"
	"testing"
	"time"

	"demikernel/internal/reqsched"
)

// smallConfig is a rack small enough for -race CI runs but big enough that
// placement decisions matter.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Servers = 4
	cfg.CoresPerServer = 2
	cfg.Clients = 8
	cfg.Workload.Requests = 60
	return cfg
}

func TestRackRunCompletes(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.Clients * cfg.Workload.Requests
	if got := len(res.ShortLats) + len(res.LongLats); got != total {
		t.Fatalf("completed %d of %d requests", got, total)
	}
	if len(res.LongLats) == 0 {
		t.Fatal("heavy-tailed workload produced no Long requests")
	}
	var placed uint64
	for _, p := range res.Placements {
		placed += p
	}
	if placed != uint64(total) {
		t.Errorf("ToR placed %d requests, want %d", placed, total)
	}
	// Every reply resyncs the tracked table from its load trailer.
	if res.Resyncs != uint64(total) {
		t.Errorf("resyncs = %d, want %d (one per reply)", res.Resyncs, total)
	}
	if res.Elapsed <= 0 {
		t.Error("no virtual time elapsed")
	}
	for i, ml := range res.MaxLoads {
		if ml < 0 {
			t.Errorf("server %d peak load %d", i, ml)
		}
	}
}

// TestRackDeterministic: same seed, same config → identical latencies and
// byte-identical telemetry text.
func TestRackDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ShortLats) != len(b.ShortLats) || len(a.LongLats) != len(b.LongLats) {
		t.Fatalf("request counts diverged across same-seed runs")
	}
	for i := range a.ShortLats {
		if a.ShortLats[i] != b.ShortLats[i] {
			t.Fatalf("short latency %d diverged: %v vs %v", i, a.ShortLats[i], b.ShortLats[i])
		}
	}
	if a.TelemetryText != b.TelemetryText {
		t.Fatal("same-seed telemetry text not byte-identical")
	}
	if a.TelemetryText == "" {
		t.Fatal("telemetry text empty")
	}
}

// TestRackPlacementSpread: round-robin places exactly evenly; random does
// not (with this workload size); power-of-k avoids the most loaded server
// enough that its placement spread stays bounded.
func TestRackPlacementSpread(t *testing.T) {
	cfg := smallConfig()
	cfg.Placer = &RoundRobin{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(cfg.Clients*cfg.Workload.Requests) / uint64(cfg.Servers)
	for i, p := range res.Placements {
		if p != want {
			t.Errorf("round-robin placed %d on server %d, want %d", p, i, want)
		}
	}
}

// TestRackTwoLayerTail pins the headline qualitative result under load:
// load-aware ToR placement (power-of-2) beats load-blind random placement
// on the short-request p99, and composing it with host-side DARC beats the
// ToR layer alone. Deterministic seeds make the ordering assertion
// CI-stable; the full policy matrix runs in demi-bench rack.
func TestRackTwoLayerTail(t *testing.T) {
	cfg := smallConfig()
	cfg.Clients = 24
	cfg.Workload.Requests = 150
	cfg.Workload.MeanThink = time.Microsecond
	cfg.Workload.MaxSize = 64 << 10

	run := func(p Placer, hp reqsched.Policy) *Result {
		c := cfg
		c.Placer, c.HostPolicy = p, hp
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rand := run(Random{}, reqsched.FCFS{})
	pok := run(PowerOfK{K: 2}, reqsched.FCFS{})
	both := run(PowerOfK{K: 2}, reqsched.DARC{Reserved: 1})

	rp, kp, bp := Quantile(rand.ShortLats, 0.99), Quantile(pok.ShortLats, 0.99), Quantile(both.ShortLats, 0.99)
	t.Logf("short p99: random=%v power-of-2=%v power-of-2+DARC=%v", rp, kp, bp)
	if kp >= rp {
		t.Errorf("power-of-2 did not improve short p99 over random: %v vs %v", kp, rp)
	}
	if bp >= kp {
		t.Errorf("adding DARC did not improve the short tail: %v vs %v", bp, kp)
	}
	// The reservation is a trade-off: longs queue more under DARC.
	if lb, lk := Quantile(both.LongLats, 0.99), Quantile(pok.LongLats, 0.99); lb < lk {
		t.Errorf("long p99 improved under DARC (%v < %v); reservation should cost longs", lb, lk)
	}
}

// TestRackTraceAcrossToR: sampled requests record a KSwitch hop with the
// placement decision, and the stitched waterfall renders it.
func TestRackTraceAcrossToR(t *testing.T) {
	cfg := smallConfig()
	cfg.Clients = 4
	cfg.Workload.Requests = 40
	cfg.Trace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracer == nil || res.Tracer.Finished() == 0 {
		t.Fatal("tracing enabled but no sampled requests finished")
	}
	views := res.Tracer.Assemble()
	sawSwitch := false
	for _, v := range views {
		for _, r := range v.Rows {
			if strings.HasPrefix(r.Label, "switch>s") {
				sawSwitch = true
			}
		}
	}
	if !sawSwitch {
		t.Error("no stitched view contains the ToR placement row")
	}
}

func TestSizeTableHeavyTail(t *testing.T) {
	w := DefaultWorkload()
	sizes := w.SizeTable(7)
	longs := 0
	for _, s := range sizes {
		if s < w.MinSize || s > w.MaxSize {
			t.Fatalf("size %d outside [%d, %d]", s, w.MinSize, w.MaxSize)
		}
		if w.ClassFor(s) == reqsched.Long {
			longs++
		}
	}
	frac := float64(longs) / float64(len(sizes))
	if frac <= 0 || frac > 0.2 {
		t.Errorf("long fraction = %.3f, want a small heavy tail", frac)
	}
	// Deterministic: same seed, same table.
	again := w.SizeTable(7)
	for i := range sizes {
		if sizes[i] != again[i] {
			t.Fatal("size table not deterministic")
		}
	}
}
