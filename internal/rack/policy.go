package rack

import (
	"fmt"

	"demikernel/internal/sim"
)

// A Placer is the ToR's inter-server placement policy: given the switch's
// tracked per-server outstanding counts, pick the egress server for one
// request. Placers may keep state (round-robin) and draw from the fabric's
// seeded rng (power-of-k), so same-seed runs place identically.
type Placer interface {
	// Pick returns a server index in [0, len(loads)).
	Pick(loads []uint32, rng *sim.Rand) int
	// Name labels the policy in results.
	Name() string
}

// Random places each request on a uniformly random server — the baseline
// that ignores load entirely.
type Random struct{}

// Pick implements Placer.
func (Random) Pick(loads []uint32, rng *sim.Rand) int { return rng.Intn(len(loads)) }

// Name implements Placer.
func (Random) Name() string { return "random" }

// RoundRobin cycles through servers in order — equal request counts, blind
// to the unequal work behind them.
type RoundRobin struct{ next int }

// Pick implements Placer.
func (r *RoundRobin) Pick(loads []uint32, _ *sim.Rand) int {
	s := r.next % len(loads)
	r.next = s + 1
	return s
}

// Name implements Placer.
func (*RoundRobin) Name() string { return "round-robin" }

// PowerOfK samples K servers with replacement and places on the one with
// the lowest tracked outstanding count (first sampled wins ties) — the
// RackSched-style d-choices policy. K = 2 captures most of the benefit;
// K = len(loads) degenerates to join-the-shortest-queue on tracked state.
type PowerOfK struct{ K int }

// Pick implements Placer.
func (p PowerOfK) Pick(loads []uint32, rng *sim.Rand) int {
	k := p.K
	if k < 1 {
		k = 2
	}
	best := rng.Intn(len(loads))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(loads))
		if loads[c] < loads[best] {
			best = c
		}
	}
	return best
}

// Name implements Placer.
func (p PowerOfK) Name() string {
	k := p.K
	if k < 1 {
		k = 2
	}
	return fmt.Sprintf("power-of-%d", k)
}
