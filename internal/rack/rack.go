// Package rack grows the single-switch fabric into a rack-scale system: a
// ToR switch model fronting N multi-core sim hosts that all serve one
// replicated KV service behind a rack VIP, scheduled at two layers the way
// RackSched splits the problem — the switch does inter-server placement
// (power-of-k choices over per-server outstanding counts piggybacked on
// reply frames), each host does intra-server dispatch (c-FCFS or DARC over
// its worker pool). The two layers compose: the ToR keeps any one host
// from drowning, DARC keeps a drowning host's short requests alive.
//
// The load signal costs nothing the clients can see: servers append an
// 8-byte tracking trailer past the IPv4 TotalLen of every reply (stacked
// after the dtrace trailer), the ToR reads it, resyncs its table, and
// strips it by truncation. Untraced parsers trim to TotalLen and never
// know it was there.
//
// Everything is deterministic: one engine, seeded rngs forked per
// component, virtual time only — the same seed replays the same placement
// decisions, the same queue depths, and byte-identical telemetry.
package rack

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"demikernel/internal/catnip"
	"demikernel/internal/core"
	"demikernel/internal/dpdkdev"
	"demikernel/internal/dtrace"
	"demikernel/internal/multicore"
	"demikernel/internal/reqsched"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/wire"
)

// VIP is the rack service address every server host configures; clients
// resolve it to the ToR's virtual MAC, so the switch owns placement.
var VIP = wire.IPAddr{10, 30, 0, 100}

// Config sizes one rack run.
type Config struct {
	// Servers is the number of rack hosts; CoresPerServer the vCPUs (= RSS
	// queues = dispatcher workers) on each.
	Servers, CoresPerServer int
	// Clients is the number of closed-loop client hosts.
	Clients int
	// Placer is the ToR's inter-server policy.
	Placer Placer
	// HostPolicy is the intra-server dispatch policy (c-FCFS or DARC).
	HostPolicy reqsched.Policy
	// Workload shapes the request stream.
	Workload Workload
	// Seed drives every stochastic choice.
	Seed uint64
	// SwitchTxCap bounds ToR egress queues (0 = unbounded; bound it to
	// surface hotspot drops, but closed-loop clients then need the
	// servers' overload replies to keep cycling).
	SwitchTxCap int
	// Trace samples requests end-to-end through the ToR hop (every 64th).
	Trace bool
}

// DefaultConfig is a small rack that still shows the scheduling effects.
func DefaultConfig() Config {
	return Config{
		Servers:        8,
		CoresPerServer: 2,
		Clients:        24,
		Placer:         PowerOfK{K: 2},
		HostPolicy:     reqsched.FCFS{},
		Workload:       DefaultWorkload(),
		Seed:           42,
	}
}

// Result is one rack run's measurements.
type Result struct {
	Placer, HostPolicy  string
	ShortLats, LongLats []time.Duration
	Placements          []uint64
	Resyncs             uint64
	MaxLoads            []int // per-server peak dispatcher load
	Elapsed             time.Duration
	EgressDrops         uint64
	// TelemetryText is the canonical text rendering of every registry in
	// the run (ToR, switch, per-server merged stacks) — the byte-identity
	// artifact replay tests compare.
	TelemetryText string
	// Tracer holds sampled end-to-end traces when Config.Trace is set.
	Tracer *dtrace.Tracer
}

// Run builds the rack, drives the closed-loop workload to completion, and
// returns the measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.Servers < 1 || cfg.Clients < 1 {
		return nil, fmt.Errorf("rack: need at least one server and one client")
	}
	eng := sim.NewEngine(cfg.Seed)
	sw := simnet.NewSwitch(eng, simnet.SwitchParams{
		Latency:    450 * time.Nanosecond,
		TxQueueCap: cfg.SwitchTxCap,
	})
	vipMAC := sw.NextMAC()

	var tracer *dtrace.Tracer
	var clientHop, torHop *dtrace.Hop
	if cfg.Trace {
		tracer = dtrace.New(dtrace.DefaultConfig())
		clientHop = tracer.Hop("client")
		torHop = tracer.Hop("tor")
	}

	// Server hosts: every one configures the VIP, so whichever host the ToR
	// picks parses the request as its own.
	servers := make([]*Server, cfg.Servers)
	serverPorts := make([]*simnet.Port, cfg.Servers)
	for i := range servers {
		grp := multicore.New(eng, sw, fmt.Sprintf("s%02d", i), VIP, multicore.Config{
			Cores: cfg.CoresPerServer,
			Link:  simnet.DefaultLink(),
		})
		servers[i] = newServer(eng, i, grp, cfg.HostPolicy, cfg.Workload)
		serverPorts[i] = grp.Port.NetPort()
		if cfg.Trace {
			for _, c := range grp.Cores {
				c.OS.AttachDTrace(tracer.Hop(fmt.Sprintf("s%02d.c%d", i, c.ID)))
			}
		}
	}
	tor := NewToR(eng, sw, vipMAC, serverPorts, cfg.Placer)
	if cfg.Trace {
		tor.AttachDTrace(torHop)
	}

	// Client hosts: single-core stacks, ARP warmed both ways so no
	// resolution traffic competes with the workload.
	clients := make([]*catnip.LibOS, cfg.Clients)
	for j := range clients {
		ip := wire.IPAddr{10, 30, 1, byte(j + 1)}
		node := eng.NewNode(fmt.Sprintf("client%02d", j))
		port := dpdkdev.Attach(sw, node, simnet.DefaultLink(), 1<<16, 0)
		l := catnip.New(node, port, catnip.DefaultConfig(ip))
		l.SeedARP(VIP, vipMAC)
		for _, s := range servers {
			s.Grp.SeedARP(ip, port.MAC())
		}
		if cfg.Trace {
			l.AttachDTrace(clientHop)
		}
		clients[j] = l
	}

	for _, s := range servers {
		s.Start()
	}

	sizes := cfg.Workload.SizeTable(cfg.Seed ^ 0x5157)
	res := &Result{
		Placer:     cfg.Placer.Name(),
		HostPolicy: cfg.HostPolicy.Name(),
		Tracer:     tracer,
	}
	var firstErr error
	remaining := cfg.Clients
	for j := range clients {
		j := j
		rng := eng.Rand().Fork()
		eng.Spawn(clients[j].Node(), func() {
			short, long, err := runClient(clients[j], j, cfg.Workload, sizes, rng, clientHop)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("client %d: %w", j, err)
			}
			res.ShortLats = append(res.ShortLats, short...)
			res.LongLats = append(res.LongLats, long...)
			remaining--
			if remaining == 0 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if firstErr != nil {
		return nil, firstErr
	}

	res.Placements = tor.Placements()
	res.Resyncs = tor.Resyncs()
	res.Elapsed = eng.Now().Sub(0)
	for _, s := range servers {
		res.MaxLoads = append(res.MaxLoads, s.Disp.MaxLoad())
	}
	for _, p := range sw.Ports() {
		res.EgressDrops += p.Stats().EgressDrops
	}
	sort.Slice(res.ShortLats, func(i, k int) bool { return res.ShortLats[i] < res.ShortLats[k] })
	sort.Slice(res.LongLats, func(i, k int) bool { return res.LongLats[i] < res.LongLats[k] })

	var text strings.Builder
	tor.Telemetry().Snapshot().WriteText(&text)
	sw.Telemetry().Snapshot().WriteText(&text)
	for _, s := range servers {
		s.Grp.MergedTelemetry().WriteText(&text)
	}
	res.TelemetryText = text.String()
	return res, nil
}

// runClient is one closed-loop client: think, send a GET for the next
// table-indexed size, wait for the full value, measure. Latencies are
// returned per class, in issue order.
func runClient(l *catnip.LibOS, j int, w Workload, sizes []int, rng *sim.Rand, hop *dtrace.Hop) (short, long []time.Duration, err error) {
	node := l.Node()
	qd, err := l.Socket(core.SockDgram)
	if err != nil {
		return nil, nil, err
	}
	dst := core.Addr{IP: VIP, Port: RackPort}
	for i := 0; i < w.Requests; i++ {
		think := expDuration(rng, w.MeanThink)
		if !node.Park(node.Now().Add(think)) {
			return short, long, nil
		}
		size := sizes[(j*7919+i)%len(sizes)]
		id := uint64(j)<<32 | uint64(i)
		var ctx uint64
		if hop != nil {
			ctx = hop.Tracer().StartRequest()
		}
		req := l.Heap().Alloc(reqLen)
		encodeReq(req.Bytes(), id, size)
		req.SetTraceCtx(ctx)
		t0 := node.Now()
		wqt, err := l.PushTo(qd, core.SGA(req), dst)
		if err != nil {
			req.Free()
			return short, long, err
		}
		req.Free()
		if _, err := l.Wait(wqt); err != nil {
			return short, long, nil
		}
		pqt, err := l.Pop(qd)
		if err != nil {
			return short, long, err
		}
		ev, err := l.Wait(pqt)
		if err != nil {
			return short, long, nil
		}
		if ev.Err != nil {
			return short, long, ev.Err
		}
		gotID, ok := decodeRep(ev.SGA.Flatten())
		if !ok || gotID != id {
			ev.SGA.Free()
			return short, long, fmt.Errorf("request %d: bad reply (id %d, want %d)", i, gotID, id)
		}
		lat := node.Now().Sub(t0)
		if w.ClassFor(size) == reqsched.Long {
			long = append(long, lat)
		} else {
			short = append(short, lat)
		}
		hop.EndRequest(ctx, int64(t0), int64(node.Now()))
		ev.SGA.Free()
	}
	return short, long, nil
}

// expDuration draws an exponential duration with the given mean.
func expDuration(rng *sim.Rand, mean time.Duration) time.Duration {
	u := rng.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return time.Duration(-float64(mean) * math.Log(u))
}

// Quantile returns the q-quantile of sorted latencies (0 when empty).
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
