package rack

import (
	"encoding/binary"
	"math"
	"time"

	"demikernel/internal/reqsched"
	"demikernel/internal/sim"
)

// RackPort is the UDP service port every rack server core binds.
const RackPort = uint16(7300)

// Service-time model: a request for an S-byte value costs a fixed store
// lookup plus a per-byte serialization charge on a worker — so the bounded
// Pareto size distribution below translates directly into the highly
// dispersed service times that make tail-aware scheduling matter.
const (
	StoreBase = 500 * time.Nanosecond
	PerByte   = 1 * time.Nanosecond
)

// Workload shapes the replicated-KV request stream.
type Workload struct {
	// Requests is the per-client closed-loop request count.
	Requests int
	// MeanThink is the mean exponential client think time between requests.
	MeanThink time.Duration
	// MinSize/MaxSize bound the Pareto value-size distribution (bytes).
	MinSize, MaxSize int
	// Alpha is the Pareto shape; near 1 the tail is heavy.
	Alpha float64
	// LongThreshold classifies requests: value size >= threshold is Long
	// (the class DARC reserves cores against).
	LongThreshold int
	// TableSize is the shared value-size table length.
	TableSize int
}

// DefaultWorkload is a heavy-tailed KV read mix: most values are a few
// hundred bytes, the tail reaches 32 KiB — a ~40x service-time dispersion
// with roughly 3-4% of requests classed Long.
func DefaultWorkload() Workload {
	return Workload{
		Requests:      400,
		MeanThink:     4 * time.Microsecond,
		MinSize:       256,
		MaxSize:       32 << 10,
		Alpha:         1.1,
		LongThreshold: 4 << 10,
		TableSize:     1 << 12,
	}
}

// SizeTable materializes the value-size distribution once from its own
// seeded stream. Clients index it deterministically (client, request) →
// size, so every policy comparison replays byte-for-byte the same offered
// load and both ends of a request agree on its class without negotiation.
func (w Workload) SizeTable(seed uint64) []int {
	rng := sim.NewRand(seed)
	n := w.TableSize
	if n < 1 {
		n = 1
	}
	sizes := make([]int, n)
	lo, hi := float64(w.MinSize), float64(w.MaxSize)
	a := w.Alpha
	ratio := math.Pow(lo/hi, a)
	for i := range sizes {
		u := rng.Float64()
		// Bounded Pareto inverse CDF.
		x := lo / math.Pow(1-u*(1-ratio), 1/a)
		if x > hi {
			x = hi
		}
		sizes[i] = int(x)
	}
	return sizes
}

// ServiceFor returns the worker time an S-byte value costs.
func ServiceFor(size int) time.Duration {
	return StoreBase + time.Duration(size)*PerByte
}

// ClassFor classifies a request by its value size.
func (w Workload) ClassFor(size int) reqsched.Class {
	if size >= w.LongThreshold {
		return reqsched.Long
	}
	return reqsched.Short
}

// Request codec: a GET is [reqID u64][size u32]; the reply echoes the id
// followed by the (synthetic) value bytes, so reply frames load the fabric
// in proportion to the size distribution.
const reqLen = 12

func encodeReq(b []byte, id uint64, size int) {
	binary.BigEndian.PutUint64(b[0:8], id)
	binary.BigEndian.PutUint32(b[8:12], uint32(size))
}

func decodeReq(b []byte) (id uint64, size int, ok bool) {
	if len(b) < reqLen {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(b[0:8]), int(binary.BigEndian.Uint32(b[8:12])), true
}

func encodeRep(b []byte, id uint64) {
	binary.BigEndian.PutUint64(b[0:8], id)
}

func decodeRep(b []byte) (id uint64, ok bool) {
	if len(b) < 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(b[0:8]), true
}
