package rack

import (
	"fmt"

	"demikernel/internal/core"
	"demikernel/internal/multicore"
	"demikernel/internal/reqsched"
	"demikernel/internal/sim"
)

// A Server is one rack host: a multi-core Demikernel node (per-core Catnip
// stacks over RSS queues) fronting a host-wide request dispatcher — the
// intra-server half of the two-layer scheduler. Network processing stays
// shared-nothing per core; application work funnels through the
// dispatcher's worker pool under the host policy (c-FCFS or DARC), and the
// dispatcher's instantaneous load rides every reply frame back to the ToR
// via the stacks' load probes.
type Server struct {
	ID   int
	Grp  *multicore.Group
	Disp *reqsched.Dispatcher

	eng *sim.Engine
	w   Workload
	cq  [][]completion // per-core completed requests awaiting replies
}

// completion is one finished request waiting for its owning core to send
// the reply.
type completion struct {
	id   uint64
	size int
	from core.Addr
	ctx  uint64
}

// newServer builds one rack host behind the switch the group is already
// attached to: workers equals cores (one application worker per vCPU).
func newServer(eng *sim.Engine, id int, grp *multicore.Group, policy reqsched.Policy, w Workload) *Server {
	s := &Server{
		ID:   id,
		Grp:  grp,
		Disp: reqsched.NewDispatcher(eng, grp.NumCores(), policy, 0),
		eng:  eng,
		w:    w,
		cq:   make([][]completion, grp.NumCores()),
	}
	grp.AttachLoadProbe(func() (uint16, uint32) {
		return uint16(id), uint32(s.Disp.Load())
	})
	return s
}

// Start spawns the serve loop on every core.
func (s *Server) Start() {
	s.Grp.Spawn(func(c *multicore.Core) {
		if err := s.serve(c); err != nil {
			panic(fmt.Sprintf("rack server %d core %d: %v", s.ID, c.ID, err))
		}
	})
}

// serve is one core's loop. It multiplexes two sources of work — request
// arrivals from its RSS queue and completions from the host dispatcher —
// without ever blocking on just one: TryTake polls the outstanding pop,
// the completion queue is drained first (replies free dispatcher state the
// ToR is tracking), and the core parks only when neither has work.
func (s *Server) serve(c *multicore.Core) error {
	l := c.OS
	qd, err := l.Socket(core.SockDgram)
	if err != nil {
		return err
	}
	if err := l.Bind(qd, l.Addr(RackPort)); err != nil {
		return err
	}
	pqt, err := l.Pop(qd)
	if err != nil {
		return err
	}
	for {
		if len(s.cq[c.ID]) > 0 {
			comp := s.cq[c.ID][0]
			s.cq[c.ID] = s.cq[c.ID][1:]
			if err := s.reply(c, qd, comp); err != nil {
				return err
			}
			continue
		}
		if ev, done, err := l.TryTake(pqt); err != nil {
			return err
		} else if done {
			if ev.Err == nil {
				s.handle(c, ev)
			}
			if pqt, err = l.Pop(qd); err != nil {
				return err
			}
			continue
		}
		if l.Step() {
			continue
		}
		if !l.Block(sim.Infinity) {
			return nil // simulation stopping
		}
	}
}

// handle admits one parsed request to the host dispatcher. The completion
// callback runs on the dispatcher's event context at finish time; it routes
// the completion back to the core that owns the flow and wakes it.
func (s *Server) handle(c *multicore.Core, ev core.QEvent) {
	defer ev.SGA.Free()
	id, size, ok := decodeReq(ev.SGA.Flatten())
	if !ok {
		return
	}
	comp := completion{id: id, size: size, from: ev.From, ctx: ev.SGA.TraceCtx()}
	coreID, node := c.ID, c.Node
	admitted := s.Disp.Submit(s.w.ClassFor(size), ServiceFor(size), func(_, end sim.Time) {
		s.eng.At(end, node, func() {
			s.cq[coreID] = append(s.cq[coreID], comp)
		})
	})
	if !admitted {
		// Bounded-queue overload: answer immediately with an empty value so
		// the closed-loop client never hangs on a dropped request.
		s.cq[coreID] = append(s.cq[coreID], completion{id: id, from: ev.From, ctx: comp.ctx})
	}
}

// reply sends one completed request's value back to its client.
func (s *Server) reply(c *multicore.Core, qd core.QDesc, comp completion) error {
	l := c.OS
	buf := l.Heap().Alloc(8 + comp.size)
	encodeRep(buf.Bytes(), comp.id)
	buf.SetTraceCtx(comp.ctx)
	wqt, err := l.PushTo(qd, core.SGA(buf), comp.from)
	if err != nil {
		buf.Free()
		return err
	}
	_, err = l.Wait(wqt)
	buf.Free()
	if err != nil {
		return nil // stopped mid-push
	}
	return nil
}
