package rack

import (
	"fmt"

	"demikernel/internal/dtrace"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
	"demikernel/internal/telemetry"
	"demikernel/internal/wire"
)

// ToR is the rack's top-of-rack switch model: a simnet.ForwardHook that
// implements the inter-server half of RackSched-style two-layer scheduling.
// Every request frame is addressed to the rack VIP's virtual MAC; the hook
// places it on a server under the configured Placer and bumps that server's
// tracked outstanding count. Every reply frame carries a load trailer the
// server's stack appended past the IP packet; the hook reads it, resyncs
// the tracked count to the server's ground truth (placement estimates
// drift: the +1 per request never sees completions), strips the trailer by
// truncation — the trace trailer, which sits before it, survives — and lets
// normal MAC forwarding deliver the frame.
//
// The ToR never rewrites headers: all rack servers share the VIP, so a
// steered request parses as "mine" on whichever server receives it, and
// replies already carry the client's address. Placement is therefore one
// table lookup plus a trailer truncation — switch-dataplane-sized work.
type ToR struct {
	eng     *sim.Engine
	vipMAC  simnet.MAC
	placer  Placer
	rng     *sim.Rand
	servers []*simnet.Port
	tracked []uint32

	reg        *telemetry.Registry
	placements []*telemetry.Counter
	resyncs    *telemetry.Counter
	steered    *telemetry.Counter
	hop        *dtrace.Hop
}

// NewToR installs a ToR scheduler on the switch. vipMAC is the virtual MAC
// clients resolve the rack VIP to; servers[i] is server i's fabric port
// (index must match the server id its load probe reports).
func NewToR(eng *sim.Engine, sw *simnet.Switch, vipMAC simnet.MAC, servers []*simnet.Port, placer Placer) *ToR {
	t := &ToR{
		eng:     eng,
		vipMAC:  vipMAC,
		placer:  placer,
		rng:     eng.Rand().Fork(),
		servers: servers,
		tracked: make([]uint32, len(servers)),
		reg:     telemetry.NewRegistry("rack/tor"),
	}
	t.steered = t.reg.Counter("tor.requests_steered")
	t.resyncs = t.reg.Counter("tor.load_resyncs")
	for i := range servers {
		i := i
		t.placements = append(t.placements, t.reg.Counter(fmt.Sprintf("tor.s%02d.placements", i)))
		t.reg.Sample(fmt.Sprintf("tor.s%02d.tracked_load", i), func() int64 { return int64(t.tracked[i]) })
	}
	sw.SetHook(t)
	return t
}

// AttachDTrace records a KSwitch hop for every traced frame the ToR
// forwards, carrying the placement decision for requests.
func (t *ToR) AttachDTrace(h *dtrace.Hop) { t.hop = h }

// Telemetry returns the ToR registry: per-server placement counters and
// tracked-load gauges, plus steering/resync totals.
func (t *ToR) Telemetry() *telemetry.Registry { return t.reg }

// Tracked returns the switch's current per-server outstanding estimates.
func (t *ToR) Tracked() []uint32 { return t.tracked }

// Placements returns the per-server placement counts.
func (t *ToR) Placements() []uint64 {
	out := make([]uint64, len(t.placements))
	for i, c := range t.placements {
		out[i] = c.Value()
	}
	return out
}

// Resyncs returns how many reply trailers resynced the tracked state.
func (t *ToR) Resyncs() uint64 { return t.resyncs.Value() }

// Forward implements simnet.ForwardHook.
func (t *ToR) Forward(f simnet.Frame, from *simnet.Port) (simnet.Frame, *simnet.Port, bool) {
	if len(t.servers) > 0 && f.Dst() == t.vipMAC {
		s := t.placer.Pick(t.tracked, t.rng)
		t.tracked[s]++
		t.placements[s].Inc()
		t.steered.Inc()
		if t.hop != nil {
			if ctx := traceCtx(f.Data); ctx != 0 {
				t.hop.Switch(ctx, int64(t.eng.Now()), int32(s))
			}
		}
		return f, t.servers[s], true
	}
	if server, load, ok := wire.ParseLoadTrailer(f.Data); ok && int(server) < len(t.tracked) {
		t.tracked[server] = load
		t.resyncs.Inc()
		f.Data, _ = wire.StripLoadTrailer(f.Data)
		if t.hop != nil {
			if ctx := traceCtx(f.Data); ctx != 0 {
				t.hop.Switch(ctx, int64(t.eng.Now()), -1)
			}
		}
	}
	return f, nil, true
}

// traceCtx extracts the trace trailer context from a raw Ethernet frame
// whose load trailer (if any) has already been stripped: the trailer sits
// immediately past the IPv4 TotalLen.
func traceCtx(data []byte) uint64 {
	if len(data) < wire.EthHeaderLen+wire.IPv4HeaderLen {
		return 0
	}
	eth, payload, err := wire.ParseEth(data)
	if err != nil || eth.EtherType != wire.EtherTypeIPv4 {
		return 0
	}
	ip, _, err := wire.ParseIPv4(payload)
	if err != nil || len(payload) < int(ip.TotalLen)+wire.TraceTrailerLen {
		return 0
	}
	return wire.ParseTraceTrailer(payload[ip.TotalLen:])
}
