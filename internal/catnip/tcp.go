package catnip

import (
	"errors"

	"demikernel/internal/core"
	"demikernel/internal/memory"
	"demikernel/internal/sched"
	"demikernel/internal/sim"
	"demikernel/internal/simnet"
)

// ErrConnReset reports a connection torn down by a peer RST.
var ErrConnReset = errors.New("catnip: connection reset by peer")

// ErrConnTimeout reports a connection abandoned after exhausting
// retransmissions.
var ErrConnTimeout = errors.New("catnip: connection timed out")

// tcpState is the RFC 793 connection state.
type tcpState int

const (
	stateClosed tcpState = iota
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateClosing
	stateTimeWait
	stateCloseWait
	stateLastAck
)

// tcpSocket is the PDPIX queue state for a stream socket: before Listen or
// Connect it is just a (possibly bound) port; afterwards it fronts a
// listener or a connection.
type tcpSocket struct {
	lib       *LibOS
	qd        core.QDesc
	localPort uint16
	bound     bool
	listener  *tcpListener
	conn      *tcpConn
	// tenant is the owning principal (0 = host); tidx its dense scheduler
	// index. Accepted connections inherit the listener socket's tenant.
	tenant uint32
	tidx   uint8
}

func (s *tcpSocket) bind(addr core.Addr) error {
	if s.bound {
		return core.ErrInUse
	}
	if !addr.IP.IsZero() && addr.IP != s.lib.cfg.IP {
		return core.ErrNotBound
	}
	if _, used := s.lib.listeners[addr.Port]; used {
		return core.ErrInUse
	}
	s.localPort = addr.Port
	s.bound = true
	return nil
}

func (s *tcpSocket) listen(backlog int) error {
	if !s.bound {
		return core.ErrNotBound
	}
	if s.listener != nil || s.conn != nil {
		return core.ErrInUse
	}
	if backlog < 1 {
		backlog = 1
	}
	ln := &tcpListener{lib: s.lib, sock: s, port: s.localPort, backlog: backlog}
	s.listener = ln
	s.lib.listeners[s.localPort] = ln
	return nil
}

func (s *tcpSocket) connect(addr core.Addr) (core.QToken, error) {
	if s.listener != nil || s.conn != nil {
		return core.InvalidQToken, core.ErrInUse
	}
	if !s.bound {
		p, err := s.lib.allocEphemeral()
		if err != nil {
			return core.InvalidQToken, err // EADDRNOTAVAIL: port space exhausted
		}
		s.localPort = p
		s.bound = true
	}
	tuple := fourTuple{localPort: s.localPort, remoteIP: addr.IP, remotePort: addr.Port}
	if _, exists := s.lib.conns[tuple]; exists {
		return core.InvalidQToken, core.ErrInUse
	}
	op := s.lib.tokens.New()
	c := newTCPConn(s.lib, s.qd, tuple, s.tenant, s.tidx)
	c.state = stateSynSent
	c.connectOp = op
	s.conn = c
	s.lib.conns[tuple] = c
	c.startConnect()
	return op.Token(), nil
}

func (s *tcpSocket) close() {
	if s.listener != nil {
		s.listener.close()
	}
	if s.conn != nil {
		s.conn.appClose()
	}
}

// tcpListener accepts inbound connections on a port.
type tcpListener struct {
	lib      *LibOS
	sock     *tcpSocket
	port     uint16
	backlog  int
	ready    []*tcpConn // established, awaiting Accept
	accepts  []*core.Op // pending Accept operations
	synCount int        // connections in SYN_RCVD
	closed   bool
}

// accept completes immediately if an established connection waits,
// otherwise parks the op.
func (ln *tcpListener) accept(op *core.Op) {
	if ln.closed {
		op.Fail(ln.sock.qd, core.OpAccept, core.ErrQueueClosed)
		return
	}
	if len(ln.ready) > 0 {
		c := ln.ready[0]
		ln.ready = ln.ready[1:]
		ln.complete(op, c)
		return
	}
	ln.accepts = append(ln.accepts, op)
}

// complete wraps an established connection in a fresh socket queue and
// finishes the accept op.
func (ln *tcpListener) complete(op *core.Op, c *tcpConn) {
	s := &tcpSocket{lib: ln.lib, localPort: ln.port, bound: true, conn: c,
		tenant: ln.sock.tenant, tidx: ln.sock.tidx}
	s.qd = ln.lib.qds.Insert(s)
	c.qd = s.qd
	op.Complete(core.QEvent{QD: ln.sock.qd, Op: core.OpAccept, NewQD: s.qd})
}

// established is called by a SYN_RCVD connection once its handshake
// finishes.
func (ln *tcpListener) established(c *tcpConn) {
	ln.synCount--
	if len(ln.accepts) > 0 {
		op := ln.accepts[0]
		ln.accepts = ln.accepts[1:]
		ln.complete(op, c)
		return
	}
	if len(ln.ready) >= ln.backlog {
		c.abort(core.ErrQueueClosed) // backlog overflow: reset
		return
	}
	ln.ready = append(ln.ready, c)
}

func (ln *tcpListener) close() {
	ln.closed = true
	delete(ln.lib.listeners, ln.port)
	for _, op := range ln.accepts {
		op.Fail(ln.sock.qd, core.OpAccept, core.ErrQueueClosed)
	}
	ln.accepts = nil
	for _, c := range ln.ready {
		c.abort(core.ErrQueueClosed)
	}
	ln.ready = nil
}

// sendItem is app data queued but not yet segmented (send window closed).
type sendItem struct {
	buf *memory.Buf
	off int
}

// segment is one transmitted, unacknowledged TCP segment.
type segment struct {
	seq      uint32
	length   int // payload bytes (SYN/FIN consume one extra sequence)
	syn, fin bool
	buf      *memory.Buf // nil for pure SYN/FIN
	off      int
	sentAt   sim.Time
	rtx      bool
}

// endSeq returns the sequence number after this segment.
func (s *segment) endSeq() uint32 {
	n := uint32(s.length)
	if s.syn {
		n++
	}
	if s.fin {
		n++
	}
	return s.seq + n
}

// pushOp maps a Push qtoken to the stream sequence that completes it: TCP
// pushes complete when every byte is acknowledged, at which point buffer
// ownership returns to the application (paper §4.2's ownership contract).
type pushOp struct {
	endSeq uint32
	op     *core.Op
}

// oooSegment is out-of-order payload held for reassembly.
type oooSegment struct {
	seq  uint32
	data []byte
}

// tcpConn is one TCP connection (paper §6.3). One background coroutine
// each for sending when the window reopens, retransmission, pure acks, and
// close-state management, exactly the paper's four.
type tcpConn struct {
	lib       *LibOS
	qd        core.QDesc
	tuple     fourTuple
	remoteMAC simnet.MAC
	macKnown  bool
	state     tcpState
	listener  *tcpListener // non-nil while passive-opening

	// tenant owns the connection; theap (nil for the host) charges its rx
	// allocations; tidx schedules its coroutines under WFQ.
	tenant uint32
	tidx   uint8
	theap  *memory.TenantHeap

	// Send state (RFC 793 §3.2 names).
	iss, sndUna, sndNxt uint32
	queuedSeq           uint32 // sequence after all app data accepted so far
	sndWnd              int
	sndWndScale         uint
	mss                 int

	sendQ    []sendItem
	retransQ []segment
	pushOps  []pushOp

	// Receive state.
	irs uint32
	//demi:stateguard rcvNxt acknowledges bytes to the peer; advancing it on
	// a failed delivery desynchronizes the sequence space permanently.
	rcvNxt uint32
	recvQ       []*memory.Buf
	recvBytes   int
	oooQ        []oooSegment
	oooBytes    int
	pops        []*core.Op
	peerClosed  bool

	// Congestion control and timers.
	cc              cubic
	dupAcks         int
	recoverSeq      uint32
	inRecovery      bool
	rto             rtoEstimator
	rtoArmed        bool
	rtoDeadline     sim.Time
	persistArmed    bool
	persistDeadline sim.Time
	tsRecent        uint32

	senderH, retransH, ackH, closerH sched.Handle

	ackPending   bool
	segsSinceAck int
	ackDeadline  sim.Time
	ackArmed     bool
	connectOp    *core.Op
	appClosed    bool
	finQueued    bool

	timeWaitUntil sim.Time
	err           error
}
