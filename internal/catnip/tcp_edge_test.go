package catnip

import (
	"bytes"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/sched"
	"demikernel/internal/simnet"
)

func TestZeroWindowPersistProbe(t *testing.T) {
	eng, la, lb := pair(t, 41, simnet.DefaultLink(), true)
	// Tiny receive buffer so the window closes fast.
	lb.cfg.RecvBufSize = 4096
	const total = 64 << 10
	received := 0
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		// Drive the libOS without popping: data is acked, the advertised
		// window collapses to zero, and the sender must probe.
		lb.WaitAny(nil, 100*time.Millisecond)
		for received < total {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			received += ev.SGA.TotalLen()
			ev.SGA.Free()
		}
		lb.Close(conn)
		lb.WaitAny(nil, 100*time.Millisecond)
	})
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		qt := push(t, la, qd, make([]byte, total))
		if _, err := la.Wait(qt); err != nil {
			t.Errorf("push: %v", err)
		}
	})
	eng.Run()
	if received != total {
		t.Fatalf("received %d of %d", received, total)
	}
	if la.Stats().WindowProbes == 0 {
		t.Error("no persist probes fired against the closed window")
	}
}

func TestReorderingLinkDelivery(t *testing.T) {
	link := simnet.DefaultLink()
	link.ReorderProb = 0.3
	link.ReorderJitter = 20 * time.Microsecond
	const total = 128 << 10
	eng, la, lb := pair(t, 42, link, true)
	var received bytes.Buffer
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for received.Len() < total {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			received.Write(ev.SGA.Flatten())
			ev.SGA.Free()
		}
		lb.Close(conn)
		lb.WaitAny(nil, 200*time.Millisecond)
	})
	sent := make([]byte, total)
	for i := range sent {
		sent[i] = byte(i * 7)
	}
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		var qts []core.QToken
		for off := 0; off < total; off += 16 << 10 {
			qts = append(qts, push(t, la, qd, sent[off:off+16<<10]))
		}
		la.WaitAll(qts, -1)
	})
	eng.Run()
	if !bytes.Equal(received.Bytes(), sent) {
		t.Fatalf("stream corrupted under reordering (got %d bytes)", received.Len())
	}
	if lb.Stats().TCPOutOfOrder == 0 {
		t.Error("reassembly queue never used despite reordering link")
	}
}

func TestDuplicationLinkDelivery(t *testing.T) {
	link := simnet.DefaultLink()
	link.DupProb = 0.2
	const total = 64 << 10
	eng, la, lb := pair(t, 43, link, true)
	var received bytes.Buffer
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		conn := ev.NewQD
		for received.Len() < total {
			pqt, _ := lb.Pop(conn)
			ev, err := lb.Wait(pqt)
			if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
				return
			}
			received.Write(ev.SGA.Flatten())
			ev.SGA.Free()
		}
		lb.Close(conn)
		lb.WaitAny(nil, 100*time.Millisecond)
	})
	sent := make([]byte, total)
	for i := range sent {
		sent[i] = byte(i * 13)
	}
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		qt := push(t, la, qd, sent)
		la.Wait(qt)
	})
	eng.Run()
	// Duplicated segments must be delivered exactly once.
	if !bytes.Equal(received.Bytes(), sent) {
		t.Fatalf("duplication corrupted the stream (got %d bytes, want %d)", received.Len(), total)
	}
}

func TestSimultaneousClose(t *testing.T) {
	eng, la, lb := pair(t, 44, simnet.DefaultLink(), true)
	var serverConn core.QDesc
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 4)
		aqt, _ := lb.Accept(qd)
		ev, err := lb.Wait(aqt)
		if err != nil {
			return
		}
		serverConn = ev.NewQD
		// Close immediately after the handshake, racing the client's close.
		lb.Close(serverConn)
		lb.WaitAny(nil, 200*time.Millisecond)
	})
	eng.Spawn(la.Node(), func() {
		qd, _ := la.Socket(core.SockStream)
		cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
		if _, err := la.Wait(cqt); err != nil {
			return
		}
		la.Close(qd)
		la.WaitAny(nil, 200*time.Millisecond)
	})
	eng.Run()
	if n := len(la.conns) + len(lb.conns); n != 0 {
		t.Fatalf("%d connections leaked after simultaneous close", n)
	}
}

func TestManySequentialConnections(t *testing.T) {
	// Connection churn: ports, conns and coroutines must all be reclaimed.
	eng, la, lb := pair(t, 45, simnet.DefaultLink(), true)
	eng.Spawn(lb.Node(), func() {
		qd, _ := lb.Socket(core.SockStream)
		lb.Bind(qd, lb.Addr(80))
		lb.Listen(qd, 8)
		for {
			aqt, _ := lb.Accept(qd)
			ev, err := lb.Wait(aqt)
			if err != nil {
				return
			}
			conn := ev.NewQD
			pqt, _ := lb.Pop(conn)
			ev, err = lb.Wait(pqt)
			if err != nil {
				return
			}
			if ev.Err == nil && len(ev.SGA.Segs) > 0 {
				wqt, _ := lb.Push(conn, ev.SGA)
				lb.Wait(wqt)
				ev.SGA.Free()
			}
			lb.Close(conn)
		}
	})
	const conns = 30
	completed := 0
	eng.Spawn(la.Node(), func() {
		for i := 0; i < conns; i++ {
			qd, _ := la.Socket(core.SockStream)
			cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
			if ev, err := la.Wait(cqt); err != nil || ev.Err != nil {
				return
			}
			push(t, la, qd, []byte("ping"))
			pqt, _ := la.Pop(qd)
			ev, err := la.Wait(pqt)
			if err != nil || ev.Err != nil {
				return
			}
			ev.SGA.Free()
			la.Close(qd)
			completed++
		}
		// Allow TIME_WAITs to drain before quiescence check.
		la.WaitAny(nil, 100*time.Millisecond)
	})
	eng.Run()
	if completed != conns {
		t.Fatalf("completed %d of %d connections", completed, conns)
	}
	if n := len(la.conns); n != 0 {
		t.Errorf("client leaked %d connections", n)
	}
	// Background coroutines must drain too (4 per dead connection).
	if live := la.schedLen(); live > 8 {
		t.Errorf("client scheduler still tracks %d coroutines", live)
	}
}

// schedLen exposes the background coroutine count for leak checks.
func (l *LibOS) schedLen() int {
	return l.sched.Len(sched.App) + l.sched.Len(sched.Background) + l.sched.Len(sched.FastPath)
}

func TestDelayedAckReducesPureAcks(t *testing.T) {
	// One-directional stream: the receiver only acks. With delayed acks,
	// roughly every other segment earns a pure ack.
	run := func(delay time.Duration) (pureAcks uint64) {
		eng, la, lb := pair(t, 46, simnet.DefaultLink(), true)
		lb.cfg.DelayedAck = delay
		const total = 256 << 10
		received := 0
		eng.Spawn(lb.Node(), func() {
			qd, _ := lb.Socket(core.SockStream)
			lb.Bind(qd, lb.Addr(80))
			lb.Listen(qd, 4)
			aqt, _ := lb.Accept(qd)
			ev, err := lb.Wait(aqt)
			if err != nil {
				return
			}
			conn := ev.NewQD
			for received < total {
				pqt, _ := lb.Pop(conn)
				ev, err := lb.Wait(pqt)
				if err != nil || ev.Err != nil || len(ev.SGA.Segs) == 0 {
					return
				}
				received += ev.SGA.TotalLen()
				ev.SGA.Free()
			}
			lb.Close(conn)
			lb.WaitAny(nil, 200*time.Millisecond)
		})
		eng.Spawn(la.Node(), func() {
			qd, _ := la.Socket(core.SockStream)
			cqt, _ := la.Connect(qd, core.Addr{IP: ipB, Port: 80})
			if _, err := la.Wait(cqt); err != nil {
				return
			}
			qt := push(t, la, qd, make([]byte, total))
			if _, err := la.Wait(qt); err != nil {
				t.Errorf("push: %v", err)
			}
		})
		eng.Run()
		if received != total {
			t.Fatalf("received %d of %d (delay=%v)", received, total, delay)
		}
		return lb.Stats().PureAcks
	}
	immediate := run(0)
	delayed := run(100 * time.Microsecond)
	t.Logf("pure acks: immediate=%d delayed=%d", immediate, delayed)
	if delayed >= immediate {
		t.Errorf("delayed acks did not reduce ack traffic: %d vs %d", delayed, immediate)
	}
}
